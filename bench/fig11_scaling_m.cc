// Reproduces Fig. 11: solution quality and running time on synthetic
// datasets with varying m (2 .. 20), n = 10^5, k = 20.
//
// Shapes to expect: SFDM2's diversity decreases only slightly with m while
// FairFlow's collapses (up to 3x gap beyond m = 10); SFDM2's running time
// grows ~quadratically with m (post-processing), FairFlow's grows too
// (per-group GMM coresets).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "data/synthetic.h"

namespace fdm::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  Banner("Fig. 11: scalability with varying m (synthetic, n = 10^5, k = 20)",
         options);
  const int k = 20;
  const size_t n = options.Size(100000, 100000);

  TablePrinter table({"m", "algorithm", "diversity", "time(s)"});
  for (const int m : {2, 4, 8, 12, 16, 20}) {
    BlobsOptions blob_options;
    blob_options.n = n;
    blob_options.num_groups = m;
    blob_options.seed = options.seed;
    const Dataset ds = MakeBlobs(blob_options);
    const auto constraint = EqualRepresentation(k, m);
    if (!constraint.ok()) continue;
    const DistanceBounds bounds = BoundsForExperiments(ds);

    std::vector<AlgorithmKind> algorithms{AlgorithmKind::kFairFlow,
                                          AlgorithmKind::kSfdm2};
    if (m == 2) {
      algorithms.insert(algorithms.begin(), AlgorithmKind::kFairSwap);
      algorithms.insert(algorithms.end() - 1, AlgorithmKind::kSfdm1);
    }
    for (const AlgorithmKind algo : algorithms) {
      RunConfig config;
      config.algorithm = algo;
      config.constraint = constraint.value();
      config.epsilon = 0.1;
      config.bounds = bounds;
      const AggregateResult r = RunRepeated(ds, config, options.runs);
      table.AddRow({std::to_string(m), std::string(AlgorithmName(algo)),
                    Cell(r.ok_runs > 0, r.diversity, 4),
                    Cell(r.ok_runs > 0, PaperTimeSeconds(r, algo), 5)});
    }
    std::printf("[done] m=%d\n", m);
    std::fflush(stdout);
  }

  std::printf("\n");
  table.Print(std::cout);
  if (EnsureDirectory(options.out_dir)) {
    (void)table.WriteCsv(options.out_dir + "/fig11_scaling_m.csv");
    std::printf("\nCSV written to %s/fig11_scaling_m.csv\n",
                options.out_dir.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fdm::bench

int main(int argc, char** argv) { return fdm::bench::Main(argc, argv); }
