// Reproduces Figs. 3 and 4: step-by-step illustrations of the two
// post-processing schemes, on a small concrete instance, using the same
// library pieces the algorithms use.
//
// Fig. 3 (SFDM1): one group-blind candidate + two group-specific
// candidates per guess; the blind candidate is balanced by inserting
// donors of the under-filled group (farthest first) and deleting
// over-filled elements nearest to the under-filled side.
//
// Fig. 4 (SFDM2): the candidates' union is threshold-clustered at
// µ/(m+1); a partial solution extracted from the blind candidate is
// augmented to a maximum-cardinality common independent set of the
// fairness and cluster matroids.

#include <cstdio>
#include <set>

#include "bench_common.h"
#include "core/clustering.h"
#include "core/diversity.h"
#include "core/matroid.h"
#include "core/matroid_intersection.h"
#include "core/streaming_candidate.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace fdm::bench {
namespace {

void PrintSet(const char* label, const PointBuffer& points) {
  std::printf("  %-18s {", label);
  for (size_t i = 0; i < points.size(); ++i) {
    std::printf("%s%lld(g%d)", i ? ", " : "",
                static_cast<long long>(points.IdAt(i)), points.GroupAt(i));
  }
  std::printf("}\n");
}

int Main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  Banner("Figs. 3 & 4: post-processing walkthrough (toy instance)", options);

  // A toy 2-group stream with a skew: group 1 is rare.
  Rng rng(options.seed + 3);
  Dataset ds("toy", 2, 2, MetricKind::kEuclidean);
  for (int i = 0; i < 60; ++i) {
    const double p[2] = {rng.NextDouble(0, 10), rng.NextDouble(0, 10)};
    ds.Add(p, rng.NextDouble() < 0.8 ? 0 : 1);
  }
  const Metric metric = ds.metric();
  const double mu = 2.2;
  const int k1 = 3;
  const int k2 = 3;
  const int k = k1 + k2;

  std::printf("--- Fig. 3: SFDM1 stream phase at guess µ = %.2f ---\n", mu);
  StreamingCandidate blind(mu, static_cast<size_t>(k), 2);
  StreamingCandidate group_candidates[2] = {
      StreamingCandidate(mu, static_cast<size_t>(k1), 2),
      StreamingCandidate(mu, static_cast<size_t>(k2), 2)};
  for (size_t i = 0; i < ds.size(); ++i) {
    const StreamPoint x = ds.At(i);
    blind.TryAdd(x, metric);
    group_candidates[x.group].TryAdd(x, metric);
  }
  PrintSet("S_mu (blind):", blind.points());
  PrintSet("S_mu,1:", group_candidates[0].points());
  PrintSet("S_mu,2:", group_candidates[1].points());
  const std::vector<int> counts = GroupCounts(blind.points(), 2);
  std::printf("  blind group counts: %d/%d (want %d/%d)\n", counts[0],
              counts[1], k1, k2);

  std::printf("\n--- Fig. 4: SFDM2 post-processing at the same guess ---\n");
  // S_all = dedup union of all candidates.
  PointBuffer all(2, static_cast<size_t>(k * 3));
  std::set<int64_t> seen;
  auto add_from = [&](const StreamingCandidate& c) {
    for (size_t i = 0; i < c.points().size(); ++i) {
      if (seen.insert(c.points().IdAt(i)).second) {
        all.Add(c.points().ViewAt(i));
      }
    }
  };
  add_from(blind);
  add_from(group_candidates[0]);
  add_from(group_candidates[1]);
  PrintSet("S_all:", all);

  const int m = 2;
  const double threshold = mu / (m + 1);
  const std::vector<int> cluster_of = ThresholdClusters(all, metric, threshold);
  int num_clusters = 0;
  for (const int c : cluster_of) num_clusters = std::max(num_clusters, c + 1);
  std::printf("  clustering at µ/(m+1) = %.3f -> %d clusters:\n", threshold,
              num_clusters);
  for (int c = 0; c < num_clusters; ++c) {
    std::printf("    C%-2d {", c);
    bool first = true;
    for (size_t i = 0; i < all.size(); ++i) {
      if (cluster_of[i] == c) {
        std::printf("%s%lld", first ? "" : ", ",
                    static_cast<long long>(all.IdAt(i)));
        first = false;
      }
    }
    std::printf("}\n");
  }

  // Matroids + initial partial solution from the blind candidate.
  std::vector<int> group_labels(all.size());
  for (size_t i = 0; i < all.size(); ++i) group_labels[i] = all.GroupAt(i);
  const PartitionMatroid m1(group_labels, {k1, k2});
  const PartitionMatroid m2(
      cluster_of, std::vector<int>(static_cast<size_t>(num_clusters), 1));
  std::vector<int> initial;
  int taken[2] = {0, 0};
  for (size_t i = 0; i < all.size(); ++i) {
    if (!blind.points().ContainsId(all.IdAt(i))) continue;
    const int g = all.GroupAt(i);
    const int quota = g == 0 ? k1 : k2;
    if (taken[g] < quota) {
      initial.push_back(static_cast<int>(i));
      ++taken[g];
    }
  }
  std::printf("  initial S'_mu (from blind, capped at quotas): {");
  for (size_t i = 0; i < initial.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "",
                static_cast<long long>(all.IdAt(
                    static_cast<size_t>(initial[i]))));
  }
  std::printf("}\n");

  auto distance_fn = [&](int x, std::span<const int> members) {
    double best = std::numeric_limits<double>::infinity();
    for (const int mm : members) {
      best = std::min(best, metric(all.CoordsAt(static_cast<size_t>(x)),
                                   all.CoordsAt(static_cast<size_t>(mm))));
    }
    return best;
  };
  const std::vector<int> augmented =
      MaxCardinalityMatroidIntersection(m1, m2, initial, distance_fn);
  PointBuffer final_points(2, augmented.size());
  for (const int e : augmented) {
    final_points.Add(all.ViewAt(static_cast<size_t>(e)));
  }
  PrintSet("augmented S'_mu:", final_points);
  const std::vector<int> final_counts = GroupCounts(final_points, 2);
  std::printf("  final: |S| = %zu, counts %d/%d, div = %.4f (µ/(m+1) bound "
              "= %.4f)\n",
              final_points.size(), final_counts[0], final_counts[1],
              MinPairwiseDistance(final_points, metric), threshold);

  const bool shape =
      static_cast<int>(final_points.size()) == k &&
      final_counts[0] == k1 && final_counts[1] == k2 &&
      MinPairwiseDistance(final_points, metric) >= threshold - 1e-12;
  std::printf("\nshape check (fair, full, div >= µ/(m+1)): %s\n",
              shape ? "OK" : "VIOLATED");
  return shape ? 0 : 1;
}

}  // namespace
}  // namespace fdm::bench

int main(int argc, char** argv) { return fdm::bench::Main(argc, argv); }
