// Reproduces Table I: statistics of the datasets used in the experiments.
//
// Prints n, m (for every grouping), #features, and the distance metric of
// each (simulated) dataset, plus measured group-size skews so the
// substitution fidelity is visible at a glance.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "data/simulated.h"
#include "data/synthetic.h"
#include "harness/table.h"

namespace fdm::bench {
namespace {

std::string SkewSummary(const Dataset& ds) {
  const auto sizes = ds.GroupSizes();
  std::string out;
  for (size_t g = 0; g < sizes.size() && g < 5; ++g) {
    if (g > 0) out += "/";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.0f%%",
                  100.0 * static_cast<double>(sizes[g]) /
                      static_cast<double>(ds.size()));
    out += buf;
  }
  if (sizes.size() > 5) out += "/...";
  return out;
}

int Main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  Banner("Table I: statistics of datasets", options);

  TablePrinter table({"dataset", "n", "m", "#features", "metric",
                      "group skew (measured)"});
  const size_t probe_n = options.full ? 0 : 20000;  // skew probe size

  {
    const size_t n = options.Size(20000, 48842);
    for (const auto& [label, grouping] :
         std::vector<std::pair<std::string, AdultGrouping>>{
             {"2 (sex)", AdultGrouping::kSex},
             {"5 (race)", AdultGrouping::kRace},
             {"10 (sex+race)", AdultGrouping::kSexRace}}) {
      const Dataset ds = SimulatedAdult(grouping, options.seed,
                                        probe_n ? probe_n : n);
      table.AddRow({"Adult", "48842", label, "6", "Euclidean",
                    SkewSummary(ds)});
    }
  }
  {
    for (const auto& [label, grouping] :
         std::vector<std::pair<std::string, CelebAGrouping>>{
             {"2 (sex)", CelebAGrouping::kSex},
             {"2 (age)", CelebAGrouping::kAge},
             {"4 (sex+age)", CelebAGrouping::kSexAge}}) {
      const Dataset ds =
          SimulatedCelebA(grouping, options.seed, probe_n ? probe_n : 202599);
      table.AddRow({"CelebA", "202599", label, "41", "Manhattan",
                    SkewSummary(ds)});
    }
  }
  {
    for (const auto& [label, grouping] :
         std::vector<std::pair<std::string, CensusGrouping>>{
             {"2 (sex)", CensusGrouping::kSex},
             {"7 (age)", CensusGrouping::kAge},
             {"14 (sex+age)", CensusGrouping::kSexAge}}) {
      const Dataset ds =
          SimulatedCensus(grouping, options.seed, probe_n ? probe_n : 100000);
      table.AddRow({"Census", "2426116", label, "25", "Manhattan",
                    SkewSummary(ds)});
    }
  }
  {
    const Dataset ds = SimulatedLyrics(options.seed, probe_n ? probe_n : 122448);
    table.AddRow({"Lyrics", "122448", "15 (genre)", "50", "Angular",
                  SkewSummary(ds)});
  }
  {
    BlobsOptions blob_options;
    blob_options.n = 10000;
    blob_options.num_groups = 10;
    blob_options.seed = options.seed;
    const Dataset ds = MakeBlobs(blob_options);
    table.AddRow({"Synthetic", "10^3..10^7", "2..20", "2", "Euclidean",
                  SkewSummary(ds)});
  }

  table.Print(std::cout);
  if (EnsureDirectory(options.out_dir)) {
    (void)table.WriteCsv(options.out_dir + "/table1_datasets.csv");
    std::printf("\nCSV written to %s/table1_datasets.csv\n",
                options.out_dir.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fdm::bench

int main(int argc, char** argv) { return fdm::bench::Main(argc, argv); }
