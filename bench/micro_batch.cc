// Batched-ingestion throughput microbenchmark (not a paper figure).
//
// Measures stream-phase points/sec of the StreamSink ingestion engine on a
// synthetic stream, sweeping batch size {1, 64, 1024} × batch threads
// {1, 4} for SFDM2 (the paper's flagship) and the unconstrained
// Algorithm 1. Batch size 1 is the per-element `Observe` path — the
// pre-refactor baseline every other row is compared against. The outputs
// are bit-identical across all rows (the StreamSink contract); only the
// cost profile changes.
//
//   ./micro_batch [--n=100000] [--dim=16] [--k=20] [--eps=0.1] [--m=2]

#include <cstdio>
#include <string>
#include <vector>

#include "core/sfdm2.h"
#include "core/stream_sink.h"
#include "core/streaming_dm.h"
#include "data/synthetic.h"
#include "geo/simd/kernel_dispatch.h"
#include "util/argparse.h"
#include "util/timer.h"

namespace fdm {
namespace {

struct MicroOptions {
  size_t n = 100000;
  size_t dim = 16;
  int k = 20;
  int m = 2;
  double epsilon = 0.1;
};

/// Streams the whole permuted dataset into `sink`; returns points/sec.
double IngestAll(StreamSink& sink, const Dataset& ds,
                 const std::vector<size_t>& order, size_t batch_size) {
  Timer timer;
  IngestStream(sink, ds, order, batch_size);
  return static_cast<double>(ds.size()) / timer.ElapsedSeconds();
}

void Report(const char* algorithm, size_t batch, int threads,
            double points_per_sec, double baseline) {
  std::printf("%-12s batch=%-5zu threads=%d  %12.0f points/sec  %6.2fx\n",
              algorithm, batch, threads, points_per_sec,
              baseline > 0 ? points_per_sec / baseline : 1.0);
}

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  MicroOptions o;
  o.n = static_cast<size_t>(args.GetInt("n", static_cast<int64_t>(o.n)));
  o.dim = static_cast<size_t>(args.GetInt("dim", static_cast<int64_t>(o.dim)));
  o.k = static_cast<int>(args.GetInt("k", o.k));
  o.m = static_cast<int>(args.GetInt("m", o.m));
  o.epsilon = args.GetDouble("eps", o.epsilon);

  BlobsOptions data_options;
  data_options.n = o.n;
  data_options.dim = o.dim;
  data_options.num_groups = o.m;
  data_options.seed = 1;
  const Dataset ds = MakeBlobs(data_options);
  const std::vector<size_t> order = StreamOrder(ds.size(), 1);
  const DistanceBounds bounds = EstimateDistanceBounds(ds, 1000, 1);

  std::printf("=== micro_batch: StreamSink ingestion throughput ===\n");
  std::printf("n=%zu dim=%zu k=%d m=%d eps=%.2f kernel=%.*s (speedups vs "
              "batch=1, threads=1 per algorithm)\n\n",
              o.n, o.dim, o.k, o.m, o.epsilon,
              static_cast<int>(simd::ActiveKernelName().size()),
              simd::ActiveKernelName().data());

  const size_t kBatchSizes[] = {1, 64, 1024};
  const int kThreadCounts[] = {1, 4};

  // --- Algorithm 1 (unconstrained streaming) ---
  double baseline = 0.0;
  for (const int threads : kThreadCounts) {
    for (const size_t batch : kBatchSizes) {
      if (batch == 1 && threads > 1) continue;  // Observe path is 1-thread
      StreamingOptions streaming;
      streaming.epsilon = o.epsilon;
      streaming.d_min = bounds.min;
      streaming.d_max = bounds.max;
      streaming.batch_threads = threads;
      auto algo = StreamingDm::Create(o.k, ds.dim(), ds.metric_kind(),
                                      streaming);
      if (!algo.ok()) {
        std::fprintf(stderr, "StreamingDm: %s\n",
                     algo.status().ToString().c_str());
        return 1;
      }
      const double pps = IngestAll(*algo, ds, order, batch);
      if (batch == 1 && threads == 1) baseline = pps;
      Report("StreamingDM", batch, threads, pps, baseline);
    }
  }
  std::printf("\n");

  // --- SFDM2 ---
  // Equal representation distributes the remainder so Σ quotas == k and
  // the SFDM2 rows run at exactly the k the banner reports.
  const auto constraint_result = EqualRepresentation(o.k, o.m);
  if (!constraint_result.ok()) {
    std::fprintf(stderr, "constraint: %s\n",
                 constraint_result.status().ToString().c_str());
    return 1;
  }
  const FairnessConstraint& constraint = constraint_result.value();
  baseline = 0.0;
  for (const int threads : kThreadCounts) {
    for (const size_t batch : kBatchSizes) {
      if (batch == 1 && threads > 1) continue;
      StreamingOptions streaming;
      streaming.epsilon = o.epsilon;
      streaming.d_min = bounds.min;
      streaming.d_max = bounds.max;
      streaming.batch_threads = threads;
      auto algo = Sfdm2::Create(constraint, ds.dim(), ds.metric_kind(),
                                streaming);
      if (!algo.ok()) {
        std::fprintf(stderr, "Sfdm2: %s\n", algo.status().ToString().c_str());
        return 1;
      }
      const double pps = IngestAll(*algo, ds, order, batch);
      if (batch == 1 && threads == 1) baseline = pps;
      Report("SFDM2", batch, threads, pps, baseline);
    }
  }
  return 0;
}

}  // namespace
}  // namespace fdm

int main(int argc, char** argv) { return fdm::Main(argc, argv); }
