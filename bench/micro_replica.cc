// Replication microbenchmark + seeded soak: follower bootstrap latency,
// WAL-tail catch-up throughput, replication-lag distribution while the
// primary ingests live, and follower-vs-primary cached SOLVE throughput.
// Emits machine-readable BENCH_replica.json (default:
// results/BENCH_replica.json) so future PRs track the replica-serving
// trajectory.
//
//   ./micro_replica [--n=20000] [--dim=8] [--out=results]
//                   [--min-solve-ratio=0]   fail when follower cached
//                                           SOLVE/s < ratio × primary's
//   ./micro_replica --soak --n=200000 --kills=10 --seed=7
//                                           randomized kill/restart soak:
//                                           ingest the stream in seeded
//                                           random slices, kill the
//                                           follower (fresh bootstrap) at
//                                           seeded points, snapshot the
//                                           primary at seeded points
//                                           (pruning races included), and
//                                           require bit-identical solutions
//                                           at the matched state version
//                                           after the final catch-up.
//
// Sections (bench mode):
//   bootstrap       snapshot-restore + tail-apply time of a cold follower
//   catchup         WAL-tail-only apply points/sec (no snapshot available)
//   lag             per-poll lag samples while the primary ingests live
//                   (bounded polls) — p50/p99 + final lag
//   solve_ratio     follower cached SOLVE/s ÷ primary cached SOLVE/s

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "obs/histogram.h"
#include "replica/replica_session.h"
#include "replica/replication_source.h"
#include "service/durable_session.h"
#include "util/argparse.h"
#include "util/rng.h"
#include "util/timer.h"

namespace fdm {
namespace {

std::string SpecFor(const Dataset& ds) {
  const DistanceBounds b = EstimateDistanceBounds(ds, 1000, 1);
  return "algo=sfdm2 dim=" + std::to_string(ds.dim()) +
         " quotas=10,10 dmin=" + std::to_string(b.min) +
         " dmax=" + std::to_string(b.max);
}

Status FeedBatched(DurableSession& session, const Dataset& ds, size_t begin,
                   size_t end) {
  std::vector<StreamPoint> batch;
  batch.reserve(256);
  for (size_t i = begin; i < end; ++i) {
    batch.push_back(ds.At(i));
    if (batch.size() == 256 || i + 1 == end) {
      if (Status s = session.ObserveBatch(batch); !s.ok()) return s;
      batch.clear();
    }
  }
  return Status::Ok();
}

bool SameSolution(const Result<Solution>& a, const Result<Solution>& b) {
  if (a.ok() != b.ok()) return false;
  if (!a.ok()) return true;
  return a->Ids() == b->Ids() && a->diversity == b->diversity &&
         a->mu == b->mu;
}

/// Seeded kill/restart soak; returns 0 on bit-identical convergence.
int RunSoak(const Dataset& ds, const std::string& scratch, int kills,
            uint64_t seed) {
  const std::string dir = scratch + "/soak_primary";
  const std::string spec = SpecFor(ds);
  DurableSessionOptions options;
  options.wal.segment_bytes = 64u << 10;  // rotations + pruning are real
  options.keep_snapshots = 2;
  auto primary = DurableSession::Create(dir, spec, options);
  if (!primary.ok()) {
    std::fprintf(stderr, "soak: %s\n", primary.status().ToString().c_str());
    return 1;
  }

  Rng rng(seed);
  // Kill points: `kills` distinct stream positions, plus snapshot points
  // interleaved so bootstraps land on changing snapshot/tail splits.
  std::vector<size_t> cuts;
  for (int i = 0; i < kills; ++i) {
    cuts.push_back(1 + static_cast<size_t>(rng.NextBounded(ds.size())));
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  cuts.push_back(ds.size());

  auto source = std::make_shared<DirReplicationSource>(dir);
  std::unique_ptr<ReplicaSession> follower;
  ReplicaOptions follower_options;
  follower_options.max_records_per_poll = 8192;
  uint64_t restarts = 0;
  size_t fed = 0;

  for (const size_t cut : cuts) {
    if (cut <= fed) continue;
    if (Status s = FeedBatched(*primary, ds, fed, cut); !s.ok()) {
      std::fprintf(stderr, "soak feed: %s\n", s.ToString().c_str());
      return 1;
    }
    fed = cut;
    // Seeded coin: snapshot (prunes the tail under the follower) or just
    // sync (WAL-only tail grows).
    const Status durability =
        (rng.NextUint64() & 1) != 0 ? primary->TakeSnapshot() : primary->Sync();
    if (!durability.ok()) {
      std::fprintf(stderr, "soak sync: %s\n", durability.ToString().c_str());
      return 1;
    }
    // Kill the follower here: drop it and bootstrap a fresh one, or poll
    // the survivor — seeded either way.
    if (follower == nullptr || (rng.NextUint64() & 1) != 0) {
      follower.reset();
      auto booted = ReplicaSession::Bootstrap(source, follower_options);
      if (!booted.ok()) {
        std::fprintf(stderr, "soak bootstrap: %s\n",
                     booted.status().ToString().c_str());
        return 1;
      }
      follower = std::make_unique<ReplicaSession>(std::move(booted.value()));
      ++restarts;
    }
    for (int i = 0; i < 1000 && follower->Stats().lag > 0; ++i) {
      if (auto polled = follower->Poll(); !polled.ok()) {
        std::fprintf(stderr, "soak poll: %s\n",
                     polled.status().ToString().c_str());
        return 1;
      }
    }
    if (follower->Stats().lag != 0) {
      std::fprintf(stderr, "soak: follower stuck at lag %lld\n",
                   static_cast<long long>(follower->Stats().lag));
      return 1;
    }
  }

  if (!primary->Sync().ok()) return 1;
  if (auto polled = follower->Poll(); !polled.ok()) return 1;
  const bool versions_match =
      follower->StateVersion() == primary->StateVersion();
  const bool solutions_match =
      SameSolution(follower->Solve(), primary->Solve());
  const auto stats = follower->Stats();
  std::printf(
      "soak: n=%zu kills(planned)=%d restarts=%llu resyncs=%llu "
      "versions_match=%d solutions_match=%d\n",
      ds.size(), kills, static_cast<unsigned long long>(restarts),
      static_cast<unsigned long long>(stats.resyncs),
      versions_match ? 1 : 0, solutions_match ? 1 : 0);
  if (!versions_match || !solutions_match) {
    std::fprintf(stderr,
                 "soak FAILED: follower not bit-identical to primary at "
                 "matched position\n");
    return 1;
  }
  std::printf("soak PASS\n");
  return 0;
}

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const size_t n = static_cast<size_t>(args.GetInt("n", 20000));
  const size_t dim = static_cast<size_t>(args.GetInt("dim", 8));
  const std::string out_dir = args.GetString("out", "results");
  const double min_solve_ratio = args.GetDouble("min-solve-ratio", 0.0);

  BlobsOptions data_options;
  data_options.n = n;
  data_options.dim = dim;
  data_options.num_groups = 2;
  data_options.seed = 1;
  const Dataset ds = MakeBlobs(data_options);

  const std::string scratch =
      (std::filesystem::temp_directory_path() / "fdm_micro_replica").string();
  std::filesystem::remove_all(scratch);

  if (args.GetBool("soak", false)) {
    const int kills = static_cast<int>(args.GetInt("kills", 10));
    const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 7));
    const int rc = RunSoak(ds, scratch, kills, seed);
    std::filesystem::remove_all(scratch);
    return rc;
  }

  const std::string spec = SpecFor(ds);
  std::printf("=== micro_replica: read-replica serving ===\n");
  std::printf("n=%zu dim=%zu spec: %s\n\n", n, dim, spec.c_str());

  double bootstrap_ms = 0.0;
  double catchup_pps = 0.0;
  double lag_p50 = 0.0, lag_p99 = 0.0;
  int64_t final_lag = -1;
  double primary_solves_per_sec = 0.0, follower_solves_per_sec = 0.0;

  // --- Bootstrap (snapshot at midpoint + WAL tail) --------------------
  {
    const std::string dir = scratch + "/bootstrap";
    auto primary = DurableSession::Create(dir, spec);
    if (!primary.ok()) {
      std::fprintf(stderr, "create: %s\n",
                   primary.status().ToString().c_str());
      return 1;
    }
    if (!FeedBatched(*primary, ds, 0, ds.size() / 2).ok()) return 1;
    if (!primary->TakeSnapshot().ok()) return 1;
    if (!FeedBatched(*primary, ds, ds.size() / 2, ds.size()).ok()) return 1;
    if (!primary->Sync().ok()) return 1;

    Timer timer;
    auto follower = ReplicaSession::Bootstrap(
        std::make_shared<DirReplicationSource>(dir));
    bootstrap_ms = timer.ElapsedSeconds() * 1000.0;
    if (!follower.ok()) {
      std::fprintf(stderr, "bootstrap: %s\n",
                   follower.status().ToString().c_str());
      return 1;
    }
    std::printf("bootstrap:       %10.2f ms (snapshot@%zu + %zu-record "
                "tail)\n",
                bootstrap_ms, ds.size() / 2, ds.size() - ds.size() / 2);

    // --- Cached SOLVE throughput, follower vs primary -----------------
    if (!primary->Solve().ok() || !follower->Solve().ok()) return 1;
    constexpr int kSolves = 20000;
    Timer primary_timer;
    for (int i = 0; i < kSolves; ++i) {
      if (!primary->Solve().ok()) return 1;
    }
    primary_solves_per_sec = kSolves / primary_timer.ElapsedSeconds();
    Timer follower_timer;
    for (int i = 0; i < kSolves; ++i) {
      if (!follower->Solve().ok()) return 1;
    }
    follower_solves_per_sec = kSolves / follower_timer.ElapsedSeconds();
    std::printf("cached SOLVE:    %10.0f /s primary  %10.0f /s follower "
                "(ratio %.2f)\n",
                primary_solves_per_sec, follower_solves_per_sec,
                follower_solves_per_sec / primary_solves_per_sec);
  }

  // --- Catch-up throughput (WAL tail only, no snapshot) ---------------
  {
    const std::string dir = scratch + "/catchup";
    auto primary = DurableSession::Create(dir, spec);
    if (!primary.ok()) return 1;
    if (!FeedBatched(*primary, ds, 0, ds.size()).ok()) return 1;
    if (!primary->Sync().ok()) return 1;
    Timer timer;
    auto follower = ReplicaSession::Bootstrap(
        std::make_shared<DirReplicationSource>(dir));
    const double sec = timer.ElapsedSeconds();
    if (!follower.ok()) return 1;
    catchup_pps = static_cast<double>(ds.size()) / sec;
    std::printf("catchup:         %10.0f points/sec (%zu records, "
                "tail-only)\n",
                catchup_pps, ds.size());
  }

  // --- Lag while the primary ingests (bounded polls) ------------------
  {
    const std::string dir = scratch + "/lag";
    auto primary = DurableSession::Create(dir, spec);
    if (!primary.ok()) return 1;
    if (!FeedBatched(*primary, ds, 0, 1024).ok()) return 1;
    if (!primary->Sync().ok()) return 1;
    ReplicaOptions bounded;
    bounded.max_records_per_poll = 2048;
    auto follower = ReplicaSession::Bootstrap(
        std::make_shared<DirReplicationSource>(dir), bounded);
    if (!follower.ok()) return 1;

    // Per-poll lag samples through the shared log-bucketed histogram:
    // p50/p99 are bucket upper bounds (exact below 8, ≤ 14% high above),
    // the same semantics the METRICS plane reports for fdm_replica_lag.
    obs::HistogramSnapshot lag_hist;
    size_t fed = 1024;
    while (fed < ds.size()) {
      const size_t slice = std::min<size_t>(4096, ds.size() - fed);
      if (!FeedBatched(*primary, ds, fed, fed + slice).ok()) return 1;
      fed += slice;
      if (!primary->Sync().ok()) return 1;
      if (!follower->Poll().ok()) return 1;
      lag_hist.Record(
          static_cast<uint64_t>(std::max<int64_t>(0, follower->Stats().lag)));
    }
    for (int i = 0; i < 1000 && follower->Stats().lag > 0; ++i) {
      if (!follower->Poll().ok()) return 1;
      lag_hist.Record(
          static_cast<uint64_t>(std::max<int64_t>(0, follower->Stats().lag)));
    }
    final_lag = follower->Stats().lag;
    lag_p50 = static_cast<double>(lag_hist.Percentile(0.5));
    lag_p99 = static_cast<double>(lag_hist.Percentile(0.99));
    std::printf("lag:             p50=%.0f p99=%.0f final=%lld "
                "(records behind, %llu polls)\n",
                lag_p50, lag_p99, static_cast<long long>(final_lag),
                static_cast<unsigned long long>(lag_hist.count));
  }

  std::filesystem::remove_all(scratch);

  // --- BENCH_replica.json --------------------------------------------
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string json_path = out_dir + "/BENCH_replica.json";
  {
    std::ofstream json(json_path);
    json << "{\n"
         << "  \"n\": " << n << ",\n"
         << "  \"dim\": " << dim << ",\n"
         << "  \"bootstrap\": {\"latency_ms\": " << bootstrap_ms << "},\n"
         << "  \"catchup\": {\"points_per_sec\": " << catchup_pps << "},\n"
         << "  \"lag\": {\"p50\": " << lag_p50 << ", \"p99\": " << lag_p99
         << ", \"final\": " << final_lag << "},\n"
         << "  \"cached_solve\": {\"primary_per_sec\": "
         << primary_solves_per_sec << ", \"follower_per_sec\": "
         << follower_solves_per_sec << ", \"ratio\": "
         << (primary_solves_per_sec > 0.0
                 ? follower_solves_per_sec / primary_solves_per_sec
                 : 0.0)
         << "}\n}\n";
    if (!json) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  if (final_lag != 0) {
    std::fprintf(stderr, "FAIL: follower never fully caught up (lag %lld)\n",
                 static_cast<long long>(final_lag));
    return 1;
  }
  if (min_solve_ratio > 0.0 &&
      follower_solves_per_sec < min_solve_ratio * primary_solves_per_sec) {
    std::fprintf(stderr,
                 "FAIL: follower cached SOLVE %.0f/s < %.2f x primary "
                 "%.0f/s\n",
                 follower_solves_per_sec, min_solve_ratio,
                 primary_solves_per_sec);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fdm

int main(int argc, char** argv) { return fdm::Main(argc, argv); }
