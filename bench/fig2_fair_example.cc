// Reproduces Fig. 2: unconstrained vs fair diversity maximization on a
// two-group 2-D dataset (k = 10, k_i = 5).
//
// Shape to expect: the unconstrained solution may take most points from one
// group; the fair solution contains exactly 5 from each group at a small
// cost in diversity.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/diversity.h"
#include "core/gmm.h"
#include "core/sfdm1.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace fdm::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  Banner("Fig. 2: unconstrained vs fair diversity maximization (k=10, "
         "k_i=5)", options);

  // Two attribute dimensions (e.g. income and capital gain), two
  // demographic groups with shifted distributions — the Fig. 2 setting:
  // the blue group spans the whole attribute range while the red group is
  // concentrated, so the unconstrained solution over-picks blue.
  const size_t n = options.Size(1000, 1000);
  Dataset ds("fig2-population", 2, 2, MetricKind::kEuclidean);
  {
    Rng rng(options.seed);
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextDouble() < 0.7) {
        const double p[2] = {rng.NextDouble(), rng.NextDouble()};
        ds.Add(p, 0);  // spread-out group
      } else {
        const double p[2] = {0.68 + 0.05 * rng.NextGaussian(),
                             0.3 + 0.05 * rng.NextGaussian()};
        ds.Add(p, 1);  // concentrated group
      }
    }
  }
  const int k = 10;

  // Unconstrained: GMM.
  const std::vector<size_t> unconstrained =
      GreedyGmm(ds, static_cast<size_t>(k));
  std::vector<int> counts(2, 0);
  for (const size_t i : unconstrained) ++counts[static_cast<size_t>(ds.GroupOf(i))];

  // Fair: SFDM1 with k_i = 5.
  RunConfig config;
  config.algorithm = AlgorithmKind::kSfdm1;
  config.constraint = EqualRepresentation(k, 2).value();
  config.epsilon = 0.1;
  config.bounds = BoundsForExperiments(ds);
  const RunResult fair = RunAlgorithm(ds, config);

  TablePrinter table(
      {"solution", "diversity", "group 0 count", "group 1 count"});
  table.AddRow({"unconstrained (GMM)",
                Cell(true, MinPairwiseDistance(ds, unconstrained), 4),
                std::to_string(counts[0]), std::to_string(counts[1])});
  if (fair.ok) {
    std::vector<int> fair_counts(2, 0);
    for (const int64_t id : fair.selected_ids) {
      ++fair_counts[static_cast<size_t>(
          ds.GroupOf(static_cast<size_t>(id)))];
    }
    table.AddRow({"fair (SFDM1, 5+5)", Cell(true, fair.diversity, 4),
                  std::to_string(fair_counts[0]),
                  std::to_string(fair_counts[1])});
  } else {
    std::fprintf(stderr, "fair run failed: %s\n", fair.error.c_str());
  }
  table.Print(std::cout);
  // Shape: the unconstrained selection over-represents the spread-out
  // group; the fair one is exactly balanced at a diversity cost.
  const bool unconstrained_imbalanced = counts[0] != counts[1];
  const bool fair_costs_diversity =
      fair.ok &&
      fair.diversity <= MinPairwiseDistance(ds, unconstrained) + 1e-9;
  std::printf("\nshape check (unconstrained imbalanced: %s; fair balanced "
              "at a diversity cost: %s)\n",
              unconstrained_imbalanced ? "OK" : "VIOLATED",
              fair_costs_diversity ? "OK" : "VIOLATED");

  if (EnsureDirectory(options.out_dir)) {
    TablePrinter pts({"solution", "x", "y", "group"});
    for (const size_t i : unconstrained) {
      pts.AddRow({"unconstrained", Cell(true, ds.Point(i)[0], 5),
                  Cell(true, ds.Point(i)[1], 5),
                  std::to_string(ds.GroupOf(i))});
    }
    if (fair.ok) {
      for (const int64_t id : fair.selected_ids) {
        const size_t i = static_cast<size_t>(id);
        pts.AddRow({"fair", Cell(true, ds.Point(i)[0], 5),
                    Cell(true, ds.Point(i)[1], 5),
                    std::to_string(ds.GroupOf(i))});
      }
    }
    (void)pts.WriteCsv(options.out_dir + "/fig2_selections.csv");
    (void)WriteDatasetCsv(ds, options.out_dir + "/fig2_points.csv");
    std::printf("CSV written to %s/fig2_selections.csv (+fig2_points.csv)\n",
                options.out_dir.c_str());
  }
  return fair.ok ? 0 : 1;
}

}  // namespace
}  // namespace fdm::bench

int main(int argc, char** argv) { return fdm::bench::Main(argc, argv); }
