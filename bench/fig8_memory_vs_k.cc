// Reproduces Fig. 8: number of stored elements with varying k for SFDM1
// and SFDM2 on Adult (sex m=2, race m=5) and Census (sex m=2, age m=7).
//
// Shapes to expect: stored elements grow linearly with k for both
// algorithms; SFDM2 stores more than SFDM1, and more for larger m (its
// group-specific candidates have capacity k each).

#include <cstdio>
#include <iostream>

#include "bench_common.h"

namespace fdm::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  Banner("Fig. 8: stored elements with varying k", options);

  struct Series {
    std::string label;
    Dataset dataset;
    AlgorithmKind algorithm;
  };
  const size_t adult_n = options.Size(20000, 48842);
  const size_t census_n = options.Size(20000, kCensusFullSize);
  std::vector<Series> series;
  series.push_back({"Adult SFDM1",
                    SimulatedAdult(AdultGrouping::kSex, options.seed, adult_n),
                    AlgorithmKind::kSfdm1});
  series.push_back({"Adult SFDM2(sex)",
                    SimulatedAdult(AdultGrouping::kSex, options.seed, adult_n),
                    AlgorithmKind::kSfdm2});
  series.push_back({"Adult SFDM2(race)",
                    SimulatedAdult(AdultGrouping::kRace, options.seed, adult_n),
                    AlgorithmKind::kSfdm2});
  series.push_back({"Census SFDM1",
                    SimulatedCensus(CensusGrouping::kSex, options.seed,
                                    census_n),
                    AlgorithmKind::kSfdm1});
  series.push_back({"Census SFDM2(sex)",
                    SimulatedCensus(CensusGrouping::kSex, options.seed,
                                    census_n),
                    AlgorithmKind::kSfdm2});
  series.push_back({"Census SFDM2(age)",
                    SimulatedCensus(CensusGrouping::kAge, options.seed,
                                    census_n),
                    AlgorithmKind::kSfdm2});

  TablePrinter table({"series", "k", "#elements"});
  for (const auto& s : series) {
    const Dataset& ds = s.dataset;
    const int m = ds.num_groups();
    const DistanceBounds bounds = BoundsForExperiments(ds);
    for (const int k : KValues(m, options.full)) {
      const auto constraint = EqualRepresentation(k, m);
      if (!constraint.ok()) continue;
      RunConfig config;
      config.algorithm = s.algorithm;
      config.constraint = constraint.value();
      config.epsilon = 0.1;
      config.bounds = bounds;
      const AggregateResult r = RunRepeated(ds, config, options.runs);
      table.AddRow({s.label, std::to_string(k),
                    Cell(r.ok_runs > 0, r.stored_elements, 1)});
    }
    std::printf("[done] %s (n=%zu)\n", s.label.c_str(), ds.size());
    std::fflush(stdout);
  }

  std::printf("\n");
  table.Print(std::cout);
  if (EnsureDirectory(options.out_dir)) {
    (void)table.WriteCsv(options.out_dir + "/fig8_memory_vs_k.csv");
    std::printf("\nCSV written to %s/fig8_memory_vs_k.csv\n",
                options.out_dir.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fdm::bench

int main(int argc, char** argv) { return fdm::bench::Main(argc, argv); }
