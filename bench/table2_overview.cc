// Reproduces Table II: overview of the performance of different algorithms
// (k = 20) — diversity, running time, and #stored elements for GMM,
// FairSwap, FairFlow, SFDM1, and SFDM2 on every dataset × grouping cell.
//
// Shapes to expect (paper): streaming algorithms within a few percent of
// FairSwap's diversity at m=2 (SFDM2 sometimes better), FairFlow clearly
// the worst diversity for m > 2, streaming orders of magnitude faster than
// the offline baselines, and stored elements ≪ n (growing with m for
// SFDM2).

#include <cstdio>
#include <iostream>

#include "bench_common.h"

namespace fdm::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  Banner("Table II: overview of algorithm performance (k = 20)", options);
  const int k = 20;

  TablePrinter table({"dataset", "group", "m", "algorithm", "diversity",
                      "time(s)", "update(us)", "#elem"});

  for (const auto& cell : TableTwoGrid(options)) {
    const Dataset& ds = cell.dataset;
    const int m = ds.num_groups();
    const auto constraint = EqualRepresentation(k, m);
    if (!constraint.ok()) continue;
    RunConfig config;
    config.constraint = constraint.value();
    config.epsilon = cell.epsilon;
    config.bounds = BoundsForExperiments(ds);

    std::vector<AlgorithmKind> algorithms = {AlgorithmKind::kGmm,
                                             AlgorithmKind::kFairFlow,
                                             AlgorithmKind::kSfdm2};
    if (m == 2) {
      algorithms.insert(algorithms.begin() + 1, AlgorithmKind::kFairSwap);
      algorithms.insert(algorithms.end() - 1, AlgorithmKind::kSfdm1);
    }

    for (const AlgorithmKind algo : algorithms) {
      config.algorithm = algo;
      const AggregateResult r = RunRepeated(ds, config, options.runs);
      if (r.ok_runs == 0) {
        table.AddRow({cell.dataset_label, cell.group_label, std::to_string(m),
                      std::string(AlgorithmName(algo)), "-", "-", "-", "-"});
        std::fprintf(stderr, "  [%s/%s] %s failed: %s\n",
                     cell.dataset_label.c_str(), cell.group_label.c_str(),
                     std::string(AlgorithmName(algo)).c_str(),
                     r.error.c_str());
        continue;
      }
      const bool streaming = IsStreaming(algo);
      table.AddRow(
          {cell.dataset_label, cell.group_label, std::to_string(m),
           std::string(AlgorithmName(algo)), Cell(true, r.diversity, 4),
           Cell(true, PaperTimeSeconds(r, algo), 5),
           streaming ? Cell(true, r.avg_update_ms * 1e3, 2) : "-",
           streaming ? Cell(true, r.stored_elements, 1)
                     : std::to_string(ds.size())});
    }
    // Progressive output: print after each dataset cell so long runs show
    // progress in the tee'd log.
    std::printf("[done] %s / %s (n=%zu, m=%d)\n", cell.dataset_label.c_str(),
                cell.group_label.c_str(), ds.size(), m);
    std::fflush(stdout);
  }

  std::printf("\n");
  table.Print(std::cout);
  std::printf("\nNotes: time(s) is the cost to produce a solution on demand "
              "— full recompute for offline algorithms, post-processing for "
              "streaming ones (the paper's Table II semantics); update(us) "
              "is the streaming per-element upkeep; 2*div(GMM) upper-bounds "
              "OPT_f; '-' marks inapplicable cells (FairSwap/SFDM1 need "
              "m=2; FairGMM is excluded at k=20, as in the paper).\n");
  if (EnsureDirectory(options.out_dir)) {
    (void)table.WriteCsv(options.out_dir + "/table2_overview.csv");
    std::printf("CSV written to %s/table2_overview.csv\n",
                options.out_dir.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fdm::bench

int main(int argc, char** argv) { return fdm::bench::Main(argc, argv); }
