// Reproduces Fig. 7: running time with varying k on the same eight panels
// as Fig. 6 (GMM is excluded, as in the paper's figure).
//
// Shapes to expect: every algorithm's time grows with k; the streaming
// algorithms sit orders of magnitude below the offline baselines; SFDM2's
// time rises fastest in k when m is large (quadratic post-processing).

#include <cstdio>
#include <iostream>

#include "bench_common.h"

namespace fdm::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  Banner("Fig. 7: running time with varying k", options);

  // time(s) uses the paper's semantics: cost to produce a solution on
  // demand (offline: full recompute; streaming: post-processing). The
  // stream(s)/post(s) columns expose the raw decomposition.
  TablePrinter table({"panel", "k", "algorithm", "time(s)", "stream(s)",
                      "post(s)"});
  for (const auto& panel : KSweepPanels(options)) {
    const Dataset& ds = panel.dataset;
    const int m = ds.num_groups();
    const DistanceBounds bounds = BoundsForExperiments(ds);
    const std::string panel_label =
        panel.dataset_label + " " + panel.group_label;
    for (const int k : KValues(m, options.full)) {
      const auto constraint = EqualRepresentation(k, m);
      if (!constraint.ok()) continue;
      for (const AlgorithmKind algo :
           ApplicableAlgorithms(m, k, /*include_gmm=*/false)) {
        RunConfig config;
        config.algorithm = algo;
        config.constraint = constraint.value();
        config.epsilon = panel.epsilon;
        config.bounds = bounds;
        const AggregateResult r = RunRepeated(ds, config, options.runs);
        table.AddRow({panel_label, std::to_string(k),
                      std::string(AlgorithmName(algo)),
                      Cell(r.ok_runs > 0, PaperTimeSeconds(r, algo), 5),
                      Cell(r.ok_runs > 0, r.stream_time_sec, 4),
                      Cell(r.ok_runs > 0, r.post_time_sec, 4)});
      }
    }
    std::printf("[done] %s (n=%zu)\n", panel_label.c_str(), ds.size());
    std::fflush(stdout);
  }

  std::printf("\n");
  table.Print(std::cout);
  if (EnsureDirectory(options.out_dir)) {
    (void)table.WriteCsv(options.out_dir + "/fig7_time_vs_k.csv");
    std::printf("\nCSV written to %s/fig7_time_vs_k.csv\n",
                options.out_dir.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fdm::bench

int main(int argc, char** argv) { return fdm::bench::Main(argc, argv); }
