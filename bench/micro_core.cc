// Google-benchmark micro suite for the core primitives (not a paper
// table/figure; used to track per-operation costs of the hot paths):
// distance kernels, streaming candidate insertion, threshold clustering,
// GMM, matroid intersection, and end-to-end per-element stream cost.

#include <benchmark/benchmark.h>

#include "core/clustering.h"
#include "core/gmm.h"
#include "core/matroid.h"
#include "core/matroid_intersection.h"
#include "core/sfdm2.h"
#include "core/streaming_candidate.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace fdm {
namespace {

void BM_DistanceKernel(benchmark::State& state, MetricKind kind) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> a(dim), b(dim);
  for (size_t d = 0; d < dim; ++d) {
    a[d] = rng.NextDouble();
    b[d] = rng.NextDouble();
  }
  const Metric metric(kind);
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_DistanceKernel, euclidean, MetricKind::kEuclidean)
    ->Arg(6)->Arg(25)->Arg(50);
BENCHMARK_CAPTURE(BM_DistanceKernel, manhattan, MetricKind::kManhattan)
    ->Arg(25)->Arg(41);
BENCHMARK_CAPTURE(BM_DistanceKernel, angular, MetricKind::kAngular)
    ->Arg(50);

void BM_CandidateTryAdd(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const Metric metric(MetricKind::kEuclidean);
  Rng rng(2);
  // Pre-fill a candidate to capacity, then measure the rejection path
  // (the common case once the stream is warm).
  StreamingCandidate cand(0.01, k, 2);
  int64_t id = 0;
  while (!cand.Full()) {
    const std::vector<double> c{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    cand.TryAdd(StreamPoint{id++, 0, std::span<const double>(c)}, metric);
  }
  const std::vector<double> probe{50.0, 50.0};
  const StreamPoint p{id, 0, std::span<const double>(probe)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cand.TryAdd(p, metric));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CandidateTryAdd)->Arg(10)->Arg(20)->Arg(50);

void BM_ThresholdClustering(benchmark::State& state) {
  const size_t l = static_cast<size_t>(state.range(0));
  Rng rng(3);
  PointBuffer buf(2, l);
  for (size_t i = 0; i < l; ++i) {
    const std::vector<double> c{rng.NextDouble(0, 10), rng.NextDouble(0, 10)};
    buf.Add(StreamPoint{static_cast<int64_t>(i), 0,
                        std::span<const double>(c)});
  }
  const Metric metric(MetricKind::kEuclidean);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ThresholdClusters(buf, metric, 0.5));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(l));
}
BENCHMARK(BM_ThresholdClustering)->Arg(60)->Arg(300)->Arg(750);

void BM_GreedyGmm(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  BlobsOptions opt;
  opt.n = n;
  opt.seed = 4;
  const Dataset ds = MakeBlobs(opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyGmm(ds, k));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n * k));
}
BENCHMARK(BM_GreedyGmm)->Args({10000, 20})->Args({100000, 20})
    ->Args({10000, 50});

void BM_MatroidIntersection(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  Rng rng(5);
  std::vector<int> group_labels(static_cast<size_t>(l));
  std::vector<int> cluster_labels(static_cast<size_t>(l));
  for (int e = 0; e < l; ++e) {
    group_labels[static_cast<size_t>(e)] = static_cast<int>(rng.NextBounded(m));
    cluster_labels[static_cast<size_t>(e)] =
        static_cast<int>(rng.NextBounded(l / 2 + 1));
  }
  const PartitionMatroid m1(group_labels,
                            std::vector<int>(static_cast<size_t>(m), 3));
  const PartitionMatroid m2(
      cluster_labels, std::vector<int>(static_cast<size_t>(l / 2 + 1), 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxCardinalityMatroidIntersection(m1, m2, {}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatroidIntersection)->Args({60, 3})->Args({300, 10})
    ->Args({750, 15});

void BM_Sfdm2PerElement(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  BlobsOptions opt;
  opt.n = 20000;
  opt.num_groups = m;
  opt.seed = 6;
  const Dataset ds = MakeBlobs(opt);
  FairnessConstraint c;
  c.quotas.assign(static_cast<size_t>(m), 20 / m);
  StreamingOptions streaming;
  streaming.epsilon = 0.1;
  const DistanceBounds bounds = EstimateDistanceBounds(ds, 500, 1);
  streaming.d_min = bounds.min;
  streaming.d_max = bounds.max;
  auto algo = Sfdm2::Create(c, 2, MetricKind::kEuclidean, streaming);
  size_t row = 0;
  for (auto _ : state) {
    algo->Observe(ds.At(row));
    row = (row + 1) % ds.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sfdm2PerElement)->Arg(2)->Arg(10);

}  // namespace
}  // namespace fdm

BENCHMARK_MAIN();
