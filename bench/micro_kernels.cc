// Distance-kernel microbenchmark: per-metric, per-dispatch-target
// one-to-many scan throughput over the paper's dimension range, plus the
// batched Q×N kernel and the offline full-dists scan (RawDistancesToAll —
// the cold-SOLVE unit), with scalar-vs-SIMD speedup ratios. Emits
// machine-readable BENCH_kernels.json (default: results/BENCH_kernels.json)
// so future PRs can track the kernel trajectory, plus a human summary.
//
//   ./micro_kernels [--reps_scale=1.0] [--out=results] [--min-speedup=0]
//
// Grid: metrics {euclidean, manhattan, angular} × dims {2, 8, 25, 100} ×
// buffer sizes {64, 1024, 16384} × every dispatch target reachable on this
// machine (`FDM_KERNEL` forces the *default* target but the sweep always
// measures all of them). Scans are exact full scans (stop_below = -inf) —
// the admission path's early exits only shorten scans, so full scans are
// the stable, comparable unit.
//
// --min-speedup=X (CI smoke): exit non-zero unless the best SIMD Euclidean
// one-to-many kernel AND the best SIMD offline full-dists kernel each reach
// X× the scalar target at dim 25 / 16k stored points. Vacuously passes
// (with a warning) when no SIMD target is available on the machine.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "geo/metric.h"
#include "geo/point_buffer.h"
#include "geo/simd/kernel_dispatch.h"
#include "util/argparse.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace fdm {
namespace {

constexpr size_t kDims[] = {2, 8, 25, 100};
constexpr size_t kSizes[] = {64, 1024, 16384};
constexpr MetricKind kMetrics[] = {MetricKind::kEuclidean,
                                   MetricKind::kManhattan,
                                   MetricKind::kAngular};
constexpr size_t kBatchQueries = 64;

struct Cell {
  std::string metric;
  size_t dim = 0;
  size_t n = 0;
  std::string target;
  double single_ns_per_point = 0.0;   // one-to-many scan, per stored point
  double batch_ns_per_point = 0.0;    // Q×N kernel, per (query, point) pair
  double offline_ns_per_point = 0.0;  // full-dists scan (RawDistancesToAll)
  double speedup_vs_scalar = 0.0;     // single-scan ratio, filled later
  double offline_speedup_vs_scalar = 0.0;  // full-dists ratio, filled later
};

std::vector<double> RandomPoint(Rng& rng, size_t dim) {
  std::vector<double> p(dim);
  for (double& c : p) c = rng.NextDouble(-5.0, 5.0);
  return p;
}

/// Times `scans` full one-to-many scans and `batch_rounds` Q×N batch
/// scans of `buffer`, returning per-point costs.
void TimeKernels(const PointBuffer& buffer, const Metric& metric,
                 const std::vector<std::vector<double>>& queries,
                 double reps_scale, Cell& cell) {
  const size_t n = buffer.size();
  // Aim for ~20M point-visits per measurement so even the fastest cell
  // runs long enough to time reliably.
  const size_t scans = std::max<size_t>(
      3, static_cast<size_t>(reps_scale * 2e7 / static_cast<double>(n)));
  double sink = 0.0;  // defeat dead-code elimination
  {
    Timer timer;
    for (size_t s = 0; s < scans; ++s) {
      sink += buffer.MinRawDistanceTo(queries[s % queries.size()], metric);
    }
    cell.single_ns_per_point =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(scans * n);
  }
  {
    std::vector<const double*> q_ptrs(kBatchQueries);
    for (size_t q = 0; q < kBatchQueries; ++q) {
      q_ptrs[q] = queries[q % queries.size()].data();
    }
    const std::vector<double> stops(
        kBatchQueries, -std::numeric_limits<double>::infinity());
    std::vector<double> out(kBatchQueries);
    const size_t rounds = std::max<size_t>(1, scans / kBatchQueries);
    Timer timer;
    for (size_t r = 0; r < rounds; ++r) {
      buffer.MinRawDistanceToMany(
          std::span<const double* const>(q_ptrs.data(), q_ptrs.size()),
          metric, stops, std::span<double>(out.data(), out.size()));
      sink += out[0];
    }
    cell.batch_ns_per_point =
        timer.ElapsedSeconds() * 1e9 /
        static_cast<double>(rounds * kBatchQueries * n);
  }
  {
    // The offline Solve-path unit: materialize *all* raw distances to the
    // stored set (no min reduction, no early exit) — what GreedyGmm's
    // relax step, the pairwise-diversity rows, and MaxSumGreedy's updates
    // consume per point.
    std::vector<double> dists;
    Timer timer;
    for (size_t s = 0; s < scans; ++s) {
      buffer.RawDistancesToAll(queries[s % queries.size()], metric, dists);
      sink += dists[0];
    }
    cell.offline_ns_per_point =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(scans * n);
  }
  if (sink == 0.12345) std::printf("?");  // never true; keeps `sink` live
}

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double reps_scale = args.GetDouble("reps_scale", 1.0);
  const std::string out_dir = args.GetString("out", "results");
  const double min_speedup = args.GetDouble("min-speedup", 0.0);

  const std::vector<std::string_view> targets = simd::AvailableKernelTargets();
  std::printf("=== micro_kernels: one-to-many distance kernels ===\n");
  std::printf("targets:");
  for (const std::string_view t : targets) {
    std::printf(" %.*s", static_cast<int>(t.size()), t.data());
  }
  std::printf("  (default %.*s)\n\n",
              static_cast<int>(simd::ActiveKernelName().size()),
              simd::ActiveKernelName().data());

  std::vector<Cell> cells;
  Rng rng(42);
  for (const MetricKind kind : kMetrics) {
    const Metric metric(kind);
    for (const size_t dim : kDims) {
      for (const size_t n : kSizes) {
        PointBuffer buffer(dim, n);
        for (size_t i = 0; i < n; ++i) {
          const std::vector<double> p = RandomPoint(rng, dim);
          buffer.Add(StreamPoint{static_cast<int64_t>(i), 0, p});
        }
        std::vector<std::vector<double>> queries;
        for (size_t q = 0; q < kBatchQueries; ++q) {
          queries.push_back(RandomPoint(rng, dim));
        }
        for (const std::string_view target : targets) {
          FDM_CHECK(simd::internal::ForceKernelTargetForTest(target));
          Cell cell;
          cell.metric = std::string(MetricKindName(kind));
          cell.dim = dim;
          cell.n = n;
          cell.target = std::string(target);
          TimeKernels(buffer, metric, queries, reps_scale, cell);
          cells.push_back(cell);
        }
        simd::internal::ForceKernelTargetForTest("");
      }
    }
  }

  // Speedups vs the scalar target of the same (metric, dim, n) cell.
  std::map<std::string, double> scalar_ns;
  for (const Cell& c : cells) {
    if (c.target == "scalar") {
      scalar_ns[c.metric + "/" + std::to_string(c.dim) + "/" +
                std::to_string(c.n)] = c.single_ns_per_point;
    }
  }
  std::map<std::string, double> scalar_offline_ns;
  for (const Cell& c : cells) {
    if (c.target == "scalar") {
      scalar_offline_ns[c.metric + "/" + std::to_string(c.dim) + "/" +
                        std::to_string(c.n)] = c.offline_ns_per_point;
    }
  }
  for (Cell& c : cells) {
    const std::string key =
        c.metric + "/" + std::to_string(c.dim) + "/" + std::to_string(c.n);
    c.speedup_vs_scalar = c.single_ns_per_point > 0.0
                              ? scalar_ns[key] / c.single_ns_per_point
                              : 0.0;
    c.offline_speedup_vs_scalar =
        c.offline_ns_per_point > 0.0
            ? scalar_offline_ns[key] / c.offline_ns_per_point
            : 0.0;
  }

  std::printf("%-10s %4s %6s %-7s %14s %14s %14s %8s %8s\n", "metric", "dim",
              "n", "target", "scan ns/pt", "batch ns/pt", "dists ns/pt",
              "vs scal", "dists vs");
  for (const Cell& c : cells) {
    std::printf("%-10s %4zu %6zu %-7s %14.3f %14.3f %14.3f %7.2fx %7.2fx\n",
                c.metric.c_str(), c.dim, c.n, c.target.c_str(),
                c.single_ns_per_point, c.batch_ns_per_point,
                c.offline_ns_per_point, c.speedup_vs_scalar,
                c.offline_speedup_vs_scalar);
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string json_path = out_dir + "/BENCH_kernels.json";
  std::ofstream json(json_path);
  json << "{\n  \"default_kernel\": \""
       << std::string(simd::ActiveKernelName()) << "\",\n  \"targets\": [";
  for (size_t t = 0; t < targets.size(); ++t) {
    json << (t > 0 ? ", " : "") << "\"" << std::string(targets[t]) << "\"";
  }
  json << "],\n  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    json << "    {\"metric\": \"" << c.metric << "\", \"dim\": " << c.dim
         << ", \"n\": " << c.n << ", \"target\": \"" << c.target
         << "\", \"single_ns_per_point\": " << c.single_ns_per_point
         << ", \"batch_ns_per_point\": " << c.batch_ns_per_point
         << ", \"offline_dists_ns_per_point\": " << c.offline_ns_per_point
         << ", \"speedup_vs_scalar\": " << c.speedup_vs_scalar
         << ", \"offline_speedup_vs_scalar\": " << c.offline_speedup_vs_scalar
         << "}"
         << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  if (min_speedup > 0.0) {
    if (targets.size() < 2) {
      std::fprintf(stderr,
                   "WARN: no SIMD target available on this machine; "
                   "--min-speedup check skipped\n");
      return 0;
    }
    // The acceptance gates of the kernel subsystem, both at the Euclidean
    // dim 25 / 16k stored-points cell: best SIMD one-to-many min scan, and
    // best SIMD offline full-dists scan (the cold-SOLVE unit).
    double best = 0.0, best_offline = 0.0;
    std::string best_target, best_offline_target;
    for (const Cell& c : cells) {
      if (c.metric != "euclidean" || c.dim != 25 || c.n != 16384 ||
          c.target == "scalar") {
        continue;
      }
      if (c.speedup_vs_scalar > best) {
        best = c.speedup_vs_scalar;
        best_target = c.target;
      }
      if (c.offline_speedup_vs_scalar > best_offline) {
        best_offline = c.offline_speedup_vs_scalar;
        best_offline_target = c.target;
      }
    }
    if (best < min_speedup) {
      std::fprintf(stderr,
                   "FAIL: best SIMD Euclidean kernel (%s) is %.2fx scalar "
                   "at dim 25 / n 16384, below the %.2fx gate\n",
                   best_target.c_str(), best, min_speedup);
      return 1;
    }
    if (best_offline < min_speedup) {
      std::fprintf(stderr,
                   "FAIL: best SIMD Euclidean offline-dists kernel (%s) is "
                   "%.2fx scalar at dim 25 / n 16384, below the %.2fx gate\n",
                   best_offline_target.c_str(), best_offline, min_speedup);
      return 1;
    }
    std::printf("speedup gate passed: %s is %.2fx scalar (min scan), %s is "
                "%.2fx scalar (offline dists) at dim 25 / 16k (>= %.2fx)\n",
                best_target.c_str(), best, best_offline_target.c_str(),
                best_offline, min_speedup);
  }
  return 0;
}

}  // namespace
}  // namespace fdm

int main(int argc, char** argv) { return fdm::Main(argc, argv); }
