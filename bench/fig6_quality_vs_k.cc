// Reproduces Fig. 6: solution quality with varying k on eight
// dataset × grouping panels; the GMM diversity is the gray reference line
// illustrating the loss caused by fairness constraints.
//
// Shapes to expect: diversity is non-increasing in k for every algorithm;
// the fair solutions trail GMM slightly at m = 2 and more visibly at large
// m; FairSwap/SFDM1/SFDM2 are close to each other and above FairFlow;
// FairGMM is slightly best where it applies (k <= 10, m = 2).

#include <cstdio>
#include <iostream>

#include "bench_common.h"

namespace fdm::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  Banner("Fig. 6: solution quality with varying k", options);

  TablePrinter table({"panel", "k", "algorithm", "diversity"});
  for (const auto& panel : KSweepPanels(options)) {
    const Dataset& ds = panel.dataset;
    const int m = ds.num_groups();
    const DistanceBounds bounds = BoundsForExperiments(ds);
    const std::string panel_label =
        panel.dataset_label + " " + panel.group_label;
    for (const int k : KValues(m, options.full)) {
      const auto constraint = EqualRepresentation(k, m);
      if (!constraint.ok()) continue;
      for (const AlgorithmKind algo :
           ApplicableAlgorithms(m, k, /*include_gmm=*/true)) {
        RunConfig config;
        config.algorithm = algo;
        config.constraint = constraint.value();
        config.epsilon = panel.epsilon;
        config.bounds = bounds;
        const AggregateResult r = RunRepeated(ds, config, options.runs);
        table.AddRow({panel_label, std::to_string(k),
                      std::string(AlgorithmName(algo)),
                      Cell(r.ok_runs > 0, r.diversity, 4)});
      }
    }
    std::printf("[done] %s (n=%zu)\n", panel_label.c_str(), ds.size());
    std::fflush(stdout);
  }

  std::printf("\n");
  table.Print(std::cout);
  if (EnsureDirectory(options.out_dir)) {
    (void)table.WriteCsv(options.out_dir + "/fig6_quality_vs_k.csv");
    std::printf("\nCSV written to %s/fig6_quality_vs_k.csv\n",
                options.out_dir.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fdm::bench

int main(int argc, char** argv) { return fdm::bench::Main(argc, argv); }
