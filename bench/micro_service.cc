// Service-layer microbenchmark: snapshot cost, WAL replay throughput, and
// multi-session concurrent ingest scaling. Emits machine-readable
// BENCH_service.json (default: results/BENCH_service.json) so future PRs
// can track the serving-perf trajectory, plus a human-readable summary.
//
//   ./micro_service [--n=20000] [--dim=8] [--out=results]
//
// Sections:
//   snapshot          bytes + latency of a full SFDM2 state snapshot
//   wal_replay        crash-recovery replay points/sec (no snapshot: the
//                     whole stream comes back through ObserveBatch)
//   concurrent_ingest aggregate points/sec with N sessions fed from N
//                     threads through one SessionManager

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "service/durable_session.h"
#include "service/session_manager.h"
#include "service/sink_spec.h"
#include "util/argparse.h"
#include "util/timer.h"

namespace fdm {
namespace {

struct ServiceBenchResult {
  size_t n = 0;
  size_t dim = 0;
  // snapshot
  size_t snapshot_bytes = 0;
  double snapshot_latency_ms = 0.0;
  // wal replay
  double wal_replay_points_per_sec = 0.0;
  // concurrent ingest: sessions -> aggregate points/sec
  std::vector<std::pair<int, double>> concurrent;
};

std::string SpecFor(const Dataset& ds) {
  const DistanceBounds b = EstimateDistanceBounds(ds, 1000, 1);
  return "algo=sfdm2 dim=" + std::to_string(ds.dim()) +
         " quotas=10,10 dmin=" + std::to_string(b.min) +
         " dmax=" + std::to_string(b.max);
}

size_t DirBytes(const std::string& dir) {
  size_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const size_t n = static_cast<size_t>(args.GetInt("n", 20000));
  const size_t dim = static_cast<size_t>(args.GetInt("dim", 8));
  const std::string out_dir = args.GetString("out", "results");

  BlobsOptions data_options;
  data_options.n = n;
  data_options.dim = dim;
  data_options.num_groups = 2;
  data_options.seed = 1;
  const Dataset ds = MakeBlobs(data_options);
  const std::string spec = SpecFor(ds);

  const std::string scratch =
      (std::filesystem::temp_directory_path() / "fdm_micro_service").string();
  std::filesystem::remove_all(scratch);

  ServiceBenchResult result;
  result.n = n;
  result.dim = dim;

  std::printf("=== micro_service: durable serving engine ===\n");
  std::printf("n=%zu dim=%zu spec: %s\n\n", n, dim, spec.c_str());

  // --- Snapshot size & latency ---------------------------------------
  {
    DurableSessionOptions snap_options;
    snap_options.keep_snapshots = 1;  // snap/ then holds exactly one file,
                                      // so DirBytes measures one snapshot
    auto session =
        DurableSession::Create(scratch + "/snap_bench", spec, snap_options);
    if (!session.ok()) {
      std::fprintf(stderr, "create: %s\n", session.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < ds.size(); ++i) {
      if (!session->Observe(ds.At(i)).ok()) return 1;
    }
    // One warm-up (includes the WAL truncation), then measure.
    if (!session->TakeSnapshot().ok()) return 1;
    constexpr int kReps = 5;
    Timer timer;
    for (int r = 0; r < kReps; ++r) {
      // Dirty the state so each snapshot actually rewrites.
      if (!session->Observe(ds.At(r)).ok()) return 1;
      if (!session->TakeSnapshot().ok()) return 1;
    }
    result.snapshot_latency_ms = timer.ElapsedSeconds() * 1000.0 / kReps;
    result.snapshot_bytes = DirBytes(scratch + "/snap_bench/snap");
    std::printf("snapshot:          %8zu bytes  %8.2f ms (state of %zu pts)\n",
                result.snapshot_bytes, result.snapshot_latency_ms,
                session->StoredElements());
  }

  // --- WAL replay throughput -----------------------------------------
  {
    DurableSessionOptions options;
    {
      auto session =
          DurableSession::Create(scratch + "/replay_bench", spec, options);
      if (!session.ok()) return 1;
      std::vector<StreamPoint> batch;
      batch.reserve(256);
      for (size_t i = 0; i < ds.size(); ++i) {
        batch.push_back(ds.At(i));
        if (batch.size() == 256) {
          if (!session->ObserveBatch(batch).ok()) return 1;
          batch.clear();
        }
      }
      if (!batch.empty() && !session->ObserveBatch(batch).ok()) return 1;
    }  // dropped without a snapshot: recovery must replay the whole WAL
    Timer timer;
    auto recovered = DurableSession::Open(scratch + "/replay_bench", options);
    const double replay_sec = timer.ElapsedSeconds();
    if (!recovered.ok()) {
      std::fprintf(stderr, "open: %s\n", recovered.status().ToString().c_str());
      return 1;
    }
    result.wal_replay_points_per_sec =
        static_cast<double>(recovered->ObservedElements()) / replay_sec;
    std::printf("wal replay:      %10.0f points/sec (%lld pts in %.3f s)\n",
                result.wal_replay_points_per_sec,
                static_cast<long long>(recovered->ObservedElements()),
                replay_sec);
  }

  // --- Concurrent multi-session ingest scaling -----------------------
  for (const int sessions : {1, 2, 4}) {
    SessionManagerOptions options;
    options.root_dir = scratch + "/ingest_" + std::to_string(sessions);
    auto manager = SessionManager::Create(options);
    if (!manager.ok()) return 1;
    for (int s = 0; s < sessions; ++s) {
      if (!(*manager)->CreateSession("s" + std::to_string(s), spec).ok()) {
        return 1;
      }
    }
    const size_t per_session = ds.size() / static_cast<size_t>(sessions);
    Timer timer;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(sessions));
    for (int s = 0; s < sessions; ++s) {
      workers.emplace_back([&, s] {
        const std::string name = "s" + std::to_string(s);
        for (size_t i = 0; i < per_session; ++i) {
          (void)(*manager)->Observe(name, ds.At(i));
        }
      });
    }
    for (std::thread& w : workers) w.join();
    const double pps =
        static_cast<double>(per_session * static_cast<size_t>(sessions)) /
        timer.ElapsedSeconds();
    result.concurrent.emplace_back(sessions, pps);
    std::printf("ingest x%d:       %10.0f points/sec aggregate\n", sessions,
                pps);
  }

  std::filesystem::remove_all(scratch);

  // --- BENCH_service.json --------------------------------------------
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string json_path = out_dir + "/BENCH_service.json";
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"n\": " << result.n << ",\n"
       << "  \"dim\": " << result.dim << ",\n"
       << "  \"snapshot\": {\"bytes\": " << result.snapshot_bytes
       << ", \"latency_ms\": " << result.snapshot_latency_ms << "},\n"
       << "  \"wal_replay\": {\"points_per_sec\": "
       << result.wal_replay_points_per_sec << "},\n"
       << "  \"concurrent_ingest\": [";
  for (size_t i = 0; i < result.concurrent.size(); ++i) {
    if (i > 0) json << ", ";
    json << "{\"sessions\": " << result.concurrent[i].first
         << ", \"points_per_sec\": " << result.concurrent[i].second << "}";
  }
  json << "]\n}\n";
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fdm

int main(int argc, char** argv) { return fdm::Main(argc, argv); }
