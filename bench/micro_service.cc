// Service-layer microbenchmark: snapshot cost, WAL replay throughput, and
// multi-session concurrent ingest scaling. Emits machine-readable
// BENCH_service.json (default: results/BENCH_service.json) so future PRs
// can track the serving-perf trajectory, plus a human-readable summary.
//
//   ./micro_service [--n=20000] [--dim=8] [--out=results]
//
// Sections:
//   snapshot          bytes + latency of a full SFDM2 state snapshot
//   wal_replay        crash-recovery replay points/sec (no snapshot: the
//                     whole stream comes back through ObserveBatch)
//   concurrent_ingest aggregate points/sec with N sessions fed from N
//                     threads through one SessionManager
//   dedup             exactly-once ingest: duplicate-rejection points/sec
//                     (filter probe, no WAL, no admission scan) vs
//                     re-admitting the same stream through a dedup=off
//                     session, plus the clean-stream overhead of carrying
//                     the guard
//
// Release gates (0 = off):
//   --min-dup-speedup=X     fail unless rejecting a fully duplicate
//                           stream is >= X times faster than admitting it
//   --max-dedup-overhead=Y  fail if dedup=on costs more than fraction Y
//                           over dedup=off on a clean (duplicate-free)
//                           stream

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "service/durable_session.h"
#include "service/session_manager.h"
#include "service/sink_spec.h"
#include "util/argparse.h"
#include "util/timer.h"

namespace fdm {
namespace {

struct ServiceBenchResult {
  size_t n = 0;
  size_t dim = 0;
  // snapshot
  size_t snapshot_bytes = 0;
  double snapshot_latency_ms = 0.0;
  // wal replay
  double wal_replay_points_per_sec = 0.0;
  // concurrent ingest: sessions -> aggregate points/sec
  std::vector<std::pair<int, double>> concurrent;
  // dedup
  double clean_off_points_per_sec = 0.0;
  double clean_on_points_per_sec = 0.0;
  double clean_overhead_frac = 0.0;
  double dup_reject_points_per_sec = 0.0;
  double dup_admit_points_per_sec = 0.0;
  double dup_speedup = 0.0;
  size_t filter_bytes = 0;
};

std::string SpecFor(const Dataset& ds) {
  const DistanceBounds b = EstimateDistanceBounds(ds, 1000, 1);
  return "algo=sfdm2 dim=" + std::to_string(ds.dim()) +
         " quotas=10,10 dmin=" + std::to_string(b.min) +
         " dmax=" + std::to_string(b.max);
}

size_t DirBytes(const std::string& dir) {
  size_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const size_t n = static_cast<size_t>(args.GetInt("n", 20000));
  const size_t dim = static_cast<size_t>(args.GetInt("dim", 8));
  const std::string out_dir = args.GetString("out", "results");
  const double min_dup_speedup = args.GetDouble("min-dup-speedup", 0.0);
  const double max_dedup_overhead =
      args.GetDouble("max-dedup-overhead", 0.0);

  BlobsOptions data_options;
  data_options.n = n;
  data_options.dim = dim;
  data_options.num_groups = 2;
  data_options.seed = 1;
  const Dataset ds = MakeBlobs(data_options);
  const std::string spec = SpecFor(ds);

  const std::string scratch =
      (std::filesystem::temp_directory_path() / "fdm_micro_service").string();
  std::filesystem::remove_all(scratch);

  ServiceBenchResult result;
  result.n = n;
  result.dim = dim;

  std::printf("=== micro_service: durable serving engine ===\n");
  std::printf("n=%zu dim=%zu spec: %s\n\n", n, dim, spec.c_str());

  // --- Snapshot size & latency ---------------------------------------
  {
    DurableSessionOptions snap_options;
    snap_options.keep_snapshots = 1;  // snap/ then holds exactly one file,
                                      // so DirBytes measures one snapshot
    auto session =
        DurableSession::Create(scratch + "/snap_bench", spec, snap_options);
    if (!session.ok()) {
      std::fprintf(stderr, "create: %s\n", session.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < ds.size(); ++i) {
      if (!session->Observe(ds.At(i)).ok()) return 1;
    }
    // One warm-up (includes the WAL truncation), then measure.
    if (!session->TakeSnapshot().ok()) return 1;
    constexpr int kReps = 5;
    Timer timer;
    for (int r = 0; r < kReps; ++r) {
      // Dirty the state so each snapshot actually rewrites.
      if (!session->Observe(ds.At(r)).ok()) return 1;
      if (!session->TakeSnapshot().ok()) return 1;
    }
    result.snapshot_latency_ms = timer.ElapsedSeconds() * 1000.0 / kReps;
    result.snapshot_bytes = DirBytes(scratch + "/snap_bench/snap");
    std::printf("snapshot:          %8zu bytes  %8.2f ms (state of %zu pts)\n",
                result.snapshot_bytes, result.snapshot_latency_ms,
                session->StoredElements());
  }

  // --- WAL replay throughput -----------------------------------------
  {
    DurableSessionOptions options;
    {
      auto session =
          DurableSession::Create(scratch + "/replay_bench", spec, options);
      if (!session.ok()) return 1;
      std::vector<StreamPoint> batch;
      batch.reserve(256);
      for (size_t i = 0; i < ds.size(); ++i) {
        batch.push_back(ds.At(i));
        if (batch.size() == 256) {
          if (!session->ObserveBatch(batch).ok()) return 1;
          batch.clear();
        }
      }
      if (!batch.empty() && !session->ObserveBatch(batch).ok()) return 1;
    }  // dropped without a snapshot: recovery must replay the whole WAL
    Timer timer;
    auto recovered = DurableSession::Open(scratch + "/replay_bench", options);
    const double replay_sec = timer.ElapsedSeconds();
    if (!recovered.ok()) {
      std::fprintf(stderr, "open: %s\n", recovered.status().ToString().c_str());
      return 1;
    }
    result.wal_replay_points_per_sec =
        static_cast<double>(recovered->ObservedElements()) / replay_sec;
    std::printf("wal replay:      %10.0f points/sec (%lld pts in %.3f s)\n",
                result.wal_replay_points_per_sec,
                static_cast<long long>(recovered->ObservedElements()),
                replay_sec);
  }

  // --- Concurrent multi-session ingest scaling -----------------------
  for (const int sessions : {1, 2, 4}) {
    SessionManagerOptions options;
    options.root_dir = scratch + "/ingest_" + std::to_string(sessions);
    auto manager = SessionManager::Create(options);
    if (!manager.ok()) return 1;
    for (int s = 0; s < sessions; ++s) {
      if (!(*manager)->CreateSession("s" + std::to_string(s), spec).ok()) {
        return 1;
      }
    }
    const size_t per_session = ds.size() / static_cast<size_t>(sessions);
    Timer timer;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(sessions));
    for (int s = 0; s < sessions; ++s) {
      workers.emplace_back([&, s] {
        const std::string name = "s" + std::to_string(s);
        for (size_t i = 0; i < per_session; ++i) {
          (void)(*manager)->Observe(name, ds.At(i));
        }
      });
    }
    for (std::thread& w : workers) w.join();
    const double pps =
        static_cast<double>(per_session * static_cast<size_t>(sessions)) /
        timer.ElapsedSeconds();
    result.concurrent.emplace_back(sessions, pps);
    std::printf("ingest x%d:       %10.0f points/sec aggregate\n", sessions,
                pps);
  }

  // --- Exactly-once ingest: guard overhead & rejection speed ---------
  {
    const std::string dedup_spec = spec + " dedup=on";
    auto ingest_all = [&](DurableSession& session) -> bool {
      std::vector<StreamPoint> batch;
      batch.reserve(256);
      for (size_t i = 0; i < ds.size(); ++i) {
        batch.push_back(ds.At(i));
        if (batch.size() == 256) {
          if (!session.Ingest(batch, /*as_batch=*/true).ok()) return false;
          batch.clear();
        }
      }
      return batch.empty() ||
             session.Ingest(batch, /*as_batch=*/true).ok();
    };

    // Clean-stream overhead: the same duplicate-free stream through a
    // dedup=off and a dedup=on session, best-of-3 fresh runs each (the
    // guard's cost on a clean stream is one filter probe + insert per
    // point; it must stay in the noise next to WAL append + admission).
    constexpr int kReps = 3;
    double best_off_sec = 0.0;
    double best_on_sec = 0.0;
    for (int r = 0; r < kReps; ++r) {
      for (const bool dedup : {false, true}) {
        const std::string dir = scratch + "/clean_" +
                                (dedup ? "on" : "off") + std::to_string(r);
        auto session = DurableSession::Create(
            dir, dedup ? dedup_spec : spec, DurableSessionOptions{});
        if (!session.ok()) {
          std::fprintf(stderr, "create: %s\n",
                       session.status().ToString().c_str());
          return 1;
        }
        Timer timer;
        if (!ingest_all(*session)) return 1;
        const double sec = timer.ElapsedSeconds();
        double& best = dedup ? best_on_sec : best_off_sec;
        if (best == 0.0 || sec < best) best = sec;
      }
    }
    result.clean_off_points_per_sec =
        static_cast<double>(ds.size()) / best_off_sec;
    result.clean_on_points_per_sec =
        static_cast<double>(ds.size()) / best_on_sec;
    result.clean_overhead_frac = best_on_sec / best_off_sec - 1.0;

    // Duplicate handling: the whole stream again. The dedup=on session
    // rejects everything before the WAL; the dedup=off session re-admits
    // everything (WAL append + admission scan) — that contrast is the
    // price exactly-once semantics refunds on replayed traffic.
    auto reject = DurableSession::Create(scratch + "/dup_on", dedup_spec,
                                         DurableSessionOptions{});
    auto admit = DurableSession::Create(scratch + "/dup_off", spec,
                                        DurableSessionOptions{});
    if (!reject.ok() || !admit.ok()) return 1;
    if (!ingest_all(*reject) || !ingest_all(*admit)) return 1;
    double best_reject_sec = 0.0;
    double best_admit_sec = 0.0;
    for (int r = 0; r < kReps; ++r) {
      Timer reject_timer;
      if (!ingest_all(*reject)) return 1;
      const double reject_sec = reject_timer.ElapsedSeconds();
      if (best_reject_sec == 0.0 || reject_sec < best_reject_sec) {
        best_reject_sec = reject_sec;
      }
      Timer admit_timer;
      if (!ingest_all(*admit)) return 1;
      const double admit_sec = admit_timer.ElapsedSeconds();
      if (best_admit_sec == 0.0 || admit_sec < best_admit_sec) {
        best_admit_sec = admit_sec;
      }
    }
    if (reject->DuplicatesRejected() !=
        static_cast<int64_t>(ds.size()) * kReps) {
      std::fprintf(stderr, "dedup bench: expected every re-observed point "
                           "rejected\n");
      return 1;
    }
    result.dup_reject_points_per_sec =
        static_cast<double>(ds.size()) / best_reject_sec;
    result.dup_admit_points_per_sec =
        static_cast<double>(ds.size()) / best_admit_sec;
    result.dup_speedup = best_admit_sec / best_reject_sec;
    result.filter_bytes = reject->dedup_filter()->MemoryBytes();
    std::printf("dedup clean:     %10.0f points/sec on, %.0f off "
                "(overhead %+.1f%%)\n",
                result.clean_on_points_per_sec,
                result.clean_off_points_per_sec,
                result.clean_overhead_frac * 100.0);
    std::printf("dedup reject:    %10.0f points/sec vs %10.0f re-admit "
                "(%.1fx, filter %zu B)\n",
                result.dup_reject_points_per_sec,
                result.dup_admit_points_per_sec, result.dup_speedup,
                result.filter_bytes);
  }

  std::filesystem::remove_all(scratch);

  // --- BENCH_service.json --------------------------------------------
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string json_path = out_dir + "/BENCH_service.json";
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"n\": " << result.n << ",\n"
       << "  \"dim\": " << result.dim << ",\n"
       << "  \"snapshot\": {\"bytes\": " << result.snapshot_bytes
       << ", \"latency_ms\": " << result.snapshot_latency_ms << "},\n"
       << "  \"wal_replay\": {\"points_per_sec\": "
       << result.wal_replay_points_per_sec << "},\n"
       << "  \"concurrent_ingest\": [";
  for (size_t i = 0; i < result.concurrent.size(); ++i) {
    if (i > 0) json << ", ";
    json << "{\"sessions\": " << result.concurrent[i].first
         << ", \"points_per_sec\": " << result.concurrent[i].second << "}";
  }
  json << "],\n"
       << "  \"dedup\": {\"clean_off_points_per_sec\": "
       << result.clean_off_points_per_sec
       << ", \"clean_on_points_per_sec\": "
       << result.clean_on_points_per_sec
       << ", \"clean_overhead_frac\": " << result.clean_overhead_frac
       << ", \"dup_reject_points_per_sec\": "
       << result.dup_reject_points_per_sec
       << ", \"dup_admit_points_per_sec\": "
       << result.dup_admit_points_per_sec
       << ", \"dup_speedup\": " << result.dup_speedup
       << ", \"filter_bytes\": " << result.filter_bytes << "}\n}\n";
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  // --- Release gates -------------------------------------------------
  bool gate_failed = false;
  if (min_dup_speedup > 0.0 && result.dup_speedup < min_dup_speedup) {
    std::fprintf(stderr,
                 "GATE FAILED: duplicate rejection %.1fx re-admission, "
                 "need >= %.1fx\n",
                 result.dup_speedup, min_dup_speedup);
    gate_failed = true;
  }
  if (max_dedup_overhead > 0.0 &&
      result.clean_overhead_frac > max_dedup_overhead) {
    std::fprintf(stderr,
                 "GATE FAILED: dedup=on clean-stream overhead %.1f%%, "
                 "allowed <= %.1f%%\n",
                 result.clean_overhead_frac * 100.0,
                 max_dedup_overhead * 100.0);
    gate_failed = true;
  }
  if (gate_failed) return 1;
  if (min_dup_speedup > 0.0 || max_dedup_overhead > 0.0) {
    std::printf("dedup gates passed (%.1fx rejection, %+.1f%% clean "
                "overhead)\n",
                result.dup_speedup, result.clean_overhead_frac * 100.0);
  }
  return 0;
}

}  // namespace
}  // namespace fdm

int main(int argc, char** argv) { return fdm::Main(argc, argv); }
