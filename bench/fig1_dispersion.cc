// Reproduces Fig. 1: comparison of the max-sum and max-min dispersion
// objectives on a 2-D point set (k = 10).
//
// Shape to expect: max-sum crowds the margins of the square (and may pick
// near-duplicates); max-min spreads uniformly. The bench prints both
// selections with their objective values and writes the point sets to CSV
// for plotting.

#include <cstdio>
#include <iostream>

#include "baselines/max_sum_greedy.h"
#include "bench_common.h"
#include "core/diversity.h"
#include "core/gmm.h"
#include "data/csv.h"
#include "data/synthetic.h"

namespace fdm::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  Banner("Fig. 1: max-sum vs max-min dispersion (k = 10)", options);

  const size_t n = options.Size(1000, 1000);
  const Dataset ds = MakeUniformSquare(n, options.seed);
  const size_t k = 10;

  const std::vector<size_t> max_sum = MaxSumGreedy(ds, k);
  const std::vector<size_t> max_min = GreedyGmm(ds, k);

  TablePrinter table({"objective", "min pairwise dist", "sum pairwise dist"});
  table.AddRow({"max-sum greedy",
                Cell(true, MinPairwiseDistance(ds, max_sum), 4),
                Cell(true, SumPairwiseDistance(ds, max_sum), 2)});
  table.AddRow({"max-min greedy (GMM)",
                Cell(true, MinPairwiseDistance(ds, max_min), 4),
                Cell(true, SumPairwiseDistance(ds, max_min), 2)});
  table.Print(std::cout);

  auto print_points = [&](const char* label, const std::vector<size_t>& sel) {
    std::printf("\n%s selection:\n", label);
    for (const size_t i : sel) {
      std::printf("  (%.3f, %.3f)\n", ds.Point(i)[0], ds.Point(i)[1]);
    }
  };
  print_points("max-sum", max_sum);
  print_points("max-min", max_min);

  // The defining contrast, asserted numerically: max-sum wins on the sum
  // objective, max-min wins on the min objective.
  const bool shape_holds =
      SumPairwiseDistance(ds, max_sum) >= SumPairwiseDistance(ds, max_min) &&
      MinPairwiseDistance(ds, max_min) >= MinPairwiseDistance(ds, max_sum);
  std::printf("\nshape check (max-sum crowds margins, max-min covers): %s\n",
              shape_holds ? "OK" : "VIOLATED");

  if (EnsureDirectory(options.out_dir)) {
    TablePrinter pts({"objective", "x", "y"});
    for (const size_t i : max_sum) {
      pts.AddRow({"max-sum", Cell(true, ds.Point(i)[0], 5),
                  Cell(true, ds.Point(i)[1], 5)});
    }
    for (const size_t i : max_min) {
      pts.AddRow({"max-min", Cell(true, ds.Point(i)[0], 5),
                  Cell(true, ds.Point(i)[1], 5)});
    }
    (void)pts.WriteCsv(options.out_dir + "/fig1_selections.csv");
    (void)WriteDatasetCsv(ds, options.out_dir + "/fig1_points.csv");
    std::printf("CSV written to %s/fig1_selections.csv (+fig1_points.csv)\n",
                options.out_dir.c_str());
  }
  return shape_holds ? 0 : 1;
}

}  // namespace
}  // namespace fdm::bench

int main(int argc, char** argv) { return fdm::bench::Main(argc, argv); }
