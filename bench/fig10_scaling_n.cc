// Reproduces Fig. 10: solution quality and running time on synthetic
// datasets with varying n (10^3 .. 10^7), m ∈ {2, 10}, k = 20.
//
// The argument-free default sweeps n up to 10^6 (10^5 for the offline
// baselines' largest point); pass --full for the paper's 10^7.
//
// Shapes to expect: diversity roughly flat (slightly growing) in n and
// close across algorithms at m=2, with SFDM2 ≫ FairFlow at m=10; offline
// time grows linearly in n while the streaming algorithms' per-element
// cost is flat (total stream time linear but with a tiny constant — the
// "orders of magnitude faster in the streaming setting" claim).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "data/synthetic.h"

namespace fdm::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  Banner("Fig. 10: scalability with varying n (synthetic, k = 20)", options);
  const int k = 20;

  std::vector<size_t> sizes{1000, 10000, 100000, 1000000};
  if (options.full) sizes.push_back(10000000);

  TablePrinter table({"m", "n", "algorithm", "diversity", "time(s)",
                      "avg update(ms)"});
  for (const int m : {2, 10}) {
    for (const size_t n : sizes) {
      BlobsOptions blob_options;
      blob_options.n = n;
      blob_options.num_groups = m;
      blob_options.seed = options.seed;
      const Dataset ds = MakeBlobs(blob_options);
      const auto constraint = EqualRepresentation(k, m);
      if (!constraint.ok()) continue;
      const DistanceBounds bounds = BoundsForExperiments(ds);

      std::vector<AlgorithmKind> algorithms{AlgorithmKind::kFairFlow,
                                            AlgorithmKind::kSfdm2};
      if (m == 2) {
        algorithms.insert(algorithms.begin(), AlgorithmKind::kFairSwap);
        algorithms.insert(algorithms.end() - 1, AlgorithmKind::kSfdm1);
      }
      // Paper averages 10 runs; very large n cells use fewer repetitions
      // to keep the argument-free run laptop-sized.
      const int runs = n >= 1000000 ? std::max(1, options.runs / 3)
                                    : options.runs;
      for (const AlgorithmKind algo : algorithms) {
        RunConfig config;
        config.algorithm = algo;
        config.constraint = constraint.value();
        config.epsilon = 0.1;
        config.bounds = bounds;
        const AggregateResult r = RunRepeated(ds, config, runs);
        table.AddRow({std::to_string(m), std::to_string(n),
                      std::string(AlgorithmName(algo)),
                      Cell(r.ok_runs > 0, r.diversity, 4),
                      Cell(r.ok_runs > 0, PaperTimeSeconds(r, algo), 5),
                      Cell(r.ok_runs > 0, r.avg_update_ms, 5)});
      }
      std::printf("[done] m=%d n=%zu\n", m, n);
      std::fflush(stdout);
    }
  }

  std::printf("\n");
  table.Print(std::cout);
  if (EnsureDirectory(options.out_dir)) {
    (void)table.WriteCsv(options.out_dir + "/fig10_scaling_n.csv");
    std::printf("\nCSV written to %s/fig10_scaling_n.csv\n",
                options.out_dir.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fdm::bench

int main(int argc, char** argv) { return fdm::bench::Main(argc, argv); }
