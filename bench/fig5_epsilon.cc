// Reproduces Fig. 5: performance of SFDM1 and SFDM2 with varying parameter
// ε (k = 20) — diversity, running time, and #stored elements on
// Adult/CelebA/Census (sex, m=2, ε ∈ {0.05..0.25}) and Lyrics (genre,
// m=15, ε ∈ {0.02..0.1}).
//
// Shapes to expect: time and #elements drop sharply as ε grows (fewer
// ladder rungs); diversity stays roughly flat.

#include <cstdio>
#include <iostream>

#include "bench_common.h"

namespace fdm::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  Banner("Fig. 5: effect of parameter ε (k = 20)", options);
  const int k = 20;

  struct Panel {
    std::string label;
    Dataset dataset;
    std::vector<double> epsilons;
    bool sfdm1;  // m = 2 panels run both algorithms
  };
  std::vector<Panel> panels;
  panels.push_back({"Adult (Sex, m=2)",
                    SimulatedAdult(AdultGrouping::kSex, options.seed,
                                   options.Size(48842, 48842)),
                    {0.05, 0.1, 0.15, 0.2, 0.25},
                    true});
  panels.push_back({"CelebA (Sex, m=2)",
                    SimulatedCelebA(CelebAGrouping::kSex, options.seed,
                                    options.Size(40000, 202599)),
                    {0.05, 0.1, 0.15, 0.2, 0.25},
                    true});
  panels.push_back({"Census (Sex, m=2)",
                    SimulatedCensus(CensusGrouping::kSex, options.seed,
                                    options.Size(40000, kCensusFullSize)),
                    {0.05, 0.1, 0.15, 0.2, 0.25},
                    true});
  panels.push_back({"Lyrics (Genre, m=15)",
                    SimulatedLyrics(options.seed, options.Size(25000, 122448)),
                    {0.02, 0.04, 0.06, 0.08, 0.1},
                    false});

  TablePrinter table({"panel", "epsilon", "algorithm", "diversity", "time(s)",
                      "#elem"});
  for (const auto& panel : panels) {
    const Dataset& ds = panel.dataset;
    const auto constraint = EqualRepresentation(k, ds.num_groups());
    if (!constraint.ok()) continue;
    const DistanceBounds bounds = BoundsForExperiments(ds);
    for (const double epsilon : panel.epsilons) {
      std::vector<AlgorithmKind> algorithms;
      if (panel.sfdm1) algorithms.push_back(AlgorithmKind::kSfdm1);
      algorithms.push_back(AlgorithmKind::kSfdm2);
      for (const AlgorithmKind algo : algorithms) {
        RunConfig config;
        config.algorithm = algo;
        config.constraint = constraint.value();
        config.epsilon = epsilon;
        config.bounds = bounds;
        const AggregateResult r = RunRepeated(ds, config, options.runs);
        table.AddRow({panel.label, Cell(true, epsilon, 2),
                      std::string(AlgorithmName(algo)),
                      Cell(r.ok_runs > 0, r.diversity, 4),
                      Cell(r.ok_runs > 0, PaperTimeSeconds(r, algo), 5),
                      Cell(r.ok_runs > 0, r.stored_elements, 1)});
      }
    }
    std::printf("[done] %s (n=%zu)\n", panel.label.c_str(), ds.size());
    std::fflush(stdout);
  }

  std::printf("\n");
  table.Print(std::cout);
  if (EnsureDirectory(options.out_dir)) {
    (void)table.WriteCsv(options.out_dir + "/fig5_epsilon.csv");
    std::printf("\nCSV written to %s/fig5_epsilon.csv\n",
                options.out_dir.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fdm::bench

int main(int argc, char** argv) { return fdm::bench::Main(argc, argv); }
