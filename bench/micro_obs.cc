// Observability-overhead microbenchmark: raw cost of the metric
// primitives, and ingest throughput with the instrumentation compiled in
// vs out. Emits machine-readable BENCH_obs.json (default:
// results/BENCH_obs.json); the release CI job runs this binary from an
// FDM_NO_METRICS build first to produce a baseline, then gates the
// metrics-enabled build against it.
//
//   ./micro_obs [--n=60000] [--dim=8] [--reps=7] [--out=results]
//               [--baseline=PATH] [--max-overhead=0.05]
//
// Sections:
//   record_ops      ns/op of the primitives a hot path pays: Counter::Add
//                   (registry lookup amortized by a function-local
//                   static), a pre-cached thread-local cell bump (the
//                   ultra-hot-site idiom), and Histogram::Record
//   ingest_batched  SFDM-2 ObserveBatch(256) points/sec — THE gated
//                   number; median of --reps fresh-sink passes
//   ingest_element  SFDM-2 per-element Observe() points/sec
//   ingest_durable  DurableSession::ObserveBatch(256) points/sec with the
//                   WAL on (fsync-free batches)
//   scrape          RenderPrometheus cost with the registry populated
//
// --baseline=PATH names a BENCH_obs.json written by the *other* build
// configuration; with --max-overhead=X the run exits non-zero when this
// build's ingest_batched throughput falls below (1 - X) x the baseline's.
// One process cannot host both configurations (the kill switch is
// compile-time), which is why the comparison crosses two binaries.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/sfdm2.h"
#include "data/synthetic.h"
#include "geo/simd/kernel_dispatch.h"
#include "obs/metrics.h"
#include "service/durable_session.h"
#include "util/argparse.h"
#include "util/timer.h"

namespace fdm {
namespace {

/// Pulls `"points_per_sec": <num>` out of the `"ingest_batched"` object of
/// a BENCH_obs.json without a JSON library: find the section key, then the
/// field key after it, then strtod. Returns 0 on any mismatch.
double BaselineBatchedPps(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0.0;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const size_t section = text.find("\"ingest_batched\"");
  if (section == std::string::npos) return 0.0;
  const std::string key = "\"points_per_sec\":";
  const size_t field = text.find(key, section);
  if (field == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + field + key.size(), nullptr);
}

/// Feeds the dataset through 256-point ObserveBatch calls; returns
/// points/sec.
template <typename SinkLike>
double FeedBatched(SinkLike& sink, const Dataset& ds) {
  std::vector<StreamPoint> batch;
  batch.reserve(256);
  Timer timer;
  for (size_t i = 0; i < ds.size(); ++i) {
    batch.push_back(ds.At(i));
    if (batch.size() == 256 || i + 1 == ds.size()) {
      sink.ObserveBatch(batch);
      batch.clear();
    }
  }
  return static_cast<double>(ds.size()) / timer.ElapsedSeconds();
}

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const size_t n = static_cast<size_t>(args.GetInt("n", 60000));
  const size_t dim = static_cast<size_t>(args.GetInt("dim", 8));
  const int reps = static_cast<int>(args.GetInt("reps", 7));
  const std::string out_dir = args.GetString("out", "results");
  const std::string baseline_path = args.GetString("baseline", "");
  const double max_overhead = args.GetDouble("max-overhead", 0.0);

  std::printf("=== micro_obs: observability overhead ===\n");
  std::printf("metrics_enabled=%d n=%zu dim=%zu reps=%d\n\n",
              obs::kMetricsEnabled ? 1 : 0, n, dim, reps);

  // --- Primitive record ops -------------------------------------------
  constexpr uint64_t kOps = 1u << 22;
  double counter_add_ns = 0.0;
  double cached_cell_ns = 0.0;
  double histogram_record_ns = 0.0;
  {
    obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
        "fdm_bench_obs_ops_total", "micro_obs record-op loop counter");
    Timer timer;
    for (uint64_t i = 0; i < kOps; ++i) counter.Add(1);
    counter_add_ns = static_cast<double>(timer.ElapsedNanos()) / kOps;
  }
#ifndef FDM_NO_METRICS
  {
    // The ultra-hot-site idiom: resolve the thread's cell once, bump it
    // directly per event (what the kernel scan counters do).
    std::atomic<uint64_t>& cell =
        obs::MetricsRegistry::Global()
            .GetCounter("fdm_bench_obs_cell_total",
                        "micro_obs cached-cell loop counter")
            .ThreadLocalCell();
    Timer timer;
    for (uint64_t i = 0; i < kOps; ++i) obs::BumpCell(cell);
    cached_cell_ns = static_cast<double>(timer.ElapsedNanos()) / kOps;
  }
#endif
  {
    obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
        "fdm_bench_obs_record_ns", "micro_obs histogram record loop");
    Timer timer;
    for (uint64_t i = 0; i < kOps; ++i) hist.Record(i & 0xFFFFF);
    histogram_record_ns = static_cast<double>(timer.ElapsedNanos()) / kOps;
  }
  std::printf("record ops:      counter %.2f ns  cached cell %.2f ns  "
              "histogram %.2f ns\n",
              counter_add_ns, cached_cell_ns, histogram_record_ns);

  // --- Ingest throughput ----------------------------------------------
  BlobsOptions data_options;
  data_options.n = n;
  data_options.dim = dim;
  data_options.num_groups = 2;
  data_options.seed = 1;
  const Dataset ds = MakeBlobs(data_options);
  const DistanceBounds bounds = EstimateDistanceBounds(ds, 1000, 1);
  FairnessConstraint constraint;
  constraint.quotas = {10, 10};
  StreamingOptions streaming;
  streaming.d_min = bounds.min;
  streaming.d_max = bounds.max;

  // The gated number uses the median rep, not the best: the CI gate is a
  // ratio against a separately-run baseline binary, and best-of amplifies
  // one lucky outlier on either side into a spurious pass or failure.
  std::vector<double> batched_runs;
  for (int r = 0; r < reps; ++r) {
    auto sink =
        Sfdm2::Create(constraint, ds.dim(), ds.metric_kind(), streaming);
    if (!sink.ok()) {
      std::fprintf(stderr, "create: %s\n", sink.status().ToString().c_str());
      return 1;
    }
    batched_runs.push_back(FeedBatched(*sink, ds));
  }
  std::sort(batched_runs.begin(), batched_runs.end());
  const double batched_pps = batched_runs[batched_runs.size() / 2];
  std::printf("ingest batched:  %10.0f points/sec (ObserveBatch 256, "
              "median of %d)\n",
              batched_pps, reps);

  double element_pps = 0.0;
  for (int r = 0; r < reps; ++r) {
    auto sink =
        Sfdm2::Create(constraint, ds.dim(), ds.metric_kind(), streaming);
    if (!sink.ok()) return 1;
    Timer timer;
    for (size_t i = 0; i < ds.size(); ++i) sink->Observe(ds.At(i));
    element_pps = std::max(
        element_pps, static_cast<double>(ds.size()) / timer.ElapsedSeconds());
  }
  std::printf("ingest element:  %10.0f points/sec (per-element Observe, "
              "best of %d)\n",
              element_pps, reps);

  double durable_pps = 0.0;
  {
    const std::string scratch =
        (std::filesystem::temp_directory_path() / "fdm_micro_obs").string();
    std::filesystem::remove_all(scratch);
    const std::string spec =
        "algo=sfdm2 dim=" + std::to_string(ds.dim()) +
        " quotas=10,10 dmin=" + std::to_string(bounds.min) +
        " dmax=" + std::to_string(bounds.max);
    for (int r = 0; r < reps; ++r) {
      const std::string dir = scratch + "/rep" + std::to_string(r);
      auto session = DurableSession::Create(dir, spec);
      if (!session.ok()) {
        std::fprintf(stderr, "durable: %s\n",
                     session.status().ToString().c_str());
        return 1;
      }
      durable_pps = std::max(durable_pps, FeedBatched(*session, ds));
    }
    std::filesystem::remove_all(scratch);
    std::printf("ingest durable:  %10.0f points/sec (DurableSession + WAL, "
                "best of %d)\n",
                durable_pps, reps);
  }

  // --- Scrape cost -----------------------------------------------------
  double scrape_us = 0.0;
  {
    constexpr int kScrapes = 100;
    size_t rendered_bytes = 0;
    Timer timer;
    for (int i = 0; i < kScrapes; ++i) {
      rendered_bytes = obs::MetricsRegistry::Global().RenderPrometheus().size();
    }
    scrape_us = static_cast<double>(timer.ElapsedNanos()) / kScrapes / 1000.0;
    std::printf("scrape:          %10.1f us/RenderPrometheus (%zu bytes)\n",
                scrape_us, rendered_bytes);
  }

  // --- BENCH_obs.json --------------------------------------------------
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string json_path = out_dir + "/BENCH_obs.json";
  {
    std::ofstream json(json_path);
    json << "{\n"
         << "  \"metrics_enabled\": "
         << (obs::kMetricsEnabled ? "true" : "false") << ",\n"
         << "  \"kernel\": \"" << std::string(simd::ActiveKernelName())
         << "\",\n"
         << "  \"n\": " << n << ",\n"
         << "  \"dim\": " << dim << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"record_ops\": {\"counter_add_ns\": " << counter_add_ns
         << ", \"cached_cell_ns\": " << cached_cell_ns
         << ", \"histogram_record_ns\": " << histogram_record_ns << "},\n"
         << "  \"ingest_batched\": {\"points_per_sec\": " << batched_pps
         << "},\n"
         << "  \"ingest_element\": {\"points_per_sec\": " << element_pps
         << "},\n"
         << "  \"ingest_durable\": {\"points_per_sec\": " << durable_pps
         << "},\n"
         << "  \"scrape\": {\"render_prometheus_us\": " << scrape_us
         << "}\n}\n";
    if (!json) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  // --- Cross-configuration overhead gate ------------------------------
  if (!baseline_path.empty() && max_overhead > 0.0) {
    const double baseline_pps = BaselineBatchedPps(baseline_path);
    if (baseline_pps <= 0.0) {
      std::fprintf(stderr, "FAIL: no ingest_batched points_per_sec in %s\n",
                   baseline_path.c_str());
      return 1;
    }
    const double floor = (1.0 - max_overhead) * baseline_pps;
    if (batched_pps < floor) {
      std::fprintf(stderr,
                   "FAIL: batched ingest %.0f pts/sec is below %.0f "
                   "(baseline %.0f x %.2f) — metrics overhead exceeds "
                   "%.0f%%\n",
                   batched_pps, floor, baseline_pps, 1.0 - max_overhead,
                   max_overhead * 100.0);
      return 1;
    }
    std::printf("overhead gate passed: %.0f pts/sec >= %.2f x baseline "
                "%.0f\n",
                batched_pps, 1.0 - max_overhead, baseline_pps);
  }
  return 0;
}

}  // namespace
}  // namespace fdm

int main(int argc, char** argv) { return fdm::Main(argc, argv); }
