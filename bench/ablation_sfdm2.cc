// Ablation bench (not a paper table; quantifies the DESIGN.md-called-out
// design choices of SFDM2's post-processing, Section IV-B):
//
//   warm start  — initialize Algorithm 4 from the partial solution S'_µ
//                 extracted from the group-blind candidate (vs ∅);
//   greedy      — insert V1∩V2 elements farthest-first, GMM-like
//                 (vs arbitrary order, as FairFlow's max-flow does).
//
// Expected: greedy-on dominates diversity (this is the paper's stated
// reason SFDM2 beats FairFlow in practice); warm start mainly cuts
// post-processing time. All four configurations remain fair and full.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/diversity.h"
#include "core/sfdm2.h"
#include "data/synthetic.h"
#include "util/timer.h"

namespace fdm::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  Banner("Ablation: SFDM2 warm start and greedy augmentation (k = 20)",
         options);
  const int k = 20;

  TablePrinter table({"dataset", "m", "config", "diversity", "post(s)"});
  struct Panel {
    std::string label;
    Dataset dataset;
    double epsilon;
  };
  std::vector<Panel> panels;
  {
    BlobsOptions blob_options;
    blob_options.n = options.Size(100000, 100000);
    blob_options.num_groups = 10;
    blob_options.seed = options.seed;
    panels.push_back({"Synthetic", MakeBlobs(blob_options), 0.1});
  }
  panels.push_back({"Adult",
                    SimulatedAdult(AdultGrouping::kRace, options.seed,
                                   options.Size(48842, 48842)),
                    0.1});
  panels.push_back({"Lyrics",
                    SimulatedLyrics(options.seed, options.Size(25000, 122448)),
                    0.05});

  for (const auto& panel : panels) {
    const Dataset& ds = panel.dataset;
    const int m = ds.num_groups();
    const auto constraint = EqualRepresentation(k, m);
    if (!constraint.ok()) continue;
    const DistanceBounds bounds = BoundsForExperiments(ds);
    StreamingOptions streaming;
    streaming.epsilon = panel.epsilon;
    streaming.d_min = bounds.min;
    streaming.d_max = bounds.max;

    for (const bool warm : {true, false}) {
      for (const bool greedy : {true, false}) {
        double div_sum = 0.0;
        double post_sum = 0.0;
        int ok = 0;
        for (int rep = 1; rep <= options.runs; ++rep) {
          auto algo = Sfdm2::Create(constraint.value(), ds.dim(),
                                    ds.metric_kind(), streaming);
          if (!algo.ok()) continue;
          algo->set_warm_start(warm);
          algo->set_greedy_augmentation(greedy);
          for (const size_t row :
               StreamOrder(ds.size(), static_cast<uint64_t>(rep))) {
            algo->Observe(ds.At(row));
          }
          Timer post_timer;
          const auto solution = algo->Solve();
          const double post = post_timer.ElapsedSeconds();
          if (!solution.ok()) continue;
          div_sum += solution->diversity;
          post_sum += post;
          ++ok;
        }
        const std::string config = std::string(warm ? "warm" : "cold") +
                                   "+" + (greedy ? "greedy" : "plain");
        table.AddRow({panel.label, std::to_string(m), config,
                      Cell(ok > 0, div_sum / std::max(ok, 1), 4),
                      Cell(ok > 0, post_sum / std::max(ok, 1), 5)});
      }
    }
    std::printf("[done] %s (m=%d, n=%zu)\n", panel.label.c_str(), m,
                ds.size());
    std::fflush(stdout);
  }

  std::printf("\n");
  table.Print(std::cout);
  std::printf("\n'warm+greedy' is the paper's SFDM2; 'cold+plain' is the "
              "closest analogue of FairFlow's arbitrary flow selection on "
              "the same candidates.\n");
  if (EnsureDirectory(options.out_dir)) {
    (void)table.WriteCsv(options.out_dir + "/ablation_sfdm2.csv");
    std::printf("CSV written to %s/ablation_sfdm2.csv\n",
                options.out_dir.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fdm::bench

int main(int argc, char** argv) { return fdm::bench::Main(argc, argv); }
