#ifndef FDM_BENCH_BENCH_COMMON_H_
#define FDM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/simulated.h"
#include "harness/experiment.h"
#include "harness/registry.h"
#include "harness/table.h"
#include "util/argparse.h"

namespace fdm::bench {

/// Every table/figure binary runs argument-free at laptop scale and accepts:
///   --runs=N      repetitions averaged per cell (paper: 10; default 3)
///   --scale=F     multiplier on the default dataset sizes (default < 1
///                 where the paper-scale dataset is large)
///   --full        paper-scale sizes and 10 runs
///   --out=DIR     CSV output directory (default "results")
struct BenchOptions {
  int runs = 3;
  double scale = 1.0;
  bool full = false;
  std::string out_dir = "results";
  uint64_t seed = 1;

  static BenchOptions Parse(int argc, char** argv) {
    const ArgParser args(argc, argv);
    BenchOptions o;
    o.full = args.GetBool("full", false);
    o.runs = static_cast<int>(args.GetInt("runs", o.full ? 10 : 3));
    o.scale = args.GetDouble("scale", 1.0);
    o.out_dir = args.GetString("out", "results");
    o.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
    return o;
  }

  /// Effective size: `full` restores the paper's n; otherwise the bench's
  /// laptop default times --scale.
  size_t Size(size_t laptop_default, size_t paper_size) const {
    const size_t base = full ? paper_size : laptop_default;
    const double scaled = static_cast<double>(base) * scale;
    return scaled < 2 ? 2 : static_cast<size_t>(scaled);
  }
};

/// One dataset × grouping cell of the evaluation grid (Table I rows).
struct DatasetCase {
  std::string dataset_label;
  std::string group_label;
  Dataset dataset;
  double epsilon;  // paper: 0.1 everywhere except Lyrics (0.05)
};

/// The Table II grid: every dataset × grouping combination of the paper.
/// Laptop defaults keep each dataset at a size the full table can sweep in
/// minutes; `--full` restores the paper's sizes.
inline std::vector<DatasetCase> TableTwoGrid(const BenchOptions& o) {
  std::vector<DatasetCase> grid;
  const size_t adult_n = o.Size(48842, 48842);     // Adult is already small
  const size_t celeba_n = o.Size(40000, 202599);
  const size_t census_n = o.Size(40000, kCensusFullSize);
  const size_t lyrics_n = o.Size(25000, 122448);
  grid.push_back({"Adult", "Sex",
                  SimulatedAdult(AdultGrouping::kSex, o.seed, adult_n), 0.1});
  grid.push_back({"Adult", "Race",
                  SimulatedAdult(AdultGrouping::kRace, o.seed, adult_n), 0.1});
  grid.push_back({"Adult", "Sex+Race",
                  SimulatedAdult(AdultGrouping::kSexRace, o.seed, adult_n),
                  0.1});
  grid.push_back({"CelebA", "Sex",
                  SimulatedCelebA(CelebAGrouping::kSex, o.seed, celeba_n),
                  0.1});
  grid.push_back({"CelebA", "Age",
                  SimulatedCelebA(CelebAGrouping::kAge, o.seed, celeba_n),
                  0.1});
  grid.push_back({"CelebA", "Sex+Age",
                  SimulatedCelebA(CelebAGrouping::kSexAge, o.seed, celeba_n),
                  0.1});
  grid.push_back({"Census", "Sex",
                  SimulatedCensus(CensusGrouping::kSex, o.seed, census_n),
                  0.1});
  grid.push_back({"Census", "Age",
                  SimulatedCensus(CensusGrouping::kAge, o.seed, census_n),
                  0.1});
  grid.push_back({"Census", "Sex+Age",
                  SimulatedCensus(CensusGrouping::kSexAge, o.seed, census_n),
                  0.1});
  grid.push_back({"Lyrics", "Genre", SimulatedLyrics(o.seed, lyrics_n), 0.05});
  return grid;
}

/// The Fig. 6/7 panels: eight dataset × grouping combinations swept over k.
inline std::vector<DatasetCase> KSweepPanels(const BenchOptions& o) {
  std::vector<DatasetCase> panels;
  const size_t adult_n = o.Size(20000, 48842);
  const size_t celeba_n = o.Size(20000, 202599);
  const size_t census_n = o.Size(20000, kCensusFullSize);
  const size_t lyrics_n = o.Size(15000, 122448);
  panels.push_back({"Adult", "Sex (m=2)",
                    SimulatedAdult(AdultGrouping::kSex, o.seed, adult_n),
                    0.1});
  panels.push_back({"CelebA", "Age (m=2)",
                    SimulatedCelebA(CelebAGrouping::kAge, o.seed, celeba_n),
                    0.1});
  panels.push_back({"CelebA", "Sex (m=2)",
                    SimulatedCelebA(CelebAGrouping::kSex, o.seed, celeba_n),
                    0.1});
  panels.push_back({"Census", "Sex (m=2)",
                    SimulatedCensus(CensusGrouping::kSex, o.seed, census_n),
                    0.1});
  panels.push_back({"Adult", "Race (m=5)",
                    SimulatedAdult(AdultGrouping::kRace, o.seed, adult_n),
                    0.1});
  panels.push_back({"CelebA", "Sex+Age (m=4)",
                    SimulatedCelebA(CelebAGrouping::kSexAge, o.seed, celeba_n),
                    0.1});
  panels.push_back({"Census", "Age (m=7)",
                    SimulatedCensus(CensusGrouping::kAge, o.seed, census_n),
                    0.1});
  panels.push_back({"Lyrics", "Genre (m=15)",
                    SimulatedLyrics(o.seed, lyrics_n), 0.05});
  return panels;
}

/// k values swept by Figs. 6–8 for a panel with `m` groups (the paper
/// starts at the smallest multiple-of-5 k with at least one slot per
/// group).
inline std::vector<int> KValues(int m, bool full) {
  std::vector<int> ks;
  for (int k = 5; k <= 50; k += full ? 5 : 10) {
    if (k >= m) ks.push_back(k);
  }
  if (ks.empty() || ks.front() > m + 5) ks.insert(ks.begin(), ((m + 4) / 5) * 5);
  return ks;
}

/// Algorithms applicable to a panel at a given k (mirrors the paper:
/// FairSwap/SFDM1 at m=2 only; FairGMM only for k <= 10 and m <= 5).
inline std::vector<AlgorithmKind> ApplicableAlgorithms(int m, int k,
                                                       bool include_gmm) {
  std::vector<AlgorithmKind> algorithms;
  if (include_gmm) algorithms.push_back(AlgorithmKind::kGmm);
  if (m == 2) algorithms.push_back(AlgorithmKind::kFairSwap);
  algorithms.push_back(AlgorithmKind::kFairFlow);
  if (k <= 10 && m <= 5) algorithms.push_back(AlgorithmKind::kFairGmm);
  if (m == 2) algorithms.push_back(AlgorithmKind::kSfdm1);
  algorithms.push_back(AlgorithmKind::kSfdm2);
  return algorithms;
}

inline bool IsStreaming(AlgorithmKind algo) {
  const AlgorithmEntry* entry = AlgorithmRegistry::Instance().Find(algo);
  return entry != nullptr && entry->streaming;
}

/// The paper's "time (s)" semantics: the cost of producing an up-to-date
/// solution on demand. Offline algorithms must recompute from scratch
/// (total solve time); streaming algorithms only pay their post-processing
/// (the one-pass upkeep is reported separately as avg update time). This
/// is what makes the paper's "orders of magnitude faster in the streaming
/// setting" comparison apples-to-apples.
inline double PaperTimeSeconds(const AggregateResult& r, AlgorithmKind algo) {
  return IsStreaming(algo) ? r.post_time_sec : r.total_time_sec;
}

/// Formats a mean diversity / time / storage cell, or "-" for n/a.
inline std::string Cell(bool applicable, double value, int precision) {
  if (!applicable) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

/// Prints the standard bench banner: what is being reproduced and at what
/// scale, so the tee'd output is self-describing.
inline void Banner(const std::string& what, const BenchOptions& o) {
  std::printf("=== %s ===\n", what.c_str());
  std::printf("runs=%d scale=%.2f %s(use --full for paper-scale sizes and "
              "10 runs)\n\n",
              o.runs, o.scale, o.full ? "[FULL] " : "");
}

}  // namespace fdm::bench

#endif  // FDM_BENCH_BENCH_COMMON_H_
