// Query-path microbenchmark: repeated-SOLVE throughput cold vs incremental
// vs cached, and SOLVE latency under concurrent OBSERVE load. Emits
// machine-readable BENCH_solve.json (default: results/BENCH_solve.json) so
// future PRs can track the serving-perf trajectory, plus a human summary.
//
//   ./micro_solve [--n=20000] [--dim=8] [--reps=25] [--cold_reps=3]
//                 [--out=results] [--min-cold-speedup=0]
//                 [--min-parallel-cold-speedup=0]
//
// Sections:
//   solve_cold       full SFDM-2 post-processing from scratch (the memo is
//                    emptied by restoring a fresh copy before every rep)
//   solve_warm       repeated Solve() on the same unchanged sink — the
//                    per-rung incremental memo answers, no SolveCache
//   solve_cached     repeated Solve() through a version-keyed SolveCache —
//                    the serving hot path (a memoized copy per query)
//   cold_grid        cache-miss Solve() per registered streaming kind ×
//                    n {4096, 16384} × k {10, 20} at dim 25 (Euclidean),
//                    under every reachable kernel target × solve_threads
//                    {1, 2, 4} — the offline Solve-path routing's SIMD ×
//                    rung-parallel speedup surface
//   under_ingest     SOLVE latency against a live SessionManager session
//                    while a writer floods OBSERVE into another session
//
// --min-cold-speedup=X (release gate): exit non-zero unless, at the
// sfdm2 / n=16384 / k=20 / threads=1 cold_grid cell, the best non-scalar
// target's cold Solve is at least X× faster than the scalar target's.
// Before the kernel-routing PR the offline Solve loops *were* scalar
// regardless of target, so the scalar column doubles as the prior-release
// baseline. Vacuously passes (with a warning) when only the scalar target
// is available.
//
// --min-parallel-cold-speedup=X (release gate): exit non-zero unless, at
// the same sfdm2 / n=16384 / k=20 cell, some target's threads=4 cold
// Solve is at least X× faster than that target's own threads=1 run (the
// rung-parallel scaling gate; solutions are bit-identical either way).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/sfdm2.h"
#include "core/sink_snapshot.h"
#include "core/solve_cache.h"
#include "data/synthetic.h"
#include "geo/simd/kernel_dispatch.h"
#include "obs/histogram.h"
#include "harness/registry.h"
#include "service/session_manager.h"
#include "util/argparse.h"
#include "util/binary_io.h"
#include "util/check.h"
#include "util/timer.h"

namespace fdm {
namespace {

/// One cell of the cold-SOLVE grid.
struct ColdCell {
  std::string kind;
  size_t n = 0;
  int k = 0;
  std::string target;
  int threads = 1;
  double cold_ms = 0.0;
  // Both filled after the sweep: vs the scalar target at the same thread
  // count, and vs this target's own threads=1 run.
  double speedup_vs_scalar = 0.0;
  double parallel_speedup = 0.0;
};

/// Cache-miss Solve() cost per kernel target for one (kind, n, k) cell:
/// ingest once, snapshot, then per target restore a fresh sink (empty
/// memo) and time Solve() alone. Returns false if the kind cannot run the
/// cell (creation or solve error) — the grid skips it.
bool TimeColdCell(AlgorithmKind kind, size_t n, const std::vector<int>& quotas,
                  int cold_reps, std::vector<ColdCell>& cells) {
  BlobsOptions data_options;
  data_options.n = n;
  data_options.dim = 25;  // the paper's Adult-scale dimensionality
  data_options.num_groups = 2;
  data_options.seed = 7 + n;
  const Dataset ds = MakeBlobs(data_options);
  const DistanceBounds bounds = EstimateDistanceBounds(ds, 1000, 1);

  const AlgorithmEntry* entry = AlgorithmRegistry::Instance().Find(kind);
  if (entry == nullptr || !entry->streaming) return false;
  RunConfig config;
  config.algorithm = kind;
  config.constraint.quotas = quotas;
  config.bounds = bounds;
  config.num_shards = 3;
  config.window_size = 0;

  auto sink = entry->make_sink(ds, config);
  if (!sink.ok()) return false;
  std::vector<StreamPoint> batch;
  batch.reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) batch.push_back(ds.At(i));
  (*sink)->ObserveBatch(batch);
  SnapshotWriter writer;
  if (!(*sink)->Snapshot(writer).ok()) return false;
  const std::string bytes = writer.Serialize();

  const int k = config.constraint.TotalK();
  for (const std::string_view target : simd::AvailableKernelTargets()) {
    FDM_CHECK(simd::internal::ForceKernelTargetForTest(target));
    for (const int threads : {1, 2, 4}) {
      double total = 0.0;
      for (int r = 0; r < cold_reps; ++r) {
        auto reader = SnapshotReader::FromBytes(bytes);
        if (!reader.ok()) return false;
        auto fresh = RestoreSink(*reader);
        if (!fresh.ok()) return false;
        (*fresh)->SetSolveThreads(threads);
        Timer timer;
        if (!(*fresh)->Solve().ok()) return false;
        total += timer.ElapsedSeconds();
      }
      ColdCell cell;
      cell.kind = std::string(AlgorithmName(kind));
      cell.n = n;
      cell.k = k;
      cell.target = std::string(target);
      cell.threads = threads;
      cell.cold_ms = total * 1000.0 / cold_reps;
      cells.push_back(cell);
    }
  }
  simd::internal::ForceKernelTargetForTest("");
  return true;
}

struct SolveBenchResult {
  size_t n = 0;
  size_t dim = 0;
  int reps = 0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double cached_ms = 0.0;
  double cached_speedup_vs_cold = 0.0;
  // under concurrent ingest (percentiles from the shared log-bucketed
  // histogram — p50/p99/max are bucket upper bounds, i.e. conservative)
  double solve_mean_ms = 0.0;
  double solve_p50_ms = 0.0;
  double solve_p99_ms = 0.0;
  double solve_max_ms = 0.0;
  double solves_per_sec = 0.0;
  double ingest_points_per_sec = 0.0;
};

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  SolveBenchResult result;
  result.n = static_cast<size_t>(args.GetInt("n", 20000));
  result.dim = static_cast<size_t>(args.GetInt("dim", 8));
  result.reps = static_cast<int>(args.GetInt("reps", 25));
  const int cold_reps = static_cast<int>(args.GetInt("cold_reps", 3));
  const double min_cold_speedup = args.GetDouble("min-cold-speedup", 0.0);
  const double min_parallel_cold_speedup =
      args.GetDouble("min-parallel-cold-speedup", 0.0);
  const std::string out_dir = args.GetString("out", "results");

  BlobsOptions data_options;
  data_options.n = result.n;
  data_options.dim = result.dim;
  data_options.num_groups = 2;
  data_options.seed = 1;
  const Dataset ds = MakeBlobs(data_options);
  const DistanceBounds bounds = EstimateDistanceBounds(ds, 1000, 1);

  FairnessConstraint constraint;
  constraint.quotas = {10, 10};
  StreamingOptions streaming;
  streaming.d_min = bounds.min;
  streaming.d_max = bounds.max;

  std::printf("=== micro_solve: incremental query path ===\n");
  std::printf("n=%zu dim=%zu reps=%d quotas=10,10\n\n", result.n, result.dim,
              result.reps);

  auto sink =
      Sfdm2::Create(constraint, ds.dim(), ds.metric_kind(), streaming);
  if (!sink.ok()) {
    std::fprintf(stderr, "create: %s\n", sink.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < ds.size(); ++i) sink->Observe(ds.At(i));

  // --- Cold: fresh post-processing every rep --------------------------
  // Restoring from a snapshot yields a sink with an empty per-rung memo,
  // so each timed Solve() pays the full Algorithm 3 lines 9–19.
  {
    SnapshotWriter writer;
    if (!sink->Snapshot(writer).ok()) return 1;
    const std::string bytes = writer.Serialize();
    double total = 0.0;
    for (int r = 0; r < result.reps; ++r) {
      auto reader = SnapshotReader::FromBytes(bytes);
      if (!reader.ok()) return 1;
      auto fresh = Sfdm2::Restore(*reader);
      if (!fresh.ok()) return 1;
      Timer timer;
      if (!fresh->Solve().ok()) return 1;
      total += timer.ElapsedSeconds();
    }
    result.cold_ms = total * 1000.0 / result.reps;
    std::printf("solve cold:      %10.3f ms/solve (from-scratch)\n",
                result.cold_ms);
  }

  // --- Warm: the per-rung incremental memo ----------------------------
  {
    (void)sink->Solve();  // populate the memo once
    Timer timer;
    for (int r = 0; r < result.reps; ++r) {
      if (!sink->Solve().ok()) return 1;
    }
    result.warm_ms = timer.ElapsedSeconds() * 1000.0 / result.reps;
    std::printf("solve warm:      %10.3f ms/solve (per-rung memo)\n",
                result.warm_ms);
  }

  // --- Cached: the serving hot path -----------------------------------
  {
    SolveCache cache;
    const uint64_t version = sink->StateVersion();
    (void)cache.GetOrCompute(version, [&] { return sink->Solve(); });
    Timer timer;
    for (int r = 0; r < result.reps; ++r) {
      if (!cache.GetOrCompute(version, [&] { return sink->Solve(); }).ok()) {
        return 1;
      }
    }
    result.cached_ms = timer.ElapsedSeconds() * 1000.0 / result.reps;
    // Guard the ratio against timer granularity: reps of cache hits can
    // measure 0.0 ms, which means maximal speedup, not zero.
    result.cached_speedup_vs_cold =
        result.cold_ms / std::max(result.cached_ms, 1e-6);
    std::printf(
        "solve cached:    %10.3f ms/solve (SolveCache hit)  %.0fx vs cold\n",
        result.cached_ms, result.cached_speedup_vs_cold);
  }

  // --- Cold-SOLVE grid across kinds, sizes, and kernel targets --------
  std::vector<ColdCell> cold_cells;
  {
    std::printf("\ncold grid (dim 25, euclidean, %d reps/cell):\n",
                cold_reps);
    for (const AlgorithmKind kind : AlgorithmRegistry::Instance().Kinds()) {
      const AlgorithmEntry* entry = AlgorithmRegistry::Instance().Find(kind);
      if (entry == nullptr || !entry->streaming) continue;
      for (const size_t grid_n : {size_t{4096}, size_t{16384}}) {
        for (const std::vector<int>& quotas :
             {std::vector<int>{5, 5}, std::vector<int>{10, 10}}) {
          TimeColdCell(kind, grid_n, quotas, cold_reps, cold_cells);
        }
      }
    }
    // Speedups: vs the scalar column of the same (kind, n, k, threads)
    // cell, and vs the same target's threads=1 column.
    for (ColdCell& c : cold_cells) {
      for (const ColdCell& s : cold_cells) {
        if (s.kind != c.kind || s.n != c.n || s.k != c.k) continue;
        if (s.target == "scalar" && s.threads == c.threads) {
          c.speedup_vs_scalar = c.cold_ms > 0.0 ? s.cold_ms / c.cold_ms : 0.0;
        }
        if (s.target == c.target && s.threads == 1) {
          c.parallel_speedup = c.cold_ms > 0.0 ? s.cold_ms / c.cold_ms : 0.0;
        }
      }
    }
    std::printf("%-14s %6s %3s %-7s %3s %12s %9s %9s\n", "kind", "n", "k",
                "target", "thr", "cold ms", "vs scal", "vs 1thr");
    for (const ColdCell& c : cold_cells) {
      std::printf("%-14s %6zu %3d %-7s %3d %12.3f %8.2fx %8.2fx\n",
                  c.kind.c_str(), c.n, c.k, c.target.c_str(), c.threads,
                  c.cold_ms, c.speedup_vs_scalar, c.parallel_speedup);
    }
  }

  // --- SOLVE latency under concurrent OBSERVE load --------------------
  {
    const std::string scratch =
        (std::filesystem::temp_directory_path() / "fdm_micro_solve").string();
    std::filesystem::remove_all(scratch);
    SessionManagerOptions options;
    options.root_dir = scratch;
    auto manager = SessionManager::Create(options);
    if (!manager.ok()) return 1;
    const std::string spec =
        "algo=sfdm2 dim=" + std::to_string(ds.dim()) +
        " quotas=10,10 dmin=" + std::to_string(bounds.min) +
        " dmax=" + std::to_string(bounds.max);
    if (!(*manager)->CreateSession("hot", spec).ok()) return 1;
    if (!(*manager)->CreateSession("ingest", spec).ok()) return 1;
    for (size_t i = 0; i < ds.size() / 2; ++i) {
      if (!(*manager)->Observe("hot", ds.At(i)).ok()) return 1;
    }
    (void)(*manager)->Solve("hot");  // warm the cache

    std::atomic<bool> stop{false};
    std::atomic<size_t> ingested{0};
    std::thread writer([&] {
      // Flood a different session: its exclusive lock must not serialize
      // against the hot session's shared-lock query path.
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if ((*manager)->Observe("ingest", ds.At(i % ds.size())).ok()) {
          ingested.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
      }
    });
    obs::HistogramSnapshot latency;
    Timer wall;
    while (wall.ElapsedSeconds() < 1.0) {
      Timer one;
      if (!(*manager)->Solve("hot").ok()) return 1;
      latency.Record(static_cast<uint64_t>(one.ElapsedNanos()));
    }
    const double elapsed = wall.ElapsedSeconds();
    stop.store(true, std::memory_order_relaxed);
    writer.join();

    constexpr double kNsToMs = 1e-6;
    result.solve_mean_ms = latency.Mean() * kNsToMs;
    result.solve_p50_ms =
        static_cast<double>(latency.Percentile(0.5)) * kNsToMs;
    result.solve_p99_ms =
        static_cast<double>(latency.Percentile(0.99)) * kNsToMs;
    result.solve_max_ms = static_cast<double>(latency.Max()) * kNsToMs;
    result.solves_per_sec = static_cast<double>(latency.count) / elapsed;
    result.ingest_points_per_sec =
        static_cast<double>(ingested.load()) / elapsed;
    std::printf(
        "under ingest:    %10.0f solves/sec (mean %.3f ms, p50 %.3f ms, "
        "p99 %.3f ms, max %.3f ms) while %0.f pts/sec ingest\n",
        result.solves_per_sec, result.solve_mean_ms, result.solve_p50_ms,
        result.solve_p99_ms, result.solve_max_ms,
        result.ingest_points_per_sec);
    std::filesystem::remove_all(scratch);
  }

  // --- BENCH_solve.json -----------------------------------------------
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string json_path = out_dir + "/BENCH_solve.json";
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"kernel\": \"" << std::string(simd::ActiveKernelName())
       << "\",\n"
       << "  \"n\": " << result.n << ",\n"
       << "  \"dim\": " << result.dim << ",\n"
       << "  \"reps\": " << result.reps << ",\n"
       << "  \"repeated_solve\": {\"cold_ms\": " << result.cold_ms
       << ", \"warm_ms\": " << result.warm_ms
       << ", \"cached_ms\": " << result.cached_ms
       << ", \"cached_speedup_vs_cold\": " << result.cached_speedup_vs_cold
       << "},\n"
       << "  \"cold_grid\": [\n";
  for (size_t i = 0; i < cold_cells.size(); ++i) {
    const ColdCell& c = cold_cells[i];
    json << "    {\"kind\": \"" << c.kind << "\", \"n\": " << c.n
         << ", \"k\": " << c.k << ", \"target\": \"" << c.target
         << "\", \"threads\": " << c.threads
         << ", \"cold_ms\": " << c.cold_ms
         << ", \"speedup_vs_scalar\": " << c.speedup_vs_scalar
         << ", \"parallel_speedup\": " << c.parallel_speedup << "}"
         << (i + 1 < cold_cells.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"under_ingest\": {\"solves_per_sec\": " << result.solves_per_sec
       << ", \"mean_ms\": " << result.solve_mean_ms
       << ", \"p50_ms\": " << result.solve_p50_ms
       << ", \"p99_ms\": " << result.solve_p99_ms
       << ", \"max_ms\": " << result.solve_max_ms
       << ", \"ingest_points_per_sec\": " << result.ingest_points_per_sec
       << "}\n}\n";
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  // The acceptance gate of the incremental query path: a cached SOLVE must
  // be at least an order of magnitude cheaper than a cold one.
  if (result.cached_speedup_vs_cold < 10.0) {
    std::fprintf(stderr,
                 "FAIL: cached speedup %.1fx < 10x over cold solves\n",
                 result.cached_speedup_vs_cold);
    return 1;
  }
  // The acceptance gate of the offline kernel routing: a cache-miss SOLVE
  // at the paper-scale cell must beat the (pre-routing-equivalent) scalar
  // target by the requested factor on some SIMD target.
  if (min_cold_speedup > 0.0) {
    if (simd::AvailableKernelTargets().size() < 2) {
      std::fprintf(stderr,
                   "WARN: no SIMD target available on this machine; "
                   "--min-cold-speedup check skipped\n");
      return 0;
    }
    double best = 0.0;
    std::string best_target;
    for (const ColdCell& c : cold_cells) {
      if (c.kind == "SFDM2" && c.n == 16384 && c.k == 20 &&
          c.threads == 1 && c.target != "scalar" &&
          c.speedup_vs_scalar > best) {
        best = c.speedup_vs_scalar;
        best_target = c.target;
      }
    }
    if (best < min_cold_speedup) {
      std::fprintf(stderr,
                   "FAIL: best cold-SOLVE speedup (%s) is %.2fx scalar at "
                   "sfdm2 / n 16384 / k 20, below the %.2fx gate\n",
                   best_target.c_str(), best, min_cold_speedup);
      return 1;
    }
    std::printf("cold-solve gate passed: %s is %.2fx scalar at sfdm2 / "
                "n 16384 / k 20 (>= %.2fx)\n",
                best_target.c_str(), best, min_cold_speedup);
  }
  // The acceptance gate of the rung-parallel query path: 4 solve threads
  // must beat the same target's sequential cold SOLVE by the requested
  // factor at the paper-scale cell.
  if (min_parallel_cold_speedup > 0.0) {
    if (std::thread::hardware_concurrency() < 4) {
      std::fprintf(stderr,
                   "WARN: fewer than 4 hardware threads; "
                   "--min-parallel-cold-speedup check skipped\n");
      return 0;
    }
    double best = 0.0;
    std::string best_target;
    for (const ColdCell& c : cold_cells) {
      if (c.kind == "SFDM2" && c.n == 16384 && c.k == 20 &&
          c.threads == 4 && c.parallel_speedup > best) {
        best = c.parallel_speedup;
        best_target = c.target;
      }
    }
    if (best < min_parallel_cold_speedup) {
      std::fprintf(stderr,
                   "FAIL: best 4-thread cold-SOLVE speedup (%s) is %.2fx "
                   "its 1-thread run at sfdm2 / n 16384 / k 20, below the "
                   "%.2fx gate\n",
                   best_target.c_str(), best, min_parallel_cold_speedup);
      return 1;
    }
    std::printf("parallel cold-solve gate passed: %s at 4 threads is %.2fx "
                "its 1-thread run at sfdm2 / n 16384 / k 20 (>= %.2fx)\n",
                best_target.c_str(), best, min_parallel_cold_speedup);
  }
  return 0;
}

}  // namespace
}  // namespace fdm

int main(int argc, char** argv) { return fdm::Main(argc, argv); }
