// Networked-serving microbenchmark: multi-client saturation of the TCP
// front end (src/net/tcp_server.h). Emits machine-readable BENCH_net.json
// (default: results/BENCH_net.json) plus a human-readable summary.
//
//   ./micro_net [--clients=8] [--seconds=2] [--cold_cap=1] [--out=results]
//
// Sections:
//   unloaded   cached-SOLVE latency/throughput from one client against an
//              otherwise idle server — the baseline the overload story is
//              judged against
//   loaded     the same cached-SOLVE client while clients-1 flood
//              connections drive cache-missing SOLVEs (each flood client
//              spills its own session in-process before every SOLVE, so
//              every admitted attempt pays a full reload + recompute on
//              the solve-worker pool); reports the cached p50/p99 under
//              load, the flood's shed rate, and that admitted cold solves
//              still complete
//
// The claim under test: cold SOLVEs beyond --cold_cap shed immediately
// (`ERR shed cold solve capacity`) instead of queueing, so the cached
// read path keeps its latency even under a cold flood.
//
// Release gates (0 = off):
//   --max-cached-p99-ratio=X  fail if cached-SOLVE p99 under flood exceeds
//                             X times the unloaded p99. The baseline is
//                             floored at 0.2 ms: an unloaded loopback p99
//                             of ~30 us is below one scheduler quantum, so
//                             multiplying it is noise — the floor makes
//                             the gate "X times a just-resolvable
//                             latency", robust on timeshared single-core
//                             runners where any colocated recompute costs
//                             the reader a quantum at p99
//   --min-shed-rate=Y         fail unless at least fraction Y of the
//                             flood's cold SOLVEs were shed (0.0-1.0)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "net/dispatch.h"
#include "net/net_client.h"
#include "net/tcp_server.h"
#include "service/session_manager.h"
#include "util/argparse.h"

namespace fdm {
namespace {

struct LatencyStats {
  double ops_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double PercentileMs(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

std::string SpecFor(const Dataset& ds) {
  const DistanceBounds b = EstimateDistanceBounds(ds, 1000, 1);
  return "algo=sfdm2 dim=" + std::to_string(ds.dim()) +
         " quotas=10,10 dmin=" + std::to_string(b.min) +
         " dmax=" + std::to_string(b.max);
}

/// Hammers `SOLVE hot` round-trips until the deadline; returns sorted
/// per-op latencies (ms) and throughput.
LatencyStats CachedSolveLoop(const std::string& host, int port,
                             std::chrono::steady_clock::time_point deadline,
                             bool* ok) {
  LatencyStats stats;
  *ok = false;
  auto client = net::NetClient::Connect(host, port);
  if (!client.ok()) return stats;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(1 << 18);
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() < deadline) {
    const auto op_start = std::chrono::steady_clock::now();
    auto reply = client->Call("SOLVE hot");
    const auto op_end = std::chrono::steady_clock::now();
    if (!reply.ok() || reply->rfind("OK div=", 0) != 0) return stats;
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(op_end - op_start)
            .count());
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  stats.ops_per_sec = static_cast<double>(latencies_ms.size()) / elapsed;
  stats.p50_ms = PercentileMs(latencies_ms, 0.50);
  stats.p99_ms = PercentileMs(latencies_ms, 0.99);
  *ok = !latencies_ms.empty();
  return stats;
}

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const int clients = static_cast<int>(args.GetInt("clients", 8));
  const double seconds = args.GetDouble("seconds", 2.0);
  const size_t cold_cap = static_cast<size_t>(args.GetInt("cold_cap", 1));
  const std::string out_dir = args.GetString("out", "results");
  const double max_p99_ratio = args.GetDouble("max-cached-p99-ratio", 0.0);
  const double min_shed_rate = args.GetDouble("min-shed-rate", 0.0);
  const int flood_clients = std::max(1, clients - 1);

  const std::string scratch =
      (std::filesystem::temp_directory_path() / "fdm_micro_net").string();
  std::filesystem::remove_all(scratch);

  std::printf("=== micro_net: TCP serving under saturation ===\n");
  std::printf("clients=%d (%d flood) seconds=%.1f cold_cap=%zu\n\n", clients,
              flood_clients, seconds, cold_cap);

  // One hot session (pre-solved, answered from cache) plus one cold
  // session per flood client (spilled before every SOLVE so each attempt
  // is a genuine reload + recompute competing for the cold capacity).
  SessionManagerOptions manager_options;
  manager_options.root_dir = scratch;
  auto manager = SessionManager::Create(manager_options);
  if (!manager.ok()) {
    std::fprintf(stderr, "create: %s\n",
                 manager.status().ToString().c_str());
    return 1;
  }
  BlobsOptions data_options;
  data_options.n = 4000;
  data_options.dim = 4;
  data_options.num_groups = 2;
  data_options.seed = 1;
  const Dataset ds = MakeBlobs(data_options);
  const std::string spec = SpecFor(ds);
  std::vector<std::string> cold_names;
  for (int c = 0; c < flood_clients; ++c) {
    cold_names.push_back("cold" + std::to_string(c));
  }
  std::vector<std::string> all_names = cold_names;
  all_names.push_back("hot");
  for (const std::string& name : all_names) {
    if (!(*manager)->CreateSession(name, spec).ok()) return 1;
    std::vector<StreamPoint> batch;
    for (size_t i = 0; i < ds.size(); ++i) batch.push_back(ds.At(i));
    if (!(*manager)->Ingest(name, batch, true).ok()) return 1;
  }
  if (!(*manager)->Solve("hot").ok()) return 1;  // warm the hot cache

  net::RequestDispatcher dispatcher(manager->get(), scratch);
  net::TcpServerOptions server_options;
  server_options.admission.cold_solve_cap = cold_cap;
  auto server = net::TcpServer::Start(&dispatcher, std::move(server_options));
  if (!server.ok()) {
    std::fprintf(stderr, "listen: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const int port = (*server)->port();

  // --- Unloaded baseline ---------------------------------------------
  bool ok = false;
  const LatencyStats unloaded = CachedSolveLoop(
      "127.0.0.1", port,
      std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(seconds)),
      &ok);
  if (!ok) {
    std::fprintf(stderr, "unloaded cached-SOLVE loop failed\n");
    return 1;
  }
  std::printf("unloaded cached: %10.0f SOLVE/s  p50 %.3f ms  p99 %.3f ms\n",
              unloaded.ops_per_sec, unloaded.p50_ms, unloaded.p99_ms);

  // --- Cold flood + cached traffic -----------------------------------
  std::atomic<uint64_t> flood_attempts{0};
  std::atomic<uint64_t> flood_sheds{0};
  std::atomic<uint64_t> flood_completed{0};
  std::atomic<bool> flood_failed{false};
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  std::vector<std::thread> flood;
  flood.reserve(static_cast<size_t>(flood_clients));
  for (int c = 0; c < flood_clients; ++c) {
    flood.emplace_back([&, c] {
      auto client = net::NetClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        flood_failed.store(true);
        return;
      }
      const std::string solve = "SOLVE " + cold_names[c];
      while (std::chrono::steady_clock::now() < deadline) {
        // Spill in-process (cheap: discards the resident sink) so the
        // next SOLVE classifies cache-missing and, when admitted, pays
        // the reload + recompute on the solve-worker pool — the event
        // loops never carry the cold work. Ignore the status: after a
        // shed the session is still spilled and the drop is a no-op.
        (void)(*manager)->DropResident(cold_names[c]);
        auto reply = client->Call(solve);
        if (!reply.ok()) {
          flood_failed.store(true);
          return;
        }
        flood_attempts.fetch_add(1);
        if (reply->rfind("ERR shed cold solve capacity", 0) == 0) {
          flood_sheds.fetch_add(1);
          // A shed is an explicit back-off signal; a client that retries
          // in a tight loop is a DoS of its own. Sleeping also keeps the
          // bench measuring the server's overload policy rather than the
          // host's scheduler under N spinning threads.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        } else if (reply->rfind("OK div=", 0) == 0) {
          flood_completed.fetch_add(1);
        } else {
          flood_failed.store(true);
          return;
        }
      }
    });
  }
  bool loaded_ok = false;
  const LatencyStats loaded =
      CachedSolveLoop("127.0.0.1", port, deadline, &loaded_ok);
  for (std::thread& t : flood) t.join();
  if (!loaded_ok || flood_failed.load()) {
    std::fprintf(stderr, "loaded phase failed\n");
    return 1;
  }
  const uint64_t attempts = flood_attempts.load();
  const uint64_t sheds = flood_sheds.load();
  const double shed_rate =
      attempts == 0 ? 0.0
                    : static_cast<double>(sheds) / static_cast<double>(attempts);
  // Sub-quantum unloaded p99s make the ratio pure noise; floor the
  // baseline at ~one scheduler quantum (see the gate doc above).
  const double p99_floor_ms = std::max(unloaded.p99_ms, 0.2);
  const double p99_ratio = loaded.p99_ms / p99_floor_ms;
  std::printf("loaded cached:   %10.0f SOLVE/s  p50 %.3f ms  p99 %.3f ms "
              "(%.1fx unloaded)\n",
              loaded.ops_per_sec, loaded.p50_ms, loaded.p99_ms, p99_ratio);
  std::printf("cold flood:      %10llu attempts  %llu shed (%.0f%%)  "
              "%llu completed\n",
              static_cast<unsigned long long>(attempts),
              static_cast<unsigned long long>(sheds), shed_rate * 100.0,
              static_cast<unsigned long long>(flood_completed.load()));

  (*server)->Stop();
  std::filesystem::remove_all(scratch);

  // --- BENCH_net.json ------------------------------------------------
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string json_path = out_dir + "/BENCH_net.json";
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"clients\": " << clients << ",\n"
       << "  \"flood_clients\": " << flood_clients << ",\n"
       << "  \"seconds\": " << seconds << ",\n"
       << "  \"cold_cap\": " << cold_cap << ",\n"
       << "  \"unloaded\": {\"solve_per_sec\": " << unloaded.ops_per_sec
       << ", \"p50_ms\": " << unloaded.p50_ms
       << ", \"p99_ms\": " << unloaded.p99_ms << "},\n"
       << "  \"loaded\": {\"solve_per_sec\": " << loaded.ops_per_sec
       << ", \"p50_ms\": " << loaded.p50_ms
       << ", \"p99_ms\": " << loaded.p99_ms
       << ", \"p99_ratio\": " << p99_ratio << "},\n"
       << "  \"flood\": {\"attempts\": " << attempts
       << ", \"sheds\": " << sheds
       << ", \"completed\": " << flood_completed.load()
       << ", \"shed_rate\": " << shed_rate << "}\n}\n";
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  // --- Release gates -------------------------------------------------
  bool gate_failed = false;
  if (max_p99_ratio > 0.0 && p99_ratio > max_p99_ratio) {
    std::fprintf(stderr,
                 "GATE FAILED: cached-SOLVE p99 under cold flood %.1fx "
                 "unloaded, allowed <= %.1fx\n",
                 p99_ratio, max_p99_ratio);
    gate_failed = true;
  }
  if (min_shed_rate > 0.0 && shed_rate < min_shed_rate) {
    std::fprintf(stderr,
                 "GATE FAILED: cold flood shed rate %.0f%%, need >= %.0f%% "
                 "(server queued instead of shedding)\n",
                 shed_rate * 100.0, min_shed_rate * 100.0);
    gate_failed = true;
  }
  if (gate_failed) return 1;
  if (max_p99_ratio > 0.0 || min_shed_rate > 0.0) {
    std::printf("net gates passed (p99 %.1fx, shed %.0f%%)\n", p99_ratio,
                shed_rate * 100.0);
  }
  return 0;
}

}  // namespace
}  // namespace fdm

int main(int argc, char** argv) { return fdm::Main(argc, argv); }
