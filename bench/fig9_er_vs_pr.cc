// Reproduces Fig. 9: equal representation (ER) vs proportional
// representation (PR) on Adult with highly skewed groups (sex: 67% male;
// race: 85%+ one group), k = 20.
//
// Shapes to expect: every algorithm's diversity is slightly higher under PR
// (closer to the unconstrained solution) and the streaming algorithms run
// slightly faster under PR (fewer balancing steps).

#include <cstdio>
#include <iostream>

#include "bench_common.h"

namespace fdm::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  Banner("Fig. 9: equal vs proportional representation on Adult (k = 20)",
         options);
  const int k = 20;

  struct Panel {
    std::string label;
    Dataset dataset;
  };
  const size_t adult_n = options.Size(48842, 48842);
  std::vector<Panel> panels;
  panels.push_back({"Adult Sex (m=2)",
                    SimulatedAdult(AdultGrouping::kSex, options.seed,
                                   adult_n)});
  panels.push_back({"Adult Race (m=5)",
                    SimulatedAdult(AdultGrouping::kRace, options.seed,
                                   adult_n)});

  TablePrinter table({"panel", "fairness", "algorithm", "quotas", "diversity",
                      "time(s)"});
  for (const auto& panel : panels) {
    const Dataset& ds = panel.dataset;
    const int m = ds.num_groups();
    const DistanceBounds bounds = BoundsForExperiments(ds);

    for (const bool proportional : {false, true}) {
      const auto constraint =
          proportional
              ? ProportionalRepresentation(k, ds.GroupSizes())
              : EqualRepresentation(k, m);
      if (!constraint.ok()) {
        std::fprintf(stderr, "constraint failed: %s\n",
                     constraint.status().ToString().c_str());
        continue;
      }
      std::string quota_str;
      for (size_t g = 0; g < constraint->quotas.size(); ++g) {
        if (g > 0) quota_str += "/";
        quota_str += std::to_string(constraint->quotas[g]);
      }
      for (const AlgorithmKind algo :
           ApplicableAlgorithms(m, k, /*include_gmm=*/false)) {
        RunConfig config;
        config.algorithm = algo;
        config.constraint = constraint.value();
        config.epsilon = 0.1;
        config.bounds = bounds;
        const AggregateResult r = RunRepeated(ds, config, options.runs);
        table.AddRow({panel.label, proportional ? "PR" : "ER",
                      std::string(AlgorithmName(algo)), quota_str,
                      Cell(r.ok_runs > 0, r.diversity, 4),
                      Cell(r.ok_runs > 0, PaperTimeSeconds(r, algo), 5)});
      }
    }
    std::printf("[done] %s (n=%zu)\n", panel.label.c_str(), ds.size());
    std::fflush(stdout);
  }

  std::printf("\n");
  table.Print(std::cout);
  if (EnsureDirectory(options.out_dir)) {
    (void)table.WriteCsv(options.out_dir + "/fig9_er_vs_pr.csv");
    std::printf("\nCSV written to %s/fig9_er_vs_pr.csv\n",
                options.out_dir.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fdm::bench

int main(int argc, char** argv) { return fdm::bench::Main(argc, argv); }
