#include "core/streaming_dm.h"

#include <set>

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "data/synthetic.h"
#include "exact/brute_force.h"

namespace fdm {
namespace {

StreamingOptions OptionsFor(const Dataset& ds, double epsilon) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  StreamingOptions o;
  o.epsilon = epsilon;
  o.d_min = b.min;
  o.d_max = b.max;
  return o;
}

void Feed(StreamingDm& algo, const Dataset& ds, uint64_t seed) {
  for (const size_t row : StreamOrder(ds.size(), seed)) {
    algo.Observe(ds.At(row));
  }
}

TEST(StreamingDmTest, CreateValidatesArguments) {
  StreamingOptions o;
  o.epsilon = 0.1;
  o.d_min = 1.0;
  o.d_max = 2.0;
  EXPECT_FALSE(StreamingDm::Create(0, 2, MetricKind::kEuclidean, o).ok());
  EXPECT_FALSE(StreamingDm::Create(5, 0, MetricKind::kEuclidean, o).ok());
  o.epsilon = 0.0;
  EXPECT_FALSE(StreamingDm::Create(5, 2, MetricKind::kEuclidean, o).ok());
  o.epsilon = 0.1;
  o.d_min = 0.0;
  EXPECT_FALSE(StreamingDm::Create(5, 2, MetricKind::kEuclidean, o).ok());
}

TEST(StreamingDmTest, SolveFailsBeforeEnoughPoints) {
  BlobsOptions opt;
  opt.n = 50;
  opt.seed = 1;
  const Dataset ds = MakeBlobs(opt);
  auto algo = StreamingDm::Create(5, 2, MetricKind::kEuclidean,
                                  OptionsFor(ds, 0.1));
  ASSERT_TRUE(algo.ok());
  EXPECT_FALSE(algo->Solve().ok());  // nothing observed yet
  algo->Observe(ds.At(0));
  algo->Observe(ds.At(1));
  EXPECT_FALSE(algo->Solve().ok());  // fewer than k points
}

TEST(StreamingDmTest, ReturnsExactlyKDistinctElements) {
  BlobsOptions opt;
  opt.n = 300;
  opt.seed = 2;
  const Dataset ds = MakeBlobs(opt);
  auto algo = StreamingDm::Create(10, 2, MetricKind::kEuclidean,
                                  OptionsFor(ds, 0.1));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 1);
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(solution->points.size(), 10u);
  std::set<int64_t> ids;
  for (const int64_t id : solution->Ids()) ids.insert(id);
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_GT(solution->diversity, 0.0);
  EXPECT_GT(solution->mu, 0.0);
}

TEST(StreamingDmTest, DiversityMatchesRecomputation) {
  BlobsOptions opt;
  opt.n = 200;
  opt.seed = 3;
  const Dataset ds = MakeBlobs(opt);
  auto algo = StreamingDm::Create(8, 2, MetricKind::kEuclidean,
                                  OptionsFor(ds, 0.1));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 2);
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->diversity,
              MinPairwiseDistance(solution->points, ds.metric()), 1e-12);
}

TEST(StreamingDmTest, StorageIndependentOfStreamLength) {
  // Theorem 1: O(k log∆ / ε) stored elements regardless of n. Feed two
  // streams of very different lengths drawn from the same distribution and
  // assert the storage bound (not just near-equality).
  BlobsOptions small_opt;
  small_opt.n = 500;
  small_opt.seed = 4;
  BlobsOptions large_opt = small_opt;
  large_opt.n = 20000;
  const Dataset small = MakeBlobs(small_opt);
  const Dataset large = MakeBlobs(large_opt);
  const StreamingOptions o = OptionsFor(large, 0.1);

  const int k = 10;
  auto algo_small =
      StreamingDm::Create(k, 2, MetricKind::kEuclidean, o);
  auto algo_large =
      StreamingDm::Create(k, 2, MetricKind::kEuclidean, o);
  ASSERT_TRUE(algo_small.ok());
  ASSERT_TRUE(algo_large.ok());
  Feed(*algo_small, small, 1);
  Feed(*algo_large, large, 1);
  const size_t bound = static_cast<size_t>(k) * algo_large->ladder().size();
  EXPECT_LE(algo_small->StoredElements(), bound);
  EXPECT_LE(algo_large->StoredElements(), bound);
  // 40x more stream must not mean 40x more storage.
  EXPECT_LT(static_cast<double>(algo_large->StoredElements()),
            3.0 * static_cast<double>(algo_small->StoredElements()) + 50.0);
}

TEST(StreamingDmTest, ObservedElementsCounts) {
  BlobsOptions opt;
  opt.n = 123;
  opt.seed = 5;
  const Dataset ds = MakeBlobs(opt);
  auto algo = StreamingDm::Create(5, 2, MetricKind::kEuclidean,
                                  OptionsFor(ds, 0.2));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 1);
  EXPECT_EQ(algo->ObservedElements(), 123);
}

TEST(StreamingDmTest, KEqualsOneTrivial) {
  BlobsOptions opt;
  opt.n = 20;
  opt.seed = 6;
  const Dataset ds = MakeBlobs(opt);
  auto algo = StreamingDm::Create(1, 2, MetricKind::kEuclidean,
                                  OptionsFor(ds, 0.1));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 1);
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->points.size(), 1u);
}

// ---------------------------------------------------------------------------
// Theorem 1 property: div(S) >= (1-ε)/2 · OPT on every instance.
// ---------------------------------------------------------------------------

struct RatioCase {
  uint64_t seed;
  int k;
  double epsilon;
};

class StreamingDmRatioTest : public ::testing::TestWithParam<RatioCase> {};

TEST_P(StreamingDmRatioTest, AchievesTheoremOneGuarantee) {
  const RatioCase param = GetParam();
  BlobsOptions opt;
  opt.n = 16;  // small enough for the exact solver
  opt.num_blobs = 5;
  opt.seed = param.seed;
  const Dataset ds = MakeBlobs(opt);
  const ExactSolution exact = ExactDiversityMaximization(ds, param.k);
  ASSERT_GT(exact.diversity, 0.0);

  auto algo = StreamingDm::Create(param.k, 2, MetricKind::kEuclidean,
                                  OptionsFor(ds, param.epsilon));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, param.seed * 7 + 1);
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  const double bound = (1.0 - param.epsilon) / 2.0 * exact.diversity;
  EXPECT_GE(solution->diversity, bound - 1e-9)
      << "seed=" << param.seed << " k=" << param.k
      << " eps=" << param.epsilon << " OPT=" << exact.diversity;
}

INSTANTIATE_TEST_SUITE_P(
    SeedSweep, StreamingDmRatioTest,
    ::testing::Values(RatioCase{1, 3, 0.1}, RatioCase{2, 3, 0.1},
                      RatioCase{3, 4, 0.1}, RatioCase{4, 4, 0.25},
                      RatioCase{5, 5, 0.1}, RatioCase{6, 5, 0.25},
                      RatioCase{7, 6, 0.1}, RatioCase{8, 2, 0.05},
                      RatioCase{9, 4, 0.05}, RatioCase{10, 3, 0.25},
                      RatioCase{11, 6, 0.25}, RatioCase{12, 5, 0.05}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_k" +
             std::to_string(info.param.k) + "_eps" +
             std::to_string(static_cast<int>(info.param.epsilon * 100));
    });

}  // namespace
}  // namespace fdm
