#include "core/sfdm2.h"

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "data/synthetic.h"
#include "exact/brute_force.h"
#include "util/rng.h"

namespace fdm {
namespace {

StreamingOptions OptionsFor(const Dataset& ds, double epsilon) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  StreamingOptions o;
  o.epsilon = epsilon;
  o.d_min = b.min;
  o.d_max = b.max;
  return o;
}

FairnessConstraint Quotas(std::vector<int> q) {
  FairnessConstraint c;
  c.quotas = std::move(q);
  return c;
}

void Feed(Sfdm2& algo, const Dataset& ds, uint64_t seed) {
  for (const size_t row : StreamOrder(ds.size(), seed)) {
    algo.Observe(ds.At(row));
  }
}

TEST(Sfdm2Test, CreateValidates) {
  StreamingOptions o;
  o.epsilon = 0.1;
  o.d_min = 1.0;
  o.d_max = 10.0;
  EXPECT_FALSE(Sfdm2::Create(Quotas({}), 2, MetricKind::kEuclidean, o).ok());
  EXPECT_FALSE(
      Sfdm2::Create(Quotas({1, 0}), 2, MetricKind::kEuclidean, o).ok());
  EXPECT_FALSE(
      Sfdm2::Create(Quotas({1, 1}), 0, MetricKind::kEuclidean, o).ok());
  EXPECT_TRUE(
      Sfdm2::Create(Quotas({1, 1}), 2, MetricKind::kEuclidean, o).ok());
}

TEST(Sfdm2Test, FairnessForVariousGroupCounts) {
  for (const int m : {2, 3, 5, 8}) {
    BlobsOptions opt;
    opt.n = 1200;
    opt.num_groups = m;
    opt.seed = static_cast<uint64_t>(m);
    const Dataset ds = MakeBlobs(opt);
    std::vector<int> quotas(static_cast<size_t>(m), 2);
    auto algo = Sfdm2::Create(Quotas(quotas), 2, MetricKind::kEuclidean,
                              OptionsFor(ds, 0.1));
    ASSERT_TRUE(algo.ok());
    Feed(*algo, ds, 3);
    const auto solution = algo->Solve();
    ASSERT_TRUE(solution.ok())
        << "m=" << m << ": " << solution.status().ToString();
    EXPECT_EQ(solution->points.size(), static_cast<size_t>(2 * m));
    EXPECT_TRUE(SatisfiesQuotas(solution->points, quotas));
  }
}

TEST(Sfdm2Test, UnevenQuotas) {
  BlobsOptions opt;
  opt.n = 900;
  opt.num_groups = 3;
  opt.seed = 19;
  const Dataset ds = MakeBlobs(opt);
  const std::vector<int> quotas{6, 1, 3};
  auto algo = Sfdm2::Create(Quotas(quotas), 2, MetricKind::kEuclidean,
                            OptionsFor(ds, 0.1));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 7);
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(SatisfiesQuotas(solution->points, quotas));
}

TEST(Sfdm2Test, DiversityMatchesRecomputation) {
  BlobsOptions opt;
  opt.n = 600;
  opt.num_groups = 4;
  opt.seed = 23;
  const Dataset ds = MakeBlobs(opt);
  auto algo = Sfdm2::Create(Quotas({2, 2, 2, 2}), 2, MetricKind::kEuclidean,
                            OptionsFor(ds, 0.1));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 9);
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->diversity,
              MinPairwiseDistance(solution->points, ds.metric()), 1e-12);
}

TEST(Sfdm2Test, WorksWithSingleGroup) {
  // m = 1 degenerates to unconstrained streaming DM.
  BlobsOptions opt;
  opt.n = 300;
  opt.num_groups = 1;
  opt.seed = 27;
  const Dataset ds = MakeBlobs(opt);
  auto algo = Sfdm2::Create(Quotas({8}), 2, MetricKind::kEuclidean,
                            OptionsFor(ds, 0.1));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 1);
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->points.size(), 8u);
}

TEST(Sfdm2Test, InfeasibleWhenGroupMissing) {
  Dataset ds("mono", 1, 3, MetricKind::kEuclidean);
  for (int i = 0; i < 60; ++i) {
    ds.Add(std::vector<double>{static_cast<double>(i)}, i % 2);  // group 2 empty
  }
  auto algo = Sfdm2::Create(Quotas({2, 2, 2}), 1, MetricKind::kEuclidean,
                            StreamingOptions{0.1, 1.0, 60.0});
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 1);
  const auto solution = algo->Solve();
  ASSERT_FALSE(solution.ok());
  EXPECT_EQ(solution.status().code(), StatusCode::kInfeasible);
}

TEST(Sfdm2Test, StorageBoundedByLadderTimesGroups) {
  BlobsOptions opt;
  opt.n = 4000;
  opt.num_groups = 5;
  opt.seed = 29;
  const Dataset ds = MakeBlobs(opt);
  const std::vector<int> quotas{2, 2, 2, 2, 2};
  auto algo = Sfdm2::Create(Quotas(quotas), 2, MetricKind::kEuclidean,
                            OptionsFor(ds, 0.1));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 1);
  // Theorem 5: O(km log∆/ε): (m+1) candidates of k elements per rung.
  const size_t k = 10;
  const size_t bound = (5 + 1) * k * algo->ladder().size();
  EXPECT_LE(algo->StoredElements(), bound);
}

TEST(Sfdm2Test, Sfdm2StoresMoreThanNeededBySfdm1Shape) {
  // The group-specific candidates have capacity k (not k_i) — confirm the
  // donor pools actually hold more than k_i elements for small quotas.
  BlobsOptions opt;
  opt.n = 2000;
  opt.num_groups = 2;
  opt.seed = 31;
  const Dataset ds = MakeBlobs(opt);
  auto algo = Sfdm2::Create(Quotas({2, 8}), 2, MetricKind::kEuclidean,
                            OptionsFor(ds, 0.1));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 1);
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(SatisfiesQuotas(solution->points, std::vector<int>{2, 8}));
}

TEST(Sfdm2Test, SkewedGroupsRemainFair) {
  Dataset ds("skew", 2, 3, MetricKind::kEuclidean);
  Rng rng(33);
  for (int i = 0; i < 3000; ++i) {
    const std::vector<double> c{rng.NextDouble(0, 10), rng.NextDouble(0, 10)};
    const double u = rng.NextDouble();
    ds.Add(c, u < 0.9 ? 0 : (u < 0.97 ? 1 : 2));
  }
  const std::vector<int> quotas{3, 3, 3};
  auto algo = Sfdm2::Create(Quotas(quotas), 2, MetricKind::kEuclidean,
                            OptionsFor(ds, 0.1));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 5);
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(SatisfiesQuotas(solution->points, quotas));
}

// ---------------------------------------------------------------------------
// Theorem 4 property: div(S) >= (1−ε)/(3m+2) · OPT_f on every instance.
// ---------------------------------------------------------------------------

struct Sfdm2RatioCase {
  uint64_t seed;
  std::vector<int> quotas;
  double epsilon;
};

class Sfdm2RatioTest : public ::testing::TestWithParam<Sfdm2RatioCase> {};

TEST_P(Sfdm2RatioTest, AchievesTheoremFourGuarantee) {
  const Sfdm2RatioCase& param = GetParam();
  BlobsOptions opt;
  opt.n = 14;
  opt.num_blobs = 5;
  opt.num_groups = static_cast<int32_t>(param.quotas.size());
  opt.seed = param.seed;
  const Dataset ds = MakeBlobs(opt);
  FairnessConstraint c;
  c.quotas = param.quotas;
  if (!c.ValidateAgainst(ds.GroupSizes()).ok()) {
    GTEST_SKIP() << "random instance infeasible for the quota";
  }
  const ExactSolution exact = ExactFairDiversityMaximization(ds, c);
  ASSERT_GT(exact.diversity, 0.0);

  auto algo = Sfdm2::Create(c, 2, MetricKind::kEuclidean,
                            OptionsFor(ds, param.epsilon));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, param.seed * 31 + 7);
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(SatisfiesQuotas(solution->points, c.quotas));
  const double m = static_cast<double>(param.quotas.size());
  const double bound =
      (1.0 - param.epsilon) / (3.0 * m + 2.0) * exact.diversity;
  EXPECT_GE(solution->diversity, bound - 1e-9)
      << "seed=" << param.seed << " m=" << m << " OPT_f=" << exact.diversity;
}

INSTANTIATE_TEST_SUITE_P(
    SeedSweep, Sfdm2RatioTest,
    ::testing::Values(Sfdm2RatioCase{1, {2, 2}, 0.1},
                      Sfdm2RatioCase{2, {1, 1, 1}, 0.1},
                      Sfdm2RatioCase{3, {2, 1, 1}, 0.1},
                      Sfdm2RatioCase{4, {1, 1, 1, 1}, 0.1},
                      Sfdm2RatioCase{5, {2, 2, 2}, 0.25},
                      Sfdm2RatioCase{6, {3, 1}, 0.25},
                      Sfdm2RatioCase{7, {1, 2, 1}, 0.05},
                      Sfdm2RatioCase{8, {2, 1, 2, 1}, 0.1},
                      Sfdm2RatioCase{9, {1, 1}, 0.05},
                      Sfdm2RatioCase{10, {2, 3}, 0.1},
                      Sfdm2RatioCase{11, {1, 1, 2, 2}, 0.25},
                      Sfdm2RatioCase{12, {4, 1, 1}, 0.1}),
    [](const auto& info) {
      std::string name = "seed" + std::to_string(info.param.seed) + "_m" +
                         std::to_string(info.param.quotas.size()) + "_eps" +
                         std::to_string(
                             static_cast<int>(info.param.epsilon * 100));
      return name;
    });

}  // namespace
}  // namespace fdm
