// Cross-algorithm relationship checks — the Table II narrative as
// statistical assertions over repeated medium-size instances:
//
//   (1) every fair solution respects the 2·div(GMM) upper bound on OPT_f;
//   (2) unconstrained GMM averages at least as diverse as any fair
//       algorithm (fairness costs diversity);
//   (3) SFDM2 averages at least SFDM1's diversity (the paper finds SFDM2
//       "consistently better", thanks to the greedy augmentation);
//   (4) FairSwap and the streaming algorithms average above FairFlow at
//       m = 2 (the flow baseline is the weak one);
//   (5) SFDM2 quota-pattern sweep: any feasible quota shape yields a fair,
//       full solution.

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "data/synthetic.h"
#include "harness/experiment.h"

namespace fdm {
namespace {

struct Averages {
  double gmm = 0.0;
  double fair_swap = 0.0;
  double fair_flow = 0.0;
  double sfdm1 = 0.0;
  double sfdm2 = 0.0;
  int instances = 0;
};

Averages CollectTwoGroupAverages() {
  static Averages cached = [] {
    Averages avg;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      BlobsOptions opt;
      opt.n = 1200;
      opt.num_groups = 2;
      opt.seed = seed + 500;
      const Dataset ds = MakeBlobs(opt);
      RunConfig config;
      config.constraint = EqualRepresentation(10, 2).value();
      config.epsilon = 0.1;
      config.bounds = BoundsForExperiments(ds);
      config.permutation_seed = seed;

      auto run = [&](AlgorithmKind algo) {
        config.algorithm = algo;
        const RunResult r = RunAlgorithm(ds, config);
        return r.ok ? r.diversity : 0.0;
      };
      const double gmm = run(AlgorithmKind::kGmm);
      const double fair_swap = run(AlgorithmKind::kFairSwap);
      const double fair_flow = run(AlgorithmKind::kFairFlow);
      const double sfdm1 = run(AlgorithmKind::kSfdm1);
      const double sfdm2 = run(AlgorithmKind::kSfdm2);
      if (gmm <= 0 || fair_swap <= 0 || fair_flow <= 0 || sfdm1 <= 0 ||
          sfdm2 <= 0) {
        continue;
      }
      avg.gmm += gmm;
      avg.fair_swap += fair_swap;
      avg.fair_flow += fair_flow;
      avg.sfdm1 += sfdm1;
      avg.sfdm2 += sfdm2;
      ++avg.instances;
    }
    return avg;
  }();
  return cached;
}

TEST(CrossCheckTest, EveryInstanceSucceeded) {
  EXPECT_EQ(CollectTwoGroupAverages().instances, 5);
}

TEST(CrossCheckTest, FairnessCostsDiversityOnAverage) {
  const Averages avg = CollectTwoGroupAverages();
  ASSERT_GT(avg.instances, 0);
  EXPECT_GE(avg.gmm, avg.fair_swap);
  EXPECT_GE(avg.gmm, avg.sfdm1);
  EXPECT_GE(avg.gmm, avg.sfdm2);
}

TEST(CrossCheckTest, StreamingComparableToOfflineAtTwoGroups) {
  // Paper: streaming quality "close or equal" to FairSwap — require at
  // least 70% on average (measured gap is far smaller).
  const Averages avg = CollectTwoGroupAverages();
  ASSERT_GT(avg.instances, 0);
  EXPECT_GE(avg.sfdm1, 0.7 * avg.fair_swap);
  EXPECT_GE(avg.sfdm2, 0.7 * avg.fair_swap);
}

TEST(CrossCheckTest, Sfdm2AtLeastSfdm1OnAverage) {
  const Averages avg = CollectTwoGroupAverages();
  ASSERT_GT(avg.instances, 0);
  // "the solution quality of SFDM2 ... is not only consistently better
  // than that of SFDM1" — allow a whisker of slack for permutation noise.
  EXPECT_GE(avg.sfdm2, 0.95 * avg.sfdm1);
}

TEST(CrossCheckTest, FlowBaselineTrailsSwapOnAverage) {
  const Averages avg = CollectTwoGroupAverages();
  ASSERT_GT(avg.instances, 0);
  EXPECT_GE(avg.fair_swap, avg.fair_flow);
}

TEST(CrossCheckTest, UpperBoundHoldsPerInstance) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    BlobsOptions opt;
    opt.n = 800;
    opt.num_groups = 3;
    opt.seed = seed + 600;
    const Dataset ds = MakeBlobs(opt);
    RunConfig config;
    config.constraint = EqualRepresentation(9, 3).value();
    config.epsilon = 0.1;
    config.bounds = BoundsForExperiments(ds);
    config.algorithm = AlgorithmKind::kGmm;
    const RunResult gmm = RunAlgorithm(ds, config);
    ASSERT_TRUE(gmm.ok);
    for (const AlgorithmKind algo :
         {AlgorithmKind::kFairFlow, AlgorithmKind::kSfdm2}) {
      config.algorithm = algo;
      const RunResult r = RunAlgorithm(ds, config);
      ASSERT_TRUE(r.ok) << AlgorithmName(algo);
      EXPECT_LE(r.diversity, 2.0 * gmm.diversity + 1e-9)
          << AlgorithmName(algo) << " seed " << seed;
    }
  }
}

class QuotaPatternTest
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(QuotaPatternTest, Sfdm2HandlesAnyFeasibleShape) {
  const std::vector<int> quotas = GetParam();
  BlobsOptions opt;
  opt.n = 1500;
  opt.num_groups = static_cast<int32_t>(quotas.size());
  opt.seed = 77;
  const Dataset ds = MakeBlobs(opt);
  RunConfig config;
  config.algorithm = AlgorithmKind::kSfdm2;
  config.constraint.quotas = quotas;
  config.epsilon = 0.1;
  config.bounds = BoundsForExperiments(ds);
  const RunResult r = RunAlgorithm(ds, config);
  ASSERT_TRUE(r.ok) << r.error;
  std::vector<int> counts(quotas.size(), 0);
  for (const int64_t id : r.selected_ids) {
    ++counts[static_cast<size_t>(ds.GroupOf(static_cast<size_t>(id)))];
  }
  EXPECT_EQ(counts, quotas);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QuotaPatternTest,
    ::testing::Values(std::vector<int>{1, 1}, std::vector<int>{1, 9},
                      std::vector<int>{9, 1}, std::vector<int>{5, 5},
                      std::vector<int>{1, 1, 8}, std::vector<int>{4, 3, 3},
                      std::vector<int>{1, 2, 3, 4},
                      std::vector<int>{2, 2, 2, 2, 2},
                      std::vector<int>{7, 1, 1, 1},
                      std::vector<int>{1, 1, 1, 1, 1, 1}),
    [](const auto& info) {
      std::string name = "q";
      for (const int q : info.param) name += std::to_string(q) + "_";
      name.pop_back();
      return name;
    });

}  // namespace
}  // namespace fdm
