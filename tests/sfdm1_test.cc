#include "core/sfdm1.h"

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "data/synthetic.h"
#include "exact/brute_force.h"
#include "util/rng.h"

namespace fdm {
namespace {

StreamingOptions OptionsFor(const Dataset& ds, double epsilon) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  StreamingOptions o;
  o.epsilon = epsilon;
  o.d_min = b.min;
  o.d_max = b.max;
  return o;
}

FairnessConstraint Quotas(std::vector<int> q) {
  FairnessConstraint c;
  c.quotas = std::move(q);
  return c;
}

void Feed(Sfdm1& algo, const Dataset& ds, uint64_t seed) {
  for (const size_t row : StreamOrder(ds.size(), seed)) {
    algo.Observe(ds.At(row));
  }
}

TEST(Sfdm1Test, CreateRejectsWrongGroupCount) {
  StreamingOptions o;
  o.epsilon = 0.1;
  o.d_min = 1.0;
  o.d_max = 10.0;
  EXPECT_EQ(
      Sfdm1::Create(Quotas({1, 1, 1}), 2, MetricKind::kEuclidean, o).status()
          .code(),
      StatusCode::kUnsupported);
  EXPECT_FALSE(
      Sfdm1::Create(Quotas({5}), 2, MetricKind::kEuclidean, o).ok());
  EXPECT_FALSE(
      Sfdm1::Create(Quotas({0, 2}), 2, MetricKind::kEuclidean, o).ok());
}

TEST(Sfdm1Test, SolutionSatisfiesFairnessExactly) {
  BlobsOptions opt;
  opt.n = 800;
  opt.num_groups = 2;
  opt.seed = 7;
  const Dataset ds = MakeBlobs(opt);
  for (const auto& quotas :
       {std::vector<int>{5, 5}, std::vector<int>{8, 2}, std::vector<int>{1, 9}}) {
    auto algo = Sfdm1::Create(Quotas(quotas), 2, MetricKind::kEuclidean,
                              OptionsFor(ds, 0.1));
    ASSERT_TRUE(algo.ok());
    Feed(*algo, ds, 3);
    const auto solution = algo->Solve();
    ASSERT_TRUE(solution.ok()) << solution.status().ToString();
    EXPECT_EQ(solution->points.size(), 10u);
    EXPECT_TRUE(SatisfiesQuotas(solution->points, quotas));
  }
}

TEST(Sfdm1Test, DiversityMatchesRecomputation) {
  BlobsOptions opt;
  opt.n = 500;
  opt.num_groups = 2;
  opt.seed = 9;
  const Dataset ds = MakeBlobs(opt);
  auto algo = Sfdm1::Create(Quotas({4, 4}), 2, MetricKind::kEuclidean,
                            OptionsFor(ds, 0.1));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 5);
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->diversity,
              MinPairwiseDistance(solution->points, ds.metric()), 1e-12);
}

TEST(Sfdm1Test, SolveIsRepeatableAnytime) {
  // Solve() must not mutate stream state: solving twice gives the same
  // result, and observing more elements afterwards still works.
  BlobsOptions opt;
  opt.n = 400;
  opt.num_groups = 2;
  opt.seed = 11;
  const Dataset ds = MakeBlobs(opt);
  auto algo = Sfdm1::Create(Quotas({3, 3}), 2, MetricKind::kEuclidean,
                            OptionsFor(ds, 0.1));
  ASSERT_TRUE(algo.ok());
  const auto order = StreamOrder(ds.size(), 1);
  for (size_t i = 0; i < 200; ++i) algo->Observe(ds.At(order[i]));
  const auto mid1 = algo->Solve();
  const auto mid2 = algo->Solve();
  ASSERT_TRUE(mid1.ok());
  ASSERT_TRUE(mid2.ok());
  EXPECT_EQ(mid1->Ids(), mid2->Ids());
  EXPECT_DOUBLE_EQ(mid1->diversity, mid2->diversity);
  for (size_t i = 200; i < order.size(); ++i) algo->Observe(ds.At(order[i]));
  const auto final_solution = algo->Solve();
  ASSERT_TRUE(final_solution.ok());
  // More data can only help the best candidate (weak sanity check).
  EXPECT_GE(final_solution->diversity, 0.0);
}

TEST(Sfdm1Test, InfeasibleWhenGroupMissing) {
  // All stream elements are group 0; quota for group 1 can never fill.
  Dataset ds("mono", 1, 2, MetricKind::kEuclidean);
  for (int i = 0; i < 50; ++i) {
    ds.Add(std::vector<double>{static_cast<double>(i)}, 0);
  }
  auto algo = Sfdm1::Create(Quotas({2, 2}), 1, MetricKind::kEuclidean,
                            StreamingOptions{0.1, 1.0, 49.0});
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 1);
  const auto solution = algo->Solve();
  ASSERT_FALSE(solution.ok());
  EXPECT_EQ(solution.status().code(), StatusCode::kInfeasible);
}

TEST(Sfdm1Test, StorageBoundedByLadder) {
  BlobsOptions opt;
  opt.n = 5000;
  opt.num_groups = 2;
  opt.seed = 13;
  const Dataset ds = MakeBlobs(opt);
  auto algo = Sfdm1::Create(Quotas({5, 5}), 2, MetricKind::kEuclidean,
                            OptionsFor(ds, 0.1));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 1);
  // Theorem 3: O(k log∆/ε); concretely <= 2k per rung (k for the blind
  // candidate + k_1 + k_2 for the group candidates).
  const size_t bound = 2u * 10u * algo->ladder().size();
  EXPECT_LE(algo->StoredElements(), bound);
  EXPECT_LT(algo->StoredElements(), ds.size() / 4);
}

TEST(Sfdm1Test, SkewedStreamStillFair) {
  // 95/5 group skew — the under-filled group path is exercised heavily.
  Dataset ds("skew", 2, 2, MetricKind::kEuclidean);
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) {
    const std::vector<double> c{rng.NextDouble(0, 10), rng.NextDouble(0, 10)};
    ds.Add(c, rng.NextDouble() < 0.95 ? 0 : 1);
  }
  auto algo = Sfdm1::Create(Quotas({5, 5}), 2, MetricKind::kEuclidean,
                            OptionsFor(ds, 0.1));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 2);
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(SatisfiesQuotas(solution->points, std::vector<int>{5, 5}));
}

// ---------------------------------------------------------------------------
// Theorem 2 property: div(S) >= (1−ε)/4 · OPT_f on every instance.
// ---------------------------------------------------------------------------

struct Sfdm1RatioCase {
  uint64_t seed;
  int k1;
  int k2;
  double epsilon;
};

class Sfdm1RatioTest : public ::testing::TestWithParam<Sfdm1RatioCase> {};

TEST_P(Sfdm1RatioTest, AchievesTheoremTwoGuarantee) {
  const Sfdm1RatioCase param = GetParam();
  BlobsOptions opt;
  opt.n = 14;
  opt.num_blobs = 5;
  opt.num_groups = 2;
  opt.seed = param.seed;
  const Dataset ds = MakeBlobs(opt);
  const FairnessConstraint c = Quotas({param.k1, param.k2});
  if (!c.ValidateAgainst(ds.GroupSizes()).ok()) {
    GTEST_SKIP() << "random instance infeasible for the quota";
  }
  const ExactSolution exact = ExactFairDiversityMaximization(ds, c);
  ASSERT_GT(exact.diversity, 0.0);

  auto algo = Sfdm1::Create(c, 2, MetricKind::kEuclidean,
                            OptionsFor(ds, param.epsilon));
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, param.seed * 13 + 5);
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(SatisfiesQuotas(solution->points, c.quotas));
  const double bound = (1.0 - param.epsilon) / 4.0 * exact.diversity;
  EXPECT_GE(solution->diversity, bound - 1e-9)
      << "seed=" << param.seed << " quotas=(" << param.k1 << "," << param.k2
      << ") eps=" << param.epsilon << " OPT_f=" << exact.diversity;
}

INSTANTIATE_TEST_SUITE_P(
    SeedSweep, Sfdm1RatioTest,
    ::testing::Values(Sfdm1RatioCase{1, 2, 2, 0.1},
                      Sfdm1RatioCase{2, 2, 2, 0.1},
                      Sfdm1RatioCase{3, 3, 1, 0.1},
                      Sfdm1RatioCase{4, 1, 3, 0.1},
                      Sfdm1RatioCase{5, 2, 3, 0.25},
                      Sfdm1RatioCase{6, 3, 2, 0.25},
                      Sfdm1RatioCase{7, 1, 1, 0.05},
                      Sfdm1RatioCase{8, 2, 2, 0.05},
                      Sfdm1RatioCase{9, 3, 3, 0.1},
                      Sfdm1RatioCase{10, 2, 1, 0.1},
                      Sfdm1RatioCase{11, 4, 2, 0.1},
                      Sfdm1RatioCase{12, 2, 4, 0.25}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_q" +
             std::to_string(info.param.k1) + std::to_string(info.param.k2) +
             "_eps" + std::to_string(static_cast<int>(info.param.epsilon * 100));
    });

}  // namespace
}  // namespace fdm
