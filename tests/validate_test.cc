#include "core/validate.h"

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/sfdm2.h"
#include "core/solution.h"
#include "data/synthetic.h"

namespace fdm {
namespace {

Dataset TestData() {
  BlobsOptions opt;
  opt.n = 300;
  opt.num_groups = 2;
  opt.seed = 91;
  return MakeBlobs(opt);
}

TEST(ValidateSolutionTest, AcceptsGenuineOfflineSolution) {
  const Dataset ds = TestData();
  const std::vector<size_t> rows{1, 5, 9, 40};
  const Solution s = Solution::FromIndices(ds, rows);
  EXPECT_TRUE(ValidateSolution(ds, s).ok());
}

TEST(ValidateSolutionTest, AcceptsGenuineStreamingSolution) {
  const Dataset ds = TestData();
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  StreamingOptions o;
  o.epsilon = 0.1;
  o.d_min = b.min;
  o.d_max = b.max;
  FairnessConstraint c;
  c.quotas = {3, 3};
  auto algo = Sfdm2::Create(c, 2, ds.metric_kind(), o);
  ASSERT_TRUE(algo.ok());
  for (size_t i = 0; i < ds.size(); ++i) algo->Observe(ds.At(i));
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(ValidateSolution(ds, *solution, &c).ok());
}

TEST(ValidateSolutionTest, RejectsOutOfRangeId) {
  const Dataset ds = TestData();
  Solution s(ds.dim());
  const std::vector<double> coords{0.0, 0.0};
  s.points.Add(StreamPoint{99999, 0, std::span<const double>(coords)});
  s.diversity = MinPairwiseDistance(s.points, ds.metric());
  EXPECT_EQ(ValidateSolution(ds, s).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateSolutionTest, RejectsDuplicateSelection) {
  const Dataset ds = TestData();
  Solution s(ds.dim());
  s.points.Add(ds.At(3));
  s.points.Add(ds.At(3));
  s.diversity = MinPairwiseDistance(s.points, ds.metric());
  EXPECT_EQ(ValidateSolution(ds, s).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateSolutionTest, RejectsTamperedCoordinates) {
  const Dataset ds = TestData();
  Solution s(ds.dim());
  StreamPoint p = ds.At(7);
  std::vector<double> tampered(p.coords.begin(), p.coords.end());
  tampered[0] += 0.5;
  s.points.Add(StreamPoint{p.id, p.group, tampered});
  s.diversity = MinPairwiseDistance(s.points, ds.metric());
  EXPECT_EQ(ValidateSolution(ds, s).code(), StatusCode::kInternal);
}

TEST(ValidateSolutionTest, RejectsTamperedGroup) {
  const Dataset ds = TestData();
  Solution s(ds.dim());
  StreamPoint p = ds.At(7);
  p.group = 1 - p.group;
  s.points.Add(p);
  s.diversity = MinPairwiseDistance(s.points, ds.metric());
  EXPECT_EQ(ValidateSolution(ds, s).code(), StatusCode::kInternal);
}

TEST(ValidateSolutionTest, RejectsWrongDiversity) {
  const Dataset ds = TestData();
  Solution s = Solution::FromIndices(ds, std::vector<size_t>{1, 2, 3});
  s.diversity *= 2.0;
  EXPECT_EQ(ValidateSolution(ds, s).code(), StatusCode::kInternal);
}

TEST(ValidateSolutionTest, RejectsQuotaViolation) {
  const Dataset ds = TestData();
  // Three rows of whatever groups they happen to be — quotas {1, 2} will
  // only pass if the counts match exactly; construct a guaranteed
  // violation by taking three rows of the same group.
  std::vector<size_t> same_group;
  for (size_t i = 0; i < ds.size() && same_group.size() < 3; ++i) {
    if (ds.GroupOf(i) == 0) same_group.push_back(i);
  }
  const Solution s = Solution::FromIndices(ds, same_group);
  FairnessConstraint c;
  c.quotas = {1, 2};
  EXPECT_EQ(ValidateSolution(ds, s, &c).code(), StatusCode::kInfeasible);
  EXPECT_TRUE(ValidateSolution(ds, s).ok());  // fine without constraint
}

TEST(ValidateSolutionTest, RejectsDimensionMismatch) {
  const Dataset ds = TestData();
  Solution s(ds.dim() + 1);
  EXPECT_EQ(ValidateSolution(ds, s).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateSolutionTest, RejectsConstraintArityMismatch) {
  const Dataset ds = TestData();
  const Solution s = Solution::FromIndices(ds, std::vector<size_t>{1});
  FairnessConstraint c;
  c.quotas = {1, 1, 1};
  EXPECT_EQ(ValidateSolution(ds, s, &c).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidateSolutionTest, EmptySolutionIsValidWithoutConstraint) {
  const Dataset ds = TestData();
  Solution s(ds.dim());
  s.diversity = MinPairwiseDistance(s.points, ds.metric());  // +inf
  EXPECT_TRUE(ValidateSolution(ds, s).ok());
}

}  // namespace
}  // namespace fdm
