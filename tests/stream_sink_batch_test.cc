// The StreamSink contract: ingesting a stream through ObserveBatch — any
// batch sizes, any thread count — yields exactly the same Solve() output
// as per-element Observe, for every streaming algorithm.

#include "core/stream_sink.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive_streaming_dm.h"
#include "core/sfdm1.h"
#include "core/sfdm2.h"
#include "core/sharded_stream.h"
#include "core/streaming_dm.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace fdm {
namespace {

Dataset TestData(int m, uint64_t seed, size_t n = 400) {
  BlobsOptions opt;
  opt.n = n;
  opt.num_groups = m;
  opt.seed = seed;
  return MakeBlobs(opt);
}

StreamingOptions OptionsFor(const Dataset& ds, int batch_threads) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  StreamingOptions o;
  o.epsilon = 0.1;
  o.d_min = b.min;
  o.d_max = b.max;
  o.batch_threads = batch_threads;
  return o;
}

/// Feeds `ds` in the permutation given by `seed`, chopped into batches of
/// pseudo-random sizes in [1, 97] (batch size 0 = per-element Observe).
void Feed(StreamSink& sink, const Dataset& ds, uint64_t seed,
          bool batched) {
  const std::vector<size_t> order = StreamOrder(ds.size(), seed);
  if (!batched) {
    for (const size_t row : order) sink.Observe(ds.At(row));
    return;
  }
  Rng rng(seed * 31 + 7);
  size_t pos = 0;
  while (pos < order.size()) {
    const size_t size =
        std::min(order.size() - pos, 1 + rng.NextBounded(97));
    std::vector<StreamPoint> batch;
    batch.reserve(size);
    for (size_t i = 0; i < size; ++i) batch.push_back(ds.At(order[pos + i]));
    sink.ObserveBatch(batch);
    pos += size;
  }
}

/// Bit-identical outcome check: same ids in the same order, same
/// diversity, same µ, same storage and observed counts.
void ExpectIdentical(const StreamSink& a, const StreamSink& b) {
  const auto sa = a.Solve();
  const auto sb = b.Solve();
  ASSERT_EQ(sa.ok(), sb.ok());
  EXPECT_EQ(a.ObservedElements(), b.ObservedElements());
  EXPECT_EQ(a.StoredElements(), b.StoredElements());
  if (!sa.ok()) return;
  EXPECT_EQ(sa->Ids(), sb->Ids());
  EXPECT_EQ(sa->diversity, sb->diversity);  // exact, not approximate
  EXPECT_EQ(sa->mu, sb->mu);
}

struct BatchCase {
  uint64_t seed;
  int batch_threads;
};

class StreamSinkBatchTest : public ::testing::TestWithParam<BatchCase> {};

TEST_P(StreamSinkBatchTest, StreamingDmBatchEqualsSequential) {
  const BatchCase param = GetParam();
  const Dataset ds = TestData(2, 100 + param.seed);
  auto sequential = StreamingDm::Create(8, ds.dim(), ds.metric_kind(),
                                        OptionsFor(ds, 1));
  auto batched = StreamingDm::Create(8, ds.dim(), ds.metric_kind(),
                                     OptionsFor(ds, param.batch_threads));
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(batched.ok());
  Feed(*sequential, ds, param.seed, /*batched=*/false);
  Feed(*batched, ds, param.seed, /*batched=*/true);
  ExpectIdentical(*sequential, *batched);
}

TEST_P(StreamSinkBatchTest, Sfdm1BatchEqualsSequential) {
  const BatchCase param = GetParam();
  const Dataset ds = TestData(2, 200 + param.seed);
  const FairnessConstraint constraint = EqualRepresentation(8, 2).value();
  auto sequential = Sfdm1::Create(constraint, ds.dim(), ds.metric_kind(),
                                  OptionsFor(ds, 1));
  auto batched = Sfdm1::Create(constraint, ds.dim(), ds.metric_kind(),
                               OptionsFor(ds, param.batch_threads));
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(batched.ok());
  Feed(*sequential, ds, param.seed, /*batched=*/false);
  Feed(*batched, ds, param.seed, /*batched=*/true);
  ExpectIdentical(*sequential, *batched);
}

TEST_P(StreamSinkBatchTest, Sfdm2BatchEqualsSequential) {
  const BatchCase param = GetParam();
  const Dataset ds = TestData(3, 300 + param.seed);
  const FairnessConstraint constraint = EqualRepresentation(9, 3).value();
  auto sequential = Sfdm2::Create(constraint, ds.dim(), ds.metric_kind(),
                                  OptionsFor(ds, 1));
  auto batched = Sfdm2::Create(constraint, ds.dim(), ds.metric_kind(),
                               OptionsFor(ds, param.batch_threads));
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(batched.ok());
  Feed(*sequential, ds, param.seed, /*batched=*/false);
  Feed(*batched, ds, param.seed, /*batched=*/true);
  ExpectIdentical(*sequential, *batched);
}

TEST_P(StreamSinkBatchTest, ShardedBatchEqualsSequential) {
  const BatchCase param = GetParam();
  const Dataset ds = TestData(2, 400 + param.seed, /*n=*/800);
  ShardedStreamingOptions sharding;
  sharding.num_shards = 4;
  sharding.batch_threads = param.batch_threads;
  auto sequential = ShardedStreamingDm::Create(
      6, ds.dim(), ds.metric_kind(), OptionsFor(ds, 1), sharding);
  auto batched = ShardedStreamingDm::Create(
      6, ds.dim(), ds.metric_kind(), OptionsFor(ds, 1), sharding);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(batched.ok());
  Feed(*sequential, ds, param.seed, /*batched=*/false);
  Feed(*batched, ds, param.seed, /*batched=*/true);
  ExpectIdentical(*sequential, *batched);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThreads, StreamSinkBatchTest,
    ::testing::Values(BatchCase{1, 1}, BatchCase{2, 1}, BatchCase{3, 2},
                      BatchCase{4, 4}, BatchCase{5, 0}, BatchCase{6, 4}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_threads" +
             std::to_string(info.param.batch_threads);
    });

TEST(StreamSinkBatchTest, AdaptiveDefaultBatchEqualsSequential) {
  // AdaptiveStreamingDm inherits the sequential default ObserveBatch
  // (ladder growth is a dependent chain); equivalence must still hold.
  const Dataset ds = TestData(2, 55);
  auto sequential =
      AdaptiveStreamingDm::Create(7, ds.dim(), ds.metric_kind(), 0.1);
  auto batched =
      AdaptiveStreamingDm::Create(7, ds.dim(), ds.metric_kind(), 0.1);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(batched.ok());
  Feed(*sequential, ds, 9, /*batched=*/false);
  Feed(*batched, ds, 9, /*batched=*/true);
  ExpectIdentical(*sequential, *batched);
}

TEST(StreamSinkBatchTest, MixedObserveAndBatchEqualsSequential) {
  // Interleaving Observe and ObserveBatch on the same sink must match the
  // pure per-element run (the batch is not a separate mode, just a chunk).
  const Dataset ds = TestData(2, 77);
  auto a = StreamingDm::Create(6, ds.dim(), ds.metric_kind(),
                               OptionsFor(ds, 2));
  auto b = StreamingDm::Create(6, ds.dim(), ds.metric_kind(),
                               OptionsFor(ds, 1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const std::vector<size_t> order = StreamOrder(ds.size(), 5);
  std::vector<StreamPoint> batch;
  for (size_t pos = 0; pos < order.size(); ++pos) {
    if (pos % 3 == 0) {
      a->Observe(ds.At(order[pos]));
    } else {
      batch.push_back(ds.At(order[pos]));
      if (batch.size() == 32) {
        a->ObserveBatch(batch);
        batch.clear();
      }
    }
  }
  // Flush, then replay the same effective element order sequentially.
  if (!batch.empty()) a->ObserveBatch(batch);
  std::vector<size_t> effective;
  std::vector<size_t> deferred;
  for (size_t pos = 0; pos < order.size(); ++pos) {
    if (pos % 3 == 0) {
      effective.push_back(order[pos]);
    } else {
      deferred.push_back(order[pos]);
      if (deferred.size() == 32) {
        effective.insert(effective.end(), deferred.begin(), deferred.end());
        deferred.clear();
      }
    }
  }
  effective.insert(effective.end(), deferred.begin(), deferred.end());
  for (const size_t row : effective) b->Observe(ds.At(row));
  ExpectIdentical(*a, *b);
}

TEST(StreamSinkBatchTest, PolymorphicUseThroughBasePointer) {
  // The harness-facing shape: algorithms behind unique_ptr<StreamSink>.
  const Dataset ds = TestData(2, 88);
  const FairnessConstraint constraint = EqualRepresentation(6, 2).value();
  std::vector<std::unique_ptr<StreamSink>> sinks;
  {
    auto r = Sfdm1::Create(constraint, ds.dim(), ds.metric_kind(),
                           OptionsFor(ds, 1));
    ASSERT_TRUE(r.ok());
    sinks.push_back(std::make_unique<Sfdm1>(std::move(r.value())));
  }
  {
    auto r = Sfdm2::Create(constraint, ds.dim(), ds.metric_kind(),
                           OptionsFor(ds, 1));
    ASSERT_TRUE(r.ok());
    sinks.push_back(std::make_unique<Sfdm2>(std::move(r.value())));
  }
  for (const auto& sink : sinks) {
    Feed(*sink, ds, 3, /*batched=*/true);
    const auto solution = sink->Solve();
    ASSERT_TRUE(solution.ok()) << solution.status().ToString();
    EXPECT_EQ(solution->points.size(), 6u);
    EXPECT_EQ(sink->ObservedElements(), static_cast<int64_t>(ds.size()));
    EXPECT_GT(sink->StoredElements(), 0u);
  }
}

}  // namespace
}  // namespace fdm
