#include "core/matroid.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fdm {
namespace {

// Ground set {0..5}; parts: {0,1,2} -> 0, {3,4} -> 1, {5} -> 2.
PartitionMatroid MakeExample(std::vector<int> caps = {2, 1, 1}) {
  return PartitionMatroid({0, 0, 0, 1, 1, 2}, std::move(caps));
}

TEST(PartitionMatroidTest, EmptySetIsIndependent) {
  const PartitionMatroid m = MakeExample();
  EXPECT_TRUE(m.IsIndependent({}));
}

TEST(PartitionMatroidTest, RespectsCapacities) {
  const PartitionMatroid m = MakeExample();
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{0, 1}));         // 2 of part 0
  EXPECT_FALSE(m.IsIndependent(std::vector<int>{0, 1, 2}));     // 3 of part 0
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{0, 3, 5}));
  EXPECT_FALSE(m.IsIndependent(std::vector<int>{3, 4}));        // 2 of part 1
}

TEST(PartitionMatroidTest, RankSumsCappedPartSizes) {
  EXPECT_EQ(MakeExample().Rank(), 4);  // min(3,2)+min(2,1)+min(1,1)
  EXPECT_EQ(MakeExample({5, 5, 5}).Rank(), 6);  // capacities exceed parts
  EXPECT_EQ(MakeExample({0, 0, 0}).Rank(), 0);
}

TEST(PartitionMatroidTest, CanAddMatchesDefinition) {
  const PartitionMatroid m = MakeExample();
  const std::vector<int> s{0, 3};
  EXPECT_TRUE(m.CanAdd(s, 1));   // part 0 has 1 < 2
  EXPECT_FALSE(m.CanAdd(s, 4));  // part 1 full
  EXPECT_TRUE(m.CanAdd(s, 5));   // part 2 empty
}

TEST(PartitionMatroidTest, CanExchangeRequiresSamePart) {
  const PartitionMatroid m = MakeExample();
  const std::vector<int> s{3};   // part 1 at capacity
  EXPECT_TRUE(m.CanExchange(s, 4, 3));   // same part swap
  EXPECT_FALSE(m.CanExchange(s, 4, 5));  // removing part-2 element: 5 not in s anyway
}

TEST(PartitionMatroidTest, HereditaryProperty) {
  // Every subset of an independent set is independent.
  const PartitionMatroid m = MakeExample();
  Rng rng(3);
  const std::vector<int> base{0, 1, 3, 5};  // independent (2,1,1)
  ASSERT_TRUE(m.IsIndependent(base));
  for (uint32_t mask = 0; mask < (1u << base.size()); ++mask) {
    std::vector<int> subset;
    for (size_t i = 0; i < base.size(); ++i) {
      if (mask & (1u << i)) subset.push_back(base[i]);
    }
    EXPECT_TRUE(m.IsIndependent(subset));
  }
}

TEST(PartitionMatroidTest, AugmentationProperty) {
  // For random independent A, B with |A| > |B| there exists x in A\B with
  // B + x independent — the defining matroid exchange axiom.
  Rng rng(5);
  const PartitionMatroid m({0, 0, 0, 1, 1, 2, 2, 3}, {2, 1, 2, 1});
  const int n = m.GroundSize();
  auto random_independent = [&](size_t target) {
    std::vector<int> members;
    for (int attempt = 0; attempt < 200 && members.size() < target;
         ++attempt) {
      const int x = static_cast<int>(rng.NextBounded(n));
      bool present = false;
      for (const int e : members) present |= (e == x);
      if (!present && m.CanAdd(members, x)) members.push_back(x);
    }
    return members;
  };
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int> a = random_independent(1 + rng.NextBounded(5));
    std::vector<int> b = random_independent(1 + rng.NextBounded(5));
    if (a.size() <= b.size()) continue;
    bool found = false;
    for (const int x : a) {
      bool in_b = false;
      for (const int e : b) in_b |= (e == x);
      if (!in_b && m.CanAdd(b, x)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "augmentation axiom violated";
  }
}

TEST(PartitionMatroidTest, FairnessMatroidSemantics) {
  // M1 of SFDM2: parts = demographic groups, capacities = quotas. A set is
  // a fair selection iff it is a maximal independent set.
  const PartitionMatroid m({0, 0, 1, 1, 1}, {1, 2});
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{0, 2, 3}));   // exactly fair
  EXPECT_FALSE(m.IsIndependent(std::vector<int>{0, 1}));     // 2 from group 0
  EXPECT_EQ(m.Rank(), 3);
}

TEST(PartitionMatroidTest, ClusterMatroidSemantics) {
  // M2 of SFDM2: parts = clusters, all capacities 1.
  const PartitionMatroid m({0, 0, 1, 2, 2}, {1, 1, 1});
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{0, 2, 3}));
  EXPECT_FALSE(m.IsIndependent(std::vector<int>{3, 4}));  // same cluster
  EXPECT_EQ(m.Rank(), 3);
}

TEST(PartitionMatroidTest, AccessorsExposeStructure) {
  const PartitionMatroid m = MakeExample();
  EXPECT_EQ(m.GroundSize(), 6);
  EXPECT_EQ(m.num_parts(), 3);
  EXPECT_EQ(m.label_of(4), 1);
  EXPECT_EQ(m.capacity_of(0), 2);
}

}  // namespace
}  // namespace fdm
