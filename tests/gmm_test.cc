#include "core/gmm.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "data/synthetic.h"
#include "exact/brute_force.h"

namespace fdm {
namespace {

Dataset LinePoints(const std::vector<double>& xs) {
  Dataset ds("line", 1, 1, MetricKind::kEuclidean);
  for (const double x : xs) ds.Add(std::vector<double>{x}, 0);
  return ds;
}

TEST(GmmTest, FarthestFirstOnLine) {
  // From start 0 on {0, 1, 5, 9, 10}: picks 0, then 10, then 5.
  const Dataset ds = LinePoints({0.0, 1.0, 5.0, 9.0, 10.0});
  const auto sel = GreedyGmm(ds, 3);
  EXPECT_EQ(sel, (std::vector<size_t>{0, 4, 2}));
}

TEST(GmmTest, ReturnsExactlyKDistinctRows) {
  BlobsOptions opt;
  opt.n = 500;
  opt.seed = 21;
  const Dataset ds = MakeBlobs(opt);
  const auto sel = GreedyGmm(ds, 20);
  EXPECT_EQ(sel.size(), 20u);
  EXPECT_EQ(std::set<size_t>(sel.begin(), sel.end()).size(), 20u);
}

TEST(GmmTest, KLargerThanUniverseReturnsAll) {
  const Dataset ds = LinePoints({0.0, 1.0, 2.0});
  const auto sel = GreedyGmm(ds, 10);
  EXPECT_EQ(sel.size(), 3u);
}

TEST(GmmTest, TwoApproximationAgainstExactOptimum) {
  // The classic guarantee: div(GMM) >= OPT / 2.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    BlobsOptions opt;
    opt.n = 15;
    opt.seed = seed;
    const Dataset ds = MakeBlobs(opt);
    for (const int k : {2, 3, 4, 5}) {
      const ExactSolution exact = ExactDiversityMaximization(ds, k);
      const auto sel = GreedyGmm(ds, static_cast<size_t>(k));
      const double div = MinPairwiseDistance(ds, sel);
      EXPECT_GE(div, exact.diversity / 2.0 - 1e-9)
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(GmmTest, UniverseRestrictionHonored) {
  BlobsOptions opt;
  opt.n = 100;
  opt.num_groups = 2;
  opt.seed = 23;
  const Dataset ds = MakeBlobs(opt);
  const std::vector<size_t> group0 = RowsOfGroup(ds, 0);
  const auto sel = GreedyGmm(ds, group0, 5);
  for (const size_t row : sel) {
    EXPECT_EQ(ds.GroupOf(row), 0);
  }
}

TEST(GmmTest, WarmStartInfluencesSelection) {
  // Warm-starting with the far endpoint: the first greedy pick must be far
  // from it, and the warm row itself is never returned.
  const Dataset ds = LinePoints({0.0, 1.0, 5.0, 9.0, 10.0});
  const std::vector<size_t> universe{0, 1, 2, 3, 4};
  const std::vector<size_t> warm{4};  // x = 10
  const auto sel = GreedyGmm(ds, universe, 2, warm);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0], 0u);  // farthest from 10
  EXPECT_TRUE(std::find(sel.begin(), sel.end(), 4u) == sel.end());
}

TEST(GmmTest, StartIndexChangesFirstPick) {
  const Dataset ds = LinePoints({0.0, 1.0, 5.0, 9.0, 10.0});
  const std::vector<size_t> universe{0, 1, 2, 3, 4};
  const auto from0 = GreedyGmm(ds, universe, 3, {}, 0);
  const auto from2 = GreedyGmm(ds, universe, 3, {}, 2);
  EXPECT_EQ(from0[0], 0u);
  EXPECT_EQ(from2[0], 2u);
  // Different starts may give different solutions, but both are 1/2-approx;
  // check both achieve at least half the known OPT (OPT = 5 here).
  EXPECT_GE(MinPairwiseDistance(ds, from0), 2.5);
  EXPECT_GE(MinPairwiseDistance(ds, from2), 2.5);
}

TEST(GmmTest, DuplicatePointsStillReturnK) {
  Dataset ds("dups", 1, 1, MetricKind::kEuclidean);
  for (int i = 0; i < 6; ++i) ds.Add(std::vector<double>{1.0}, 0);
  const auto sel = GreedyGmm(ds, 4);
  EXPECT_EQ(sel.size(), 4u);  // duplicates are selectable (div 0)
  EXPECT_DOUBLE_EQ(MinPairwiseDistance(ds, sel), 0.0);
}

TEST(GmmTest, ZeroKGivesEmpty) {
  const Dataset ds = LinePoints({0.0, 1.0});
  EXPECT_TRUE(GreedyGmm(ds, 0).empty());
}

TEST(GmmTest, UpperBoundPropertyForFdm) {
  // The paper uses 2·div(GMM) as an upper bound for OPT_f in the
  // evaluation; verify OPT_f <= OPT <= 2·div(GMM) on small instances.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    BlobsOptions opt;
    opt.n = 14;
    opt.num_groups = 2;
    opt.seed = seed;
    const Dataset ds = MakeBlobs(opt);
    FairnessConstraint c;
    c.quotas = {2, 2};
    const ExactSolution fair = ExactFairDiversityMaximization(ds, c);
    const auto gmm = GreedyGmm(ds, 4);
    const double bound = 2.0 * MinPairwiseDistance(ds, gmm);
    EXPECT_LE(fair.diversity, bound + 1e-9) << "seed " << seed;
  }
}

TEST(RowsOfGroupTest, PartitionsDataset) {
  BlobsOptions opt;
  opt.n = 60;
  opt.num_groups = 3;
  opt.seed = 29;
  const Dataset ds = MakeBlobs(opt);
  size_t total = 0;
  for (int g = 0; g < 3; ++g) {
    const auto rows = RowsOfGroup(ds, g);
    for (const size_t r : rows) EXPECT_EQ(ds.GroupOf(r), g);
    total += rows.size();
  }
  EXPECT_EQ(total, ds.size());
}

}  // namespace
}  // namespace fdm
