#include "core/sliding_window.h"

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/sfdm2.h"
#include "core/streaming_dm.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace fdm {
namespace {

StreamingOptions OptionsFor(const Dataset& ds, double epsilon = 0.1) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  StreamingOptions o;
  o.epsilon = epsilon;
  o.d_min = b.min;
  o.d_max = b.max;
  return o;
}

TEST(SlidingWindowTest, CreateValidates) {
  auto factory = [] {
    StreamingOptions o;
    o.epsilon = 0.1;
    o.d_min = 1.0;
    o.d_max = 10.0;
    return StreamingDm::Create(3, 2, MetricKind::kEuclidean, o);
  };
  EXPECT_FALSE(SlidingWindow<StreamingDm>::Create(0, 1, factory).ok());
  EXPECT_FALSE(SlidingWindow<StreamingDm>::Create(10, 0, factory).ok());
  EXPECT_FALSE(SlidingWindow<StreamingDm>::Create(10, 11, factory).ok());
  EXPECT_FALSE(SlidingWindow<StreamingDm>::Create(10, 2, nullptr).ok());
  EXPECT_TRUE(SlidingWindow<StreamingDm>::Create(10, 2, factory).ok());
}

TEST(SlidingWindowTest, CreateSurfacesFactoryErrors) {
  auto broken_factory = [] {
    StreamingOptions o;  // d_min = 0: invalid
    return StreamingDm::Create(3, 2, MetricKind::kEuclidean, o);
  };
  EXPECT_FALSE(
      SlidingWindow<StreamingDm>::Create(10, 2, broken_factory).ok());
}

TEST(SlidingWindowTest, SolutionsStayInsideWindow) {
  // The defining correctness property: every reported element id was
  // observed within the last `window` elements, at every query point.
  BlobsOptions opt;
  opt.n = 3000;
  opt.seed = 3;
  const Dataset ds = MakeBlobs(opt);
  const StreamingOptions streaming = OptionsFor(ds);
  const int64_t window = 500;
  auto sw = SlidingWindow<StreamingDm>::Create(window, 5, [&] {
    return StreamingDm::Create(8, 2, MetricKind::kEuclidean, streaming);
  });
  ASSERT_TRUE(sw.ok());
  for (size_t i = 0; i < ds.size(); ++i) {
    sw->Observe(ds.At(i));
    ASSERT_TRUE(sw->error().ok());
    if ((i + 1) % 250 == 0 && static_cast<int64_t>(i) >= window) {
      const auto solution = sw->Solve();
      if (!solution.ok()) continue;  // window may lack k spread points
      const int64_t window_start = static_cast<int64_t>(i) + 1 - window;
      for (const int64_t id : solution->Ids()) {
        EXPECT_GE(id, window_start) << "expired element at position " << i;
        EXPECT_LE(id, static_cast<int64_t>(i));
      }
    }
  }
}

TEST(SlidingWindowTest, AdaptsToDistributionShift) {
  // First half of the stream lives in [0,1]^2, second half in
  // [100,101]^2. After the shift has filled the window, the solution must
  // consist purely of new-regime points — a plain one-pass algorithm
  // would keep stale far-apart points forever.
  Rng rng(7);
  const int64_t window = 400;
  StreamingOptions streaming;
  streaming.epsilon = 0.1;
  streaming.d_min = 0.001;
  streaming.d_max = 300.0;
  auto sw = SlidingWindow<StreamingDm>::Create(window, 4, [&] {
    return StreamingDm::Create(5, 2, MetricKind::kEuclidean, streaming);
  });
  ASSERT_TRUE(sw.ok());
  int64_t id = 0;
  for (int i = 0; i < 1500; ++i) {
    const std::vector<double> c{rng.NextDouble(), rng.NextDouble()};
    sw->Observe(StreamPoint{id++, 0, std::span<const double>(c)});
  }
  for (int i = 0; i < 1500; ++i) {
    const std::vector<double> c{100.0 + rng.NextDouble(),
                                100.0 + rng.NextDouble()};
    sw->Observe(StreamPoint{id++, 0, std::span<const double>(c)});
  }
  ASSERT_TRUE(sw->error().ok());
  const auto solution = sw->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  for (size_t i = 0; i < solution->points.size(); ++i) {
    EXPECT_GE(solution->points.CoordsAt(i)[0], 100.0)
        << "stale pre-shift element survived in the window solution";
  }
}

TEST(SlidingWindowTest, ReplicaCountBounded) {
  BlobsOptions opt;
  opt.n = 5000;
  opt.seed = 9;
  const Dataset ds = MakeBlobs(opt);
  const StreamingOptions streaming = OptionsFor(ds);
  const int64_t checkpoints = 6;
  auto sw = SlidingWindow<StreamingDm>::Create(600, checkpoints, [&] {
    return StreamingDm::Create(5, 2, MetricKind::kEuclidean, streaming);
  });
  ASSERT_TRUE(sw.ok());
  size_t max_live = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    sw->Observe(ds.At(i));
    max_live = std::max(max_live, sw->live_replicas());
  }
  ASSERT_TRUE(sw->error().ok());
  EXPECT_LE(max_live, static_cast<size_t>(checkpoints) + 1);
  EXPECT_EQ(sw->ObservedElements(), static_cast<int64_t>(ds.size()));
}

TEST(SlidingWindowTest, MoreCheckpointsNeverWorseCoverage) {
  // With c checkpoints the answering replica covers >= window·(1−1/c);
  // verify the suffix-coverage accounting via the replica start positions
  // implicitly: diversity with c=8 should be >= diversity with c=1 most
  // of the time. We assert it on a fixed stream (deterministic).
  BlobsOptions opt;
  opt.n = 4000;
  opt.seed = 11;
  const Dataset ds = MakeBlobs(opt);
  const StreamingOptions streaming = OptionsFor(ds);
  auto run = [&](int64_t checkpoints) {
    auto sw = SlidingWindow<StreamingDm>::Create(1000, checkpoints, [&] {
      return StreamingDm::Create(8, 2, MetricKind::kEuclidean, streaming);
    });
    for (size_t i = 0; i < ds.size(); ++i) {
      (void)sw->Observe(ds.At(i));
    }
    const auto solution = sw->Solve();
    return solution.ok() ? solution->diversity : 0.0;
  };
  const double coarse = run(1);
  const double fine = run(8);
  EXPECT_GT(fine, 0.0);
  // Not a theorem per-instance, but on blob data with a long window the
  // 8-checkpoint cover sees >= 7/8 of the window vs a potentially tiny
  // suffix for c=1; allow a small tolerance.
  EXPECT_GE(fine, 0.8 * coarse);
}

TEST(SlidingWindowTest, WorksWithSfdm2ForFairWindows) {
  // Fair sliding-window selection: the future-work combination.
  BlobsOptions opt;
  opt.n = 4000;
  opt.num_groups = 3;
  opt.seed = 13;
  const Dataset ds = MakeBlobs(opt);
  const StreamingOptions streaming = OptionsFor(ds);
  FairnessConstraint c;
  c.quotas = {2, 2, 2};
  auto sw = SlidingWindow<Sfdm2>::Create(800, 4, [&] {
    return Sfdm2::Create(c, 2, MetricKind::kEuclidean, streaming);
  });
  ASSERT_TRUE(sw.ok());
  for (size_t i = 0; i < ds.size(); ++i) {
    sw->Observe(ds.At(i));
  }
  ASSERT_TRUE(sw->error().ok());
  const auto solution = sw->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(SatisfiesQuotas(solution->points, c.quotas));
  for (const int64_t id : solution->Ids()) {
    EXPECT_GE(id, static_cast<int64_t>(ds.size()) - 800);
  }
}

TEST(SlidingWindowTest, SolveBeforeAnyObservationFails) {
  StreamingOptions streaming;
  streaming.epsilon = 0.1;
  streaming.d_min = 1.0;
  streaming.d_max = 10.0;
  auto sw = SlidingWindow<StreamingDm>::Create(100, 2, [&] {
    return StreamingDm::Create(3, 1, MetricKind::kEuclidean, streaming);
  });
  ASSERT_TRUE(sw.ok());
  EXPECT_FALSE(sw->Solve().ok());
}

}  // namespace
}  // namespace fdm
