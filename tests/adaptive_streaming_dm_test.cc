#include "core/adaptive_streaming_dm.h"

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/streaming_dm.h"
#include "data/synthetic.h"
#include "exact/brute_force.h"
#include "util/rng.h"

namespace fdm {
namespace {

TEST(AdaptiveStreamingDmTest, CreateValidates) {
  EXPECT_FALSE(
      AdaptiveStreamingDm::Create(0, 2, MetricKind::kEuclidean, 0.1).ok());
  EXPECT_FALSE(
      AdaptiveStreamingDm::Create(5, 0, MetricKind::kEuclidean, 0.1).ok());
  EXPECT_FALSE(
      AdaptiveStreamingDm::Create(5, 2, MetricKind::kEuclidean, 0.0).ok());
  EXPECT_FALSE(
      AdaptiveStreamingDm::Create(5, 2, MetricKind::kEuclidean, 1.0).ok());
  EXPECT_FALSE(
      AdaptiveStreamingDm::Create(5, 2, MetricKind::kEuclidean, 0.1, 0).ok());
  EXPECT_TRUE(
      AdaptiveStreamingDm::Create(5, 2, MetricKind::kEuclidean, 0.1).ok());
}

TEST(AdaptiveStreamingDmTest, NoBoundsNeededEndToEnd) {
  BlobsOptions opt;
  opt.n = 2000;
  opt.seed = 5;
  const Dataset ds = MakeBlobs(opt);
  auto algo = AdaptiveStreamingDm::Create(10, 2, MetricKind::kEuclidean, 0.1);
  ASSERT_TRUE(algo.ok());
  for (const size_t row : StreamOrder(ds.size(), 1)) {
    algo->Observe(ds.At(row));
  }
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(solution->points.size(), 10u);
  EXPECT_GT(solution->diversity, 0.0);
  // The invariant certification: the winning candidate was full.
  EXPECT_GE(solution->diversity, solution->mu - 1e-12);
}

TEST(AdaptiveStreamingDmTest, LadderCoversObservedSpread) {
  // Stream distances spanning several orders of magnitude: the lazily
  // grown ladder must extend to cover them in both directions.
  auto algo = AdaptiveStreamingDm::Create(4, 1, MetricKind::kEuclidean, 0.2);
  ASSERT_TRUE(algo.ok());
  int64_t id = 0;
  auto feed = [&](double x) {
    const std::vector<double> c{x};
    algo->Observe(StreamPoint{id++, 0, std::span<const double>(c)});
  };
  feed(0.0);
  feed(1.0);      // seeds the ladder at µ = 1
  feed(1000.0);   // forces upward growth
  feed(1.0005);   // forces downward growth (resolution 5e-4)
  EXPECT_LE(algo->BottomMu(), 5e-4 / (1 - 0.2) + 1e-9);
  EXPECT_GE(algo->TopMu(), 999.0 * (1 - 0.2));
  EXPECT_GT(algo->NumRungs(), 20u);
}

TEST(AdaptiveStreamingDmTest, TracksOracleBoundsAlgorithmOnBlobs) {
  // Same stream through the bounds-free variant and the oracle-bounds
  // Algorithm 1: the adaptive version should land within a modest factor.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    BlobsOptions opt;
    opt.n = 1500;
    opt.seed = seed + 300;
    const Dataset ds = MakeBlobs(opt);
    const DistanceBounds b = ComputeDistanceBoundsExact(ds);
    StreamingOptions oracle_options;
    oracle_options.epsilon = 0.1;
    oracle_options.d_min = b.min;
    oracle_options.d_max = b.max;
    auto oracle =
        StreamingDm::Create(8, 2, MetricKind::kEuclidean, oracle_options);
    auto adaptive =
        AdaptiveStreamingDm::Create(8, 2, MetricKind::kEuclidean, 0.1);
    ASSERT_TRUE(oracle.ok());
    ASSERT_TRUE(adaptive.ok());
    for (const size_t row : StreamOrder(ds.size(), seed)) {
      oracle->Observe(ds.At(row));
      adaptive->Observe(ds.At(row));
    }
    const auto oracle_solution = oracle->Solve();
    const auto adaptive_solution = adaptive->Solve();
    ASSERT_TRUE(oracle_solution.ok());
    ASSERT_TRUE(adaptive_solution.ok());
    EXPECT_GE(adaptive_solution->diversity,
              0.5 * oracle_solution->diversity)
        << "seed " << seed;
  }
}

TEST(AdaptiveStreamingDmTest, GuaranteeOnTinyInstances) {
  // Against the exact optimum: the adaptive variant empirically clears the
  // same (1−ε)/2 bar on random tiny instances (its weakening only bites
  // when the optimum hides in a prefix the grown rungs never saw).
  int cleared = 0;
  int total = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    BlobsOptions opt;
    opt.n = 15;
    opt.seed = seed + 400;
    const Dataset ds = MakeBlobs(opt);
    const ExactSolution exact = ExactDiversityMaximization(ds, 4);
    if (exact.diversity <= 0.0) continue;
    auto algo =
        AdaptiveStreamingDm::Create(4, 2, MetricKind::kEuclidean, 0.1);
    ASSERT_TRUE(algo.ok());
    for (const size_t row : StreamOrder(ds.size(), seed)) {
      algo->Observe(ds.At(row));
    }
    const auto solution = algo->Solve();
    ASSERT_TRUE(solution.ok());
    ++total;
    if (solution->diversity >= (1.0 - 0.1) / 2.0 * exact.diversity - 1e-9) {
      ++cleared;
    }
  }
  EXPECT_EQ(cleared, total);
}

TEST(AdaptiveStreamingDmTest, DuplicateOnlyStreamNeverSolves) {
  auto algo = AdaptiveStreamingDm::Create(2, 1, MetricKind::kEuclidean, 0.1);
  ASSERT_TRUE(algo.ok());
  const std::vector<double> c{3.0};
  for (int64_t i = 0; i < 100; ++i) {
    algo->Observe(StreamPoint{i, 0, std::span<const double>(c)});
  }
  EXPECT_EQ(algo->NumRungs(), 0u);  // never saw a nonzero distance
  EXPECT_FALSE(algo->Solve().ok());
  EXPECT_EQ(algo->StoredElements(), 1u);  // just the held first point
}

TEST(AdaptiveStreamingDmTest, MaxRungsCapRespected) {
  auto algo = AdaptiveStreamingDm::Create(3, 1, MetricKind::kEuclidean, 0.5,
                                          /*max_rungs=*/8);
  ASSERT_TRUE(algo.ok());
  Rng rng(7);
  int64_t id = 0;
  for (int i = 0; i < 500; ++i) {
    // Distances across 12 orders of magnitude.
    const std::vector<double> c{std::pow(10.0, rng.NextDouble(-6, 6))};
    algo->Observe(StreamPoint{id++, 0, std::span<const double>(c)});
  }
  EXPECT_LE(algo->NumRungs(), 8u);
  EXPECT_TRUE(algo->Solve().ok());
}

TEST(AdaptiveStreamingDmTest, StorageStaysSublinear) {
  BlobsOptions opt;
  opt.n = 20000;
  opt.seed = 9;
  const Dataset ds = MakeBlobs(opt);
  auto algo = AdaptiveStreamingDm::Create(10, 2, MetricKind::kEuclidean, 0.1);
  ASSERT_TRUE(algo.ok());
  for (const size_t row : StreamOrder(ds.size(), 2)) {
    algo->Observe(ds.At(row));
  }
  EXPECT_LE(algo->StoredElements(), 10u * algo->NumRungs());
  EXPECT_LT(algo->StoredElements(), ds.size() / 20);
  EXPECT_EQ(algo->ObservedElements(), static_cast<int64_t>(ds.size()));
}

}  // namespace
}  // namespace fdm
