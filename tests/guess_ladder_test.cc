#include "core/guess_ladder.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fdm {
namespace {

TEST(GuessLadderTest, StartsAtDminGrowsGeometrically) {
  const auto ladder = GuessLadder::Create(1.0, 10.0, 0.5);
  ASSERT_TRUE(ladder.ok());
  EXPECT_DOUBLE_EQ(ladder->At(0), 1.0);
  EXPECT_DOUBLE_EQ(ladder->At(1), 2.0);
  EXPECT_DOUBLE_EQ(ladder->At(2), 4.0);
  EXPECT_DOUBLE_EQ(ladder->At(3), 8.0);
  // One rung at or above d_max is kept.
  EXPECT_DOUBLE_EQ(ladder->At(4), 16.0);
  EXPECT_EQ(ladder->size(), 5u);
}

TEST(GuessLadderTest, TopRungCoversDmax) {
  for (const double eps : {0.05, 0.1, 0.25}) {
    const auto ladder = GuessLadder::Create(0.37, 912.0, eps);
    ASSERT_TRUE(ladder.ok());
    EXPECT_GE(ladder->values().back(), 912.0);
    EXPECT_LT(ladder->values()[ladder->size() - 2], 912.0);
  }
}

TEST(GuessLadderTest, SizeMatchesTheory) {
  // |U| ≈ log(∆) / log(1/(1−ε)) + O(1) = O(log∆/ε).
  const double eps = 0.1;
  const auto ladder = GuessLadder::Create(1.0, 1000.0, eps);
  ASSERT_TRUE(ladder.ok());
  const double expected = std::log(1000.0) / std::log(1.0 / (1.0 - eps));
  EXPECT_NEAR(static_cast<double>(ladder->size()), expected, 2.0);
}

TEST(GuessLadderTest, SmallerEpsilonMeansMoreRungs) {
  const auto coarse = GuessLadder::Create(1.0, 100.0, 0.25);
  const auto fine = GuessLadder::Create(1.0, 100.0, 0.05);
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  EXPECT_GT(fine->size(), 3 * coarse->size());
}

TEST(GuessLadderTest, ConsecutiveRatioIsOneMinusEpsilon) {
  const double eps = 0.1;
  const auto ladder = GuessLadder::Create(2.0, 50.0, eps);
  ASSERT_TRUE(ladder.ok());
  for (size_t j = 0; j + 1 < ladder->size(); ++j) {
    EXPECT_NEAR(ladder->At(j) / ladder->At(j + 1), 1.0 - eps, 1e-12);
  }
}

TEST(GuessLadderTest, EveryInRangeValueHasSuccessor) {
  // Lemma 1 uses µ'' = µ'/(1−ε): for every rung except the top one the
  // successor must exist in the ladder.
  const auto ladder = GuessLadder::Create(1.0, 30.0, 0.2);
  ASSERT_TRUE(ladder.ok());
  for (size_t j = 0; j + 1 < ladder->size(); ++j) {
    const double successor = ladder->At(j) / 0.8;
    EXPECT_NEAR(ladder->At(j + 1), successor, 1e-9);
  }
}

TEST(GuessLadderTest, DegenerateEqualBounds) {
  const auto ladder = GuessLadder::Create(5.0, 5.0, 0.1);
  ASSERT_TRUE(ladder.ok());
  EXPECT_GE(ladder->size(), 1u);
  EXPECT_GE(ladder->values().back(), 5.0);
}

TEST(GuessLadderTest, RejectsBadEpsilon) {
  EXPECT_FALSE(GuessLadder::Create(1.0, 2.0, 0.0).ok());
  EXPECT_FALSE(GuessLadder::Create(1.0, 2.0, 1.0).ok());
  EXPECT_FALSE(GuessLadder::Create(1.0, 2.0, -0.5).ok());
  EXPECT_FALSE(GuessLadder::Create(1.0, 2.0, 2.0).ok());
}

TEST(GuessLadderTest, RejectsBadBounds) {
  EXPECT_FALSE(GuessLadder::Create(0.0, 2.0, 0.1).ok());
  EXPECT_FALSE(GuessLadder::Create(-1.0, 2.0, 0.1).ok());
  EXPECT_FALSE(GuessLadder::Create(3.0, 2.0, 0.1).ok());
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(GuessLadder::Create(1.0, inf, 0.1).ok());
  EXPECT_FALSE(GuessLadder::Create(inf, inf, 0.1).ok());
}

TEST(GuessLadderTest, RejectsAbsurdLadderSize) {
  // ∆ so large the ladder would explode; the library reports the misuse
  // instead of allocating gigabytes.
  EXPECT_FALSE(GuessLadder::Create(1e-300, 1e300, 1e-9).ok());
}

TEST(GuessLadderTest, AccessorsReflectInputs) {
  const auto ladder = GuessLadder::Create(2.0, 64.0, 0.5);
  ASSERT_TRUE(ladder.ok());
  EXPECT_DOUBLE_EQ(ladder->d_min(), 2.0);
  EXPECT_DOUBLE_EQ(ladder->d_max(), 64.0);
  EXPECT_DOUBLE_EQ(ladder->epsilon(), 0.5);
}

}  // namespace
}  // namespace fdm
