#include "data/normalize.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fdm {
namespace {

TEST(ColumnStatsTest, KnownMatrix) {
  // Two columns: {0,2,4} and {1,1,1}.
  std::vector<double> m{0, 1, 2, 1, 4, 1};
  const ColumnStats stats = ComputeColumnStats(m, 3, 2);
  EXPECT_DOUBLE_EQ(stats.mean[0], 2.0);
  EXPECT_DOUBLE_EQ(stats.mean[1], 1.0);
  EXPECT_NEAR(stats.stddev[0], std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.stddev[1], 1.0);  // constant column -> 1.0 sentinel
}

TEST(ZScoreTest, ProducesZeroMeanUnitVariance) {
  Rng rng(3);
  constexpr size_t kN = 500;
  constexpr size_t kDim = 4;
  std::vector<double> m(kN * kDim);
  for (auto& v : m) v = 10.0 + 3.0 * rng.NextGaussian();
  ZScoreNormalize(m, kN, kDim);
  const ColumnStats after = ComputeColumnStats(m, kN, kDim);
  for (size_t d = 0; d < kDim; ++d) {
    EXPECT_NEAR(after.mean[d], 0.0, 1e-9);
    EXPECT_NEAR(after.stddev[d], 1.0, 1e-9);
  }
}

TEST(ZScoreTest, ConstantColumnCentersOnly) {
  std::vector<double> m{5, 5, 5};  // one column, constant
  ZScoreNormalize(m, 3, 1);
  for (const double v : m) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ZScoreTest, PreservesColumnOrdering) {
  // z-scoring is monotone per column.
  std::vector<double> m{1, 10, 3, 20, 2, 30};
  ZScoreNormalize(m, 3, 2);
  EXPECT_LT(m[0], m[4]);  // 1 < 2 in column 0
  EXPECT_LT(m[4], m[2]);  // 2 < 3
  EXPECT_LT(m[1], m[3]);  // 10 < 20 in column 1
}

TEST(MinMaxTest, MapsToUnitInterval) {
  std::vector<double> m{-10, 0, 0, 5, 10, 10};  // columns {-10,0,10},{0,5,10}
  MinMaxNormalize(m, 3, 2);
  EXPECT_DOUBLE_EQ(m[0], 0.0);
  EXPECT_DOUBLE_EQ(m[2], 0.5);
  EXPECT_DOUBLE_EQ(m[4], 1.0);
  EXPECT_DOUBLE_EQ(m[1], 0.0);
  EXPECT_DOUBLE_EQ(m[3], 0.5);
  EXPECT_DOUBLE_EQ(m[5], 1.0);
}

TEST(MinMaxTest, ConstantColumnMapsToHalf) {
  std::vector<double> m{7, 7, 7};
  MinMaxNormalize(m, 3, 1);
  for (const double v : m) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(NormalizeTest, EmptyMatrixIsNoop) {
  std::vector<double> m;
  ZScoreNormalize(m, 0, 3);
  MinMaxNormalize(m, 0, 3);
  EXPECT_TRUE(m.empty());
}

}  // namespace
}  // namespace fdm
