// Compilation + smoke test for the umbrella header `fdm.h`: every public
// entry point must be reachable through the single include, and a small
// end-to-end pipeline must work. Also covers the harness's diversity
// standard-deviation reporting.

#include "fdm.h"

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace fdm {
namespace {

TEST(UmbrellaHeaderTest, EndToEndThroughSingleInclude) {
  BlobsOptions opt;
  opt.n = 400;
  opt.num_groups = 2;
  opt.seed = 71;
  const Dataset ds = MakeBlobs(opt);

  const auto constraint = EqualRepresentation(6, 2);
  ASSERT_TRUE(constraint.ok());
  const DistanceBounds bounds = ComputeDistanceBoundsExact(ds);
  StreamingOptions streaming;
  streaming.epsilon = 0.1;
  streaming.d_min = bounds.min;
  streaming.d_max = bounds.max;

  auto algo = Sfdm1::Create(constraint.value(), 2, ds.metric_kind(),
                            streaming);
  ASSERT_TRUE(algo.ok());
  for (size_t i = 0; i < ds.size(); ++i) algo->Observe(ds.At(i));
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(SatisfiesQuotas(solution->points, constraint->quotas));

  // Offline pieces are reachable too.
  EXPECT_TRUE(FairSwap(ds, constraint.value()).ok());
  EXPECT_TRUE(FairFlow(ds, constraint.value()).ok());
  EXPECT_EQ(GreedyGmm(ds, 6).size(), 6u);
  EXPECT_EQ(MaxSumGreedy(ds, 6).size(), 6u);
}

TEST(AggregateStddevTest, ZeroForDeterministicOfflineAlgorithm) {
  BlobsOptions opt;
  opt.n = 300;
  opt.num_groups = 2;
  opt.seed = 73;
  const Dataset ds = MakeBlobs(opt);
  RunConfig config;
  config.algorithm = AlgorithmKind::kFairFlow;
  config.constraint = EqualRepresentation(6, 2).value();
  config.bounds = BoundsForExperiments(ds);
  // FairFlow varies only via the GMM start index; with one run the spread
  // is definitionally zero.
  const AggregateResult one = RunRepeated(ds, config, 1);
  ASSERT_EQ(one.ok_runs, 1);
  EXPECT_DOUBLE_EQ(one.diversity_stddev, 0.0);
}

TEST(AggregateStddevTest, CapturesStreamingOrderSpread) {
  BlobsOptions opt;
  opt.n = 1200;
  opt.num_groups = 2;
  opt.seed = 79;
  const Dataset ds = MakeBlobs(opt);
  RunConfig config;
  config.algorithm = AlgorithmKind::kSfdm1;
  config.constraint = EqualRepresentation(8, 2).value();
  config.bounds = BoundsForExperiments(ds);
  const AggregateResult agg = RunRepeated(ds, config, 5);
  ASSERT_EQ(agg.ok_runs, 5);
  EXPECT_GE(agg.diversity_stddev, 0.0);
  // The spread must be small relative to the mean (order-robustness —
  // same property IntegrationTest checks via min/max ratio).
  EXPECT_LT(agg.diversity_stddev, agg.diversity);
}

}  // namespace
}  // namespace fdm
