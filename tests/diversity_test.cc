#include "core/diversity.h"

#include <limits>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/rng.h"

namespace fdm {
namespace {

PointBuffer MakeBuffer(const std::vector<std::pair<double, int32_t>>& pts) {
  PointBuffer buf(1, pts.size());
  int64_t id = 0;
  for (const auto& [x, g] : pts) {
    const std::vector<double> c{x};
    buf.Add(StreamPoint{id++, g, std::span<const double>(c)});
  }
  return buf;
}

TEST(MinPairwiseDistanceTest, BufferKnownValue) {
  const PointBuffer buf = MakeBuffer({{0.0, 0}, {3.0, 0}, {10.0, 0}});
  const Metric m(MetricKind::kEuclidean);
  EXPECT_DOUBLE_EQ(MinPairwiseDistance(buf, m), 3.0);
}

TEST(MinPairwiseDistanceTest, SingletonIsInfinite) {
  const PointBuffer buf = MakeBuffer({{1.0, 0}});
  const Metric m(MetricKind::kEuclidean);
  EXPECT_EQ(MinPairwiseDistance(buf, m),
            std::numeric_limits<double>::infinity());
}

TEST(MinPairwiseDistanceTest, DuplicatesGiveZero) {
  const PointBuffer buf = MakeBuffer({{2.0, 0}, {2.0, 0}, {5.0, 0}});
  const Metric m(MetricKind::kEuclidean);
  EXPECT_DOUBLE_EQ(MinPairwiseDistance(buf, m), 0.0);
}

TEST(MinPairwiseDistanceTest, DatasetIndicesOverload) {
  Dataset ds("line", 1, 1, MetricKind::kEuclidean);
  for (const double x : {0.0, 1.0, 4.0, 9.0}) {
    ds.Add(std::vector<double>{x}, 0);
  }
  const std::vector<size_t> idx{0, 2, 3};
  EXPECT_DOUBLE_EQ(MinPairwiseDistance(ds, idx), 4.0);
}

TEST(MinPairwiseDistanceTest, MonotoneNonIncreasingUnderInsertion) {
  // div(S ∪ {x}) <= div(S) — the property Lemma 1 relies on.
  Rng rng(23);
  BlobsOptions opt;
  opt.n = 30;
  opt.seed = 17;
  const Dataset ds = MakeBlobs(opt);
  std::vector<size_t> subset;
  double prev = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < 10; ++i) {
    subset.push_back(static_cast<size_t>(rng.NextBounded(ds.size())));
    const double now = MinPairwiseDistance(ds, subset);
    EXPECT_LE(now, prev + 1e-12);
    prev = now;
  }
}

TEST(SumPairwiseDistanceTest, KnownValue) {
  Dataset ds("line", 1, 1, MetricKind::kEuclidean);
  for (const double x : {0.0, 1.0, 3.0}) {
    ds.Add(std::vector<double>{x}, 0);
  }
  const std::vector<size_t> idx{0, 1, 2};
  // |0-1| + |0-3| + |1-3| = 1 + 3 + 2 = 6.
  EXPECT_DOUBLE_EQ(SumPairwiseDistance(ds, idx), 6.0);
}

TEST(SumPairwiseDistanceTest, EmptyAndSingletonAreZero) {
  Dataset ds("line", 1, 1, MetricKind::kEuclidean);
  ds.Add(std::vector<double>{1.0}, 0);
  EXPECT_DOUBLE_EQ(SumPairwiseDistance(ds, {}), 0.0);
  const std::vector<size_t> one{0};
  EXPECT_DOUBLE_EQ(SumPairwiseDistance(ds, one), 0.0);
}

TEST(GroupCountsTest, CountsPerGroup) {
  const PointBuffer buf =
      MakeBuffer({{0.0, 0}, {1.0, 1}, {2.0, 1}, {3.0, 2}});
  EXPECT_EQ(GroupCounts(buf, 3), (std::vector<int>{1, 2, 1}));
}

TEST(GroupCountsTest, EmptyBuffer) {
  PointBuffer buf(1, 0);
  EXPECT_EQ(GroupCounts(buf, 2), (std::vector<int>{0, 0}));
}

TEST(SatisfiesQuotasTest, ExactMatchRequired) {
  const PointBuffer buf = MakeBuffer({{0.0, 0}, {1.0, 1}, {2.0, 1}});
  const std::vector<int> good{1, 2};
  const std::vector<int> over{1, 1};
  const std::vector<int> under{1, 3};
  EXPECT_TRUE(SatisfiesQuotas(buf, good));
  EXPECT_FALSE(SatisfiesQuotas(buf, over));   // too many of group 1
  EXPECT_FALSE(SatisfiesQuotas(buf, under));  // too few of group 1
}

}  // namespace
}  // namespace fdm
