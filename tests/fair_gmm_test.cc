#include "baselines/fair_gmm.h"

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "data/synthetic.h"
#include "exact/brute_force.h"
#include "util/rng.h"

namespace fdm {
namespace {

FairnessConstraint Quotas(std::vector<int> q) {
  FairnessConstraint c;
  c.quotas = std::move(q);
  return c;
}

TEST(FairGmmTest, SolutionIsFair) {
  BlobsOptions opt;
  opt.n = 300;
  opt.num_groups = 2;
  opt.seed = 81;
  const Dataset ds = MakeBlobs(opt);
  const std::vector<int> quotas{4, 4};
  const auto solution = FairGmm(ds, Quotas(quotas));
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(solution->points.size(), 8u);
  EXPECT_TRUE(SatisfiesQuotas(solution->points, quotas));
}

TEST(FairGmmTest, ThreeGroups) {
  BlobsOptions opt;
  opt.n = 200;
  opt.num_groups = 3;
  opt.seed = 83;
  const Dataset ds = MakeBlobs(opt);
  const std::vector<int> quotas{2, 3, 1};
  const auto solution = FairGmm(ds, Quotas(quotas));
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(SatisfiesQuotas(solution->points, quotas));
}

TEST(FairGmmTest, RefusesHugeEnumerations) {
  // k = 30, m = 10: C(30,3)^10 combinations — must refuse, like the paper
  // excludes FairGMM beyond k > 10, m > 5.
  BlobsOptions opt;
  opt.n = 400;
  opt.num_groups = 10;
  opt.seed = 85;
  const Dataset ds = MakeBlobs(opt);
  std::vector<int> quotas(10, 3);
  EXPECT_EQ(FairGmm(ds, Quotas(quotas)).status().code(),
            StatusCode::kUnsupported);
}

TEST(FairGmmTest, RejectsInfeasible) {
  Dataset ds("tiny", 1, 2, MetricKind::kEuclidean);
  ds.Add(std::vector<double>{0.0}, 0);
  ds.Add(std::vector<double>{1.0}, 1);
  EXPECT_EQ(FairGmm(ds, Quotas({2, 1})).status().code(),
            StatusCode::kInfeasible);
}

TEST(FairGmmTest, BeatsOrMatchesOtherBaselinesOnTinyInstances) {
  // FairGMM enumerates fair subsets of strong per-group coresets; on tiny
  // instances it should be near-exact (the paper finds it best for small
  // k, m). Require >= 60% of OPT_f (its theory bound is 1/5, typical
  // performance far better).
  int wins = 0;
  int trials = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    BlobsOptions opt;
    opt.n = 14;
    opt.num_groups = 2;
    opt.seed = seed + 90;
    const Dataset ds = MakeBlobs(opt);
    const FairnessConstraint c = Quotas({2, 2});
    if (!c.ValidateAgainst(ds.GroupSizes()).ok()) continue;
    ++trials;
    const ExactSolution exact = ExactFairDiversityMaximization(ds, c);
    const auto solution = FairGmm(ds, c);
    ASSERT_TRUE(solution.ok());
    EXPECT_GE(solution->diversity, exact.diversity / 5.0 - 1e-9);
    if (solution->diversity >= 0.6 * exact.diversity) ++wins;
  }
  ASSERT_GT(trials, 0);
  EXPECT_GE(wins, trials - 1);  // near-exact on almost every instance
}

TEST(FairGmmTest, ExactWhenCoresetIsWholeDataset) {
  // If every group has <= k elements, the coreset is the whole group and
  // the enumeration is exhaustive -> the result equals OPT_f. Build groups
  // of size exactly k = 4 to force that case.
  Rng rng(107);
  for (int trial = 0; trial < 5; ++trial) {
    Dataset ds("exhaustive", 2, 2, MetricKind::kEuclidean);
    for (int i = 0; i < 8; ++i) {
      const std::vector<double> c{rng.NextDouble(0, 10),
                                  rng.NextDouble(0, 10)};
      ds.Add(c, static_cast<int32_t>(i % 2));
    }
    const FairnessConstraint c = Quotas({2, 2});
    const ExactSolution exact = ExactFairDiversityMaximization(ds, c);
    const auto solution = FairGmm(ds, c);
    ASSERT_TRUE(solution.ok());
    EXPECT_NEAR(solution->diversity, exact.diversity, 1e-9)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace fdm
