#include "data/csv.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fdm {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("fdm_csv_test_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CsvTest, RoundTripPreservesEverything) {
  BlobsOptions opt;
  opt.n = 200;
  opt.num_groups = 3;
  opt.seed = 8;
  const Dataset original = MakeBlobs(opt);
  ASSERT_TRUE(WriteDatasetCsv(original, path_).ok());

  auto loaded = ReadDatasetCsv(path_, MetricKind::kEuclidean, "reload");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Dataset& ds = loaded.value();
  ASSERT_EQ(ds.size(), original.size());
  ASSERT_EQ(ds.dim(), original.dim());
  EXPECT_EQ(ds.num_groups(), original.num_groups());
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds.GroupOf(i), original.GroupOf(i));
    for (size_t d = 0; d < ds.dim(); ++d) {
      EXPECT_DOUBLE_EQ(ds.Point(i)[d], original.Point(i)[d]);
    }
  }
}

TEST_F(CsvTest, ReadMissingFileFails) {
  auto r = ReadDatasetCsv("/nonexistent/nope.csv", MetricKind::kEuclidean);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, WriteToUnwritablePathFails) {
  Dataset ds("x", 1, 1, MetricKind::kEuclidean);
  ds.Add(std::vector<double>{1.0}, 0);
  EXPECT_FALSE(WriteDatasetCsv(ds, "/nonexistent/dir/out.csv").ok());
}

TEST_F(CsvTest, RejectsWrongArity) {
  std::ofstream out(path_);
  out << "group,f0,f1\n0,1.0\n";  // row missing a field
  out.close();
  auto r = ReadDatasetCsv(path_, MetricKind::kEuclidean);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, RejectsBadGroup) {
  std::ofstream out(path_);
  out << "group,f0\nx,1.0\n";
  out.close();
  EXPECT_FALSE(ReadDatasetCsv(path_, MetricKind::kEuclidean).ok());
}

TEST_F(CsvTest, RejectsBadFeature) {
  std::ofstream out(path_);
  out << "group,f0\n0,abc\n";
  out.close();
  EXPECT_FALSE(ReadDatasetCsv(path_, MetricKind::kEuclidean).ok());
}

TEST_F(CsvTest, RejectsEmptyGroupField) {
  // strtol performs "no conversion" on an empty field and would otherwise
  // silently yield group 0.
  std::ofstream out(path_);
  out << "group,f0\n,1.0\n";
  out.close();
  auto r = ReadDatasetCsv(path_, MetricKind::kEuclidean);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, RejectsEmptyFeatureField) {
  std::ofstream out(path_);
  out << "group,f0,f1\n0,1.0,\n";
  out.close();
  auto r = ReadDatasetCsv(path_, MetricKind::kEuclidean);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, RejectsTrailingGarbageAfterNumber) {
  std::ofstream out(path_);
  out << "group,f0\n0,1.5abc\n";
  out.close();
  EXPECT_FALSE(ReadDatasetCsv(path_, MetricKind::kEuclidean).ok());
}

TEST_F(CsvTest, RejectsOutOfRangeGroupId) {
  // Larger than any plausible dense group universe — and larger than what
  // a long can hold, in the second case.
  std::ofstream out(path_);
  out << "group,f0\n99999999,1.0\n";
  out.close();
  auto r = ReadDatasetCsv(path_, MetricKind::kEuclidean);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);

  std::ofstream overflow(path_);
  overflow << "group,f0\n99999999999999999999999999,1.0\n";
  overflow.close();
  EXPECT_FALSE(ReadDatasetCsv(path_, MetricKind::kEuclidean).ok());
}

TEST_F(CsvTest, RejectsNegativeGroupId) {
  std::ofstream out(path_);
  out << "group,f0\n-1,1.0\n";
  out.close();
  EXPECT_FALSE(ReadDatasetCsv(path_, MetricKind::kEuclidean).ok());
}

TEST_F(CsvTest, RejectsNonFiniteFeatures) {
  for (const char* bad : {"nan", "inf", "-inf", "1e999"}) {
    std::ofstream out(path_);
    out << "group,f0\n0," << bad << "\n";
    out.close();
    auto r = ReadDatasetCsv(path_, MetricKind::kEuclidean);
    EXPECT_FALSE(r.ok()) << "accepted feature '" << bad << "'";
  }
}

TEST_F(CsvTest, RejectsExtraColumns) {
  std::ofstream out(path_);
  out << "group,f0\n0,1.0,2.0\n";
  out.close();
  auto r = ReadDatasetCsv(path_, MetricKind::kEuclidean);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, SkipsBlankLines) {
  std::ofstream out(path_);
  out << "group,f0\n0,1.5\n\n1,2.5\n";
  out.close();
  auto r = ReadDatasetCsv(path_, MetricKind::kManhattan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(r->num_groups(), 2);
  EXPECT_EQ(r->metric_kind(), MetricKind::kManhattan);
}

TEST_F(CsvTest, PreservesFullDoublePrecision) {
  Dataset ds("prec", 1, 1, MetricKind::kEuclidean);
  ds.Add(std::vector<double>{0.1234567890123456789}, 0);
  ds.Add(std::vector<double>{1e-17}, 0);
  ASSERT_TRUE(WriteDatasetCsv(ds, path_).ok());
  auto r = ReadDatasetCsv(path_, MetricKind::kEuclidean);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Point(0)[0], ds.Point(0)[0]);
  EXPECT_DOUBLE_EQ(r->Point(1)[0], ds.Point(1)[0]);
}

}  // namespace
}  // namespace fdm
