#include "core/fairness.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace fdm {
namespace {

TEST(FairnessConstraintTest, ValidateAcceptsPositiveQuotas) {
  FairnessConstraint c;
  c.quotas = {3, 2, 5};
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_EQ(c.TotalK(), 10);
  EXPECT_EQ(c.num_groups(), 3);
}

TEST(FairnessConstraintTest, ValidateRejectsEmptyAndNonPositive) {
  FairnessConstraint empty;
  EXPECT_EQ(empty.Validate().code(), StatusCode::kInvalidArgument);
  FairnessConstraint zero;
  zero.quotas = {1, 0};
  EXPECT_FALSE(zero.Validate().ok());
  FairnessConstraint negative;
  negative.quotas = {-1, 2};
  EXPECT_FALSE(negative.Validate().ok());
}

TEST(FairnessConstraintTest, ValidateAgainstGroupSizes) {
  FairnessConstraint c;
  c.quotas = {2, 3};
  const std::vector<size_t> enough{5, 3};
  EXPECT_TRUE(c.ValidateAgainst(enough).ok());
  const std::vector<size_t> short_group{5, 2};
  EXPECT_EQ(c.ValidateAgainst(short_group).code(), StatusCode::kInfeasible);
  const std::vector<size_t> wrong_arity{5, 3, 1};
  EXPECT_EQ(c.ValidateAgainst(wrong_arity).code(),
            StatusCode::kInvalidArgument);
}

TEST(EqualRepresentationTest, DivisibleCase) {
  const auto c = EqualRepresentation(20, 4);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->quotas, (std::vector<int>{5, 5, 5, 5}));
}

TEST(EqualRepresentationTest, RemainderGoesToLeadingGroups) {
  const auto c = EqualRepresentation(20, 3);
  ASSERT_TRUE(c.ok());
  // Paper: ⌈k/m⌉ for some groups, ⌊k/m⌋ for the others, summing to k.
  EXPECT_EQ(c->quotas, (std::vector<int>{7, 7, 6}));
  EXPECT_EQ(c->TotalK(), 20);
}

TEST(EqualRepresentationTest, EveryGroupGetsAtLeastOne) {
  const auto c = EqualRepresentation(15, 14);
  ASSERT_TRUE(c.ok());
  for (const int q : c->quotas) EXPECT_GE(q, 1);
  EXPECT_EQ(c->TotalK(), 15);
}

TEST(EqualRepresentationTest, RejectsKSmallerThanM) {
  EXPECT_FALSE(EqualRepresentation(3, 5).ok());
  EXPECT_FALSE(EqualRepresentation(0, 1).ok());
  EXPECT_FALSE(EqualRepresentation(5, 0).ok());
}

TEST(EqualRepresentationTest, SweepTotalsAlwaysMatch) {
  for (int m = 1; m <= 20; ++m) {
    for (int k = m; k <= 60; ++k) {
      const auto c = EqualRepresentation(k, m);
      ASSERT_TRUE(c.ok()) << "k=" << k << " m=" << m;
      EXPECT_EQ(c->TotalK(), k);
      EXPECT_EQ(c->num_groups(), m);
      // Quotas differ by at most one.
      const auto [lo, hi] =
          std::minmax_element(c->quotas.begin(), c->quotas.end());
      EXPECT_LE(*hi - *lo, 1);
    }
  }
}

TEST(ProportionalRepresentationTest, MatchesProportionsOnBalancedData) {
  const std::vector<size_t> sizes{500, 500};
  const auto c = ProportionalRepresentation(10, sizes);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->quotas, (std::vector<int>{5, 5}));
}

TEST(ProportionalRepresentationTest, SkewedProportions) {
  // 67% / 33% (the Adult sex skew) with k = 20 -> 13/7 or 14/6 by rounding;
  // largest remainder gives 13/7.
  const std::vector<size_t> sizes{67, 33};
  const auto c = ProportionalRepresentation(20, sizes);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->TotalK(), 20);
  EXPECT_EQ(c->quotas[0], 13);
  EXPECT_EQ(c->quotas[1], 7);
}

TEST(ProportionalRepresentationTest, TinyGroupStillRepresented) {
  // A 1% group would round to zero; PR must still give it one slot
  // (the paper restricts experiments to >= 1 element per group).
  const std::vector<size_t> sizes{990, 10};
  const auto c = ProportionalRepresentation(10, sizes);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->quotas[1], 1);
  EXPECT_EQ(c->TotalK(), 10);
}

TEST(ProportionalRepresentationTest, SweepPreservesTotalAndPositivity) {
  const std::vector<std::vector<size_t>> size_sets{
      {855, 96, 31, 10, 8},       // Adult race skew
      {100, 100, 100},            // balanced
      {5000, 1, 1, 1},            // extreme skew
      {52, 48},
  };
  for (const auto& sizes : size_sets) {
    for (int k = static_cast<int>(sizes.size()); k <= 30; ++k) {
      const auto c = ProportionalRepresentation(k, sizes);
      ASSERT_TRUE(c.ok());
      EXPECT_EQ(c->TotalK(), k);
      for (const int q : c->quotas) EXPECT_GE(q, 1);
    }
  }
}

TEST(ProportionalRepresentationTest, LargerGroupNeverGetsFewerSlots) {
  const std::vector<size_t> sizes{800, 150, 50};
  const auto c = ProportionalRepresentation(20, sizes);
  ASSERT_TRUE(c.ok());
  EXPECT_GE(c->quotas[0], c->quotas[1]);
  EXPECT_GE(c->quotas[1], c->quotas[2]);
}

TEST(ProportionalRepresentationTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(ProportionalRepresentation(1, std::vector<size_t>{5, 5}).ok());
  EXPECT_FALSE(ProportionalRepresentation(5, std::vector<size_t>{}).ok());
  EXPECT_FALSE(
      ProportionalRepresentation(2, std::vector<size_t>{0, 0}).ok());
}

}  // namespace
}  // namespace fdm
