// The SessionStats coverage gap closed by the stats footer: cumulative
// observed/kept counts, batch counts, and snapshot/restore timings must
// survive snapshot + reopen, LRU spill, and crash recovery with a WAL
// tail — the footer persists the counters and replay adds back the tail's
// mutations, so the recovered numbers are exact, not approximate. These
// counters are plain session state (not registry metrics), so the suite
// asserts identically under FDM_NO_METRICS.

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "service/durable_session.h"
#include "service/session_manager.h"
#include "util/binary_io.h"

namespace fdm {
namespace {

class SessionCountersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fdm_session_counters_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

Dataset TestData(size_t n = 120) {
  BlobsOptions opt;
  opt.n = n;
  opt.num_groups = 2;
  opt.seed = 77;
  return MakeBlobs(opt);
}

std::string SpecFor(const Dataset& ds) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  return "algo=sfdm2 dim=" + std::to_string(ds.dim()) +
         " quotas=2,2 dmin=" + std::to_string(b.min) +
         " dmax=" + std::to_string(b.max);
}

Status FeedBatched(DurableSession& session, const Dataset& ds, size_t begin,
                   size_t end, size_t batch_size = 32) {
  std::vector<StreamPoint> batch;
  for (size_t i = begin; i < end; ++i) {
    batch.push_back(ds.At(i));
    if (batch.size() == batch_size || i + 1 == end) {
      if (Status s = session.ObserveBatch(batch); !s.ok()) return s;
      batch.clear();
    }
  }
  return Status::Ok();
}

TEST_F(SessionCountersTest, CountersAccumulateAndPersistAcrossReopen) {
  const Dataset ds = TestData();
  SessionIngestCounters live;
  {
    auto session = DurableSession::Create(dir_, SpecFor(ds));
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    ASSERT_TRUE(FeedBatched(*session, ds, 0, ds.size()).ok());
    live = session->IngestCounters();
    EXPECT_GT(live.kept_total, 0);
    EXPECT_EQ((static_cast<int64_t>(ds.size()) + 31) / 32,
              live.ingest_batches);
    EXPECT_EQ(0, live.snapshots_taken);
    EXPECT_EQ(0, live.restores);
    ASSERT_TRUE(session->TakeSnapshot().ok());
    live = session->IngestCounters();
    EXPECT_EQ(1, live.snapshots_taken);
    EXPECT_GT(live.snapshot_write_ms_total, 0.0);
  }
  // Reopen: the footer restores the counters; the WAL tail is empty (the
  // snapshot covered everything) so replay adds nothing, and the reopen
  // itself counts as one restore.
  auto reopened = DurableSession::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const SessionIngestCounters& recovered = reopened->IngestCounters();
  EXPECT_EQ(live.kept_total, recovered.kept_total);
  EXPECT_EQ(live.ingest_batches, recovered.ingest_batches);
  EXPECT_EQ(live.snapshots_taken, recovered.snapshots_taken);
  EXPECT_EQ(1, recovered.restores);
  EXPECT_EQ(0, recovered.replayed_records);
  // The persisted write-time excludes the carrying snapshot's final file
  // write, so it is a lower bound on the live value, never more.
  EXPECT_LE(recovered.snapshot_write_ms_total, live.snapshot_write_ms_total);
}

TEST_F(SessionCountersTest, CrashRecoveryWithWalTailKeepsKeptExact) {
  const Dataset ds = TestData();
  const size_t mid = ds.size() / 2;
  SessionIngestCounters before;
  {
    auto session = DurableSession::Create(dir_, SpecFor(ds));
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(FeedBatched(*session, ds, 0, mid).ok());
    ASSERT_TRUE(session->TakeSnapshot().ok());
    // Tail past the snapshot: these mutations exist only in the WAL.
    ASSERT_TRUE(FeedBatched(*session, ds, mid, ds.size()).ok());
    ASSERT_TRUE(session->Sync().ok());
    before = session->IngestCounters();
    // "Crash": drop the object without another snapshot.
  }
  auto recovered = DurableSession::Open(dir_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const SessionIngestCounters& after = recovered->IngestCounters();
  // kept = footer value (pre-snapshot) + the tail's replayed mutations —
  // exactly the pre-crash total, because replay is decision-identical.
  EXPECT_EQ(before.kept_total, after.kept_total);
  EXPECT_EQ(1, after.restores);
  EXPECT_EQ(static_cast<int64_t>(ds.size() - mid), after.replayed_records);
  // Batch count restores to the footer value: the tail batches were never
  // snapshotted, and replay is not client ingest.
  EXPECT_LE(after.ingest_batches, before.ingest_batches);
}

TEST_F(SessionCountersTest, DoubleCrashStaysExact) {
  const Dataset ds = TestData();
  const size_t mid = ds.size() / 2;
  int64_t expected_kept = 0;
  {
    auto session = DurableSession::Create(dir_, SpecFor(ds));
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(FeedBatched(*session, ds, 0, mid).ok());
    ASSERT_TRUE(session->TakeSnapshot().ok());
    ASSERT_TRUE(FeedBatched(*session, ds, mid, ds.size()).ok());
    ASSERT_TRUE(session->Sync().ok());
    expected_kept = session->IngestCounters().kept_total;
  }
  {
    // First recovery replays the tail, snapshots (footer now carries the
    // replay-adjusted counters), then crashes again.
    auto session = DurableSession::Open(dir_);
    ASSERT_TRUE(session.ok());
    EXPECT_EQ(expected_kept, session->IngestCounters().kept_total);
    ASSERT_TRUE(session->TakeSnapshot().ok());
  }
  auto session = DurableSession::Open(dir_);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(expected_kept, session->IngestCounters().kept_total);
  EXPECT_EQ(2, session->IngestCounters().restores);
}

TEST_F(SessionCountersTest, PreFooterSnapshotsLoadAsZeros) {
  // Back-compat: a snapshot written without the stats footer (an older
  // generation's format) must load leniently — counters come back as
  // zeros plus the restore bookkeeping, never a parse failure, and the
  // sink state is untouched. Simulated by stripping the footer from a
  // real snapshot file and re-framing it with a valid checksum.
  const Dataset ds = TestData(40);
  int64_t kept_live = 0;
  {
    auto session = DurableSession::Create(dir_, SpecFor(ds));
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(FeedBatched(*session, ds, 0, ds.size()).ok());
    kept_live = session->IngestCounters().kept_total;
    ASSERT_TRUE(session->TakeSnapshot().ok());
  }
  std::string snap_path;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/snap")) {
    snap_path = entry.path().string();
  }
  ASSERT_FALSE(snap_path.empty());
  auto framed = ReadFileToString(snap_path);
  ASSERT_TRUE(framed.ok());
  // Frame layout: magic(8) + version u32 + payload-size u64 + payload +
  // FNV-1a u64. Cut the payload just before the footer tag's u64 length
  // prefix, then re-frame the shorter payload.
  constexpr size_t kHeader = 8 + 4 + 8;
  const size_t tag_pos = framed->find("fdm.session.stats");
  ASSERT_NE(std::string::npos, tag_pos);
  const std::string payload =
      framed->substr(kHeader, tag_pos - sizeof(uint64_t) - kHeader);
  std::string stripped = framed->substr(0, 8 + 4);
  const uint64_t payload_size = payload.size();
  stripped.append(reinterpret_cast<const char*>(&payload_size),
                  sizeof(payload_size));
  stripped += payload;
  const uint64_t checksum = Fnv1a64(payload.data(), payload.size());
  stripped.append(reinterpret_cast<const char*>(&checksum),
                  sizeof(checksum));
  {
    std::ofstream out(snap_path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open());
    out << stripped;
  }

  auto recovered = DurableSession::Open(dir_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // The cumulative counters predate the footer: zeros, plus this restore.
  EXPECT_EQ(0, recovered->IngestCounters().kept_total);
  EXPECT_EQ(0, recovered->IngestCounters().ingest_batches);
  EXPECT_EQ(1, recovered->IngestCounters().restores);
  // The sink itself is intact — only the session-layer counters are gone.
  EXPECT_EQ(static_cast<int64_t>(ds.size()),
            recovered->ObservedElements());
  EXPECT_GT(kept_live, 0);
}

TEST_F(SessionCountersTest, StatsSurviveLruSpill) {
  const Dataset ds = TestData();
  SessionManagerOptions options;
  options.root_dir = dir_;
  options.max_resident = 1;  // touching any other session spills this one
  auto manager = SessionManager::Create(options);
  ASSERT_TRUE(manager.ok());
  const std::string spec = SpecFor(ds);
  ASSERT_TRUE((*manager)->CreateSession("a", spec).ok());
  std::vector<StreamPoint> batch;
  for (size_t i = 0; i < ds.size(); ++i) batch.push_back(ds.At(i));
  ASSERT_TRUE((*manager)->ObserveBatch("a", batch).ok());
  auto before = (*manager)->Stats("a");
  ASSERT_TRUE(before.ok());
  EXPECT_GT(before->kept, 0);
  EXPECT_EQ(1, before->ingest_batches);

  // Touch a second session: "a" is spilled (snapshot + eviction), then
  // recovered on the next Stats touch. The counters must come back.
  ASSERT_TRUE((*manager)->CreateSession("b", spec).ok());
  ASSERT_TRUE((*manager)->Observe("b", ds.At(0)).ok());
  auto after = (*manager)->Stats("a");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->kept, after->kept);
  EXPECT_EQ(before->ingest_batches, after->ingest_batches);
  EXPECT_GE(after->restores, 1);
  EXPECT_GE(after->snapshots_taken, 1);  // the spill's snapshot
}

}  // namespace
}  // namespace fdm
