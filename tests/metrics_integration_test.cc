// The METRICS plane end to end: driving the real product paths — batched
// ingest, cached/cold solves, WAL appends, snapshots, crash recovery, and
// a fault-injected replica run — must move the corresponding registry
// series. Registry state is process-global with no reset, so every assert
// is a delta around the driven operation. The suite compiles under
// FDM_NO_METRICS too (the registry API is stubbed); the registry asserts
// are skipped there.

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "obs/metrics.h"
#include "replica/replica_session.h"
#include "replica/replication_source.h"
#include "service/durable_session.h"

namespace fdm {
namespace {

class MetricsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kMetricsEnabled) GTEST_SKIP() << "FDM_NO_METRICS build";
    dir_ = ::testing::TempDir() + "/fdm_metrics_integration_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

Dataset TestData(size_t n = 150, uint64_t seed = 31) {
  BlobsOptions opt;
  opt.n = n;
  opt.num_groups = 2;
  opt.seed = seed;
  return MakeBlobs(opt);
}

std::string SpecFor(const Dataset& ds) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  return "algo=sfdm2 dim=" + std::to_string(ds.dim()) +
         " quotas=2,2 dmin=" + std::to_string(b.min) +
         " dmax=" + std::to_string(b.max);
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name, "").Value();
}

uint64_t HistCount(const char* name) {
  return obs::MetricsRegistry::Global().GetHistogram(name, "").Snapshot().count;
}

Status FeedBatched(DurableSession& session, const Dataset& ds, size_t begin,
                   size_t end) {
  std::vector<StreamPoint> batch;
  for (size_t i = begin; i < end; ++i) {
    batch.push_back(ds.At(i));
    if (batch.size() == 64 || i + 1 == end) {
      if (Status s = session.ObserveBatch(batch); !s.ok()) return s;
      batch.clear();
    }
  }
  return Status::Ok();
}

TEST_F(MetricsIntegrationTest, IngestSolveWalAndSnapshotSeriesMove) {
  const Dataset ds = TestData();
  const uint64_t observed0 = CounterValue("fdm_ingest_points_observed_total");
  const uint64_t kept0 = CounterValue("fdm_ingest_points_kept_total");
  const uint64_t wal_records0 = CounterValue("fdm_wal_append_records_total");
  const uint64_t wal_bytes0 = CounterValue("fdm_wal_append_bytes_total");
  const uint64_t batches0 = HistCount("fdm_ingest_batch_points");
  const uint64_t cold0 = HistCount("fdm_solve_cold_ns");
  const uint64_t cached0 = HistCount("fdm_solve_cached_ns");
  const uint64_t hits0 = CounterValue("fdm_solve_hits_total");
  const uint64_t misses0 = CounterValue("fdm_solve_misses_total");
  const uint64_t snaps0 = HistCount("fdm_snapshot_write_ns");
  const uint64_t snap_bytes0 = CounterValue("fdm_snapshot_bytes_total");

  auto session = DurableSession::Create(dir_, SpecFor(ds));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_TRUE(FeedBatched(*session, ds, 0, ds.size()).ok());
  ASSERT_TRUE(session->Solve().ok());  // cold: post-processing runs
  ASSERT_TRUE(session->Solve().ok());  // cached: version unchanged
  ASSERT_TRUE(session->TakeSnapshot().ok());

  EXPECT_EQ(observed0 + ds.size(),
            CounterValue("fdm_ingest_points_observed_total"));
  EXPECT_GT(CounterValue("fdm_ingest_points_kept_total"), kept0);
  EXPECT_EQ(wal_records0 + ds.size(),
            CounterValue("fdm_wal_append_records_total"));
  EXPECT_GT(CounterValue("fdm_wal_append_bytes_total"), wal_bytes0);
  EXPECT_GT(HistCount("fdm_ingest_batch_points"), batches0);
  EXPECT_EQ(cold0 + 1, HistCount("fdm_solve_cold_ns"));
  EXPECT_EQ(cached0 + 1, HistCount("fdm_solve_cached_ns"));
  EXPECT_EQ(hits0 + 1, CounterValue("fdm_solve_hits_total"));
  EXPECT_EQ(misses0 + 1, CounterValue("fdm_solve_misses_total"));
  EXPECT_EQ(snaps0 + 1, HistCount("fdm_snapshot_write_ns"));
  EXPECT_GT(CounterValue("fdm_snapshot_bytes_total"), snap_bytes0);
}

TEST_F(MetricsIntegrationTest, CrashRecoverySeriesMove) {
  const Dataset ds = TestData();
  {
    auto session = DurableSession::Create(dir_, SpecFor(ds));
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(FeedBatched(*session, ds, 0, ds.size() / 2).ok());
    ASSERT_TRUE(session->TakeSnapshot().ok());
    ASSERT_TRUE(FeedBatched(*session, ds, ds.size() / 2, ds.size()).ok());
    ASSERT_TRUE(session->Sync().ok());
  }
  const uint64_t restores0 = CounterValue("fdm_session_restores_total");
  const uint64_t restore_ns0 = HistCount("fdm_session_restore_ns");
  const uint64_t replayed0 = CounterValue("fdm_wal_replay_records_total");
  const uint64_t replays0 = HistCount("fdm_wal_replay_ns");

  auto recovered = DurableSession::Open(dir_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  EXPECT_EQ(restores0 + 1, CounterValue("fdm_session_restores_total"));
  EXPECT_EQ(restore_ns0 + 1, HistCount("fdm_session_restore_ns"));
  EXPECT_EQ(replayed0 + (ds.size() - ds.size() / 2),
            CounterValue("fdm_wal_replay_records_total"));
  EXPECT_EQ(replays0 + 1, HistCount("fdm_wal_replay_ns"));
}

TEST_F(MetricsIntegrationTest, ReplicaSeriesMoveThroughCatchUp) {
  const Dataset ds = TestData();
  DurableSessionOptions options;
  options.wal.segment_bytes = 1024;  // plenty of segments to fetch
  auto primary = DurableSession::Create(dir_, SpecFor(ds), options);
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE(FeedBatched(*primary, ds, 0, ds.size() / 2).ok());
  ASSERT_TRUE(primary->TakeSnapshot().ok());
  ASSERT_TRUE(primary->Sync().ok());

  const uint64_t bootstraps0 = CounterValue("fdm_replica_bootstraps_total");
  const uint64_t snaps_loaded0 =
      CounterValue("fdm_replica_snapshots_loaded_total");
  const uint64_t fetch_bytes0 = CounterValue("fdm_replica_fetch_bytes_total");
  const uint64_t applied0 = CounterValue("fdm_replica_apply_records_total");
  const uint64_t segments0 = CounterValue("fdm_replica_segments_fetched_total");
  const uint64_t polls0 = HistCount("fdm_replica_poll_ns");
  const uint64_t lags0 = HistCount("fdm_replica_lag");

  auto follower = ReplicaSession::Bootstrap(
      std::make_shared<DirReplicationSource>(dir_));
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();
  EXPECT_EQ(bootstraps0 + 1, CounterValue("fdm_replica_bootstraps_total"));
  EXPECT_GT(CounterValue("fdm_replica_snapshots_loaded_total"), snaps_loaded0);
  EXPECT_GT(CounterValue("fdm_replica_fetch_bytes_total"), fetch_bytes0);

  // Grow the primary past the follower, then poll: records apply, the
  // poll latency histogram gets a sample, and the lag histogram records
  // the post-poll distance.
  ASSERT_TRUE(FeedBatched(*primary, ds, ds.size() / 2, ds.size()).ok());
  ASSERT_TRUE(primary->Sync().ok());
  auto applied = follower->Poll();
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_GT(*applied, 0);

  EXPECT_EQ(applied0 + static_cast<uint64_t>(*applied),
            CounterValue("fdm_replica_apply_records_total"));
  EXPECT_GT(CounterValue("fdm_replica_segments_fetched_total"), segments0);
  EXPECT_GT(HistCount("fdm_replica_poll_ns"), polls0);
  EXPECT_GT(HistCount("fdm_replica_lag"), lags0);
}

TEST_F(MetricsIntegrationTest, DivergenceRebuildSeriesMoves) {
  // The power-loss scenario from the replica suite: history rewritten
  // under the same sequence numbers forces the follower to detect the
  // version mismatch and rebuild — and the registry must show it.
  const Dataset ds = TestData(80, 47);
  const std::string spec = SpecFor(ds);
  {
    auto primary = DurableSession::Create(dir_, spec);
    ASSERT_TRUE(primary.ok());
    ASSERT_TRUE(FeedBatched(*primary, ds, 0, ds.size()).ok());
    ASSERT_TRUE(primary->Sync().ok());
  }
  auto follower = ReplicaSession::Bootstrap(
      std::make_shared<DirReplicationSource>(dir_));
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();

  std::filesystem::remove_all(dir_);
  auto rewritten = DurableSession::Create(dir_, spec);
  ASSERT_TRUE(rewritten.ok());
  const std::vector<double> constant = {1.0, 1.0};
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE(
        rewritten
            ->Observe(StreamPoint{static_cast<int64_t>(i), 0, constant})
            .ok());
  }
  ASSERT_TRUE(rewritten->Sync().ok());

  const uint64_t diverged0 =
      CounterValue("fdm_replica_divergence_rebuilds_total");
  auto polled = follower->Poll();
  ASSERT_TRUE(polled.ok()) << polled.status().ToString();
  EXPECT_GT(CounterValue("fdm_replica_divergence_rebuilds_total"), diverged0);
}

TEST_F(MetricsIntegrationTest, KernelScanCountersAndTargetInfoPublish) {
  const Dataset ds = TestData();
  const uint64_t scans0 = CounterValue("fdm_kernel_many_scans_total") +
                          CounterValue("fdm_kernel_dists_scans_total") +
                          CounterValue("fdm_kernel_min_scans_total");
  auto session = DurableSession::Create(dir_, SpecFor(ds));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(FeedBatched(*session, ds, 0, ds.size()).ok());
  ASSERT_TRUE(session->Solve().ok());
  const uint64_t scans1 = CounterValue("fdm_kernel_many_scans_total") +
                          CounterValue("fdm_kernel_dists_scans_total") +
                          CounterValue("fdm_kernel_min_scans_total");
  EXPECT_GT(scans1, scans0);
  // The dispatch target publishes itself as an info series on first use.
  const std::string prom = obs::MetricsRegistry::Global().RenderPrometheus();
  EXPECT_NE(std::string::npos, prom.find("fdm_kernel_target{value=\""));
}

}  // namespace
}  // namespace fdm
