#include "util/status.h"

#include <gtest/gtest.h>

namespace fdm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("k must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "k must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kInfeasible), "Infeasible");
  EXPECT_EQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnsupported), "Unsupported");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status::Ok());
  EXPECT_EQ(Status::Infeasible("a"), Status::Infeasible("a"));
  EXPECT_FALSE(Status::Infeasible("a") == Status::Infeasible("b"));
  EXPECT_FALSE(Status::Infeasible("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Infeasible("no way"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInfeasible);
  EXPECT_EQ(r.status().message(), "no way");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MutableValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r.value().push_back(3);
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace fdm
