// Cross-target equivalence of the *offline* Solve-path code: every offline
// baseline, the exact enumerators, and the shared offline primitives
// (GreedyGmm, threshold clustering, pairwise diversity) now route their
// distance loops through the dispatched kernel subsystem, and the routing
// contract is bit-identical selection under every target reachable on the
// build machine (scalar always; AVX2/AVX-512/NEON when the CPU has them —
// the same sweep FDM_KERNEL forces externally in CI). The streaming-sink
// counterpart of this test lives in incremental_solve_test.cc.

#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/fair_flow.h"
#include "baselines/fair_gmm.h"
#include "baselines/fair_swap.h"
#include "baselines/max_sum_greedy.h"
#include "core/clustering.h"
#include "core/diversity.h"
#include "core/gmm.h"
#include "data/dataset.h"
#include "exact/brute_force.h"
#include "geo/simd/kernel_dispatch.h"
#include "util/rng.h"

namespace fdm {
namespace {

constexpr MetricKind kAllKinds[] = {MetricKind::kEuclidean,
                                    MetricKind::kManhattan,
                                    MetricKind::kAngular};

/// Random two-group dataset under the requested metric (MakeBlobs is
/// Euclidean-only, and the angular/Manhattan routings deserve the same
/// coverage).
Dataset RandomDataset(MetricKind kind, size_t n, size_t dim, uint64_t seed) {
  Dataset ds("offline-equivalence", dim, 2, kind);
  ds.Reserve(n);
  Rng rng(seed);
  std::vector<double> coords(dim);
  for (size_t i = 0; i < n; ++i) {
    for (double& c : coords) c = rng.NextDouble(-5.0, 5.0);
    ds.Add(coords, static_cast<int32_t>(i % 2));
  }
  return ds;
}

/// Runs `fn` once per reachable dispatch target; asserts every run's
/// result is bit-identical to the first (scalar) run's.
template <typename Fn>
void ExpectSameAcrossTargets(Fn&& fn, std::string_view what) {
  using ResultT = decltype(fn());
  bool have_reference = false;
  ResultT reference{};
  for (const std::string_view target : simd::AvailableKernelTargets()) {
    ASSERT_TRUE(simd::internal::ForceKernelTargetForTest(target));
    const ResultT got = fn();
    if (!have_reference) {
      reference = got;
      have_reference = true;
    } else {
      EXPECT_EQ(reference, got) << what << " diverges under " << target;
    }
  }
  ASSERT_TRUE(simd::internal::ForceKernelTargetForTest(""));
}

/// Ids + bit-pattern diversity of a Result<Solution>, comparable with ==.
struct SolutionDigest {
  bool ok = false;
  int status_code = 0;
  std::vector<int64_t> ids;
  double diversity = 0.0;
  bool operator==(const SolutionDigest&) const = default;
};

SolutionDigest Digest(const Result<Solution>& r) {
  SolutionDigest d;
  d.ok = r.ok();
  if (!r.ok()) {
    d.status_code = static_cast<int>(r.status().code());
    return d;
  }
  d.ids = r->Ids();
  d.diversity = r->diversity;
  return d;
}

TEST(OfflineKernelEquivalenceTest, GreedyGmmSelectionOrder) {
  for (const MetricKind kind : kAllKinds) {
    const Dataset ds = RandomDataset(kind, 60, 7, 11);
    ExpectSameAcrossTargets([&] { return GreedyGmm(ds, 12); },
                            MetricKindName(kind));
    // Per-group universes with a warm start — the baselines' usage.
    const std::vector<size_t> rows = RowsOfGroup(ds, 0);
    const std::vector<size_t> warm = {rows[0], rows[1]};
    ExpectSameAcrossTargets(
        [&] { return GreedyGmm(ds, rows, 8, warm, /*start_index=*/2); },
        MetricKindName(kind));
  }
}

TEST(OfflineKernelEquivalenceTest, ThresholdClusterLabels) {
  for (const MetricKind kind : kAllKinds) {
    const Dataset ds = RandomDataset(kind, 40, 5, 22);
    const Metric metric(kind);
    PointBuffer points(ds.dim(), ds.size());
    for (size_t i = 0; i < ds.size(); ++i) points.Add(ds.At(i));
    const DistanceBounds bounds = ComputeDistanceBoundsExact(ds);
    for (const double threshold :
         {bounds.min * 1.5, (bounds.min + bounds.max) / 2,
          bounds.max * 0.9}) {
      ExpectSameAcrossTargets(
          [&] { return ThresholdClusters(points, metric, threshold); },
          MetricKindName(kind));
    }
  }
}

TEST(OfflineKernelEquivalenceTest, PairwiseDiversityPrimitives) {
  for (const MetricKind kind : kAllKinds) {
    const Dataset ds = RandomDataset(kind, 30, 6, 33);
    const Metric metric(kind);
    PointBuffer points(ds.dim(), ds.size());
    std::vector<size_t> indices;
    for (size_t i = 0; i < ds.size(); ++i) {
      points.Add(ds.At(i));
      if (i % 2 == 0) indices.push_back(i);
    }
    ExpectSameAcrossTargets([&] { return MinPairwiseDistance(points, metric); },
                            MetricKindName(kind));
    ExpectSameAcrossTargets(
        [&] { return MinPairwiseDistance(ds, indices); },
        MetricKindName(kind));
    ExpectSameAcrossTargets(
        [&] { return SumPairwiseDistance(ds, indices); },
        MetricKindName(kind));
  }
}

TEST(OfflineKernelEquivalenceTest, DistanceBounds) {
  struct BoundsDigest {
    double min = 0.0;
    double max = 0.0;
    bool operator==(const BoundsDigest&) const = default;
  };
  for (const MetricKind kind : kAllKinds) {
    // Include duplicate rows so the zero-distance exclusion is exercised
    // through the kernel routing too.
    Dataset ds = RandomDataset(kind, 50, 6, 66);
    ds.Add(std::vector<double>(ds.Point(3).begin(), ds.Point(3).end()), 0);
    ds.Add(std::vector<double>(ds.Point(9).begin(), ds.Point(9).end()), 1);

    // The kernel-routed scan must reproduce the scalar double loop bit for
    // bit — the pre-routing definition of these bounds.
    const Metric metric = ds.metric();
    BoundsDigest scalar{std::numeric_limits<double>::infinity(), 0.0};
    for (size_t i = 0; i < ds.size(); ++i) {
      for (size_t j = i + 1; j < ds.size(); ++j) {
        const double d = metric(ds.Point(i), ds.Point(j));
        if (d > 0.0 && d < scalar.min) scalar.min = d;
        if (d > scalar.max) scalar.max = d;
      }
    }
    const DistanceBounds exact = ComputeDistanceBoundsExact(ds);
    EXPECT_EQ(scalar.min, exact.min) << MetricKindName(kind);
    EXPECT_EQ(scalar.max, exact.max) << MetricKindName(kind);

    ExpectSameAcrossTargets(
        [&] {
          const DistanceBounds b = ComputeDistanceBoundsExact(ds);
          return BoundsDigest{b.min, b.max};
        },
        MetricKindName(kind));
    // The sampled path only engages past its small-n cutoff (2048).
    const Dataset big = RandomDataset(kind, 2100, 4, 77);
    ExpectSameAcrossTargets(
        [&] {
          const DistanceBounds b =
              EstimateDistanceBounds(big, /*sample_size=*/64, /*seed=*/7);
          return BoundsDigest{b.min, b.max};
        },
        MetricKindName(kind));
  }
}

TEST(OfflineKernelEquivalenceTest, OfflineBaselines) {
  FairnessConstraint constraint;
  constraint.quotas = {3, 2};
  for (const MetricKind kind : kAllKinds) {
    const Dataset ds = RandomDataset(kind, 48, 5, 44);
    ExpectSameAcrossTargets([&] { return MaxSumGreedy(ds, 8); },
                            MetricKindName(kind));
    ExpectSameAcrossTargets(
        [&] { return Digest(FairSwap(ds, constraint, /*start_index=*/1)); },
        MetricKindName(kind));
    ExpectSameAcrossTargets(
        [&] { return Digest(FairFlow(ds, constraint)); },
        MetricKindName(kind));
    ExpectSameAcrossTargets(
        [&] { return Digest(FairGmm(ds, constraint)); },
        MetricKindName(kind));
  }
}

TEST(OfflineKernelEquivalenceTest, ExactEnumerators) {
  FairnessConstraint constraint;
  constraint.quotas = {2, 2};
  struct ExactDigest {
    std::vector<size_t> indices;
    double diversity = 0.0;
    bool operator==(const ExactDigest&) const = default;
  };
  for (const MetricKind kind : kAllKinds) {
    // Tiny instance: the enumerators are O(C(n,k)) with pruning, and the
    // pruning decisions themselves are part of the equivalence contract
    // (a different prune order could pick a different tie).
    const Dataset ds = RandomDataset(kind, 14, 4, 55);
    ExpectSameAcrossTargets(
        [&] {
          const ExactSolution s = ExactDiversityMaximization(ds, 4);
          return ExactDigest{s.indices, s.diversity};
        },
        MetricKindName(kind));
    ExpectSameAcrossTargets(
        [&] {
          const ExactSolution s =
              ExactFairDiversityMaximization(ds, constraint);
          return ExactDigest{s.indices, s.diversity};
        },
        MetricKindName(kind));
  }
}

}  // namespace
}  // namespace fdm
