// The sharded metrics registry: counters folded across threads are exact,
// histogram scrapes merge shards deterministically, the slow-op journal
// captures context above the threshold and wraps its ring, and both
// renderers produce well-formed output. Registry state is process-global
// with no reset, so every test uses its own metric names and delta
// assertions. The whole suite also builds (and the registry asserts are
// skipped) under FDM_NO_METRICS, where the API is stubbed out.

#include "obs/metrics.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fdm::obs {
namespace {

TEST(ObsMetricsTest, CounterFoldsThreadShardsExactly) {
  if (!kMetricsEnabled) GTEST_SKIP() << "FDM_NO_METRICS build";
  Counter& counter = MetricsRegistry::Global().GetCounter(
      "fdm_test_counter_fold_total", "test");
  const uint64_t before = counter.Value();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  // After the joins every shard's final store is visible; the fold must be
  // exact, not approximate.
  EXPECT_EQ(before + kThreads * kPerThread, counter.Value());
}

// `ThreadLocalCell` exists only in the real configuration (hot sites that
// use it sit behind the same guard), so this whole test is compiled out
// with the kill switch on.
#ifndef FDM_NO_METRICS
TEST(ObsMetricsTest, CachedCellBumpMatchesAdd) {
  Counter& counter = MetricsRegistry::Global().GetCounter(
      "fdm_test_counter_cell_total", "test");
  const uint64_t before = counter.Value();
  // The ultra-hot-site idiom: resolve the cell once, bump it directly.
  std::atomic<uint64_t>& cell = counter.ThreadLocalCell();
  for (int i = 0; i < 1000; ++i) BumpCell(cell);
  BumpCell(cell, 500);
  counter.Add(1);  // the convenience path lands in the same cell
  EXPECT_EQ(before + 1501, counter.Value());
}
#endif  // FDM_NO_METRICS

TEST(ObsMetricsTest, GetReturnsSameInstanceByName) {
  if (!kMetricsEnabled) GTEST_SKIP() << "FDM_NO_METRICS build";
  Counter& a = MetricsRegistry::Global().GetCounter(
      "fdm_test_counter_identity_total", "test");
  Counter& b = MetricsRegistry::Global().GetCounter(
      "fdm_test_counter_identity_total", "different help, same metric");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = MetricsRegistry::Global().GetHistogram(
      "fdm_test_hist_identity_ns", "test", 1000);
  Histogram& h2 = MetricsRegistry::Global().GetHistogram(
      "fdm_test_hist_identity_ns", "test");
  EXPECT_EQ(&h1, &h2);
  // First registration wins for the slow threshold.
  EXPECT_EQ(1000u, h2.slow_threshold_ns());
}

TEST(ObsMetricsTest, GaugeLastWriteWins) {
  if (!kMetricsEnabled) GTEST_SKIP() << "FDM_NO_METRICS build";
  Gauge& gauge =
      MetricsRegistry::Global().GetGauge("fdm_test_gauge", "test");
  gauge.Set(3.5);
  EXPECT_DOUBLE_EQ(3.5, gauge.Value());
  gauge.Add(1.5);
  EXPECT_DOUBLE_EQ(5.0, gauge.Value());
  gauge.Set(-2.0);
  EXPECT_DOUBLE_EQ(-2.0, gauge.Value());
}

TEST(ObsMetricsTest, HistogramScrapeMergesConcurrentShards) {
  if (!kMetricsEnabled) GTEST_SKIP() << "FDM_NO_METRICS build";
  Histogram& hist = MetricsRegistry::Global().GetHistogram(
      "fdm_test_hist_merge_ns", "test");
  constexpr int kThreads = 6;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t) * 1000 + (i % 100));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot merged = hist.Snapshot();
  // Every thread recorded into its own shard; the scrape folds them all.
  EXPECT_EQ(kThreads * kPerThread, merged.count);
  // The merge is element-wise addition, so two scrapes of quiescent shards
  // are identical — determinism the percentile reports rely on.
  const HistogramSnapshot again = hist.Snapshot();
  EXPECT_EQ(merged.counts, again.counts);
  EXPECT_EQ(merged.sum, again.sum);
}

TEST(ObsMetricsTest, SlowOpJournalCapturesContextAboveThreshold) {
  if (!kMetricsEnabled) GTEST_SKIP() << "FDM_NO_METRICS build";
  Histogram& hist = MetricsRegistry::Global().GetHistogram(
      "fdm_test_hist_slow_ns", "test", /*slow_threshold_ns=*/1000);
  hist.RecordWithContext(999, "below", 1);  // under: not journaled
  hist.RecordWithContext(5000, "session-x", 42);
  const std::vector<SlowOp> ops = MetricsRegistry::Global().SlowOps();
  bool found = false;
  bool found_below = false;
  for (const SlowOp& op : ops) {
    if (op.metric == "fdm_test_hist_slow_ns" && op.context == "session-x") {
      found = true;
      EXPECT_EQ(5000u, op.duration_ns);
      EXPECT_EQ(42u, op.state_version);
    }
    if (op.context == "below") found_below = true;
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(found_below);
}

TEST(ObsMetricsTest, SlowOpRingWrapsOldestFirst) {
  if (!kMetricsEnabled) GTEST_SKIP() << "FDM_NO_METRICS build";
  // Overfill the ring directly; the journal must keep the newest entries
  // and report them oldest-first with monotone sequence numbers.
  for (uint64_t i = 0; i < 300; ++i) {
    MetricsRegistry::Global().JournalSlowOp("fdm_test_ring", "wrap", 1000 + i,
                                            i);
  }
  const std::vector<SlowOp> ops = MetricsRegistry::Global().SlowOps();
  ASSERT_LE(ops.size(), 256u);
  ASSERT_GE(ops.size(), 2u);
  for (size_t i = 1; i < ops.size(); ++i) {
    EXPECT_LT(ops[i - 1].seq, ops[i].seq);
  }
  // The newest journaled op survived the wrap.
  EXPECT_EQ(1000u + 299u, ops.back().duration_ns);
}

TEST(ObsMetricsTest, RenderersIncludeRegisteredMetrics) {
  MetricsRegistry::Global()
      .GetCounter("fdm_test_render_total", "render smoke counter")
      .Add(7);
  MetricsRegistry::Global()
      .GetHistogram("fdm_test_render_ns", "render smoke histogram")
      .Record(12345);
  MetricsRegistry::Global().SetInfo("fdm_test_render_info", "value-1");
  const std::string prom = MetricsRegistry::Global().RenderPrometheus();
  const std::string json = MetricsRegistry::Global().RenderJson();
  if (kMetricsEnabled) {
    EXPECT_NE(std::string::npos, prom.find("fdm_test_render_total"));
    EXPECT_NE(std::string::npos, prom.find("# HELP"));
    EXPECT_NE(std::string::npos,
              prom.find("fdm_test_render_ns{quantile=\"0.99\"}"));
    EXPECT_NE(std::string::npos,
              prom.find("fdm_test_render_info{value=\"value-1\"} 1"));
    EXPECT_NE(std::string::npos, json.find("\"fdm_test_render_total\""));
  } else {
    EXPECT_NE(std::string::npos, prom.find("metrics disabled"));
    EXPECT_NE(std::string::npos, json.find("\"metrics_enabled\":false"));
  }
  // Both renderers are single self-contained documents in either config.
  EXPECT_FALSE(prom.empty());
  EXPECT_EQ('{', json.front());
  EXPECT_EQ('}', json.back());
  // The JSON reply travels on one protocol line — it must never embed a
  // newline.
  EXPECT_EQ(std::string::npos, json.find('\n'));
}

TEST(ObsMetricsTest, StubApiIsInertWhenDisabled) {
  if (kMetricsEnabled) GTEST_SKIP() << "metrics enabled build";
  Counter& counter =
      MetricsRegistry::Global().GetCounter("fdm_test_stub_total", "test");
  counter.Add(100);
  EXPECT_EQ(0u, counter.Value());
  Histogram& hist =
      MetricsRegistry::Global().GetHistogram("fdm_test_stub_ns", "test");
  hist.Record(1);
  EXPECT_EQ(0u, hist.Snapshot().count);
  EXPECT_TRUE(MetricsRegistry::Global().SlowOps().empty());
}

}  // namespace
}  // namespace fdm::obs
