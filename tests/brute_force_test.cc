#include "exact/brute_force.h"

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "data/synthetic.h"

namespace fdm {
namespace {

Dataset LinePoints(const std::vector<double>& xs,
                   const std::vector<int32_t>& groups, int m) {
  Dataset ds("line", 1, m, MetricKind::kEuclidean);
  for (size_t i = 0; i < xs.size(); ++i) {
    ds.Add(std::vector<double>{xs[i]}, groups[i]);
  }
  return ds;
}

TEST(ExactDmTest, PicksEndpointsForKTwo) {
  const Dataset ds =
      LinePoints({0.0, 1.0, 2.0, 10.0}, {0, 0, 0, 0}, 1);
  const ExactSolution s = ExactDiversityMaximization(ds, 2);
  EXPECT_DOUBLE_EQ(s.diversity, 10.0);
  EXPECT_EQ(s.indices, (std::vector<size_t>{0, 3}));
}

TEST(ExactDmTest, EvenlySpacedForKThree) {
  // On {0, 1, 5, 6, 10}: best 3-subset is {0, 5, 10} with div 5.
  const Dataset ds =
      LinePoints({0.0, 1.0, 5.0, 6.0, 10.0}, {0, 0, 0, 0, 0}, 1);
  const ExactSolution s = ExactDiversityMaximization(ds, 3);
  EXPECT_DOUBLE_EQ(s.diversity, 5.0);
  EXPECT_EQ(s.indices, (std::vector<size_t>{0, 2, 4}));
}

TEST(ExactDmTest, DiversityMatchesRecomputation) {
  BlobsOptions opt;
  opt.n = 12;
  opt.seed = 31;
  const Dataset ds = MakeBlobs(opt);
  const ExactSolution s = ExactDiversityMaximization(ds, 4);
  ASSERT_EQ(s.indices.size(), 4u);
  EXPECT_NEAR(s.diversity, MinPairwiseDistance(ds, s.indices), 1e-12);
}

TEST(ExactDmTest, KEqualsNTakesEverything) {
  const Dataset ds = LinePoints({0.0, 3.0, 7.0}, {0, 0, 0}, 1);
  const ExactSolution s = ExactDiversityMaximization(ds, 3);
  EXPECT_EQ(s.indices.size(), 3u);
  EXPECT_DOUBLE_EQ(s.diversity, 3.0);
}

TEST(ExactFdmTest, FairnessForcesWorseDiversity) {
  // Points 0,10 are group 0; point 5 is group 1. Unconstrained k=2 picks
  // {0,10} (div 10); requiring one per group forces div 5.
  const Dataset ds = LinePoints({0.0, 10.0, 5.0}, {0, 0, 1}, 2);
  FairnessConstraint c;
  c.quotas = {1, 1};
  const ExactSolution fair = ExactFairDiversityMaximization(ds, c);
  EXPECT_DOUBLE_EQ(fair.diversity, 5.0);
  const ExactSolution free = ExactDiversityMaximization(ds, 2);
  EXPECT_DOUBLE_EQ(free.diversity, 10.0);
}

TEST(ExactFdmTest, RespectsQuotasExactly) {
  BlobsOptions opt;
  opt.n = 14;
  opt.num_groups = 3;
  opt.seed = 33;
  const Dataset ds = MakeBlobs(opt);
  FairnessConstraint c;
  c.quotas = {2, 1, 2};
  const ExactSolution s = ExactFairDiversityMaximization(ds, c);
  ASSERT_EQ(s.indices.size(), 5u);
  std::vector<int> counts(3, 0);
  for (const size_t i : s.indices) ++counts[static_cast<size_t>(ds.GroupOf(i))];
  EXPECT_EQ(counts, (std::vector<int>{2, 1, 2}));
}

TEST(ExactFdmTest, InfeasibleQuotaYieldsEmpty) {
  const Dataset ds = LinePoints({0.0, 1.0}, {0, 0}, 2);
  FairnessConstraint c;
  c.quotas = {1, 1};  // group 1 is empty
  const ExactSolution s = ExactFairDiversityMaximization(ds, c);
  EXPECT_TRUE(s.indices.empty());
  EXPECT_DOUBLE_EQ(s.diversity, 0.0);
}

TEST(ExactFdmTest, FairOptimumNeverExceedsUnconstrained) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    BlobsOptions opt;
    opt.n = 12;
    opt.num_groups = 2;
    opt.seed = seed;
    const Dataset ds = MakeBlobs(opt);
    FairnessConstraint c;
    c.quotas = {2, 2};
    const ExactSolution fair = ExactFairDiversityMaximization(ds, c);
    const ExactSolution free = ExactDiversityMaximization(ds, 4);
    EXPECT_LE(fair.diversity, free.diversity + 1e-12) << "seed " << seed;
  }
}

TEST(ExactMatroidIntersectionTest, PartitionMatroidsKnownAnswer) {
  // Ground {0..3}; M1 parts {0,1} vs {2,3} with caps 1; M2 parts
  // {0,2} vs {1,3} with caps 1. {0,3} is common independent -> size 2.
  const PartitionMatroid m1({0, 0, 1, 1}, {1, 1});
  const PartitionMatroid m2({0, 1, 0, 1}, {1, 1});
  EXPECT_EQ(ExactMaxCommonIndependentSetSize(m1, m2), 2);
}

TEST(ExactMatroidIntersectionTest, BlockedIntersection) {
  // M1 allows at most 1 of everything; M2 also 1 of everything on one part:
  // the max common independent set is 1.
  const PartitionMatroid m1({0, 0, 0}, {1});
  const PartitionMatroid m2({0, 0, 0}, {1});
  EXPECT_EQ(ExactMaxCommonIndependentSetSize(m1, m2), 1);
}

}  // namespace
}  // namespace fdm
