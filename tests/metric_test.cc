#include "geo/metric.h"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fdm {
namespace {

TEST(MetricTest, EuclideanKnownValues) {
  const Metric m(MetricKind::kEuclidean);
  const double a[2] = {0, 0};
  const double b[2] = {3, 4};
  EXPECT_DOUBLE_EQ(m(a, b, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(a, a, 2), 0.0);
}

TEST(MetricTest, ManhattanKnownValues) {
  const Metric m(MetricKind::kManhattan);
  const double a[3] = {1, -2, 0.5};
  const double b[3] = {-1, 1, 0.5};
  EXPECT_DOUBLE_EQ(m(a, b, 3), 5.0);
}

TEST(MetricTest, AngularKnownValues) {
  const Metric m(MetricKind::kAngular);
  const double x[2] = {1, 0};
  const double y[2] = {0, 2};       // orthogonal
  const double z[2] = {-3, 0};      // opposite
  const double w[2] = {5, 0};       // parallel
  EXPECT_NEAR(m(x, y, 2), std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(m(x, z, 2), std::numbers::pi, 1e-12);
  EXPECT_NEAR(m(x, w, 2), 0.0, 1e-7);
}

TEST(MetricTest, AngularZeroVectorConvention) {
  const Metric m(MetricKind::kAngular);
  const double zero[2] = {0, 0};
  const double x[2] = {1, 1};
  EXPECT_NEAR(m(zero, x, 2), std::numbers::pi / 2, 1e-12);
}

TEST(MetricTest, AngularScaleInvariance) {
  const Metric m(MetricKind::kAngular);
  Rng rng(3);
  for (int t = 0; t < 100; ++t) {
    std::vector<double> a(5), b(5), a2(5);
    for (int d = 0; d < 5; ++d) {
      a[static_cast<size_t>(d)] = rng.NextDouble(0.01, 1.0);
      b[static_cast<size_t>(d)] = rng.NextDouble(0.01, 1.0);
      a2[static_cast<size_t>(d)] = 7.5 * a[static_cast<size_t>(d)];
    }
    EXPECT_NEAR(m(a.data(), b.data(), 5), m(a2.data(), b.data(), 5), 1e-9);
  }
}

class MetricPropertyTest : public ::testing::TestWithParam<MetricKind> {};

TEST_P(MetricPropertyTest, NonNegativity) {
  const Metric m(GetParam());
  Rng rng(11);
  for (int t = 0; t < 500; ++t) {
    std::vector<double> a(4), b(4);
    for (int d = 0; d < 4; ++d) {
      a[static_cast<size_t>(d)] = rng.NextGaussian();
      b[static_cast<size_t>(d)] = rng.NextGaussian();
    }
    EXPECT_GE(m(a.data(), b.data(), 4), 0.0);
  }
}

TEST_P(MetricPropertyTest, IdentityGivesZero) {
  const Metric m(GetParam());
  Rng rng(13);
  for (int t = 0; t < 200; ++t) {
    std::vector<double> a(6);
    for (int d = 0; d < 6; ++d) {
      a[static_cast<size_t>(d)] = rng.NextDouble(0.1, 2.0);
    }
    EXPECT_NEAR(m(a.data(), a.data(), 6), 0.0, 1e-7);
  }
}

TEST_P(MetricPropertyTest, Symmetry) {
  const Metric m(GetParam());
  Rng rng(17);
  for (int t = 0; t < 500; ++t) {
    std::vector<double> a(5), b(5);
    for (int d = 0; d < 5; ++d) {
      a[static_cast<size_t>(d)] = rng.NextGaussian();
      b[static_cast<size_t>(d)] = rng.NextGaussian();
    }
    EXPECT_DOUBLE_EQ(m(a.data(), b.data(), 5), m(b.data(), a.data(), 5));
  }
}

TEST_P(MetricPropertyTest, TriangleInequality) {
  // The approximation guarantees of every algorithm in the paper rest on
  // the triangle inequality; verify it holds for all three shipped metrics
  // on random triples (positive orthant for angular, where LDA vectors
  // live).
  const Metric m(GetParam());
  Rng rng(19);
  for (int t = 0; t < 2000; ++t) {
    std::vector<double> x(4), y(4), z(4);
    for (int d = 0; d < 4; ++d) {
      x[static_cast<size_t>(d)] = rng.NextDouble(0.0, 1.0);
      y[static_cast<size_t>(d)] = rng.NextDouble(0.0, 1.0);
      z[static_cast<size_t>(d)] = rng.NextDouble(0.0, 1.0);
    }
    const double xy = m(x.data(), y.data(), 4);
    const double yz = m(y.data(), z.data(), 4);
    const double xz = m(x.data(), z.data(), 4);
    EXPECT_LE(xz, xy + yz + 1e-9);
  }
}

TEST_P(MetricPropertyTest, SpanOverloadMatchesPointerOverload) {
  const Metric m(GetParam());
  std::vector<double> a{0.3, 0.9, 0.1};
  std::vector<double> b{0.5, 0.2, 0.8};
  EXPECT_DOUBLE_EQ(m(std::span<const double>(a), std::span<const double>(b)),
                   m(a.data(), b.data(), 3));
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricPropertyTest,
                         ::testing::Values(MetricKind::kEuclidean,
                                           MetricKind::kManhattan,
                                           MetricKind::kAngular),
                         [](const auto& info) {
                           return std::string(MetricKindName(info.param));
                         });

TEST(ParseMetricKindTest, ValidNames) {
  EXPECT_EQ(ParseMetricKind("euclidean").value(), MetricKind::kEuclidean);
  EXPECT_EQ(ParseMetricKind("manhattan").value(), MetricKind::kManhattan);
  EXPECT_EQ(ParseMetricKind("angular").value(), MetricKind::kAngular);
}

TEST(ParseMetricKindTest, InvalidNameFails) {
  EXPECT_FALSE(ParseMetricKind("cosine").ok());
  EXPECT_FALSE(ParseMetricKind("").ok());
  EXPECT_FALSE(ParseMetricKind("Euclidean").ok());
}

TEST(ParseMetricKindTest, RoundTripsNames) {
  for (const MetricKind kind :
       {MetricKind::kEuclidean, MetricKind::kManhattan, MetricKind::kAngular}) {
    EXPECT_EQ(ParseMetricKind(MetricKindName(kind)).value(), kind);
  }
}

}  // namespace
}  // namespace fdm
