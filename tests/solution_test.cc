#include "core/solution.h"

#include <limits>

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "data/synthetic.h"

namespace fdm {
namespace {

Dataset TestData() {
  BlobsOptions opt;
  opt.n = 50;
  opt.num_groups = 2;
  opt.seed = 17;
  return MakeBlobs(opt);
}

TEST(SolutionTest, FromIndicesCopiesEverything) {
  const Dataset ds = TestData();
  const std::vector<size_t> rows{3, 17, 42};
  const Solution s = Solution::FromIndices(ds, rows);
  ASSERT_EQ(s.points.size(), 3u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(s.points.IdAt(i), static_cast<int64_t>(rows[i]));
    EXPECT_EQ(s.points.GroupAt(i), ds.GroupOf(rows[i]));
    for (size_t d = 0; d < ds.dim(); ++d) {
      EXPECT_DOUBLE_EQ(s.points.CoordsAt(i)[d], ds.Point(rows[i])[d]);
    }
  }
}

TEST(SolutionTest, FromIndicesComputesDiversity) {
  const Dataset ds = TestData();
  const std::vector<size_t> rows{0, 10, 20, 30};
  const Solution s = Solution::FromIndices(ds, rows);
  EXPECT_DOUBLE_EQ(s.diversity, MinPairwiseDistance(ds, rows));
  EXPECT_DOUBLE_EQ(s.mu, 0.0);  // offline: no winning guess
}

TEST(SolutionTest, IdsPreserveSelectionOrder) {
  const Dataset ds = TestData();
  const std::vector<size_t> rows{9, 2, 31};
  const Solution s = Solution::FromIndices(ds, rows);
  EXPECT_EQ(s.Ids(), (std::vector<int64_t>{9, 2, 31}));
}

TEST(SolutionTest, EmptySolution) {
  const Dataset ds = TestData();
  const Solution s = Solution::FromIndices(ds, {});
  EXPECT_EQ(s.points.size(), 0u);
  EXPECT_TRUE(s.Ids().empty());
  EXPECT_EQ(s.diversity, std::numeric_limits<double>::infinity());
}

TEST(SolutionTest, SingletonHasInfiniteDiversity) {
  const Dataset ds = TestData();
  const Solution s = Solution::FromIndices(ds, std::vector<size_t>{5});
  EXPECT_EQ(s.diversity, std::numeric_limits<double>::infinity());
}

TEST(SolutionTest, SolutionOutlivesDataset) {
  // The solution owns copies: reading it after the dataset is gone is
  // safe. (The dataset is destroyed at scope exit; the solution's
  // coordinates must remain intact.)
  Solution s(2);
  double expected0 = 0.0;
  {
    const Dataset ds = TestData();
    s = Solution::FromIndices(ds, std::vector<size_t>{1, 2});
    expected0 = ds.Point(1)[0];
  }
  ASSERT_EQ(s.points.size(), 2u);
  EXPECT_DOUBLE_EQ(s.points.CoordsAt(0)[0], expected0);
}

}  // namespace
}  // namespace fdm
