#include "util/timer.h"

#include <thread>

#include <gtest/gtest.h>

namespace fdm {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.ElapsedSeconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);  // generous upper bound for loaded CI machines
}

TEST(TimerTest, NanosConsistentWithSeconds) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const int64_t ns = t.ElapsedNanos();
  const double s = t.ElapsedSeconds();
  EXPECT_GE(ns, 4'000'000);
  EXPECT_GE(s, static_cast<double>(ns) / 1e9 - 1e-3);
}

TEST(TimerTest, ResetRestartsClock) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 0.015);
}

TEST(TimerTest, Monotonic) {
  Timer t;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = t.ElapsedSeconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(AccumulatingTimerTest, SumsSections) {
  AccumulatingTimer acc;
  for (int i = 0; i < 3; ++i) {
    acc.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    acc.Stop();
  }
  EXPECT_GE(acc.total_seconds(), 0.012);
}

TEST(AccumulatingTimerTest, StopWithoutStartIsNoop) {
  AccumulatingTimer acc;
  acc.Stop();
  EXPECT_DOUBLE_EQ(acc.total_seconds(), 0.0);
}

TEST(AccumulatingTimerTest, DoubleStopCountsOnce) {
  AccumulatingTimer acc;
  acc.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  acc.Stop();
  const double after_first = acc.total_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  acc.Stop();
  EXPECT_DOUBLE_EQ(acc.total_seconds(), after_first);
}

}  // namespace
}  // namespace fdm
