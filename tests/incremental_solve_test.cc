// Interleaved-query invariants of the incremental query path: for every
// registered streaming kind, calling Solve() after each stream prefix —
// on one long-lived sink, through a version-keyed SolveCache — must be
// bit-identical to a fresh-sink replay's Solve() at that prefix. This
// proves the state-version contract, the solve cache, and SFDM-2's
// incremental per-rung post-processing can never change results, including
// across a snapshot/restore in the middle of the stream.

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sink_snapshot.h"
#include "core/solve_cache.h"
#include "core/stream_sink.h"
#include "data/synthetic.h"
#include "geo/simd/kernel_dispatch.h"
#include "harness/registry.h"
#include "util/binary_io.h"

namespace fdm {
namespace {

Dataset TestData(size_t n = 48) {
  BlobsOptions opt;
  opt.n = n;
  opt.num_groups = 2;  // SFDM1 requires exactly two groups
  opt.seed = 77;
  return MakeBlobs(opt);
}

RunConfig ConfigFor(const Dataset& ds, AlgorithmKind kind) {
  RunConfig config;
  config.algorithm = kind;
  config.constraint.quotas = {2, 2};
  const DistanceBounds bounds = ComputeDistanceBoundsExact(ds);
  config.bounds = bounds;
  config.num_shards = 3;
  config.window_size = 0;  // whole dataset
  return config;
}

void ExpectSameOutcome(const Result<Solution>& a, const Result<Solution>& b,
                       size_t prefix) {
  ASSERT_EQ(a.ok(), b.ok()) << "prefix " << prefix << ": "
                            << a.status().ToString() << " vs "
                            << b.status().ToString();
  if (!a.ok()) {
    EXPECT_EQ(a.status().code(), b.status().code()) << "prefix " << prefix;
    return;
  }
  EXPECT_EQ(a->Ids(), b->Ids()) << "prefix " << prefix;
  EXPECT_EQ(a->diversity, b->diversity) << "prefix " << prefix;
  EXPECT_EQ(a->mu, b->mu) << "prefix " << prefix;
  ASSERT_EQ(a->points.size(), b->points.size()) << "prefix " << prefix;
  for (size_t i = 0; i < a->points.size(); ++i) {
    EXPECT_EQ(a->points.GroupAt(i), b->points.GroupAt(i));
    for (size_t d = 0; d < a->points.dim(); ++d) {
      EXPECT_EQ(a->points.CoordsAt(i)[d], b->points.CoordsAt(i)[d])
          << "prefix " << prefix << " point " << i << " dim " << d;
    }
  }
}

/// Snapshot + tag-dispatched restore of a polymorphic sink.
Result<std::unique_ptr<StreamSink>> RoundTrip(const StreamSink& sink) {
  SnapshotWriter writer;
  if (Status s = sink.Snapshot(writer); !s.ok()) return s;
  auto reader = SnapshotReader::FromBytes(writer.Serialize());
  if (!reader.ok()) return reader.status();
  return RestoreSink(*reader);
}

/// The satellite harness: one long-lived sink queried after every prefix
/// (via a SolveCache and directly), checked against a fresh-sink replay of
/// the same prefix; the long-lived sink is swapped for a snapshot-restored
/// copy at the midpoint.
void RunInterleaved(const Dataset& ds, AlgorithmKind kind) {
  const AlgorithmEntry* entry = AlgorithmRegistry::Instance().Find(kind);
  ASSERT_NE(entry, nullptr);
  ASSERT_TRUE(entry->streaming);
  const RunConfig config = ConfigFor(ds, kind);

  auto live = entry->make_sink(ds, config);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  std::unique_ptr<StreamSink> sink = std::move(live.value());
  SolveCache cache;

  uint64_t last_version = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    const bool mutated = sink->Observe(ds.At(i));
    const uint64_t version = sink->StateVersion();
    // The version is monotone and advances exactly when Observe reports a
    // mutation.
    EXPECT_GE(version, last_version);
    EXPECT_EQ(mutated, version != last_version) << "prefix " << (i + 1);
    last_version = version;

    // Fresh replay of the same prefix.
    auto fresh = entry->make_sink(ds, config);
    ASSERT_TRUE(fresh.ok());
    for (size_t t = 0; t <= i; ++t) (*fresh)->Observe(ds.At(t));
    // Chunking-invariance: the per-element replay reaches the same version.
    EXPECT_EQ((*fresh)->StateVersion(), version) << "prefix " << (i + 1);

    const Result<Solution> expected = (*fresh)->Solve();
    const Result<Solution> direct = sink->Solve();
    const Result<Solution> cached = cache.GetOrCompute(
        version, [&] { return sink->Solve(); });
    ExpectSameOutcome(expected, direct, i + 1);
    ExpectSameOutcome(expected, cached, i + 1);

    // Swap the live sink for a snapshot-restored copy mid-stream: the
    // restored sink must continue the version sequence and keep the cache
    // valid (its entries are keyed by versions the restored sink shares).
    if (i + 1 == ds.size() / 2) {
      auto restored = RoundTrip(*sink);
      ASSERT_TRUE(restored.ok()) << restored.status().ToString();
      EXPECT_EQ((*restored)->StateVersion(), version);
      sink = std::move(restored.value());
      ExpectSameOutcome(expected, cache.GetOrCompute(sink->StateVersion(),
                                                     [&] {
                                                       return sink->Solve();
                                                     }),
                        i + 1);
    }
  }

  // After a saturated stream most prefixes leave state untouched, so the
  // cache must have actually been exercised.
  EXPECT_GT(cache.GetStats().hits, 0u) << "cache never hit for this kind";
}

class IncrementalSolveTest : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(IncrementalSolveTest, PrefixSolvesMatchFreshReplay) {
  RunInterleaved(TestData(), GetParam());
}

std::vector<AlgorithmKind> StreamingKinds() {
  std::vector<AlgorithmKind> kinds;
  for (const AlgorithmKind kind : AlgorithmRegistry::Instance().Kinds()) {
    const AlgorithmEntry* entry = AlgorithmRegistry::Instance().Find(kind);
    if (entry != nullptr && entry->streaming) kinds.push_back(kind);
  }
  return kinds;
}

INSTANTIATE_TEST_SUITE_P(
    AllStreamingKinds, IncrementalSolveTest,
    ::testing::ValuesIn(StreamingKinds()),
    [](const ::testing::TestParamInfo<AlgorithmKind>& info) {
      std::string name(AlgorithmName(info.param));
      for (char& c : name) {
        if (!(std::isalnum(static_cast<unsigned char>(c)))) c = '_';
      }
      return name;
    });

// Batched ingestion must land on the same state version as per-element
// ingestion (chunking-invariance) — this is what keeps a WAL replay's
// version, and therefore the warm solve cache, valid after recovery.
TEST(StateVersionTest, ChunkingInvariantAcrossBatchSizes) {
  const Dataset ds = TestData(60);
  for (const AlgorithmKind kind : StreamingKinds()) {
    const AlgorithmEntry* entry = AlgorithmRegistry::Instance().Find(kind);
    RunConfig config = ConfigFor(ds, kind);
    auto sequential = entry->make_sink(ds, config);
    ASSERT_TRUE(sequential.ok());
    for (size_t i = 0; i < ds.size(); ++i) (*sequential)->Observe(ds.At(i));

    for (const size_t batch_size : {3u, 17u, 64u}) {
      auto batched = entry->make_sink(ds, config);
      ASSERT_TRUE(batched.ok());
      std::vector<StreamPoint> batch;
      for (size_t i = 0; i < ds.size(); ++i) {
        batch.push_back(ds.At(i));
        if (batch.size() == batch_size) {
          (*batched)->ObserveBatch(batch);
          batch.clear();
        }
      }
      if (!batch.empty()) (*batched)->ObserveBatch(batch);
      EXPECT_EQ((*batched)->StateVersion(), (*sequential)->StateVersion())
          << AlgorithmName(kind) << " batch_size=" << batch_size;
    }
  }
}

// The acceptance contract of the SIMD kernel subsystem at the sink level:
// every registered streaming kind, ingesting half per-element and half
// batched, must produce bit-identical Solve() output, state version, and
// stored-element count under every kernel dispatch target reachable on
// this machine (the in-process equivalent of running the suite under
// FDM_KERNEL=scalar vs the best native target).
TEST(KernelTargetEquivalenceTest, SolveIdenticalAcrossDispatchTargets) {
  const Dataset ds = TestData(60);
  for (const AlgorithmKind kind : StreamingKinds()) {
    const AlgorithmEntry* entry = AlgorithmRegistry::Instance().Find(kind);
    const RunConfig config = ConfigFor(ds, kind);
    struct Outcome {
      Result<Solution> solution = Status::Ok();
      uint64_t version = 0;
      size_t stored = 0;
    };
    std::vector<Outcome> outcomes;
    for (const std::string_view target : simd::AvailableKernelTargets()) {
      ASSERT_TRUE(simd::internal::ForceKernelTargetForTest(target));
      auto sink = entry->make_sink(ds, config);
      ASSERT_TRUE(sink.ok()) << sink.status().ToString();
      const size_t half = ds.size() / 2;
      for (size_t i = 0; i < half; ++i) (*sink)->Observe(ds.At(i));
      std::vector<StreamPoint> batch;
      for (size_t i = half; i < ds.size(); ++i) batch.push_back(ds.At(i));
      (*sink)->ObserveBatch(batch);
      outcomes.push_back(Outcome{(*sink)->Solve(), (*sink)->StateVersion(),
                                 (*sink)->StoredElements()});
    }
    ASSERT_TRUE(simd::internal::ForceKernelTargetForTest(""));
    for (size_t t = 1; t < outcomes.size(); ++t) {
      ExpectSameOutcome(outcomes[0].solution, outcomes[t].solution,
                        ds.size());
      EXPECT_EQ(outcomes[0].version, outcomes[t].version)
          << AlgorithmName(kind) << " target index " << t;
      EXPECT_EQ(outcomes[0].stored, outcomes[t].stored)
          << AlgorithmName(kind) << " target index " << t;
    }
  }
}

// A rejected element must not advance the version: duplicate coordinates
// are at distance 0 from an already-kept point, so every candidate rejects
// them and a version-keyed cache keeps serving the memoized solution.
TEST(StateVersionTest, RejectedElementsDoNotAdvanceVersion) {
  const Dataset ds = TestData(30);
  for (const AlgorithmKind kind :
       {AlgorithmKind::kStreamingDm, AlgorithmKind::kSfdm1,
        AlgorithmKind::kSfdm2}) {
    const AlgorithmEntry* entry = AlgorithmRegistry::Instance().Find(kind);
    const RunConfig config = ConfigFor(ds, kind);
    auto sink = entry->make_sink(ds, config);
    ASSERT_TRUE(sink.ok());
    for (size_t i = 0; i < ds.size(); ++i) (*sink)->Observe(ds.At(i));
    const uint64_t version = (*sink)->StateVersion();
    // Re-observing already-seen points mutates nothing.
    for (size_t i = 0; i < ds.size(); ++i) {
      EXPECT_FALSE((*sink)->Observe(ds.At(i))) << AlgorithmName(kind);
    }
    EXPECT_EQ((*sink)->StateVersion(), version) << AlgorithmName(kind);
  }
}

}  // namespace
}  // namespace fdm
