#include "util/binary_io.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fdm {
namespace {

TEST(BinaryIoTest, ScalarAndStringRoundTrip) {
  SnapshotWriter writer;
  writer.WriteU8(7);
  writer.WriteBool(true);
  writer.WriteU32(0xdeadbeef);
  writer.WriteU64(1ull << 40);
  writer.WriteI32(-12345);
  writer.WriteI64(-(1ll << 50));
  writer.WriteDouble(0.1234567890123456789);
  writer.WriteString("hello snapshot");
  writer.WriteDoubleSpan(std::vector<double>{1.5, -2.5, 1e-300});

  auto reader = SnapshotReader::FromBytes(writer.Serialize());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->ReadU8(), 7);
  EXPECT_TRUE(reader->ReadBool());
  EXPECT_EQ(reader->ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(reader->ReadU64(), 1ull << 40);
  EXPECT_EQ(reader->ReadI32(), -12345);
  EXPECT_EQ(reader->ReadI64(), -(1ll << 50));
  EXPECT_EQ(reader->ReadDouble(), 0.1234567890123456789);  // bit-exact
  EXPECT_EQ(reader->ReadString(), "hello snapshot");
  EXPECT_EQ(reader->ReadDoubleVec(), (std::vector<double>{1.5, -2.5, 1e-300}));
  EXPECT_TRUE(reader->ok());
  EXPECT_EQ(reader->Remaining(), 0u);
}

TEST(BinaryIoTest, PeekStringDoesNotConsume) {
  SnapshotWriter writer;
  writer.WriteString("tag");
  writer.WriteI32(42);
  auto reader = SnapshotReader::FromBytes(writer.Serialize());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->PeekString(), "tag");
  EXPECT_EQ(reader->PeekString(), "tag");
  EXPECT_EQ(reader->ReadString(), "tag");
  EXPECT_EQ(reader->ReadI32(), 42);
}

TEST(BinaryIoTest, ReadPastEndLatchesStickyError) {
  SnapshotWriter writer;
  writer.WriteU32(1);
  auto reader = SnapshotReader::FromBytes(writer.Serialize());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->ReadU32(), 1u);
  EXPECT_EQ(reader->ReadU64(), 0u);  // past end: zero value
  EXPECT_FALSE(reader->ok());
  EXPECT_EQ(reader->ReadU32(), 0u);  // stays failed
  EXPECT_FALSE(reader->status().ok());
}

TEST(BinaryIoTest, HugeLengthPrefixIsRejectedWithoutAllocating) {
  SnapshotWriter writer;
  writer.WriteU64(~0ull);  // claims a ~2^64-byte string follows
  auto reader = SnapshotReader::FromBytes(writer.Serialize());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->ReadString(), "");
  EXPECT_FALSE(reader->ok());
}

TEST(BinaryIoTest, ChecksumCatchesBitFlip) {
  SnapshotWriter writer;
  writer.WriteString("payload payload payload");
  std::string framed = writer.Serialize();
  framed[framed.size() - 12] ^= 1;  // inside the payload
  EXPECT_FALSE(SnapshotReader::FromBytes(framed).ok());
}

TEST(BinaryIoTest, Fnv1a64MatchesKnownVector) {
  // FNV-1a 64 of "a" is 0xaf63dc4c8601ec8c (published test vector).
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ull);
}

}  // namespace
}  // namespace fdm
