// SolveCache unit behaviour and the serving-side query path: cached SOLVEs
// under shared session locks, cache stats surfaced through
// SessionManager::Stats, and warm-cache survival across LRU spills and
// crash-recovery drills (state versions are chunking-invariant under WAL
// replay, so a matching cache entry stays valid).

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/solve_cache.h"
#include "core/sfdm2.h"
#include "data/synthetic.h"
#include "service/session_manager.h"

namespace fdm {
namespace {

Dataset TestData(size_t n = 80) {
  BlobsOptions opt;
  opt.n = n;
  opt.num_groups = 2;
  opt.seed = 91;
  return MakeBlobs(opt);
}

std::string SpecFor(const Dataset& ds) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  return "algo=sfdm2 dim=" + std::to_string(ds.dim()) +
         " quotas=2,2 dmin=" + std::to_string(b.min) +
         " dmax=" + std::to_string(b.max);
}

std::string TempRoot(const std::string& tag) {
  return ::testing::TempDir() + "/fdm_solve_cache_" + tag;
}

TEST(SolveCacheTest, HitsOnlyOnMatchingVersion) {
  SolveCache cache;
  int computes = 0;
  auto solver = [&computes]() -> Result<Solution> {
    ++computes;
    Solution s(2);
    s.diversity = static_cast<double>(computes);
    return s;
  };
  auto first = cache.GetOrCompute(7, solver);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(1, computes);
  // Same version: served from cache, bit-identical payload.
  auto again = cache.GetOrCompute(7, solver);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(1, computes);
  EXPECT_EQ(first->diversity, again->diversity);
  // New version: recomputed.
  auto moved = cache.GetOrCompute(8, solver);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(2, computes);
  const SolveCache::Stats stats = cache.GetStats();
  EXPECT_EQ(1u, stats.hits);
  EXPECT_EQ(2u, stats.misses);
  EXPECT_EQ(8u, stats.cached_version);
}

TEST(SolveCacheTest, CachesFailuresToo) {
  SolveCache cache;
  int computes = 0;
  auto solver = [&computes]() -> Result<Solution> {
    ++computes;
    return Status::Infeasible("not enough points yet");
  };
  EXPECT_FALSE(cache.GetOrCompute(1, solver).ok());
  EXPECT_FALSE(cache.GetOrCompute(1, solver).ok());
  // An Infeasible stream stays infeasible until state changes — the second
  // query must not pay for a recompute.
  EXPECT_EQ(1, computes);
  cache.Invalidate();
  EXPECT_FALSE(cache.GetOrCompute(1, solver).ok());
  EXPECT_EQ(2, computes);
}

TEST(SolveCacheTest, ManagerServesCachedSolvesAndReportsStats) {
  const Dataset ds = TestData();
  SessionManagerOptions options;
  options.root_dir = TempRoot("stats");
  std::filesystem::remove_all(options.root_dir);
  auto manager = SessionManager::Create(options);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->CreateSession("s", SpecFor(ds)).ok());
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE((*manager)->Observe("s", ds.At(i)).ok());
  }
  auto first = (*manager)->Solve("s");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = (*manager)->Solve("s");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->Ids(), second->Ids());
  EXPECT_EQ(first->diversity, second->diversity);

  auto stats = (*manager)->Stats("s");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(1u, stats->solve_misses);
  EXPECT_EQ(1u, stats->solve_hits);
  EXPECT_GT(stats->state_version, 0u);
  // The cold compute and the cached serve each have one latency sample,
  // so both percentile series report (p99 of one sample = that sample's
  // bucket upper bound, always > 0 for a non-zero-duration solve).
  EXPECT_GT(stats->solve_p99_cold_ms, 0.0);
  EXPECT_GT(stats->solve_p99_cached_ms, 0.0);
  EXPECT_GE(stats->solve_p99_cold_ms, stats->solve_p50_cold_ms);
  EXPECT_GE(stats->solve_p99_cached_ms, stats->solve_p50_cached_ms);

  // Ingesting a point that mutates state invalidates; one that does not
  // keeps serving cache hits. Re-observing a seen point never mutates.
  ASSERT_TRUE((*manager)->Observe("s", ds.At(0)).ok());
  auto third = (*manager)->Solve("s");
  ASSERT_TRUE(third.ok());
  stats = (*manager)->Stats("s");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(1u, stats->solve_misses);
  EXPECT_EQ(2u, stats->solve_hits);

  std::filesystem::remove_all(options.root_dir);
}

TEST(SolveCacheTest, WarmCacheSurvivesCrashRecoveryDrill) {
  const Dataset ds = TestData();
  SessionManagerOptions options;
  options.root_dir = TempRoot("recovery");
  std::filesystem::remove_all(options.root_dir);
  auto manager = SessionManager::Create(options);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->CreateSession("s", SpecFor(ds)).ok());
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE((*manager)->Observe("s", ds.At(i)).ok());
  }
  auto before = (*manager)->Solve("s");
  ASSERT_TRUE(before.ok());

  // Crash drill: drop the in-memory sink; the next touch recovers from
  // snapshot + WAL tail. The replayed sink reaches the same state version
  // (chunking-invariant), so the entry's cache is still valid and the
  // first post-recovery SOLVE is a hit — no post-processing rerun.
  ASSERT_TRUE((*manager)->DropResident("s").ok());
  auto after = (*manager)->Solve("s");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->Ids(), after->Ids());
  EXPECT_EQ(before->diversity, after->diversity);
  auto stats = (*manager)->Stats("s");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(1u, stats->solve_misses);
  EXPECT_GE(stats->solve_hits, 1u);

  std::filesystem::remove_all(options.root_dir);
}

TEST(SolveCacheTest, ConcurrentQueriesAndIngestStayConsistent) {
  const Dataset ds = TestData(200);
  SessionManagerOptions options;
  options.root_dir = TempRoot("concurrent");
  std::filesystem::remove_all(options.root_dir);
  auto manager = SessionManager::Create(options);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->CreateSession("a", SpecFor(ds)).ok());
  ASSERT_TRUE((*manager)->CreateSession("b", SpecFor(ds)).ok());
  // Prime session "a" so queries have something to answer.
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE((*manager)->Observe("a", ds.At(i)).ok());
  }

  // Ingest into "b" while hammering "a" with SOLVE + STATS from several
  // reader threads: queries on "a" hold its lock shared (concurrent with
  // each other) and never serialize against "b"'s ingest. TSan/ASan CI
  // runs this test too, so races would surface there.
  std::atomic<bool> stop{false};
  std::atomic<int> query_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto solution = (*manager)->Solve("a");
        auto stats = (*manager)->Stats("a");
        if (!solution.ok() || !stats.ok()) {
          query_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (size_t i = 0; i < ds.size(); ++i) {
    const StreamPoint point = ds.At(i);
    ASSERT_TRUE((*manager)->ObserveBatch("b", {&point, 1}).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(0, query_errors.load());

  std::filesystem::remove_all(options.root_dir);
}

}  // namespace
}  // namespace fdm
