// Ablation tests for SFDM2's two post-processing design choices
// (Section IV-B): warm-starting the matroid intersection from S'_µ and
// greedy farthest-first augmentation. Correctness (fairness + size) must
// hold in every configuration; the greedy choice is what buys diversity.

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/sfdm2.h"
#include "data/synthetic.h"
#include "exact/brute_force.h"

namespace fdm {
namespace {

StreamingOptions OptionsFor(const Dataset& ds) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  StreamingOptions o;
  o.epsilon = 0.1;
  o.d_min = b.min;
  o.d_max = b.max;
  return o;
}

struct AblationCase {
  bool warm_start;
  bool greedy;
};

class Sfdm2AblationTest : public ::testing::TestWithParam<AblationCase> {};

TEST_P(Sfdm2AblationTest, EveryConfigurationStaysFairAndFull) {
  const AblationCase param = GetParam();
  for (const int m : {2, 4, 6}) {
    BlobsOptions opt;
    opt.n = 900;
    opt.num_groups = m;
    opt.seed = static_cast<uint64_t>(m) * 7 + 1;
    const Dataset ds = MakeBlobs(opt);
    std::vector<int> quotas(static_cast<size_t>(m), 2);
    FairnessConstraint c;
    c.quotas = quotas;
    auto algo = Sfdm2::Create(c, 2, MetricKind::kEuclidean, OptionsFor(ds));
    ASSERT_TRUE(algo.ok());
    algo->set_warm_start(param.warm_start);
    algo->set_greedy_augmentation(param.greedy);
    for (const size_t row : StreamOrder(ds.size(), 5)) {
      algo->Observe(ds.At(row));
    }
    const auto solution = algo->Solve();
    ASSERT_TRUE(solution.ok()) << solution.status().ToString();
    EXPECT_EQ(solution->points.size(), static_cast<size_t>(2 * m));
    EXPECT_TRUE(SatisfiesQuotas(solution->points, quotas));
  }
}

TEST_P(Sfdm2AblationTest, TheoremFourBoundHoldsInEveryConfiguration) {
  // The (1−ε)/(3m+2) guarantee comes from the cluster threshold and the
  // maximality of the matroid intersection — not from the warm start or
  // the greedy ordering — so it must survive both ablations.
  const AblationCase param = GetParam();
  BlobsOptions opt;
  opt.n = 14;
  opt.num_groups = 2;
  opt.seed = 21;
  const Dataset ds = MakeBlobs(opt);
  FairnessConstraint c;
  c.quotas = {2, 2};
  ASSERT_TRUE(c.ValidateAgainst(ds.GroupSizes()).ok());
  const ExactSolution exact = ExactFairDiversityMaximization(ds, c);
  ASSERT_GT(exact.diversity, 0.0);
  auto algo = Sfdm2::Create(c, 2, MetricKind::kEuclidean, OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  algo->set_warm_start(param.warm_start);
  algo->set_greedy_augmentation(param.greedy);
  for (const size_t row : StreamOrder(ds.size(), 9)) {
    algo->Observe(ds.At(row));
  }
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok());
  EXPECT_GE(solution->diversity, 0.9 / 8.0 * exact.diversity - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Sfdm2AblationTest,
    ::testing::Values(AblationCase{true, true}, AblationCase{true, false},
                      AblationCase{false, true}, AblationCase{false, false}),
    [](const auto& info) {
      return std::string(info.param.warm_start ? "warm" : "cold") + "_" +
             std::string(info.param.greedy ? "greedy" : "plain");
    });

TEST(Sfdm2AblationTest, GreedyAugmentationImprovesDiversityOnAverage) {
  // The paper's claim: greedy GMM-like selection inside Algorithm 4 is why
  // SFDM2 beats flow-style arbitrary selection. Averaged over several
  // streams, greedy-on must dominate greedy-off.
  double greedy_total = 0.0;
  double plain_total = 0.0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    BlobsOptions opt;
    opt.n = 1500;
    opt.num_groups = 5;
    opt.seed = seed;
    const Dataset ds = MakeBlobs(opt);
    FairnessConstraint c;
    c.quotas = {2, 2, 2, 2, 2};
    const StreamingOptions streaming = OptionsFor(ds);
    for (const bool greedy : {true, false}) {
      auto algo = Sfdm2::Create(c, 2, MetricKind::kEuclidean, streaming);
      ASSERT_TRUE(algo.ok());
      algo->set_greedy_augmentation(greedy);
      for (const size_t row : StreamOrder(ds.size(), seed)) {
        algo->Observe(ds.At(row));
      }
      const auto solution = algo->Solve();
      ASSERT_TRUE(solution.ok());
      (greedy ? greedy_total : plain_total) += solution->diversity;
    }
  }
  EXPECT_GT(greedy_total, plain_total);
}

TEST(Sfdm2AblationTest, DefaultsMatchPaperConfiguration) {
  StreamingOptions o;
  o.epsilon = 0.1;
  o.d_min = 1.0;
  o.d_max = 10.0;
  FairnessConstraint c;
  c.quotas = {1, 1};
  auto algo = Sfdm2::Create(c, 2, MetricKind::kEuclidean, o);
  ASSERT_TRUE(algo.ok());
  EXPECT_TRUE(algo->warm_start());
  EXPECT_TRUE(algo->greedy_augmentation());
}

}  // namespace
}  // namespace fdm
