#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/gmm.h"
#include "data/simulated.h"
#include "data/synthetic.h"
#include "harness/experiment.h"

namespace fdm {
namespace {

// End-to-end runs over (scaled-down) versions of each simulated dataset:
// every algorithm must produce a fair solution whose quality lands in the
// band the paper's Table II leads us to expect, and the streaming
// algorithms must be dramatically cheaper in storage.

struct DatasetCase {
  std::string label;
  Dataset dataset;
};

std::vector<DatasetCase> ScaledDatasets() {
  std::vector<DatasetCase> cases;
  cases.push_back({"adult-sex", SimulatedAdult(AdultGrouping::kSex, 1, 8000)});
  cases.push_back(
      {"celeba-sex", SimulatedCelebA(CelebAGrouping::kSex, 1, 8000)});
  cases.push_back(
      {"census-sex", SimulatedCensus(CensusGrouping::kSex, 1, 8000)});
  return cases;
}

TEST(IntegrationTest, TwoGroupPipelinesAgreeOnAllDatasets) {
  for (const auto& c : ScaledDatasets()) {
    SCOPED_TRACE(c.label);
    const Dataset& ds = c.dataset;
    RunConfig config;
    config.constraint = EqualRepresentation(10, 2).value();
    config.epsilon = 0.1;
    config.bounds = BoundsForExperiments(ds);

    config.algorithm = AlgorithmKind::kGmm;
    const RunResult gmm = RunAlgorithm(ds, config);
    ASSERT_TRUE(gmm.ok) << gmm.error;

    config.algorithm = AlgorithmKind::kFairSwap;
    const RunResult fair_swap = RunAlgorithm(ds, config);
    ASSERT_TRUE(fair_swap.ok) << fair_swap.error;

    config.algorithm = AlgorithmKind::kSfdm1;
    const RunResult sfdm1 = RunAlgorithm(ds, config);
    ASSERT_TRUE(sfdm1.ok) << sfdm1.error;

    config.algorithm = AlgorithmKind::kSfdm2;
    const RunResult sfdm2 = RunAlgorithm(ds, config);
    ASSERT_TRUE(sfdm2.ok) << sfdm2.error;

    // Fair solutions cannot beat the unconstrained 2-approx upper bound.
    const double upper = 2.0 * gmm.diversity;
    for (const RunResult* r : {&fair_swap, &sfdm1, &sfdm2}) {
      EXPECT_LE(r->diversity, upper + 1e-9);
      // Table II band: streaming solutions are comparable to offline —
      // well above half of FairSwap's diversity on every dataset.
      EXPECT_GE(r->diversity, 0.4 * fair_swap.diversity);
    }

    // Streaming memory is a small fraction of the dataset.
    EXPECT_LT(sfdm1.stored_elements, ds.size() / 10);
    EXPECT_LT(sfdm2.stored_elements, ds.size() / 10);
  }
}

TEST(IntegrationTest, LyricsManyGroupPipeline) {
  const Dataset ds = SimulatedLyrics(1, 6000);
  RunConfig config;
  config.constraint = EqualRepresentation(20, 15).value();
  config.epsilon = 0.05;  // the paper's choice for the angular metric
  config.bounds = BoundsForExperiments(ds);

  config.algorithm = AlgorithmKind::kSfdm2;
  const RunResult sfdm2 = RunAlgorithm(ds, config);
  ASSERT_TRUE(sfdm2.ok) << sfdm2.error;

  config.algorithm = AlgorithmKind::kFairFlow;
  const RunResult fair_flow = RunAlgorithm(ds, config);
  ASSERT_TRUE(fair_flow.ok) << fair_flow.error;

  // Table II on Lyrics: SFDM2's diversity dwarfs FairFlow's (1.45 vs 0.22).
  EXPECT_GT(sfdm2.diversity, fair_flow.diversity);
}

TEST(IntegrationTest, CensusManyGroupsFairAndCheap) {
  const Dataset ds = SimulatedCensus(CensusGrouping::kAge, 2, 10000);
  RunConfig config;
  config.algorithm = AlgorithmKind::kSfdm2;
  config.constraint = EqualRepresentation(21, 7).value();
  config.epsilon = 0.1;
  config.bounds = BoundsForExperiments(ds);
  const RunResult r = RunAlgorithm(ds, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.selected_ids.size(), 21u);
  EXPECT_LT(r.stored_elements, ds.size() / 5);
}

TEST(IntegrationTest, ProportionalRepresentationEndToEnd) {
  const Dataset ds = SimulatedAdult(AdultGrouping::kSex, 3, 8000);
  const auto pr = ProportionalRepresentation(20, ds.GroupSizes());
  ASSERT_TRUE(pr.ok());
  // Adult sex skew is 67/33: PR must give the majority group more slots.
  EXPECT_GT(pr->quotas[1], pr->quotas[0]);

  RunConfig config;
  config.algorithm = AlgorithmKind::kSfdm1;
  config.constraint = pr.value();
  config.epsilon = 0.1;
  config.bounds = BoundsForExperiments(ds);
  const RunResult r = RunAlgorithm(ds, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.selected_ids.size(), 20u);
}

TEST(IntegrationTest, StreamingQualityStableAcrossPermutations) {
  // The paper reports averages over 10 permutations; the spread should be
  // moderate (the guess-ladder construction is order-robust).
  const Dataset ds = SimulatedAdult(AdultGrouping::kSex, 5, 6000);
  RunConfig config;
  config.algorithm = AlgorithmKind::kSfdm1;
  config.constraint = EqualRepresentation(10, 2).value();
  config.epsilon = 0.1;
  config.bounds = BoundsForExperiments(ds);
  double lo = 1e100;
  double hi = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    config.permutation_seed = seed;
    const RunResult r = RunAlgorithm(ds, config);
    ASSERT_TRUE(r.ok) << r.error;
    lo = std::min(lo, r.diversity);
    hi = std::max(hi, r.diversity);
  }
  EXPECT_GT(lo, 0.0);
  EXPECT_LT(hi / lo, 2.5) << "diversity should not swing wildly with order";
}

TEST(IntegrationTest, EpsilonTradeoffShrinksStorage) {
  // Fig. 5's defining trend: larger ε → fewer guesses → fewer stored
  // elements, with roughly stable diversity.
  const Dataset ds = SimulatedCelebA(CelebAGrouping::kSex, 7, 6000);
  RunConfig config;
  config.algorithm = AlgorithmKind::kSfdm2;
  config.constraint = EqualRepresentation(10, 2).value();
  config.bounds = BoundsForExperiments(ds);

  config.epsilon = 0.05;
  const RunResult fine = RunAlgorithm(ds, config);
  config.epsilon = 0.25;
  const RunResult coarse = RunAlgorithm(ds, config);
  ASSERT_TRUE(fine.ok) << fine.error;
  ASSERT_TRUE(coarse.ok) << coarse.error;
  EXPECT_LT(coarse.stored_elements, fine.stored_elements);
  EXPECT_GT(coarse.diversity, 0.3 * fine.diversity);
}

}  // namespace
}  // namespace fdm
