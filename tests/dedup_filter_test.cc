// The duplicate-guard core suite: the cuckoo fingerprint filter + exact
// id set must answer membership exactly (zero false negatives by
// construction, false positives refuted by the fallback), grow under load
// without losing anyone, and round-trip through snapshot bytes at every
// prefix of an insert sequence — the property the session footer chain
// leans on.

#include "service/dedup_filter.h"

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "util/binary_io.h"
#include "util/rng.h"

namespace fdm {
namespace {

// Serialize → reframe → Deserialize, asserting success.
DedupFilter RoundTrip(const DedupFilter& filter) {
  SnapshotWriter writer;
  filter.Serialize(writer);
  auto reader = SnapshotReader::FromBytes(writer.Serialize());
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  auto restored = DedupFilter::Deserialize(*reader);
  EXPECT_TRUE(restored.ok()) << restored.status().ToString();
  return std::move(restored.value());
}

TEST(DedupFilterTest, InsertIfAbsentIsExact) {
  DedupFilter filter;
  EXPECT_FALSE(filter.Contains(7));
  EXPECT_TRUE(filter.InsertIfAbsent(7));
  EXPECT_FALSE(filter.InsertIfAbsent(7));  // exact duplicate
  EXPECT_TRUE(filter.Contains(7));
  EXPECT_FALSE(filter.Contains(8));
  EXPECT_EQ(filter.Size(), 1u);
  EXPECT_TRUE(filter.InsertIfAbsent(0));  // id 0 is a legal id
  EXPECT_FALSE(filter.InsertIfAbsent(0));
  EXPECT_EQ(filter.Size(), 2u);
}

// Growth under load: push far past the initial 256-slot capacity. Every
// id stays findable (the rebuild-from-exact-set invariant), no absent id
// is reported present by the *combined* structure, and the filter
// actually doubled several times.
TEST(DedupFilterTest, GrowthUnderLoadLosesNoIds) {
  DedupFilter filter;
  constexpr int64_t kN = 100000;
  for (int64_t id = 0; id < kN; ++id) {
    ASSERT_TRUE(filter.InsertIfAbsent(id * 3)) << "id " << id * 3;
  }
  EXPECT_EQ(filter.Size(), static_cast<size_t>(kN));
  EXPECT_GE(filter.Grows(), 8u);  // 256 slots -> >= 100k demands many
  EXPECT_GT(filter.MemoryBytes(), kN * sizeof(int64_t));
  for (int64_t id = 0; id < kN; ++id) {
    ASSERT_TRUE(filter.Contains(id * 3)) << "id " << id * 3;
    ASSERT_FALSE(filter.InsertIfAbsent(id * 3)) << "id " << id * 3;
  }
  // Membership stays exact for absent ids too: a 16-bit fingerprint
  // collides at this density, but every filter hit is refuted by the
  // exact set (and counted).
  for (int64_t id = 0; id < kN; ++id) {
    ASSERT_FALSE(filter.Contains(id * 3 + 1)) << "id " << id * 3 + 1;
  }
  EXPECT_GT(filter.FalsePositives(), 0u);
}

// Randomized fuzz against the oracle: a skewed id domain (heavy
// duplication) drives InsertIfAbsent/Contains; every answer must match
// std::unordered_set exactly, across growths and false positives.
TEST(DedupFilterTest, FuzzMatchesUnorderedSetOracle) {
  Rng rng(0xfdde0u);
  DedupFilter filter;
  std::unordered_set<int64_t> oracle;
  for (int step = 0; step < 200000; ++step) {
    const int64_t id = static_cast<int64_t>(rng.NextUint64() % 50000);
    if (rng.NextUint64() % 4 == 0) {
      ASSERT_EQ(filter.Contains(id), oracle.count(id) != 0)
          << "step " << step << " id " << id;
    } else {
      ASSERT_EQ(filter.InsertIfAbsent(id), oracle.insert(id).second)
          << "step " << step << " id " << id;
    }
  }
  EXPECT_EQ(filter.Size(), oracle.size());
  // Sanity: the run exercised both interesting paths.
  EXPECT_GT(filter.Grows(), 0u);
  EXPECT_GT(filter.FalsePositives(), 0u);
}

// Snapshot round-trip at every prefix of an insert sequence: the restored
// filter must preserve membership, size, and the cumulative counters —
// the exact property the session snapshot footer depends on at whatever
// moment a spill or snapshot lands.
TEST(DedupFilterTest, SerializeRoundTripsAtEveryPrefix) {
  Rng rng(0x5eedu);
  std::vector<int64_t> ids;
  for (int i = 0; i < 300; ++i) {
    ids.push_back(static_cast<int64_t>(rng.NextUint64() % 1000000));
  }
  DedupFilter filter;
  std::unordered_set<int64_t> seen;
  for (size_t prefix = 0; prefix <= ids.size(); ++prefix) {
    DedupFilter restored = RoundTrip(filter);
    ASSERT_EQ(restored.Size(), filter.Size()) << "prefix " << prefix;
    ASSERT_EQ(restored.Grows(), filter.Grows()) << "prefix " << prefix;
    ASSERT_EQ(restored.FalsePositives(), filter.FalsePositives());
    for (const int64_t id : seen) {
      ASSERT_TRUE(restored.Contains(id)) << "prefix " << prefix;
    }
    ASSERT_FALSE(restored.Contains(1000001));
    // The restored copy keeps working as a filter, not just a record.
    if (!seen.empty()) ASSERT_FALSE(restored.InsertIfAbsent(*seen.begin()));
    ASSERT_TRUE(restored.InsertIfAbsent(1000002));
    if (prefix == ids.size()) break;
    if (seen.insert(ids[prefix]).second) {
      ASSERT_TRUE(filter.InsertIfAbsent(ids[prefix]));
    } else {
      ASSERT_FALSE(filter.InsertIfAbsent(ids[prefix]));
    }
  }
}

TEST(DedupFilterTest, ClearKeepsCountersDropsMembership) {
  DedupFilter filter;
  for (int64_t id = 0; id < 5000; ++id) {
    ASSERT_TRUE(filter.InsertIfAbsent(id));
  }
  const uint64_t grows = filter.Grows();
  ASSERT_GT(grows, 0u);
  filter.Clear();
  EXPECT_EQ(filter.Size(), 0u);
  EXPECT_EQ(filter.Grows(), grows);  // cumulative, like the session stat
  for (int64_t id = 0; id < 5000; ++id) {
    ASSERT_FALSE(filter.Contains(id));
    ASSERT_TRUE(filter.InsertIfAbsent(id));
  }
}

TEST(DedupFilterTest, DeserializeRejectsMalformedBytes) {
  // Truncated payload: serialize a real filter, chop the framed bytes,
  // and reframe — the reader survives (checksum over what's there) or
  // fails; either way Deserialize must not fabricate a filter.
  DedupFilter filter;
  for (int64_t id = 0; id < 100; ++id) filter.InsertIfAbsent(id);
  SnapshotWriter writer;
  filter.Serialize(writer);
  const std::string good = writer.Serialize();

  // Flip a payload byte: the frame checksum catches it at FromBytes.
  std::string flipped = good;
  flipped[flipped.size() / 2] ^= 0x5a;
  EXPECT_FALSE(SnapshotReader::FromBytes(flipped).ok());

  // Structurally wrong payload (valid frame, nonsense fields).
  SnapshotWriter bogus;
  bogus.WriteU64(3);  // bucket count: not >= 64, not a power of two
  bogus.WriteU64(0);
  bogus.WriteU64(0);
  bogus.WriteI64Span(std::vector<int64_t>{1, 2, 3});
  auto reader = SnapshotReader::FromBytes(bogus.Serialize());
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(DedupFilter::Deserialize(*reader).ok());

  // Duplicate ids in the id list: a filter never serializes those.
  SnapshotWriter duped;
  duped.WriteU64(64);
  duped.WriteU64(0);
  duped.WriteU64(0);
  duped.WriteI64Span(std::vector<int64_t>{5, 5});
  auto reader2 = SnapshotReader::FromBytes(duped.Serialize());
  ASSERT_TRUE(reader2.ok());
  EXPECT_FALSE(DedupFilter::Deserialize(*reader2).ok());
}

}  // namespace
}  // namespace fdm
