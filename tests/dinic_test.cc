#include "flow/dinic.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fdm {
namespace {

TEST(DinicTest, SingleEdge) {
  Dinic d(2);
  const int e = d.AddEdge(0, 1, 5);
  EXPECT_EQ(d.MaxFlow(0, 1), 5);
  EXPECT_EQ(d.FlowOn(e), 5);
}

TEST(DinicTest, SeriesBottleneck) {
  Dinic d(3);
  d.AddEdge(0, 1, 10);
  const int e = d.AddEdge(1, 2, 3);
  EXPECT_EQ(d.MaxFlow(0, 2), 3);
  EXPECT_EQ(d.FlowOn(e), 3);
}

TEST(DinicTest, ParallelPathsAdd) {
  Dinic d(4);
  d.AddEdge(0, 1, 2);
  d.AddEdge(1, 3, 2);
  d.AddEdge(0, 2, 3);
  d.AddEdge(2, 3, 3);
  EXPECT_EQ(d.MaxFlow(0, 3), 5);
}

TEST(DinicTest, ClassicTextbookNetwork) {
  // CLRS-style example with a known max flow of 23.
  Dinic d(6);
  d.AddEdge(0, 1, 16);
  d.AddEdge(0, 2, 13);
  d.AddEdge(1, 2, 10);
  d.AddEdge(2, 1, 4);
  d.AddEdge(1, 3, 12);
  d.AddEdge(3, 2, 9);
  d.AddEdge(2, 4, 14);
  d.AddEdge(4, 3, 7);
  d.AddEdge(3, 5, 20);
  d.AddEdge(4, 5, 4);
  EXPECT_EQ(d.MaxFlow(0, 5), 23);
}

TEST(DinicTest, DisconnectedGivesZero) {
  Dinic d(4);
  d.AddEdge(0, 1, 5);
  d.AddEdge(2, 3, 5);
  EXPECT_EQ(d.MaxFlow(0, 3), 0);
}

TEST(DinicTest, ZeroCapacityEdge) {
  Dinic d(2);
  d.AddEdge(0, 1, 0);
  EXPECT_EQ(d.MaxFlow(0, 1), 0);
}

TEST(DinicTest, BipartiteMatchingViaUnitNetwork) {
  // 3x3 bipartite graph with a perfect matching of size 3:
  // L0-{R0,R1}, L1-{R1,R2}, L2-{R0}.
  // Nodes: 0=source, 1..3=L, 4..6=R, 7=sink.
  Dinic d(8);
  for (int l = 1; l <= 3; ++l) d.AddEdge(0, l, 1);
  for (int r = 4; r <= 6; ++r) d.AddEdge(r, 7, 1);
  d.AddEdge(1, 4, 1);
  d.AddEdge(1, 5, 1);
  d.AddEdge(2, 5, 1);
  d.AddEdge(2, 6, 1);
  d.AddEdge(3, 4, 1);
  EXPECT_EQ(d.MaxFlow(0, 7), 3);
}

TEST(DinicTest, BipartiteWithoutPerfectMatching) {
  // Both L0 and L1 connect only to R0: matching (= flow) is 1.
  Dinic d(5);  // 0=source, 1..2=L, 3=R0, 4=sink
  d.AddEdge(0, 1, 1);
  d.AddEdge(0, 2, 1);
  d.AddEdge(1, 3, 1);
  d.AddEdge(2, 3, 1);
  d.AddEdge(3, 4, 1);
  EXPECT_EQ(d.MaxFlow(0, 4), 1);
}

TEST(DinicTest, FlowConservationOnRandomNetworks) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 10;
    Dinic d(n);
    struct EdgeRec {
      int from, to, handle;
    };
    std::vector<EdgeRec> edges;
    for (int i = 0; i < 30; ++i) {
      const int from = static_cast<int>(rng.NextBounded(n));
      const int to = static_cast<int>(rng.NextBounded(n));
      if (from == to) continue;
      const int h = d.AddEdge(from, to, static_cast<int64_t>(
                                            rng.NextBounded(10)));
      edges.push_back({from, to, h});
    }
    const int64_t flow = d.MaxFlow(0, n - 1);
    EXPECT_GE(flow, 0);
    // Conservation: net flow out of each internal node is zero; net out of
    // source equals total flow.
    std::vector<int64_t> net(n, 0);
    for (const auto& e : edges) {
      const int64_t f = d.FlowOn(e.handle);
      EXPECT_GE(f, 0);
      net[static_cast<size_t>(e.from)] += f;
      net[static_cast<size_t>(e.to)] -= f;
    }
    EXPECT_EQ(net[0], flow);
    EXPECT_EQ(net[static_cast<size_t>(n - 1)], -flow);
    for (int v = 1; v + 1 < n; ++v) {
      EXPECT_EQ(net[static_cast<size_t>(v)], 0) << "node " << v;
    }
  }
}

TEST(DinicTest, MaxFlowEqualsMinCutOnLayeredNetwork) {
  // Two-layer network where the min cut is the middle layer (capacity 4).
  Dinic d(6);
  d.AddEdge(0, 1, 100);
  d.AddEdge(0, 2, 100);
  d.AddEdge(1, 3, 2);
  d.AddEdge(1, 4, 1);
  d.AddEdge(2, 4, 1);
  d.AddEdge(3, 5, 100);
  d.AddEdge(4, 5, 100);
  EXPECT_EQ(d.MaxFlow(0, 5), 4);
}

}  // namespace
}  // namespace fdm
