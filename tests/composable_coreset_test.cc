#include "core/composable_coreset.h"

#include <set>

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/gmm.h"
#include "data/synthetic.h"
#include "exact/brute_force.h"

namespace fdm {
namespace {

TEST(ComposableCoresetTest, ValidatesArguments) {
  BlobsOptions opt;
  opt.n = 50;
  opt.seed = 1;
  const Dataset ds = MakeBlobs(opt);
  EXPECT_FALSE(ComposableCoresetDm(ds, 0).ok());
  ComposableCoresetOptions zero_blocks;
  zero_blocks.num_blocks = 0;
  EXPECT_FALSE(ComposableCoresetDm(ds, 5, zero_blocks).ok());
  Dataset empty("empty", 2, 1, MetricKind::kEuclidean);
  EXPECT_FALSE(ComposableCoresetDm(empty, 5).ok());
}

TEST(ComposableCoresetTest, ReturnsKDistinctRows) {
  BlobsOptions opt;
  opt.n = 2000;
  opt.seed = 2;
  const Dataset ds = MakeBlobs(opt);
  const auto result = ComposableCoresetDm(ds, 15);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 15u);
  EXPECT_EQ(std::set<size_t>(result->begin(), result->end()).size(), 15u);
}

TEST(ComposableCoresetTest, MoreBlocksThanPointsStillWorks) {
  BlobsOptions opt;
  opt.n = 6;
  opt.seed = 3;
  const Dataset ds = MakeBlobs(opt);
  ComposableCoresetOptions options;
  options.num_blocks = 100;
  const auto result = ComposableCoresetDm(ds, 4, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 4u);
}

TEST(ComposableCoresetTest, ConstantFactorOnTinyInstances) {
  // The composed GMM-of-GMM pipeline is a constant-factor approximation;
  // assert a conservative OPT/6 across random tiny instances.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    BlobsOptions opt;
    opt.n = 15;
    opt.seed = seed + 200;
    const Dataset ds = MakeBlobs(opt);
    const ExactSolution exact = ExactDiversityMaximization(ds, 4);
    ComposableCoresetOptions options;
    options.num_blocks = 3;
    const auto result = ComposableCoresetDm(ds, 4, options);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(MinPairwiseDistance(ds, *result),
              exact.diversity / 6.0 - 1e-9)
        << "seed " << seed;
  }
}

TEST(ComposableCoresetTest, CompetitiveWithCentralGmmOnBlobs) {
  // With well-separated blobs, the distributed pipeline should land close
  // to the single-machine GMM (the coreset union preserves the blob
  // structure).
  BlobsOptions opt;
  opt.n = 5000;
  opt.num_blobs = 10;
  opt.stddev = 0.3;
  opt.seed = 5;
  const Dataset ds = MakeBlobs(opt);
  const auto distributed = ComposableCoresetDm(ds, 10);
  ASSERT_TRUE(distributed.ok());
  const auto central = GreedyGmm(ds, 10);
  const double d_div = MinPairwiseDistance(ds, *distributed);
  const double c_div = MinPairwiseDistance(ds, central);
  EXPECT_GE(d_div, 0.5 * c_div);
}

TEST(ComposableCoresetTest, DeterministicForSeed) {
  BlobsOptions opt;
  opt.n = 500;
  opt.seed = 7;
  const Dataset ds = MakeBlobs(opt);
  ComposableCoresetOptions options;
  options.shard_seed = 9;
  const auto a = ComposableCoresetDm(ds, 8, options);
  const auto b = ComposableCoresetDm(ds, 8, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(ComposableCoresetTest, BlockCountTradeoff) {
  // More blocks = less per-block context; quality may drop but must stay
  // within the constant factor. Sanity: both settings produce nonzero
  // diversity of the right cardinality.
  BlobsOptions opt;
  opt.n = 3000;
  opt.seed = 11;
  const Dataset ds = MakeBlobs(opt);
  for (const size_t blocks : {2u, 8u, 64u}) {
    ComposableCoresetOptions options;
    options.num_blocks = blocks;
    const auto result = ComposableCoresetDm(ds, 12, options);
    ASSERT_TRUE(result.ok()) << blocks;
    EXPECT_EQ(result->size(), 12u);
    EXPECT_GT(MinPairwiseDistance(ds, *result), 0.0);
  }
}

}  // namespace
}  // namespace fdm
