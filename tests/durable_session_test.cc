// Crash-recovery semantics of one durable session: snapshot + WAL tail
// replay reproduces the uninterrupted run bit-identically, for every
// registered algorithm kind, with the kill-point injected between the WAL
// append of the tail and the next snapshot.

#include "service/durable_session.h"

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "service/sink_spec.h"

namespace fdm {
namespace {

class DurableSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fdm_durable_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

Dataset TestData(int m, size_t n = 150, uint64_t seed = 31) {
  BlobsOptions opt;
  opt.n = n;
  opt.num_groups = m;
  opt.seed = seed;
  return MakeBlobs(opt);
}

std::string BoundsSuffix(const Dataset& ds) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  return " dmin=" + std::to_string(b.min) + " dmax=" + std::to_string(b.max);
}

void ExpectSameSolution(const StreamSink& a, const StreamSink& b) {
  ASSERT_EQ(a.ObservedElements(), b.ObservedElements());
  ASSERT_EQ(a.StoredElements(), b.StoredElements());
  const auto sa = a.Solve();
  const auto sb = b.Solve();
  ASSERT_EQ(sa.ok(), sb.ok());
  if (!sa.ok()) return;
  EXPECT_EQ(sa->Ids(), sb->Ids());
  EXPECT_DOUBLE_EQ(sa->diversity, sb->diversity);
  EXPECT_DOUBLE_EQ(sa->mu, sb->mu);
}

TEST_F(DurableSessionTest, BasicLifecycle) {
  const Dataset ds = TestData(2);
  const std::string spec = "algo=sfdm2 dim=2 quotas=2,2" + BoundsSuffix(ds);
  auto session = DurableSession::Create(dir_, spec);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE(session->Observe(ds.At(i)).ok());
  }
  EXPECT_EQ(session->ObservedElements(), static_cast<int64_t>(ds.size()));
  const auto solution = session->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(solution->points.size(), 4u);
  ASSERT_TRUE(session->TakeSnapshot().ok());
  EXPECT_EQ(session->SnapshotSeq(), static_cast<int64_t>(ds.size()));
}

TEST_F(DurableSessionTest, CreateTwiceFails) {
  const std::string spec = "algo=adaptive dim=2 k=3";
  ASSERT_TRUE(DurableSession::Create(dir_, spec).ok());
  EXPECT_FALSE(DurableSession::Create(dir_, spec).ok());
}

TEST_F(DurableSessionTest, OpenWithoutSessionFails) {
  EXPECT_FALSE(DurableSession::Open(dir_ + "/nothing-here").ok());
}

// The acceptance-criteria test: for every registered algorithm kind, kill
// the session between the WAL append of the tail and the next snapshot;
// recovery = snapshot + WAL tail replay must be bit-identical to an
// uninterrupted run over the same stream.
TEST_F(DurableSessionTest, CrashRecoveryBitIdenticalForEveryKind) {
  const Dataset ds2 = TestData(2);
  const Dataset ds3 = TestData(3, 150, 33);
  struct Case {
    const Dataset* data;
    std::string spec;
  };
  const std::vector<Case> cases = {
      {&ds2, "algo=streaming_dm dim=2 k=4" + BoundsSuffix(ds2)},
      {&ds2, "algo=sfdm1 dim=2 quotas=2,2" + BoundsSuffix(ds2)},
      {&ds3, "algo=sfdm2 dim=2 quotas=2,1,2" + BoundsSuffix(ds3)},
      {&ds2, "algo=adaptive dim=2 k=4"},
      {&ds2, "algo=sharded dim=2 k=4 shards=3" + BoundsSuffix(ds2)},
      {&ds2, "algo=sliding_window dim=2 k=4 window=60 checkpoints=3" +
                 BoundsSuffix(ds2)},
  };
  for (size_t c = 0; c < cases.size(); ++c) {
    SCOPED_TRACE(cases[c].spec);
    const Dataset& ds = *cases[c].data;
    const std::string dir = dir_ + "/case" + std::to_string(c);

    // Uninterrupted reference run over the full stream.
    auto reference = MakeSinkFromSpec(cases[c].spec);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (size_t i = 0; i < ds.size(); ++i) {
      (*reference)->Observe(ds.At(i));
    }

    // Durable run: snapshot at the midpoint, then a WAL-only tail, then
    // the kill-point — the DurableSession object is dropped with records
    // appended to the WAL but NOT captured by any snapshot.
    {
      auto session = DurableSession::Create(dir, cases[c].spec);
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      const size_t mid = ds.size() / 2;
      for (size_t i = 0; i < mid; ++i) {
        ASSERT_TRUE(session->Observe(ds.At(i)).ok());
      }
      ASSERT_TRUE(session->TakeSnapshot().ok());
      for (size_t i = mid; i < ds.size(); ++i) {
        ASSERT_TRUE(session->Observe(ds.At(i)).ok());
      }
      EXPECT_LT(session->SnapshotSeq(),
                static_cast<int64_t>(ds.size()));  // the tail is WAL-only
    }  // kill-point: no snapshot of the tail

    auto recovered = DurableSession::Open(dir);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ExpectSameSolution(**reference, recovered->sink());
  }
}

TEST_F(DurableSessionTest, PowerLossTornTailRecoversToLastIntactRecord) {
  // Harder than the graceful kill above: after the process dies, the WAL's
  // final record is torn (power loss mid-write). Recovery must come back
  // bit-identical to an uninterrupted run over the stream MINUS the torn
  // record.
  const Dataset ds = TestData(2, 120, 39);
  const std::string spec = "algo=sfdm2 dim=2 quotas=2,2" + BoundsSuffix(ds);
  {
    auto session = DurableSession::Create(dir_, spec);
    ASSERT_TRUE(session.ok());
    for (size_t i = 0; i < ds.size(); ++i) {
      ASSERT_TRUE(session->Observe(ds.At(i)).ok());
    }
  }
  // Tear the newest segment's tail by a few bytes.
  std::string newest;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/wal")) {
    const std::string path = entry.path().string();
    if (path > newest) newest = path;
  }
  ASSERT_FALSE(newest.empty());
  std::filesystem::resize_file(newest,
                               std::filesystem::file_size(newest) - 3);

  auto recovered = DurableSession::Open(dir_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->ObservedElements(),
            static_cast<int64_t>(ds.size()) - 1);
  auto reference = MakeSinkFromSpec(spec);
  ASSERT_TRUE(reference.ok());
  for (size_t i = 0; i + 1 < ds.size(); ++i) {
    (*reference)->Observe(ds.At(i));
  }
  ExpectSameSolution(**reference, recovered->sink());
}

TEST_F(DurableSessionTest, RejectsWrongDimensionBeforeTheWal) {
  const Dataset ds = TestData(2, 60, 40);
  const std::string spec = "algo=sfdm2 dim=2 quotas=2,2" + BoundsSuffix(ds);
  auto session = DurableSession::Create(dir_, spec);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Observe(ds.At(0)).ok());
  const std::vector<double> short_coords = {1.0};
  const Status rejected =
      session->Observe(StreamPoint{99, 0, short_coords});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  // The malformed point must not have reached the WAL: recovery sees only
  // the good record.
  EXPECT_EQ(session->ObservedElements(), 1);
}

TEST_F(DurableSessionTest, RecoveryFallsBackWhenNewestSnapshotIsCorrupt) {
  const Dataset ds = TestData(1);
  const std::string spec = "algo=streaming_dm dim=2 k=4" + BoundsSuffix(ds);
  {
    auto session = DurableSession::Create(dir_, spec);
    ASSERT_TRUE(session.ok());
    for (size_t i = 0; i < ds.size(); ++i) {
      ASSERT_TRUE(session->Observe(ds.At(i)).ok());
    }
    ASSERT_TRUE(session->TakeSnapshot().ok());
  }
  // Corrupt the (only) snapshot file: recovery must fall back to a fresh
  // sink + full WAL replay and still reach the same state.
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/snap")) {
    std::filesystem::resize_file(
        entry.path(), std::filesystem::file_size(entry.path()) / 2);
  }
  auto recovered = DurableSession::Open(dir_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto reference = MakeSinkFromSpec(spec);
  ASSERT_TRUE(reference.ok());
  for (size_t i = 0; i < ds.size(); ++i) (*reference)->Observe(ds.At(i));
  ExpectSameSolution(**reference, recovered->sink());
}

TEST_F(DurableSessionTest, FallbackToOlderSnapshotAfterNewestCorrupts) {
  // Two snapshots are retained (keep_snapshots = 2). The WAL must keep
  // everything after the OLDEST retained snapshot, so that when the
  // newest snapshot fails its checksum, recovery rolls forward from the
  // older one across the full gap — even with segment rotation pruning in
  // between.
  const Dataset ds = TestData(1, 300, 37);
  DurableSessionOptions options;
  options.wal.segment_bytes = 2048;  // rotation makes pruning real
  const std::string spec = "algo=streaming_dm dim=2 k=4" + BoundsSuffix(ds);
  auto reference = MakeSinkFromSpec(spec);
  ASSERT_TRUE(reference.ok());
  {
    auto session = DurableSession::Create(dir_, spec, options);
    ASSERT_TRUE(session.ok());
    for (size_t i = 0; i < ds.size(); ++i) {
      (*reference)->Observe(ds.At(i));
      ASSERT_TRUE(session->Observe(ds.At(i)).ok());
      if (i + 1 == 100 || i + 1 == 200) {
        ASSERT_TRUE(session->TakeSnapshot().ok());
      }
    }
  }
  // Corrupt the newest snapshot (largest seq; zero-padded names sort).
  std::string newest;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/snap")) {
    const std::string path = entry.path().string();
    if (path > newest) newest = path;
  }
  ASSERT_FALSE(newest.empty());
  std::filesystem::resize_file(newest,
                               std::filesystem::file_size(newest) / 2);

  auto recovered = DurableSession::Open(dir_, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->SnapshotSeq(), 100);  // the older snapshot won
  ExpectSameSolution(**reference, recovered->sink());
}

TEST_F(DurableSessionTest, AutoSnapshotHonorsCadence) {
  const Dataset ds = TestData(1);
  DurableSessionOptions options;
  options.snapshot_every = 40;
  const std::string spec = "algo=streaming_dm dim=2 k=3" + BoundsSuffix(ds);
  auto session = DurableSession::Create(dir_, spec, options);
  ASSERT_TRUE(session.ok());
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(session->Observe(ds.At(i)).ok());
  }
  // 100 observations at cadence 40 → snapshots at 40 and 80.
  EXPECT_EQ(session->SnapshotSeq(), 80);
  EXPECT_EQ(session->UnsnapshottedRecords(), 20);
}

TEST_F(DurableSessionTest, SnapshotPrunesWalSegments) {
  const Dataset ds = TestData(1, 400, 35);
  DurableSessionOptions options;
  options.wal.segment_bytes = 2048;  // force rotations
  const std::string spec = "algo=streaming_dm dim=2 k=3" + BoundsSuffix(ds);
  auto session = DurableSession::Create(dir_, spec, options);
  ASSERT_TRUE(session.ok());
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE(session->Observe(ds.At(i)).ok());
  }
  size_t segments_before = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/wal")) {
    ++segments_before;
  }
  ASSERT_GT(segments_before, 2u);
  ASSERT_TRUE(session->TakeSnapshot().ok());
  size_t segments_after = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/wal")) {
    ++segments_after;
  }
  // The snapshot covers the whole log; only the active segment survives.
  EXPECT_EQ(segments_after, 1u);
}

}  // namespace
}  // namespace fdm
