#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fdm {
namespace {

Dataset TestData(int m, uint64_t seed = 111, size_t n = 600) {
  BlobsOptions opt;
  opt.n = n;
  opt.num_groups = m;
  opt.seed = seed;
  return MakeBlobs(opt);
}

RunConfig ConfigFor(const Dataset& ds, AlgorithmKind algo, int k) {
  RunConfig config;
  config.algorithm = algo;
  config.constraint = EqualRepresentation(k, ds.num_groups()).value();
  config.epsilon = 0.1;
  config.bounds = BoundsForExperiments(ds);
  return config;
}

TEST(AlgorithmNameTest, AllNamed) {
  EXPECT_EQ(AlgorithmName(AlgorithmKind::kGmm), "GMM");
  EXPECT_EQ(AlgorithmName(AlgorithmKind::kFairSwap), "FairSwap");
  EXPECT_EQ(AlgorithmName(AlgorithmKind::kFairFlow), "FairFlow");
  EXPECT_EQ(AlgorithmName(AlgorithmKind::kFairGmm), "FairGMM");
  EXPECT_EQ(AlgorithmName(AlgorithmKind::kSfdm1), "SFDM1");
  EXPECT_EQ(AlgorithmName(AlgorithmKind::kSfdm2), "SFDM2");
}

TEST(RunAlgorithmTest, EveryAlgorithmProducesKElements) {
  const Dataset ds = TestData(2);
  for (const AlgorithmKind algo :
       {AlgorithmKind::kGmm, AlgorithmKind::kFairSwap, AlgorithmKind::kFairFlow,
        AlgorithmKind::kFairGmm, AlgorithmKind::kSfdm1,
        AlgorithmKind::kSfdm2}) {
    const RunResult r = RunAlgorithm(ds, ConfigFor(ds, algo, 8));
    ASSERT_TRUE(r.ok) << AlgorithmName(algo) << ": " << r.error;
    EXPECT_EQ(r.selected_ids.size(), 8u) << AlgorithmName(algo);
    EXPECT_GT(r.diversity, 0.0) << AlgorithmName(algo);
    EXPECT_GE(r.total_time_sec, 0.0);
  }
}

TEST(RunAlgorithmTest, StreamingMetricsPopulated) {
  const Dataset ds = TestData(2);
  const RunResult r = RunAlgorithm(ds, ConfigFor(ds, AlgorithmKind::kSfdm1, 6));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.stream_time_sec, 0.0);
  EXPECT_GE(r.post_time_sec, 0.0);
  EXPECT_GT(r.avg_update_ms, 0.0);
  EXPECT_GT(r.stored_elements, 0u);
  EXPECT_LT(r.stored_elements, ds.size());
  EXPECT_NEAR(r.total_time_sec, r.stream_time_sec + r.post_time_sec, 1e-9);
}

TEST(RunAlgorithmTest, OfflineStoresWholeDataset) {
  const Dataset ds = TestData(2);
  const RunResult r =
      RunAlgorithm(ds, ConfigFor(ds, AlgorithmKind::kFairSwap, 6));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.stored_elements, ds.size());
  EXPECT_DOUBLE_EQ(r.stream_time_sec, 0.0);
}

TEST(RunAlgorithmTest, PermutationSeedChangesStreamingOutcome) {
  const Dataset ds = TestData(2, 117, 1500);
  RunConfig config = ConfigFor(ds, AlgorithmKind::kSfdm2, 10);
  config.permutation_seed = 1;
  const RunResult a = RunAlgorithm(ds, config);
  config.permutation_seed = 2;
  const RunResult b = RunAlgorithm(ds, config);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  // Different stream orders usually select different elements.
  EXPECT_NE(a.selected_ids, b.selected_ids);
}

TEST(RunAlgorithmTest, DeterministicForFixedSeed) {
  const Dataset ds = TestData(3);
  RunConfig config = ConfigFor(ds, AlgorithmKind::kSfdm2, 9);
  config.permutation_seed = 5;
  const RunResult a = RunAlgorithm(ds, config);
  const RunResult b = RunAlgorithm(ds, config);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.selected_ids, b.selected_ids);
  EXPECT_DOUBLE_EQ(a.diversity, b.diversity);
}

TEST(RunRepeatedTest, AveragesOverRuns) {
  const Dataset ds = TestData(2);
  const AggregateResult agg =
      RunRepeated(ds, ConfigFor(ds, AlgorithmKind::kSfdm1, 6), 3);
  EXPECT_EQ(agg.total_runs, 3);
  EXPECT_EQ(agg.ok_runs, 3);
  EXPECT_TRUE(agg.error.empty());
  EXPECT_GT(agg.diversity, 0.0);
  EXPECT_GT(agg.stored_elements, 0.0);
}

TEST(RunRepeatedTest, ReportsFailuresWithoutPoisoningMeans) {
  // FairSwap on a 3-group dataset fails every run; the aggregate must
  // carry the error and zero ok_runs.
  const Dataset ds = TestData(3);
  const AggregateResult agg =
      RunRepeated(ds, ConfigFor(ds, AlgorithmKind::kFairSwap, 6), 2);
  EXPECT_EQ(agg.ok_runs, 0);
  EXPECT_FALSE(agg.error.empty());
}

TEST(RunAlgorithmTest, SolveEveryTraceMatchesPlainRun) {
  // The interleaved-query trace mode must not change the final solution
  // (Solve is anytime and the SolveCache is exact) and must report its
  // mid-stream query activity.
  const Dataset ds = TestData(2);
  RunConfig config = ConfigFor(ds, AlgorithmKind::kSfdm2, 9);
  const RunResult plain = RunAlgorithm(ds, config);
  config.solve_every = 7;
  const RunResult traced = RunAlgorithm(ds, config);
  ASSERT_TRUE(plain.ok);
  ASSERT_TRUE(traced.ok);
  EXPECT_EQ(plain.selected_ids, traced.selected_ids);
  EXPECT_DOUBLE_EQ(plain.diversity, traced.diversity);
  EXPECT_EQ(traced.intermediate_solves, (ds.size() + 6) / 7);
  EXPECT_LE(traced.solve_cache_hits, traced.intermediate_solves);
  EXPECT_EQ(plain.intermediate_solves, 0u);
  // The pooled latency histogram holds one sample per trace solve (real
  // in every build configuration — it rides the shared histogram type,
  // not the registry).
  EXPECT_EQ(traced.trace_solve_hist.count, traced.intermediate_solves);
  EXPECT_GE(traced.trace_solve_hist.Percentile(0.99),
            traced.trace_solve_hist.Percentile(0.5));
  EXPECT_EQ(plain.trace_solve_hist.count, 0u);
}

TEST(RunAlgorithmTest, ReplicaDrillVerifiesBitIdenticalFollower) {
  const Dataset ds = TestData(2, 117, 400);
  for (const AlgorithmKind algo :
       {AlgorithmKind::kSfdm2, AlgorithmKind::kStreamingDm}) {
    RunConfig config = ConfigFor(ds, algo, 6);
    config.replica_drill = true;
    const RunResult r = RunAlgorithm(ds, config);
    ASSERT_TRUE(r.ok) << AlgorithmName(algo) << ": " << r.error;
    ASSERT_TRUE(r.replica_checked)
        << AlgorithmName(algo) << ": " << r.replica_error;
    EXPECT_TRUE(r.replica_identical) << AlgorithmName(algo);
    EXPECT_EQ(r.replica_final_lag, 0) << AlgorithmName(algo);
    EXPECT_GT(r.replica_catchup_points_per_sec, 0.0) << AlgorithmName(algo);
  }
  // Offline kinds have no sink-spec mapping: the drill reports itself
  // unchecked instead of pretending to have verified anything.
  RunConfig offline = ConfigFor(ds, AlgorithmKind::kFairSwap, 6);
  offline.replica_drill = true;
  const RunResult r = RunAlgorithm(ds, offline);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.replica_checked);
}

TEST(BoundsForExperimentsTest, PositiveAndOrdered) {
  const Dataset ds = TestData(2);
  const DistanceBounds b = BoundsForExperiments(ds);
  EXPECT_GT(b.min, 0.0);
  EXPECT_GT(b.max, b.min);
}

}  // namespace
}  // namespace fdm
