#include "util/stringutil.h"

#include <gtest/gtest.h>

namespace fdm {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoSeparator) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("none"), "none");
}

TEST(JoinTest, Joins) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({"one"}, ", "), "one");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.142");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-0.5, 2), "-0.50");
  EXPECT_EQ(FormatDouble(1000.0, 1), "1000.0");
}

TEST(FormatCountTest, EngineeringSuffixes) {
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1.00K");
  EXPECT_EQ(FormatCount(48842), "48.84K");
  EXPECT_EQ(FormatCount(2426116), "2.43M");
  EXPECT_EQ(FormatCount(1.5e9), "1.50G");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(PadTest, LeftAndRight) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace fdm
