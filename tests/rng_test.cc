#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace fdm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespected) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(-2.5, 4.0);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 4.0);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(31);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GammaMeanMatchesShape) {
  // E[Gamma(shape, 1)] = shape.
  for (const double shape : {0.1, 0.5, 1.0, 3.0, 9.0}) {
    Rng rng(41);
    constexpr int kDraws = 50000;
    double sum = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      const double g = rng.NextGamma(shape);
      ASSERT_GT(g, 0.0) << "gamma deviates must be positive";
      sum += g;
    }
    EXPECT_NEAR(sum / kDraws, shape, 0.05 * std::max(1.0, shape))
        << "shape=" << shape;
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  auto shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleDeterministic) {
  std::vector<int> a{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> b = a;
  Rng r1(77);
  Rng r2(77);
  r1.Shuffle(a);
  r2.Shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(3);
  Rng child = parent.Fork();
  // The child stream should not replicate the parent stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace fdm
