// TCP front end behavior (src/net/tcp_server.h): admission control under
// cold-SOLVE floods and per-session rate limits, framing units, and the
// socket replication transport end-to-end (a follower tailing a primary
// over `tcp://`, no shared filesystem path used for fetches).

#include "net/tcp_server.h"

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "net/dispatch.h"
#include "net/frame.h"
#include "net/net_client.h"
#include "replica/replica_manager.h"
#include "service/session_manager.h"

namespace fdm {
namespace {

Dataset TestData(size_t n, uint64_t seed = 91) {
  BlobsOptions opt;
  opt.n = n;
  opt.num_groups = 2;
  opt.seed = seed;
  return MakeBlobs(opt);
}

std::string SpecFor(const Dataset& ds) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  return "algo=sfdm2 dim=2 quotas=2,2 dmin=" + std::to_string(b.min) +
         " dmax=" + std::to_string(b.max);
}

/// Feeds `ds` into session `name` through batched OBSERVEB requests.
void IngestAll(SessionManager& manager, const std::string& name,
               const Dataset& ds) {
  std::vector<StreamPoint> points;
  points.reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) points.push_back(ds.At(i));
  ASSERT_TRUE(manager.Ingest(name, points, /*as_batch=*/true).ok());
}

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/fdm_net_server_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::unique_ptr<SessionManager> NewManager() {
    SessionManagerOptions options;
    options.root_dir = root_;
    auto manager = SessionManager::Create(options);
    EXPECT_TRUE(manager.ok()) << manager.status().ToString();
    return std::move(manager.value());
  }

  std::string root_;
};

TEST(FrameTest, RoundTripAndLimits) {
  std::string wire;
  net::AppendFrame("SOLVE s\n", &wire);
  net::AppendFrame("", &wire);  // empty frames are legal
  std::string_view payload;
  size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &payload, &consumed),
            net::FrameParse::kFrame);
  EXPECT_EQ(payload, "SOLVE s\n");
  std::string_view rest = std::string_view(wire).substr(consumed);
  ASSERT_EQ(net::ParseFrame(rest, &payload, &consumed),
            net::FrameParse::kFrame);
  EXPECT_EQ(payload, "");

  // Truncated header / payload: need more, never a false parse.
  EXPECT_EQ(net::ParseFrame(wire.substr(0, 3), &payload, &consumed),
            net::FrameParse::kNeedMore);
  EXPECT_EQ(net::ParseFrame(wire.substr(0, 6), &payload, &consumed),
            net::FrameParse::kNeedMore);

  // Oversized announced length is a protocol error.
  const std::string huge{'\xff', '\xff', '\xff', '\xff'};
  EXPECT_EQ(net::ParseFrame(huge, &payload, &consumed),
            net::FrameParse::kError);
}

TEST(ParseTcpAddressTest, Forms) {
  std::string host;
  int port = 0;
  EXPECT_TRUE(net::ParseTcpAddress("tcp://127.0.0.1:9090", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9090);
  EXPECT_FALSE(net::ParseTcpAddress("/some/dir", &host, &port));
  EXPECT_FALSE(net::ParseTcpAddress("tcp://host", &host, &port));
  EXPECT_FALSE(net::ParseTcpAddress("tcp://host:", &host, &port));
  EXPECT_FALSE(net::ParseTcpAddress("tcp://host:0", &host, &port));
  EXPECT_FALSE(net::ParseTcpAddress("tcp://host:999999", &host, &port));
  EXPECT_FALSE(net::ParseTcpAddress("tcp://:80", &host, &port));
}

TEST_F(NetServerTest, ColdSolveFloodShedsWhileCachedTrafficFlows) {
  // With cold_solve_cap=1 and the single slot held (the streaming sink
  // keeps a bounded coreset, so even a huge session's cold solve finishes
  // in sub-millisecond time — an externally claimed slot is the only
  // deterministic way to model a solve in flight), every cold SOLVE must
  // shed immediately while cached traffic keeps flowing.
  const Dataset big = TestData(400);
  const Dataset small = TestData(80, 17);
  auto manager = NewManager();
  ASSERT_TRUE(manager->CreateSession("big", SpecFor(big)).ok());
  ASSERT_TRUE(manager->CreateSession("small", SpecFor(small)).ok());
  IngestAll(*manager, "big", big);
  IngestAll(*manager, "small", small);
  ASSERT_TRUE(manager->Solve("small").ok());  // warm the small cache

  net::RequestDispatcher dispatcher(manager.get(), root_);
  net::TcpServerOptions options;
  options.admission.cold_solve_cap = 1;
  options.solve_workers = 2;
  auto server = net::TcpServer::Start(&dispatcher, std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = (*server)->port();

  ASSERT_TRUE((*server)->admission().TryEnterColdSolve());  // hold the slot

  // A flood of cold SOLVEs — `big` was never solved, so it classifies
  // cache-missing — sheds instead of queueing behind the held slot.
  auto flood = net::NetClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(flood.ok());
  for (int i = 0; i < 8; ++i) {
    auto reply = flood->Call("SOLVE big");
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(*reply, "ERR shed cold solve capacity\n");
  }
  EXPECT_GE((*server)->admission().cold_shed_total(), 8u);

  // The cached session answers regardless of the cold flood.
  auto cached = net::NetClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(cached.ok());
  auto small_reply = cached->Call("SOLVE small");
  ASSERT_TRUE(small_reply.ok());
  EXPECT_EQ(small_reply->rfind("OK div=", 0), 0u) << *small_reply;

  // Releasing the slot restores cold-solve service on the same
  // connection — shed is per-request back-pressure, not a ban.
  (*server)->admission().LeaveColdSolve();
  auto big_reply = flood->Call("SOLVE big");
  ASSERT_TRUE(big_reply.ok());
  EXPECT_EQ(big_reply->rfind("OK div=", 0), 0u) << *big_reply;
  // Now cached on the primary: the same SOLVE no longer classifies cold,
  // so it succeeds even with the capacity re-claimed.
  ASSERT_TRUE((*server)->admission().TryEnterColdSolve());
  auto warm_reply = flood->Call("SOLVE big");
  ASSERT_TRUE(warm_reply.ok());
  EXPECT_EQ(*warm_reply, *big_reply);
  (*server)->admission().LeaveColdSolve();
}

TEST_F(NetServerTest, SessionRateLimitShedsAndPreservesFraming) {
  const Dataset ds = TestData(60, 29);
  auto manager = NewManager();
  ASSERT_TRUE(manager->CreateSession("s", SpecFor(ds)).ok());

  net::RequestDispatcher dispatcher(manager.get(), root_);
  net::TcpServerOptions options;
  options.admission.session_rate = 0.001;  // effectively: burst only
  options.admission.session_burst = 1.0;
  auto server = net::TcpServer::Start(&dispatcher, std::move(options));
  ASSERT_TRUE(server.ok());

  auto client = net::NetClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  // One pipelined frame: the first session request spends the only
  // token; the shed OBSERVEB must still drain its two payload lines so
  // LIST parses as a command.
  ASSERT_TRUE(
      client->Send("STATS s\nOBSERVEB s 2\n1 0 1 2\n2 0 3 4\nLIST\n").ok());
  auto first = client->Recv();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->rfind("OK observed=0", 0), 0u) << *first;
  auto second = client->Recv();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "ERR shed session 's' over rate limit\n");
  auto third = client->Recv();
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, "OK s\n");
  EXPECT_GE((*server)->admission().rate_shed_total(), 1u);
  // The shed batch was never applied.
  auto stats = manager->Stats("s");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->observed, 0);
}

TEST_F(NetServerTest, SocketReplicationFollowsPrimaryOverTcp) {
  const Dataset ds = TestData(240, 37);
  auto manager = NewManager();
  ASSERT_TRUE(manager->CreateSession("rep", SpecFor(ds)).ok());
  const size_t half = ds.size() / 2;
  std::vector<StreamPoint> first_half;
  for (size_t i = 0; i < half; ++i) first_half.push_back(ds.At(i));
  ASSERT_TRUE(manager->Ingest("rep", first_half, true).ok());
  ASSERT_TRUE(manager->Snapshot("rep").ok());  // bootstrap point
  std::vector<StreamPoint> second_half;
  for (size_t i = half; i < ds.size(); ++i) second_half.push_back(ds.At(i));
  ASSERT_TRUE(manager->Ingest("rep", second_half, true).ok());  // WAL tail
  // A follower replicates durable state: WAL appends are buffered until
  // the next fsync point, so flush them via a graceful close (the session
  // reloads lazily on next use) before serving the manifest.
  ASSERT_TRUE(manager->DropResident("rep").ok());

  net::RequestDispatcher dispatcher(manager.get(), root_);
  auto server = net::TcpServer::Start(&dispatcher, {});
  ASSERT_TRUE(server.ok());

  ReplicaManagerOptions options;
  options.primary_root =
      "tcp://127.0.0.1:" + std::to_string((*server)->port());
  options.poll_ms = 0;  // poll on demand only
  auto replicas = ReplicaManager::Create(options);
  ASSERT_TRUE(replicas.ok()) << replicas.status().ToString();

  // Discovery over LIST, bootstrap over RFETCHSNAP, tail over RFETCHWAL.
  const auto names = (*replicas)->SessionNames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "rep");
  auto follower_solve = (*replicas)->Solve("rep");
  ASSERT_TRUE(follower_solve.ok()) << follower_solve.status().ToString();
  EXPECT_EQ(follower_solve->applied_seq, static_cast<int64_t>(ds.size()));
  EXPECT_FALSE(follower_solve->stale);

  auto primary_solve = manager->Solve("rep");
  ASSERT_TRUE(primary_solve.ok());
  EXPECT_EQ(follower_solve->solution.Ids(), primary_solve->Ids());
  EXPECT_DOUBLE_EQ(follower_solve->solution.diversity,
                   primary_solve->diversity);

  // New primary writes flow to the follower on the next poll.
  const Dataset more = TestData(40, 41);
  std::vector<StreamPoint> extra;
  for (size_t i = 0; i < more.size(); ++i) {
    StreamPoint p = more.At(i);
    p.id += 1000000;  // distinct ids
    extra.push_back(p);
  }
  ASSERT_TRUE(manager->Ingest("rep", extra, true).ok());
  ASSERT_TRUE(manager->DropResident("rep").ok());  // make the tail durable
  auto applied = (*replicas)->Poll("rep");
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, static_cast<int64_t>(extra.size()));
  auto lag = (*replicas)->Stats("rep");
  ASSERT_TRUE(lag.ok());
  EXPECT_EQ(lag->lag, 0);

  // The follower survives a primary front-end restart: stop the server,
  // a poll fails, restart on a new port is NOT transparent (the address
  // changed) — but the same address coming back is. Simulate with a
  // second server on the same dispatcher and the follower's next call
  // reconnecting after the first connection died.
  const int old_port = (*server)->port();
  (*server)->Stop();
  auto down = (*replicas)->Poll("rep");
  EXPECT_FALSE(down.ok());  // primary unreachable is an error, not a hang
  net::TcpServerOptions reopen;
  reopen.port = old_port;
  auto revived = net::TcpServer::Start(&dispatcher, std::move(reopen));
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  auto healed = (*replicas)->Poll("rep");
  EXPECT_TRUE(healed.ok()) << healed.status().ToString();
}

TEST_F(NetServerTest, QuitOverTcpClosesOnlyThatConnection) {
  const Dataset ds = TestData(60, 43);
  auto manager = NewManager();
  ASSERT_TRUE(manager->CreateSession("s", SpecFor(ds)).ok());
  net::RequestDispatcher dispatcher(manager.get(), root_);
  auto server = net::TcpServer::Start(&dispatcher, {});
  ASSERT_TRUE(server.ok());

  auto a = net::NetClient::Connect("127.0.0.1", (*server)->port());
  auto b = net::NetClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto quit_reply = a->Call("QUIT");
  ASSERT_TRUE(quit_reply.ok());
  EXPECT_EQ(*quit_reply, "OK\n");  // SnapshotAll succeeded
  // The server closed A after the reply...
  EXPECT_FALSE(a->Recv().ok());
  // ...but B (and the server) are still alive.
  auto list = b->Call("LIST");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(*list, "OK s\n");
}

}  // namespace
}  // namespace fdm
