#include "util/union_find.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fdm {
namespace {

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5);
  EXPECT_EQ(uf.num_elements(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SizeOf(i), 1);
  }
}

TEST(UnionFindTest, UnionMergesAndReportsNew) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 3);
  EXPECT_EQ(uf.SizeOf(1), 2);
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(4, 5);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_TRUE(uf.Connected(2, 0));
  EXPECT_FALSE(uf.Connected(0, 4));
  EXPECT_EQ(uf.num_sets(), 3);  // {0,1,2}, {3}, {4,5}
  EXPECT_EQ(uf.SizeOf(0), 3);
}

TEST(UnionFindTest, ChainMergeAll) {
  constexpr int kN = 1000;
  UnionFind uf(kN);
  for (int i = 0; i + 1 < kN; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1);
  EXPECT_EQ(uf.SizeOf(kN / 2), kN);
  EXPECT_TRUE(uf.Connected(0, kN - 1));
}

TEST(UnionFindTest, DenseLabelsOrderOfFirstAppearance) {
  UnionFind uf(5);
  uf.Union(3, 4);
  uf.Union(0, 2);
  const auto labels = uf.DenseLabels();
  // Element 0 appears first -> label 0; element 1 -> label 1;
  // element 2 is connected to 0 -> label 0; 3 -> label 2; 4 -> label 2.
  EXPECT_EQ(labels, (std::vector<int>{0, 1, 0, 2, 2}));
}

TEST(UnionFindTest, DenseLabelsCountMatchesNumSets) {
  Rng rng(9);
  UnionFind uf(50);
  for (int i = 0; i < 30; ++i) {
    uf.Union(static_cast<int>(rng.NextBounded(50)),
             static_cast<int>(rng.NextBounded(50)));
  }
  const auto labels = uf.DenseLabels();
  int max_label = -1;
  for (const int l : labels) max_label = std::max(max_label, l);
  EXPECT_EQ(max_label + 1, uf.num_sets());
  // Labels agree with connectivity on random pairs.
  for (int t = 0; t < 200; ++t) {
    const int a = static_cast<int>(rng.NextBounded(50));
    const int b = static_cast<int>(rng.NextBounded(50));
    EXPECT_EQ(labels[static_cast<size_t>(a)] == labels[static_cast<size_t>(b)],
              uf.Connected(a, b));
  }
}

TEST(UnionFindTest, EmptyStructure) {
  UnionFind uf(0);
  EXPECT_EQ(uf.num_sets(), 0);
  EXPECT_TRUE(uf.DenseLabels().empty());
}

}  // namespace
}  // namespace fdm
