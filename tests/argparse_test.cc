#include "util/argparse.h"

#include <gtest/gtest.h>

namespace fdm {
namespace {

ArgParser Parse(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParserTest, EqualsSyntax) {
  auto p = Parse({"prog", "--k=20", "--epsilon=0.1"});
  EXPECT_EQ(p.GetInt("k", 0), 20);
  EXPECT_DOUBLE_EQ(p.GetDouble("epsilon", 0.0), 0.1);
}

TEST(ArgParserTest, SpaceSyntax) {
  auto p = Parse({"prog", "--runs", "5"});
  EXPECT_EQ(p.GetInt("runs", 0), 5);
}

TEST(ArgParserTest, BareFlagIsTrue) {
  auto p = Parse({"prog", "--full"});
  EXPECT_TRUE(p.Has("full"));
  EXPECT_TRUE(p.GetBool("full", false));
}

TEST(ArgParserTest, AbsentFlagUsesDefault) {
  auto p = Parse({"prog"});
  EXPECT_FALSE(p.Has("full"));
  EXPECT_EQ(p.GetInt("k", 42), 42);
  EXPECT_DOUBLE_EQ(p.GetDouble("eps", 2.5), 2.5);
  EXPECT_EQ(p.GetString("name", "dflt"), "dflt");
  EXPECT_FALSE(p.GetBool("full", false));
  EXPECT_TRUE(p.GetBool("full", true));
}

TEST(ArgParserTest, ExplicitBooleans) {
  auto p = Parse({"prog", "--a=true", "--b=false", "--c=1", "--d=0",
                  "--e=yes", "--f=no"});
  EXPECT_TRUE(p.GetBool("a", false));
  EXPECT_FALSE(p.GetBool("b", true));
  EXPECT_TRUE(p.GetBool("c", false));
  EXPECT_FALSE(p.GetBool("d", true));
  EXPECT_TRUE(p.GetBool("e", false));
  EXPECT_FALSE(p.GetBool("f", true));
}

TEST(ArgParserTest, PositionalArguments) {
  auto p = Parse({"prog", "input.csv", "--k=3", "output.csv"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.csv");
  EXPECT_EQ(p.positional()[1], "output.csv");
  EXPECT_EQ(p.program(), "prog");
}

TEST(ArgParserTest, MalformedNumberFallsBackToDefault) {
  auto p = Parse({"prog", "--k=abc", "--eps=x.y"});
  EXPECT_EQ(p.GetInt("k", 7), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("eps", 0.25), 0.25);
}

TEST(ArgParserTest, NegativeNumbers) {
  auto p = Parse({"prog", "--lo=-10", "--scale=-0.5"});
  EXPECT_EQ(p.GetInt("lo", 0), -10);
  EXPECT_DOUBLE_EQ(p.GetDouble("scale", 0.0), -0.5);
}

TEST(ArgParserTest, LastOccurrenceWins) {
  auto p = Parse({"prog", "--k=1", "--k=2"});
  EXPECT_EQ(p.GetInt("k", 0), 2);
}

TEST(ArgParserTest, ValueStartingWithDashesIsNotConsumed) {
  // `--a` followed by `--b`: `--a` must be boolean, not swallow `--b`.
  auto p = Parse({"prog", "--a", "--b=3"});
  EXPECT_TRUE(p.GetBool("a", false));
  EXPECT_EQ(p.GetInt("b", 0), 3);
}

}  // namespace
}  // namespace fdm
