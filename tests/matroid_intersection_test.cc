#include "core/matroid_intersection.h"

#include <gtest/gtest.h>

#include "exact/brute_force.h"
#include "util/rng.h"

namespace fdm {
namespace {

TEST(MatroidIntersectionTest, EmptyGround) {
  const PartitionMatroid m1(std::vector<int>{}, {0});
  const PartitionMatroid m2(std::vector<int>{}, {0});
  EXPECT_TRUE(MaxCardinalityMatroidIntersection(m1, m2, {}).empty());
}

TEST(MatroidIntersectionTest, SimpleCrossPartition) {
  // M1 parts {0,1}/{2,3} caps 1; M2 parts {0,2}/{1,3} caps 1 → max size 2.
  const PartitionMatroid m1({0, 0, 1, 1}, {1, 1});
  const PartitionMatroid m2({0, 1, 0, 1}, {1, 1});
  const auto result = MaxCardinalityMatroidIntersection(m1, m2, {});
  EXPECT_EQ(result.size(), 2u);
  EXPECT_TRUE(m1.IsIndependent(result));
  EXPECT_TRUE(m2.IsIndependent(result));
}

TEST(MatroidIntersectionTest, RequiresAugmentingPaths) {
  // A case where pure greedy gets stuck and a genuine augmentation (swap)
  // is needed:
  //   elements: 0,1,2.  M1 parts: {0,1} cap 1, {2} cap 1.
  //   M2 parts: {0} cap 1, {1,2} cap 1.
  // Start with initial = {1}: V1 excludes 0 (part busy), V2 excludes 2.
  // Max common independent set is {0, 2}; Cunningham must exchange 1 out.
  const PartitionMatroid m1({0, 0, 1}, {1, 1});
  const PartitionMatroid m2({0, 1, 1}, {1, 1});
  const std::vector<int> initial{1};
  const auto result = MaxCardinalityMatroidIntersection(m1, m2, initial);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_TRUE(m1.IsIndependent(result));
  EXPECT_TRUE(m2.IsIndependent(result));
  EXPECT_EQ(result, (std::vector<int>{0, 2}));
}

TEST(MatroidIntersectionTest, WarmStartElementsCanBeSwappedOut) {
  // Same structure, bigger: warm start occupies the "wrong" elements and
  // only path augmentation can reach maximum cardinality.
  const PartitionMatroid m1({0, 0, 1, 1, 2}, {1, 1, 1});
  const PartitionMatroid m2({0, 1, 1, 2, 2}, {1, 1, 1});
  const std::vector<int> initial{1, 3};  // blocks both matroid parts
  const auto result = MaxCardinalityMatroidIntersection(m1, m2, initial);
  EXPECT_EQ(result.size(), 3u);  // {0,2,4} is common independent
  EXPECT_TRUE(m1.IsIndependent(result));
  EXPECT_TRUE(m2.IsIndependent(result));
}

TEST(MatroidIntersectionTest, GreedyDistanceOrderingRespected) {
  // With no matroid conflicts, the greedy phase should insert elements in
  // farthest-first order; verify via a distance callback that prefers
  // high element ids.
  const PartitionMatroid m1({0, 1, 2}, {1, 1, 1});
  const PartitionMatroid m2({0, 1, 2}, {1, 1, 1});
  std::vector<int> insertion_order;
  auto distance = [&insertion_order](int x, std::span<const int>) {
    return static_cast<double>(x);  // larger id = farther
  };
  const auto result =
      MaxCardinalityMatroidIntersection(m1, m2, {}, distance);
  EXPECT_EQ(result.size(), 3u);
  // The members list preserves insertion order for the greedy phase.
  EXPECT_EQ(result, (std::vector<int>{2, 1, 0}));
}

TEST(MatroidIntersectionTest, MatchesBruteForceOnRandomInstances) {
  // Cross-check Algorithm 4 against exhaustive search over random pairs of
  // partition matroids (the exact shape SFDM2 uses).
  Rng rng(13);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 4 + static_cast<int>(rng.NextBounded(8));  // 4..11
    const int parts1 = 1 + static_cast<int>(rng.NextBounded(4));
    const int parts2 = 1 + static_cast<int>(rng.NextBounded(4));
    std::vector<int> labels1(static_cast<size_t>(n));
    std::vector<int> labels2(static_cast<size_t>(n));
    for (int e = 0; e < n; ++e) {
      labels1[static_cast<size_t>(e)] =
          static_cast<int>(rng.NextBounded(parts1));
      labels2[static_cast<size_t>(e)] =
          static_cast<int>(rng.NextBounded(parts2));
    }
    std::vector<int> caps1(static_cast<size_t>(parts1));
    std::vector<int> caps2(static_cast<size_t>(parts2));
    for (auto& c : caps1) c = static_cast<int>(rng.NextBounded(3));
    for (auto& c : caps2) c = static_cast<int>(rng.NextBounded(3));
    const PartitionMatroid m1(labels1, caps1);
    const PartitionMatroid m2(labels2, caps2);

    const int exact = ExactMaxCommonIndependentSetSize(m1, m2);
    const auto result = MaxCardinalityMatroidIntersection(m1, m2, {});
    EXPECT_EQ(static_cast<int>(result.size()), exact)
        << "trial " << trial << " n=" << n;
    EXPECT_TRUE(m1.IsIndependent(result));
    EXPECT_TRUE(m2.IsIndependent(result));
  }
}

TEST(MatroidIntersectionTest, WarmStartNeverHurtsCardinality) {
  // Cunningham's guarantee: starting from any common independent set still
  // reaches maximum cardinality.
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 6 + static_cast<int>(rng.NextBounded(6));
    std::vector<int> labels1(static_cast<size_t>(n));
    std::vector<int> labels2(static_cast<size_t>(n));
    for (int e = 0; e < n; ++e) {
      labels1[static_cast<size_t>(e)] = static_cast<int>(rng.NextBounded(3));
      labels2[static_cast<size_t>(e)] = static_cast<int>(rng.NextBounded(4));
    }
    const PartitionMatroid m1(labels1, {2, 1, 2});
    const PartitionMatroid m2(labels2, {1, 1, 1, 1});

    // Random warm start: greedily add random elements while common
    // independent.
    std::vector<int> warm;
    for (int attempt = 0; attempt < 20; ++attempt) {
      const int x = static_cast<int>(rng.NextBounded(n));
      bool present = false;
      for (const int e : warm) present |= (e == x);
      if (!present && m1.CanAdd(warm, x) && m2.CanAdd(warm, x)) {
        warm.push_back(x);
      }
    }
    const int exact = ExactMaxCommonIndependentSetSize(m1, m2);
    const auto result = MaxCardinalityMatroidIntersection(m1, m2, warm);
    EXPECT_EQ(static_cast<int>(result.size()), exact) << "trial " << trial;
  }
}

TEST(MatroidIntersectionTest, IdenticalMatroidsReachRank) {
  const PartitionMatroid m({0, 0, 1, 1, 2, 2}, {1, 1, 1});
  const auto result = MaxCardinalityMatroidIntersection(m, m, {});
  EXPECT_EQ(static_cast<int>(result.size()), m.Rank());
}

}  // namespace
}  // namespace fdm
