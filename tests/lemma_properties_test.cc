// Direct verification of the paper's per-guess guarantees on the *winning*
// guess µ reported by each algorithm (Solution::mu):
//
//   Algorithm 1 (Theorem 1, case 1): a full candidate S_µ has div >= µ.
//   SFDM1 (Lemma 2): the balanced candidate has div >= µ/2.
//   SFDM2 (Lemma 4): the augmented solution has div >= µ/(m+1).
//
// These are stronger, more diagnostic checks than the end-to-end ratios:
// they pin the exact internal invariant each proof rests on, across
// metrics, group counts, quota shapes, and stream orders.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/clustering.h"
#include "core/diversity.h"
#include "core/sfdm1.h"
#include "core/sfdm2.h"
#include "core/streaming_candidate.h"
#include "core/streaming_dm.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace fdm {
namespace {

struct LemmaCase {
  uint64_t seed;
  MetricKind metric;
  int m;
};

Dataset RandomDataset(const LemmaCase& param, size_t n) {
  Rng rng(param.seed * 7919ULL + 13);
  Dataset ds("lemma", 4, param.m, param.metric);
  std::vector<double> p(4);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = rng.NextDouble(0.05, 1.0);
    ds.Add(p, static_cast<int32_t>(rng.NextBounded(param.m)));
  }
  return ds;
}

StreamingOptions OptionsFor(const Dataset& ds) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  StreamingOptions o;
  o.epsilon = 0.1;
  o.d_min = b.min;
  o.d_max = b.max;
  return o;
}

class LemmaPropertyTest : public ::testing::TestWithParam<LemmaCase> {};

TEST_P(LemmaPropertyTest, AlgorithmOneWinnerCertifiesItsGuess) {
  const LemmaCase param = GetParam();
  const Dataset ds = RandomDataset(param, 300);
  auto algo =
      StreamingDm::Create(8, ds.dim(), ds.metric_kind(), OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  for (const size_t row : StreamOrder(ds.size(), param.seed)) {
    algo->Observe(ds.At(row));
  }
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  // Theorem 1 case 1: the returned candidate was full, so div >= µ.
  EXPECT_GE(solution->diversity, solution->mu - 1e-12);
}

TEST_P(LemmaPropertyTest, LemmaTwoBalancedCandidateHalfGuess) {
  const LemmaCase param = GetParam();
  if (param.m != 2) GTEST_SKIP() << "SFDM1 is m = 2 only";
  const Dataset ds = RandomDataset(param, 400);
  FairnessConstraint c;
  c.quotas = {3, 5};  // uneven on purpose: the swap loop must fire
  auto algo = Sfdm1::Create(c, ds.dim(), ds.metric_kind(), OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  for (const size_t row : StreamOrder(ds.size(), param.seed + 1)) {
    algo->Observe(ds.At(row));
  }
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  // Lemma 2: div(S_µ) >= µ/2 after balancing.
  EXPECT_GE(solution->diversity, solution->mu / 2.0 - 1e-12);
  EXPECT_TRUE(SatisfiesQuotas(solution->points, c.quotas));
}

TEST_P(LemmaPropertyTest, LemmaFourAugmentedSolutionOverMPlusOne) {
  const LemmaCase param = GetParam();
  const Dataset ds = RandomDataset(param, 500);
  FairnessConstraint c;
  c.quotas.assign(static_cast<size_t>(param.m), 2);
  c.quotas[0] = 4;  // uneven
  if (!c.ValidateAgainst(ds.GroupSizes()).ok()) {
    GTEST_SKIP() << "instance infeasible";
  }
  auto algo = Sfdm2::Create(c, ds.dim(), ds.metric_kind(), OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  for (const size_t row : StreamOrder(ds.size(), param.seed + 2)) {
    algo->Observe(ds.At(row));
  }
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  // Lemma 4 / property (i): every pair in the solution is in a different
  // cluster, hence div >= µ/(m+1).
  EXPECT_GE(solution->diversity,
            solution->mu / static_cast<double>(param.m + 1) - 1e-12);
  EXPECT_TRUE(SatisfiesQuotas(solution->points, c.quotas));
}

std::vector<LemmaCase> LemmaGrid() {
  std::vector<LemmaCase> cases;
  uint64_t seed = 1;
  for (const MetricKind metric : {MetricKind::kEuclidean,
                                  MetricKind::kManhattan,
                                  MetricKind::kAngular}) {
    for (const int m : {2, 3, 5}) {
      for (int rep = 0; rep < 3; ++rep) {
        cases.push_back(LemmaCase{seed++, metric, m});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LemmaPropertyTest, ::testing::ValuesIn(LemmaGrid()),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_" +
             std::string(MetricKindName(info.param.metric)) + "_m" +
             std::to_string(info.param.m);
    });

// ---------------------------------------------------------------------------
// Lemma 3 directly: cluster the union of one full blind candidate and m
// full group candidates at µ/(m+1) and check all three properties.
// ---------------------------------------------------------------------------

TEST(LemmaThreeTest, ClusterPropertiesOnRealCandidates) {
  Rng rng(4242);
  const int m = 3;
  const int k = 9;
  Dataset ds("l3", 3, m, MetricKind::kEuclidean);
  std::vector<double> p(3);
  for (int i = 0; i < 800; ++i) {
    for (auto& v : p) v = rng.NextDouble(0, 10);
    ds.Add(p, static_cast<int32_t>(rng.NextBounded(m)));
  }
  const Metric metric = ds.metric();
  const double mu = 1.2;

  // Build the candidates exactly as SFDM2's stream phase does.
  StreamingCandidate blind(mu, static_cast<size_t>(k), 3);
  std::vector<StreamingCandidate> per_group;
  for (int g = 0; g < m; ++g) {
    per_group.emplace_back(mu, static_cast<size_t>(k), 3);
  }
  for (size_t i = 0; i < ds.size(); ++i) {
    const StreamPoint x = ds.At(i);
    blind.TryAdd(x, metric);
    per_group[static_cast<size_t>(x.group)].TryAdd(x, metric);
  }

  // S_all = dedup union.
  PointBuffer all(3, static_cast<size_t>(k * (m + 1)));
  std::set<int64_t> seen;
  auto add_from = [&](const StreamingCandidate& c) {
    for (size_t i = 0; i < c.points().size(); ++i) {
      if (seen.insert(c.points().IdAt(i)).second) {
        all.Add(c.points().ViewAt(i));
      }
    }
  };
  add_from(blind);
  for (const auto& c : per_group) add_from(c);

  const double threshold = mu / static_cast<double>(m + 1);
  const std::vector<int> labels = ThresholdClusters(all, metric, threshold);

  // Property (i): inter-cluster distance >= µ/(m+1).
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      if (labels[i] != labels[j]) {
        EXPECT_GE(metric(all.CoordsAt(i), all.CoordsAt(j)), threshold);
      }
    }
  }

  // Property (ii): each cluster holds at most one element per candidate.
  auto check_source = [&](const StreamingCandidate& c) {
    std::map<int, int> cluster_count;
    for (size_t i = 0; i < all.size(); ++i) {
      if (c.points().ContainsId(all.IdAt(i))) {
        ++cluster_count[labels[i]];
      }
    }
    for (const auto& [cluster, count] : cluster_count) {
      EXPECT_LE(count, 1) << "cluster " << cluster;
    }
  };
  check_source(blind);
  for (const auto& c : per_group) check_source(c);

  // Property (iii): intra-cluster diameter < µ·m/(m+1).
  const double diameter_bound = mu * m / static_cast<double>(m + 1);
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      if (labels[i] == labels[j]) {
        EXPECT_LT(metric(all.CoordsAt(i), all.CoordsAt(j)), diameter_bound);
      }
    }
  }
}

}  // namespace
}  // namespace fdm
