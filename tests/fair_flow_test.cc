#include "baselines/fair_flow.h"

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/gmm.h"
#include "data/synthetic.h"
#include "exact/brute_force.h"
#include "util/rng.h"

namespace fdm {
namespace {

FairnessConstraint Quotas(std::vector<int> q) {
  FairnessConstraint c;
  c.quotas = std::move(q);
  return c;
}

TEST(FairFlowTest, SolutionIsFairForManyGroupCounts) {
  for (const int m : {2, 3, 5, 7, 10}) {
    BlobsOptions opt;
    opt.n = 800;
    opt.num_groups = m;
    opt.seed = static_cast<uint64_t>(m) + 40;
    const Dataset ds = MakeBlobs(opt);
    std::vector<int> quotas(static_cast<size_t>(m), 2);
    const auto solution = FairFlow(ds, Quotas(quotas));
    ASSERT_TRUE(solution.ok())
        << "m=" << m << ": " << solution.status().ToString();
    EXPECT_EQ(solution->points.size(), static_cast<size_t>(2 * m));
    EXPECT_TRUE(SatisfiesQuotas(solution->points, quotas));
    EXPECT_GT(solution->diversity, 0.0);
  }
}

TEST(FairFlowTest, UnevenQuotas) {
  BlobsOptions opt;
  opt.n = 600;
  opt.num_groups = 4;
  opt.seed = 51;
  const Dataset ds = MakeBlobs(opt);
  const std::vector<int> quotas{7, 1, 2, 4};
  const auto solution = FairFlow(ds, Quotas(quotas));
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(SatisfiesQuotas(solution->points, quotas));
}

TEST(FairFlowTest, RejectsMismatchedConstraint) {
  BlobsOptions opt;
  opt.n = 50;
  opt.num_groups = 2;
  opt.seed = 1;
  const Dataset ds = MakeBlobs(opt);
  EXPECT_FALSE(FairFlow(ds, Quotas({1, 1, 1})).ok());
  EXPECT_FALSE(FairFlow(ds, Quotas({0, 2})).ok());
}

TEST(FairFlowTest, RejectsInfeasibleQuota) {
  Dataset ds("tiny", 1, 2, MetricKind::kEuclidean);
  ds.Add(std::vector<double>{0.0}, 0);
  ds.Add(std::vector<double>{5.0}, 1);
  EXPECT_EQ(FairFlow(ds, Quotas({2, 1})).status().code(),
            StatusCode::kInfeasible);
}

TEST(FairFlowTest, HandlesDuplicateHeavyData) {
  // Many exact duplicates: clustering collapses them; flow must still find
  // a fair selection from distinct coordinates.
  Dataset ds("dups", 1, 2, MetricKind::kEuclidean);
  Rng rng(53);
  for (int i = 0; i < 200; ++i) {
    const double v = static_cast<double>(rng.NextBounded(12));
    ds.Add(std::vector<double>{v}, static_cast<int32_t>(i % 2));
  }
  const std::vector<int> quotas{3, 3};
  const auto solution = FairFlow(ds, Quotas(quotas));
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(SatisfiesQuotas(solution->points, quotas));
}

TEST(FairFlowTest, ReasonableQualityRelativeToExact) {
  // The theoretical ratio is 1/(3m−1); verify we clear it with room on
  // small instances (the ladder search usually does much better).
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    BlobsOptions opt;
    opt.n = 13;
    opt.num_groups = 2;
    opt.seed = seed + 60;
    const Dataset ds = MakeBlobs(opt);
    const FairnessConstraint c = Quotas({2, 2});
    if (!c.ValidateAgainst(ds.GroupSizes()).ok()) continue;
    const ExactSolution exact = ExactFairDiversityMaximization(ds, c);
    const auto solution = FairFlow(ds, c);
    ASSERT_TRUE(solution.ok());
    const double m = 2.0;
    EXPECT_GE(solution->diversity,
              exact.diversity / (3.0 * m - 1.0) - 1e-9)
        << "seed " << seed;
  }
}

TEST(FairFlowTest, QualityDegradesWithManyGroupsVersusSfdm2Shape) {
  // Not a strict inequality test (randomness), but the flow baseline
  // should clearly trail the unconstrained GMM diversity at large m —
  // the effect Table II shows.
  BlobsOptions opt;
  opt.n = 2000;
  opt.num_groups = 10;
  opt.seed = 71;
  const Dataset ds = MakeBlobs(opt);
  std::vector<int> quotas(10, 2);
  const auto flow = FairFlow(ds, Quotas(quotas));
  ASSERT_TRUE(flow.ok());
  const auto gmm_rows = GreedyGmm(ds, 20);
  const double gmm_div = MinPairwiseDistance(ds, gmm_rows);
  EXPECT_LT(flow->diversity, gmm_div);
}

TEST(FairFlowTest, StartIndexVariation) {
  BlobsOptions opt;
  opt.n = 300;
  opt.num_groups = 3;
  opt.seed = 73;
  const Dataset ds = MakeBlobs(opt);
  const std::vector<int> quotas{2, 2, 2};
  for (const size_t start : {0u, 11u, 99u}) {
    FairFlowOptions options;
    options.start_index = start;
    const auto solution = FairFlow(ds, Quotas(quotas), options);
    ASSERT_TRUE(solution.ok());
    EXPECT_TRUE(SatisfiesQuotas(solution->points, quotas));
  }
}

}  // namespace
}  // namespace fdm
