// Equivalence of the raw-space (sqrt-free, blocked) one-to-many kernels
// against the plain per-pair sqrt forms — the satellite contract of the
// batched ingestion engine: changing the kernel must not change a single
// accept/reject decision.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/streaming_candidate.h"
#include "geo/metric.h"
#include "geo/point_buffer.h"
#include "util/rng.h"

namespace fdm {
namespace {

std::vector<double> RandomPoint(Rng& rng, size_t dim, double lo, double hi) {
  std::vector<double> p(dim);
  for (size_t d = 0; d < dim; ++d) p[d] = rng.NextDouble(lo, hi);
  return p;
}

PointBuffer RandomBuffer(Rng& rng, size_t n, size_t dim) {
  PointBuffer buf(dim, n);
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double> p = RandomPoint(rng, dim, -5.0, 5.0);
    buf.Add(StreamPoint{static_cast<int64_t>(i), 0,
                        std::span<const double>(p)});
  }
  return buf;
}

/// The pre-refactor reference: per-pair true distances, no blocking.
double NaiveMinDistance(const PointBuffer& buf, std::span<const double> x,
                        const Metric& metric) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < buf.size(); ++i) {
    best = std::min(best, metric(x, buf.CoordsAt(i)));
  }
  return best;
}

bool NaiveAllAtLeast(const PointBuffer& buf, std::span<const double> x,
                     const Metric& metric, double threshold) {
  for (size_t i = 0; i < buf.size(); ++i) {
    if (metric(x, buf.CoordsAt(i)) < threshold) return false;
  }
  return true;
}

class BatchKernelsTest : public ::testing::TestWithParam<MetricKind> {};

TEST_P(BatchKernelsTest, RawDistanceIsMonotoneSurrogate) {
  const Metric metric(GetParam());
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t dim = 1 + rng.NextBounded(8);
    const std::vector<double> a = RandomPoint(rng, dim, -5.0, 5.0);
    const std::vector<double> b = RandomPoint(rng, dim, -5.0, 5.0);
    const double raw = metric.RawDistance(a.data(), b.data(), dim);
    EXPECT_NEAR(metric.FinishDistance(raw), metric(a, b), 1e-12);
  }
}

TEST_P(BatchKernelsTest, MinDistanceMatchesNaiveScan) {
  const Metric metric(GetParam());
  Rng rng(11);
  // Sizes straddle the block width (8) to cover full blocks + remainders.
  for (const size_t n : {0u, 1u, 3u, 7u, 8u, 9u, 16u, 37u, 100u}) {
    const size_t dim = 3;
    const PointBuffer buf = RandomBuffer(rng, n, dim);
    const std::vector<double> x = RandomPoint(rng, dim, -5.0, 5.0);
    const double got = buf.MinDistanceTo(x, metric);
    const double want = NaiveMinDistance(buf, x, metric);
    if (n == 0) {
      EXPECT_EQ(got, std::numeric_limits<double>::infinity());
    } else {
      EXPECT_NEAR(got, want, 1e-12) << "n=" << n;
    }
  }
}

TEST_P(BatchKernelsTest, AllAtLeastMatchesNaiveSqrtForm) {
  const Metric metric(GetParam());
  Rng rng(13);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t n = rng.NextBounded(30);
    const size_t dim = 2 + rng.NextBounded(4);
    const PointBuffer buf = RandomBuffer(rng, n, dim);
    const std::vector<double> x = RandomPoint(rng, dim, -5.0, 5.0);
    // Thresholds around the actual minimum stress the decision boundary.
    const double base = n == 0 ? 1.0 : NaiveMinDistance(buf, x, metric);
    for (const double factor : {0.5, 0.99, 1.01, 2.0}) {
      const double threshold = base * factor;
      EXPECT_EQ(buf.AllAtLeast(x, metric, threshold),
                NaiveAllAtLeast(buf, x, metric, threshold))
          << "trial=" << trial << " threshold=" << threshold;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, BatchKernelsTest,
                         ::testing::Values(MetricKind::kEuclidean,
                                           MetricKind::kManhattan,
                                           MetricKind::kAngular),
                         [](const auto& info) {
                           return std::string(MetricKindName(info.param));
                         });

TEST(SquaredThresholdTest, ExactBoundaryDecisionsMatchSqrtForm) {
  // A 3-4-5 triangle: distance exactly 5. `d < µ` must be false for µ = 5
  // in both the sqrt form and the squared form (25 < 25).
  const Metric metric(MetricKind::kEuclidean);
  PointBuffer buf(2, 1);
  const std::vector<double> origin{0.0, 0.0};
  buf.Add(StreamPoint{0, 0, std::span<const double>(origin)});
  const std::vector<double> x{3.0, 4.0};
  EXPECT_TRUE(buf.AllAtLeast(x, metric, 5.0));
  EXPECT_FALSE(buf.AllAtLeast(x, metric, 5.0000001));
  EXPECT_EQ(metric.PrepareThreshold(5.0), 25.0);
  EXPECT_EQ(metric.RawDistance(x.data(), origin.data(), 2), 25.0);
}

TEST(SquaredThresholdTest, TryAddDecisionsMatchSqrtReference) {
  // Replay a random stream through StreamingCandidate::TryAdd (squared
  // comparisons) and through a reference insert using the sqrt form; the
  // kept sets must be identical element by element.
  const Metric metric(MetricKind::kEuclidean);
  Rng rng(17);
  for (const double mu : {0.5, 1.0, 2.5}) {
    StreamingCandidate candidate(mu, /*capacity=*/10, /*dim=*/3);
    PointBuffer reference(3, 10);
    for (int i = 0; i < 500; ++i) {
      const std::vector<double> p = RandomPoint(rng, 3, -4.0, 4.0);
      const StreamPoint point{i, 0, std::span<const double>(p)};
      const bool kept = candidate.TryAdd(point, metric);
      bool want = reference.size() < 10;
      if (want) {
        for (size_t j = 0; j < reference.size(); ++j) {
          if (metric(point.coords, reference.CoordsAt(j)) < mu) {
            want = false;
            break;
          }
        }
      }
      ASSERT_EQ(kept, want) << "element " << i << " mu=" << mu;
      if (want) reference.Add(point);
    }
    ASSERT_EQ(candidate.points().size(), reference.size());
    for (size_t j = 0; j < reference.size(); ++j) {
      EXPECT_EQ(candidate.points().IdAt(j), reference.IdAt(j));
    }
  }
}

}  // namespace
}  // namespace fdm
