#include "service/sink_spec.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fdm {
namespace {

TEST(SinkSpecTest, ParsesFullSpec) {
  auto spec = SinkSpec::Parse(
      "algo=sfdm2 dim=4 quotas=2,2,3 metric=manhattan eps=0.05 dmin=0.01 "
      "dmax=50 threads=2");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->algo, "sfdm2");
  EXPECT_EQ(spec->dim, 4u);
  EXPECT_EQ(spec->quotas, (std::vector<int>{2, 2, 3}));
  EXPECT_EQ(spec->metric, MetricKind::kManhattan);
  EXPECT_DOUBLE_EQ(spec->epsilon, 0.05);
  EXPECT_DOUBLE_EQ(spec->d_min, 0.01);
  EXPECT_DOUBLE_EQ(spec->d_max, 50);
  EXPECT_EQ(spec->threads, 2);
}

TEST(SinkSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(SinkSpec::Parse("").ok());                    // no algo/dim
  EXPECT_FALSE(SinkSpec::Parse("algo=sfdm2").ok());          // no dim
  EXPECT_FALSE(SinkSpec::Parse("dim=2 k=3").ok());           // no algo
  EXPECT_FALSE(SinkSpec::Parse("algo=sfdm2 dim=x").ok());    // bad int
  EXPECT_FALSE(SinkSpec::Parse("algo=sfdm2 dim=2 eps=abc").ok());
  EXPECT_FALSE(SinkSpec::Parse("algo=sfdm2 dim=2 bogus=1").ok());
  EXPECT_FALSE(SinkSpec::Parse("algo=sfdm2 dim=2 metric=cosine").ok());
  EXPECT_FALSE(SinkSpec::Parse("justaword").ok());
}

TEST(SinkSpecTest, MakeSinkRequiresAlgoSpecificKeys) {
  // streaming_dm needs k; sfdm2 needs quotas; sliding_window needs window.
  EXPECT_FALSE(
      MakeSinkFromSpec("algo=streaming_dm dim=2 dmin=0.1 dmax=10").ok());
  EXPECT_FALSE(MakeSinkFromSpec("algo=sfdm2 dim=2 dmin=0.1 dmax=10").ok());
  EXPECT_FALSE(MakeSinkFromSpec(
                   "algo=sliding_window dim=2 k=3 dmin=0.1 dmax=10")
                   .ok());
  EXPECT_FALSE(MakeSinkFromSpec("algo=nope dim=2 k=3").ok());
}

TEST(SinkSpecTest, EveryAlgoBuildsAndIngests) {
  BlobsOptions opt;
  opt.n = 200;
  opt.num_groups = 2;
  opt.seed = 5;
  const Dataset ds = MakeBlobs(opt);
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  const std::string bounds = " dmin=" + std::to_string(b.min) +
                             " dmax=" + std::to_string(b.max);
  const std::vector<std::string> specs = {
      "algo=streaming_dm dim=2 k=4" + bounds,
      "algo=sfdm1 dim=2 quotas=2,2" + bounds,
      "algo=sfdm2 dim=2 quotas=2,2" + bounds,
      "algo=adaptive dim=2 k=4",
      "algo=sharded dim=2 k=4 shards=2" + bounds,
      "algo=sliding_window dim=2 k=4 window=100 checkpoints=2" + bounds,
  };
  for (const std::string& text : specs) {
    auto sink = MakeSinkFromSpec(text);
    ASSERT_TRUE(sink.ok()) << text << ": " << sink.status().ToString();
    for (size_t i = 0; i < ds.size(); ++i) (*sink)->Observe(ds.At(i));
    EXPECT_EQ((*sink)->ObservedElements(), static_cast<int64_t>(ds.size()))
        << text;
    const auto solution = (*sink)->Solve();
    ASSERT_TRUE(solution.ok()) << text << ": "
                               << solution.status().ToString();
    EXPECT_EQ(solution->points.size(), 4u) << text;
  }
}

TEST(SinkSpecTest, ToStringRoundTrips) {
  auto spec = SinkSpec::Parse(
      "algo=sliding_window dim=3 k=5 dmin=0.5 dmax=20 window=400 "
      "checkpoints=8");
  ASSERT_TRUE(spec.ok());
  auto reparsed = SinkSpec::Parse(spec->ToString());
  ASSERT_TRUE(reparsed.ok()) << spec->ToString();
  EXPECT_EQ(reparsed->algo, spec->algo);
  EXPECT_EQ(reparsed->dim, spec->dim);
  EXPECT_EQ(reparsed->k, spec->k);
  EXPECT_EQ(reparsed->window, spec->window);
  EXPECT_EQ(reparsed->checkpoints, spec->checkpoints);
}

TEST(SinkSpecTest, DedupKeyParsesAndRoundTrips) {
  auto off = SinkSpec::Parse("algo=streaming_dm dim=2 k=4 dmin=0.1 dmax=9");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off->dedup);  // default off
  EXPECT_EQ(off->ToString().find("dedup"), std::string::npos);

  auto on = SinkSpec::Parse(
      "algo=streaming_dm dim=2 k=4 dmin=0.1 dmax=9 dedup=on");
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_TRUE(on->dedup);
  auto reparsed = SinkSpec::Parse(on->ToString());
  ASSERT_TRUE(reparsed.ok()) << on->ToString();
  EXPECT_TRUE(reparsed->dedup);

  auto explicit_off = SinkSpec::Parse(
      "algo=streaming_dm dim=2 k=4 dmin=0.1 dmax=9 dedup=off");
  ASSERT_TRUE(explicit_off.ok());
  EXPECT_FALSE(explicit_off->dedup);

  EXPECT_FALSE(
      SinkSpec::Parse("algo=streaming_dm dim=2 k=4 dedup=yes").ok());
}

}  // namespace
}  // namespace fdm
