#include "data/synthetic.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace fdm {
namespace {

TEST(BlobsTest, RespectsRequestedShape) {
  BlobsOptions opt;
  opt.n = 1000;
  opt.dim = 2;
  opt.num_groups = 4;
  opt.seed = 1;
  const Dataset ds = MakeBlobs(opt);
  EXPECT_EQ(ds.size(), 1000u);
  EXPECT_EQ(ds.dim(), 2u);
  EXPECT_EQ(ds.num_groups(), 4);
  EXPECT_EQ(ds.metric_kind(), MetricKind::kEuclidean);
}

TEST(BlobsTest, AllGroupsPopulatedRoughlyUniformly) {
  BlobsOptions opt;
  opt.n = 10000;
  opt.num_groups = 10;
  opt.seed = 2;
  const Dataset ds = MakeBlobs(opt);
  const auto sizes = ds.GroupSizes();
  for (const size_t s : sizes) {
    EXPECT_NEAR(static_cast<double>(s), 1000.0, 150.0);
  }
}

TEST(BlobsTest, PointsStayNearBox) {
  // Centers in [-10,10]^2 with unit stddev: points should lie within a
  // few sigmas of the box.
  BlobsOptions opt;
  opt.n = 5000;
  opt.seed = 3;
  const Dataset ds = MakeBlobs(opt);
  for (size_t i = 0; i < ds.size(); ++i) {
    for (size_t d = 0; d < 2; ++d) {
      EXPECT_GT(ds.Point(i)[d], -10.0 - 6.0);
      EXPECT_LT(ds.Point(i)[d], 10.0 + 6.0);
    }
  }
}

TEST(BlobsTest, DeterministicForSeed) {
  BlobsOptions opt;
  opt.n = 100;
  opt.seed = 42;
  const Dataset a = MakeBlobs(opt);
  const Dataset b = MakeBlobs(opt);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.GroupOf(i), b.GroupOf(i));
    EXPECT_DOUBLE_EQ(a.Point(i)[0], b.Point(i)[0]);
  }
}

TEST(BlobsTest, SeedChangesData) {
  BlobsOptions a_opt;
  a_opt.n = 100;
  a_opt.seed = 1;
  BlobsOptions b_opt = a_opt;
  b_opt.seed = 2;
  const Dataset a = MakeBlobs(a_opt);
  const Dataset b = MakeBlobs(b_opt);
  bool any_diff = false;
  for (size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a.Point(i)[0] != b.Point(i)[0];
  }
  EXPECT_TRUE(any_diff);
}

TEST(BlobsTest, ClusterStructureExists) {
  // With 10 tight blobs in a [-10,10] box, the mean pairwise distance must
  // far exceed the within-blob scale — a sanity check that points are not
  // uniform noise.
  BlobsOptions opt;
  opt.n = 400;
  opt.num_blobs = 10;
  opt.stddev = 0.2;
  opt.seed = 4;
  const Dataset ds = MakeBlobs(opt);
  double sum = 0.0;
  int pairs = 0;
  int close_pairs = 0;
  for (size_t i = 0; i < ds.size(); i += 4) {
    for (size_t j = i + 1; j < ds.size(); j += 4) {
      const double d = ds.Distance(i, j);
      sum += d;
      ++pairs;
      if (d < 1.0) ++close_pairs;
    }
  }
  EXPECT_GT(sum / pairs, 3.0);   // blobs are spread out
  EXPECT_GT(close_pairs, 0);     // but blob-mates are close
}

TEST(SampleGroupsTest, RespectsProportions) {
  const auto groups = SampleGroups(100000, {0.7, 0.2, 0.1}, 11);
  std::vector<int> counts(3, 0);
  for (const int32_t g : groups) ++counts[static_cast<size_t>(g)];
  EXPECT_NEAR(counts[0], 70000, 1500);
  EXPECT_NEAR(counts[1], 20000, 1200);
  EXPECT_NEAR(counts[2], 10000, 1000);
}

TEST(SampleGroupsTest, SingleGroup) {
  const auto groups = SampleGroups(100, {1.0}, 1);
  for (const int32_t g : groups) EXPECT_EQ(g, 0);
}

TEST(SampleGroupsTest, UnnormalizedWeightsAccepted) {
  const auto groups = SampleGroups(50000, {3.0, 1.0}, 13);
  int count0 = 0;
  for (const int32_t g : groups) count0 += (g == 0);
  EXPECT_NEAR(count0, 37500, 800);
}

TEST(TwoMoonsTest, TwoBalancedGroups) {
  const Dataset ds = MakeTwoMoons(1000, 0.05, 5);
  EXPECT_EQ(ds.num_groups(), 2);
  const auto sizes = ds.GroupSizes();
  EXPECT_EQ(sizes[0], 500u);
  EXPECT_EQ(sizes[1], 500u);
}

TEST(UniformSquareTest, PointsInUnitSquare) {
  const Dataset ds = MakeUniformSquare(500, 7);
  EXPECT_EQ(ds.size(), 500u);
  EXPECT_EQ(ds.num_groups(), 1);
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_GE(ds.Point(i)[0], 0.0);
    EXPECT_LT(ds.Point(i)[0], 1.0);
    EXPECT_GE(ds.Point(i)[1], 0.0);
    EXPECT_LT(ds.Point(i)[1], 1.0);
  }
}

}  // namespace
}  // namespace fdm
