#include "data/dataset.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/gmm.h"
#include "core/streaming_dm.h"
#include "data/synthetic.h"

namespace fdm {
namespace {

Dataset SmallDataset() {
  Dataset ds("test", 2, 2, MetricKind::kEuclidean);
  ds.Add(std::vector<double>{0.0, 0.0}, 0);
  ds.Add(std::vector<double>{3.0, 4.0}, 1);
  ds.Add(std::vector<double>{6.0, 8.0}, 0);
  return ds;
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset ds = SmallDataset();
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.dim(), 2u);
  EXPECT_EQ(ds.num_groups(), 2);
  EXPECT_EQ(ds.metric_kind(), MetricKind::kEuclidean);
  EXPECT_EQ(ds.name(), "test");
  EXPECT_EQ(ds.GroupOf(1), 1);
  EXPECT_DOUBLE_EQ(ds.Point(1)[0], 3.0);
}

TEST(DatasetTest, DistanceUsesMetric) {
  const Dataset ds = SmallDataset();
  EXPECT_DOUBLE_EQ(ds.Distance(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(ds.Distance(0, 2), 10.0);
  EXPECT_DOUBLE_EQ(ds.Distance(1, 2), 5.0);
}

TEST(DatasetTest, AtPackagesStreamPoint) {
  const Dataset ds = SmallDataset();
  const StreamPoint p = ds.At(2);
  EXPECT_EQ(p.id, 2);
  EXPECT_EQ(p.group, 0);
  EXPECT_DOUBLE_EQ(p.coords[1], 8.0);
}

TEST(DatasetTest, GroupSizes) {
  const Dataset ds = SmallDataset();
  EXPECT_EQ(ds.GroupSizes(), (std::vector<size_t>{2, 1}));
}

TEST(DatasetTest, GroupNames) {
  Dataset ds = SmallDataset();
  ds.SetGroupNames({"female", "male"});
  EXPECT_EQ(ds.group_names()[1], "male");
}

TEST(DistanceBoundsTest, ExactOnKnownPoints) {
  const Dataset ds = SmallDataset();
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  EXPECT_DOUBLE_EQ(b.min, 5.0);
  EXPECT_DOUBLE_EQ(b.max, 10.0);
  EXPECT_DOUBLE_EQ(b.Spread(), 2.0);
}

TEST(DistanceBoundsTest, IgnoresZeroDistancesForMin) {
  Dataset ds("dups", 1, 1, MetricKind::kEuclidean);
  ds.Add(std::vector<double>{0.0}, 0);
  ds.Add(std::vector<double>{0.0}, 0);  // exact duplicate
  ds.Add(std::vector<double>{2.0}, 0);
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  EXPECT_DOUBLE_EQ(b.min, 2.0);  // zero distance excluded
  EXPECT_DOUBLE_EQ(b.max, 2.0);
}

TEST(DistanceBoundsTest, AllDuplicatesFallsBackToMax) {
  Dataset ds("dups", 1, 1, MetricKind::kEuclidean);
  ds.Add(std::vector<double>{1.0}, 0);
  ds.Add(std::vector<double>{1.0}, 0);
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  EXPECT_DOUBLE_EQ(b.min, b.max);
}

TEST(DistanceBoundsTest, EstimateCoversDiameterOnLargeSet) {
  BlobsOptions opt;
  opt.n = 6000;  // big enough to trigger the sampling path
  opt.seed = 5;
  const Dataset ds = MakeBlobs(opt);
  const DistanceBounds exact = ComputeDistanceBoundsExact(ds);
  const DistanceBounds est = EstimateDistanceBounds(ds, 800, 1, 2.0);
  // The diameter side must be covered (sampling misses it only slightly;
  // the slack more than absorbs that). The closest-pair side is NOT
  // promised — see the contract in the header; its end-to-end adequacy is
  // checked by EstimatedBoundsSufficeForStreamingGuarantee below.
  EXPECT_GE(est.max, exact.max - 1e-12);
  EXPECT_GT(est.min, 0.0);
  EXPECT_LT(est.min, est.max);
}

TEST(DistanceBoundsTest, EstimatedBoundsSufficeForStreamingGuarantee) {
  // End-to-end contract of the estimator: a streaming run configured with
  // *estimated* bounds still clears (1−ε)/2 · OPT. Since OPT >= div(GMM),
  // it suffices to clear (1−ε)/2 · div(GMM).
  BlobsOptions opt;
  opt.n = 6000;
  opt.seed = 6;
  const Dataset ds = MakeBlobs(opt);
  const DistanceBounds est = EstimateDistanceBounds(ds, 800, 1);
  const double epsilon = 0.1;
  StreamingOptions streaming;
  streaming.epsilon = epsilon;
  streaming.d_min = est.min;
  streaming.d_max = est.max;
  const int k = 10;
  auto algo = StreamingDm::Create(k, 2, MetricKind::kEuclidean, streaming);
  ASSERT_TRUE(algo.ok());
  for (const size_t row : StreamOrder(ds.size(), 1)) {
    algo->Observe(ds.At(row));
  }
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  const auto gmm_rows = GreedyGmm(ds, static_cast<size_t>(k));
  const double gmm_div = MinPairwiseDistance(ds, gmm_rows);
  EXPECT_GE(solution->diversity, (1.0 - epsilon) / 2.0 * gmm_div - 1e-9);
}

TEST(DistanceBoundsTest, SmallDatasetUsesExactPathNoSlack) {
  const Dataset ds = SmallDataset();
  const DistanceBounds est = EstimateDistanceBounds(ds, 100, 1, 2.0);
  EXPECT_DOUBLE_EQ(est.min, 5.0);
  EXPECT_DOUBLE_EQ(est.max, 10.0);
}

TEST(StreamOrderTest, IsPermutation) {
  const auto order = StreamOrder(100, 7);
  EXPECT_EQ(order.size(), 100u);
  std::set<size_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(StreamOrderTest, SeedChangesOrder) {
  EXPECT_NE(StreamOrder(50, 1), StreamOrder(50, 2));
  EXPECT_EQ(StreamOrder(50, 3), StreamOrder(50, 3));
}

}  // namespace
}  // namespace fdm
