// Adversarial stream orders and degenerate data for the streaming
// algorithms. The guess-ladder construction makes SFDM1/SFDM2 guarantees
// order-oblivious, so fairness and the approximation bounds must survive
// the worst arrival patterns: sorted coordinates, group-segregated
// arrival, duplicate floods, and near-duplicate clusters.

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/sfdm1.h"
#include "core/sfdm2.h"
#include "core/streaming_dm.h"
#include "data/synthetic.h"
#include "exact/brute_force.h"
#include "util/rng.h"

namespace fdm {
namespace {

StreamingOptions OptionsFor(const Dataset& ds, double epsilon = 0.1) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  StreamingOptions o;
  o.epsilon = epsilon;
  o.d_min = b.min;
  o.d_max = b.max;
  return o;
}

/// Orders: 0 = by x-coordinate ascending, 1 = descending, 2 = all of group
/// 0 first then group 1..., 3 = groups interleaved worst-case (rarest
/// group last).
std::vector<size_t> AdversarialOrder(const Dataset& ds, int variant) {
  std::vector<size_t> order(ds.size());
  std::iota(order.begin(), order.end(), size_t{0});
  switch (variant) {
    case 0:
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return ds.Point(a)[0] < ds.Point(b)[0];
      });
      break;
    case 1:
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return ds.Point(a)[0] > ds.Point(b)[0];
      });
      break;
    case 2:
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return ds.GroupOf(a) < ds.GroupOf(b);
      });
      break;
    case 3:
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return ds.GroupOf(a) > ds.GroupOf(b);
      });
      break;
    default:
      break;
  }
  return order;
}

class AdversarialOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(AdversarialOrderTest, Sfdm1StaysFairAndBounded) {
  const int variant = GetParam();
  BlobsOptions opt;
  opt.n = 600;
  opt.num_groups = 2;
  opt.seed = 41;
  const Dataset ds = MakeBlobs(opt);
  FairnessConstraint c;
  c.quotas = {4, 4};
  auto algo = Sfdm1::Create(c, 2, MetricKind::kEuclidean, OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  for (const size_t row : AdversarialOrder(ds, variant)) {
    algo->Observe(ds.At(row));
  }
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(SatisfiesQuotas(solution->points, c.quotas));
  EXPECT_GT(solution->diversity, 0.0);
}

TEST_P(AdversarialOrderTest, Sfdm2StaysFairAndBounded) {
  const int variant = GetParam();
  BlobsOptions opt;
  opt.n = 800;
  opt.num_groups = 4;
  opt.seed = 43;
  const Dataset ds = MakeBlobs(opt);
  FairnessConstraint c;
  c.quotas = {2, 2, 2, 2};
  auto algo = Sfdm2::Create(c, 2, MetricKind::kEuclidean, OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  for (const size_t row : AdversarialOrder(ds, variant)) {
    algo->Observe(ds.At(row));
  }
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(SatisfiesQuotas(solution->points, c.quotas));
  EXPECT_GT(solution->diversity, 0.0);
}

TEST_P(AdversarialOrderTest, TheoremTwoSurvivesWorstOrder) {
  // The approximation bound is order-independent; verify on a tiny
  // instance against the exact optimum under every adversarial order.
  const int variant = GetParam();
  BlobsOptions opt;
  opt.n = 13;
  opt.num_groups = 2;
  opt.seed = 47;
  const Dataset ds = MakeBlobs(opt);
  FairnessConstraint c;
  c.quotas = {2, 2};
  if (!c.ValidateAgainst(ds.GroupSizes()).ok()) {
    GTEST_SKIP() << "instance infeasible";
  }
  const ExactSolution exact = ExactFairDiversityMaximization(ds, c);
  ASSERT_GT(exact.diversity, 0.0);
  const double epsilon = 0.1;
  auto algo = Sfdm1::Create(c, 2, MetricKind::kEuclidean,
                            OptionsFor(ds, epsilon));
  ASSERT_TRUE(algo.ok());
  for (const size_t row : AdversarialOrder(ds, variant)) {
    algo->Observe(ds.At(row));
  }
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok());
  EXPECT_GE(solution->diversity,
            (1.0 - epsilon) / 4.0 * exact.diversity - 1e-9)
      << "order variant " << variant;
}

std::string OrderVariantName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"sorted_asc", "sorted_desc", "groups_fwd",
                                 "groups_rev"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Orders, AdversarialOrderTest,
                         ::testing::Values(0, 1, 2, 3), OrderVariantName);

TEST(DegenerateStreamTest, DuplicateFloodStillSolves) {
  // 95% of the stream is one repeated point; the remaining 5% carry all
  // the diversity. Candidates must not be clogged by duplicates
  // (d(x,S) = 0 < µ rejects them).
  Dataset ds("flood", 1, 2, MetricKind::kEuclidean);
  Rng rng(51);
  for (int i = 0; i < 2000; ++i) {
    if (rng.NextDouble() < 0.95) {
      ds.Add(std::vector<double>{0.0}, static_cast<int32_t>(i % 2));
    } else {
      ds.Add(std::vector<double>{rng.NextDouble(1.0, 100.0)},
             static_cast<int32_t>(i % 2));
    }
  }
  FairnessConstraint c;
  c.quotas = {3, 3};
  auto algo = Sfdm1::Create(c, 1, MetricKind::kEuclidean, OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  for (size_t i = 0; i < ds.size(); ++i) algo->Observe(ds.At(i));
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(SatisfiesQuotas(solution->points, c.quotas));
  EXPECT_GT(solution->diversity, 0.0);
}

TEST(DegenerateStreamTest, TightClusterPairs) {
  // Points come in ε-close pairs with opposite groups: the fair optimum
  // pairs up clusters. Checks SFDM2's clustering step doesn't collapse
  // legitimate structure.
  Dataset ds("pairs", 2, 2, MetricKind::kEuclidean);
  Rng rng(53);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextDouble(0, 100);
    const double y = rng.NextDouble(0, 100);
    ds.Add(std::vector<double>{x, y}, 0);
    ds.Add(std::vector<double>{x + 1e-4, y}, 1);
  }
  FairnessConstraint c;
  c.quotas = {4, 4};
  auto algo = Sfdm2::Create(c, 2, MetricKind::kEuclidean, OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  for (const size_t row : StreamOrder(ds.size(), 1)) {
    algo->Observe(ds.At(row));
  }
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(SatisfiesQuotas(solution->points, c.quotas));
}

TEST(DegenerateStreamTest, AngularMetricEndToEnd) {
  // Lyrics-like: sparse simplex vectors, angular distance, skewed groups,
  // small ε (large angular ∆ is impossible — distances are <= π/2).
  Dataset ds("simplex", 10, 3, MetricKind::kAngular);
  Rng rng(57);
  std::vector<double> p(10);
  for (int i = 0; i < 600; ++i) {
    double sum = 0.0;
    for (auto& v : p) {
      v = rng.NextGamma(0.15);
      sum += v;
    }
    for (auto& v : p) v /= sum;
    const double u = rng.NextDouble();
    ds.Add(p, u < 0.6 ? 0 : (u < 0.9 ? 1 : 2));
  }
  FairnessConstraint c;
  c.quotas = {3, 3, 3};
  auto algo = Sfdm2::Create(c, 10, MetricKind::kAngular,
                            OptionsFor(ds, 0.05));
  ASSERT_TRUE(algo.ok());
  for (const size_t row : StreamOrder(ds.size(), 2)) {
    algo->Observe(ds.At(row));
  }
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(SatisfiesQuotas(solution->points, c.quotas));
  EXPECT_GT(solution->diversity, 0.0);
  EXPECT_LE(solution->diversity, std::acos(0.0) + 1e-9);
}

TEST(DegenerateStreamTest, SingletonGroupQuota) {
  // One group has exactly quota-many elements in the whole stream: every
  // one of them must be found and kept.
  Dataset ds("scarce", 1, 2, MetricKind::kEuclidean);
  Rng rng(59);
  for (int i = 0; i < 500; ++i) {
    ds.Add(std::vector<double>{rng.NextDouble(0, 100)}, 0);
  }
  ds.Add(std::vector<double>{42.0}, 1);
  ds.Add(std::vector<double>{77.0}, 1);
  FairnessConstraint c;
  c.quotas = {4, 2};
  auto algo = Sfdm1::Create(c, 1, MetricKind::kEuclidean, OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  for (const size_t row : StreamOrder(ds.size(), 3)) {
    algo->Observe(ds.At(row));
  }
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(SatisfiesQuotas(solution->points, c.quotas));
  // Both scarce-group elements must appear.
  bool has_42 = false;
  bool has_77 = false;
  for (size_t i = 0; i < solution->points.size(); ++i) {
    if (solution->points.GroupAt(i) == 1) {
      has_42 |= solution->points.CoordsAt(i)[0] == 42.0;
      has_77 |= solution->points.CoordsAt(i)[0] == 77.0;
    }
  }
  EXPECT_TRUE(has_42);
  EXPECT_TRUE(has_77);
}

TEST(DegenerateStreamTest, HighDimensionalManhattan) {
  // CelebA-like binary cube: integer distances, many ties.
  Dataset ds("cube", 30, 2, MetricKind::kManhattan);
  Rng rng(61);
  std::vector<double> p(30);
  for (int i = 0; i < 800; ++i) {
    for (auto& v : p) v = rng.NextDouble() < 0.35 ? 1.0 : 0.0;
    ds.Add(p, static_cast<int32_t>(rng.NextBounded(2)));
  }
  FairnessConstraint c;
  c.quotas = {5, 5};
  auto algo = Sfdm1::Create(c, 30, MetricKind::kManhattan, OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  for (const size_t row : StreamOrder(ds.size(), 4)) {
    algo->Observe(ds.At(row));
  }
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(SatisfiesQuotas(solution->points, c.quotas));
  // Manhattan distances on the binary cube are integers.
  EXPECT_DOUBLE_EQ(solution->diversity,
                   std::round(solution->diversity));
}

}  // namespace
}  // namespace fdm
