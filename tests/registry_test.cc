#include "harness/registry.h"

#include <memory>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fdm {
namespace {

Dataset TestData(int m, uint64_t seed = 21, size_t n = 600) {
  BlobsOptions opt;
  opt.n = n;
  opt.num_groups = m;
  opt.seed = seed;
  return MakeBlobs(opt);
}

RunConfig ConfigFor(const Dataset& ds, AlgorithmKind algo, int k) {
  RunConfig config;
  config.algorithm = algo;
  config.constraint = EqualRepresentation(k, ds.num_groups()).value();
  config.epsilon = 0.1;
  config.bounds = BoundsForExperiments(ds);
  return config;
}

TEST(AlgorithmRegistryTest, AllBuiltinsRegistered) {
  const AlgorithmRegistry& registry = AlgorithmRegistry::Instance();
  for (const AlgorithmKind kind :
       {AlgorithmKind::kGmm, AlgorithmKind::kFairSwap, AlgorithmKind::kFairFlow,
        AlgorithmKind::kFairGmm, AlgorithmKind::kSfdm1, AlgorithmKind::kSfdm2,
        AlgorithmKind::kStreamingDm, AlgorithmKind::kSharded,
        AlgorithmKind::kSlidingWindow}) {
    const AlgorithmEntry* entry = registry.Find(kind);
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->name.empty());
    if (entry->streaming) {
      EXPECT_TRUE(static_cast<bool>(entry->make_sink));
    } else {
      EXPECT_TRUE(static_cast<bool>(entry->solve));
    }
  }
  EXPECT_EQ(registry.Kinds().size(), 9u);
}

TEST(AlgorithmRegistryTest, NewKindsAreNamed) {
  EXPECT_EQ(AlgorithmName(AlgorithmKind::kStreamingDm), "StreamingDM");
  EXPECT_EQ(AlgorithmName(AlgorithmKind::kSharded), "ShardedDM");
  EXPECT_EQ(AlgorithmName(AlgorithmKind::kSlidingWindow), "SlidingWindowDM");
}

TEST(AlgorithmRegistryTest, FactoriesProduceWorkingSinks) {
  const Dataset ds = TestData(2);
  const RunConfig config = ConfigFor(ds, AlgorithmKind::kSfdm1, 6);
  const AlgorithmEntry* entry =
      AlgorithmRegistry::Instance().Find(AlgorithmKind::kSfdm1);
  ASSERT_NE(entry, nullptr);
  auto sink = entry->make_sink(ds, config);
  ASSERT_TRUE(sink.ok());
  for (size_t i = 0; i < ds.size(); ++i) (*sink)->Observe(ds.At(i));
  const auto solution = (*sink)->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(solution->points.size(), 6u);
}

TEST(RunAlgorithmRegistryTest, NewStreamingKindsProduceKElements) {
  const Dataset ds = TestData(2, 22, 1200);
  for (const AlgorithmKind kind :
       {AlgorithmKind::kStreamingDm, AlgorithmKind::kSharded,
        AlgorithmKind::kSlidingWindow}) {
    const RunResult r = RunAlgorithm(ds, ConfigFor(ds, kind, 8));
    ASSERT_TRUE(r.ok) << AlgorithmName(kind) << ": " << r.error;
    EXPECT_EQ(r.selected_ids.size(), 8u) << AlgorithmName(kind);
    EXPECT_GT(r.diversity, 0.0);
    EXPECT_GT(r.stream_time_sec, 0.0);
    EXPECT_LT(r.stored_elements, ds.size());
  }
}

TEST(RunAlgorithmRegistryTest, SlidingWindowKindHonorsWindowConfig) {
  const Dataset ds = TestData(1, 26, 1500);
  RunConfig config = ConfigFor(ds, AlgorithmKind::kSlidingWindow, 6);
  config.window_size = 300;
  config.window_checkpoints = 3;
  const RunResult r = RunAlgorithm(ds, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.selected_ids.size(), 6u);
  // Every selected element must come from the last `window_size` stream
  // positions — but ids are dataset rows, not stream positions, so just
  // check the count and that the windowed sink kept bounded state.
  EXPECT_LT(r.stored_elements, ds.size());
}

TEST(RunAlgorithmRegistryTest, BatchedIngestionMatchesPerElement) {
  // The harness-level guarantee: flipping batch_size/batch_threads changes
  // only the cost profile, never the output.
  const Dataset ds = TestData(3, 23, 900);
  RunConfig config = ConfigFor(ds, AlgorithmKind::kSfdm2, 9);
  config.permutation_seed = 4;
  const RunResult per_element = RunAlgorithm(ds, config);
  config.batch_size = 128;
  config.batch_threads = 2;
  const RunResult batched = RunAlgorithm(ds, config);
  ASSERT_TRUE(per_element.ok) << per_element.error;
  ASSERT_TRUE(batched.ok) << batched.error;
  EXPECT_EQ(per_element.selected_ids, batched.selected_ids);
  EXPECT_DOUBLE_EQ(per_element.diversity, batched.diversity);
  EXPECT_EQ(per_element.stored_elements, batched.stored_elements);
}

TEST(RunAlgorithmRegistryTest, ShardedKindHonorsNumShards) {
  const Dataset ds = TestData(2, 24, 1000);
  RunConfig config = ConfigFor(ds, AlgorithmKind::kSharded, 6);
  config.num_shards = 2;
  const RunResult two = RunAlgorithm(ds, config);
  config.num_shards = 8;
  const RunResult eight = RunAlgorithm(ds, config);
  ASSERT_TRUE(two.ok) << two.error;
  ASSERT_TRUE(eight.ok) << eight.error;
  // More shards store more (num_shards × O(k log∆/ε) candidates).
  EXPECT_GT(eight.stored_elements, two.stored_elements);
}

TEST(AlgorithmRegistryTest, ScenariosPlugInWithoutTouchingTheHarness) {
  // A scenario override: re-register kSharded with a different default
  // shard count, run through the unchanged harness, then restore.
  AlgorithmRegistry& registry = AlgorithmRegistry::Instance();
  const AlgorithmEntry original = *registry.Find(AlgorithmKind::kSharded);

  AlgorithmEntry scenario = original;
  scenario.name = "ShardedDM/16";
  scenario.make_sink = [&original](const Dataset& ds,
                                   const RunConfig& config) {
    RunConfig wide = config;
    wide.num_shards = 16;
    return original.make_sink(ds, wide);
  };
  registry.Register(AlgorithmKind::kSharded, scenario);

  const Dataset ds = TestData(2, 25, 2000);
  const RunResult r = RunAlgorithm(ds, ConfigFor(ds, AlgorithmKind::kSharded, 5));
  EXPECT_EQ(AlgorithmName(AlgorithmKind::kSharded), "ShardedDM/16");
  registry.Register(AlgorithmKind::kSharded, original);

  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.selected_ids.size(), 5u);
  EXPECT_EQ(AlgorithmName(AlgorithmKind::kSharded), "ShardedDM");
}

}  // namespace
}  // namespace fdm
