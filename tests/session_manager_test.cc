#include "service/session_manager.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "service/sink_spec.h"

namespace fdm {
namespace {

class SessionManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/fdm_manager_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  SessionManagerOptions Options() {
    SessionManagerOptions options;
    options.root_dir = root_;
    return options;
  }

  std::string root_;
};

Dataset TestData(size_t n = 200, uint64_t seed = 51) {
  BlobsOptions opt;
  opt.n = n;
  opt.num_groups = 2;
  opt.seed = seed;
  return MakeBlobs(opt);
}

std::string SpecFor(const Dataset& ds) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  return "algo=sfdm2 dim=2 quotas=2,2 dmin=" + std::to_string(b.min) +
         " dmax=" + std::to_string(b.max);
}

TEST_F(SessionManagerTest, CreateObserveSolve) {
  const Dataset ds = TestData();
  auto manager = SessionManager::Create(Options());
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  ASSERT_TRUE((*manager)->CreateSession("alpha", SpecFor(ds)).ok());
  EXPECT_FALSE((*manager)->CreateSession("alpha", SpecFor(ds)).ok());
  EXPECT_FALSE((*manager)->CreateSession("../evil", SpecFor(ds)).ok());
  EXPECT_FALSE((*manager)->Observe("ghost", ds.At(0)).ok());

  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE((*manager)->Observe("alpha", ds.At(i)).ok());
  }
  auto solution = (*manager)->Solve("alpha");
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(solution->points.size(), 4u);

  auto stats = (*manager)->Stats("alpha");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->observed, static_cast<int64_t>(ds.size()));
  EXPECT_TRUE(stats->resident);
}

TEST_F(SessionManagerTest, KillPointRecoveryMatchesUninterrupted) {
  // Manager-level crash drill: snapshot mid-stream, ingest a WAL-only
  // tail, DropResident (no snapshot, no explicit sync — the kill-point),
  // then touch the session again and compare against an uninterrupted run.
  const Dataset ds = TestData(240, 53);
  const std::string spec = SpecFor(ds);
  auto reference = MakeSinkFromSpec(spec);
  ASSERT_TRUE(reference.ok());
  for (size_t i = 0; i < ds.size(); ++i) (*reference)->Observe(ds.At(i));
  const auto expected = (*reference)->Solve();
  ASSERT_TRUE(expected.ok());

  auto manager = SessionManager::Create(Options());
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->CreateSession("durable", spec).ok());
  const size_t mid = ds.size() / 2;
  for (size_t i = 0; i < mid; ++i) {
    ASSERT_TRUE((*manager)->Observe("durable", ds.At(i)).ok());
  }
  ASSERT_TRUE((*manager)->Snapshot("durable").ok());
  for (size_t i = mid; i < ds.size(); ++i) {
    ASSERT_TRUE((*manager)->Observe("durable", ds.At(i)).ok());
  }
  ASSERT_TRUE((*manager)->DropResident("durable").ok());

  auto stats = (*manager)->Stats("durable");  // triggers recovery
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->observed, static_cast<int64_t>(ds.size()));
  auto solution = (*manager)->Solve("durable");
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->Ids(), expected->Ids());
  EXPECT_DOUBLE_EQ(solution->diversity, expected->diversity);
}

TEST_F(SessionManagerTest, SessionsSurviveManagerRestart) {
  const Dataset ds = TestData(180, 55);
  const std::string spec = SpecFor(ds);
  {
    auto manager = SessionManager::Create(Options());
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE((*manager)->CreateSession("persisted", spec).ok());
    for (size_t i = 0; i < ds.size(); ++i) {
      ASSERT_TRUE((*manager)->Observe("persisted", ds.At(i)).ok());
    }
  }  // clean shutdown snapshots everything

  auto manager = SessionManager::Create(Options());
  ASSERT_TRUE(manager.ok());
  const auto names = (*manager)->SessionNames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "persisted");
  auto stats = (*manager)->Stats("persisted");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->observed, static_cast<int64_t>(ds.size()));
  // Clean shutdown means no WAL tail: recovery came straight from the
  // snapshot.
  EXPECT_EQ(stats->snapshot_seq, static_cast<int64_t>(ds.size()));
}

TEST_F(SessionManagerTest, LruSpillKeepsResidencyBounded) {
  const Dataset ds = TestData(80, 57);
  SessionManagerOptions options = Options();
  options.max_resident = 2;
  auto manager = SessionManager::Create(options);
  ASSERT_TRUE(manager.ok());
  const std::vector<std::string> names = {"s0", "s1", "s2", "s3", "s4"};
  for (const std::string& name : names) {
    ASSERT_TRUE((*manager)->CreateSession(name, SpecFor(ds)).ok());
    for (size_t i = 0; i < ds.size(); ++i) {
      ASSERT_TRUE((*manager)->Observe(name, ds.At(i)).ok());
    }
    EXPECT_LE((*manager)->ResidentCount(), 2u);
  }
  // The oldest session must have been spilled by now — and Stats reports
  // its pre-call residency, not the post-load state.
  {
    auto stats = (*manager)->Stats(names.front());
    ASSERT_TRUE(stats.ok());
    EXPECT_FALSE(stats->resident);
  }
  // Spilled sessions reload transparently — with their full state.
  for (const std::string& name : names) {
    auto stats = (*manager)->Stats(name);
    ASSERT_TRUE(stats.ok()) << name << ": " << stats.status().ToString();
    EXPECT_EQ(stats->observed, static_cast<int64_t>(ds.size())) << name;
    auto solution = (*manager)->Solve(name);
    EXPECT_TRUE(solution.ok()) << name;
  }
  EXPECT_LE((*manager)->ResidentCount(), 2u);
}

TEST_F(SessionManagerTest, ConcurrentIngestAcrossSessions) {
  const Dataset ds = TestData(400, 59);
  auto manager = SessionManager::Create(Options());
  ASSERT_TRUE(manager.ok());
  constexpr int kSessions = 4;
  for (int s = 0; s < kSessions; ++s) {
    ASSERT_TRUE(
        (*manager)->CreateSession("t" + std::to_string(s), SpecFor(ds)).ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    workers.emplace_back([&, s] {
      const std::string name = "t" + std::to_string(s);
      for (size_t i = 0; i < ds.size(); ++i) {
        if (!(*manager)->Observe(name, ds.At(i)).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  for (int s = 0; s < kSessions; ++s) {
    auto stats = (*manager)->Stats("t" + std::to_string(s));
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->observed, static_cast<int64_t>(ds.size()));
  }
}

TEST_F(SessionManagerTest, BackgroundThreadSnapshotsIdleSessions) {
  const Dataset ds = TestData(120, 61);
  SessionManagerOptions options = Options();
  options.background_snapshot_ms = 20;
  auto manager = SessionManager::Create(options);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->CreateSession("bg", SpecFor(ds)).ok());
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE((*manager)->Observe("bg", ds.At(i)).ok());
  }
  // The background sweep must persist the session without any explicit
  // Snapshot call.
  int64_t snapshot_seq = 0;
  for (int tries = 0; tries < 100; ++tries) {
    auto stats = (*manager)->Stats("bg");
    ASSERT_TRUE(stats.ok());
    snapshot_seq = stats->snapshot_seq;
    if (snapshot_seq == static_cast<int64_t>(ds.size())) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(snapshot_seq, static_cast<int64_t>(ds.size()));
}

TEST_F(SessionManagerTest, BatchIngestMatchesPerElement) {
  const Dataset ds = TestData(300, 63);
  auto manager = SessionManager::Create(Options());
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->CreateSession("one", SpecFor(ds)).ok());
  ASSERT_TRUE((*manager)->CreateSession("batch", SpecFor(ds)).ok());
  std::vector<StreamPoint> points;
  points.reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE((*manager)->Observe("one", ds.At(i)).ok());
    points.push_back(ds.At(i));
  }
  for (size_t at = 0; at < points.size(); at += 64) {
    const size_t len = std::min<size_t>(64, points.size() - at);
    ASSERT_TRUE(
        (*manager)
            ->ObserveBatch("batch", std::span<const StreamPoint>(
                                        points.data() + at, len))
            .ok());
  }
  auto a = (*manager)->Solve("one");
  auto b = (*manager)->Solve("batch");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Ids(), b->Ids());
  EXPECT_DOUBLE_EQ(a->diversity, b->diversity);
}

}  // namespace
}  // namespace fdm
