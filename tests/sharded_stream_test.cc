#include "core/sharded_stream.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/gmm.h"
#include "data/synthetic.h"

namespace fdm {
namespace {

Dataset TestData(uint64_t seed, size_t n) {
  BlobsOptions opt;
  opt.n = n;
  opt.seed = seed;
  return MakeBlobs(opt);
}

StreamingOptions OptionsFor(const Dataset& ds) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  StreamingOptions o;
  o.epsilon = 0.1;
  o.d_min = b.min;
  o.d_max = b.max;
  return o;
}

void Feed(StreamSink& sink, const Dataset& ds, uint64_t seed) {
  for (const size_t row : StreamOrder(ds.size(), seed)) {
    sink.Observe(ds.At(row));
  }
}

TEST(ShardedStreamingDmTest, CreateValidatesArguments) {
  ShardedStreamingOptions sharding;
  sharding.num_shards = 0;
  StreamingOptions o;
  o.d_min = 1.0;
  o.d_max = 10.0;
  EXPECT_FALSE(ShardedStreamingDm::Create(5, 2, MetricKind::kEuclidean, o,
                                          sharding)
                   .ok());
  sharding.num_shards = 2;
  EXPECT_FALSE(ShardedStreamingDm::Create(0, 2, MetricKind::kEuclidean, o,
                                          sharding)
                   .ok());
  EXPECT_TRUE(ShardedStreamingDm::Create(5, 2, MetricKind::kEuclidean, o,
                                         sharding)
                  .ok());
}

TEST(ShardedStreamingDmTest, ReturnsExactlyKDistinctElements) {
  const Dataset ds = TestData(1, 2000);
  ShardedStreamingOptions sharding;
  sharding.num_shards = 4;
  auto algo = ShardedStreamingDm::Create(10, ds.dim(), ds.metric_kind(),
                                         OptionsFor(ds), sharding);
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 1);
  EXPECT_EQ(algo->ObservedElements(), 2000);
  const auto solution = algo->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(solution->points.size(), 10u);
  std::set<int64_t> ids;
  for (const int64_t id : solution->Ids()) ids.insert(id);
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_NEAR(solution->diversity,
              MinPairwiseDistance(solution->points, ds.metric()), 1e-12);
}

TEST(ShardedStreamingDmTest, RoundRobinSplitsEvenly) {
  const Dataset ds = TestData(2, 1000);
  ShardedStreamingOptions sharding;
  sharding.num_shards = 4;
  auto algo = ShardedStreamingDm::Create(5, ds.dim(), ds.metric_kind(),
                                         OptionsFor(ds), sharding);
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 1);
  for (size_t s = 0; s < algo->num_shards(); ++s) {
    EXPECT_EQ(algo->shard(s).ObservedElements(), 250);
  }
}

TEST(ShardedStreamingDmTest, DiversityWithinComposableCoresetGuarantee) {
  // The merge-then-post-process driver realizes the composable-coreset
  // scheme with (1−ε)/2-approximate per-shard selections and a GMM
  // (1/2-approximate) reduce step, so its diversity is within a constant
  // factor of the single-stream run. The worst-case constant is
  // (1−ε)/6 ≈ 0.15 relative to OPT; assert a comfortable empirical margin
  // of it against the (upper-bounding) single-stream diversity across
  // seeds and shard counts.
  for (const uint64_t seed : {3u, 4u, 5u}) {
    const Dataset ds = TestData(seed, 3000);
    const StreamingOptions options = OptionsFor(ds);
    auto single = StreamingDm::Create(8, ds.dim(), ds.metric_kind(), options);
    ASSERT_TRUE(single.ok());
    Feed(*single, ds, seed);
    const auto single_solution = single->Solve();
    ASSERT_TRUE(single_solution.ok());

    for (const size_t shards : {2u, 4u, 8u}) {
      ShardedStreamingOptions sharding;
      sharding.num_shards = shards;
      auto sharded = ShardedStreamingDm::Create(8, ds.dim(), ds.metric_kind(),
                                                options, sharding);
      ASSERT_TRUE(sharded.ok());
      Feed(*sharded, ds, seed);
      const auto solution = sharded->Solve();
      ASSERT_TRUE(solution.ok()) << solution.status().ToString();
      EXPECT_GE(solution->diversity,
                (1.0 - 0.1) / 6.0 * single_solution->diversity)
          << "seed=" << seed << " shards=" << shards;
    }
  }
}

TEST(ShardedStreamingDmTest, StorageSumsOverShards) {
  const Dataset ds = TestData(6, 1500);
  ShardedStreamingOptions sharding;
  sharding.num_shards = 3;
  auto algo = ShardedStreamingDm::Create(6, ds.dim(), ds.metric_kind(),
                                         OptionsFor(ds), sharding);
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 1);
  size_t sum = 0;
  for (size_t s = 0; s < algo->num_shards(); ++s) {
    sum += algo->shard(s).StoredElements();
  }
  EXPECT_EQ(algo->StoredElements(), sum);
  EXPECT_GT(sum, 0u);
}

TEST(ShardedStreamingDmTest, InfeasibleWhenStreamTooSmall) {
  const Dataset ds = TestData(7, 6);
  ShardedStreamingOptions sharding;
  sharding.num_shards = 3;  // 2 elements per shard, k = 5 — no shard fills
  auto algo = ShardedStreamingDm::Create(5, ds.dim(), ds.metric_kind(),
                                         OptionsFor(ds), sharding);
  ASSERT_TRUE(algo.ok());
  Feed(*algo, ds, 1);
  EXPECT_FALSE(algo->Solve().ok());
}

}  // namespace
}  // namespace fdm
