#include "geo/point_buffer.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace fdm {
namespace {

StreamPoint Make(int64_t id, int32_t group, const std::vector<double>& c) {
  return StreamPoint{id, group, std::span<const double>(c)};
}

TEST(PointBufferTest, StartsEmpty) {
  PointBuffer buf(3, 4);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dim(), 3u);
}

TEST(PointBufferTest, AddCopiesCoordinates) {
  PointBuffer buf(2, 4);
  std::vector<double> c{1.5, -2.5};
  buf.Add(Make(7, 1, c));
  c[0] = 999.0;  // mutate the source; the buffer must hold a copy
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_DOUBLE_EQ(buf.CoordsAt(0)[0], 1.5);
  EXPECT_DOUBLE_EQ(buf.CoordsAt(0)[1], -2.5);
  EXPECT_EQ(buf.IdAt(0), 7);
  EXPECT_EQ(buf.GroupAt(0), 1);
}

TEST(PointBufferTest, MinDistanceToEmptyIsInfinity) {
  PointBuffer buf(2, 4);
  const std::vector<double> q{0.0, 0.0};
  const Metric m(MetricKind::kEuclidean);
  EXPECT_EQ(buf.MinDistanceTo(q, m), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(buf.AllAtLeast(q, m, 1e100));
}

TEST(PointBufferTest, MinDistanceFindsNearest) {
  PointBuffer buf(2, 4);
  buf.Add(Make(0, 0, {0.0, 0.0}));
  buf.Add(Make(1, 0, {10.0, 0.0}));
  buf.Add(Make(2, 0, {0.0, 3.0}));
  const Metric m(MetricKind::kEuclidean);
  const std::vector<double> q{0.0, 1.0};
  EXPECT_DOUBLE_EQ(buf.MinDistanceTo(q, m), 1.0);  // nearest is (0,0)
}

TEST(PointBufferTest, AllAtLeastThresholdSemantics) {
  PointBuffer buf(1, 4);
  buf.Add(Make(0, 0, {0.0}));
  buf.Add(Make(1, 0, {5.0}));
  const Metric m(MetricKind::kEuclidean);
  const std::vector<double> q{2.0};
  EXPECT_TRUE(buf.AllAtLeast(q, m, 2.0));    // min distance exactly 2
  EXPECT_FALSE(buf.AllAtLeast(q, m, 2.01));  // below threshold
}

TEST(PointBufferTest, RemoveSwapKeepsOthers) {
  PointBuffer buf(1, 4);
  buf.Add(Make(0, 0, {0.0}));
  buf.Add(Make(1, 1, {1.0}));
  buf.Add(Make(2, 0, {2.0}));
  buf.RemoveSwap(0);  // last element moves into position 0
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.IdAt(0), 2);
  EXPECT_EQ(buf.GroupAt(0), 0);
  EXPECT_DOUBLE_EQ(buf.CoordsAt(0)[0], 2.0);
  EXPECT_EQ(buf.IdAt(1), 1);
}

TEST(PointBufferTest, RemoveSwapLastElement) {
  PointBuffer buf(1, 4);
  buf.Add(Make(0, 0, {0.0}));
  buf.Add(Make(1, 0, {1.0}));
  buf.RemoveSwap(1);
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.IdAt(0), 0);
}

TEST(PointBufferTest, ContainsId) {
  PointBuffer buf(1, 4);
  buf.Add(Make(42, 0, {0.0}));
  EXPECT_TRUE(buf.ContainsId(42));
  EXPECT_FALSE(buf.ContainsId(43));
}

TEST(PointBufferTest, ViewAtRoundTrips) {
  PointBuffer buf(2, 2);
  buf.Add(Make(5, 3, {1.0, 2.0}));
  const StreamPoint view = buf.ViewAt(0);
  EXPECT_EQ(view.id, 5);
  EXPECT_EQ(view.group, 3);
  ASSERT_EQ(view.coords.size(), 2u);
  EXPECT_DOUBLE_EQ(view.coords[1], 2.0);

  PointBuffer other(2, 2);
  other.Add(view);
  EXPECT_EQ(other.IdAt(0), 5);
  EXPECT_DOUBLE_EQ(other.CoordsAt(0)[0], 1.0);
}

TEST(PointBufferTest, ClearEmptiesBuffer) {
  PointBuffer buf(1, 2);
  buf.Add(Make(0, 0, {0.5}));
  buf.Clear();
  EXPECT_TRUE(buf.empty());
  const Metric m(MetricKind::kEuclidean);
  const std::vector<double> q{0.5};
  EXPECT_EQ(buf.MinDistanceTo(q, m), std::numeric_limits<double>::infinity());
}

TEST(PointBufferTest, GrowsBeyondReservedCapacity) {
  PointBuffer buf(1, 1);  // capacity is a reservation hint, not a cap
  for (int i = 0; i < 10; ++i) {
    buf.Add(Make(i, 0, {static_cast<double>(i)}));
  }
  EXPECT_EQ(buf.size(), 10u);
  EXPECT_EQ(buf.IdAt(9), 9);
}

}  // namespace
}  // namespace fdm
