// The query-path determinism contract (core/solve_pool.h): a Solve() that
// fans its per-rung / per-shard / per-candidate post-processing out over
// the shared solve pool must be bit-identical to the sequential solve —
// for every sink kind, every reachable kernel dispatch target, and every
// thread count — including across a mid-stream snapshot/restore and when
// SFDM-2 reuses warm rung memos after a partial invalidation. The
// ingest-side counterpart of this contract lives in
// stream_sink_batch_test.cc; the cross-target counterpart in
// incremental_solve_test.cc.

#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/sink_snapshot.h"
#include "core/stream_sink.h"
#include "data/synthetic.h"
#include "geo/simd/kernel_dispatch.h"
#include "service/sink_spec.h"
#include "util/binary_io.h"

namespace fdm {
namespace {

Dataset TestData(size_t n = 48) {
  BlobsOptions opt;
  opt.n = n;
  opt.num_groups = 2;  // SFDM1 requires exactly two groups
  opt.seed = 77;
  return MakeBlobs(opt);
}

/// Spec strings for all six sink kinds over `ds`, with `solve_threads=T`
/// appended by the caller. Going through `SinkSpec` (rather than the
/// harness registry) exercises the serving-side plumbing of the knob.
std::vector<std::string> AllKindSpecs(const Dataset& ds) {
  const DistanceBounds bounds = ComputeDistanceBoundsExact(ds);
  std::ostringstream common;
  common << " dim=" << ds.dim() << " dmin=" << bounds.min
         << " dmax=" << bounds.max;
  const std::string tail = common.str();
  return {
      "algo=streaming_dm k=4" + tail,
      "algo=sfdm1 quotas=2,2" + tail,
      "algo=sfdm2 quotas=2,2" + tail,
      "algo=adaptive k=4 dim=" + std::to_string(ds.dim()),
      "algo=sharded k=4 shards=3" + tail,
      "algo=sliding_window k=4 window=40 checkpoints=3" + tail,
  };
}

void ExpectSameOutcome(const Result<Solution>& a, const Result<Solution>& b,
                       const std::string& what) {
  ASSERT_EQ(a.ok(), b.ok()) << what << ": " << a.status().ToString()
                            << " vs " << b.status().ToString();
  if (!a.ok()) {
    EXPECT_EQ(a.status().code(), b.status().code()) << what;
    return;
  }
  EXPECT_EQ(a->Ids(), b->Ids()) << what;
  EXPECT_EQ(a->diversity, b->diversity) << what;
  EXPECT_EQ(a->mu, b->mu) << what;
  ASSERT_EQ(a->points.size(), b->points.size()) << what;
  for (size_t i = 0; i < a->points.size(); ++i) {
    EXPECT_EQ(a->points.GroupAt(i), b->points.GroupAt(i)) << what;
    for (size_t d = 0; d < a->points.dim(); ++d) {
      EXPECT_EQ(a->points.CoordsAt(i)[d], b->points.CoordsAt(i)[d])
          << what << " point " << i << " dim " << d;
    }
  }
}

std::unique_ptr<StreamSink> MakeSink(const std::string& spec) {
  auto sink = MakeSinkFromSpec(spec);
  EXPECT_TRUE(sink.ok()) << spec << ": " << sink.status().ToString();
  return sink.ok() ? std::move(sink.value()) : nullptr;
}

/// Snapshot + tag-dispatched restore of a polymorphic sink.
Result<std::unique_ptr<StreamSink>> RoundTrip(const StreamSink& sink) {
  SnapshotWriter writer;
  if (Status s = sink.Snapshot(writer); !s.ok()) return s;
  auto reader = SnapshotReader::FromBytes(writer.Serialize());
  if (!reader.ok()) return reader.status();
  return RestoreSink(*reader);
}

// The tentpole matrix: six sink kinds × every reachable kernel target ×
// solve_threads {1, 2, 4, 0(=hardware)} — parallel Solve() bit-identical
// to the sequential sink's at every stream prefix sampled, with the
// parallel sink additionally swapped for a snapshot-restored copy at the
// midpoint (the restored sink keeps its serialized solve_threads).
TEST(ParallelSolveTest, BitIdenticalAcrossKindsTargetsAndThreads) {
  const Dataset ds = TestData();
  for (const std::string& base : AllKindSpecs(ds)) {
    for (const std::string_view target : simd::AvailableKernelTargets()) {
      ASSERT_TRUE(simd::internal::ForceKernelTargetForTest(target));
      for (const int threads : {1, 2, 4, 0}) {
        const std::string what = base + " [" + std::string(target) +
                                 " solve_threads=" +
                                 std::to_string(threads) + "]";
        auto sequential = MakeSink(base + " solve_threads=1");
        auto parallel =
            MakeSink(base + " solve_threads=" + std::to_string(threads));
        ASSERT_NE(sequential, nullptr);
        ASSERT_NE(parallel, nullptr);
        for (size_t i = 0; i < ds.size(); ++i) {
          sequential->Observe(ds.At(i));
          parallel->Observe(ds.At(i));
          if (i + 1 == ds.size() / 2) {
            // Mid-stream durability cycle of the *parallel* sink.
            auto restored = RoundTrip(*parallel);
            ASSERT_TRUE(restored.ok()) << what << ": "
                                       << restored.status().ToString();
            EXPECT_EQ((*restored)->StateVersion(), parallel->StateVersion())
                << what;
            parallel = std::move(restored.value());
          }
          // Query at a handful of prefixes (every prefix would be O(n)
          // solves per cell across a large matrix).
          if ((i + 1) % 12 == 0 || i + 1 == ds.size()) {
            ExpectSameOutcome(sequential->Solve(), parallel->Solve(),
                              what + " prefix " + std::to_string(i + 1));
          }
        }
        EXPECT_EQ(sequential->StateVersion(), parallel->StateVersion())
            << what;
        EXPECT_EQ(sequential->StoredElements(), parallel->StoredElements())
            << what;
      }
    }
    ASSERT_TRUE(simd::internal::ForceKernelTargetForTest(""));
  }
}

// SFDM-2's warm-memo path under parallel solve: a second Solve() after a
// partial rung invalidation recomputes only the dirty rungs (on pool
// workers) and reuses the warm memos for the rest — the result must still
// match both the sequential sink and a fresh replay.
TEST(ParallelSolveTest, Sfdm2WarmMemoReuseAfterPartialInvalidation) {
  const Dataset ds = TestData(60);
  const DistanceBounds bounds = ComputeDistanceBoundsExact(ds);
  std::ostringstream spec;
  spec << "algo=sfdm2 quotas=2,2 dim=" << ds.dim() << " dmin=" << bounds.min
       << " dmax=" << bounds.max;
  auto sequential = MakeSink(spec.str() + " solve_threads=1");
  auto parallel = MakeSink(spec.str() + " solve_threads=4");
  ASSERT_NE(sequential, nullptr);
  ASSERT_NE(parallel, nullptr);

  const size_t warm_prefix = ds.size() / 2;
  for (size_t i = 0; i < warm_prefix; ++i) {
    sequential->Observe(ds.At(i));
    parallel->Observe(ds.At(i));
  }
  // Warm every rung memo in both sinks.
  ExpectSameOutcome(sequential->Solve(), parallel->Solve(), "warm solve");

  // The stream tail typically lands in a subset of rungs (near-saturated
  // candidates reject), so this is a *partial* invalidation: some memos go
  // stale, the rest stay warm and must be reused as-is.
  for (size_t i = warm_prefix; i < ds.size(); ++i) {
    sequential->Observe(ds.At(i));
    parallel->Observe(ds.At(i));
  }
  const Result<Solution> expected = sequential->Solve();
  ExpectSameOutcome(expected, parallel->Solve(), "post-invalidation solve");

  // Fresh cold replay cross-check: memo reuse changed nothing.
  auto fresh = MakeSink(spec.str() + " solve_threads=4");
  ASSERT_NE(fresh, nullptr);
  for (size_t i = 0; i < ds.size(); ++i) fresh->Observe(ds.At(i));
  ExpectSameOutcome(expected, fresh->Solve(), "fresh cold replay");
}

// Flipping solve_threads mid-stream is a pure query-latency knob: it must
// not advance the state version (a version-keyed SolveCache keeps serving
// its memoized solution) and the next Solve() is bit-identical.
TEST(ParallelSolveTest, SetSolveThreadsDoesNotAdvanceStateVersion) {
  const Dataset ds = TestData();
  for (const std::string& base : AllKindSpecs(ds)) {
    auto sink = MakeSink(base + " solve_threads=1");
    ASSERT_NE(sink, nullptr);
    for (size_t i = 0; i < ds.size(); ++i) sink->Observe(ds.At(i));
    const Result<Solution> before = sink->Solve();
    const uint64_t version = sink->StateVersion();
    sink->SetSolveThreads(4);
    EXPECT_EQ(sink->StateVersion(), version) << base;
    ExpectSameOutcome(before, sink->Solve(), base + " after SetSolveThreads");
    sink->SetSolveThreads(1);
    EXPECT_EQ(sink->StateVersion(), version) << base;
  }
}

// solve_threads survives the spec round-trip (Parse → ToString → Parse)
// and is rejected when negative.
TEST(ParallelSolveTest, SpecRoundTripAndValidation) {
  auto spec = SinkSpec::Parse(
      "algo=sfdm2 dim=4 quotas=2,2 dmin=0.1 dmax=50 solve_threads=4");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->solve_threads, 4);
  auto reparsed = SinkSpec::Parse(spec->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->solve_threads, 4);
  // Default (1) stays out of the canonical form.
  auto plain = SinkSpec::Parse("algo=streaming_dm dim=4 k=3 dmin=1 dmax=9");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->ToString().find("solve_threads"), std::string::npos);
  EXPECT_FALSE(
      SinkSpec::Parse("algo=streaming_dm dim=4 k=3 solve_threads=-1").ok());
}

}  // namespace
}  // namespace fdm
