// Snapshot round-trip invariants for every sink kind: restoring a snapshot
// taken after ANY stream prefix yields a sink whose Solve(),
// StoredElements(), and ObservedElements() are bit-identical to the
// uninterrupted instance — and which keeps evolving identically when the
// rest of the stream is fed to both.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive_streaming_dm.h"
#include "core/sfdm1.h"
#include "core/sfdm2.h"
#include "core/sharded_stream.h"
#include "core/sink_snapshot.h"
#include "core/sliding_window.h"
#include "core/streaming_dm.h"
#include "data/synthetic.h"
#include "util/binary_io.h"

namespace fdm {
namespace {

Dataset SmallData(int m, uint64_t seed = 41, size_t n = 60) {
  BlobsOptions opt;
  opt.n = n;
  opt.num_groups = m;
  opt.seed = seed;
  return MakeBlobs(opt);
}

StreamingOptions OptionsFor(const Dataset& ds) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  StreamingOptions o;
  o.epsilon = 0.1;
  o.d_min = b.min;
  o.d_max = b.max;
  return o;
}

template <typename Algo>
Result<Algo> RoundTrip(const Algo& algo) {
  SnapshotWriter writer;
  Status snap = algo.Snapshot(writer);
  if (!snap.ok()) return snap;
  auto reader = SnapshotReader::FromBytes(writer.Serialize());
  if (!reader.ok()) return reader.status();
  return Algo::Restore(*reader);
}

template <typename Algo>
void ExpectIdentical(const Algo& original, const Algo& restored) {
  EXPECT_EQ(original.ObservedElements(), restored.ObservedElements());
  EXPECT_EQ(original.StoredElements(), restored.StoredElements());
  const auto a = original.Solve();
  const auto b = restored.Solve();
  ASSERT_EQ(a.ok(), b.ok());
  if (!a.ok()) {
    EXPECT_EQ(a.status().code(), b.status().code());
    return;
  }
  EXPECT_EQ(a->Ids(), b->Ids());
  EXPECT_DOUBLE_EQ(a->diversity, b->diversity);
  EXPECT_DOUBLE_EQ(a->mu, b->mu);
  ASSERT_EQ(a->points.size(), b->points.size());
  for (size_t i = 0; i < a->points.size(); ++i) {
    for (size_t d = 0; d < a->points.dim(); ++d) {
      EXPECT_EQ(a->points.CoordsAt(i)[d], b->points.CoordsAt(i)[d]);
    }
  }
}

/// The satellite-task harness: snapshot after EVERY prefix length of a
/// small stream; each restored instance must match, and the one restored
/// at the midpoint must stay identical through the rest of the stream.
template <typename Algo>
void RunPrefixRoundTrips(const Dataset& ds, Algo algo) {
  std::unique_ptr<Algo> resumed;  // restored at the midpoint, then fed on
  for (size_t i = 0; i < ds.size(); ++i) {
    algo.Observe(ds.At(i));
    if (resumed != nullptr) resumed->Observe(ds.At(i));
    auto restored = RoundTrip(algo);
    ASSERT_TRUE(restored.ok())
        << "prefix " << (i + 1) << ": " << restored.status().ToString();
    ExpectIdentical(algo, *restored);
    if (i + 1 == ds.size() / 2) {
      resumed = std::make_unique<Algo>(std::move(restored.value()));
    }
  }
  ASSERT_NE(resumed, nullptr);
  ExpectIdentical(algo, *resumed);
}

TEST(SnapshotTest, StreamingDmEveryPrefix) {
  const Dataset ds = SmallData(1);
  auto algo = StreamingDm::Create(4, ds.dim(), ds.metric_kind(),
                                  OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  RunPrefixRoundTrips(ds, std::move(algo.value()));
}

TEST(SnapshotTest, Sfdm1EveryPrefix) {
  const Dataset ds = SmallData(2);
  FairnessConstraint constraint;
  constraint.quotas = {2, 2};
  auto algo =
      Sfdm1::Create(constraint, ds.dim(), ds.metric_kind(), OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  RunPrefixRoundTrips(ds, std::move(algo.value()));
}

TEST(SnapshotTest, Sfdm2EveryPrefix) {
  const Dataset ds = SmallData(3);
  FairnessConstraint constraint;
  constraint.quotas = {2, 1, 2};
  auto algo =
      Sfdm2::Create(constraint, ds.dim(), ds.metric_kind(), OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  RunPrefixRoundTrips(ds, std::move(algo.value()));
}

TEST(SnapshotTest, AdaptiveStreamingDmEveryPrefix) {
  const Dataset ds = SmallData(1, 43);
  auto algo =
      AdaptiveStreamingDm::Create(4, ds.dim(), ds.metric_kind(), 0.1);
  ASSERT_TRUE(algo.ok());
  RunPrefixRoundTrips(ds, std::move(algo.value()));
}

TEST(SnapshotTest, ShardedStreamingDmEveryPrefix) {
  const Dataset ds = SmallData(1, 44);
  ShardedStreamingOptions sharding;
  sharding.num_shards = 3;
  sharding.batch_threads = 1;
  auto algo = ShardedStreamingDm::Create(4, ds.dim(), ds.metric_kind(),
                                         OptionsFor(ds), sharding);
  ASSERT_TRUE(algo.ok());
  RunPrefixRoundTrips(ds, std::move(algo.value()));
}

TEST(SnapshotTest, SlidingWindowEveryPrefix) {
  const Dataset ds = SmallData(1, 45, 80);
  const StreamingOptions streaming = OptionsFor(ds);
  const size_t dim = ds.dim();
  const MetricKind metric = ds.metric_kind();
  auto algo = SlidingWindow<StreamingDm>::Create(
      30, 3, [dim, metric, streaming] {
        return StreamingDm::Create(4, dim, metric, streaming);
      });
  ASSERT_TRUE(algo.ok());
  RunPrefixRoundTrips(ds, std::move(algo.value()));
}

TEST(SnapshotTest, Sfdm2PreservesAblationKnobs) {
  const Dataset ds = SmallData(2, 46);
  FairnessConstraint constraint;
  constraint.quotas = {2, 2};
  auto algo =
      Sfdm2::Create(constraint, ds.dim(), ds.metric_kind(), OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  algo->set_warm_start(false);
  algo->set_greedy_augmentation(false);
  for (size_t i = 0; i < ds.size(); ++i) algo->Observe(ds.At(i));
  auto restored = RoundTrip(*algo);
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->warm_start());
  EXPECT_FALSE(restored->greedy_augmentation());
}

TEST(SnapshotTest, DispatcherRestoresByTag) {
  const Dataset ds = SmallData(2, 47);
  FairnessConstraint constraint;
  constraint.quotas = {2, 2};
  auto algo =
      Sfdm2::Create(constraint, ds.dim(), ds.metric_kind(), OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  for (size_t i = 0; i < ds.size(); ++i) algo->Observe(ds.At(i));

  SnapshotWriter writer;
  ASSERT_TRUE(algo->Snapshot(writer).ok());
  auto reader = SnapshotReader::FromBytes(writer.Serialize());
  ASSERT_TRUE(reader.ok());
  auto restored = RestoreSink(*reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const auto a = algo->Solve();
  const auto b = (*restored)->Solve();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Ids(), b->Ids());
  EXPECT_DOUBLE_EQ(a->diversity, b->diversity);
}

TEST(SnapshotTest, CorruptionIsDetected) {
  const Dataset ds = SmallData(1, 48);
  auto algo = StreamingDm::Create(4, ds.dim(), ds.metric_kind(),
                                  OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  for (size_t i = 0; i < ds.size(); ++i) algo->Observe(ds.At(i));
  SnapshotWriter writer;
  ASSERT_TRUE(algo->Snapshot(writer).ok());
  std::string framed = writer.Serialize();

  // Flip one payload byte: the frame checksum must reject the file.
  std::string corrupt = framed;
  corrupt[corrupt.size() / 2] ^= 0x40;
  EXPECT_FALSE(SnapshotReader::FromBytes(corrupt).ok());

  // Truncation must be rejected too.
  EXPECT_FALSE(
      SnapshotReader::FromBytes(framed.substr(0, framed.size() - 9)).ok());

  // And a wrong magic.
  std::string not_snap = framed;
  not_snap[0] = 'X';
  EXPECT_FALSE(SnapshotReader::FromBytes(not_snap).ok());
}

TEST(SnapshotTest, FileRoundTrip) {
  const Dataset ds = SmallData(1, 49);
  auto algo = StreamingDm::Create(3, ds.dim(), ds.metric_kind(),
                                  OptionsFor(ds));
  ASSERT_TRUE(algo.ok());
  for (size_t i = 0; i < ds.size(); ++i) algo->Observe(ds.At(i));

  const std::string path = ::testing::TempDir() + "/fdm_snapshot_test.snap";
  SnapshotWriter writer;
  ASSERT_TRUE(algo->Snapshot(writer).ok());
  ASSERT_TRUE(writer.WriteFile(path).ok());
  auto reader = SnapshotReader::FromFile(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto restored = StreamingDm::Restore(*reader);
  ASSERT_TRUE(restored.ok());
  ExpectIdentical(*algo, *restored);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fdm
