#include "core/streaming_candidate.h"

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "util/rng.h"

namespace fdm {
namespace {

StreamPoint P(int64_t id, const std::vector<double>& c, int32_t g = 0) {
  return StreamPoint{id, g, std::span<const double>(c)};
}

TEST(StreamingCandidateTest, AcceptsFirstPoint) {
  StreamingCandidate cand(1.0, 3, 1);
  const Metric m(MetricKind::kEuclidean);
  EXPECT_TRUE(cand.TryAdd(P(0, {0.0}), m));
  EXPECT_EQ(cand.points().size(), 1u);
}

TEST(StreamingCandidateTest, RejectsCloserThanMu) {
  StreamingCandidate cand(1.0, 3, 1);
  const Metric m(MetricKind::kEuclidean);
  EXPECT_TRUE(cand.TryAdd(P(0, {0.0}), m));
  EXPECT_FALSE(cand.TryAdd(P(1, {0.5}), m));   // d = 0.5 < µ
  EXPECT_FALSE(cand.TryAdd(P(2, {0.999}), m)); // d just below µ
  EXPECT_TRUE(cand.TryAdd(P(3, {1.0}), m));    // d = µ accepted (>=)
  EXPECT_EQ(cand.points().size(), 2u);
}

TEST(StreamingCandidateTest, RejectsWhenFull) {
  StreamingCandidate cand(1.0, 2, 1);
  const Metric m(MetricKind::kEuclidean);
  EXPECT_TRUE(cand.TryAdd(P(0, {0.0}), m));
  EXPECT_TRUE(cand.TryAdd(P(1, {10.0}), m));
  EXPECT_TRUE(cand.Full());
  EXPECT_FALSE(cand.TryAdd(P(2, {20.0}), m));  // far enough, but full
  EXPECT_EQ(cand.points().size(), 2u);
}

TEST(StreamingCandidateTest, PairwiseInvariantHolds) {
  // Invariant: stored points are pairwise >= µ apart, so a full candidate
  // certifies div(S_µ) >= µ (case 1 of Theorem 1's proof).
  const double mu = 0.35;
  StreamingCandidate cand(mu, 8, 2);
  const Metric m(MetricKind::kEuclidean);
  Rng rng(5);
  for (int64_t i = 0; i < 500; ++i) {
    const std::vector<double> c{rng.NextDouble(), rng.NextDouble()};
    cand.TryAdd(P(i, c), m);
  }
  EXPECT_GE(MinPairwiseDistance(cand.points(), m), mu);
}

TEST(StreamingCandidateTest, RejectedImpliesCloseOrFull) {
  // Case 2 of Theorem 1's proof: while not full, any rejected point is
  // within µ of the kept set.
  const double mu = 0.4;
  StreamingCandidate cand(mu, 1000, 2);  // effectively never full
  const Metric m(MetricKind::kEuclidean);
  Rng rng(6);
  for (int64_t i = 0; i < 300; ++i) {
    const std::vector<double> c{rng.NextDouble(), rng.NextDouble()};
    const bool added = cand.TryAdd(P(i, c), m);
    if (!added) {
      EXPECT_LT(cand.points().MinDistanceTo(c, m), mu);
    }
  }
}

TEST(StreamingCandidateTest, OrderDependenceIsExpected) {
  // The kept set depends on arrival order; both orders obey the invariant.
  const Metric m(MetricKind::kEuclidean);
  StreamingCandidate forward(1.0, 2, 1);
  EXPECT_TRUE(forward.TryAdd(P(0, {0.0}), m));
  EXPECT_FALSE(forward.TryAdd(P(1, {0.5}), m));
  EXPECT_TRUE(forward.TryAdd(P(2, {1.5}), m));

  StreamingCandidate backward(1.0, 2, 1);
  EXPECT_TRUE(backward.TryAdd(P(2, {1.5}), m));
  EXPECT_TRUE(backward.TryAdd(P(1, {0.5}), m));
  EXPECT_FALSE(backward.TryAdd(P(0, {0.0}), m));

  EXPECT_GE(MinPairwiseDistance(forward.points(), m), 1.0);
  EXPECT_GE(MinPairwiseDistance(backward.points(), m), 1.0);
}

TEST(StreamingCandidateTest, TryAddBatchMatchesSequentialTryAdd) {
  // The batched admission path (one SIMD pass against the pre-batch set,
  // then intra-batch re-checks) must keep exactly the sequential loop's
  // elements, including across the capacity boundary mid-batch.
  const Metric m(MetricKind::kEuclidean);
  Rng rng(31);
  for (const size_t batch_size : {2u, 5u, 16u, 100u}) {
    StreamingCandidate sequential(0.3, 12, 2);
    StreamingCandidate batched(0.3, 12, 2);
    std::vector<std::vector<double>> coords;
    std::vector<StreamPoint> batch;
    int64_t id = 0;
    for (int round = 0; round < 30; ++round) {
      coords.clear();
      batch.clear();
      for (size_t t = 0; t < batch_size; ++t) {
        coords.push_back({rng.NextDouble(), rng.NextDouble()});
        batch.push_back(StreamPoint{id++, 0, coords.back()});
      }
      size_t kept_sequential = 0;
      for (const StreamPoint& p : batch) {
        if (sequential.TryAdd(p, m)) ++kept_sequential;
      }
      ASSERT_EQ(kept_sequential, batched.TryAddBatch(batch, m))
          << "batch_size=" << batch_size << " round=" << round;
    }
    ASSERT_EQ(sequential.points().size(), batched.points().size());
    for (size_t i = 0; i < sequential.points().size(); ++i) {
      EXPECT_EQ(sequential.points().IdAt(i), batched.points().IdAt(i));
    }
  }
}

TEST(StreamingCandidateTest, TryAddBatchIndexedReplaysOnlyListedPositions) {
  // The group-specific candidates replay a subset of the batch; the
  // indexed form must match feeding exactly that subset sequentially.
  const Metric m(MetricKind::kEuclidean);
  Rng rng(37);
  StreamingCandidate sequential(0.25, 10, 2);
  StreamingCandidate batched(0.25, 10, 2);
  std::vector<std::vector<double>> coords;
  std::vector<StreamPoint> batch;
  for (int64_t i = 0; i < 60; ++i) {
    coords.push_back({rng.NextDouble(), rng.NextDouble()});
    batch.push_back(StreamPoint{i, static_cast<int32_t>(i % 3), coords.back()});
  }
  std::vector<size_t> positions;
  for (size_t t = 0; t < batch.size(); t += 3) positions.push_back(t);
  size_t kept_sequential = 0;
  for (const size_t t : positions) {
    if (sequential.TryAdd(batch[t], m)) ++kept_sequential;
  }
  ASSERT_EQ(kept_sequential, batched.TryAddBatchIndexed(batch, positions, m));
  ASSERT_EQ(sequential.points().size(), batched.points().size());
  for (size_t i = 0; i < sequential.points().size(); ++i) {
    EXPECT_EQ(sequential.points().IdAt(i), batched.points().IdAt(i));
  }
}

TEST(StreamingCandidateTest, MetadataPreserved) {
  StreamingCandidate cand(0.5, 4, 1);
  const Metric m(MetricKind::kEuclidean);
  EXPECT_TRUE(cand.TryAdd(P(42, {0.0}, 3), m));
  EXPECT_EQ(cand.points().IdAt(0), 42);
  EXPECT_EQ(cand.points().GroupAt(0), 3);
  EXPECT_DOUBLE_EQ(cand.mu(), 0.5);
  EXPECT_EQ(cand.capacity(), 4u);
}

}  // namespace
}  // namespace fdm
