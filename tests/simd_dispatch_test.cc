// The runtime kernel-dispatch layer: target discovery, the FDM_KERNEL
// override, and the test-force hook. The bit-exactness of the targets
// themselves is covered by point_buffer_kernels_test.cc; this file pins
// the dispatch *mechanics* the CI matrix relies on.

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "geo/simd/kernel_dispatch.h"
#include "geo/simd/kernel_types.h"

namespace fdm::simd {
namespace {

TEST(SimdDispatchTest, ScalarIsAlwaysAvailableAndFirst) {
  const std::vector<std::string_view> targets = AvailableKernelTargets();
  ASSERT_FALSE(targets.empty());
  EXPECT_EQ(targets.front(), "scalar");
  for (const std::string_view t : targets) {
    EXPECT_TRUE(t == "scalar" || t == "avx2" || t == "neon")
        << "unexpected target " << t;
  }
}

TEST(SimdDispatchTest, ActiveTargetHonorsEnvironmentOverride) {
  // The dispatch table is resolved once per process, so this test can only
  // assert consistency with whatever environment it was launched under —
  // which is exactly what the CI matrix legs do (ctest under
  // FDM_KERNEL=scalar and FDM_KERNEL=avx2).
  const std::vector<std::string_view> targets = AvailableKernelTargets();
  const char* env = std::getenv("FDM_KERNEL");
  if (env != nullptr && env[0] != '\0') {
    bool available = false;
    for (const std::string_view t : targets) {
      if (t == env) available = true;
    }
    if (available) {
      EXPECT_EQ(ActiveKernelName(), env);
      return;
    }
  }
  // No (usable) override: the default is the best available target.
  EXPECT_EQ(ActiveKernelName(), targets.back());
}

TEST(SimdDispatchTest, ForceForTestSwitchesAndRestores) {
  const std::string default_name(ActiveKernelName());
  for (const std::string_view target : AvailableKernelTargets()) {
    ASSERT_TRUE(internal::ForceKernelTargetForTest(target));
    EXPECT_EQ(ActiveKernelName(), target);
    // Every slot of the forced table is populated.
    const KernelOps& ops = ActiveKernelOps();
    EXPECT_NE(ops.euclidean_min, nullptr);
    EXPECT_NE(ops.manhattan_min, nullptr);
    EXPECT_NE(ops.angular_min, nullptr);
    EXPECT_NE(ops.euclidean_min_many, nullptr);
    EXPECT_NE(ops.manhattan_min_many, nullptr);
    EXPECT_NE(ops.angular_min_many, nullptr);
  }
  EXPECT_FALSE(internal::ForceKernelTargetForTest("sse9"));
  // An unknown target changes nothing.
  EXPECT_EQ(ActiveKernelName(), AvailableKernelTargets().back());
  ASSERT_TRUE(internal::ForceKernelTargetForTest(""));
  EXPECT_EQ(ActiveKernelName(), default_name);
}

}  // namespace
}  // namespace fdm::simd
