// The runtime kernel-dispatch layer: target discovery, the FDM_KERNEL
// override (including its hard-fail path for unknown names), and the
// test-force hook. The bit-exactness of the targets themselves is covered
// by point_buffer_kernels_test.cc; this file pins the dispatch *mechanics*
// the CI matrix relies on.

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "geo/simd/kernel_dispatch.h"
#include "geo/simd/kernel_types.h"

namespace fdm::simd {
namespace {

bool IsAvailable(std::string_view name) {
  for (const std::string_view t : AvailableKernelTargets()) {
    if (t == name) return true;
  }
  return false;
}

TEST(SimdDispatchTest, ScalarIsAlwaysAvailableAndFirst) {
  const std::vector<std::string_view> targets = AvailableKernelTargets();
  ASSERT_FALSE(targets.empty());
  EXPECT_EQ(targets.front(), "scalar");
  for (const std::string_view t : targets) {
    EXPECT_TRUE(t == "scalar" || t == "avx2" || t == "avx512" || t == "neon")
        << "unexpected target " << t;
  }
}

TEST(SimdDispatchTest, Avx512ListedWhenCpuSupportsIt) {
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  // The availability rule is exactly "compiled in && cpuid says avx512f".
  // The TU is always compiled on x86-64 (CMake adds -mavx512f whenever the
  // compiler accepts it), so on hardware with the foundation subset the
  // target must be discoverable — this is what lets the CI matrix leg run
  // the avx512 ctest pass instead of skipping.
  if (__builtin_cpu_supports("avx512f")) {
    EXPECT_TRUE(IsAvailable("avx512"));
  } else {
    EXPECT_FALSE(IsAvailable("avx512"));
  }
#else
  GTEST_SKIP() << "avx512 availability is x86-64-only";
#endif
}

TEST(SimdDispatchTest, ActiveTargetHonorsEnvironmentOverride) {
  // The dispatch table is resolved once per process, so this test can only
  // assert consistency with whatever environment it was launched under —
  // which is exactly what the CI matrix legs do (ctest under
  // FDM_KERNEL=scalar / avx2 / avx512).
  const std::vector<std::string_view> targets = AvailableKernelTargets();
  const char* env = std::getenv("FDM_KERNEL");
  if (env != nullptr && env[0] != '\0') {
    bool available = false;
    for (const std::string_view t : targets) {
      if (t == env) available = true;
    }
    if (available) {
      EXPECT_EQ(ActiveKernelName(), env);
      return;
    }
  }
  // No (usable) override: the default is the best available target.
  EXPECT_EQ(ActiveKernelName(), targets.back());
}

TEST(SimdDispatchTest, ForceForTestSwitchesAndRestores) {
  const std::string default_name(ActiveKernelName());
  for (const std::string_view target : AvailableKernelTargets()) {
    ASSERT_TRUE(internal::ForceKernelTargetForTest(target));
    EXPECT_EQ(ActiveKernelName(), target);
    // Every slot of the forced table is populated — min-reductions,
    // batched min-reductions, and the offline one-to-many dists ops.
    const KernelOps& ops = ActiveKernelOps();
    EXPECT_NE(ops.euclidean_min, nullptr);
    EXPECT_NE(ops.manhattan_min, nullptr);
    EXPECT_NE(ops.angular_min, nullptr);
    EXPECT_NE(ops.euclidean_min_many, nullptr);
    EXPECT_NE(ops.manhattan_min_many, nullptr);
    EXPECT_NE(ops.angular_min_many, nullptr);
    EXPECT_NE(ops.euclidean_dists, nullptr);
    EXPECT_NE(ops.manhattan_dists, nullptr);
    EXPECT_NE(ops.angular_dists, nullptr);
  }
  EXPECT_FALSE(internal::ForceKernelTargetForTest("sse9"));
  // An unknown target changes nothing.
  EXPECT_EQ(ActiveKernelName(), AvailableKernelTargets().back());
  ASSERT_TRUE(internal::ForceKernelTargetForTest(""));
  EXPECT_EQ(ActiveKernelName(), default_name);
}

TEST(SimdDispatchTest, ClassifyKernelEnvThreeWaySplit) {
  // Every available target classifies as available; every *known* name
  // that is not available here (e.g. "neon" on x86, "avx512" on an old
  // CPU) classifies as known-but-unavailable — the warn-and-fall-back
  // path. Anything else is unknown — the fail-loudly path.
  for (const std::string_view known : {"scalar", "avx2", "avx512", "neon"}) {
    const internal::KernelEnvClass c = internal::ClassifyKernelEnv(known);
    if (IsAvailable(known)) {
      EXPECT_EQ(c, internal::KernelEnvClass::kAvailable) << known;
    } else {
      EXPECT_EQ(c, internal::KernelEnvClass::kKnownUnavailable) << known;
    }
  }
  EXPECT_EQ(internal::ClassifyKernelEnv("sse9"),
            internal::KernelEnvClass::kUnknown);
  EXPECT_EQ(internal::ClassifyKernelEnv("AVX2"),
            internal::KernelEnvClass::kUnknown);  // names are exact
  EXPECT_EQ(internal::ClassifyKernelEnv(""),
            internal::KernelEnvClass::kUnknown);
}

// End-to-end check of the hard-fail path: a process launched with a
// garbage FDM_KERNEL must exit with status 2 and print the valid-target
// list. The threadsafe death-test style re-executes the test binary from
// scratch in the child, so the child's (modified) environment drives a
// fresh dispatch resolution — the fork-style default would inherit the
// parent's already-resolved table and never hit the env parse.
TEST(SimdDispatchTest, GarbageEnvFailsLoudlyWithValidTargetList) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* prior = std::getenv("FDM_KERNEL");
  const std::string saved = prior != nullptr ? prior : "";
  ::setenv("FDM_KERNEL", "sse9", /*overwrite=*/1);
  EXPECT_EXIT({ (void)ActiveKernelName(); }, testing::ExitedWithCode(2),
              "FDM_KERNEL=sse9 is not a valid kernel target; valid targets: "
              "scalar, avx2, avx512, neon");
  if (prior != nullptr) {
    ::setenv("FDM_KERNEL", saved.c_str(), /*overwrite=*/1);
  } else {
    ::unsetenv("FDM_KERNEL");
  }
}

}  // namespace
}  // namespace fdm::simd
