#include "baselines/fair_swap.h"

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "data/synthetic.h"
#include "exact/brute_force.h"
#include "util/rng.h"

namespace fdm {
namespace {

FairnessConstraint Quotas(std::vector<int> q) {
  FairnessConstraint c;
  c.quotas = std::move(q);
  return c;
}

TEST(FairSwapTest, RejectsNonTwoGroupInputs) {
  BlobsOptions opt;
  opt.n = 50;
  opt.num_groups = 3;
  opt.seed = 1;
  const Dataset ds = MakeBlobs(opt);
  EXPECT_EQ(FairSwap(ds, Quotas({1, 1, 1})).status().code(),
            StatusCode::kUnsupported);
}

TEST(FairSwapTest, RejectsInfeasibleQuota) {
  Dataset ds("tiny", 1, 2, MetricKind::kEuclidean);
  ds.Add(std::vector<double>{0.0}, 0);
  ds.Add(std::vector<double>{1.0}, 0);
  ds.Add(std::vector<double>{2.0}, 1);
  EXPECT_EQ(FairSwap(ds, Quotas({1, 2})).status().code(),
            StatusCode::kInfeasible);
}

TEST(FairSwapTest, SolutionIsFair) {
  BlobsOptions opt;
  opt.n = 500;
  opt.num_groups = 2;
  opt.seed = 3;
  const Dataset ds = MakeBlobs(opt);
  for (const auto& quotas :
       {std::vector<int>{5, 5}, std::vector<int>{7, 3}, std::vector<int>{1, 9}}) {
    const auto solution = FairSwap(ds, Quotas(quotas));
    ASSERT_TRUE(solution.ok()) << solution.status().ToString();
    EXPECT_EQ(solution->points.size(), 10u);
    EXPECT_TRUE(SatisfiesQuotas(solution->points, quotas));
  }
}

TEST(FairSwapTest, AlreadyFairBlindSolutionUntouched) {
  // Alternating far-apart points: the GMM solution is naturally balanced,
  // so no swap happens and diversity equals the unconstrained GMM's.
  Dataset ds("alt", 1, 2, MetricKind::kEuclidean);
  for (int i = 0; i < 20; ++i) {
    ds.Add(std::vector<double>{static_cast<double>(i) * 10.0}, i % 2);
  }
  const auto solution = FairSwap(ds, Quotas({2, 2}));
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(SatisfiesQuotas(solution->points, std::vector<int>{2, 2}));
  EXPECT_GT(solution->diversity, 0.0);
}

TEST(FairSwapTest, QuarterApproximationOnSmallInstances) {
  // [32]: FairSwap is a 1/4-approximation for m = 2.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    BlobsOptions opt;
    opt.n = 14;
    opt.num_groups = 2;
    opt.seed = seed;
    const Dataset ds = MakeBlobs(opt);
    const FairnessConstraint c = Quotas({2, 2});
    if (!c.ValidateAgainst(ds.GroupSizes()).ok()) continue;
    const ExactSolution exact = ExactFairDiversityMaximization(ds, c);
    const auto solution = FairSwap(ds, c);
    ASSERT_TRUE(solution.ok());
    EXPECT_GE(solution->diversity, exact.diversity / 4.0 - 1e-9)
        << "seed " << seed;
  }
}

TEST(FairSwapTest, StartIndexVariesSolutionButKeepsFairness) {
  BlobsOptions opt;
  opt.n = 200;
  opt.num_groups = 2;
  opt.seed = 5;
  const Dataset ds = MakeBlobs(opt);
  for (const size_t start : {0u, 17u, 63u}) {
    const auto solution = FairSwap(ds, Quotas({4, 4}), start);
    ASSERT_TRUE(solution.ok());
    EXPECT_TRUE(SatisfiesQuotas(solution->points, std::vector<int>{4, 4}));
  }
}

TEST(FairSwapTest, ExtremeSkewForcesManySwaps) {
  // Group 1 points are rare and clustered; the blind GMM solution will be
  // dominated by group 0 — the swap loop must pull in group 1 donors.
  Dataset ds("skew", 2, 2, MetricKind::kEuclidean);
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    const std::vector<double> c{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    ds.Add(c, 0);
  }
  for (int i = 0; i < 12; ++i) {
    const std::vector<double> c{50.0 + rng.NextDouble(0, 1),
                                50.0 + rng.NextDouble(0, 1)};
    ds.Add(c, 1);
  }
  const std::vector<int> quotas{5, 5};
  const auto solution = FairSwap(ds, Quotas(quotas));
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(SatisfiesQuotas(solution->points, quotas));
}

}  // namespace
}  // namespace fdm
