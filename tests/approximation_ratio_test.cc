// Cross-algorithm approximation-ratio property sweep.
//
// For a grid of random tiny instances (where the exact OPT_f is computable
// by branch-and-bound), every algorithm must clear its published
// approximation bound:
//
//   GMM       >= OPT   / 2            [24]
//   FairSwap  >= OPT_f / 4            [32]
//   FairFlow  >= OPT_f / (3m-1)       [32]
//   FairGMM   >= OPT_f / 5            [32]
//   SFDM1     >= OPT_f · (1-ε)/4      Theorem 2
//   SFDM2     >= OPT_f · (1-ε)/(3m+2) Theorem 4
//
// This is the strongest end-to-end correctness statement the paper makes,
// so it gets its own parameterized suite across seeds, group counts, and
// metrics.

#include <gtest/gtest.h>

#include "baselines/fair_flow.h"
#include "baselines/fair_gmm.h"
#include "baselines/fair_swap.h"
#include "core/diversity.h"
#include "core/gmm.h"
#include "core/sfdm1.h"
#include "core/sfdm2.h"
#include "data/synthetic.h"
#include "exact/brute_force.h"
#include "util/rng.h"

namespace fdm {
namespace {

struct SweepCase {
  uint64_t seed;
  int m;
  MetricKind metric;
};

Dataset RandomTinyDataset(const SweepCase& param) {
  Rng rng(param.seed * 1000003ULL);
  const size_t n = 12 + rng.NextBounded(4);  // 12..15
  Dataset ds("tiny", 3, param.m, param.metric);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> c(3);
    for (auto& v : c) v = rng.NextDouble(0.05, 1.0);  // positive orthant
    ds.Add(c, static_cast<int32_t>(i % static_cast<size_t>(param.m)));
  }
  return ds;
}

class RatioSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RatioSweepTest, AllAlgorithmsClearTheirBounds) {
  const SweepCase param = GetParam();
  const Dataset ds = RandomTinyDataset(param);
  const double m = static_cast<double>(param.m);
  FairnessConstraint c;
  c.quotas.assign(static_cast<size_t>(param.m), 2);
  ASSERT_TRUE(c.ValidateAgainst(ds.GroupSizes()).ok());
  const int k = c.TotalK();

  const ExactSolution opt_unconstrained = ExactDiversityMaximization(ds, k);
  const ExactSolution opt_fair = ExactFairDiversityMaximization(ds, c);
  ASSERT_GT(opt_fair.diversity, 0.0);

  // GMM.
  {
    const auto rows = GreedyGmm(ds, static_cast<size_t>(k));
    EXPECT_GE(MinPairwiseDistance(ds, rows),
              opt_unconstrained.diversity / 2.0 - 1e-9)
        << "GMM";
  }
  // FairSwap (m = 2 only).
  if (param.m == 2) {
    const auto sol = FairSwap(ds, c);
    ASSERT_TRUE(sol.ok()) << sol.status().ToString();
    EXPECT_TRUE(SatisfiesQuotas(sol->points, c.quotas));
    EXPECT_GE(sol->diversity, opt_fair.diversity / 4.0 - 1e-9) << "FairSwap";
  }
  // FairFlow.
  {
    const auto sol = FairFlow(ds, c);
    ASSERT_TRUE(sol.ok()) << sol.status().ToString();
    EXPECT_TRUE(SatisfiesQuotas(sol->points, c.quotas));
    EXPECT_GE(sol->diversity, opt_fair.diversity / (3.0 * m - 1.0) - 1e-9)
        << "FairFlow";
  }
  // FairGMM.
  {
    const auto sol = FairGmm(ds, c);
    ASSERT_TRUE(sol.ok()) << sol.status().ToString();
    EXPECT_TRUE(SatisfiesQuotas(sol->points, c.quotas));
    EXPECT_GE(sol->diversity, opt_fair.diversity / 5.0 - 1e-9) << "FairGMM";
  }

  const DistanceBounds bounds = ComputeDistanceBoundsExact(ds);
  const double epsilon = 0.1;
  StreamingOptions streaming;
  streaming.epsilon = epsilon;
  streaming.d_min = bounds.min;
  streaming.d_max = bounds.max;

  // SFDM1 (m = 2 only).
  if (param.m == 2) {
    auto algo = Sfdm1::Create(c, ds.dim(), ds.metric_kind(), streaming);
    ASSERT_TRUE(algo.ok());
    for (const size_t row : StreamOrder(ds.size(), param.seed)) {
      algo->Observe(ds.At(row));
    }
    const auto sol = algo->Solve();
    ASSERT_TRUE(sol.ok()) << sol.status().ToString();
    EXPECT_TRUE(SatisfiesQuotas(sol->points, c.quotas));
    EXPECT_GE(sol->diversity,
              (1.0 - epsilon) / 4.0 * opt_fair.diversity - 1e-9)
        << "SFDM1";
  }
  // SFDM2 (any m).
  {
    auto algo = Sfdm2::Create(c, ds.dim(), ds.metric_kind(), streaming);
    ASSERT_TRUE(algo.ok());
    for (const size_t row : StreamOrder(ds.size(), param.seed + 99)) {
      algo->Observe(ds.At(row));
    }
    const auto sol = algo->Solve();
    ASSERT_TRUE(sol.ok()) << sol.status().ToString();
    EXPECT_TRUE(SatisfiesQuotas(sol->points, c.quotas));
    EXPECT_GE(sol->diversity,
              (1.0 - epsilon) / (3.0 * m + 2.0) * opt_fair.diversity - 1e-9)
        << "SFDM2";
  }
}

std::vector<SweepCase> MakeSweep() {
  std::vector<SweepCase> cases;
  const MetricKind metrics[] = {MetricKind::kEuclidean, MetricKind::kManhattan,
                                MetricKind::kAngular};
  uint64_t seed = 1;
  for (const MetricKind metric : metrics) {
    for (const int m : {2, 3}) {
      for (int rep = 0; rep < 4; ++rep) {
        cases.push_back(SweepCase{seed++, m, metric});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, RatioSweepTest, ::testing::ValuesIn(MakeSweep()),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_m" +
             std::to_string(info.param.m) + "_" +
             std::string(MetricKindName(info.param.metric));
    });

}  // namespace
}  // namespace fdm
