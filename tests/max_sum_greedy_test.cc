#include "baselines/max_sum_greedy.h"

#include <set>

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/gmm.h"
#include "data/synthetic.h"

namespace fdm {
namespace {

Dataset LinePoints(const std::vector<double>& xs) {
  Dataset ds("line", 1, 1, MetricKind::kEuclidean);
  for (const double x : xs) ds.Add(std::vector<double>{x}, 0);
  return ds;
}

TEST(MaxSumGreedyTest, StartsWithFarthestPair) {
  const Dataset ds = LinePoints({0.0, 2.0, 7.0, 10.0});
  const auto sel = MaxSumGreedy(ds, 2);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(std::set<size_t>(sel.begin(), sel.end()),
            (std::set<size_t>{0, 3}));
}

TEST(MaxSumGreedyTest, ReturnsKDistinct) {
  BlobsOptions opt;
  opt.n = 200;
  opt.seed = 91;
  const Dataset ds = MakeBlobs(opt);
  const auto sel = MaxSumGreedy(ds, 10);
  EXPECT_EQ(sel.size(), 10u);
  EXPECT_EQ(std::set<size_t>(sel.begin(), sel.end()).size(), 10u);
}

TEST(MaxSumGreedyTest, EdgeCases) {
  const Dataset ds = LinePoints({0.0, 1.0, 2.0});
  EXPECT_TRUE(MaxSumGreedy(ds, 0).empty());
  EXPECT_EQ(MaxSumGreedy(ds, 1).size(), 1u);
  EXPECT_EQ(MaxSumGreedy(ds, 5).size(), 3u);  // capped at n
}

TEST(MaxSumGreedyTest, PrefersMarginalElements) {
  // The defining contrast of Fig. 1: max-sum crowds the extremes — on a
  // line with a dense middle, max-sum picks endpoints even when they are
  // close together, while max-min (GMM) spreads out.
  Dataset ds("contrast", 1, 1, MetricKind::kEuclidean);
  // Two tight clusters at the ends and sparse middle points.
  for (const double x : {0.0, 0.1, 0.2, 5.0, 10.0, 9.9, 9.8}) {
    ds.Add(std::vector<double>{x}, 0);
  }
  const auto max_sum = MaxSumGreedy(ds, 4);
  const auto max_min = GreedyGmm(ds, 4);

  // Max-sum selects only from the end clusters (no middle point 5.0).
  bool max_sum_has_middle = false;
  for (const size_t i : max_sum) max_sum_has_middle |= (ds.Point(i)[0] == 5.0);
  EXPECT_FALSE(max_sum_has_middle);

  // Max-min covers the middle.
  bool max_min_has_middle = false;
  for (const size_t i : max_min) max_min_has_middle |= (ds.Point(i)[0] == 5.0);
  EXPECT_TRUE(max_min_has_middle);

  // And the sum objective of max-sum's answer dominates GMM's.
  EXPECT_GE(SumPairwiseDistance(ds, max_sum),
            SumPairwiseDistance(ds, max_min) - 1e-9);
  // While the min objective of GMM's answer dominates max-sum's.
  EXPECT_GE(MinPairwiseDistance(ds, max_min),
            MinPairwiseDistance(ds, max_sum) - 1e-9);
}

TEST(MaxSumGreedyTest, GreedyObjectiveMonotonicity) {
  // Each added point must be the argmax of sum-distance at its step;
  // verify via recomputation on a small instance.
  BlobsOptions opt;
  opt.n = 40;
  opt.seed = 93;
  const Dataset ds = MakeBlobs(opt);
  const auto sel = MaxSumGreedy(ds, 6);
  const Metric metric = ds.metric();
  for (size_t step = 2; step < sel.size(); ++step) {
    // Sum-distance of the chosen element vs every alternative.
    auto sum_to_prefix = [&](size_t row) {
      double s = 0.0;
      for (size_t j = 0; j < step; ++j) {
        s += metric(ds.Point(row), ds.Point(sel[j]));
      }
      return s;
    };
    const double chosen = sum_to_prefix(sel[step]);
    for (size_t row = 0; row < ds.size(); ++row) {
      bool used = false;
      for (size_t j = 0; j <= step; ++j) used |= (sel[j] == row);
      if (used) continue;
      EXPECT_LE(sum_to_prefix(row), chosen + 1e-9)
          << "step " << step << " row " << row;
    }
  }
}

}  // namespace
}  // namespace fdm
