#include "core/clustering.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fdm {
namespace {

PointBuffer Line(const std::vector<double>& xs) {
  PointBuffer buf(1, xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    const std::vector<double> c{xs[i]};
    buf.Add(StreamPoint{static_cast<int64_t>(i), 0,
                        std::span<const double>(c)});
  }
  return buf;
}

TEST(ThresholdClustersTest, SeparatedPointsStaySingletons) {
  const PointBuffer buf = Line({0.0, 10.0, 20.0});
  const Metric m(MetricKind::kEuclidean);
  const auto labels = ThresholdClusters(buf, m, 1.0);
  EXPECT_EQ(labels, (std::vector<int>{0, 1, 2}));
}

TEST(ThresholdClustersTest, ClosePointsMerge) {
  const PointBuffer buf = Line({0.0, 0.5, 10.0});
  const Metric m(MetricKind::kEuclidean);
  const auto labels = ThresholdClusters(buf, m, 1.0);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(ThresholdClustersTest, ThresholdIsStrict) {
  // Merge condition is d < threshold, not <= (Algorithm 3, line 14).
  const PointBuffer buf = Line({0.0, 1.0});
  const Metric m(MetricKind::kEuclidean);
  EXPECT_NE(ThresholdClusters(buf, m, 1.0)[0],
            ThresholdClusters(buf, m, 1.0)[1]);
  EXPECT_EQ(ThresholdClusters(buf, m, 1.0001)[0],
            ThresholdClusters(buf, m, 1.0001)[1]);
}

TEST(ThresholdClustersTest, TransitiveChainsMerge) {
  // Chain 0 - 0.9 - 1.8 - 2.7: consecutive gaps below threshold merge the
  // whole chain even though endpoints are far apart (single linkage).
  const PointBuffer buf = Line({0.0, 0.9, 1.8, 2.7});
  const Metric m(MetricKind::kEuclidean);
  const auto labels = ThresholdClusters(buf, m, 1.0);
  EXPECT_EQ(labels, (std::vector<int>{0, 0, 0, 0}));
}

TEST(ThresholdClustersTest, InterClusterSeparationGuarantee) {
  // Lemma 3(i): after clustering at threshold t, any two points in
  // different clusters are at distance >= t.
  Rng rng(7);
  PointBuffer buf(2, 60);
  for (int64_t i = 0; i < 60; ++i) {
    const std::vector<double> c{rng.NextDouble(0, 4), rng.NextDouble(0, 4)};
    buf.Add(StreamPoint{i, 0, std::span<const double>(c)});
  }
  const Metric m(MetricKind::kEuclidean);
  const double t = 0.35;
  const auto labels = ThresholdClusters(buf, m, t);
  for (size_t i = 0; i < buf.size(); ++i) {
    for (size_t j = i + 1; j < buf.size(); ++j) {
      if (labels[i] != labels[j]) {
        EXPECT_GE(m(buf.CoordsAt(i), buf.CoordsAt(j)), t);
      }
    }
  }
}

TEST(ThresholdClustersTest, LabelsAreDense) {
  Rng rng(9);
  PointBuffer buf(1, 40);
  for (int64_t i = 0; i < 40; ++i) {
    const std::vector<double> c{rng.NextDouble(0, 10)};
    buf.Add(StreamPoint{i, 0, std::span<const double>(c)});
  }
  const Metric m(MetricKind::kEuclidean);
  const auto labels = ThresholdClusters(buf, m, 0.5);
  int max_label = -1;
  for (const int l : labels) {
    EXPECT_GE(l, 0);
    max_label = std::max(max_label, l);
  }
  std::vector<bool> seen(static_cast<size_t>(max_label) + 1, false);
  for (const int l : labels) seen[static_cast<size_t>(l)] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(ThresholdClustersTest, EmptyAndSingleton) {
  PointBuffer empty(1, 0);
  const Metric m(MetricKind::kEuclidean);
  EXPECT_TRUE(ThresholdClusters(empty, m, 1.0).empty());
  const PointBuffer one = Line({5.0});
  EXPECT_EQ(ThresholdClusters(one, m, 1.0), (std::vector<int>{0}));
}

TEST(ThresholdClustersTest, ZeroThresholdKeepsDistinctApart) {
  const PointBuffer buf = Line({0.0, 0.0, 1e-12});
  const Metric m(MetricKind::kEuclidean);
  // d < 0 never holds, so even exact duplicates stay separate at t = 0.
  const auto labels = ThresholdClusters(buf, m, 0.0);
  EXPECT_EQ(labels, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace fdm
