#ifndef FDM_TESTS_FAULT_INJECT_H_
#define FDM_TESTS_FAULT_INJECT_H_

// Deterministic fault injection for the replication layer: a
// `ReplicationSource` wrapper that reshapes what a follower sees, so tests
// can freeze the primary's visible position at any record ("kill the
// follower here"), tear the tail of the last visible segment mid-record,
// drop listed files between manifest and fetch (pruning races), and serve
// a stale manifest captured earlier. Everything is pure function of the
// wrapped source plus explicit knobs — no timing, no randomness — so every
// injected failure replays exactly.

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "replica/replication_source.h"
#include "service/wal.h"
#include "util/binary_io.h"

namespace fdm {

class FaultInjectingSource : public ReplicationSource {
 public:
  explicit FaultInjectingSource(std::shared_ptr<ReplicationSource> inner)
      : inner_(std::move(inner)) {}

  /// Freezes the follower-visible stream at `seq`: manifests hide
  /// snapshots and whole segments past it, fetched segment bytes are cut
  /// at the last record <= seq. -1 = unlimited (default).
  void SetMaxVisibleSeq(int64_t seq) { max_visible_seq_ = seq; }

  /// After a `SetMaxVisibleSeq` cut, additionally expose up to `bytes`
  /// bytes of the record after the cut — a torn tail exactly as a crash
  /// (or a ship racing an append) would leave it.
  void SetTornTailBytes(size_t bytes) { torn_tail_bytes_ = bytes; }

  /// The next `GetManifest` calls return these (FIFO) instead of asking
  /// the wrapped source — a follower working off a stale manifest while
  /// the primary moves on.
  void QueueManifest(ReplicaManifest manifest) {
    queued_manifests_.push_back(std::move(manifest));
  }

  /// Re-ships every WAL segment: each manifest lists every segment entry
  /// `factor` times in a row ([A,A,B,B,...] for factor 2) — the
  /// duplicate-replay storm a flapping transport or a retrying shipper
  /// produces. A correct follower skips the repeats (each record's seq is
  /// below the expected position on the second pass) and stays
  /// bit-identical with `divergence_rebuilds == 0`. 1 = off (default).
  void SetSegmentReshipFactor(int factor) {
    reship_factor_ = factor < 1 ? 1 : factor;
  }

  /// Force-fails every fetch of the snapshot at `seq` / the segment whose
  /// first record is `first_seq` (a pruned or unreachable file).
  void FailSnapshot(int64_t seq) { failed_snapshots_.insert(seq); }
  void FailSegment(int64_t first_seq) { failed_segments_.insert(first_seq); }
  void ClearFailures() {
    failed_snapshots_.clear();
    failed_segments_.clear();
  }

  int64_t manifest_fetches() const { return manifest_fetches_; }
  int64_t forced_failures() const { return forced_failures_; }

  void InvalidateCaches() override { inner_->InvalidateCaches(); }

  Result<ReplicaManifest> GetManifest() override {
    ++manifest_fetches_;
    ReplicaManifest manifest;
    if (!queued_manifests_.empty()) {
      manifest = std::move(queued_manifests_.front());
      queued_manifests_.pop_front();
    } else {
      auto inner = inner_->GetManifest();
      if (!inner.ok()) return inner.status();
      manifest = std::move(inner.value());
    }
    if (max_visible_seq_ < 0) return Reship(std::move(manifest));

    const int64_t cap = max_visible_seq_;
    if (manifest.primary_seq > cap) manifest.primary_seq = cap;
    if (manifest.advert_seq > cap) {
      // The advert pairs (seq, version); a capped view never saw it.
      manifest.advert_seq = 0;
      manifest.primary_version = 0;
    }
    std::erase_if(manifest.snapshots, [cap](const ReplicaSnapshotInfo& s) {
      return s.seq > cap;
    });
    std::erase_if(manifest.segments, [cap](const WalSegmentInfo& s) {
      return s.first_seq > cap;
    });
    if (!manifest.segments.empty()) {
      // The last visible segment will be byte-truncated by the fetch
      // below; its listed size/checksum no longer describe it.
      manifest.segments.back().checksum = 0;
      manifest.segments.back().bytes = 0;
    }
    return Reship(std::move(manifest));
  }

  Result<std::string> FetchSnapshot(int64_t seq) override {
    if (failed_snapshots_.count(seq) != 0 ||
        (max_visible_seq_ >= 0 && seq > max_visible_seq_)) {
      ++forced_failures_;
      return Status::IoError("fault injection: snapshot " +
                             std::to_string(seq) + " unavailable");
    }
    return inner_->FetchSnapshot(seq);
  }

  Result<std::string> FetchWalSegment(int64_t first_seq) override {
    if (failed_segments_.count(first_seq) != 0 ||
        (max_visible_seq_ >= 0 && first_seq > max_visible_seq_)) {
      ++forced_failures_;
      return Status::IoError("fault injection: segment " +
                             std::to_string(first_seq) + " unavailable");
    }
    auto bytes = inner_->FetchWalSegment(first_seq);
    if (!bytes.ok() || max_visible_seq_ < 0) return bytes;

    // Cut at the last record <= cap, optionally re-exposing a torn prefix
    // of the next record.
    WalSegmentCursor cursor(*bytes);
    WalRecordView record;
    size_t cut = cursor.valid_bytes();
    size_t next_record_end = cut;
    bool capped = false;
    while (cursor.Next(record)) {
      if (record.seq > max_visible_seq_) {
        capped = true;
        next_record_end = cursor.valid_bytes();
        break;
      }
      cut = cursor.valid_bytes();
    }
    if (!capped) return bytes;
    std::string visible = bytes->substr(0, cut);
    if (torn_tail_bytes_ > 0) {
      const size_t torn =
          std::min(torn_tail_bytes_, next_record_end - cut - 1);
      visible.append(bytes->substr(cut, torn));
    }
    return visible;
  }

 private:
  ReplicaManifest Reship(ReplicaManifest manifest) const {
    if (reship_factor_ <= 1) return manifest;
    std::vector<WalSegmentInfo> repeated;
    repeated.reserve(manifest.segments.size() *
                     static_cast<size_t>(reship_factor_));
    for (const WalSegmentInfo& seg : manifest.segments) {
      for (int i = 0; i < reship_factor_; ++i) repeated.push_back(seg);
    }
    manifest.segments = std::move(repeated);
    return manifest;
  }

  std::shared_ptr<ReplicationSource> inner_;
  int64_t max_visible_seq_ = -1;
  size_t torn_tail_bytes_ = 0;
  int reship_factor_ = 1;
  std::deque<ReplicaManifest> queued_manifests_;
  std::set<int64_t> failed_snapshots_;
  std::set<int64_t> failed_segments_;
  int64_t manifest_fetches_ = 0;
  int64_t forced_failures_ = 0;
};

}  // namespace fdm

#endif  // FDM_TESTS_FAULT_INJECT_H_
