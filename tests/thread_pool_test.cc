#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace fdm {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  for (int batch = 0; batch < 100; ++batch) {
    pool.ParallelFor(17, [&](size_t i) {
      sum.fetch_add(static_cast<int64_t>(i) + 1);
    });
  }
  // 100 batches × Σ 1..17.
  EXPECT_EQ(sum.load(), 100 * 17 * 18 / 2);
}

TEST(ThreadPoolTest, DefaultSizeUsesHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, DisjointWritesNeedNoSynchronization) {
  // The contract the ingestion paths rely on: each index owns a slot.
  ThreadPool pool(4);
  constexpr size_t kN = 512;
  std::vector<int64_t> out(kN, -1);
  pool.ParallelFor(kN, [&](size_t i) { out[i] = static_cast<int64_t>(i * i); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i], static_cast<int64_t>(i * i));
  }
}

TEST(ThreadPoolTest, MaxParallelismOneRunsInlineAndInOrder) {
  ThreadPool pool(4);
  std::vector<int> order;  // unsynchronized: only valid if truly inline
  pool.ParallelFor(
      8, [&](size_t i) { order.push_back(static_cast<int>(i)); },
      /*max_parallelism=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ThreadPoolTest, MaxParallelismCapBoundsConcurrencyButRunsAll) {
  ThreadPool pool(8);
  constexpr size_t kN = 256;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<int> live{0};
  std::atomic<int> peak{0};
  pool.ParallelFor(
      kN,
      [&](size_t i) {
        const int now = live.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        hits[i].fetch_add(1);
        live.fetch_sub(1);
      },
      /*max_parallelism=*/3);
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
  // At most `max_parallelism` tasks may ever run at once (2 claimed
  // workers + the caller). Peak observing fewer is fine — the cap is an
  // upper bound, not a scheduling guarantee.
  EXPECT_LE(peak.load(), 3);
}

TEST(BatchParallelismTest, SequentialKnobSpawnsNothingAndRunsInOrder) {
  BatchParallelism parallelism(1);
  std::vector<int> order;
  parallelism.Run(4, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(BatchParallelismTest, ParallelKnobRunsEverything) {
  BatchParallelism parallelism(4);
  std::vector<std::atomic<int>> hits(64);
  parallelism.Run(64, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(BatchParallelismTest, CopiesShareThePool) {
  BatchParallelism a(2);
  std::atomic<int> hits{0};
  a.Run(8, [&](size_t) { hits.fetch_add(1); });
  BatchParallelism b = a;  // shares the lazily created pool
  b.Run(8, [&](size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 16);
}

}  // namespace
}  // namespace fdm
