#include "service/wal.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/streaming_dm.h"
#include "data/synthetic.h"

namespace fdm {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fdm_wal_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

Dataset TestData(size_t n = 120, uint64_t seed = 7) {
  BlobsOptions opt;
  opt.n = n;
  opt.seed = seed;
  return MakeBlobs(opt);
}

StreamingOptions OptionsFor(const Dataset& ds) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  StreamingOptions o;
  o.epsilon = 0.1;
  o.d_min = b.min;
  o.d_max = b.max;
  return o;
}

TEST_F(WalTest, AppendReplayMatchesDirectIngest) {
  const Dataset ds = TestData();
  auto wal = WriteAheadLog::Open(dir_);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE(wal->Append(ds.At(i)).ok());
  }
  EXPECT_EQ(wal->last_seq(), static_cast<int64_t>(ds.size()));
  ASSERT_TRUE(wal->Sync().ok());

  auto direct = StreamingDm::Create(5, ds.dim(), ds.metric_kind(),
                                    OptionsFor(ds));
  auto replayed = StreamingDm::Create(5, ds.dim(), ds.metric_kind(),
                                      OptionsFor(ds));
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(replayed.ok());
  for (size_t i = 0; i < ds.size(); ++i) direct->Observe(ds.At(i));

  auto count = wal->Replay(0, *replayed);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, static_cast<int64_t>(ds.size()));
  EXPECT_EQ(replayed->ObservedElements(), direct->ObservedElements());
  const auto a = direct->Solve();
  const auto b = replayed->Solve();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Ids(), b->Ids());
  EXPECT_DOUBLE_EQ(a->diversity, b->diversity);
}

TEST_F(WalTest, ReplayAfterSeqSkipsPrefix) {
  const Dataset ds = TestData(40);
  auto wal = WriteAheadLog::Open(dir_);
  ASSERT_TRUE(wal.ok());
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE(wal->Append(ds.At(i)).ok());
  }
  ASSERT_TRUE(wal->Sync().ok());
  auto sink = StreamingDm::Create(3, ds.dim(), ds.metric_kind(),
                                  OptionsFor(ds));
  ASSERT_TRUE(sink.ok());
  auto count = wal->Replay(25, *sink);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, static_cast<int64_t>(ds.size()) - 25);
  EXPECT_EQ(sink->ObservedElements(), static_cast<int64_t>(ds.size()) - 25);
}

TEST_F(WalTest, RotatesSegmentsAndSurvivesReopen) {
  const Dataset ds = TestData(300, 9);
  WalOptions options;
  options.segment_bytes = 2048;  // force many rotations
  int64_t appended = 0;
  {
    auto wal = WriteAheadLog::Open(dir_, options);
    ASSERT_TRUE(wal.ok());
    for (size_t i = 0; i < 200; ++i) {
      ASSERT_TRUE(wal->Append(ds.At(i)).ok());
      ++appended;
    }
    EXPECT_GT(wal->SegmentPaths().size(), 2u);
  }  // destructor syncs

  auto wal = WriteAheadLog::Open(dir_, options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(wal->last_seq(), appended);
  // Appends continue the sequence.
  for (size_t i = 200; i < 220; ++i) {
    ASSERT_TRUE(wal->Append(ds.At(i)).ok());
  }
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(wal->last_seq(), appended + 20);

  auto sink = StreamingDm::Create(4, ds.dim(), ds.metric_kind(),
                                  OptionsFor(ds));
  ASSERT_TRUE(sink.ok());
  auto count = wal->Replay(0, *sink);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, appended + 20);
}

TEST_F(WalTest, TornTailIsToleratedAndTruncatedOnReopen) {
  const Dataset ds = TestData(50, 11);
  {
    auto wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    for (size_t i = 0; i < ds.size(); ++i) {
      ASSERT_TRUE(wal->Append(ds.At(i)).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  // Tear the tail: chop a few bytes off the newest segment, as a crash
  // mid-write would.
  std::vector<std::string> segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    segments.push_back(entry.path().string());
  }
  ASSERT_EQ(segments.size(), 1u);
  const auto full_size = std::filesystem::file_size(segments[0]);
  std::filesystem::resize_file(segments[0], full_size - 5);

  auto wal = WriteAheadLog::Open(dir_);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  // The torn record (the last one) is gone; everything before it replays.
  EXPECT_EQ(wal->last_seq(), static_cast<int64_t>(ds.size()) - 1);
  auto sink = StreamingDm::Create(4, ds.dim(), ds.metric_kind(),
                                  OptionsFor(ds));
  ASSERT_TRUE(sink.ok());
  auto count = wal->Replay(0, *sink);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, static_cast<int64_t>(ds.size()) - 1);

  // And appends after recovery land on a clean boundary.
  ASSERT_TRUE(wal->Append(ds.At(0)).ok());
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(wal->last_seq(), static_cast<int64_t>(ds.size()));
}

TEST_F(WalTest, EmptyActiveSegmentIsRecoverableAndReplayable) {
  // A crash right after rotation (or right after Create) leaves a 0-byte
  // active segment — its magic was buffered but never flushed. Open must
  // re-initialize it AND Replay must skip it instead of calling it
  // corrupt.
  const Dataset ds = TestData(20, 19);
  {
    auto wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(wal->Append(ds.At(i)).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  {  // simulate the crash artifact: an empty next segment
    std::ofstream empty(dir_ + "/wal-00000000000000000011.log",
                        std::ios::binary);
  }
  auto wal = WriteAheadLog::Open(dir_);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(wal->last_seq(), 10);
  auto sink = StreamingDm::Create(3, ds.dim(), ds.metric_kind(),
                                  OptionsFor(ds));
  ASSERT_TRUE(sink.ok());
  auto count = wal->Replay(0, *sink);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 10);
  // And the re-initialized segment accepts appends at the right seq.
  ASSERT_TRUE(wal->Append(ds.At(10)).ok());
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(wal->last_seq(), 11);
}

TEST_F(WalTest, ZeroLengthSegmentMidLogIsSkippedNotCorruption) {
  // A crash between segment creation (open/O_CREAT) and the first flush
  // leaves a zero-length file. When such a file sits MID-log (e.g. it was
  // shipped to a follower before the primary reinitialized it, or sorting
  // places later rotations after it), enumeration and replay must skip it
  // with a warning — it holds no records — instead of calling the log
  // corrupt.
  const Dataset ds = TestData(120, 21);
  WalOptions options;
  options.segment_bytes = 1024;  // force several rotations
  {
    auto wal = WriteAheadLog::Open(dir_, options);
    ASSERT_TRUE(wal.ok());
    for (size_t i = 0; i < 60; ++i) {
      ASSERT_TRUE(wal->Append(ds.At(i)).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
    ASSERT_GT(wal->SegmentPaths().size(), 2u);
  }
  // Forge the artifact strictly between the first seqs of the 2nd and 3rd
  // real segments, so it is unambiguously mid-log.
  auto listed = WriteAheadLog::ListSegments(dir_);
  ASSERT_TRUE(listed.ok());
  ASSERT_GT(listed->size(), 2u);
  const int64_t forged = (*listed)[1].first_seq + 1;
  ASSERT_LT(forged, (*listed)[2].first_seq);
  char name[40];
  std::snprintf(name, sizeof(name), "wal-%020lld.log",
                static_cast<long long>(forged));
  {
    std::ofstream empty(dir_ + "/" + name, std::ios::binary);
  }

  // Enumeration skips it ...
  auto relisted = WriteAheadLog::ListSegments(dir_);
  ASSERT_TRUE(relisted.ok());
  EXPECT_EQ(relisted->size(), listed->size());
  for (const auto& seg : *relisted) EXPECT_NE(seg.first_seq, forged);

  // ... and a reopened log replays through it seamlessly.
  auto wal = WriteAheadLog::Open(dir_, options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(wal->last_seq(), 60);
  auto sink = StreamingDm::Create(4, ds.dim(), ds.metric_kind(),
                                  OptionsFor(ds));
  ASSERT_TRUE(sink.ok());
  auto count = wal->Replay(0, *sink);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 60);
  ASSERT_TRUE(wal->Append(ds.At(60)).ok());
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(wal->last_seq(), 61);
}

TEST_F(WalTest, CorruptedRecordIsDetected) {
  const Dataset ds = TestData(30, 13);
  {
    auto wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    for (size_t i = 0; i < ds.size(); ++i) {
      ASSERT_TRUE(wal->Append(ds.At(i)).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  std::vector<std::string> segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    segments.push_back(entry.path().string());
  }
  ASSERT_EQ(segments.size(), 1u);
  // Flip a byte mid-file: recovery must stop at the corrupt record, not
  // hand bad coordinates to the sink.
  {
    std::fstream f(segments[0],
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(
        std::filesystem::file_size(segments[0]) / 2));
    const char byte = 0x7f;
    f.write(&byte, 1);
  }
  auto wal = WriteAheadLog::Open(dir_);
  ASSERT_TRUE(wal.ok());
  EXPECT_LT(wal->last_seq(), static_cast<int64_t>(ds.size()));
}

TEST_F(WalTest, TruncateBeforeDropsWholeObsoleteSegments) {
  const Dataset ds = TestData(300, 15);
  WalOptions options;
  options.segment_bytes = 2048;
  auto wal = WriteAheadLog::Open(dir_, options);
  ASSERT_TRUE(wal.ok());
  for (size_t i = 0; i < 250; ++i) {
    ASSERT_TRUE(wal->Append(ds.At(i)).ok());
  }
  ASSERT_TRUE(wal->Sync().ok());
  const size_t before = wal->SegmentPaths().size();
  ASSERT_GT(before, 2u);

  ASSERT_TRUE(wal->TruncateBefore(200).ok());
  EXPECT_LT(wal->SegmentPaths().size(), before);

  // Everything at seq >= 200 must still replay.
  auto sink = StreamingDm::Create(4, ds.dim(), ds.metric_kind(),
                                  OptionsFor(ds));
  ASSERT_TRUE(sink.ok());
  auto count = wal->Replay(199, *sink);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 250 - 199);
}

TEST_F(WalTest, BatchAppendMatchesSingleAppends) {
  const Dataset ds = TestData(64, 17);
  auto wal = WriteAheadLog::Open(dir_);
  ASSERT_TRUE(wal.ok());
  std::vector<StreamPoint> batch;
  for (size_t i = 0; i < ds.size(); ++i) batch.push_back(ds.At(i));
  ASSERT_TRUE(wal->AppendBatch(batch).ok());
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(wal->last_seq(), static_cast<int64_t>(ds.size()));

  auto sink = StreamingDm::Create(4, ds.dim(), ds.metric_kind(),
                                  OptionsFor(ds));
  ASSERT_TRUE(sink.ok());
  auto count = wal->Replay(0, *sink);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, static_cast<int64_t>(ds.size()));
}

}  // namespace
}  // namespace fdm
