// The exactly-once ingest acceptance suite: with `dedup=on`, re-observing
// the entire stream — element path and batch path, for every registered
// sink kind — is an idempotent no-op: zero WAL growth, zero state-version
// change, bit-identical SOLVE, exact `duplicates_rejected`. The guard
// survives what production throws at a session: crash recovery over a
// snapshot + WAL tail, an LRU spill/reload cycle under SessionManager,
// and a spec migration onto a session whose snapshots predate the filter.

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "service/dedup_filter.h"
#include "service/durable_session.h"
#include "service/session_manager.h"
#include "service/sink_spec.h"
#include "util/binary_io.h"

namespace fdm {
namespace {

class DedupSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fdm_dedup_session_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

Dataset TestData(int m, size_t n = 150, uint64_t seed = 31) {
  BlobsOptions opt;
  opt.n = n;
  opt.num_groups = m;
  opt.seed = seed;
  return MakeBlobs(opt);
}

std::string BoundsSuffix(const Dataset& ds) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  return " dmin=" + std::to_string(b.min) + " dmax=" + std::to_string(b.max);
}

/// Total on-disk bytes of the session's WAL — the "zero WAL growth"
/// measurement. Duplicates must not move this by a single byte.
uint64_t WalBytes(const std::string& dir) {
  uint64_t total = 0;
  const std::string wal_dir = dir + "/wal";
  if (!std::filesystem::exists(wal_dir)) return 0;
  for (const auto& entry : std::filesystem::directory_iterator(wal_dir)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

std::vector<StreamPoint> AllPoints(const Dataset& ds) {
  std::vector<StreamPoint> points;
  points.reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) points.push_back(ds.At(i));
  return points;
}

// Re-observe the entire stream through both ingest paths against a
// settled session; nothing observable may move.
void ExpectFullReplayIsNoOp(DurableSession& session, const Dataset& ds) {
  const uint64_t wal_before = WalBytes(session.dir());
  const uint64_t version_before = session.StateVersion();
  const int64_t observed_before = session.ObservedElements();
  const int64_t rejected_before = session.DuplicatesRejected();
  auto solution_before = session.Solve();
  ASSERT_TRUE(solution_before.ok()) << solution_before.status().ToString();

  // Element path: every point individually.
  for (size_t i = 0; i < ds.size(); ++i) {
    const StreamPoint point = ds.At(i);
    auto outcome = session.Ingest({&point, 1}, /*as_batch=*/false);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->accepted, 0);
    EXPECT_EQ(outcome->duplicates, 1);
  }
  // Batch path: the whole stream in one call.
  const std::vector<StreamPoint> points = AllPoints(ds);
  auto batch = session.Ingest(points, /*as_batch=*/true);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->accepted, 0);
  EXPECT_EQ(batch->duplicates, static_cast<int64_t>(ds.size()));

  // Sync flushes any buffered appends to disk first, so a buggy WAL write
  // could not hide in the user-space buffer.
  ASSERT_TRUE(session.Sync().ok());
  EXPECT_EQ(WalBytes(session.dir()), wal_before);
  EXPECT_EQ(session.StateVersion(), version_before);
  EXPECT_EQ(session.ObservedElements(), observed_before);
  EXPECT_EQ(session.DuplicatesRejected(),
            rejected_before + 2 * static_cast<int64_t>(ds.size()));

  auto solution_after = session.Solve();
  ASSERT_TRUE(solution_after.ok()) << solution_after.status().ToString();
  EXPECT_EQ(solution_after->Ids(), solution_before->Ids());
  EXPECT_DOUBLE_EQ(solution_after->diversity, solution_before->diversity);
  EXPECT_DOUBLE_EQ(solution_after->mu, solution_before->mu);
}

// The acceptance matrix: every registered sink kind, full-stream
// re-observe through both paths.
TEST_F(DedupSessionTest, FullStreamReplayIsNoOpForEveryKind) {
  const Dataset ds2 = TestData(2);
  const Dataset ds3 = TestData(3, 150, 33);
  struct Case {
    const Dataset* data;
    std::string spec;
  };
  const std::vector<Case> cases = {
      {&ds2, "algo=streaming_dm dim=2 k=4 dedup=on" + BoundsSuffix(ds2)},
      {&ds2, "algo=sfdm1 dim=2 quotas=2,2 dedup=on" + BoundsSuffix(ds2)},
      {&ds3, "algo=sfdm2 dim=2 quotas=2,1,2 dedup=on" + BoundsSuffix(ds3)},
      {&ds2, "algo=adaptive dim=2 k=4 dedup=on"},
      {&ds2,
       "algo=sharded dim=2 k=4 shards=3 dedup=on" + BoundsSuffix(ds2)},
      {&ds2, "algo=sliding_window dim=2 k=4 window=300 checkpoints=3 "
             "dedup=on" + BoundsSuffix(ds2)},
  };
  for (size_t c = 0; c < cases.size(); ++c) {
    SCOPED_TRACE(cases[c].spec);
    const Dataset& ds = *cases[c].data;
    const std::string dir = dir_ + "/case" + std::to_string(c);
    DurableSessionOptions options;
    options.wal.segment_bytes = 1024;
    auto session = DurableSession::Create(dir, cases[c].spec, options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    for (size_t i = 0; i < ds.size(); ++i) {
      ASSERT_TRUE(session->Observe(ds.At(i)).ok());
    }
    ASSERT_TRUE(session->Sync().ok());
    ExpectFullReplayIsNoOp(*session, ds);
  }
}

// With dedup=off (the default), the same replay is NOT deduplicated —
// the guard is opt-in because sliding-window streams legitimately
// re-observe ids.
TEST_F(DedupSessionTest, DedupOffAdmitsReObservedIds) {
  const Dataset ds = TestData(2, 80, 5);
  const std::string spec = "algo=streaming_dm dim=2 k=4" + BoundsSuffix(ds);
  auto session = DurableSession::Create(dir_, spec);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_FALSE(session->DedupEnabled());
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE(session->Observe(ds.At(i)).ok());
  }
  ASSERT_TRUE(session->Sync().ok());
  const uint64_t wal_before = WalBytes(dir_);
  const StreamPoint again = ds.At(0);
  auto outcome = session->Ingest({&again, 1}, /*as_batch=*/false);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->accepted, 1);
  EXPECT_EQ(outcome->duplicates, 0);
  ASSERT_TRUE(session->Sync().ok());
  EXPECT_GT(WalBytes(dir_), wal_before);  // a real WAL record
  EXPECT_EQ(session->DuplicatesRejected(), 0);
}

// Crash recovery: the filter is restored from the snapshot's dedup footer
// and re-taught by WAL-tail replay, so a reopened session rejects the
// whole historical stream — including records that only ever lived in the
// tail. The rejection count is footer-exact: rejections before the
// snapshot survive; the unsnapshotted delta is deliberately forgotten.
TEST_F(DedupSessionTest, FilterSurvivesCrashRecovery) {
  const Dataset ds = TestData(2, 160, 11);
  const std::string spec =
      "algo=sfdm2 dim=2 quotas=3,3 dedup=on" + BoundsSuffix(ds);
  const size_t mid = ds.size() / 2;
  {
    DurableSessionOptions options;
    options.wal.segment_bytes = 1024;
    auto session = DurableSession::Create(dir_, spec, options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    for (size_t i = 0; i < mid; ++i) {
      ASSERT_TRUE(session->Observe(ds.At(i)).ok());
    }
    // Pre-snapshot rejections: these ride the footer.
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(session->Observe(ds.At(i)).ok());
    }
    ASSERT_EQ(session->DuplicatesRejected(), 10);
    ASSERT_TRUE(session->TakeSnapshot().ok());
    // Tail records + post-snapshot rejections (the forgettable delta).
    for (size_t i = mid; i < ds.size(); ++i) {
      ASSERT_TRUE(session->Observe(ds.At(i)).ok());
    }
    for (size_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(session->Observe(ds.At(i)).ok());
    }
    ASSERT_EQ(session->DuplicatesRejected(), 15);
    // No Sync, no snapshot: the session dies here ("crash").
  }
  auto reopened = DurableSession::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened->DedupEnabled());
  EXPECT_EQ(reopened->ObservedElements(), static_cast<int64_t>(ds.size()));
  // Footer count restored; the 5 post-snapshot rejections are gone by
  // design (they are exactly the records kept OUT of the log).
  EXPECT_EQ(reopened->DuplicatesRejected(), 10);
  ExpectFullReplayIsNoOp(*reopened, ds);
}

// LRU spill under SessionManager: spilling snapshots the session (footer
// included), reloading restores it — duplicate rejection and its count
// must be exact across the cycle.
TEST_F(DedupSessionTest, FilterSurvivesLruSpill) {
  const Dataset ds = TestData(2, 100, 17);
  const std::string spec =
      "algo=streaming_dm dim=2 k=4 dedup=on" + BoundsSuffix(ds);
  SessionManagerOptions options;
  options.root_dir = dir_;
  options.max_resident = 1;  // touching a second session spills the first
  auto manager = SessionManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  ASSERT_TRUE((*manager)->CreateSession("victim", spec).ok());
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE((*manager)->Observe("victim", ds.At(i)).ok());
  }
  const StreamPoint dup = ds.At(3);
  auto before = (*manager)->Ingest("victim", {&dup, 1}, /*as_batch=*/false);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->duplicates, 1);

  // Force the spill, then touch the victim again (transparent reload).
  ASSERT_TRUE((*manager)->CreateSession("usurper", spec).ok());
  ASSERT_TRUE((*manager)->Observe("usurper", ds.At(0)).ok());
  auto stats = (*manager)->Stats("victim");
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->resident);

  auto after = (*manager)->Ingest("victim", {&dup, 1}, /*as_batch=*/false);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->accepted, 0);
  EXPECT_EQ(after->duplicates, 1);
  auto reloaded = (*manager)->Stats("victim");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(reloaded->dedup);
  EXPECT_EQ(reloaded->duplicates_rejected, 2);  // spill snapshots first
  EXPECT_GT(reloaded->filter_bytes, 0u);
}

// The lenient-footer contract, at the unit level: `ReadSessionFooters`
// must treat a missing or truncated tail as "nothing persisted" (the
// filter rebuilds from WAL replay), never as a restore failure — that is
// what lets pre-dedup snapshots keep loading.
TEST_F(DedupSessionTest, SessionFooterReaderIsLenient) {
  // No footers at all (a pre-footer snapshot tail).
  {
    SnapshotWriter writer;
    auto reader = SnapshotReader::FromBytes(writer.Serialize());
    ASSERT_TRUE(reader.ok());
    int64_t rejected = -1;
    EXPECT_EQ(ReadSessionFooters(*reader, nullptr, &rejected), nullptr);
    EXPECT_EQ(rejected, -1);  // untouched
  }
  // Stats footer only (a pre-dedup snapshot): counters restored, no
  // filter, no error.
  SnapshotWriter stats_only;
  stats_only.WriteString("fdm.session.stats");
  stats_only.WriteI64(7);    // kept_total
  stats_only.WriteI64(3);    // ingest_batches
  stats_only.WriteI64(1);    // snapshots_taken
  stats_only.WriteDouble(0.5);
  stats_only.WriteI64(0);    // restores
  stats_only.WriteI64(0);    // replayed_records
  {
    auto reader = SnapshotReader::FromBytes(stats_only.Serialize());
    ASSERT_TRUE(reader.ok());
    SessionIngestCounters counters;
    int64_t rejected = -1;
    EXPECT_EQ(ReadSessionFooters(*reader, &counters, &rejected), nullptr);
    EXPECT_EQ(counters.kept_total, 7);
    EXPECT_EQ(rejected, -1);
  }
  // Stats + dedup footer: the filter comes back with its membership and
  // the rejection count.
  SnapshotWriter full = stats_only;
  full.WriteString("fdm.session.dedup");
  full.WriteI64(4);  // duplicates_rejected
  DedupFilter filter;
  ASSERT_TRUE(filter.InsertIfAbsent(11));
  ASSERT_TRUE(filter.InsertIfAbsent(22));
  filter.Serialize(full);
  {
    auto reader = SnapshotReader::FromBytes(full.Serialize());
    ASSERT_TRUE(reader.ok());
    int64_t rejected = 0;
    auto restored = ReadSessionFooters(*reader, nullptr, &rejected);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(rejected, 4);
    EXPECT_TRUE(restored->Contains(11));
    EXPECT_TRUE(restored->Contains(22));
    EXPECT_FALSE(restored->Contains(33));
  }
  // A truncated dedup footer (tag but nothing after) degrades to "no
  // filter persisted", not an error.
  SnapshotWriter truncated = stats_only;
  truncated.WriteString("fdm.session.dedup");
  {
    auto reader = SnapshotReader::FromBytes(truncated.Serialize());
    ASSERT_TRUE(reader.ok());
    int64_t rejected = -1;
    EXPECT_EQ(ReadSessionFooters(*reader, nullptr, &rejected), nullptr);
    EXPECT_EQ(rejected, -1);
  }
}

// Spec migration: flipping dedup=on in an existing session's SPEC file
// invalidates its snapshots (restore is spec-checked), so recovery falls
// back to replaying the retained WAL from scratch — and the fresh filter
// relearns the whole stream along the way. The expensive path, but the
// exact one the WAL-is-authoritative design promises.
TEST_F(DedupSessionTest, SpecMigrationRelearnsMembershipFromWalReplay) {
  const Dataset ds = TestData(2, 120, 23);
  const std::string off_spec =
      "algo=streaming_dm dim=2 k=4" + BoundsSuffix(ds);
  const size_t mid = ds.size() / 2;
  {
    auto session = DurableSession::Create(dir_, off_spec);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    for (size_t i = 0; i < mid; ++i) {
      ASSERT_TRUE(session->Observe(ds.At(i)).ok());
    }
    ASSERT_TRUE(session->TakeSnapshot().ok());  // no dedup footer
    for (size_t i = mid; i < ds.size(); ++i) {
      ASSERT_TRUE(session->Observe(ds.At(i)).ok());
    }
    ASSERT_TRUE(session->Sync().ok());
  }
  {
    // The operator flips the switch on the existing session.
    std::ofstream spec_file(dir_ + "/SPEC", std::ios::trunc);
    spec_file << off_spec << " dedup=on";
  }
  auto reopened = DurableSession::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened->DedupEnabled());
  EXPECT_EQ(reopened->DuplicatesRejected(), 0);
  EXPECT_EQ(reopened->ObservedElements(), static_cast<int64_t>(ds.size()));
  // Every id in the stream — snapshot-era and tail alike — is known: the
  // old snapshot no longer matched the spec, so the whole WAL replayed
  // through the fresh filter.
  ASSERT_NE(reopened->dedup_filter(), nullptr);
  EXPECT_EQ(reopened->dedup_filter()->Size(), ds.size());
  EXPECT_TRUE(reopened->dedup_filter()->Contains(ds.At(0).id));
  EXPECT_TRUE(reopened->dedup_filter()->Contains(ds.At(mid + 1).id));
  ExpectFullReplayIsNoOp(*reopened, ds);
}

// Negative ids carry no identity: they bypass the guard entirely, in
// both directions — never rejected, never remembered.
TEST_F(DedupSessionTest, NegativeIdsBypassTheGuard) {
  const Dataset ds = TestData(2, 40, 29);
  const std::string spec =
      "algo=streaming_dm dim=2 k=4 dedup=on" + BoundsSuffix(ds);
  auto session = DurableSession::Create(dir_, spec);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  const std::vector<double> coords = {0.5, -0.5};
  const StreamPoint anonymous{-1, 0, coords};
  for (int i = 0; i < 3; ++i) {
    auto outcome = session->Ingest({&anonymous, 1}, /*as_batch=*/false);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->accepted, 1);
    EXPECT_EQ(outcome->duplicates, 0);
  }
  EXPECT_EQ(session->DuplicatesRejected(), 0);
  EXPECT_EQ(session->ObservedElements(), 3);
}

}  // namespace
}  // namespace fdm
