// Equivalence of the PointBuffer one-to-many kernels with the scalar
// Metric on random data, for all three paper metrics (Euclidean,
// Manhattan, angular). The blocked Manhattan kernel and the norm-caching
// angular kernel must return bit-identical raw distances and make the same
// threshold decisions as a point-at-a-time scan — the streaming insert
// rule, and therefore every algorithm's output, depends on it.

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "geo/metric.h"
#include "geo/point_buffer.h"
#include "util/rng.h"

namespace fdm {
namespace {

constexpr MetricKind kAllKinds[] = {MetricKind::kEuclidean,
                                    MetricKind::kManhattan,
                                    MetricKind::kAngular};

std::vector<double> RandomPoint(Rng& rng, size_t dim) {
  std::vector<double> coords(dim);
  for (double& c : coords) c = rng.NextDouble(-5.0, 5.0);
  return coords;
}

PointBuffer FillRandom(Rng& rng, size_t n, size_t dim) {
  PointBuffer buffer(dim, n);
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double> coords = RandomPoint(rng, dim);
    buffer.Add(StreamPoint{static_cast<int64_t>(i), 0, coords});
  }
  return buffer;
}

/// Reference: point-at-a-time scan through the scalar kernel.
double ScalarMinRaw(const PointBuffer& buffer, std::span<const double> x,
                    const Metric& metric) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < buffer.size(); ++i) {
    best = std::min(best,
                    metric.RawDistance(x.data(), buffer.CoordsAt(i).data(),
                                       buffer.dim()));
  }
  return best;
}

TEST(PointBufferKernelsTest, MinRawDistanceMatchesScalarMetric) {
  Rng rng(123);
  for (const MetricKind kind : kAllKinds) {
    const Metric metric(kind);
    for (const size_t dim : {1u, 3u, 8u, 17u}) {
      // Sizes around the kernel's block width (8) exercise both the
      // blocked loop and the scalar tail.
      for (const size_t n : {0u, 1u, 7u, 8u, 9u, 40u}) {
        const PointBuffer buffer = FillRandom(rng, n, dim);
        for (int q = 0; q < 20; ++q) {
          const std::vector<double> query = RandomPoint(rng, dim);
          const double expected = ScalarMinRaw(buffer, query, metric);
          const double actual = buffer.MinRawDistanceTo(query, metric);
          // Bit-identical, not approximately equal: the kernels replicate
          // the scalar arithmetic operation for operation.
          EXPECT_EQ(expected, actual)
              << MetricKindName(kind) << " dim=" << dim << " n=" << n;
          // The normalized form agrees too (infinity for an empty buffer).
          EXPECT_EQ(n == 0 ? std::numeric_limits<double>::infinity()
                           : metric.FinishDistance(expected),
                    buffer.MinDistanceTo(query, metric));
        }
      }
    }
  }
}

TEST(PointBufferKernelsTest, AllAtLeastMatchesScalarDecision) {
  Rng rng(321);
  for (const MetricKind kind : kAllKinds) {
    const Metric metric(kind);
    const size_t dim = 6;
    const PointBuffer buffer = FillRandom(rng, 25, dim);
    for (int q = 0; q < 50; ++q) {
      const std::vector<double> query = RandomPoint(rng, dim);
      const double min_raw = ScalarMinRaw(buffer, query, metric);
      const double min_true = metric.FinishDistance(min_raw);
      // Thresholds straddling the true minimum, including the exact value
      // (the decision at equality must match the scalar rule too).
      for (const double threshold :
           {min_true * 0.5, min_true, min_true * 1.5}) {
        const bool expected =
            min_raw >= metric.PrepareThreshold(threshold);
        EXPECT_EQ(expected, buffer.AllAtLeast(query, metric, threshold))
            << MetricKindName(kind) << " threshold=" << threshold;
      }
    }
  }
}

TEST(PointBufferKernelsTest, AngularNormCacheSurvivesRemoveSwap) {
  Rng rng(55);
  const Metric metric(MetricKind::kAngular);
  const size_t dim = 5;
  PointBuffer buffer = FillRandom(rng, 20, dim);
  // Interleave removals and insertions; the cached norms must track the
  // swap-with-last compaction exactly.
  buffer.RemoveSwap(3);
  buffer.RemoveSwap(0);
  buffer.RemoveSwap(buffer.size() - 1);
  const std::vector<double> extra = RandomPoint(rng, dim);
  buffer.Add(StreamPoint{99, 0, extra});
  for (size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(internal::SquaredNorm(buffer.CoordsAt(i).data(), dim),
              buffer.SquaredNormAt(i));
  }
  for (int q = 0; q < 20; ++q) {
    const std::vector<double> query = RandomPoint(rng, dim);
    EXPECT_EQ(ScalarMinRaw(buffer, query, metric),
              buffer.MinRawDistanceTo(query, metric));
  }
}

TEST(PointBufferKernelsTest, ZeroVectorAngularConvention) {
  const Metric metric(MetricKind::kAngular);
  PointBuffer buffer(3, 2);
  const std::vector<double> zero(3, 0.0);
  const std::vector<double> unit = {1.0, 0.0, 0.0};
  buffer.Add(StreamPoint{0, 0, zero});
  buffer.Add(StreamPoint{1, 0, unit});
  // A zero vector is orthogonal-by-convention to everything (pi/2), for
  // both the stored-point and the query side.
  EXPECT_EQ(std::acos(0.0), buffer.MinRawDistanceTo(zero, metric));
  EXPECT_EQ(0.0, buffer.MinRawDistanceTo(unit, metric));
}

}  // namespace
}  // namespace fdm
