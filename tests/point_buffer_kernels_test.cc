// Equivalence of the PointBuffer one-to-many kernels with the scalar
// Metric on random data, for all three paper metrics (Euclidean,
// Manhattan, angular) and for *every dispatch target reachable on the
// build machine* (scalar always; AVX2/NEON when the CPU has them — the
// same sweep `FDM_KERNEL` forces externally in CI). Every target must
// return bit-identical raw distances and make the same threshold
// decisions as a point-at-a-time scan — the streaming insert rule, and
// therefore every algorithm's output, depends on it.

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/streaming_candidate.h"
#include "geo/metric.h"
#include "geo/point_buffer.h"
#include "geo/simd/kernel_dispatch.h"
#include "geo/simd/kernel_targets.h"
#include "util/rng.h"

namespace fdm {
namespace {

constexpr MetricKind kAllKinds[] = {MetricKind::kEuclidean,
                                    MetricKind::kManhattan,
                                    MetricKind::kAngular};

/// Runs `fn` once per dispatch target reachable on this machine, with that
/// target forced active, and restores the process default afterwards.
template <typename Fn>
void ForEachKernelTarget(Fn&& fn) {
  for (const std::string_view target : simd::AvailableKernelTargets()) {
    ASSERT_TRUE(simd::internal::ForceKernelTargetForTest(target));
    fn(target);
  }
  ASSERT_TRUE(simd::internal::ForceKernelTargetForTest(""));
}

std::vector<double> RandomPoint(Rng& rng, size_t dim) {
  std::vector<double> coords(dim);
  for (double& c : coords) c = rng.NextDouble(-5.0, 5.0);
  return coords;
}

PointBuffer FillRandom(Rng& rng, size_t n, size_t dim) {
  PointBuffer buffer(dim, n);
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double> coords = RandomPoint(rng, dim);
    buffer.Add(StreamPoint{static_cast<int64_t>(i), 0, coords});
  }
  return buffer;
}

/// Reference: point-at-a-time scan through the scalar kernel.
double ScalarMinRaw(const PointBuffer& buffer, std::span<const double> x,
                    const Metric& metric) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < buffer.size(); ++i) {
    best = std::min(best,
                    metric.RawDistance(x.data(), buffer.CoordsAt(i).data(),
                                       buffer.dim()));
  }
  return best;
}

TEST(PointBufferKernelsTest, MinRawDistanceMatchesScalarMetric) {
  ForEachKernelTarget([](std::string_view target) {
    Rng rng(123);
    for (const MetricKind kind : kAllKinds) {
      const Metric metric(kind);
      // Odd dimensions exercise every lane-broadcast path; sizes around
      // the block width (8) exercise full blocks and the padded tail.
      for (const size_t dim : {1u, 3u, 7u, 8u, 17u}) {
        for (const size_t n : {0u, 1u, 7u, 8u, 9u, 17u, 40u, 100u}) {
          const PointBuffer buffer = FillRandom(rng, n, dim);
          for (int q = 0; q < 20; ++q) {
            const std::vector<double> query = RandomPoint(rng, dim);
            const double expected = ScalarMinRaw(buffer, query, metric);
            const double actual = buffer.MinRawDistanceTo(query, metric);
            // Bit-identical, not approximately equal: every dispatch
            // target replicates the scalar arithmetic operation for
            // operation (per lane), and min is exact.
            EXPECT_EQ(expected, actual)
                << target << " " << MetricKindName(kind) << " dim=" << dim
                << " n=" << n;
            // The normalized form agrees too (infinity when empty).
            EXPECT_EQ(n == 0 ? std::numeric_limits<double>::infinity()
                             : metric.FinishDistance(expected),
                      buffer.MinDistanceTo(query, metric));
          }
        }
      }
    }
  });
}

TEST(PointBufferKernelsTest, AllAtLeastMatchesScalarDecision) {
  ForEachKernelTarget([](std::string_view target) {
    Rng rng(321);
    for (const MetricKind kind : kAllKinds) {
      const Metric metric(kind);
      for (const size_t dim : {1u, 3u, 6u, 17u}) {
        // 25 points: three full blocks plus a padded tail lane.
        const PointBuffer buffer = FillRandom(rng, 25, dim);
        for (int q = 0; q < 50; ++q) {
          const std::vector<double> query = RandomPoint(rng, dim);
          const double min_raw = ScalarMinRaw(buffer, query, metric);
          const double min_true = metric.FinishDistance(min_raw);
          // Thresholds straddling the true minimum, including the exact
          // value (the decision at equality must match the scalar rule —
          // early exits may shorten the scan but never flip a decision).
          for (const double threshold :
               {min_true * 0.5, min_true, min_true * 1.5}) {
            const bool expected =
                min_raw >= metric.PrepareThreshold(threshold);
            EXPECT_EQ(expected, buffer.AllAtLeast(query, metric, threshold))
                << target << " " << MetricKindName(kind)
                << " threshold=" << threshold;
          }
        }
      }
    }
  });
}

TEST(PointBufferKernelsTest, MinRawDistanceToManyMatchesSingleQueryScans) {
  ForEachKernelTarget([](std::string_view target) {
    Rng rng(777);
    for (const MetricKind kind : kAllKinds) {
      const Metric metric(kind);
      for (const size_t dim : {1u, 3u, 7u, 17u}) {
        for (const size_t n : {0u, 1u, 9u, 40u}) {
          const PointBuffer buffer = FillRandom(rng, n, dim);
          constexpr size_t kQ = 13;
          std::vector<std::vector<double>> queries;
          std::vector<const double*> q_ptrs;
          for (size_t q = 0; q < kQ; ++q) {
            queries.push_back(RandomPoint(rng, dim));
            q_ptrs.push_back(queries.back().data());
          }
          // Exact mode (-inf thresholds): bit-identical to per-query
          // full scans.
          std::vector<double> stops(
              kQ, -std::numeric_limits<double>::infinity());
          std::vector<double> out(kQ);
          buffer.MinRawDistanceToMany(
              std::span<const double* const>(q_ptrs.data(), kQ), metric,
              stops, std::span<double>(out.data(), kQ));
          for (size_t q = 0; q < kQ; ++q) {
            EXPECT_EQ(buffer.MinRawDistanceTo(queries[q], metric), out[q])
                << target << " " << MetricKindName(kind) << " dim=" << dim
                << " n=" << n << " q=" << q;
          }
          if (n == 0) continue;
          // Threshold mode: per-query decisions match AllAtLeast for
          // thresholds straddling each query's true minimum.
          for (const double factor : {0.5, 1.0, 1.5}) {
            std::vector<double> raw_stops(kQ);
            std::vector<double> trues(kQ);
            for (size_t q = 0; q < kQ; ++q) {
              trues[q] =
                  metric.FinishDistance(out[q]) * factor;
              raw_stops[q] = metric.PrepareThreshold(trues[q]);
            }
            std::vector<double> decided(kQ);
            buffer.MinRawDistanceToMany(
                std::span<const double* const>(q_ptrs.data(), kQ), metric,
                raw_stops, std::span<double>(decided.data(), kQ));
            for (size_t q = 0; q < kQ; ++q) {
              EXPECT_EQ(buffer.AllAtLeast(queries[q], metric, trues[q]),
                        decided[q] >= raw_stops[q])
                  << target << " " << MetricKindName(kind)
                  << " factor=" << factor << " q=" << q;
            }
          }
        }
      }
    }
  });
}

TEST(PointBufferKernelsTest, FuzzInterleavedMutationsKeepLayoutsConsistent) {
  // Fuzz-style interleaving of Add / RemoveSwap / Clear with kernel scans:
  // the padded block layout and the cached squared-norm array must track
  // every mutation exactly (replicate-last padding included), for all
  // three metrics and every reachable dispatch target.
  ForEachKernelTarget([](std::string_view target) {
    for (const MetricKind kind : kAllKinds) {
      const Metric metric(kind);
      for (const size_t dim : {1u, 3u, 8u, 17u}) {
        Rng rng(1000 + dim);
        PointBuffer buffer(dim, 0);
        int64_t next_id = 0;
        for (int step = 0; step < 400; ++step) {
          const uint64_t op = rng.NextBounded(10);
          if (op < 6 || buffer.empty()) {
            const std::vector<double> coords = RandomPoint(rng, dim);
            buffer.Add(StreamPoint{next_id++, 0, coords});
          } else if (op < 9) {
            buffer.RemoveSwap(rng.NextBounded(buffer.size()));
          } else {
            buffer.Clear();
          }
          // Norm cache tracks the compaction bit-exactly.
          for (size_t i = 0; i < buffer.size(); ++i) {
            ASSERT_EQ(internal::SquaredNorm(buffer.CoordsAt(i).data(), dim),
                      buffer.SquaredNormAt(i))
                << target << " " << MetricKindName(kind) << " step=" << step;
          }
          if (step % 7 != 0) continue;  // scan periodically, mutate often
          const std::vector<double> query = RandomPoint(rng, dim);
          ASSERT_EQ(ScalarMinRaw(buffer, query, metric),
                    buffer.MinRawDistanceTo(query, metric))
              << target << " " << MetricKindName(kind) << " dim=" << dim
              << " step=" << step << " n=" << buffer.size();
        }
      }
    }
  });
}

TEST(PointBufferKernelsTest, AdmissionDecisionsIdenticalAcrossTargets) {
  // The acceptance contract of the dispatch subsystem, at the candidate
  // level: replaying the same stream through StreamingCandidate under
  // every reachable target (early exits included, batched and per-element)
  // must keep exactly the same elements in exactly the same order.
  Rng stream_rng(9001);
  for (const MetricKind kind : kAllKinds) {
    const Metric metric(kind);
    const size_t dim = 5;
    const double mu = kind == MetricKind::kAngular ? 0.4 : 2.5;
    std::vector<std::vector<double>> stream;
    for (int i = 0; i < 600; ++i) {
      stream.push_back(RandomPoint(stream_rng, dim));
    }
    std::vector<std::vector<int64_t>> kept_per_target;
    ForEachKernelTarget([&](std::string_view) {
      StreamingCandidate element_wise(mu, 25, dim);
      StreamingCandidate batched(mu, 25, dim);
      for (size_t i = 0; i < stream.size(); ++i) {
        element_wise.TryAdd(
            StreamPoint{static_cast<int64_t>(i), 0, stream[i]}, metric);
      }
      // Batched replay in uneven chunks (straddles the worklist pruning).
      std::vector<StreamPoint> batch;
      size_t i = 0;
      for (const size_t chunk : {1u, 7u, 64u, 128u, 400u}) {
        batch.clear();
        for (size_t t = 0; t < chunk && i < stream.size(); ++t, ++i) {
          batch.push_back(
              StreamPoint{static_cast<int64_t>(i), 0, stream[i]});
        }
        batched.TryAddBatch(batch, metric);
      }
      ASSERT_EQ(element_wise.points().size(), batched.points().size())
          << MetricKindName(kind);
      std::vector<int64_t> kept;
      for (size_t p = 0; p < element_wise.points().size(); ++p) {
        ASSERT_EQ(element_wise.points().IdAt(p), batched.points().IdAt(p))
            << MetricKindName(kind);
        kept.push_back(element_wise.points().IdAt(p));
      }
      kept_per_target.push_back(std::move(kept));
    });
    for (size_t t = 1; t < kept_per_target.size(); ++t) {
      EXPECT_EQ(kept_per_target[0], kept_per_target[t])
          << MetricKindName(kind) << " target index " << t;
    }
  }
}

TEST(PointBufferKernelsTest, RawDistancesToAllMatchesScalarMetricLoop) {
  // The offline one-to-many "dists" entry points (the Solve-path routing
  // added for the cold-SOLVE work): every target must fill the first n
  // slots with exactly metric.RawDistance(q, point_i), padded tail slots
  // notwithstanding.
  ForEachKernelTarget([](std::string_view target) {
    Rng rng(2024);
    std::vector<double> out;
    for (const MetricKind kind : kAllKinds) {
      const Metric metric(kind);
      for (const size_t dim : {1u, 3u, 7u, 8u, 17u}) {
        for (const size_t n : {0u, 1u, 7u, 8u, 9u, 25u, 64u}) {
          const PointBuffer buffer = FillRandom(rng, n, dim);
          for (int q = 0; q < 10; ++q) {
            const std::vector<double> query = RandomPoint(rng, dim);
            buffer.RawDistancesToAll(query, metric, out);
            ASSERT_GE(out.size(), n);
            for (size_t i = 0; i < n; ++i) {
              EXPECT_EQ(metric.RawDistance(query.data(),
                                           buffer.CoordsAt(i).data(), dim),
                        out[i])
                  << target << " " << MetricKindName(kind) << " dim=" << dim
                  << " n=" << n << " i=" << i;
            }
          }
        }
      }
    }
  });
}

TEST(PointBufferKernelsTest, DeferredPaddingEquivalentToPlainAddAfterSeal) {
  // AddDeferPadding + SealPadding (the fused batch-insert path) must leave
  // the buffer indistinguishable from a plain Add sequence: same scan
  // results under every target, same norms, same ids — including when the
  // deferred run ends mid-block, where the padding lanes matter most.
  ForEachKernelTarget([](std::string_view target) {
    Rng rng(4242);
    for (const MetricKind kind : kAllKinds) {
      const Metric metric(kind);
      const size_t dim = 7;
      for (const size_t pre : {0u, 3u, 8u, 13u}) {
        for (const size_t batch : {1u, 2u, 5u, 8u, 11u}) {
          PointBuffer plain(dim, pre + batch);
          PointBuffer deferred(dim, pre + batch);
          int64_t id = 0;
          for (size_t i = 0; i < pre; ++i, ++id) {
            const std::vector<double> coords = RandomPoint(rng, dim);
            plain.Add(StreamPoint{id, 0, coords});
            deferred.Add(StreamPoint{id, 0, coords});
          }
          for (size_t i = 0; i < batch; ++i, ++id) {
            const std::vector<double> coords = RandomPoint(rng, dim);
            plain.Add(StreamPoint{id, 0, coords});
            deferred.AddDeferPadding(StreamPoint{id, 0, coords});
          }
          deferred.SealPadding();
          ASSERT_EQ(plain.size(), deferred.size());
          for (size_t i = 0; i < plain.size(); ++i) {
            ASSERT_EQ(plain.IdAt(i), deferred.IdAt(i));
            ASSERT_EQ(plain.SquaredNormAt(i), deferred.SquaredNormAt(i));
          }
          for (int q = 0; q < 10; ++q) {
            const std::vector<double> query = RandomPoint(rng, dim);
            EXPECT_EQ(plain.MinRawDistanceTo(query, metric),
                      deferred.MinRawDistanceTo(query, metric))
                << target << " " << MetricKindName(kind) << " pre=" << pre
                << " batch=" << batch;
          }
        }
      }
    }
  });
}

TEST(PointBufferKernelsTest, ApproxAcosWithinDocumentedBoundAndCrossTarget) {
  // The opt-in polynomial acos epilogue: |approx - std::acos| <= 2e-8 rad
  // over the full cosine range (the documented ULP-policy bound), and —
  // because the polynomial runs in the shared baseline epilogue — the
  // approximation is itself bit-identical across every dispatch target.
  ASSERT_FALSE(simd::internal::ApproxAcosEnabled());  // default off
  simd::internal::SetApproxAcosForTest(true);
  Rng rng(31415);
  const Metric metric(MetricKind::kAngular);
  const size_t dim = 6;
  const PointBuffer buffer = FillRandom(rng, 25, dim);
  for (int q = 0; q < 40; ++q) {
    const std::vector<double> query = RandomPoint(rng, dim);
    const double exact = ScalarMinRaw(buffer, query, metric);
    double first = 0.0;
    size_t t = 0;
    ForEachKernelTarget([&](std::string_view target) {
      const double approx = buffer.MinRawDistanceTo(query, metric);
      EXPECT_LE(std::abs(approx - exact), 2e-8)
          << target << " q=" << q;
      if (t++ == 0) {
        first = approx;
      } else {
        EXPECT_EQ(first, approx) << target << " q=" << q;
      }
    });
  }
  simd::internal::SetApproxAcosForTest(false);
  // Back off: the exact std::acos epilogue again.
  const std::vector<double> query = RandomPoint(rng, dim);
  EXPECT_EQ(ScalarMinRaw(buffer, query, metric),
            buffer.MinRawDistanceTo(query, metric));
}

TEST(PointBufferKernelsTest, AngularNormCacheSurvivesRemoveSwap) {
  Rng rng(55);
  const Metric metric(MetricKind::kAngular);
  const size_t dim = 5;
  PointBuffer buffer = FillRandom(rng, 20, dim);
  // Interleave removals and insertions; the cached norms must track the
  // swap-with-last compaction exactly.
  buffer.RemoveSwap(3);
  buffer.RemoveSwap(0);
  buffer.RemoveSwap(buffer.size() - 1);
  const std::vector<double> extra = RandomPoint(rng, dim);
  buffer.Add(StreamPoint{99, 0, extra});
  for (size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(internal::SquaredNorm(buffer.CoordsAt(i).data(), dim),
              buffer.SquaredNormAt(i));
  }
  for (int q = 0; q < 20; ++q) {
    const std::vector<double> query = RandomPoint(rng, dim);
    EXPECT_EQ(ScalarMinRaw(buffer, query, metric),
              buffer.MinRawDistanceTo(query, metric));
  }
}

TEST(PointBufferKernelsTest, ZeroVectorAngularConvention) {
  const Metric metric(MetricKind::kAngular);
  PointBuffer buffer(3, 2);
  const std::vector<double> zero(3, 0.0);
  const std::vector<double> unit = {1.0, 0.0, 0.0};
  buffer.Add(StreamPoint{0, 0, zero});
  buffer.Add(StreamPoint{1, 0, unit});
  // A zero vector is orthogonal-by-convention to everything (pi/2), for
  // both the stored-point and the query side.
  EXPECT_EQ(std::acos(0.0), buffer.MinRawDistanceTo(zero, metric));
  EXPECT_EQ(0.0, buffer.MinRawDistanceTo(unit, metric));
}

}  // namespace
}  // namespace fdm
