#include "harness/table.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace fdm {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "div", "time"});
  t.AddRow({"GMM", "5.02", "0.1"});
  t.AddRow({"FairSwap", "4.15", "9.583"});
  std::ostringstream out;
  t.Print(out);
  const std::string text = out.str();
  // Header present, rule present, both rows present.
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_NE(text.find("FairSwap"), std::string::npos);
  // Label column left-aligned: "GMM" padded to the width of "FairSwap".
  EXPECT_NE(text.find("GMM     "), std::string::npos);
  // Number columns right-aligned.
  EXPECT_NE(text.find(" 5.02"), std::string::npos);
}

TEST(TablePrinterTest, RowCountTracked) {
  TablePrinter t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, CsvRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fdm_table_test.csv").string();
  TablePrinter t({"algo", "k", "div"});
  t.AddRow({"SFDM1", "20", "3.94"});
  t.AddRow({"SFDM2", "20", "4.17"});
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "algo,k,div");
  std::getline(in, line);
  EXPECT_EQ(line, "SFDM1,20,3.94");
  std::getline(in, line);
  EXPECT_EQ(line, "SFDM2,20,4.17");
  std::remove(path.c_str());
}

TEST(TablePrinterTest, CsvFailsOnBadPath) {
  TablePrinter t({"a"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent/dir/x.csv").ok());
}

TEST(EnsureDirectoryTest, CreatesNestedAndIsIdempotent) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "fdm_table_test_dir" / "sub")
          .string();
  EXPECT_TRUE(EnsureDirectory(dir));
  EXPECT_TRUE(std::filesystem::exists(dir));
  EXPECT_TRUE(EnsureDirectory(dir));  // already exists: still true
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "fdm_table_test_dir");
}

}  // namespace
}  // namespace fdm
