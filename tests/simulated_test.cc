#include "data/simulated.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fdm {
namespace {

// The simulated stand-ins are only useful if they preserve the *shape*
// Table I documents: n, dim, metric, number of groups, and group skew.
// These tests pin those invariants (at reduced n for speed; the
// generators are linear in n and identical at any scale).

constexpr size_t kTestN = 20000;

TEST(SimulatedAdultTest, TableOneShape) {
  const Dataset sex = SimulatedAdult(AdultGrouping::kSex, 1, kTestN);
  EXPECT_EQ(sex.size(), kTestN);
  EXPECT_EQ(sex.dim(), 6u);
  EXPECT_EQ(sex.num_groups(), 2);
  EXPECT_EQ(sex.metric_kind(), MetricKind::kEuclidean);

  const Dataset race = SimulatedAdult(AdultGrouping::kRace, 1, kTestN);
  EXPECT_EQ(race.num_groups(), 5);
  const Dataset both = SimulatedAdult(AdultGrouping::kSexRace, 1, kTestN);
  EXPECT_EQ(both.num_groups(), 10);
}

TEST(SimulatedAdultTest, DefaultSizeMatchesPaper) {
  // Do not generate the full set here; just check the declared default.
  const Dataset tiny = SimulatedAdult(AdultGrouping::kSex, 1, 10);
  EXPECT_EQ(tiny.size(), 10u);
  // Paper: 48,842 records.
  EXPECT_EQ(SimulatedAdult(AdultGrouping::kSex, 1).size(), 48842u);
}

TEST(SimulatedAdultTest, SexSkewMatchesPaper) {
  // Paper: "67% of the records are for males".
  const Dataset ds = SimulatedAdult(AdultGrouping::kSex, 2, kTestN);
  const auto sizes = ds.GroupSizes();
  const double male_frac =
      static_cast<double>(sizes[1]) / static_cast<double>(ds.size());
  EXPECT_NEAR(male_frac, 0.67, 0.02);
}

TEST(SimulatedAdultTest, RaceSkewMatchesPaper) {
  // Paper: "87% of the records are for Whites" (dominant group).
  const Dataset ds = SimulatedAdult(AdultGrouping::kRace, 3, kTestN);
  const auto sizes = ds.GroupSizes();
  const double white_frac =
      static_cast<double>(sizes[0]) / static_cast<double>(ds.size());
  EXPECT_NEAR(white_frac, 0.855, 0.02);
  for (const size_t s : sizes) EXPECT_GT(s, 0u);  // all races present
}

TEST(SimulatedAdultTest, FeaturesAreZScored) {
  const Dataset ds = SimulatedAdult(AdultGrouping::kSex, 4, kTestN);
  for (size_t d = 0; d < ds.dim(); ++d) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (size_t i = 0; i < ds.size(); ++i) {
      sum += ds.Point(i)[d];
      sum_sq += ds.Point(i)[d] * ds.Point(i)[d];
    }
    const double mean = sum / static_cast<double>(ds.size());
    const double var = sum_sq / static_cast<double>(ds.size()) - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-9) << "column " << d;
    EXPECT_NEAR(var, 1.0, 1e-6) << "column " << d;
  }
}

TEST(SimulatedAdultTest, CapitalGainIsZeroInflated) {
  // The heavy-tailed zero-inflated columns are what make Adult's distance
  // distribution skewed; verify the mode persists after z-scoring
  // (a large fraction of identical values in column 3).
  const Dataset ds = SimulatedAdult(AdultGrouping::kSex, 5, kTestN);
  int mode_count = 0;
  const double first = ds.Point(0)[3];
  int first_count = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds.Point(i)[3] == first) ++first_count;
  }
  mode_count = first_count;
  EXPECT_GT(mode_count, static_cast<int>(kTestN / 2));
}

TEST(SimulatedCelebATest, TableOneShape) {
  const Dataset ds = SimulatedCelebA(CelebAGrouping::kSex, 1, kTestN);
  EXPECT_EQ(ds.dim(), 41u);
  EXPECT_EQ(ds.num_groups(), 2);
  EXPECT_EQ(ds.metric_kind(), MetricKind::kManhattan);
  EXPECT_EQ(SimulatedCelebA(CelebAGrouping::kSexAge, 1, 100).num_groups(), 4);
  // Paper: 202,599 images.
  EXPECT_EQ(SimulatedCelebA(CelebAGrouping::kSex, 1).size(), 202599u);
}

TEST(SimulatedCelebATest, FeaturesAreBinary) {
  const Dataset ds = SimulatedCelebA(CelebAGrouping::kAge, 2, 2000);
  for (size_t i = 0; i < ds.size(); ++i) {
    for (size_t d = 0; d < ds.dim(); ++d) {
      const double v = ds.Point(i)[d];
      EXPECT_TRUE(v == 0.0 || v == 1.0);
    }
  }
}

TEST(SimulatedCelebATest, GroupSkews) {
  const Dataset sex = SimulatedCelebA(CelebAGrouping::kSex, 3, kTestN);
  const double female = static_cast<double>(sex.GroupSizes()[0]) /
                        static_cast<double>(sex.size());
  EXPECT_NEAR(female, 0.58, 0.02);
  const Dataset age = SimulatedCelebA(CelebAGrouping::kAge, 3, kTestN);
  const double young = static_cast<double>(age.GroupSizes()[0]) /
                       static_cast<double>(age.size());
  EXPECT_NEAR(young, 0.78, 0.02);
}

TEST(SimulatedCelebATest, AttributesCorrelateWithSex) {
  // Group-conditional feature shifts are what make fair selection
  // non-trivial; verify at least a few attributes differ strongly by sex.
  const Dataset ds = SimulatedCelebA(CelebAGrouping::kSex, 4, kTestN);
  int strongly_correlated = 0;
  for (size_t d = 0; d < ds.dim(); ++d) {
    double mean[2] = {0, 0};
    size_t count[2] = {0, 0};
    for (size_t i = 0; i < ds.size(); ++i) {
      mean[ds.GroupOf(i)] += ds.Point(i)[d];
      ++count[ds.GroupOf(i)];
    }
    mean[0] /= static_cast<double>(count[0]);
    mean[1] /= static_cast<double>(count[1]);
    if (std::fabs(mean[0] - mean[1]) > 0.15) ++strongly_correlated;
  }
  EXPECT_GE(strongly_correlated, 5);
}

TEST(SimulatedCensusTest, TableOneShape) {
  const Dataset ds = SimulatedCensus(CensusGrouping::kSex, 1, kTestN);
  EXPECT_EQ(ds.dim(), 25u);
  EXPECT_EQ(ds.num_groups(), 2);
  EXPECT_EQ(ds.metric_kind(), MetricKind::kManhattan);
  EXPECT_EQ(SimulatedCensus(CensusGrouping::kAge, 1, 100).num_groups(), 7);
  EXPECT_EQ(SimulatedCensus(CensusGrouping::kSexAge, 1, 100).num_groups(), 14);
  // Default is the laptop-scale 1/10 size; paper scale is reachable.
  EXPECT_EQ(kCensusFullSize, 2426116u);
}

TEST(SimulatedCensusTest, AllAgeBracketsPopulated) {
  const Dataset ds = SimulatedCensus(CensusGrouping::kAge, 2, kTestN);
  for (const size_t s : ds.GroupSizes()) {
    EXPECT_GT(s, kTestN / 30);
  }
}

TEST(SimulatedCensusTest, FeaturesAreZScored) {
  const Dataset ds = SimulatedCensus(CensusGrouping::kSex, 3, kTestN);
  for (size_t d = 0; d < ds.dim(); ++d) {
    double sum = 0.0;
    for (size_t i = 0; i < ds.size(); ++i) sum += ds.Point(i)[d];
    EXPECT_NEAR(sum / static_cast<double>(ds.size()), 0.0, 1e-9);
  }
}

TEST(SimulatedLyricsTest, TableOneShape) {
  const Dataset ds = SimulatedLyrics(1, kTestN);
  EXPECT_EQ(ds.dim(), 50u);
  EXPECT_EQ(ds.num_groups(), 15);
  EXPECT_EQ(ds.metric_kind(), MetricKind::kAngular);
  // Paper: 122,448 songs.
  EXPECT_EQ(SimulatedLyrics(1).size(), 122448u);
}

TEST(SimulatedLyricsTest, TopicVectorsOnSimplex) {
  const Dataset ds = SimulatedLyrics(2, 2000);
  for (size_t i = 0; i < ds.size(); ++i) {
    double sum = 0.0;
    for (size_t d = 0; d < ds.dim(); ++d) {
      EXPECT_GE(ds.Point(i)[d], 0.0);
      sum += ds.Point(i)[d];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(SimulatedLyricsTest, GenresAreZipfSkewed) {
  const Dataset ds = SimulatedLyrics(3, kTestN);
  const auto sizes = ds.GroupSizes();
  EXPECT_GT(sizes[0], sizes[14] * 3);  // head genre much larger than tail
  for (const size_t s : sizes) EXPECT_GT(s, 0u);
}

TEST(SimulatedLyricsTest, AngularDistancesWithinQuarterTurn) {
  // Nonnegative vectors: angular distance is at most pi/2 — the property
  // that forces the paper to use ε = 0.05 on Lyrics.
  const Dataset ds = SimulatedLyrics(4, 500);
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  EXPECT_LE(b.max, std::acos(0.0) + 1e-9);
  EXPECT_GT(b.min, 0.0);
}

TEST(SimulatedDatasetsTest, DeterministicAcrossCalls) {
  const Dataset a = SimulatedAdult(AdultGrouping::kSex, 9, 500);
  const Dataset b = SimulatedAdult(AdultGrouping::kSex, 9, 500);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.GroupOf(i), b.GroupOf(i));
    for (size_t d = 0; d < a.dim(); ++d) {
      EXPECT_DOUBLE_EQ(a.Point(i)[d], b.Point(i)[d]);
    }
  }
}

}  // namespace
}  // namespace fdm
