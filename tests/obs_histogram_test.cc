// Core correctness of the shared log-bucketed histogram: exact bucket
// boundaries, the ≤ 1/8 relative bucket width the percentile error bound
// rests on, quantile semantics, deterministic merges, and the sparse
// snapshot round-trip (including rejection of malformed payloads).

#include "obs/histogram.h"

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "util/binary_io.h"

namespace fdm::obs {
namespace {

using H = HistogramSnapshot;

TEST(ObsHistogramTest, SmallValuesGetExactBuckets) {
  for (uint64_t v = 0; v < H::kSubBuckets; ++v) {
    EXPECT_EQ(static_cast<size_t>(v), H::BucketIndex(v));
    EXPECT_EQ(v, H::BucketLowerBound(v));
    EXPECT_EQ(v, H::BucketUpperBound(v));
  }
}

TEST(ObsHistogramTest, OctaveBoundariesAreExact) {
  // First value of the first split octave.
  EXPECT_EQ(8u, H::BucketIndex(8));
  EXPECT_EQ(8u, H::BucketLowerBound(8));
  // Last value of that octave still has its own bucket (width 1).
  EXPECT_EQ(15u, H::BucketIndex(15));
  EXPECT_EQ(15u, H::BucketLowerBound(15));
  // The next octave doubles the bucket width: 16 and 17 share a bucket.
  EXPECT_EQ(16u, H::BucketIndex(16));
  EXPECT_EQ(H::BucketIndex(16), H::BucketIndex(17));
  EXPECT_NE(H::BucketIndex(17), H::BucketIndex(18));
  EXPECT_EQ(16u, H::BucketLowerBound(16));
  EXPECT_EQ(17u, H::BucketUpperBound(16));
}

TEST(ObsHistogramTest, BoundsRoundTripThroughBucketIndex) {
  for (size_t i = 0; i < H::kBucketCount; ++i) {
    EXPECT_EQ(i, H::BucketIndex(H::BucketLowerBound(i))) << "index " << i;
    EXPECT_EQ(i, H::BucketIndex(H::BucketUpperBound(i))) << "index " << i;
    if (i > 0) {
      EXPECT_GT(H::BucketLowerBound(i), H::BucketLowerBound(i - 1));
      EXPECT_EQ(H::BucketLowerBound(i) - 1, H::BucketUpperBound(i - 1));
    }
  }
  EXPECT_EQ(std::numeric_limits<uint64_t>::max(),
            H::BucketUpperBound(H::kBucketCount - 1));
  EXPECT_EQ(H::kBucketCount - 1,
            H::BucketIndex(std::numeric_limits<uint64_t>::max()));
}

TEST(ObsHistogramTest, RelativeBucketWidthIsBounded) {
  // The documented error bound: for any recorded value, the bucket's upper
  // bound exceeds the value by at most 12.5% (exact below 8). Sampled over
  // many magnitudes.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 10000; ++trial) {
    const uint64_t v = rng() >> (rng() % 56);
    const size_t index = H::BucketIndex(v);
    const uint64_t lower = H::BucketLowerBound(index);
    ASSERT_LE(lower, v);
    if (index + 1 < H::kBucketCount) {
      const uint64_t upper = H::BucketUpperBound(index);
      ASSERT_GE(upper, v);
      // width <= lower / 8 for split octaves.
      if (v >= H::kSubBuckets) {
        EXPECT_LE(upper - lower + 1, lower / H::kSubBuckets + 1)
            << "v=" << v << " index=" << index;
      }
    }
  }
}

TEST(ObsHistogramTest, PercentileSemantics) {
  H h;
  EXPECT_EQ(0u, h.Percentile(0.5));  // empty -> 0
  EXPECT_EQ(0u, h.Max());
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(1000u, h.count);
  EXPECT_EQ(1000u * 1001u / 2, h.sum);
  // Quantiles are bucket upper bounds: conservative, never below the true
  // quantile, and within the 12.5% bound above it.
  const uint64_t p50 = h.Percentile(0.5);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 563u);
  const uint64_t p99 = h.Percentile(0.99);
  EXPECT_GE(p99, 990u);
  EXPECT_LE(p99, 1151u);
  // p0 resolves to the first sample's bucket; p100 to the last's.
  EXPECT_EQ(1u, h.Percentile(0.0));
  EXPECT_EQ(h.Max(), h.Percentile(1.0));
  EXPECT_DOUBLE_EQ(500.5, h.Mean());
}

TEST(ObsHistogramTest, PercentileExactBelowEight) {
  H h;
  for (int i = 0; i < 10; ++i) h.Record(3);
  h.Record(5);
  EXPECT_EQ(3u, h.Percentile(0.5));
  EXPECT_EQ(5u, h.Percentile(1.0));
  EXPECT_EQ(5u, h.Max());
}

TEST(ObsHistogramTest, MergeIsDeterministicAndOrderFree) {
  std::mt19937_64 rng(11);
  std::vector<uint64_t> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng() >> (rng() % 50));

  H single;
  for (const uint64_t v : values) single.Record(v);

  // Shard the same samples three ways, merge in two different orders.
  H shards[3];
  for (size_t i = 0; i < values.size(); ++i) {
    shards[i % 3].Record(values[i]);
  }
  H forward;
  forward.Merge(shards[0]);
  forward.Merge(shards[1]);
  forward.Merge(shards[2]);
  H backward;
  backward.Merge(shards[2]);
  backward.Merge(shards[1]);
  backward.Merge(shards[0]);

  EXPECT_EQ(single.counts, forward.counts);
  EXPECT_EQ(single.counts, backward.counts);
  EXPECT_EQ(single.count, forward.count);
  EXPECT_EQ(single.sum, forward.sum);
  EXPECT_EQ(forward.Percentile(0.99), backward.Percentile(0.99));
}

TEST(ObsHistogramTest, SnapshotRoundTrip) {
  std::mt19937_64 rng(13);
  H original;
  for (int i = 0; i < 2000; ++i) original.Record(rng() >> (rng() % 40));

  SnapshotWriter writer;
  original.WriteTo(writer);
  auto reader = SnapshotReader::FromBytes(writer.Serialize());
  ASSERT_TRUE(reader.ok());
  H restored;
  ASSERT_TRUE(restored.ReadFrom(*reader));
  EXPECT_TRUE(reader->ok());
  EXPECT_EQ(0u, reader->Remaining());
  EXPECT_EQ(original.counts, restored.counts);
  EXPECT_EQ(original.count, restored.count);
  EXPECT_EQ(original.sum, restored.sum);
  EXPECT_EQ(original.Percentile(0.5), restored.Percentile(0.5));
}

TEST(ObsHistogramTest, ReadFromRejectsMalformedPayloads) {
  // Bucket index out of range.
  {
    SnapshotWriter writer;
    writer.WriteU64(1);  // count
    writer.WriteU64(5);  // sum
    writer.WriteU32(1);  // nonzero buckets
    writer.WriteU32(static_cast<uint32_t>(H::kBucketCount));  // bad index
    writer.WriteU64(1);
    auto reader = SnapshotReader::FromBytes(writer.Serialize());
    ASSERT_TRUE(reader.ok());
    H h;
    h.Record(42);  // must be zeroed on failure
    EXPECT_FALSE(h.ReadFrom(*reader));
    EXPECT_EQ(0u, h.count);
    EXPECT_EQ(0u, h.Max());
  }
  // Bucket total disagreeing with the recorded count.
  {
    SnapshotWriter writer;
    writer.WriteU64(3);  // claims 3 samples
    writer.WriteU64(5);
    writer.WriteU32(1);
    writer.WriteU32(5);
    writer.WriteU64(1);  // but buckets only hold 1
    auto reader = SnapshotReader::FromBytes(writer.Serialize());
    ASSERT_TRUE(reader.ok());
    H h;
    EXPECT_FALSE(h.ReadFrom(*reader));
    EXPECT_EQ(0u, h.count);
  }
  // Truncated payload.
  {
    SnapshotWriter writer;
    writer.WriteU64(1);
    auto reader = SnapshotReader::FromBytes(writer.Serialize());
    ASSERT_TRUE(reader.ok());
    H h;
    EXPECT_FALSE(h.ReadFrom(*reader));
    EXPECT_FALSE(reader->ok());  // sticky error left for the caller
  }
}

}  // namespace
}  // namespace fdm::obs
