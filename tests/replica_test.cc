// The read-replica acceptance suite: followers bootstrapped from snapshots
// and WAL tails must serve bit-identical solutions at matched state
// versions — under deterministic fault injection (kill/restart at every
// segment boundary and at torn mid-segment points), under live staleness
// (a follower never runs ahead of the primary, lag is monotone during
// catch-up, stale answers are flagged), and under pruning races (the
// primary deletes snapshots/segments while a follower is mid-bootstrap).

#include "replica/replica_session.h"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "fault_inject.h"
#include "replica/replica_manager.h"
#include "replica/replication_source.h"
#include "service/durable_session.h"
#include "service/session_manager.h"
#include "service/sink_spec.h"

namespace fdm {
namespace {

class ReplicaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fdm_replica_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

Dataset TestData(int m, size_t n = 150, uint64_t seed = 31) {
  BlobsOptions opt;
  opt.n = n;
  opt.num_groups = m;
  opt.seed = seed;
  return MakeBlobs(opt);
}

std::string BoundsSuffix(const Dataset& ds) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  return " dmin=" + std::to_string(b.min) + " dmax=" + std::to_string(b.max);
}

void ExpectSameSolution(const StreamSink& a, const StreamSink& b) {
  ASSERT_EQ(a.ObservedElements(), b.ObservedElements());
  ASSERT_EQ(a.StoredElements(), b.StoredElements());
  EXPECT_EQ(a.StateVersion(), b.StateVersion());
  const auto sa = a.Solve();
  const auto sb = b.Solve();
  ASSERT_EQ(sa.ok(), sb.ok());
  if (!sa.ok()) return;
  EXPECT_EQ(sa->Ids(), sb->Ids());
  EXPECT_DOUBLE_EQ(sa->diversity, sb->diversity);
  EXPECT_DOUBLE_EQ(sa->mu, sb->mu);
}

/// Builds a durable primary over `ds` with small WAL segments (many
/// boundaries), a midpoint snapshot, and a WAL-only tail; everything
/// synced so the whole stream is fetchable.
Result<DurableSession> MakePrimary(const std::string& dir,
                                   const std::string& spec,
                                   const Dataset& ds,
                                   size_t keep_snapshots = 2) {
  DurableSessionOptions options;
  options.wal.segment_bytes = 1024;
  options.keep_snapshots = keep_snapshots;
  auto primary = DurableSession::Create(dir, spec, options);
  if (!primary.ok()) return primary.status();
  const size_t mid = ds.size() / 2;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (Status s = primary->Observe(ds.At(i)); !s.ok()) return s;
    if (i + 1 == mid) {
      if (Status s = primary->TakeSnapshot(); !s.ok()) return s;
    }
  }
  if (Status s = primary->Sync(); !s.ok()) return s;
  return primary;
}

// The acceptance-criteria suite: for every registered sink kind, kill the
// follower at every WAL-segment boundary and at a torn mid-segment point
// in every segment; at each kill point the follower must be bit-identical
// (solution + state version) to a per-element reference over the same
// prefix, and after restart it must catch up to the primary bit-exactly.
TEST_F(ReplicaTest, KillRestartBitIdenticalAtEveryBoundaryForEveryKind) {
  const Dataset ds2 = TestData(2);
  const Dataset ds3 = TestData(3, 150, 33);
  struct Case {
    const Dataset* data;
    std::string spec;
  };
  const std::vector<Case> cases = {
      {&ds2, "algo=streaming_dm dim=2 k=4" + BoundsSuffix(ds2)},
      {&ds2, "algo=sfdm1 dim=2 quotas=2,2" + BoundsSuffix(ds2)},
      {&ds3, "algo=sfdm2 dim=2 quotas=2,1,2" + BoundsSuffix(ds3)},
      {&ds2, "algo=adaptive dim=2 k=4"},
      {&ds2, "algo=sharded dim=2 k=4 shards=3" + BoundsSuffix(ds2)},
      {&ds2, "algo=sliding_window dim=2 k=4 window=60 checkpoints=3" +
                 BoundsSuffix(ds2)},
  };
  for (size_t c = 0; c < cases.size(); ++c) {
    SCOPED_TRACE(cases[c].spec);
    const Dataset& ds = *cases[c].data;
    const std::string dir = dir_ + "/case" + std::to_string(c);
    auto primary = MakePrimary(dir, cases[c].spec, ds);
    ASSERT_TRUE(primary.ok()) << primary.status().ToString();

    auto base = std::make_shared<DirReplicationSource>(dir);
    auto manifest = base->GetManifest();
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    ASSERT_EQ(manifest->primary_seq, static_cast<int64_t>(ds.size()));
    ASSERT_GT(manifest->segments.size(), 3u);  // boundaries are plentiful

    // Kill points: every segment boundary (the last record of each sealed
    // segment), a mid-segment point in every segment (applied with a torn
    // tail), and the full stream.
    struct KillPoint {
      int64_t seq;
      bool torn;
    };
    std::vector<KillPoint> kill_points;
    for (size_t s = 1; s < manifest->segments.size(); ++s) {
      kill_points.push_back({manifest->segments[s].first_seq - 1, false});
      kill_points.push_back({manifest->segments[s].first_seq, true});
    }
    kill_points.push_back({manifest->primary_seq, false});
    // Positions below the snapshot are gone from the log by design (the
    // midpoint snapshot pruned them), so no follower can be *at* them —
    // the surviving boundaries all sit at or past the snapshot.
    std::erase_if(kill_points, [&](const KillPoint& k) {
      return k.seq < primary->SnapshotSeq();
    });
    ASSERT_GT(kill_points.size(), 4u);
    std::sort(kill_points.begin(), kill_points.end(),
              [](const KillPoint& a, const KillPoint& b) {
                return a.seq < b.seq;
              });

    // One per-element reference sink, advanced incrementally: the follower
    // at kill point P must match the reference fed exactly P elements.
    auto reference = MakeSinkFromSpec(cases[c].spec);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    int64_t reference_fed = 0;

    for (const KillPoint& kill : kill_points) {
      SCOPED_TRACE("kill at seq " + std::to_string(kill.seq) +
                   (kill.torn ? " (torn tail)" : ""));
      while (reference_fed < kill.seq) {
        (*reference)->Observe(ds.At(static_cast<size_t>(reference_fed)));
        ++reference_fed;
      }

      auto fault = std::make_shared<FaultInjectingSource>(base);
      fault->SetMaxVisibleSeq(kill.seq);
      if (kill.torn) fault->SetTornTailBytes(7);
      auto follower = ReplicaSession::Bootstrap(fault);
      ASSERT_TRUE(follower.ok()) << follower.status().ToString();
      EXPECT_EQ(follower->applied_seq(), kill.seq);
      ExpectSameSolution(**reference, follower->sink());
      EXPECT_EQ(follower->Stats().lag, 0);  // caught up with the capped view

      // Restart: the fault clears and the follower tails the rest.
      fault->SetMaxVisibleSeq(-1);
      fault->SetTornTailBytes(0);
      auto caught_up = follower->Poll();
      ASSERT_TRUE(caught_up.ok()) << caught_up.status().ToString();
      EXPECT_EQ(*caught_up,
                static_cast<int64_t>(ds.size()) - kill.seq);
      ExpectSameSolution(primary->sink(), follower->sink());
      EXPECT_EQ(follower->Stats().lag, 0);
    }

    // Cold restart over the healthy source converges identically too.
    auto cold = ReplicaSession::Bootstrap(base);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    ExpectSameSolution(primary->sink(), cold->sink());
    // The advert was published by Sync at the full position: a follower at
    // that position must sit at exactly the advertised version.
    const auto stats = cold->Stats();
    EXPECT_EQ(stats.advert_seq, static_cast<int64_t>(ds.size()));
    EXPECT_EQ(stats.primary_version, cold->StateVersion());
  }
}

// The staleness contract: while the primary ingests, a follower never
// serves a solution whose state version exceeds the primary's, LAG is
// monotone non-increasing during catch-up, and a stale SOLVE is flagged.
TEST_F(ReplicaTest, StalenessFlaggedAndLagMonotoneDuringCatchUp) {
  const Dataset ds = TestData(2, 600, 35);
  const std::string spec = "algo=sfdm2 dim=2 quotas=2,2" + BoundsSuffix(ds);
  DurableSessionOptions options;
  options.wal.segment_bytes = 1024;
  auto primary = DurableSession::Create(dir_, spec, options);
  ASSERT_TRUE(primary.ok()) << primary.status().ToString();
  const size_t head = 150;
  for (size_t i = 0; i < head; ++i) {
    ASSERT_TRUE(primary->Observe(ds.At(i)).ok());
  }
  ASSERT_TRUE(primary->Sync().ok());

  ReplicaOptions bounded;
  bounded.max_records_per_poll = 64;  // catch-up in observable steps
  auto follower = ReplicaSession::Bootstrap(
      std::make_shared<DirReplicationSource>(dir_), bounded);
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();
  // The bounded bootstrap may still be mid-tail; finish catching up first.
  for (int i = 0; i < 100 && follower->Stats().lag > 0; ++i) {
    ASSERT_TRUE(follower->Poll().ok());
  }
  EXPECT_EQ(follower->applied_seq(), static_cast<int64_t>(head));
  EXPECT_FALSE(follower->Stats().stale);
  EXPECT_EQ(follower->StateVersion(), primary->StateVersion());

  // Primary moves on; the follower only refreshes its manifest view.
  for (size_t i = head; i < ds.size(); ++i) {
    ASSERT_TRUE(primary->Observe(ds.At(i)).ok());
    if ((i + 1) % 150 == 0) {
      ASSERT_TRUE(primary->Sync().ok());
      ASSERT_TRUE(follower->RefreshLag().ok());
      const auto stats = follower->Stats();
      EXPECT_EQ(stats.lag,
                static_cast<int64_t>(i + 1) - static_cast<int64_t>(head));
      EXPECT_TRUE(stats.stale);  // flagged, not silently wrong
      EXPECT_LE(follower->StateVersion(), primary->StateVersion());
      // A stale SOLVE still answers — correctly for its own position.
      EXPECT_TRUE(follower->Solve().ok());
      EXPECT_EQ(follower->applied_seq(), static_cast<int64_t>(head));
    }
  }
  ASSERT_TRUE(primary->Sync().ok());

  // Catch-up: lag must shrink monotonically to zero, with the follower's
  // version never passing the primary's.
  ASSERT_TRUE(follower->RefreshLag().ok());
  int64_t prev_lag = follower->Stats().lag;
  ASSERT_GT(prev_lag, 0);
  for (int i = 0; i < 1000 && follower->Stats().lag > 0; ++i) {
    auto applied = follower->Poll();
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    const auto stats = follower->Stats();
    EXPECT_LE(stats.lag, prev_lag);
    EXPECT_LE(stats.state_version, primary->StateVersion());
    prev_lag = stats.lag;
  }
  const auto stats = follower->Stats();
  EXPECT_EQ(stats.lag, 0);
  EXPECT_FALSE(stats.stale);
  // At the advertised position the versions must agree exactly — the
  // determinism cross-check the advert exists for.
  EXPECT_EQ(stats.advert_seq, follower->applied_seq());
  EXPECT_EQ(stats.primary_version, follower->StateVersion());
  ExpectSameSolution(primary->sink(), follower->sink());
}

// Pruning race, bootstrap flavor: the follower holds a manifest listing a
// snapshot and segments the primary prunes before the fetches land. The
// follower must fall back to the next manifest and converge bit-exactly.
TEST_F(ReplicaTest, SnapshotPrunedMidBootstrapFallsBackToNextManifest) {
  const Dataset ds = TestData(2, 400, 39);
  const std::string spec = "algo=streaming_dm dim=2 k=4" + BoundsSuffix(ds);
  DurableSessionOptions options;
  options.wal.segment_bytes = 1024;
  options.keep_snapshots = 1;  // pruning is aggressive
  auto primary = DurableSession::Create(dir_, spec, options);
  ASSERT_TRUE(primary.ok()) << primary.status().ToString();
  for (size_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(primary->Observe(ds.At(i)).ok());
  }
  ASSERT_TRUE(primary->TakeSnapshot().ok());
  for (size_t i = 120; i < 260; ++i) {
    ASSERT_TRUE(primary->Observe(ds.At(i)).ok());
  }
  ASSERT_TRUE(primary->Sync().ok());

  // The follower grabs its manifest now ...
  auto base = std::make_shared<DirReplicationSource>(dir_);
  auto stale_manifest = base->GetManifest();
  ASSERT_TRUE(stale_manifest.ok());
  ASSERT_EQ(stale_manifest->snapshots.size(), 1u);
  ASSERT_EQ(stale_manifest->snapshots[0].seq, 120);

  // ... and the primary prunes everything it lists before the fetches run:
  // the new snapshot at 400 supersedes the one at 120 (keep_snapshots=1)
  // and truncates the WAL segments below it.
  for (size_t i = 260; i < ds.size(); ++i) {
    ASSERT_TRUE(primary->Observe(ds.At(i)).ok());
  }
  ASSERT_TRUE(primary->TakeSnapshot().ok());
  ASSERT_FALSE(std::filesystem::exists(
      dir_ + "/snap/snap-00000000000000000120.snap"));

  auto fault = std::make_shared<FaultInjectingSource>(base);
  fault->QueueManifest(std::move(stale_manifest.value()));
  auto follower = ReplicaSession::Bootstrap(fault);
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();
  EXPECT_GE(follower->Stats().resyncs, 1u);
  ExpectSameSolution(primary->sink(), follower->sink());
}

// Pruning race, tail flavor: a caught-up follower pauses, the primary
// snapshots and prunes the WAL range the follower would need next; the
// next poll must re-sync from the newer snapshot instead of failing or —
// worse — serving quietly forever at the old position.
TEST_F(ReplicaTest, PrunedTailForcesResyncOnPoll) {
  const Dataset ds = TestData(2, 500, 41);
  const std::string spec = "algo=streaming_dm dim=2 k=4" + BoundsSuffix(ds);
  DurableSessionOptions options;
  options.wal.segment_bytes = 1024;
  options.keep_snapshots = 1;
  auto primary = DurableSession::Create(dir_, spec, options);
  ASSERT_TRUE(primary.ok()) << primary.status().ToString();
  for (size_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(primary->Observe(ds.At(i)).ok());
  }
  ASSERT_TRUE(primary->Sync().ok());

  auto follower = ReplicaSession::Bootstrap(
      std::make_shared<DirReplicationSource>(dir_));
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();
  ASSERT_EQ(follower->applied_seq(), 200);

  // Primary advances far enough that rotation + snapshot pruning delete
  // the segments holding records 201..; the follower's position is gone.
  for (size_t i = 200; i < ds.size(); ++i) {
    ASSERT_TRUE(primary->Observe(ds.At(i)).ok());
  }
  ASSERT_TRUE(primary->TakeSnapshot().ok());

  auto applied = follower->Poll();
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_GE(follower->Stats().resyncs, 1u);
  EXPECT_EQ(follower->Stats().lag, 0);
  ExpectSameSolution(primary->sink(), follower->sink());
}

// The advert determinism cross-check: when the primary's durable log is
// rewritten under the same sequence numbers (the power-loss scenario — an
// unfsynced tail is lost and different points take its seqs), a follower
// that applied the old tail must detect the version mismatch at the
// advertised position and rebuild from scratch, instead of serving
// divergent answers flagged fresh.
TEST_F(ReplicaTest, RewrittenLogForcesDivergenceRebuild) {
  const Dataset ds = TestData(2, 80, 47);
  const std::string spec = "algo=streaming_dm dim=2 k=4" + BoundsSuffix(ds);
  {
    auto primary = DurableSession::Create(dir_, spec);
    ASSERT_TRUE(primary.ok());
    for (size_t i = 0; i < ds.size(); ++i) {
      ASSERT_TRUE(primary->Observe(ds.At(i)).ok());
    }
    ASSERT_TRUE(primary->Sync().ok());
  }
  auto follower = ReplicaSession::Bootstrap(
      std::make_shared<DirReplicationSource>(dir_));
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();
  const uint64_t old_version = follower->StateVersion();

  // Rewrite history: same spec, same number of records, different points
  // (constant duplicates — almost no state mutations, so the version at
  // the same position provably differs).
  std::filesystem::remove_all(dir_);
  auto rewritten = DurableSession::Create(dir_, spec);
  ASSERT_TRUE(rewritten.ok());
  const std::vector<double> constant = {1.0, 1.0};
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE(rewritten
                    ->Observe(StreamPoint{static_cast<int64_t>(i), 0,
                                          constant})
                    .ok());
  }
  ASSERT_TRUE(rewritten->Sync().ok());
  ASSERT_NE(rewritten->StateVersion(), old_version);

  auto polled = follower->Poll();
  ASSERT_TRUE(polled.ok()) << polled.status().ToString();
  EXPECT_GE(follower->Stats().divergence_rebuilds, 1u);
  ExpectSameSolution(rewritten->sink(), follower->sink());
}

// The duplicate-replay storm: every manifest lists every WAL segment
// twice ([A,A,B,B,...]) — the view a flapping transport or a retrying
// shipper produces — while the follower is killed and restarted at
// mid-tail points. A correct follower skips every repeated record, stays
// bit-identical to the primary, never trips the divergence rebuild, and
// mirrors the primary's exactly-once surface (duplicates_rejected from
// the snapshot footer, filter membership re-taught by the tail).
TEST_F(ReplicaTest, DuplicateReplayStormStaysBitIdentical) {
  const Dataset ds = TestData(2, 200, 53);
  const std::string spec =
      "algo=sfdm2 dim=2 quotas=3,3 dedup=on" + BoundsSuffix(ds);

  DurableSessionOptions options;
  options.wal.segment_bytes = 1024;  // many segments, many repeats
  auto primary = DurableSession::Create(dir_, spec, options);
  ASSERT_TRUE(primary.ok()) << primary.status().ToString();
  const int64_t mid = static_cast<int64_t>(ds.size()) / 2;
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE(primary->Observe(ds.At(i)).ok());
    if (i + 1 == 40) {
      // Re-observe a prefix: with dedup=on these are idempotent no-ops
      // (no WAL records), but the rejection count must ride the snapshot
      // footer to the follower.
      for (size_t d = 0; d < 20; ++d) {
        ASSERT_TRUE(primary->Observe(ds.At(d)).ok());
      }
    }
    if (i + 1 == static_cast<size_t>(mid)) {
      ASSERT_TRUE(primary->TakeSnapshot().ok());
    }
  }
  ASSERT_TRUE(primary->Sync().ok());
  ASSERT_EQ(primary->DuplicatesRejected(), 20);
  // Duplicates are not WAL records: the stream position is exactly n.
  ASSERT_EQ(primary->ObservedElements(), static_cast<int64_t>(ds.size()));

  auto base = std::make_shared<DirReplicationSource>(dir_);
  auto fault = std::make_shared<FaultInjectingSource>(base);
  fault->SetSegmentReshipFactor(2);

  // Kill mid-storm: a follower frozen mid-tail sees every segment below
  // the cap twice, applies each record once, and dies (goes out of
  // scope) without ever having rebuilt.
  fault->SetMaxVisibleSeq(mid + 20);
  {
    auto killed = ReplicaSession::Bootstrap(fault);
    ASSERT_TRUE(killed.ok()) << killed.status().ToString();
    EXPECT_EQ(killed->applied_seq(), mid + 20);
    EXPECT_EQ(killed->Stats().divergence_rebuilds, 0u);
  }

  // Restart under the same storm, catch up in two stages (another
  // mid-storm stop between them), then all the way.
  fault->SetMaxVisibleSeq(mid + 40);
  auto follower = ReplicaSession::Bootstrap(fault);
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();
  EXPECT_EQ(follower->applied_seq(), mid + 40);
  fault->SetMaxVisibleSeq(-1);
  auto polled = follower->Poll();
  ASSERT_TRUE(polled.ok()) << polled.status().ToString();
  EXPECT_EQ(*polled, static_cast<int64_t>(ds.size()) - (mid + 40));

  ExpectSameSolution(primary->sink(), follower->sink());
  const auto stats = follower->Stats();
  EXPECT_EQ(stats.lag, 0);
  EXPECT_EQ(stats.divergence_rebuilds, 0u);
  EXPECT_TRUE(stats.dedup);
  EXPECT_EQ(stats.duplicates_rejected, 20);
  EXPECT_GT(stats.filter_bytes, 0u);

  // The mirrored filter answers membership without replaying: the
  // snapshot footer taught it the first half, the (re-shipped) tail the
  // rest.
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_TRUE(follower->KnownId(ds.At(i).id)) << "id " << ds.At(i).id;
  }
  EXPECT_FALSE(follower->KnownId(static_cast<int64_t>(ds.size()) + 7));
}

// The serving façade: a ReplicaManager mirrors every session under the
// primary root, discovers sessions created after it started, serves
// flagged solves, and rejects nothing it should serve.
TEST_F(ReplicaTest, ReplicaManagerMirrorsAPrimaryRoot) {
  const Dataset ds = TestData(2, 120, 43);
  const std::string spec = "algo=sfdm2 dim=2 quotas=2,2" + BoundsSuffix(ds);
  const std::string root = dir_ + "/primary_root";

  SessionManagerOptions primary_options;
  primary_options.root_dir = root;
  auto primaries = SessionManager::Create(primary_options);
  ASSERT_TRUE(primaries.ok());
  for (const std::string name : {"alpha", "beta"}) {
    ASSERT_TRUE((*primaries)->CreateSession(name, spec).ok());
    for (size_t i = 0; i < ds.size(); ++i) {
      ASSERT_TRUE((*primaries)->Observe(name, ds.At(i)).ok());
    }
    ASSERT_TRUE((*primaries)->Snapshot(name).ok());  // durable + advertised
  }

  ReplicaManagerOptions options;
  options.primary_root = root;
  auto followers = ReplicaManager::Create(options);
  ASSERT_TRUE(followers.ok()) << followers.status().ToString();
  const auto names = (*followers)->SessionNames();
  ASSERT_EQ(names.size(), 2u);

  for (const std::string name : {"alpha", "beta"}) {
    auto solve = (*followers)->Solve(name);
    ASSERT_TRUE(solve.ok()) << solve.status().ToString();
    EXPECT_FALSE(solve->stale);
    EXPECT_EQ(solve->applied_seq, static_cast<int64_t>(ds.size()));
    auto primary_solution = (*primaries)->Solve(name);
    ASSERT_TRUE(primary_solution.ok());
    EXPECT_EQ(solve->solution.Ids(), primary_solution->Ids());
    EXPECT_DOUBLE_EQ(solve->solution.diversity,
                     primary_solution->diversity);
  }

  // A session created after the follower started appears on rescan.
  ASSERT_TRUE((*primaries)->CreateSession("gamma", spec).ok());
  ASSERT_TRUE((*primaries)->Observe("gamma", ds.At(0)).ok());
  ASSERT_TRUE((*primaries)->Snapshot("gamma").ok());
  EXPECT_EQ((*followers)->SessionNames().size(), 3u);
  auto gamma = (*followers)->Stats("gamma");
  ASSERT_TRUE(gamma.ok()) << gamma.status().ToString();
  EXPECT_EQ(gamma->applied_seq, 1);
  EXPECT_EQ(gamma->lag, 0);
}

}  // namespace
}  // namespace fdm
