// Conformance suite for the serving protocol's request-dispatch core
// (src/net/dispatch.h): framing invariants under malformed, truncated,
// and pipelined input; byte-identical replies between the stdin and TCP
// transports; and regression tests for three protocol-hardening fixes
// (checked --metrics-dump parse, non-finite coordinate rejection,
// trailing-garbage rejection on no-payload verbs).

#include "net/dispatch.h"

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "net/net_client.h"
#include "net/tcp_server.h"
#include "obs/metrics_dump.h"
#include "replica/replica_manager.h"
#include "service/session_manager.h"

namespace fdm {
namespace {

Dataset TestData(size_t n = 120, uint64_t seed = 71) {
  BlobsOptions opt;
  opt.n = n;
  opt.num_groups = 2;
  opt.seed = seed;
  return MakeBlobs(opt);
}

std::string SpecFor(const Dataset& ds) {
  const DistanceBounds b = ComputeDistanceBoundsExact(ds);
  return "algo=sfdm2 dim=2 quotas=2,2 dmin=" + std::to_string(b.min) +
         " dmax=" + std::to_string(b.max);
}

/// Drives the dispatcher exactly like the stdin transport and returns
/// everything it wrote.
std::string RunStdin(net::RequestDispatcher& dispatcher,
                     const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  net::ServeLines(dispatcher, in, out);
  return out.str();
}

/// Response frames the TCP transport will produce for `script`: one per
/// non-blank request, where a request consumes its announced payload
/// lines. Uses the dispatcher's own classifier so the count can never
/// drift from the server's framing rules.
size_t CountReplies(net::RequestDispatcher& dispatcher,
                    const std::string& script) {
  size_t count = 0;
  std::istringstream in(script);
  std::string line;
  while (std::getline(in, line)) {
    const net::RequestInfo info = dispatcher.Classify(line);
    if (info.verb.empty()) continue;
    ++count;
    for (int64_t i = 0; i < info.payload_lines && std::getline(in, line);
         ++i) {
    }
    if (info.verb == "QUIT") break;
  }
  return count;
}

class ServeProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/fdm_serve_protocol_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::unique_ptr<SessionManager> NewManager(const std::string& sub) {
    SessionManagerOptions options;
    options.root_dir = root_ + "/" + sub;
    auto manager = SessionManager::Create(options);
    EXPECT_TRUE(manager.ok()) << manager.status().ToString();
    return std::move(manager.value());
  }

  std::string root_;
};

// ---------------------------------------------------------------------------
// Byte identity: the same script through the stdin transport and as one
// pipelined TCP frame must yield byte-identical reply streams. Two fresh,
// identically-seeded server states keep the comparison honest (running
// one script twice against one state would mutate it in between).
// ---------------------------------------------------------------------------

class ByteIdentityTest : public ServeProtocolTest {
 protected:
  void Check(const std::string& script) {
    auto stdin_manager = NewManager("stdin");
    auto tcp_manager = NewManager("tcp");
    net::RequestDispatcher stdin_dispatcher(stdin_manager.get(),
                                            root_ + "/stdin");
    net::RequestDispatcher tcp_dispatcher(tcp_manager.get(), root_ + "/tcp");
    const std::string expected = RunStdin(stdin_dispatcher, script);

    auto server = net::TcpServer::Start(&tcp_dispatcher, {});
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    auto client = net::NetClient::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client->Send(script).ok());
    std::string actual;
    const size_t frames = CountReplies(stdin_dispatcher, script);
    for (size_t i = 0; i < frames; ++i) {
      auto reply = client->Recv();
      ASSERT_TRUE(reply.ok()) << "frame " << i << ": "
                              << reply.status().ToString();
      actual += *reply;
    }
    EXPECT_EQ(actual, expected);
  }
};

TEST_F(ByteIdentityTest, HappyPathAndQueries) {
  const Dataset ds = TestData();
  std::string script = "CREATE s " + SpecFor(ds) + "\n";
  for (size_t i = 0; i < 40; ++i) {
    const StreamPoint p = ds.At(i);
    script += "OBSERVE s " + std::to_string(p.id) + " " +
              std::to_string(p.group);
    for (const double c : p.coords) script += " " + std::to_string(c);
    script += "\n";
  }
  script += "OBSERVEB s 2\n90001 0 0.25 0.5\n90002 1 7.5 3.25\n";
  script += "STATS s\n";  // before any SOLVE: no timing samples, so
                          // the reply is deterministic across runs
  script += "SOLVE s\nSOLVE s\nLIST\n\nQUIT\n";
  Check(script);
}

TEST_F(ByteIdentityTest, ErrorPathsStayInFraming) {
  const Dataset ds = TestData();
  std::string script = "CREATE s " + SpecFor(ds) + "\n";
  // Every malformed request below must consume exactly its own input;
  // the LIST at the end only parses as a command if each drain worked.
  script += "OBSERVE s\n";                       // missing point entirely
  script += "OBSERVE s 1 0\n";                   // no coordinates
  script += "OBSERVE s 1 0 2.0 garbage\n";       // garbage mid-line
  script += "OBSERVEB s\n";                      // missing count
  script += "OBSERVEB s -3\n";                   // negative count
  script += "OBSERVEB s 2 junk\n1 0 1 2\n2 0 3 4\n";  // trailing garbage:
                                                      // both lines drained
  script += "OBSERVEB s 2\nbad payload line\n7 0 1 2\n";  // bad first line,
                                                          // second drained
  script += "OBSERVEB s 2\n8 0 1 2\n9 0 3 nope\n";  // bad second line
  script += "SOLVE ghost\n";                     // unknown session
  script += "SNAPSHOT ghost\n";
  script += "FROB s\n";                          // unknown verb
  script += "REPLICA s\nLAG s\n";                // follower verbs on primary
  script += "CREATE\n";                          // missing name
  script += "LIST\nQUIT\n";
  Check(script);
}

TEST_F(ByteIdentityTest, TruncatedBatchEndsLikeEof) {
  // A request may not span frames: a frame ending mid-batch answers
  // exactly like stdin hitting EOF mid-batch.
  const Dataset ds = TestData();
  const std::string script =
      "CREATE s " + SpecFor(ds) + "\nOBSERVEB s 3\n10 0 1 2\n";
  Check(script);
}

TEST_F(ByteIdentityTest, FuzzedGarbageLines) {
  // Deterministic junk: no crashes, and both transports agree byte for
  // byte on every reply. (xorshift instead of a seeded <random> engine so
  // the byte stream is fixed forever.)
  std::string script;
  uint64_t state = 0x9e3779b97f4a7c15ull;
  const std::string alphabet =
      "AZaz09 .,-+eE\t~#OBSERVE SOLVE \xff\x01";
  for (int i = 0; i < 200; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const size_t len = state % 23;
    for (size_t j = 0; j < len; ++j) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      script += alphabet[state % alphabet.size()];
    }
    script += '\n';
  }
  script += "LIST\nQUIT\n";
  Check(script);
}

// ---------------------------------------------------------------------------
// Regression: --metrics-dump period parse (used to call std::stoi and
// crash with an uncaught std::out_of_range on a 20-digit period).
// ---------------------------------------------------------------------------

TEST(MetricsDumpSpecTest, OverflowingPeriodIsAnErrorNotACrash) {
  auto dumper = obs::MakeMetricsDumper("/tmp/m.prom,99999999999999999999");
  ASSERT_FALSE(dumper.ok());
  EXPECT_NE(dumper.status().ToString().find("out of range"),
            std::string::npos);
}

TEST(MetricsDumpSpecTest, ZeroPeriodIsAnError) {
  EXPECT_FALSE(obs::MakeMetricsDumper("/tmp/m.prom,0").ok());
}

TEST(MetricsDumpSpecTest, EmptyPathWithPeriodIsAnError) {
  EXPECT_FALSE(obs::MakeMetricsDumper(",500").ok());
}

TEST(MetricsDumpSpecTest, ValidSpecsParse) {
  const std::string dir = ::testing::TempDir();
  EXPECT_TRUE(obs::MakeMetricsDumper("").ok());  // flag absent: null dumper
  EXPECT_EQ(*obs::MakeMetricsDumper(""), nullptr);
  auto plain = obs::MakeMetricsDumper(dir + "/plain.prom");
  ASSERT_TRUE(plain.ok());
  EXPECT_NE(*plain, nullptr);
  auto with_period = obs::MakeMetricsDumper(dir + "/p.prom,500");
  ASSERT_TRUE(with_period.ok());
  // Non-digit suffix after the comma: the comma belongs to the path.
  auto comma_path = obs::MakeMetricsDumper(dir + "/odd,name.prom");
  ASSERT_TRUE(comma_path.ok());
}

// ---------------------------------------------------------------------------
// Regression: non-finite coordinates must never reach Ingest. This
// toolchain's operator>> already rejects "inf"/"nan" spellings, but the
// dispatcher adds an explicit isfinite() guard so the contract holds on
// standard libraries that do parse them — either way the observable
// behavior is pinned here: an ERR reply and an unchanged session.
// ---------------------------------------------------------------------------

TEST_F(ServeProtocolTest, NonFiniteObserveIsRejected) {
  const Dataset ds = TestData();
  auto manager = NewManager("p");
  net::RequestDispatcher dispatcher(manager.get(), root_ + "/p");
  ASSERT_TRUE(manager->CreateSession("s", SpecFor(ds)).ok());
  for (const std::string bad :
       {"inf", "-inf", "nan", "NaN", "Infinity", "1e999999"}) {
    const std::string out =
        RunStdin(dispatcher, "OBSERVE s 1 0 " + bad + " 2.0\n");
    EXPECT_EQ(out.rfind("ERR OBSERVE requires", 0), 0u) << bad << ": " << out;
  }
  auto stats = manager->Stats("s");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->observed, 0);  // nothing slipped past the guard
}

TEST_F(ServeProtocolTest, NonFiniteBatchLineIsRejectedAndDrained) {
  const Dataset ds = TestData();
  auto manager = NewManager("p");
  net::RequestDispatcher dispatcher(manager.get(), root_ + "/p");
  ASSERT_TRUE(manager->CreateSession("s", SpecFor(ds)).ok());
  const std::string out = RunStdin(
      dispatcher, "OBSERVEB s 3\n1 0 1 2\n2 0 nan 4\n3 0 5 6\nLIST\n");
  // Whole batch rejected, remaining payload drained, LIST still a command.
  EXPECT_EQ(out.rfind("ERR OBSERVEB batch line 1 requires", 0), 0u) << out;
  EXPECT_NE(out.find("OK s\n"), std::string::npos) << out;
  auto stats = manager->Stats("s");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->observed, 0);
}

// ---------------------------------------------------------------------------
// Regression: no-payload verbs reject trailing garbage consistently
// (`METRICS json garbage` used to be silently accepted).
// ---------------------------------------------------------------------------

TEST_F(ServeProtocolTest, TrailingGarbageRejectedOnPrimary) {
  const Dataset ds = TestData();
  auto manager = NewManager("p");
  net::RequestDispatcher dispatcher(manager.get(), root_ + "/p");
  ASSERT_TRUE(manager->CreateSession("s", SpecFor(ds)).ok());
  const struct {
    std::string request;
    std::string expect;
  } cases[] = {
      {"METRICS json garbage", "ERR METRICS takes no argument or 'json'\n"},
      {"METRICS garbage", "ERR METRICS takes no argument or 'json'\n"},
      {"SOLVE s garbage", "ERR SOLVE takes only a session name\n"},
      {"STATS s garbage", "ERR STATS takes only a session name\n"},
      {"SNAPSHOT s garbage", "ERR SNAPSHOT takes only a session name\n"},
      {"RESTORE s garbage", "ERR RESTORE takes only a session name\n"},
      {"LIST garbage", "ERR LIST takes no arguments\n"},
      {"QUIT garbage", "ERR QUIT takes no arguments\n"},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(RunStdin(dispatcher, c.request + "\n"), c.expect) << c.request;
  }
  // `QUIT garbage` must NOT quit: the next request is still served.
  EXPECT_EQ(RunStdin(dispatcher, "QUIT garbage\nLIST\n"),
            "ERR QUIT takes no arguments\nOK s\n");
  // And the well-formed verbs still work.
  EXPECT_EQ(RunStdin(dispatcher, "LIST\n"), "OK s\n");
}

TEST_F(ServeProtocolTest, TrailingGarbageRejectedOnFollower) {
  const Dataset ds = TestData();
  auto manager = NewManager("p");
  ASSERT_TRUE(manager->CreateSession("s", SpecFor(ds)).ok());
  ASSERT_TRUE(manager->Observe("s", ds.At(0)).ok());
  ASSERT_TRUE(manager->Snapshot("s").ok());

  ReplicaManagerOptions options;
  options.primary_root = root_ + "/p";
  auto replicas = ReplicaManager::Create(options);
  ASSERT_TRUE(replicas.ok()) << replicas.status().ToString();
  net::RequestDispatcher dispatcher(replicas->get(), options.primary_root);
  const struct {
    std::string request;
    std::string expect;
  } cases[] = {
      {"SOLVE s garbage", "ERR SOLVE takes only a session name\n"},
      {"STATS s garbage", "ERR STATS takes only a session name\n"},
      {"LAG s garbage", "ERR LAG takes only a session name\n"},
      {"REPLICA s garbage", "ERR REPLICA takes only a session name\n"},
      {"LIST garbage", "ERR LIST takes no arguments\n"},
      {"QUIT garbage", "ERR QUIT takes no arguments\n"},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(RunStdin(dispatcher, c.request + "\n"), c.expect) << c.request;
  }
}

}  // namespace
}  // namespace fdm
