// fdm_serve — line-protocol front end over the durable session manager,
// for demos, soak tests, and driving the service layer from scripts.
//
//   ./fdm_serve [--root=DIR] [--snapshot_every=N] [--max_resident=N]
//               [--background_ms=N] [--threads=N] [--solve_threads=N]
//               [--metrics-dump=PATH[,PERIOD_MS]]
//   ./fdm_serve --follow=DIR [--poll_ms=N] [--metrics-dump=...]
//
// Reads commands from stdin, one per line; writes one `OK ...` or
// `ERR <message>` line per command to stdout:
//
//   CREATE <name> <sink spec...>    create a session (service/sink_spec.h)
//   OBSERVE <name> <id> <group> <c0> <c1> ...   ingest one point; replies
//                                   `OK dup=1` when a dedup=on session
//                                   rejected it as an exact duplicate
//   OBSERVEB <name> <n>             batched ingest: the next n stdin lines
//                                   are points (`<id> <group> <c0> ...`),
//                                   applied through one ObserveBatch call
//                                   (the dedup fast path and the batch
//                                   kernels); replies `OK kept=K dup=D`
//   SOLVE <name>                    current solution (div + ids); answered
//                                   from the per-session solve cache under
//                                   a shared lock when state is unchanged
//   SNAPSHOT <name>                 force a durable snapshot
//   RESTORE <name>                  drop in-memory state, recover from disk
//   STATS <name>                    observed/kept/stored/snapshot position,
//                                   sink state version, solve-cache
//                                   hits/misses, cached & cold solve-latency
//                                   percentiles, snapshot/restore/replay
//                                   counters, active distance-kernel target
//   METRICS [json]                  process-wide metrics registry: the bare
//                                   verb prints the Prometheus text
//                                   exposition followed by `OK`; `METRICS
//                                   json` replies `OK {...}` on one line
//   LIST                            all known sessions
//   QUIT                            snapshot everything and exit
//
// `--metrics-dump=PATH[,PERIOD_MS]` writes the Prometheus rendering to
// PATH atomically (tmp + rename): every PERIOD_MS milliseconds when a
// period is given, and always once more at clean exit. With no period the
// file is written only at exit.
//
// Follower mode (`--follow=<primary root>`) serves the same SOLVE / STATS
// / LIST read path from replicas that bootstrap off the primary's
// snapshots and tail its WAL segments (src/replica/). Write verbs are
// rejected — a follower is read-only by construction — and two verbs are
// follower-only:
//
//   LAG <name>          refresh the manifest; report replication lag
//   REPLICA <name>      catch up now; report records applied + stats
//
// Follower SOLVE replies carry `version=`, `applied=`, `lag=`, `stale=` so
// a stale answer is flagged, never silently wrong. A background poll
// thread (`--poll_ms`, default 200) keeps followers caught up and
// re-syncs them when the primary prunes segments.
//
// Example session:
//
//   CREATE demo algo=sfdm2 dim=2 quotas=2,2 dmin=0.1 dmax=300
//   OBSERVE demo 0 0 1.5 2.5
//   ...
//   SOLVE demo

#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "replica/replica_manager.h"
#include "service/session_manager.h"
#include "util/argparse.h"
#include "util/stringutil.h"

namespace fdm {
namespace {

/// Writes the Prometheus rendering of the global registry to a stable
/// path, atomically (write tmp, rename over) so an external scraper never
/// reads a half-written file. With a period, a background thread refreshes
/// the file; in every mode the destructor writes one final dump, so even
/// `--metrics-dump=PATH` alone leaves a complete end-of-run snapshot.
class MetricsDumper {
 public:
  MetricsDumper(std::string path, int period_ms) : path_(std::move(path)) {
    if (period_ms > 0) {
      thread_ = std::thread([this, period_ms] {
        std::unique_lock<std::mutex> lock(mu_);
        while (!cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                             [this] { return stopping_; })) {
          DumpOnce();
        }
      });
    }
  }

  ~MetricsDumper() {
    if (thread_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
      }
      cv_.notify_all();
      thread_.join();
    }
    DumpOnce();
  }

  MetricsDumper(const MetricsDumper&) = delete;
  MetricsDumper& operator=(const MetricsDumper&) = delete;

 private:
  void DumpOnce() const {
    const std::string text =
        obs::MetricsRegistry::Global().RenderPrometheus();
    const std::string tmp = path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return;
      out << text;
      if (!out.flush()) return;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path_, ec);
  }

  const std::string path_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

/// Parses `--metrics-dump=PATH[,PERIOD_MS]`; null when the flag is absent.
/// The period is split on the last comma only when everything after it is
/// digits, so paths containing commas still work un-escaped.
std::unique_ptr<MetricsDumper> MakeMetricsDumper(const ArgParser& args) {
  const std::string spec = args.GetString("metrics-dump", "");
  if (spec.empty()) return nullptr;
  std::string path = spec;
  int period_ms = 0;
  const size_t comma = spec.rfind(',');
  if (comma != std::string::npos && comma + 1 < spec.size()) {
    bool digits = true;
    for (size_t i = comma + 1; i < spec.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(spec[i]))) {
        digits = false;
        break;
      }
    }
    if (digits) {
      path = spec.substr(0, comma);
      period_ms = std::stoi(spec.substr(comma + 1));
    }
  }
  return std::make_unique<MetricsDumper>(path, period_ms);
}

/// Handles the METRICS verb shared by primary and follower mode. Returns
/// false when `command` is not METRICS.
bool HandleMetricsVerb(const std::string& command, std::istream& in) {
  if (command != "METRICS") return false;
  std::string mode;
  in >> mode;
  if (mode == "json") {
    std::cout << "OK " << obs::MetricsRegistry::Global().RenderJson()
              << "\n";
  } else if (mode.empty()) {
    std::cout << obs::MetricsRegistry::Global().RenderPrometheus();
    std::cout << "OK\n";
  } else {
    std::cout << "ERR METRICS takes no argument or 'json'\n";
  }
  return true;
}

void Reply(const Status& status) {
  if (status.ok()) {
    std::cout << "OK\n";
  } else {
    std::cout << "ERR " << status.ToString() << "\n";
  }
}

void PrintIds(const Solution& solution) {
  std::cout << "div=" << solution.diversity << " ids=";
  const auto ids = solution.Ids();
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) std::cout << ',';
    std::cout << ids[i];
  }
}

int FollowerMain(const ArgParser& args) {
  ReplicaManagerOptions options;
  options.primary_root = args.GetString("follow", "");
  options.poll_ms = static_cast<int>(args.GetInt("poll_ms", 200));
  auto manager = ReplicaManager::Create(options);
  if (!manager.ok()) {
    std::fprintf(stderr, "fdm_serve: %s\n",
                 manager.status().ToString().c_str());
    return 1;
  }
  ReplicaManager& replicas = **manager;
  const std::unique_ptr<MetricsDumper> dumper = MakeMetricsDumper(args);
  std::cout << "READY follow=" << options.primary_root
            << " poll_ms=" << options.poll_ms << "\n";

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) continue;  // blank line

    if (command == "QUIT") {
      std::cout << "OK\n";
      break;
    }
    if (HandleMetricsVerb(command, in)) continue;
    if (command == "LIST") {
      std::cout << "OK";
      for (const std::string& name : replicas.SessionNames()) {
        std::cout << ' ' << name;
      }
      std::cout << "\n";
      continue;
    }
    if (command == "CREATE" || command == "OBSERVE" ||
        command == "OBSERVEB" || command == "SNAPSHOT" ||
        command == "RESTORE") {
      if (command == "OBSERVEB") {
        // Keep the framing invariant even when rejecting: the client
        // announced n point lines and will send them — swallow them so
        // they are not misread as commands.
        std::string name;
        int64_t n = 0;
        if ((in >> name >> n) && n > 0) {
          std::string discard;
          for (int64_t i = 0; i < n && std::getline(std::cin, discard); ++i) {
          }
        }
      }
      std::cout << "ERR read-only follower (this process serves --follow="
                << options.primary_root << ")\n";
      continue;
    }

    std::string name;
    if (!(in >> name)) {
      std::cout << "ERR " << command << " requires a session name\n";
      continue;
    }
    if (command == "SOLVE") {
      auto solve = replicas.Solve(name);
      if (!solve.ok()) {
        std::cout << "ERR " << solve.status().ToString() << "\n";
        continue;
      }
      std::cout << "OK ";
      PrintIds(solve->solution);
      std::cout << " version=" << solve->state_version
                << " applied=" << solve->applied_seq
                << " lag=" << solve->lag
                << " stale=" << (solve->stale ? 1 : 0) << "\n";
    } else if (command == "STATS" || command == "LAG" ||
               command == "REPLICA") {
      int64_t just_applied = -1;
      if (command == "REPLICA") {
        auto applied = replicas.Poll(name);
        if (!applied.ok()) {
          std::cout << "ERR " << applied.status().ToString() << "\n";
          continue;
        }
        just_applied = *applied;
      }
      auto stats = command == "LAG" ? replicas.Lag(name)
                                    : replicas.Stats(name);
      if (!stats.ok()) {
        std::cout << "ERR " << stats.status().ToString() << "\n";
        continue;
      }
      std::cout << "OK";
      if (just_applied >= 0) std::cout << " applied_records=" << just_applied;
      std::cout << " applied=" << stats->applied_seq
                << " primary=" << stats->primary_seq
                << " lag=" << stats->lag
                << " stale=" << (stats->stale ? 1 : 0)
                << " version=" << stats->state_version
                << " resyncs=" << stats->resyncs
                << " segments_fetched=" << stats->segments_fetched
                << " snapshots_loaded=" << stats->snapshots_loaded
                << " dedup=" << (stats->dedup ? "on" : "off")
                << " duplicates_rejected=" << stats->duplicates_rejected
                << " filter_bytes=" << stats->filter_bytes
                << " solve_hits=" << stats->solve.hits
                << " solve_misses=" << stats->solve.misses << "\n";
    } else {
      std::cout << "ERR unknown command '" << command << "'\n";
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.Has("follow")) return FollowerMain(args);
  SessionManagerOptions options;
  options.root_dir = args.GetString("root", "fdm_sessions");
  options.session.snapshot_every =
      static_cast<size_t>(args.GetInt("snapshot_every", 0));
  options.max_resident =
      static_cast<size_t>(args.GetInt("max_resident", 0));
  options.background_snapshot_ms =
      static_cast<int>(args.GetInt("background_ms", 0));
  options.threads = static_cast<int>(args.GetInt("threads", 1));
  // Server-wide cold-SOLVE parallelism (0 = keep each spec's setting).
  // Bit-identity preserving: answers match sequential byte for byte.
  options.session.solve_threads =
      static_cast<int>(args.GetInt("solve_threads", 0));

  auto manager = SessionManager::Create(options);
  if (!manager.ok()) {
    std::fprintf(stderr, "fdm_serve: %s\n",
                 manager.status().ToString().c_str());
    return 1;
  }
  SessionManager& sessions = **manager;
  const std::unique_ptr<MetricsDumper> dumper = MakeMetricsDumper(args);
  std::cout << "READY root=" << options.root_dir << "\n";

  // Request framing invariant: every command consumes exactly its own
  // input — the whole line it arrived on (each iteration parses one
  // getline'd line, so trailing garbage after an ERR can never bleed into
  // the next command), and for OBSERVEB exactly its n announced point
  // lines, which are drained even when the batch is malformed. A client
  // that pipelines requests therefore stays in sync across any ERR.
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) continue;  // blank line

    if (command == "QUIT") {
      Reply(sessions.SnapshotAll());
      break;
    }
    if (HandleMetricsVerb(command, in)) continue;
    if (command == "LIST") {
      std::cout << "OK";
      for (const std::string& name : sessions.SessionNames()) {
        std::cout << ' ' << name;
      }
      std::cout << "\n";
      continue;
    }

    std::string name;
    if (!(in >> name)) {
      std::cout << "ERR " << command << " requires a session name\n";
      continue;
    }
    if (command == "CREATE") {
      std::string spec;
      std::getline(in, spec);
      Reply(sessions.CreateSession(name, std::string(Trim(spec))));
    } else if (command == "OBSERVE") {
      int64_t id = -1;
      int32_t group = 0;
      if (!(in >> id >> group)) {
        std::cout << "ERR OBSERVE requires <id> <group> <coords...>\n";
        continue;
      }
      std::vector<double> coords;
      double c = 0.0;
      while (in >> c) coords.push_back(c);
      // `>>` stops silently at a non-numeric token; distinguish "end of
      // line" from "garbage mid-line" — a malformed point must be
      // rejected, never half-parsed (the session also re-validates the
      // dimension before anything reaches the WAL).
      if (coords.empty() || !in.eof()) {
        std::cout << "ERR OBSERVE requires numeric coordinates\n";
        continue;
      }
      const StreamPoint point{id, group, coords};
      auto outcome = sessions.Ingest(name, {&point, 1}, /*as_batch=*/false);
      if (!outcome.ok()) {
        std::cout << "ERR " << outcome.status().ToString() << "\n";
      } else if (outcome->duplicates > 0) {
        std::cout << "OK dup=1\n";
      } else {
        std::cout << "OK\n";
      }
    } else if (command == "OBSERVEB") {
      int64_t n = -1;
      if (!(in >> n) || n < 0) {
        std::cout << "ERR OBSERVEB requires <name> <n>\n";
        continue;
      }
      in.clear();  // the int read may have latched eofbit; that's fine
      std::string trailing;
      if (in >> trailing) {
        // The count DID parse, so the client will send n point lines —
        // drain them before ERRing or they'd be misread as commands.
        std::string drained;
        for (int64_t i = 0; i < n && std::getline(std::cin, drained); ++i) {
        }
        std::cout << "ERR OBSERVEB takes nothing after <n>\n";
        continue;
      }
      // Parse the n announced point lines. A malformed line fails the
      // whole batch (nothing is applied — a batch is one request), but
      // the remaining lines are still consumed so the stream stays in
      // command framing.
      std::vector<int64_t> ids;
      std::vector<int32_t> groups;
      std::vector<size_t> offsets;  // per-point start into `coords`
      std::vector<double> coords;
      std::string error;
      std::string point_line;
      for (int64_t i = 0; i < n; ++i) {
        if (!std::getline(std::cin, point_line)) {
          error = "stream ended mid-batch";
          break;
        }
        if (!error.empty()) continue;  // draining after a bad line
        std::istringstream pin(point_line);
        int64_t id = -1;
        int32_t group = 0;
        if (!(pin >> id >> group)) {
          error = "batch line " + std::to_string(i) +
                  " requires <id> <group> <coords...>";
          continue;
        }
        const size_t start = coords.size();
        double c = 0.0;
        while (pin >> c) coords.push_back(c);
        if (coords.size() == start || !pin.eof()) {
          coords.resize(start);
          error = "batch line " + std::to_string(i) +
                  " requires numeric coordinates";
          continue;
        }
        ids.push_back(id);
        groups.push_back(group);
        offsets.push_back(start);
      }
      if (!error.empty()) {
        std::cout << "ERR OBSERVEB " << error << "\n";
        continue;
      }
      // Spans are built only now: `coords` no longer reallocates.
      offsets.push_back(coords.size());
      std::vector<StreamPoint> points;
      points.reserve(ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        points.push_back(StreamPoint{
            ids[i], groups[i],
            std::span<const double>(coords.data() + offsets[i],
                                    offsets[i + 1] - offsets[i])});
      }
      auto outcome = sessions.Ingest(name, points, /*as_batch=*/true);
      if (!outcome.ok()) {
        std::cout << "ERR " << outcome.status().ToString() << "\n";
      } else {
        std::cout << "OK kept=" << outcome->accepted
                  << " dup=" << outcome->duplicates << "\n";
      }
    } else if (command == "SOLVE") {
      auto solution = sessions.Solve(name);
      if (!solution.ok()) {
        std::cout << "ERR " << solution.status().ToString() << "\n";
        continue;
      }
      std::cout << "OK ";
      PrintIds(*solution);
      std::cout << "\n";
    } else if (command == "REPLICA" || command == "LAG") {
      std::cout << "ERR " << command
                << " is a follower verb (start with --follow=DIR)\n";
    } else if (command == "SNAPSHOT") {
      Reply(sessions.Snapshot(name));
    } else if (command == "RESTORE") {
      // Crash drill: forget the in-memory sink, then recover it from the
      // newest snapshot + WAL tail (the next touch triggers the reload).
      Status dropped = sessions.DropResident(name);
      if (!dropped.ok()) {
        Reply(dropped);
        continue;
      }
      auto stats = sessions.Stats(name);
      if (!stats.ok()) {
        std::cout << "ERR " << stats.status().ToString() << "\n";
      } else {
        std::cout << "OK observed=" << stats->observed << "\n";
      }
    } else if (command == "STATS") {
      auto stats = sessions.Stats(name);
      if (!stats.ok()) {
        std::cout << "ERR " << stats.status().ToString() << "\n";
      } else {
        std::cout << "OK observed=" << stats->observed
                  << " kept=" << stats->kept
                  << " stored=" << stats->stored
                  << " snapshot_seq=" << stats->snapshot_seq
                  << " version=" << stats->state_version
                  << " solve_hits=" << stats->solve_hits
                  << " solve_misses=" << stats->solve_misses
                  << " solve_p50_cached_ms=" << stats->solve_p50_cached_ms
                  << " solve_p99_cached_ms=" << stats->solve_p99_cached_ms
                  << " solve_p50_cold_ms=" << stats->solve_p50_cold_ms
                  << " solve_p99_cold_ms=" << stats->solve_p99_cold_ms
                  << " snapshots=" << stats->snapshots_taken
                  << " restores=" << stats->restores
                  << " replayed=" << stats->replayed_records
                  << " dedup=" << (stats->dedup ? "on" : "off")
                  << " duplicates_rejected=" << stats->duplicates_rejected
                  << " filter_bytes=" << stats->filter_bytes
                  << " filter_grows=" << stats->filter_grows
                  << " kernel=" << stats->kernel
                  << " spec=\"" << stats->spec << "\"\n";
      }
    } else {
      std::cout << "ERR unknown command '" << command << "'\n";
    }
  }
  return 0;
}

}  // namespace
}  // namespace fdm

int main(int argc, char** argv) { return fdm::Main(argc, argv); }
