// fdm_serve — line-protocol front end over the durable session manager,
// for demos, soak tests, and driving the service layer from scripts.
//
//   ./fdm_serve [--root=DIR] [--snapshot_every=N] [--max_resident=N]
//               [--background_ms=N] [--threads=N]
//
// Reads commands from stdin, one per line; writes one `OK ...` or
// `ERR <message>` line per command to stdout:
//
//   CREATE <name> <sink spec...>    create a session (service/sink_spec.h)
//   OBSERVE <name> <id> <group> <c0> <c1> ...   ingest one point
//   SOLVE <name>                    current solution (div + ids); answered
//                                   from the per-session solve cache under
//                                   a shared lock when state is unchanged
//   SNAPSHOT <name>                 force a durable snapshot
//   RESTORE <name>                  drop in-memory state, recover from disk
//   STATS <name>                    observed/stored/snapshot position, sink
//                                   state version, solve-cache hits/misses,
//                                   last-solve latency, active distance-
//                                   kernel dispatch target
//   LIST                            all known sessions
//   QUIT                            snapshot everything and exit
//
// Example session:
//
//   CREATE demo algo=sfdm2 dim=2 quotas=2,2 dmin=0.1 dmax=300
//   OBSERVE demo 0 0 1.5 2.5
//   ...
//   SOLVE demo

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "service/session_manager.h"
#include "util/argparse.h"
#include "util/stringutil.h"

namespace fdm {
namespace {

void Reply(const Status& status) {
  if (status.ok()) {
    std::cout << "OK\n";
  } else {
    std::cout << "ERR " << status.ToString() << "\n";
  }
}

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  SessionManagerOptions options;
  options.root_dir = args.GetString("root", "fdm_sessions");
  options.session.snapshot_every =
      static_cast<size_t>(args.GetInt("snapshot_every", 0));
  options.max_resident =
      static_cast<size_t>(args.GetInt("max_resident", 0));
  options.background_snapshot_ms =
      static_cast<int>(args.GetInt("background_ms", 0));
  options.threads = static_cast<int>(args.GetInt("threads", 1));

  auto manager = SessionManager::Create(options);
  if (!manager.ok()) {
    std::fprintf(stderr, "fdm_serve: %s\n",
                 manager.status().ToString().c_str());
    return 1;
  }
  SessionManager& sessions = **manager;
  std::cout << "READY root=" << options.root_dir << "\n";

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) continue;  // blank line

    if (command == "QUIT") {
      Reply(sessions.SnapshotAll());
      break;
    }
    if (command == "LIST") {
      std::cout << "OK";
      for (const std::string& name : sessions.SessionNames()) {
        std::cout << ' ' << name;
      }
      std::cout << "\n";
      continue;
    }

    std::string name;
    if (!(in >> name)) {
      std::cout << "ERR " << command << " requires a session name\n";
      continue;
    }
    if (command == "CREATE") {
      std::string spec;
      std::getline(in, spec);
      Reply(sessions.CreateSession(name, std::string(Trim(spec))));
    } else if (command == "OBSERVE") {
      int64_t id = -1;
      int32_t group = 0;
      if (!(in >> id >> group)) {
        std::cout << "ERR OBSERVE requires <id> <group> <coords...>\n";
        continue;
      }
      std::vector<double> coords;
      double c = 0.0;
      while (in >> c) coords.push_back(c);
      // `>>` stops silently at a non-numeric token; distinguish "end of
      // line" from "garbage mid-line" — a malformed point must be
      // rejected, never half-parsed (the session also re-validates the
      // dimension before anything reaches the WAL).
      if (coords.empty() || !in.eof()) {
        std::cout << "ERR OBSERVE requires numeric coordinates\n";
        continue;
      }
      Reply(sessions.Observe(name, StreamPoint{id, group, coords}));
    } else if (command == "SOLVE") {
      auto solution = sessions.Solve(name);
      if (!solution.ok()) {
        std::cout << "ERR " << solution.status().ToString() << "\n";
        continue;
      }
      std::cout << "OK div=" << solution->diversity << " ids=";
      const auto ids = solution->Ids();
      for (size_t i = 0; i < ids.size(); ++i) {
        if (i > 0) std::cout << ',';
        std::cout << ids[i];
      }
      std::cout << "\n";
    } else if (command == "SNAPSHOT") {
      Reply(sessions.Snapshot(name));
    } else if (command == "RESTORE") {
      // Crash drill: forget the in-memory sink, then recover it from the
      // newest snapshot + WAL tail (the next touch triggers the reload).
      Status dropped = sessions.DropResident(name);
      if (!dropped.ok()) {
        Reply(dropped);
        continue;
      }
      auto stats = sessions.Stats(name);
      if (!stats.ok()) {
        std::cout << "ERR " << stats.status().ToString() << "\n";
      } else {
        std::cout << "OK observed=" << stats->observed << "\n";
      }
    } else if (command == "STATS") {
      auto stats = sessions.Stats(name);
      if (!stats.ok()) {
        std::cout << "ERR " << stats.status().ToString() << "\n";
      } else {
        std::cout << "OK observed=" << stats->observed
                  << " stored=" << stats->stored
                  << " snapshot_seq=" << stats->snapshot_seq
                  << " version=" << stats->state_version
                  << " solve_hits=" << stats->solve_hits
                  << " solve_misses=" << stats->solve_misses
                  << " last_solve_ms=" << stats->last_solve_ms
                  << " kernel=" << stats->kernel
                  << " spec=\"" << stats->spec << "\"\n";
      }
    } else {
      std::cout << "ERR unknown command '" << command << "'\n";
    }
  }
  return 0;
}

}  // namespace
}  // namespace fdm

int main(int argc, char** argv) { return fdm::Main(argc, argv); }
