// fdm_serve — serving front end over the durable session manager, for
// demos, soak tests, scripts, and (with --listen) networked clients.
//
//   ./fdm_serve [--root=DIR] [--snapshot_every=N] [--max_resident=N]
//               [--background_ms=N] [--threads=N] [--solve_threads=N]
//               [--metrics-dump=PATH[,PERIOD_MS]]
//               [--listen=PORT [--listen_host=ADDR] [--net_threads=N]
//                [--solve_workers=N] [--rate=R [--burst=B]] [--cold_cap=N]]
//   ./fdm_serve --follow=DIR|tcp://HOST:PORT [--poll_ms=N] [...]
//
// Reads commands from stdin, one per line; writes one `OK ...` or
// `ERR <message>` line per command to stdout:
//
//   CREATE <name> <sink spec...>    create a session (service/sink_spec.h)
//   OBSERVE <name> <id> <group> <c0> <c1> ...   ingest one point; replies
//                                   `OK dup=1` when a dedup=on session
//                                   rejected it as an exact duplicate
//   OBSERVEB <name> <n>             batched ingest: the next n input lines
//                                   are points (`<id> <group> <c0> ...`),
//                                   applied through one ObserveBatch call
//                                   (the dedup fast path and the batch
//                                   kernels); replies `OK kept=K dup=D`
//   SOLVE <name>                    current solution (div + ids); answered
//                                   from the per-session solve cache under
//                                   a shared lock when state is unchanged
//   SNAPSHOT <name>                 force a durable snapshot
//   RESTORE <name>                  drop in-memory state, recover from disk
//   STATS <name>                    observed/kept/stored/snapshot position,
//                                   sink state version, solve-cache
//                                   hits/misses, cached & cold solve-latency
//                                   percentiles, snapshot/restore/replay
//                                   counters, active distance-kernel target
//   METRICS [json]                  process-wide metrics registry: the bare
//                                   verb prints the Prometheus text
//                                   exposition followed by `OK`; `METRICS
//                                   json` replies `OK {...}` on one line
//   LIST                            all known sessions
//   QUIT                            snapshot everything and exit
//
// The protocol core lives in src/net/dispatch.h; this file only wires
// transports around it. Every no-payload verb rejects trailing garbage,
// and OBSERVE/OBSERVEB reject non-finite (inf/nan) coordinates before
// anything reaches the WAL.
//
// `--listen=PORT` additionally serves the same protocol over TCP
// (length-delimited frames whose payload is the line-protocol text; see
// src/net/tcp_server.h), with admission control: `--rate`/`--burst` cap
// each session's requests/second across all connections, `--cold_cap`
// bounds concurrently admitted cache-missing SOLVEs. Over-limit requests
// are answered immediately with `ERR shed ...` instead of queueing. The
// primary also serves the replication verbs RMANIFEST / RFETCHSNAP /
// RFETCHWAL, so a follower started with `--follow=tcp://HOST:PORT` tails
// it over the network (src/replica/socket_source.h). stdin stays live in
// every mode — QUIT on stdin shuts the whole process down cleanly.
//
// `--metrics-dump=PATH[,PERIOD_MS]` writes the Prometheus rendering to
// PATH atomically (tmp + rename): every PERIOD_MS milliseconds when a
// period is given, and always once more at clean exit. With no period the
// file is written only at exit.
//
// Follower mode (`--follow=<primary root or tcp://...>`) serves the same
// SOLVE / STATS / LIST read path from replicas that bootstrap off the
// primary's snapshots and tail its WAL segments (src/replica/). Write
// verbs are rejected — a follower is read-only by construction — and two
// verbs are follower-only:
//
//   LAG <name>          refresh the manifest; report replication lag
//   REPLICA <name>      catch up now; report records applied + stats
//
// Follower SOLVE replies carry `version=`, `applied=`, `lag=`, `stale=` so
// a stale answer is flagged, never silently wrong. A background poll
// thread (`--poll_ms`, default 200) keeps followers caught up and
// re-syncs them when the primary prunes segments.
//
// Example session:
//
//   CREATE demo algo=sfdm2 dim=2 quotas=2,2 dmin=0.1 dmax=300
//   OBSERVE demo 0 0 1.5 2.5
//   ...
//   SOLVE demo

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "net/dispatch.h"
#include "net/tcp_server.h"
#include "obs/metrics_dump.h"
#include "replica/replica_manager.h"
#include "service/session_manager.h"
#include "util/argparse.h"

namespace fdm {
namespace {

/// Builds the dumper from `--metrics-dump`, or reports the usage error.
/// `*ok=false` means the process should exit 1.
std::unique_ptr<obs::MetricsDumper> DumperOrUsageError(const ArgParser& args,
                                                       bool* ok) {
  auto dumper = obs::MakeMetricsDumper(args.GetString("metrics-dump", ""));
  if (!dumper.ok()) {
    std::fprintf(stderr,
                 "fdm_serve: %s\nusage: --metrics-dump=PATH[,PERIOD_MS]\n",
                 dumper.status().ToString().c_str());
    *ok = false;
    return nullptr;
  }
  *ok = true;
  return std::move(dumper.value());
}

/// Starts the TCP front end when `--listen` was passed. `*ok=false` means
/// startup failed and the process should exit 1.
std::unique_ptr<net::TcpServer> ListenOrUsageError(
    const ArgParser& args, net::RequestDispatcher& dispatcher, bool* ok) {
  *ok = true;
  if (!args.Has("listen")) return nullptr;
  net::TcpServerOptions options;
  options.port = static_cast<int>(args.GetInt("listen", 0));
  options.host = args.GetString("listen_host", "127.0.0.1");
  options.event_threads = static_cast<int>(args.GetInt("net_threads", 2));
  options.solve_workers = static_cast<int>(args.GetInt("solve_workers", 2));
  options.admission.session_rate = args.GetDouble("rate", 0.0);
  options.admission.session_burst = args.GetDouble("burst", 0.0);
  options.admission.cold_solve_cap =
      static_cast<size_t>(args.GetInt("cold_cap", 0));
  auto server = net::TcpServer::Start(&dispatcher, std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "fdm_serve: %s\n",
                 server.status().ToString().c_str());
    *ok = false;
    return nullptr;
  }
  return std::move(server.value());
}

int FollowerMain(const ArgParser& args) {
  ReplicaManagerOptions options;
  options.primary_root = args.GetString("follow", "");
  options.poll_ms = static_cast<int>(args.GetInt("poll_ms", 200));
  auto manager = ReplicaManager::Create(options);
  if (!manager.ok()) {
    std::fprintf(stderr, "fdm_serve: %s\n",
                 manager.status().ToString().c_str());
    return 1;
  }
  bool ok = false;
  const auto dumper = DumperOrUsageError(args, &ok);
  if (!ok) return 1;
  net::RequestDispatcher dispatcher(manager->get(), options.primary_root);
  const auto server = ListenOrUsageError(args, dispatcher, &ok);
  if (!ok) return 1;
  std::cout << "READY follow=" << options.primary_root
            << " poll_ms=" << options.poll_ms;
  if (server != nullptr) std::cout << " listen=" << server->port();
  std::cout << "\n";
  return net::ServeLines(dispatcher, std::cin, std::cout);
}

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.Has("follow")) return FollowerMain(args);
  SessionManagerOptions options;
  options.root_dir = args.GetString("root", "fdm_sessions");
  options.session.snapshot_every =
      static_cast<size_t>(args.GetInt("snapshot_every", 0));
  options.max_resident =
      static_cast<size_t>(args.GetInt("max_resident", 0));
  options.background_snapshot_ms =
      static_cast<int>(args.GetInt("background_ms", 0));
  options.threads = static_cast<int>(args.GetInt("threads", 1));
  // Server-wide cold-SOLVE parallelism (0 = keep each spec's setting).
  // Bit-identity preserving: answers match sequential byte for byte.
  options.session.solve_threads =
      static_cast<int>(args.GetInt("solve_threads", 0));

  auto manager = SessionManager::Create(options);
  if (!manager.ok()) {
    std::fprintf(stderr, "fdm_serve: %s\n",
                 manager.status().ToString().c_str());
    return 1;
  }
  bool ok = false;
  const auto dumper = DumperOrUsageError(args, &ok);
  if (!ok) return 1;
  net::RequestDispatcher dispatcher(manager->get(), options.root_dir);
  const auto server = ListenOrUsageError(args, dispatcher, &ok);
  if (!ok) return 1;
  std::cout << "READY root=" << options.root_dir;
  if (server != nullptr) std::cout << " listen=" << server->port();
  std::cout << "\n";
  return net::ServeLines(dispatcher, std::cin, std::cout);
}

}  // namespace
}  // namespace fdm

int main(int argc, char** argv) { return fdm::Main(argc, argv); }
