#ifndef FDM_REPLICA_REPLICA_SESSION_H_
#define FDM_REPLICA_REPLICA_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/solution.h"
#include "core/solve_cache.h"
#include "core/stream_sink.h"
#include "replica/replication_source.h"
#include "service/dedup_filter.h"
#include "util/status.h"

namespace fdm {

/// Catch-up knobs of one follower.
struct ReplicaOptions {
  /// Records per `ObserveBatch` call while applying a WAL tail (the same
  /// batched replay path crash recovery uses, so rung-parallel sinks catch
  /// up in parallel).
  size_t apply_batch = 512;
  /// Records one `Poll` applies at most before returning (0 = unlimited).
  /// A bounded poll keeps the exclusive-lock hold time of a serving
  /// follower short: queries interleave with catch-up instead of stalling
  /// behind one giant apply.
  size_t max_records_per_poll = 0;
  /// Manifest refreshes one `Bootstrap`/`Poll` tolerates while the primary
  /// prunes/rotates underneath it before reporting an error.
  int max_sync_attempts = 5;
};

/// A read-only follower of one durable session: bootstraps from the
/// primary's newest loadable snapshot (which embeds the stream position
/// and, transitively, the state version), then tails WAL segments shipped
/// through a `ReplicationSource` and applies them via `ObserveBatch` — the
/// exact replay path crash recovery uses, so a caught-up follower is
/// bit-identical to the primary at the matched state version (the
/// `StateVersion` contract is chunking-invariant, so batched tailing
/// reproduces the primary's per-element version exactly).
///
/// Staleness is detected for free: the manifest advertises the primary's
/// durable position (and, at durability points, its state version), so
/// `Stats().lag` = advertised position − applied position, and a follower
/// by construction never serves a solution whose version *exceeds* the
/// primary's — it has only ever applied a prefix of the primary's stream.
///
/// Pruning races are ordinary control flow: when the tail below the
/// follower's position disappears (the primary snapshotted and truncated),
/// `Poll` re-syncs from a newer snapshot; when a listed file is gone by
/// fetch time, the manifest is refreshed and the attempt repeated (bounded
/// by `max_sync_attempts`).
///
/// Not thread-safe; `ReplicaManager` wraps each follower in a
/// reader–writer lock (queries shared, catch-up exclusive).
class ReplicaSession {
 public:
  /// Connects to `source`, restores the newest loadable snapshot (falling
  /// back to older ones, then to a fresh sink), and applies the available
  /// WAL tail (`max_records_per_poll` bounds that first apply too).
  static Result<ReplicaSession> Bootstrap(
      std::shared_ptr<ReplicationSource> source, ReplicaOptions options = {});

  /// Fetches a fresh manifest and applies every record after the current
  /// position, re-syncing from a newer snapshot when the tail was pruned.
  /// Returns the number of records applied (0 = already caught up).
  Result<int64_t> Poll();

  /// Fetches a fresh manifest to update the advertised primary position —
  /// no records are applied, so a cheap staleness probe for serving paths
  /// that must flag (not heal) lag.
  Status RefreshLag();

  /// Current solution at the follower's applied position, served through a
  /// `SolveCache` keyed by the sink's state version — repeated queries
  /// between polls are cache hits. The solution reflects `applied_seq()`,
  /// which may trail the primary; check `Stats().stale`.
  Result<Solution> Solve() const {
    const StreamSink& sink = *sink_;
    return solve_cache_->GetOrCompute(sink.StateVersion(),
                                      [&sink] { return sink.Solve(); });
  }

  uint64_t StateVersion() const { return sink_->StateVersion(); }

  /// True iff `Solve()` right now would be a cache hit (advisory — a
  /// concurrent tail apply can move the version). The serving front end's
  /// admission control uses this to classify follower SOLVEs.
  bool SolveCached() const {
    return solve_cache_->IsCachedAt(sink_->StateVersion());
  }

  /// Exact membership of `id` at the follower's applied position — the
  /// cheap pre-check the divergence story wants: a client (or operator)
  /// can ask "did this point make it in?" without replaying anything.
  /// Only meaningful when the primary's spec says `dedup=on` (the filter
  /// is restored from snapshot footers and maintained by tail application
  /// in lockstep with the sink); always false otherwise.
  bool KnownId(int64_t id) const {
    return dedup_ != nullptr && dedup_->Contains(id);
  }

  struct ReplicaStats {
    /// Records applied to the follower's sink (its stream position).
    int64_t applied_seq = 0;
    /// Primary durable position as of the last manifest fetch.
    int64_t primary_seq = 0;
    /// Primary state version advertised at `advert_seq` (0 = none yet).
    uint64_t primary_version = 0;
    int64_t advert_seq = 0;
    /// `primary_seq - applied_seq` (never negative; the follower only
    /// applies records the manifest said exist).
    int64_t lag = 0;
    /// True iff the follower knows records it has not applied exist — a
    /// SOLVE answered now is correct for `applied_seq` but behind the
    /// primary.
    bool stale = false;
    /// Follower sink state version.
    uint64_t state_version = 0;
    /// Snapshot re-syncs forced by pruning (bootstrap loads included).
    uint64_t resyncs = 0;
    /// Ground-up rebuilds forced by the advert determinism check: the
    /// follower sat exactly at an advertised position with a *different*
    /// state version — its applied history disagrees with the primary's
    /// durable log (e.g. the primary lost an unfsynced tail to a power
    /// failure and re-wrote those sequence numbers with different points).
    /// Rather than serve divergent answers with `stale=false`, the
    /// follower discards its state and re-syncs from scratch.
    uint64_t divergence_rebuilds = 0;
    /// Manifest refreshes forced by files vanishing between manifest and
    /// fetch (checksum mismatches and torn sealed segments included).
    uint64_t stale_manifest_retries = 0;
    uint64_t segments_fetched = 0;
    uint64_t snapshots_loaded = 0;
    /// Torn tails observed on the active segment (healed by later polls).
    uint64_t torn_tails_seen = 0;
    /// Exactly-once ingest surface, mirrored from the primary's footers
    /// and maintained through tail application (zeros when dedup=off).
    bool dedup = false;
    int64_t duplicates_rejected = 0;
    uint64_t filter_bytes = 0;
    uint64_t filter_grows = 0;
    SolveCache::Stats solve;
  };
  ReplicaStats Stats() const;

  const std::string& spec() const { return spec_; }
  int64_t applied_seq() const { return applied_seq_; }
  const StreamSink& sink() const { return *sink_; }

 private:
  /// Outcome of one manifest-application pass (`ApplyFrom`).
  enum class ApplyOutcome {
    kCaughtUp,        // applied everything the manifest lists
    kBudgetExhausted, // max_records_per_poll hit; more remains
    kTornActiveTail,  // stopped at the active segment's torn tail
    kStaleManifest,   // a listed file was gone/short by fetch time
    kNeedSnapshot,    // the tail after applied_seq_ was pruned away
  };

  explicit ReplicaSession(std::shared_ptr<ReplicationSource> source,
                          ReplicaOptions options)
      : source_(std::move(source)),
        options_(options),
        solve_cache_(std::make_shared<SolveCache>()) {}

  /// Applies records after `applied_seq_` from the segments `manifest`
  /// lists; `*applied` accumulates the count.
  Result<ApplyOutcome> ApplyFrom(const ReplicaManifest& manifest,
                                 int64_t* applied);

  /// Restores the newest loadable snapshot strictly after `min_seq` and
  /// swaps it in (spec-checked). Ok(false) = no usable snapshot listed.
  Result<bool> BootstrapFromSnapshot(const ReplicaManifest& manifest,
                                     int64_t min_seq);

  /// The manifest-refresh / apply / re-sync loop shared by `Bootstrap` and
  /// `Poll`; applies until caught up, budget-bound, or out of attempts.
  Result<int64_t> SyncOnce();

  /// True iff the follower sits exactly at the advertised position but at
  /// a different state version — proof its applied history diverged from
  /// the primary's durable log (see `ReplicaStats::divergence_rebuilds`).
  bool DivergedFromAdvert(const ReplicaManifest& manifest) const {
    return manifest.advert_seq != 0 && manifest.primary_version != 0 &&
           applied_seq_ == manifest.advert_seq &&
           sink_->StateVersion() != manifest.primary_version;
  }

  void NoteManifest(const ReplicaManifest& manifest);

  std::shared_ptr<ReplicationSource> source_;
  ReplicaOptions options_;
  std::string spec_;
  std::unique_ptr<StreamSink> sink_;
  /// Mirror of the primary's duplicate guard (null when dedup=off):
  /// restored whole from snapshot dedup footers, then re-taught by every
  /// applied tail record — so it tracks the sink's position exactly.
  std::unique_ptr<DedupFilter> dedup_;
  bool dedup_enabled_ = false;  // from the primary's spec
  int64_t duplicates_rejected_ = 0;  // primary's count, footer-mirrored
  std::shared_ptr<SolveCache> solve_cache_;  // never null
  int64_t applied_seq_ = 0;

  // Last-manifest view + counters behind Stats().
  int64_t last_primary_seq_ = 0;
  uint64_t last_primary_version_ = 0;
  int64_t last_advert_seq_ = 0;
  uint64_t resyncs_ = 0;
  uint64_t divergence_rebuilds_ = 0;
  uint64_t stale_manifest_retries_ = 0;
  uint64_t segments_fetched_ = 0;
  uint64_t snapshots_loaded_ = 0;
  uint64_t torn_tails_seen_ = 0;
};

}  // namespace fdm

#endif  // FDM_REPLICA_REPLICA_SESSION_H_
