#include "replica/replica_manager.h"

#include <chrono>
#include <filesystem>
#include <sstream>
#include <utility>

#include "net/net_client.h"
#include "replica/socket_source.h"
#include "service/durable_session.h"

namespace fdm {

namespace {

/// Session names are path components, mirroring `SessionManager`'s rule.
bool ValidSessionName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  if (name[0] == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

ReplicaManager::ReplicaManager(ReplicaManagerOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<ReplicaManager>> ReplicaManager::Create(
    ReplicaManagerOptions options) {
  if (options.primary_root.empty()) {
    return Status::InvalidArgument("primary_root must be set");
  }
  std::string host;
  int port = 0;
  const bool over_tcp = net::ParseTcpAddress(options.primary_root, &host,
                                             &port);
  if (!over_tcp) {
    std::error_code ec;
    if (!std::filesystem::is_directory(options.primary_root, ec)) {
      return Status::IoError("primary root is not a directory: " +
                             options.primary_root);
    }
  }
  std::unique_ptr<ReplicaManager> manager(
      new ReplicaManager(std::move(options)));
  manager->primary_host_ = std::move(host);
  manager->primary_port_ = port;
  manager->DiscoverSessions();
  if (manager->options_.poll_ms > 0) {
    manager->background_ = std::thread([m = manager.get()] {
      m->BackgroundLoop();
    });
  }
  return manager;
}

ReplicaManager::~ReplicaManager() {
  if (background_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(background_mu_);
      stopping_ = true;
    }
    background_cv_.notify_all();
    background_.join();
  }
}

void ReplicaManager::DiscoverSessions() {
  if (!primary_host_.empty()) {
    // Ask the primary's front end. Discovery failing (primary down, mid-
    // restart) is not fatal: known sessions keep serving at their applied
    // positions and the next sweep retries.
    auto client = net::NetClient::Connect(primary_host_, primary_port_);
    if (!client.ok()) return;
    auto reply = client->Call("LIST");
    if (!reply.ok()) return;
    std::istringstream in(*reply);
    std::string token;
    if (!(in >> token) || token != "OK") return;
    while (in >> token) {
      if (!ValidSessionName(token)) continue;
      std::lock_guard<std::mutex> lock(mu_);
      entries_.emplace(token, std::make_shared<Entry>());  // no-op if known
    }
    return;
  }
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.primary_root, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (!ValidSessionName(name)) continue;
    if (!DurableSession::Exists(entry.path().string())) continue;
    std::lock_guard<std::mutex> lock(mu_);
    entries_.emplace(name, std::make_shared<Entry>());  // no-op if known
  }
}

Result<std::shared_ptr<ReplicaManager::Entry>> ReplicaManager::Follower(
    const std::string& name) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it != entries_.end()) entry = it->second;
  }
  if (entry == nullptr) {
    // Maybe created on the primary after our last scan.
    DiscoverSessions();
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::InvalidArgument("no session named '" + name +
                                     "' under " + options_.primary_root);
    }
    entry = it->second;
  }
  {
    std::unique_lock<std::shared_mutex> entry_lock(entry->mu);
    if (entry->replica == nullptr) {
      std::shared_ptr<ReplicationSource> source;
      if (!primary_host_.empty()) {
        source = std::make_shared<SocketReplicationSource>(
            primary_host_, primary_port_, name);
      } else {
        source = std::make_shared<DirReplicationSource>(
            options_.primary_root + "/" + name);
      }
      auto replica =
          ReplicaSession::Bootstrap(std::move(source), options_.replica);
      if (!replica.ok()) return replica.status();
      entry->replica =
          std::make_unique<ReplicaSession>(std::move(replica.value()));
    }
  }
  return entry;
}

Result<ReplicaManager::ReplicaSolve> ReplicaManager::Solve(
    const std::string& name) {
  auto entry = Follower(name);
  if (!entry.ok()) return entry.status();
  std::shared_lock<std::shared_mutex> lock((*entry)->mu);
  const ReplicaSession& replica = *(*entry)->replica;
  auto solution = replica.Solve();
  if (!solution.ok()) return solution.status();
  ReplicaSolve result(std::move(solution.value()));
  const auto stats = replica.Stats();
  result.state_version = stats.state_version;
  result.applied_seq = stats.applied_seq;
  result.lag = stats.lag;
  result.stale = stats.stale;
  return result;
}

Result<ReplicaSession::ReplicaStats> ReplicaManager::Stats(
    const std::string& name) {
  auto entry = Follower(name);
  if (!entry.ok()) return entry.status();
  std::shared_lock<std::shared_mutex> lock((*entry)->mu);
  return (*entry)->replica->Stats();
}

Result<ReplicaSession::ReplicaStats> ReplicaManager::Lag(
    const std::string& name) {
  auto entry = Follower(name);
  if (!entry.ok()) return entry.status();
  // RefreshLag only rewrites the manifest view, but that is a write as far
  // as concurrent Stats readers are concerned — take the lock exclusive.
  std::unique_lock<std::shared_mutex> lock((*entry)->mu);
  if (Status s = (*entry)->replica->RefreshLag(); !s.ok()) return s;
  return (*entry)->replica->Stats();
}

Result<int64_t> ReplicaManager::Poll(const std::string& name) {
  auto entry = Follower(name);
  if (!entry.ok()) return entry.status();
  std::unique_lock<std::shared_mutex> lock((*entry)->mu);
  return (*entry)->replica->Poll();
}

Status ReplicaManager::PollAll() {
  DiscoverSessions();
  std::vector<std::string> names = SessionNames();
  Status first_error;
  for (const std::string& name : names) {
    auto applied = Poll(name);
    if (!applied.ok() && first_error.ok()) first_error = applied.status();
  }
  return first_error;
}

bool ReplicaManager::SolveLikelyCached(const std::string& name) const {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) return false;
    entry = it->second;
  }
  std::shared_lock<std::shared_mutex> lock(entry->mu);
  if (entry->replica == nullptr) return false;  // bootstrap is cold
  return entry->replica->SolveCached();
}

std::vector<std::string> ReplicaManager::SessionNames() {
  DiscoverSessions();
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mu_);
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

void ReplicaManager::BackgroundLoop() {
  const auto period = std::chrono::milliseconds(options_.poll_ms);
  std::unique_lock<std::mutex> lock(background_mu_);
  while (!stopping_) {
    background_cv_.wait_for(lock, period, [this] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    (void)PollAll();  // per-session errors retried next tick
    lock.lock();
  }
}

}  // namespace fdm
