#ifndef FDM_REPLICA_REPLICATION_SOURCE_H_
#define FDM_REPLICA_REPLICATION_SOURCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "service/wal.h"
#include "util/status.h"

namespace fdm {

/// One snapshot a follower can bootstrap from: its stream position, and
/// the whole-file size + FNV-1a 64 checksum a fetcher verifies before
/// trusting a shipped copy (the framed snapshot carries its own internal
/// checksum too; the outer one catches a truncated ship without parsing).
struct ReplicaSnapshotInfo {
  int64_t seq = 0;
  uint64_t bytes = 0;
  uint64_t checksum = 0;  // 0 = not computed
};

/// What a primary exposes to followers at one instant: the sink spec, the
/// advertised durable stream position + state version, and the snapshot /
/// WAL-segment ranges currently fetchable. A manifest is a *hint*, not a
/// lease — the primary keeps ingesting and pruning, so any listed file can
/// be gone by fetch time; followers handle that by refetching the manifest
/// (and, when the tail below their position was pruned, by re-syncing from
/// a newer snapshot).
struct ReplicaManifest {
  std::string spec;
  /// Highest durable (fetchable) record sequence number.
  int64_t primary_seq = 0;
  /// Sink state version advertised at `advert_seq` (0 = no advert yet).
  /// Determinism contract: a follower that has applied exactly
  /// `advert_seq` records has exactly this state version.
  uint64_t primary_version = 0;
  int64_t advert_seq = 0;
  std::vector<ReplicaSnapshotInfo> snapshots;  // ascending seq
  std::vector<WalSegmentInfo> segments;        // ascending first_seq;
                                               // checksum 0 = active/growing
};

/// Follower-side transport interface: how a replica reads a primary's
/// replication state. The first implementation is a shared filesystem
/// directory (`DirReplicationSource`); a socket transport plugs in behind
/// the same three calls. All methods may be called repeatedly and must
/// tolerate the primary mutating between calls — fetch failures are
/// ordinary control flow for a follower, never fatal on their own.
class ReplicationSource {
 public:
  virtual ~ReplicationSource() = default;

  virtual Result<ReplicaManifest> GetManifest() = 0;

  /// Drops any transport-side caches. Followers call this when evidence
  /// says cached views are lying — a checksum/fetch mismatch against a
  /// fresh manifest, or a divergence rebuild (the primary's log was
  /// rewritten in place, which can reuse file names *and* sizes, the two
  /// things caches key on). A cacheless transport ignores it.
  virtual void InvalidateCaches() {}

  /// Framed snapshot bytes for the snapshot at `seq`.
  virtual Result<std::string> FetchSnapshot(int64_t seq) = 0;

  /// Raw bytes of the WAL segment whose first record is `first_seq`. The
  /// active segment may gain records between manifest and fetch, and its
  /// tail may be torn mid-record — callers stop cleanly at the intact
  /// prefix (`WalSegmentCursor`).
  virtual Result<std::string> FetchWalSegment(int64_t first_seq) = 0;
};

/// Filesystem-directory transport: reads a primary `DurableSession`
/// directory in place (same host or a shared/replicated mount). Sealed
/// WAL segments are immutable, so their whole-file checksums are cached by
/// (first_seq, size) and computed once; the active segment and the
/// snapshots are re-examined per manifest.
class DirReplicationSource final : public ReplicationSource {
 public:
  /// `session_dir` is the primary session directory (the one holding
  /// SPEC/wal/snap), not the session-manager root.
  explicit DirReplicationSource(std::string session_dir);

  Result<ReplicaManifest> GetManifest() override;
  void InvalidateCaches() override;
  Result<std::string> FetchSnapshot(int64_t seq) override;
  Result<std::string> FetchWalSegment(int64_t first_seq) override;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  /// first_seq -> (bytes, checksum) for sealed segments already hashed.
  std::map<int64_t, std::pair<uint64_t, uint64_t>> sealed_checksums_;
  /// seq -> (bytes, checksum) for snapshots already hashed (immutable once
  /// renamed into place, so a matching size means a valid cache hit).
  std::map<int64_t, std::pair<uint64_t, uint64_t>> snapshot_checksums_;
  /// Last primary-position scan of the active segment: (first_seq, size)
  /// -> last intact record seq, plus the scanned bytes themselves.
  /// Segments are append-only, so an unchanged size means an unchanged
  /// tail and the scan can be skipped — and `FetchWalSegment` of the
  /// still-newest segment is served from these bytes, so one poll reads
  /// the active segment once (the manifest scan), not twice. The cached
  /// bytes can only trail the file, which is exactly the torn/short state
  /// every consumer already handles; a rotation changes the newest
  /// first_seq and bypasses the cache.
  int64_t scanned_first_seq_ = 0;
  uint64_t scanned_bytes_ = 0;
  int64_t scanned_last_seq_ = 0;
  std::string scanned_segment_bytes_;
};

}  // namespace fdm

#endif  // FDM_REPLICA_REPLICATION_SOURCE_H_
