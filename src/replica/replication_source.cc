#include "replica/replication_source.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "service/durable_session.h"
#include "service/session_layout.h"
#include "util/binary_io.h"

namespace fdm {

DirReplicationSource::DirReplicationSource(std::string session_dir)
    : dir_(std::move(session_dir)) {}

Result<ReplicaManifest> DirReplicationSource::GetManifest() {
  ReplicaManifest manifest;
  {
    std::ifstream in(SessionSpecPath(dir_));
    if (!in || !std::getline(in, manifest.spec)) {
      return Status::IoError("no session at " + dir_ + " (missing SPEC)");
    }
  }

  // Advert (optional): the primary's (seq, version) at its last durability
  // point. The durable position can be ahead of a stale advert, so the
  // authoritative primary_seq comes from scanning the newest segment below.
  if (auto advert = ReadReplicationAdvert(dir_); advert.ok()) {
    manifest.advert_seq = advert->seq;
    manifest.primary_version = advert->state_version;
    manifest.primary_seq = advert->seq;
  }

  auto snapshots = ListSessionSnapshots(SessionSnapDir(dir_));
  manifest.snapshots.reserve(snapshots.size());
  for (const auto& [seq, path] : snapshots) {
    ReplicaSnapshotInfo info;
    info.seq = seq;
    // Snapshots are immutable once renamed into place: hash each once and
    // serve later manifests from the cache (size re-checked, so a
    // replaced/truncated file re-hashes).
    std::error_code size_ec;
    const uint64_t size = std::filesystem::file_size(path, size_ec);
    if (size_ec) continue;  // pruned between listing and stat
    const auto cached = snapshot_checksums_.find(seq);
    if (cached != snapshot_checksums_.end() && cached->second.first == size) {
      info.bytes = size;
      info.checksum = cached->second.second;
    } else {
      auto bytes = ReadFileToString(path);
      if (!bytes.ok()) continue;  // pruned between stat and read
      info.bytes = bytes->size();
      info.checksum = Fnv1a64(bytes->data(), bytes->size());
      snapshot_checksums_[seq] = {info.bytes, info.checksum};
    }
    manifest.snapshots.push_back(info);
  }
  // Pruned snapshots never come back under the same seq; drop their cache
  // entries so the map tracks the (small) retained set.
  std::erase_if(snapshot_checksums_, [&](const auto& entry) {
    return snapshots.empty() || entry.first < snapshots.front().first;
  });

  auto segments = WriteAheadLog::ListSegments(SessionWalDir(dir_));
  if (!segments.ok()) return segments.status();
  manifest.segments = std::move(segments.value());

  // Sealed segments (all but the newest) are immutable once rotated away
  // from, so hash each once; the newest keeps checksum 0 (it grows).
  for (size_t i = 0; i + 1 < manifest.segments.size(); ++i) {
    WalSegmentInfo& seg = manifest.segments[i];
    const auto cached = sealed_checksums_.find(seg.first_seq);
    if (cached != sealed_checksums_.end() &&
        cached->second.first == seg.bytes) {
      seg.checksum = cached->second.second;
      continue;
    }
    auto bytes = ReadFileToString(seg.path);
    if (!bytes.ok()) continue;  // pruned mid-manifest; fetch will fail too
    seg.bytes = bytes->size();
    seg.checksum = Fnv1a64(bytes->data(), bytes->size());
    sealed_checksums_[seg.first_seq] = {seg.bytes, seg.checksum};
  }

  // The durable stream position: the last intact record of the newest
  // segment (records past a torn tail do not count — they are exactly what
  // a follower cannot fetch). Segments are append-only, so when the newest
  // segment's identity and size are unchanged since the last manifest, the
  // previous scan result still holds and the read is skipped — the idle
  // polling loop then costs directory stats, not a segment decode.
  if (!manifest.segments.empty()) {
    const WalSegmentInfo& newest = manifest.segments.back();
    if (newest.first_seq == scanned_first_seq_ &&
        newest.bytes == scanned_bytes_) {
      if (scanned_last_seq_ > manifest.primary_seq) {
        manifest.primary_seq = scanned_last_seq_;
      }
    } else {
      auto bytes = ReadFileToString(newest.path);
      if (bytes.ok()) {
        WalSegmentCursor cursor(*bytes);
        WalRecordView record;
        int64_t last = 0;
        while (cursor.Next(record)) last = record.seq;
        if (last == 0) last = newest.first_seq - 1;
        scanned_first_seq_ = newest.first_seq;
        scanned_bytes_ = bytes->size();
        scanned_last_seq_ = last;
        scanned_segment_bytes_ = std::move(bytes.value());
        if (last > manifest.primary_seq) manifest.primary_seq = last;
      }
    }
  }
  return manifest;
}

void DirReplicationSource::InvalidateCaches() {
  sealed_checksums_.clear();
  snapshot_checksums_.clear();
  scanned_first_seq_ = 0;
  scanned_bytes_ = 0;
  scanned_last_seq_ = 0;
  scanned_segment_bytes_.clear();
}

Result<std::string> DirReplicationSource::FetchSnapshot(int64_t seq) {
  return ReadFileToString(SessionSnapDir(dir_) + "/" +
                          SessionSnapshotFileName(seq));
}

Result<std::string> DirReplicationSource::FetchWalSegment(int64_t first_seq) {
  // The active segment was just read (and scanned) by GetManifest — serve
  // those bytes instead of re-reading the file. They describe exactly the
  // state the manifest in hand advertises; anything appended since simply
  // waits for the next poll. Sealed segments (rotation moved the newest
  // first_seq past this one) always re-read, so their manifest checksums
  // verify against the final file.
  if (first_seq == scanned_first_seq_ && !scanned_segment_bytes_.empty()) {
    return scanned_segment_bytes_;
  }
  return ReadFileToString(SessionWalDir(dir_) + "/" +
                          WalSegmentFileName(first_seq));
}

}  // namespace fdm
