#ifndef FDM_REPLICA_SOCKET_SOURCE_H_
#define FDM_REPLICA_SOCKET_SOURCE_H_

#include <cstdint>
#include <string>

#include "net/net_client.h"
#include "replica/replication_source.h"

namespace fdm {

/// Socket transport for followers: implements the `ReplicationSource`
/// interface over a primary's TCP front end (net/tcp_server.h). Each call
/// maps to exactly one request/response frame:
///
///   GetManifest()        -> `RMANIFEST <session>`
///   FetchSnapshot(seq)   -> `RFETCHSNAP <session> <seq>`
///   FetchWalSegment(s)   -> `RFETCHWAL <session> <s>`
///
/// so a follower tails a primary it cannot share a filesystem with. The
/// primary serves these from its own durable directory, meaning a socket
/// follower sees exactly the durable prefix a shared-filesystem follower
/// would — the replica determinism story is transport-independent.
///
/// The connection is lazy and self-healing: established on first use,
/// re-established once per call after a transport error (a restarting
/// primary looks like one failed poll, which followers already treat as
/// ordinary control flow). `ERR` replies are returned as error Statuses
/// without dropping the connection. Not thread-safe — `ReplicaManager`
/// serializes access per session, matching `DirReplicationSource`.
class SocketReplicationSource final : public ReplicationSource {
 public:
  SocketReplicationSource(std::string host, int port, std::string session);

  Result<ReplicaManifest> GetManifest() override;
  Result<std::string> FetchSnapshot(int64_t seq) override;
  Result<std::string> FetchWalSegment(int64_t first_seq) override;
  /// Drops the connection; the next call reconnects. (Server-side
  /// manifest caches are invalidated by the primary itself — this only
  /// discards transport state.)
  void InvalidateCaches() override;

 private:
  /// One request/response round trip, reconnecting once on a transport
  /// error. Returns the raw reply frame payload.
  Result<std::string> Call(const std::string& request);
  /// Parses a `OK bytes=<n>\n<raw>\n` fetch reply.
  static Result<std::string> ParseBytesReply(const std::string& reply);

  const std::string host_;
  const int port_;
  const std::string session_;
  net::NetClient client_;
};

}  // namespace fdm

#endif  // FDM_REPLICA_SOCKET_SOURCE_H_
