#ifndef FDM_REPLICA_REPLICA_MANAGER_H_
#define FDM_REPLICA_REPLICA_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/solution.h"
#include "replica/replica_session.h"
#include "util/status.h"

namespace fdm {

struct ReplicaManagerOptions {
  /// Where the primary is. Two forms:
  ///  - a filesystem path: the primary's session-manager root (each
  ///    session in `<primary_root>/<name>/`), reachable through the
  ///    filesystem;
  ///  - `tcp://host:port`: a primary's TCP front end (net/tcp_server.h);
  ///    sessions are discovered with the LIST verb and tailed through
  ///    `SocketReplicationSource`.
  /// The follower mirrors every session it finds either way.
  std::string primary_root;
  /// Background catch-up period; 0 = poll only on demand (`Poll`,
  /// `PollAll`, the `REPLICA` serve verb).
  int poll_ms = 0;
  /// Per-follower catch-up knobs. `max_records_per_poll` matters here: it
  /// bounds how long one background poll holds a session's exclusive lock,
  /// so queries interleave with catch-up.
  ReplicaOptions replica;
};

/// The follower-side counterpart of `SessionManager`: many named read-only
/// `ReplicaSession`s over one primary root, each behind its own
/// reader–writer lock (queries shared, catch-up exclusive) so SOLVE/STATS
/// keep flowing while tails apply. Sessions are discovered lazily — at
/// creation and on every `PollAll`/`SessionNames` — so sessions created on
/// the primary after the follower starts appear without a restart.
///
/// There is no write surface at all: the follower applies only what the
/// primary's log says, which is what makes its answers bit-identical to
/// the primary's at matched state versions.
class ReplicaManager {
 public:
  static Result<std::unique_ptr<ReplicaManager>> Create(
      ReplicaManagerOptions options);

  ~ReplicaManager();

  ReplicaManager(const ReplicaManager&) = delete;
  ReplicaManager& operator=(const ReplicaManager&) = delete;

  /// A follower's answer: the solution at its applied position plus the
  /// staleness facts a caller needs to never mistake it for the primary's
  /// latest — the solution is always *correct for `applied_seq`*; `stale`
  /// says whether the primary is known to be ahead.
  struct ReplicaSolve {
    Solution solution;
    uint64_t state_version = 0;
    int64_t applied_seq = 0;
    int64_t lag = 0;
    bool stale = false;
    explicit ReplicaSolve(Solution s) : solution(std::move(s)) {}
  };
  Result<ReplicaSolve> Solve(const std::string& name);

  /// Last-known replication stats (no I/O beyond a possible first
  /// bootstrap of the named session).
  Result<ReplicaSession::ReplicaStats> Stats(const std::string& name);

  /// Refreshes the manifest (no records applied) and returns stats — the
  /// cheap staleness probe behind the `LAG` verb.
  Result<ReplicaSession::ReplicaStats> Lag(const std::string& name);

  /// Catches the named session up now; returns records applied.
  Result<int64_t> Poll(const std::string& name);

  /// Rescans the primary root and polls every known session once. Errors
  /// are latched per-session and returned combined (first error wins) but
  /// do not stop the sweep.
  Status PollAll();

  /// All sessions currently visible under the primary root.
  std::vector<std::string> SessionNames();

  /// True iff `Solve(name)` right now would be a follower-cache hit.
  /// Advisory and cheap: a session not yet bootstrapped reports false
  /// without bootstrapping it — that first touch is exactly the expensive
  /// path admission control wants to classify as cold.
  bool SolveLikelyCached(const std::string& name) const;

 private:
  struct Entry {
    /// Queries (Solve/Stats) shared; bootstrap/poll exclusive.
    std::shared_mutex mu;
    std::unique_ptr<ReplicaSession> replica;  // null until first touch
  };

  explicit ReplicaManager(ReplicaManagerOptions options);

  /// Rescans the primary root for session directories, registering new
  /// names (existing entries are untouched).
  void DiscoverSessions();

  /// Entry for `name`, bootstrapping the follower on first touch.
  Result<std::shared_ptr<Entry>> Follower(const std::string& name);

  void BackgroundLoop();

  ReplicaManagerOptions options_;
  /// Set iff `primary_root` is `tcp://host:port`.
  std::string primary_host_;
  int primary_port_ = 0;
  mutable std::mutex mu_;  // guards entries_
  std::map<std::string, std::shared_ptr<Entry>> entries_;

  std::thread background_;
  std::mutex background_mu_;
  std::condition_variable background_cv_;
  bool stopping_ = false;
};

}  // namespace fdm

#endif  // FDM_REPLICA_REPLICA_MANAGER_H_
