#include "replica/socket_source.h"

#include <charconv>
#include <functional>
#include <utility>
#include <vector>

namespace fdm {
namespace {

bool ParseInt(std::string_view text, int64_t* value) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *value);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseUint(std::string_view text, uint64_t* value) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *value);
  return ec == std::errc() && ptr == text.data() + text.size();
}

/// Splits one `<a>:<b>:<c>` list element.
bool ParseTriple(std::string_view item, int64_t* a, uint64_t* b,
                 uint64_t* c) {
  const size_t first = item.find(':');
  if (first == std::string_view::npos) return false;
  const size_t second = item.find(':', first + 1);
  if (second == std::string_view::npos) return false;
  return ParseInt(item.substr(0, first), a) &&
         ParseUint(item.substr(first + 1, second - first - 1), b) &&
         ParseUint(item.substr(second + 1), c);
}

/// Iterates `x,y,z` (or the empty-list marker `-`).
bool ForEachListItem(std::string_view list,
                     const std::function<bool(std::string_view)>& fn) {
  if (list == "-") return true;
  while (!list.empty()) {
    const size_t comma = list.find(',');
    const std::string_view item =
        comma == std::string_view::npos ? list : list.substr(0, comma);
    if (!fn(item)) return false;
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  return true;
}

}  // namespace

SocketReplicationSource::SocketReplicationSource(std::string host, int port,
                                                 std::string session)
    : host_(std::move(host)), port_(port), session_(std::move(session)) {}

Result<std::string> SocketReplicationSource::Call(
    const std::string& request) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!client_.connected()) {
      auto connected = net::NetClient::Connect(host_, port_);
      if (!connected.ok()) return connected.status();
      client_ = std::move(connected.value());
    }
    auto reply = client_.Call(request);
    if (reply.ok()) return reply;
    // Transport error: the client closed itself; retry once on a fresh
    // connection (covers a primary restart between polls).
    if (attempt == 1) return reply.status();
  }
  return Status::IoError("unreachable");
}

void SocketReplicationSource::InvalidateCaches() { client_.Close(); }

Result<ReplicaManifest> SocketReplicationSource::GetManifest() {
  auto reply = Call("RMANIFEST " + session_);
  if (!reply.ok()) return reply.status();
  std::string_view line = *reply;
  if (!line.empty() && line.back() == '\n') line.remove_suffix(1);
  if (line.substr(0, 4) == "ERR ") {
    return Status::IoError("primary: " + std::string(line.substr(4)));
  }
  if (line.substr(0, 3) != "OK ") {
    return Status::IoError("malformed manifest reply");
  }
  line.remove_prefix(3);
  // `spec=` is last and runs to end of line (specs contain spaces).
  const size_t spec_at = line.find("spec=");
  if (spec_at == std::string_view::npos) {
    return Status::IoError("manifest reply missing spec");
  }
  ReplicaManifest manifest;
  manifest.spec = std::string(line.substr(spec_at + 5));
  std::string_view head = line.substr(0, spec_at);
  bool ok = true;
  while (ok && !head.empty()) {
    const size_t space = head.find(' ');
    const std::string_view token =
        space == std::string_view::npos ? head : head.substr(0, space);
    head.remove_prefix(space == std::string_view::npos ? head.size()
                                                       : space + 1);
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      ok = false;
      break;
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "primary_seq") {
      ok = ParseInt(value, &manifest.primary_seq);
    } else if (key == "version") {
      ok = ParseUint(value, &manifest.primary_version);
    } else if (key == "advert_seq") {
      ok = ParseInt(value, &manifest.advert_seq);
    } else if (key == "snapshots") {
      ok = ForEachListItem(value, [&manifest](std::string_view item) {
        ReplicaSnapshotInfo info;
        if (!ParseTriple(item, &info.seq, &info.bytes, &info.checksum)) {
          return false;
        }
        manifest.snapshots.push_back(info);
        return true;
      });
    } else if (key == "segments") {
      ok = ForEachListItem(value, [&manifest](std::string_view item) {
        WalSegmentInfo info;
        if (!ParseTriple(item, &info.first_seq, &info.bytes,
                         &info.checksum)) {
          return false;
        }
        manifest.segments.push_back(info);
        return true;
      });
    }
    // Unknown keys are skipped: a newer primary may advertise more.
  }
  if (!ok) return Status::IoError("malformed manifest reply");
  return manifest;
}

Result<std::string> SocketReplicationSource::ParseBytesReply(
    const std::string& reply) {
  const size_t nl = reply.find('\n');
  if (nl == std::string::npos) return Status::IoError("malformed fetch reply");
  const std::string_view header(reply.data(), nl);
  if (header.substr(0, 4) == "ERR ") {
    return Status::IoError("primary: " + std::string(header.substr(4)));
  }
  constexpr std::string_view kPrefix = "OK bytes=";
  int64_t bytes = -1;
  if (header.substr(0, kPrefix.size()) != kPrefix ||
      !ParseInt(header.substr(kPrefix.size()), &bytes) || bytes < 0 ||
      reply.size() < nl + 1 + static_cast<size_t>(bytes)) {
    return Status::IoError("malformed fetch reply");
  }
  return reply.substr(nl + 1, static_cast<size_t>(bytes));
}

Result<std::string> SocketReplicationSource::FetchSnapshot(int64_t seq) {
  auto reply = Call("RFETCHSNAP " + session_ + " " + std::to_string(seq));
  if (!reply.ok()) return reply.status();
  return ParseBytesReply(*reply);
}

Result<std::string> SocketReplicationSource::FetchWalSegment(
    int64_t first_seq) {
  auto reply =
      Call("RFETCHWAL " + session_ + " " + std::to_string(first_seq));
  if (!reply.ok()) return reply.status();
  return ParseBytesReply(*reply);
}

}  // namespace fdm
