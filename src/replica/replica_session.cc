#include "replica/replica_session.h"

#include <algorithm>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "service/durable_session.h"
#include "service/sink_spec.h"
#include "util/binary_io.h"

namespace fdm {

namespace {

// Replication-plane metrics, mirrored from the per-session counters at
// their increment sites so one METRICS scrape covers every follower in
// the process.
obs::Histogram& PollHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "fdm_replica_poll_ns", "latency of follower polls (SyncOnce)",
      /*slow_threshold_ns=*/1'000'000'000);
  return h;
}
obs::Histogram& LagHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "fdm_replica_lag", "records behind the primary after each poll");
  return h;
}
obs::Counter& AppliedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_replica_apply_records_total", "WAL records applied by followers");
  return c;
}
obs::Counter& FetchBytesCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_replica_fetch_bytes_total",
      "bytes fetched from replication sources (segments + snapshots)");
  return c;
}
obs::Counter& DivergenceCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_replica_divergence_rebuilds_total",
      "follower rebuilds after an advert/version divergence");
  return c;
}
obs::Counter& ResyncCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_replica_resyncs_total",
      "snapshot re-syncs after a pruned WAL gap");
  return c;
}
obs::Counter& StaleManifestCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_replica_stale_manifest_retries_total",
      "polls retried after a stale manifest / bad ship");
  return c;
}
obs::Counter& SegmentsFetchedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_replica_segments_fetched_total", "WAL segments fetched");
  return c;
}
obs::Counter& SnapshotsLoadedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_replica_snapshots_loaded_total",
      "snapshots restored by followers");
  return c;
}
obs::Counter& TornTailCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_replica_torn_tails_total",
      "polls that stopped at the primary's in-flight record");
  return c;
}
obs::Counter& BootstrapCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_replica_bootstraps_total", "follower bootstraps");
  return c;
}

}  // namespace

void ReplicaSession::NoteManifest(const ReplicaManifest& manifest) {
  last_primary_seq_ = std::max(manifest.primary_seq, applied_seq_);
  last_primary_version_ = manifest.primary_version;
  last_advert_seq_ = manifest.advert_seq;
}

Result<ReplicaSession> ReplicaSession::Bootstrap(
    std::shared_ptr<ReplicationSource> source, ReplicaOptions options) {
  if (options.apply_batch == 0) options.apply_batch = 1;
  if (options.max_sync_attempts < 1) options.max_sync_attempts = 1;
  ReplicaSession session(std::move(source), options);
  BootstrapCounter().Inc();

  auto manifest = session.source_->GetManifest();
  if (!manifest.ok()) return manifest.status();
  session.spec_ = manifest->spec;
  session.NoteManifest(*manifest);
  // The spec decides whether the follower mirrors the duplicate guard —
  // same authority rule as the primary's Open.
  if (auto parsed = SinkSpec::Parse(session.spec_); parsed.ok()) {
    session.dedup_enabled_ = parsed->dedup;
  }

  auto restored = session.BootstrapFromSnapshot(*manifest, /*min_seq=*/0);
  if (!restored.ok()) return restored.status();
  if (!*restored) {
    // No loadable snapshot: start fresh and replay the whole log (valid
    // only while the log still reaches back to seq 1 — if it does not,
    // the sync loop below detects the gap and re-syncs from whatever
    // snapshot the next manifest lists).
    auto fresh = MakeSinkFromSpec(session.spec_);
    if (!fresh.ok()) return fresh.status();
    session.sink_ = std::move(fresh.value());
    session.applied_seq_ = 0;
    if (session.dedup_enabled_) {
      session.dedup_ = std::make_unique<DedupFilter>();
    }
  }

  if (auto applied = session.SyncOnce(); !applied.ok()) {
    return applied.status();
  }
  return session;
}

Result<int64_t> ReplicaSession::Poll() {
  obs::ScopedTimer poll_timer(PollHist(), spec_,
                              sink_ != nullptr ? sink_->StateVersion() : 0);
  auto applied = SyncOnce();
  if (applied.ok()) {
    AppliedCounter().Add(static_cast<uint64_t>(*applied));
    LagHist().Record(static_cast<uint64_t>(
        std::max<int64_t>(0, last_primary_seq_ - applied_seq_)));
  }
  return applied;
}

Status ReplicaSession::RefreshLag() {
  auto manifest = source_->GetManifest();
  if (!manifest.ok()) return manifest.status();
  if (manifest->spec != spec_) {
    return Status::IoError("primary spec changed under the follower");
  }
  NoteManifest(*manifest);
  return Status::Ok();
}

Result<int64_t> ReplicaSession::SyncOnce() {
  int64_t total = 0;
  for (int attempt = 0; attempt < options_.max_sync_attempts; ++attempt) {
    auto manifest = source_->GetManifest();
    if (!manifest.ok()) return manifest.status();
    if (manifest->spec != spec_) {
      return Status::IoError("primary spec changed under the follower");
    }
    NoteManifest(*manifest);

    auto outcome = ApplyFrom(*manifest, &total);
    if (!outcome.ok()) return outcome.status();
    switch (*outcome) {
      case ApplyOutcome::kCaughtUp:
      case ApplyOutcome::kBudgetExhausted:
      case ApplyOutcome::kTornActiveTail:
        // The determinism cross-check: at the advertised position the
        // versions must agree. A mismatch means the applied history
        // diverged from the durable log (the primary lost an unfsynced
        // tail and re-wrote those seqs) — rebuild from scratch rather
        // than keep serving divergent answers as fresh.
        if (DivergedFromAdvert(*manifest)) {
          ++divergence_rebuilds_;
          DivergenceCounter().Inc();
          // A rewritten log can reuse segment names and sizes, so any
          // transport cache may be serving the pre-rewrite bytes.
          source_->InvalidateCaches();
          sink_.reset();
          // The filter mirrors the discarded history — discard it with
          // the sink (the snapshot restore below brings back the footer
          // copy, or a fresh one re-taught by the re-applied tail).
          dedup_.reset();
          duplicates_rejected_ = 0;
          applied_seq_ = 0;
          // Version numbering restarts with the rebuilt sink, so a cached
          // solution from the diverged history could collide with a new
          // version — drop it.
          solve_cache_->Invalidate();
          auto restored = BootstrapFromSnapshot(*manifest, /*min_seq=*/0);
          if (!restored.ok()) return restored.status();
          if (!*restored) {
            auto fresh = MakeSinkFromSpec(spec_);
            if (!fresh.ok()) return fresh.status();
            sink_ = std::move(fresh.value());
            if (dedup_enabled_) dedup_ = std::make_unique<DedupFilter>();
          }
          continue;  // re-apply the tail over the rebuilt state
        }
        // Progress (or a clean stop at the primary's in-flight tail);
        // anything left is the next poll's job.
        return total;
      case ApplyOutcome::kStaleManifest:
        // A listed file vanished, shrank, or failed its checksum between
        // manifest and fetch — the primary pruned/rotated mid-poll, or a
        // transport cache is stale. Drop caches, refetch, retry.
        ++stale_manifest_retries_;
        StaleManifestCounter().Inc();
        source_->InvalidateCaches();
        continue;
      case ApplyOutcome::kNeedSnapshot: {
        // The tail right after our position was pruned: only a snapshot
        // strictly ahead of us can bridge the gap.
        ++resyncs_;
        ResyncCounter().Inc();
        auto swapped = BootstrapFromSnapshot(*manifest, applied_seq_);
        if (!swapped.ok()) return swapped.status();
        // Even when no newer snapshot is listed yet, retry with a fresh
        // manifest — the primary prunes only after writing one, so it
        // appears shortly; attempts bound the wait.
        continue;
      }
    }
  }
  return Status::IoError(
      "replica did not converge after " +
      std::to_string(options_.max_sync_attempts) +
      " manifest refreshes (primary pruning faster than the follower "
      "can sync)");
}

Result<bool> ReplicaSession::BootstrapFromSnapshot(
    const ReplicaManifest& manifest, int64_t min_seq) {
  // Newest first; stop at min_seq — a re-sync must never move the served
  // state backward (versions and lag stay monotone for readers).
  for (auto it = manifest.snapshots.rbegin(); it != manifest.snapshots.rend();
       ++it) {
    if (it->seq <= min_seq) break;
    auto bytes = source_->FetchSnapshot(it->seq);
    if (!bytes.ok()) continue;  // pruned since the manifest; try older
    FetchBytesCounter().Add(bytes->size());
    if (it->checksum != 0 &&
        (bytes->size() != it->bytes ||
         Fnv1a64(bytes->data(), bytes->size()) != it->checksum)) {
      continue;  // torn ship; the framed checksum below would catch it too
    }
    auto reader = SnapshotReader::FromBytes(std::move(bytes.value()));
    if (!reader.ok()) continue;
    auto restored = RestoreSessionSnapshot(*reader, spec_, it->seq);
    if (!restored.ok()) continue;
    sink_ = std::move(restored.value());
    // The snapshot's dedup footer carries the filter at exactly this
    // position; the WAL tail applied after it re-teaches the rest. A
    // footer-less snapshot (pre-dedup primary) starts the mirror empty.
    if (dedup_enabled_) {
      int64_t rejected = 0;
      auto filter = ReadSessionFooters(*reader, nullptr, &rejected);
      if (filter != nullptr) {
        dedup_ = std::move(filter);
        duplicates_rejected_ = rejected;
      } else {
        dedup_ = std::make_unique<DedupFilter>();
        duplicates_rejected_ = 0;
      }
    }
    applied_seq_ = it->seq;
    ++snapshots_loaded_;
    SnapshotsLoadedCounter().Inc();
    return true;
  }
  return false;
}

Result<ReplicaSession::ApplyOutcome> ReplicaSession::ApplyFrom(
    const ReplicaManifest& manifest, int64_t* applied) {
  const size_t budget = options_.max_records_per_poll == 0
                            ? std::numeric_limits<size_t>::max()
                            : options_.max_records_per_poll;

  // Tail application reuses the WAL's batched applier (the exact path
  // crash-recovery replay takes), so a follower's apply is bit-identical
  // to recovery by construction. `applied_seq_` advances only when a
  // batch has actually reached the sink.
  WalBatchApplier applier(*sink_, options_.apply_batch, dedup_.get());
  bool budget_hit = false;

  auto flush = [&]() {
    const int64_t flushed = static_cast<int64_t>(applier.Flush());
    applied_seq_ += flushed;
    *applied += flushed;
  };

  for (size_t s = 0; s < manifest.segments.size(); ++s) {
    const WalSegmentInfo& seg = manifest.segments[s];
    const bool is_last = s + 1 == manifest.segments.size();
    // A whole segment is skippable when the next one starts at or before
    // the position we need next.
    if (!is_last && manifest.segments[s + 1].first_seq <= applied_seq_ + 1) {
      continue;
    }
    if (seg.first_seq > applied_seq_ + 1) {
      return ApplyOutcome::kNeedSnapshot;
    }
    auto bytes = source_->FetchWalSegment(seg.first_seq);
    if (!bytes.ok()) return ApplyOutcome::kStaleManifest;
    ++segments_fetched_;
    SegmentsFetchedCounter().Inc();
    FetchBytesCounter().Add(bytes->size());
    if (bytes->empty()) continue;  // zero-length crash artifact
    if (seg.checksum != 0 &&
        (bytes->size() != seg.bytes ||
         Fnv1a64(bytes->data(), bytes->size()) != seg.checksum)) {
      return ApplyOutcome::kStaleManifest;  // short/garbled ship of a
                                            // sealed (immutable) segment
    }

    WalSegmentCursor cursor(*bytes);
    WalRecordView record;
    while (cursor.Next(record)) {
      const int64_t expected =
          applied_seq_ + static_cast<int64_t>(applier.pending()) + 1;
      if (record.seq < expected) continue;  // below the snapshot: skip
      if (record.seq > expected) {
        // Records within a segment are dense by construction; a gap means
        // the shipped bytes are bad. Refetch (bounded by the sync loop).
        return ApplyOutcome::kStaleManifest;
      }
      if (!applier.Add(record)) {
        return Status::IoError("WAL record dimension changed mid-stream");
      }
      if (static_cast<size_t>(*applied) + applier.pending() >= budget) {
        budget_hit = true;
        break;
      }
      if (applier.ShouldFlush()) flush();
    }
    if (!cursor.status().ok()) {
      // Checksum-valid but malformed payload in shipped bytes: treat as a
      // bad ship and refetch; persistent corruption exhausts the attempts.
      return ApplyOutcome::kStaleManifest;
    }
    if (budget_hit) {
      flush();
      return ApplyOutcome::kBudgetExhausted;
    }
    if (cursor.torn_tail()) {
      if (is_last) {
        // The active segment's in-flight record (or a mid-write ship of
        // it): apply the intact prefix and stop cleanly; the next poll
        // refetches a longer prefix.
        flush();
        ++torn_tails_seen_;
        TornTailCounter().Inc();
        return ApplyOutcome::kTornActiveTail;
      }
      return ApplyOutcome::kStaleManifest;  // sealed segments never tear
    }
    flush();  // segment boundary: keep applied_seq_ aligned with fetches
  }
  flush();
  return ApplyOutcome::kCaughtUp;
}

ReplicaSession::ReplicaStats ReplicaSession::Stats() const {
  ReplicaStats stats;
  stats.applied_seq = applied_seq_;
  stats.primary_seq = last_primary_seq_;
  stats.primary_version = last_primary_version_;
  stats.advert_seq = last_advert_seq_;
  stats.lag = std::max<int64_t>(0, last_primary_seq_ - applied_seq_);
  stats.stale = stats.lag > 0;
  stats.state_version = sink_->StateVersion();
  stats.resyncs = resyncs_;
  stats.divergence_rebuilds = divergence_rebuilds_;
  stats.stale_manifest_retries = stale_manifest_retries_;
  stats.segments_fetched = segments_fetched_;
  stats.snapshots_loaded = snapshots_loaded_;
  stats.torn_tails_seen = torn_tails_seen_;
  stats.dedup = dedup_enabled_;
  stats.duplicates_rejected = duplicates_rejected_;
  if (dedup_ != nullptr) {
    stats.filter_bytes = dedup_->MemoryBytes();
    stats.filter_grows = dedup_->Grows();
  }
  stats.solve = solve_cache_->GetStats();
  return stats;
}

}  // namespace fdm
