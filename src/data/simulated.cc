#include "data/simulated.h"

#include <cmath>
#include <vector>

#include "data/normalize.h"
#include "data/synthetic.h"
#include "util/check.h"
#include "util/rng.h"

namespace fdm {
namespace {

/// Truncates `v` into `[lo, hi]`.
double Clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

Dataset SimulatedAdult(AdultGrouping grouping, uint64_t seed, size_t n) {
  FDM_CHECK(n > 0);
  Rng rng(seed);

  // Demographic marginals mirroring the paper's description of Adult:
  // "67% of the records are for males and 87% of the records are for
  // Whites" (Section V-B, Fig. 9 discussion). Races beyond the largest
  // follow the real dataset's tail proportions.
  const std::vector<double> sex_probs = {0.33, 0.67};            // F, M
  const std::vector<double> race_probs = {0.855, 0.096, 0.031,   // W, B, A
                                          0.010, 0.008};         // AI, other
  const std::vector<int32_t> sex = SampleGroups(n, sex_probs, rng.NextUint64());
  const std::vector<int32_t> race =
      SampleGroups(n, race_probs, rng.NextUint64());

  constexpr size_t kDim = 6;  // age, fnlwgt, edu-num, cap-gain, cap-loss, hrs
  std::vector<double> feats(n * kDim);
  for (size_t i = 0; i < n; ++i) {
    const bool male = sex[i] == 1;
    const double race_shift = 0.15 * static_cast<double>(race[i]);
    // age: truncated normal, slight shift by sex.
    feats[i * kDim + 0] =
        Clamp(38.5 + (male ? 1.0 : -1.2) + 13.5 * rng.NextGaussian(), 17, 90);
    // fnlwgt: lognormal sampling weight.
    feats[i * kDim + 1] = std::exp(12.0 + 0.68 * rng.NextGaussian());
    // education-num: discretized normal with demographic shift.
    feats[i * kDim + 2] = Clamp(
        std::round(10.1 - race_shift + 2.5 * rng.NextGaussian()), 1, 16);
    // capital-gain: zero-inflated lognormal (heavy right tail).
    feats[i * kDim + 3] =
        rng.NextDouble() < 0.917
            ? 0.0
            : std::exp(8.4 + (male ? 0.2 : 0.0) + 1.1 * rng.NextGaussian());
    // capital-loss: zero-inflated lognormal, narrower.
    feats[i * kDim + 4] = rng.NextDouble() < 0.953
                              ? 0.0
                              : std::exp(7.45 + 0.35 * rng.NextGaussian());
    // hours-per-week.
    feats[i * kDim + 5] =
        Clamp(40.4 + (male ? 2.4 : -3.9) + 12.3 * rng.NextGaussian(), 1, 99);
  }
  ZScoreNormalize(feats, n, kDim);

  int32_t num_groups = 0;
  std::vector<std::string> names;
  switch (grouping) {
    case AdultGrouping::kSex:
      num_groups = 2;
      names = {"female", "male"};
      break;
    case AdultGrouping::kRace:
      num_groups = 5;
      names = {"race0", "race1", "race2", "race3", "race4"};
      break;
    case AdultGrouping::kSexRace:
      num_groups = 10;
      for (const char* s : {"F", "M"}) {
        for (int r = 0; r < 5; ++r) {
          names.push_back(std::string(s) + "-race" + std::to_string(r));
        }
      }
      break;
  }
  Dataset ds("adult-sim", kDim, num_groups, MetricKind::kEuclidean);
  ds.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int32_t g = 0;
    switch (grouping) {
      case AdultGrouping::kSex:
        g = sex[i];
        break;
      case AdultGrouping::kRace:
        g = race[i];
        break;
      case AdultGrouping::kSexRace:
        g = sex[i] * 5 + race[i];
        break;
    }
    ds.Add(std::span<const double>(feats.data() + i * kDim, kDim), g);
  }
  ds.SetGroupNames(std::move(names));
  return ds;
}

Dataset SimulatedCelebA(CelebAGrouping grouping, uint64_t seed, size_t n) {
  FDM_CHECK(n > 0);
  Rng rng(seed);

  // Sex ~58% female, age ~78% young: the real CelebA marginals.
  const std::vector<int32_t> sex =
      SampleGroups(n, {0.58, 0.42}, rng.NextUint64());
  const std::vector<int32_t> age =
      SampleGroups(n, {0.78, 0.22}, rng.NextUint64());

  constexpr size_t kDim = 41;  // 41 pre-trained binary attribute labels
  // Per-attribute base activation rates plus sex/age-dependent logit
  // shifts: facial attributes correlate strongly with both (e.g. "beard"
  // with sex, "gray hair" with age).
  std::vector<double> base(kDim), sex_shift(kDim), age_shift(kDim);
  Rng attr_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (size_t d = 0; d < kDim; ++d) {
    base[d] = attr_rng.NextDouble(0.05, 0.6);
    sex_shift[d] = attr_rng.NextDouble(-1.5, 1.5);
    age_shift[d] = attr_rng.NextDouble(-1.0, 1.0);
  }

  int32_t num_groups = 0;
  std::vector<std::string> names;
  switch (grouping) {
    case CelebAGrouping::kSex:
      num_groups = 2;
      names = {"female", "male"};
      break;
    case CelebAGrouping::kAge:
      num_groups = 2;
      names = {"young", "not-young"};
      break;
    case CelebAGrouping::kSexAge:
      num_groups = 4;
      names = {"F-young", "F-old", "M-young", "M-old"};
      break;
  }

  Dataset ds("celeba-sim", kDim, num_groups, MetricKind::kManhattan);
  ds.Reserve(n);
  std::vector<double> point(kDim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < kDim; ++d) {
      const double logit = std::log(base[d] / (1.0 - base[d])) +
                           (sex[i] == 1 ? sex_shift[d] : 0.0) +
                           (age[i] == 1 ? age_shift[d] : 0.0);
      const double p = 1.0 / (1.0 + std::exp(-logit));
      point[d] = rng.NextDouble() < p ? 1.0 : 0.0;
    }
    int32_t g = 0;
    switch (grouping) {
      case CelebAGrouping::kSex:
        g = sex[i];
        break;
      case CelebAGrouping::kAge:
        g = age[i];
        break;
      case CelebAGrouping::kSexAge:
        g = sex[i] * 2 + age[i];
        break;
    }
    ds.Add(point, g);
  }
  ds.SetGroupNames(std::move(names));
  return ds;
}

Dataset SimulatedCensus(CensusGrouping grouping, uint64_t seed, size_t n) {
  FDM_CHECK(n > 0);
  Rng rng(seed);

  const std::vector<int32_t> sex =
      SampleGroups(n, {0.52, 0.48}, rng.NextUint64());
  // Seven age brackets with mildly uneven mass (real census pyramids).
  const std::vector<double> age_probs = {0.10, 0.15, 0.17, 0.16,
                                         0.14, 0.13, 0.15};
  const std::vector<int32_t> age = SampleGroups(n, age_probs, rng.NextUint64());

  constexpr size_t kDim = 25;  // 25 categorical-code attributes
  // Attribute cardinalities and skews fixed per attribute (deterministic
  // in the seed), mimicking the 1990 census codes (2..17 categories,
  // heavily skewed toward low codes).
  Rng attr_rng(seed ^ 0xdeadbeefcafef00dULL);
  std::vector<int> cardinality(kDim);
  std::vector<double> skew(kDim), sex_pull(kDim), age_pull(kDim);
  for (size_t d = 0; d < kDim; ++d) {
    cardinality[d] = static_cast<int>(attr_rng.NextInt(2, 17));
    skew[d] = attr_rng.NextDouble(0.6, 1.8);       // Zipf-ish exponent
    sex_pull[d] = attr_rng.NextDouble(-0.8, 0.8);  // demographic drift
    age_pull[d] = attr_rng.NextDouble(0.0, 1.2);
  }
  // Per-attribute Zipf CDFs.
  std::vector<std::vector<double>> cdf(kDim);
  for (size_t d = 0; d < kDim; ++d) {
    cdf[d].resize(static_cast<size_t>(cardinality[d]));
    double acc = 0.0;
    for (int c = 0; c < cardinality[d]; ++c) {
      acc += 1.0 / std::pow(static_cast<double>(c + 1), skew[d]);
      cdf[d][static_cast<size_t>(c)] = acc;
    }
    for (auto& v : cdf[d]) v /= acc;
  }

  std::vector<double> feats(n * kDim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < kDim; ++d) {
      const double u = rng.NextDouble();
      int code = 0;
      while (code + 1 < cardinality[d] &&
             u > cdf[d][static_cast<size_t>(code)]) {
        ++code;
      }
      // Demographic drift: shift the code deterministically by group, then
      // wrap into range — keeps marginals categorical while correlating
      // attributes with sex/age the way real census columns do.
      double v = static_cast<double>(code);
      if (sex[i] == 1) v += sex_pull[d];
      v += age_pull[d] * static_cast<double>(age[i]) / 6.0;
      feats[i * kDim + d] = v;
    }
  }
  ZScoreNormalize(feats, n, kDim);

  int32_t num_groups = 0;
  std::vector<std::string> names;
  switch (grouping) {
    case CensusGrouping::kSex:
      num_groups = 2;
      names = {"female", "male"};
      break;
    case CensusGrouping::kAge:
      num_groups = 7;
      for (int b = 0; b < 7; ++b) names.push_back("age" + std::to_string(b));
      break;
    case CensusGrouping::kSexAge:
      num_groups = 14;
      for (const char* s : {"F", "M"}) {
        for (int b = 0; b < 7; ++b) {
          names.push_back(std::string(s) + "-age" + std::to_string(b));
        }
      }
      break;
  }
  Dataset ds("census-sim", kDim, num_groups, MetricKind::kManhattan);
  ds.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int32_t g = 0;
    switch (grouping) {
      case CensusGrouping::kSex:
        g = sex[i];
        break;
      case CensusGrouping::kAge:
        g = age[i];
        break;
      case CensusGrouping::kSexAge:
        g = sex[i] * 7 + age[i];
        break;
    }
    ds.Add(std::span<const double>(feats.data() + i * kDim, kDim), g);
  }
  ds.SetGroupNames(std::move(names));
  return ds;
}

Dataset SimulatedLyrics(uint64_t seed, size_t n) {
  FDM_CHECK(n > 0);
  Rng rng(seed);

  constexpr size_t kDim = 50;    // 50 LDA topics
  constexpr int kGenres = 15;    // primary genres
  // Zipf-skewed genre popularity (rock/pop dominate real song corpora).
  std::vector<double> genre_probs(kGenres);
  for (int g = 0; g < kGenres; ++g) {
    genre_probs[static_cast<size_t>(g)] =
        1.0 / std::pow(static_cast<double>(g + 1), 0.85);
  }
  const std::vector<int32_t> genre =
      SampleGroups(n, genre_probs, rng.NextUint64());

  Dataset ds("lyrics-sim", kDim, kGenres, MetricKind::kAngular);
  ds.Reserve(n);
  std::vector<double> alpha(kDim), point(kDim);
  for (size_t i = 0; i < n; ++i) {
    // Sparse base prior; each genre concentrates mass on a handful of
    // signature topics, like LDA topic mixtures conditioned on genre.
    const int g = genre[i];
    for (size_t d = 0; d < kDim; ++d) alpha[d] = 0.08;
    alpha[static_cast<size_t>((3 * g) % 50)] += 0.9;
    alpha[static_cast<size_t>((3 * g + 1) % 50)] += 0.6;
    alpha[static_cast<size_t>((7 * g + 17) % 50)] += 0.4;
    double sum = 0.0;
    for (size_t d = 0; d < kDim; ++d) {
      point[d] = rng.NextGamma(alpha[d]);
      sum += point[d];
    }
    FDM_CHECK(sum > 0.0);
    for (size_t d = 0; d < kDim; ++d) point[d] /= sum;
    ds.Add(point, g);
  }
  std::vector<std::string> names;
  for (int g = 0; g < kGenres; ++g) names.push_back("genre" + std::to_string(g));
  ds.SetGroupNames(std::move(names));
  return ds;
}

}  // namespace fdm
