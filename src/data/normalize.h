#ifndef FDM_DATA_NORMALIZE_H_
#define FDM_DATA_NORMALIZE_H_

#include <cstddef>
#include <vector>

namespace fdm {

/// Per-column mean/standard-deviation summary of a row-major matrix.
struct ColumnStats {
  std::vector<double> mean;
  std::vector<double> stddev;  // population stddev; 1.0 for constant columns
};

/// Computes per-column statistics of `features` (`n` rows, `dim` columns,
/// row-major).
ColumnStats ComputeColumnStats(const std::vector<double>& features, size_t n,
                               size_t dim);

/// In-place z-score normalization (zero mean, unit standard deviation per
/// column). Constant columns are centered only. This mirrors the paper's
/// preprocessing of Adult ("normalize each of them to have zero mean and
/// unit standard deviation") and Census ("normalized numeric attributes").
void ZScoreNormalize(std::vector<double>& features, size_t n, size_t dim);

/// In-place min-max scaling of each column to `[0, 1]`; constant columns
/// map to 0.5.
void MinMaxNormalize(std::vector<double>& features, size_t n, size_t dim);

}  // namespace fdm

#endif  // FDM_DATA_NORMALIZE_H_
