#ifndef FDM_DATA_SYNTHETIC_H_
#define FDM_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace fdm {

/// Options for the paper's synthetic workload (Section V-A): ten
/// 2-dimensional Gaussian isotropic blobs with random centers in
/// `[-10, 10]^2` and identity covariance; points are assigned to the `m`
/// groups uniformly at random; Euclidean distance.
struct BlobsOptions {
  size_t n = 1000;
  size_t dim = 2;
  int num_blobs = 10;
  double center_low = -10.0;
  double center_high = 10.0;
  double stddev = 1.0;
  int32_t num_groups = 2;
  uint64_t seed = 1;
};

/// Generates the synthetic blob dataset used by Figs. 10 and 11.
Dataset MakeBlobs(const BlobsOptions& options);

/// Uniform-random group proportions helper: draws a group id for each point
/// i.i.d. from `probs` (must sum to ~1). Returns per-point assignments.
std::vector<int32_t> SampleGroups(size_t n, const std::vector<double>& probs,
                                  uint64_t seed);

/// A tiny deterministic 2-D dataset with two half-moon shaped groups;
/// used by examples and the Fig. 2 illustration.
Dataset MakeTwoMoons(size_t n, double noise, uint64_t seed);

/// Uniform random points in the unit square (Fig. 1 illustration).
Dataset MakeUniformSquare(size_t n, uint64_t seed);

}  // namespace fdm

#endif  // FDM_DATA_SYNTHETIC_H_
