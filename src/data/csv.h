#ifndef FDM_DATA_CSV_H_
#define FDM_DATA_CSV_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace fdm {

/// Writes `dataset` to `path` as CSV with header
/// `group,f0,f1,...` — one row per point. Used by the figure benches so the
/// selected point sets can be plotted externally.
Status WriteDatasetCsv(const Dataset& dataset, const std::string& path);

/// Reads a dataset from a CSV produced by `WriteDatasetCsv` (or any CSV with
/// a leading integer `group` column followed by `dim` numeric features).
/// `metric` selects the distance; group ids must be dense `0..m-1`.
Result<Dataset> ReadDatasetCsv(const std::string& path, MetricKind metric,
                               const std::string& name = "csv");

}  // namespace fdm

#endif  // FDM_DATA_CSV_H_
