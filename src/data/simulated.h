#ifndef FDM_DATA_SIMULATED_H_
#define FDM_DATA_SIMULATED_H_

#include <cstdint>

#include "data/dataset.h"

namespace fdm {

/// Simulated stand-ins for the four public datasets of the paper's
/// evaluation (Table I). The originals are external downloads that are not
/// available in this offline environment; per the reproduction protocol,
/// each generator reproduces the *shape* the experiments exercise — the
/// same `n`, dimensionality, metric, number of groups, and group skew —
/// with feature distributions that mimic the originals' geometry
/// (heavy-tailed numeric columns for Adult, binary attribute labels for
/// CelebA, discrete categorical codes for Census, sparse simplex topic
/// vectors for Lyrics). See DESIGN.md §2.4 for the substitution table.

/// Group attribute selection for the Adult dataset
/// (sex: m=2, race: m=5, sex+race: m=10).
enum class AdultGrouping { kSex, kRace, kSexRace };

/// Simulated UCI Adult: `n` records (paper: 48 842), 6 z-scored numeric
/// features, Euclidean metric. Group skew matches the paper's description
/// (67% male; 87%+ of one race).
Dataset SimulatedAdult(AdultGrouping grouping, uint64_t seed,
                       size_t n = 48842);

/// Group attribute selection for CelebA (sex: m=2, age: m=2, both: m=4).
enum class CelebAGrouping { kSex, kAge, kSexAge };

/// Simulated CelebA: `n` face images (paper: 202 599) represented by 41
/// binary attribute labels, Manhattan metric.
Dataset SimulatedCelebA(CelebAGrouping grouping, uint64_t seed,
                        size_t n = 202599);

/// Group attribute selection for Census (sex: m=2, age: m=7, both: m=14).
enum class CensusGrouping { kSex, kAge, kSexAge };

/// Simulated US Census (1990): `n` records, 25 z-scored categorical-code
/// attributes, Manhattan metric. The paper uses n = 2 426 116; the default
/// here is 1/10 of that so the argument-free bench runs stay laptop-sized —
/// pass the full size explicitly to reproduce at paper scale.
Dataset SimulatedCensus(CensusGrouping grouping, uint64_t seed,
                        size_t n = 242612);

/// Paper-scale Census size (2 426 116 records).
inline constexpr size_t kCensusFullSize = 2426116;

/// Simulated Lyrics: `n` songs (paper: 122 448) as 50-dimensional LDA-style
/// topic distributions (sparse Dirichlet draws on the simplex), angular
/// metric, 15 Zipf-skewed genre groups.
Dataset SimulatedLyrics(uint64_t seed, size_t n = 122448);

}  // namespace fdm

#endif  // FDM_DATA_SIMULATED_H_
