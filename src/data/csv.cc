#include "data/csv.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/stringutil.h"

namespace fdm {

namespace {

/// Group ids must be dense `0..m-1`; anything above this is a malformed
/// file, not a plausible grouping (and would make `Dataset` allocate one
/// bucket per id up to it).
constexpr long kMaxGroupId = 1 << 20;

}  // namespace

Status WriteDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "group";
  for (size_t d = 0; d < dataset.dim(); ++d) out << ",f" << d;
  out << "\n";
  for (size_t i = 0; i < dataset.size(); ++i) {
    out << dataset.GroupOf(i);
    const auto p = dataset.Point(i);
    for (size_t d = 0; d < dataset.dim(); ++d) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", p[d]);
      out << ',' << buf;
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Dataset> ReadDatasetCsv(const std::string& path, MetricKind metric,
                               const std::string& name) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty csv: " + path);
  }
  const size_t dim = Split(line, ',').size() - 1;
  if (dim == 0) {
    return Status::IoError("csv has no feature columns: " + path);
  }

  std::vector<double> coords;
  std::vector<int32_t> groups;
  int32_t max_group = 0;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    const auto fields = Split(line, ',');
    if (fields.size() != dim + 1) {
      return Status::IoError("row " + std::to_string(line_no) +
                             " has wrong arity in " + path);
    }
    // `strtol`/`strtod` accept an empty field (no conversion: `end` stays
    // at the start and `*end == '\0'`), silently yielding 0 — so "did any
    // characters convert" must be checked alongside "did all characters
    // convert". `errno` catches out-of-range magnitudes.
    char* end = nullptr;
    errno = 0;
    const long g = std::strtol(fields[0].c_str(), &end, 10);
    if (end == fields[0].c_str() || *end != '\0' || errno == ERANGE ||
        g < 0) {
      return Status::IoError("bad group id at row " + std::to_string(line_no) +
                             " in " + path + ": '" + fields[0] + "'");
    }
    if (g > kMaxGroupId) {
      return Status::IoError("group id " + std::to_string(g) + " at row " +
                             std::to_string(line_no) + " in " + path +
                             " out of range (group ids must be dense 0..m-1)");
    }
    groups.push_back(static_cast<int32_t>(g));
    max_group = std::max(max_group, static_cast<int32_t>(g));
    for (size_t d = 0; d < dim; ++d) {
      const double v = std::strtod(fields[d + 1].c_str(), &end);
      if (end == fields[d + 1].c_str() || *end != '\0') {
        return Status::IoError("bad feature at row " +
                               std::to_string(line_no) + " in " + path +
                               ": '" + fields[d + 1] + "'");
      }
      // Rejects literal nan/inf and overflowed magnitudes alike (overflow
      // yields ±HUGE_VAL = ±inf); underflow to 0/subnormal stays legal.
      if (!std::isfinite(v)) {
        return Status::IoError("non-finite feature at row " +
                               std::to_string(line_no) + " in " + path +
                               ": '" + fields[d + 1] + "'");
      }
      coords.push_back(v);
    }
  }
  Dataset ds(name, dim, max_group + 1, metric);
  ds.Reserve(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    ds.Add(std::span<const double>(coords.data() + i * dim, dim), groups[i]);
  }
  return ds;
}

}  // namespace fdm
