#include "data/normalize.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace fdm {

ColumnStats ComputeColumnStats(const std::vector<double>& features, size_t n,
                               size_t dim) {
  FDM_CHECK(features.size() == n * dim);
  ColumnStats stats;
  stats.mean.assign(dim, 0.0);
  stats.stddev.assign(dim, 1.0);
  if (n == 0) return stats;
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      stats.mean[d] += features[i * dim + d];
    }
  }
  for (size_t d = 0; d < dim; ++d) stats.mean[d] /= static_cast<double>(n);
  std::vector<double> var(dim, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      const double delta = features[i * dim + d] - stats.mean[d];
      var[d] += delta * delta;
    }
  }
  for (size_t d = 0; d < dim; ++d) {
    const double v = var[d] / static_cast<double>(n);
    stats.stddev[d] = v > 0.0 ? std::sqrt(v) : 1.0;
  }
  return stats;
}

void ZScoreNormalize(std::vector<double>& features, size_t n, size_t dim) {
  const ColumnStats stats = ComputeColumnStats(features, n, dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      features[i * dim + d] =
          (features[i * dim + d] - stats.mean[d]) / stats.stddev[d];
    }
  }
}

void MinMaxNormalize(std::vector<double>& features, size_t n, size_t dim) {
  FDM_CHECK(features.size() == n * dim);
  if (n == 0) return;
  std::vector<double> lo(dim, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dim, -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      const double v = features[i * dim + d];
      if (v < lo[d]) lo[d] = v;
      if (v > hi[d]) hi[d] = v;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      const double range = hi[d] - lo[d];
      features[i * dim + d] =
          range > 0.0 ? (features[i * dim + d] - lo[d]) / range : 0.5;
    }
  }
}

}  // namespace fdm
