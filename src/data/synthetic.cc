#include "data/synthetic.h"

#include <cmath>
#include <numbers>

#include "util/check.h"
#include "util/rng.h"

namespace fdm {

Dataset MakeBlobs(const BlobsOptions& options) {
  FDM_CHECK(options.n > 0);
  FDM_CHECK(options.num_blobs > 0);
  FDM_CHECK(options.num_groups >= 1);
  Rng rng(options.seed);

  // Blob centers, uniform in the box.
  std::vector<double> centers(
      static_cast<size_t>(options.num_blobs) * options.dim);
  for (auto& c : centers) {
    c = rng.NextDouble(options.center_low, options.center_high);
  }

  Dataset ds("synthetic-blobs", options.dim, options.num_groups,
             MetricKind::kEuclidean);
  ds.Reserve(options.n);
  std::vector<double> point(options.dim);
  for (size_t i = 0; i < options.n; ++i) {
    const size_t blob = static_cast<size_t>(
        rng.NextBounded(static_cast<uint64_t>(options.num_blobs)));
    for (size_t d = 0; d < options.dim; ++d) {
      point[d] =
          centers[blob * options.dim + d] + options.stddev * rng.NextGaussian();
    }
    const int32_t group = static_cast<int32_t>(
        rng.NextBounded(static_cast<uint64_t>(options.num_groups)));
    ds.Add(point, group);
  }
  return ds;
}

std::vector<int32_t> SampleGroups(size_t n, const std::vector<double>& probs,
                                  uint64_t seed) {
  FDM_CHECK(!probs.empty());
  // Cumulative distribution; tolerate probs that sum to slightly != 1.
  std::vector<double> cdf(probs.size());
  double acc = 0.0;
  for (size_t g = 0; g < probs.size(); ++g) {
    FDM_CHECK(probs[g] >= 0.0);
    acc += probs[g];
    cdf[g] = acc;
  }
  FDM_CHECK(acc > 0.0);
  Rng rng(seed);
  std::vector<int32_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    const double u = rng.NextDouble() * acc;
    int32_t g = 0;
    while (g + 1 < static_cast<int32_t>(probs.size()) &&
           u > cdf[static_cast<size_t>(g)]) {
      ++g;
    }
    out[i] = g;
  }
  return out;
}

Dataset MakeTwoMoons(size_t n, double noise, uint64_t seed) {
  Rng rng(seed);
  Dataset ds("two-moons", 2, 2, MetricKind::kEuclidean);
  ds.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int32_t group = static_cast<int32_t>(i % 2);
    const double t = rng.NextDouble() * std::numbers::pi;
    double x, y;
    if (group == 0) {
      x = std::cos(t);
      y = std::sin(t);
    } else {
      x = 1.0 - std::cos(t);
      y = 0.5 - std::sin(t);
    }
    const double p[2] = {x + noise * rng.NextGaussian(),
                         y + noise * rng.NextGaussian()};
    ds.Add(p, group);
  }
  return ds;
}

Dataset MakeUniformSquare(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds("uniform-square", 2, 1, MetricKind::kEuclidean);
  ds.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double p[2] = {rng.NextDouble(), rng.NextDouble()};
    ds.Add(p, 0);
  }
  return ds;
}

}  // namespace fdm
