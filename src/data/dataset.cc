#include "data/dataset.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <span>

#include "core/kernel_workspace.h"
#include "util/rng.h"

namespace fdm {

namespace {

/// The shared O(|rows|²) min/max scan behind both bounds functions, routed
/// through a `KernelWorkspace` mirror so the distances come out of the
/// dispatched SIMD kernels instead of the scalar `Metric`. Row `i`'s scan
/// consults only the upper triangle (`j > i`) in the scalar loop's exact
/// `(i, j)` order, and each finished entry is bit-identical to
/// `metric(Point(rows[i]), Point(rows[j]))` — so the returned extrema (and
/// therefore every guess ladder derived from them) match the scalar double
/// loop bit for bit.
DistanceBounds PairwiseExtrema(const Dataset& dataset,
                               std::span<const size_t> rows) {
  const Metric metric = dataset.metric();
  DistanceBounds bounds;
  bounds.min = std::numeric_limits<double>::infinity();
  bounds.max = 0.0;
  KernelWorkspace workspace(dataset.dim(), rows.size());
  workspace.AssignRows(dataset, rows);
  std::vector<double> raw;
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    workspace.RawDistancesTo(dataset.Point(rows[i]), metric, raw);
    for (size_t j = i + 1; j < rows.size(); ++j) {
      const double d = metric.FinishDistance(raw[j]);
      if (d > 0.0 && d < bounds.min) bounds.min = d;
      if (d > bounds.max) bounds.max = d;
    }
  }
  return bounds;
}

}  // namespace

DistanceBounds ComputeDistanceBoundsExact(const Dataset& dataset) {
  std::vector<size_t> rows(dataset.size());
  std::iota(rows.begin(), rows.end(), size_t{0});
  DistanceBounds bounds = PairwiseExtrema(dataset, rows);
  if (!std::isfinite(bounds.min)) bounds.min = bounds.max;
  return bounds;
}

DistanceBounds EstimateDistanceBounds(const Dataset& dataset,
                                      size_t sample_size, uint64_t seed,
                                      double slack) {
  const size_t n = dataset.size();
  if (n <= sample_size || n <= 2048) {
    DistanceBounds exact = ComputeDistanceBoundsExact(dataset);
    // No slack needed: the bounds are exact.
    return exact;
  }
  Rng rng(seed);
  std::vector<size_t> sample(sample_size);
  for (auto& s : sample) s = static_cast<size_t>(rng.NextBounded(n));
  std::sort(sample.begin(), sample.end());
  sample.erase(std::unique(sample.begin(), sample.end()), sample.end());

  const DistanceBounds extrema = PairwiseExtrema(dataset, sample);
  double min_d = extrema.min;
  double max_d = extrema.max;
  if (!std::isfinite(min_d)) min_d = max_d > 0 ? max_d : 1.0;
  if (max_d == 0.0) max_d = 1.0;
  // Widen: sampling overestimates the closest-pair distance and slightly
  // underestimates the diameter; the slack keeps the guess ladder covering
  // the interval that Lemma 1 / Theorem 4 need (see the contract in the
  // header). Extra ladder rungs only cost O(log(slack)/ε) candidates each.
  return DistanceBounds{min_d / slack, max_d * slack};
}

std::vector<size_t> StreamOrder(size_t n, uint64_t seed) {
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  Rng rng(seed);
  rng.Shuffle(order);
  return order;
}

}  // namespace fdm
