#include "data/dataset.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/rng.h"

namespace fdm {

DistanceBounds ComputeDistanceBoundsExact(const Dataset& dataset) {
  const size_t n = dataset.size();
  const Metric metric = dataset.metric();
  DistanceBounds bounds;
  bounds.min = std::numeric_limits<double>::infinity();
  bounds.max = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double d = metric(dataset.Point(i), dataset.Point(j));
      if (d > 0.0 && d < bounds.min) bounds.min = d;
      if (d > bounds.max) bounds.max = d;
    }
  }
  if (!std::isfinite(bounds.min)) bounds.min = bounds.max;
  return bounds;
}

DistanceBounds EstimateDistanceBounds(const Dataset& dataset,
                                      size_t sample_size, uint64_t seed,
                                      double slack) {
  const size_t n = dataset.size();
  if (n <= sample_size || n <= 2048) {
    DistanceBounds exact = ComputeDistanceBoundsExact(dataset);
    // No slack needed: the bounds are exact.
    return exact;
  }
  Rng rng(seed);
  std::vector<size_t> sample(sample_size);
  for (auto& s : sample) s = static_cast<size_t>(rng.NextBounded(n));
  std::sort(sample.begin(), sample.end());
  sample.erase(std::unique(sample.begin(), sample.end()), sample.end());

  const Metric metric = dataset.metric();
  double min_d = std::numeric_limits<double>::infinity();
  double max_d = 0.0;
  for (size_t i = 0; i < sample.size(); ++i) {
    for (size_t j = i + 1; j < sample.size(); ++j) {
      const double d =
          metric(dataset.Point(sample[i]), dataset.Point(sample[j]));
      if (d > 0.0 && d < min_d) min_d = d;
      if (d > max_d) max_d = d;
    }
  }
  if (!std::isfinite(min_d)) min_d = max_d > 0 ? max_d : 1.0;
  if (max_d == 0.0) max_d = 1.0;
  // Widen: sampling overestimates the closest-pair distance and slightly
  // underestimates the diameter; the slack keeps the guess ladder covering
  // the interval that Lemma 1 / Theorem 4 need (see the contract in the
  // header). Extra ladder rungs only cost O(log(slack)/ε) candidates each.
  return DistanceBounds{min_d / slack, max_d * slack};
}

std::vector<size_t> StreamOrder(size_t n, uint64_t seed) {
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  Rng rng(seed);
  rng.Shuffle(order);
  return order;
}

}  // namespace fdm
