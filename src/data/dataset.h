#ifndef FDM_DATA_DATASET_H_
#define FDM_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geo/metric.h"
#include "geo/point_buffer.h"
#include "util/check.h"
#include "util/status.h"

namespace fdm {

/// An in-memory point set with a group partition and an associated metric.
///
/// This is the *offline* representation used by generators, baselines, and
/// the experiment harness. Streaming algorithms never see a `Dataset`; they
/// consume `StreamPoint`s one at a time (see `StreamView`), which keeps the
/// one-pass discipline honest.
class Dataset {
 public:
  /// Creates an empty dataset. `dim > 0`; `num_groups >= 1`.
  Dataset(std::string name, size_t dim, int32_t num_groups, MetricKind metric)
      : name_(std::move(name)),
        dim_(dim),
        num_groups_(num_groups),
        metric_(metric) {
    FDM_CHECK(dim > 0);
    FDM_CHECK(num_groups >= 1);
  }

  /// Appends a point. `coords.size() == dim()`, `0 <= group < num_groups()`.
  void Add(std::span<const double> coords, int32_t group) {
    FDM_CHECK(coords.size() == dim_);
    FDM_CHECK(group >= 0 && group < num_groups_);
    features_.insert(features_.end(), coords.begin(), coords.end());
    groups_.push_back(group);
  }

  /// Pre-allocates storage for `n` points.
  void Reserve(size_t n) {
    features_.reserve(n * dim_);
    groups_.reserve(n);
  }

  const std::string& name() const { return name_; }
  size_t size() const { return groups_.size(); }
  size_t dim() const { return dim_; }
  int32_t num_groups() const { return num_groups_; }
  MetricKind metric_kind() const { return metric_; }
  Metric metric() const { return Metric(metric_); }

  /// Coordinates of point `i`.
  std::span<const double> Point(size_t i) const {
    FDM_DCHECK(i < size());
    return {features_.data() + i * dim_, dim_};
  }

  /// Group id of point `i`, in `[0, num_groups())`.
  int32_t GroupOf(size_t i) const {
    FDM_DCHECK(i < size());
    return groups_[i];
  }

  /// Point `i` packaged for a streaming algorithm. The id is the row index.
  StreamPoint At(size_t i) const {
    return StreamPoint{static_cast<int64_t>(i), GroupOf(i), Point(i)};
  }

  /// Number of points per group (length `num_groups()`).
  std::vector<size_t> GroupSizes() const {
    std::vector<size_t> sizes(static_cast<size_t>(num_groups_), 0);
    for (const int32_t g : groups_) ++sizes[static_cast<size_t>(g)];
    return sizes;
  }

  /// Optional human-readable group names (e.g. {"female", "male"}).
  void SetGroupNames(std::vector<std::string> names) {
    FDM_CHECK(names.size() == static_cast<size_t>(num_groups_));
    group_names_ = std::move(names);
  }
  const std::vector<std::string>& group_names() const { return group_names_; }

  /// Distance between points `i` and `j` under the dataset metric.
  double Distance(size_t i, size_t j) const {
    return metric()(Point(i), Point(j));
  }

 private:
  std::string name_;
  size_t dim_;
  int32_t num_groups_;
  MetricKind metric_;
  std::vector<double> features_;  // row-major, size() * dim()
  std::vector<int32_t> groups_;
  std::vector<std::string> group_names_;
};

/// Lower/upper bounds on pairwise distances, used to build the guess ladder
/// `U` (the paper's `d_min`, `d_max`, and `∆ = d_max / d_min`).
struct DistanceBounds {
  double min = 0.0;
  double max = 0.0;

  double Spread() const { return min > 0 ? max / min : 0.0; }
};

/// Exact bounds over all distinct pairs — O(n^2); intended for `n` up to a
/// few thousand (tests, small figures). Zero distances (duplicate points)
/// are excluded from the minimum, mirroring the paper's definition over
/// *distinct* elements. The scan runs through the dispatched SIMD kernels
/// (core/kernel_workspace.h) and is bit-identical to the scalar double
/// loop on every target.
DistanceBounds ComputeDistanceBoundsExact(const Dataset& dataset);

/// Sampled bounds for large datasets: distances among `sample_size` random
/// points, widened by `slack` (min divided, max multiplied). Deterministic
/// given `seed`.
///
/// Contract: the returned interval need NOT bracket the exact `d_min`
/// (sampling inherently overestimates the closest-pair distance). What the
/// streaming analyses require is that the guess ladder covers
/// `[c·OPT_f, OPT_f]` for the relevant constant `c` — and `OPT_f`, a
/// max-min value over `k ≪ n` picks, sits far above the exact closest-pair
/// distance, so the sampled minimum divided by `slack` comfortably covers
/// it. The end-to-end coverage is what the tests verify (streaming runs
/// using these estimated bounds still meet their approximation bounds
/// against GMM references).
DistanceBounds EstimateDistanceBounds(const Dataset& dataset,
                                      size_t sample_size, uint64_t seed,
                                      double slack = 4.0);

/// A random permutation of `[0, n)`; the paper evaluates each algorithm on
/// 10 random permutations of every dataset and reports averages.
std::vector<size_t> StreamOrder(size_t n, uint64_t seed);

}  // namespace fdm

#endif  // FDM_DATA_DATASET_H_
