#ifndef FDM_BASELINES_FAIR_GMM_H_
#define FDM_BASELINES_FAIR_GMM_H_

#include "core/fairness.h"
#include "core/solution.h"
#include "data/dataset.h"
#include "util/status.h"

namespace fdm {

/// FairGMM — the offline 1/5-approximation baseline of Moumoulidou et
/// al. [32] for small `k` and `m`.
///
/// Builds a per-group GMM coreset of size `min(k, |X_i|)` and enumerates
/// every fair combination (`k_i` elements from group `i`'s coreset),
/// returning the most diverse one. The enumeration count is
/// `Π_i C(k, k_i) = O(m^k)`; the paper notes it "cannot scale to k > 10
/// and m > 5", so combinations above `max_combinations` fail with
/// `Unsupported` (the harness skips FairGMM exactly where the paper does).
struct FairGmmOptions {
  uint64_t max_combinations = 5'000'000;
  size_t start_index = 0;
};

Result<Solution> FairGmm(const Dataset& dataset,
                         const FairnessConstraint& constraint,
                         const FairGmmOptions& options = {});

}  // namespace fdm

#endif  // FDM_BASELINES_FAIR_GMM_H_
