#include "baselines/fair_gmm.h"

#include <limits>
#include <vector>

#include "core/diversity.h"
#include "core/gmm.h"
#include "core/kernel_workspace.h"
#include "util/check.h"

namespace fdm {
namespace {

/// Number of ways to choose `r` of `n`, saturating at 2^63-1.
uint64_t Choose(uint64_t n, uint64_t r) {
  if (r > n) return 0;
  r = std::min(r, n - r);
  uint64_t result = 1;
  for (uint64_t i = 1; i <= r; ++i) {
    const uint64_t num = n - r + i;
    if (result > std::numeric_limits<uint64_t>::max() / num) {
      return std::numeric_limits<uint64_t>::max();
    }
    result = result * num / i;
  }
  return result;
}

/// Depth-first enumeration over groups, choosing combinations within each
/// group's coreset; prunes partial selections whose running min pairwise
/// distance cannot beat the incumbent.
class Enumerator {
 public:
  Enumerator(const Dataset& dataset, const FairnessConstraint& constraint,
             const std::vector<std::vector<size_t>>& coresets)
      : dataset_(dataset), constraint_(constraint), coresets_(coresets),
        metric_(dataset.metric()),
        mirror_(dataset.dim(), static_cast<size_t>(constraint.TotalK())) {}

  void Run() { RecurseGroup(0, std::numeric_limits<double>::infinity()); }

  const std::vector<size_t>& best_indices() const { return best_indices_; }
  double best_diversity() const { return best_diversity_; }

 private:
  void RecurseGroup(int group, double min_so_far) {
    if (group == constraint_.num_groups()) {
      if (min_so_far > best_diversity_) {
        best_diversity_ = min_so_far;
        best_indices_ = current_;
      }
      return;
    }
    RecurseChoose(group, 0, constraint_.quotas[static_cast<size_t>(group)],
                  min_so_far);
  }

  void RecurseChoose(int group, size_t next, int remaining,
                     double min_so_far) {
    if (min_so_far <= best_diversity_) return;  // cannot improve
    if (remaining == 0) {
      RecurseGroup(group + 1, min_so_far);
      return;
    }
    const auto& coreset = coresets_[static_cast<size_t>(group)];
    if (next + static_cast<size_t>(remaining) > coreset.size()) return;
    for (size_t pos = next;
         pos + static_cast<size_t>(remaining) <= coreset.size(); ++pos) {
      const size_t row = coreset[pos];
      // One dispatched min-reduction over the mirrored partial selection
      // replaces the scalar member loop: the kernel minimum is the exact
      // minimum of the same per-pair values (squared diffs are
      // sign-insensitive), so the pruning decisions are bit-identical.
      double with_row = min_so_far;
      const double d = mirror_.MinDistanceTo(dataset_.Point(row), metric_);
      if (d < with_row) with_row = d;
      if (with_row <= best_diversity_) continue;
      current_.push_back(row);
      mirror_.Append(dataset_.At(row));
      RecurseChoose(group, pos + 1, remaining - 1, with_row);
      current_.pop_back();
      mirror_.RemoveLast();
    }
  }

  const Dataset& dataset_;
  const FairnessConstraint& constraint_;
  const std::vector<std::vector<size_t>>& coresets_;
  Metric metric_;
  std::vector<size_t> current_;
  std::vector<size_t> best_indices_;
  /// `current_` mirrored into the kernel block layout (push/pop in step).
  KernelWorkspace mirror_;
  double best_diversity_ = -1.0;
};

}  // namespace

Result<Solution> FairGmm(const Dataset& dataset,
                         const FairnessConstraint& constraint,
                         const FairGmmOptions& options) {
  if (Status s = constraint.Validate(); !s.ok()) return s;
  if (constraint.num_groups() != dataset.num_groups()) {
    return Status::InvalidArgument("constraint/dataset group mismatch");
  }
  const auto group_sizes = dataset.GroupSizes();
  if (Status s = constraint.ValidateAgainst(group_sizes); !s.ok()) return s;
  const int m = constraint.num_groups();
  const int k = constraint.TotalK();

  // Applicability guard: the enumeration count is Π_i C(|coreset_i|, k_i).
  uint64_t combinations = 1;
  for (int g = 0; g < m; ++g) {
    const uint64_t coreset_size =
        std::min<uint64_t>(static_cast<uint64_t>(k),
                           group_sizes[static_cast<size_t>(g)]);
    const uint64_t c = Choose(
        coreset_size,
        static_cast<uint64_t>(constraint.quotas[static_cast<size_t>(g)]));
    if (c == 0) return Status::Infeasible("group smaller than its quota");
    if (combinations > options.max_combinations / std::max<uint64_t>(c, 1)) {
      return Status::Unsupported(
          "FairGMM enumeration too large (O(m^k)); the paper limits it to "
          "k <= 10 and m <= 5");
    }
    combinations *= c;
  }

  std::vector<std::vector<size_t>> coresets(static_cast<size_t>(m));
  for (int g = 0; g < m; ++g) {
    const std::vector<size_t> rows = RowsOfGroup(dataset, g);
    coresets[static_cast<size_t>(g)] =
        GreedyGmm(dataset, rows, static_cast<size_t>(k), {},
                  options.start_index % rows.size());
  }

  Enumerator enumerator(dataset, constraint, coresets);
  enumerator.Run();
  if (enumerator.best_indices().empty()) {
    return Status::Infeasible("FairGMM found no fair combination");
  }
  Solution solution = Solution::FromIndices(dataset, enumerator.best_indices());
  FDM_DCHECK(SatisfiesQuotas(solution.points, constraint.quotas));
  return solution;
}

}  // namespace fdm
