#ifndef FDM_BASELINES_MAX_SUM_GREEDY_H_
#define FDM_BASELINES_MAX_SUM_GREEDY_H_

#include <vector>

#include "data/dataset.h"

namespace fdm {

/// Greedy 1/2-approximation for *max-sum* dispersion (maximize the sum of
/// pairwise distances): start from the farthest pair, then repeatedly add
/// the point with the largest total distance to the current selection.
///
/// Only used to reproduce Fig. 1's contrast between the max-sum and
/// max-min diversity notions (max-sum crowds the margins; max-min covers
/// uniformly). O(n²) for the initial pair — intended for the small 2-D
/// illustration datasets.
std::vector<size_t> MaxSumGreedy(const Dataset& dataset, size_t k);

}  // namespace fdm

#endif  // FDM_BASELINES_MAX_SUM_GREEDY_H_
