#ifndef FDM_BASELINES_FAIR_SWAP_H_
#define FDM_BASELINES_FAIR_SWAP_H_

#include "core/fairness.h"
#include "core/solution.h"
#include "data/dataset.h"
#include "util/status.h"

namespace fdm {

/// FairSwap — the offline 1/4-approximation baseline of Moumoulidou et
/// al. [32] for fair diversity maximization with `m = 2`.
///
/// 1. Run GMM on the whole dataset for a group-blind solution of size `k`.
/// 2. Run GMM on each group `X_i` for donor pools of size `k_i`.
/// 3. If the blind solution is unfair, balance it exactly like SFDM1's
///    post-processing: greedily insert donors of the under-filled group
///    (farthest from the same-group selection), then delete over-filled
///    elements closest to the under-filled side.
///
/// Unlike SFDM1 this requires the full dataset in memory and O(nk) time —
/// it is the "offline prior art" row of Table II.
///
/// `start_index` selects GMM's deterministic first point (varied across the
/// repetitions of an experiment).
Result<Solution> FairSwap(const Dataset& dataset,
                          const FairnessConstraint& constraint,
                          size_t start_index = 0);

}  // namespace fdm

#endif  // FDM_BASELINES_FAIR_SWAP_H_
