#include "baselines/max_sum_greedy.h"

#include <limits>
#include <numeric>

#include "core/kernel_workspace.h"
#include "util/check.h"

namespace fdm {

std::vector<size_t> MaxSumGreedy(const Dataset& dataset, size_t k) {
  std::vector<size_t> selected;
  const size_t n = dataset.size();
  if (k == 0 || n == 0) return selected;
  if (k == 1) return {0};
  const Metric metric = dataset.metric();

  // Every row mirrored into the kernel block layout once: the farthest
  // pair, the sum initialization, and each incremental update are then one
  // dispatched per-point scan per row/pick instead of n scalar Metric
  // calls. Each finished entry is bit-identical to the scalar distance
  // (squared diffs are sign-insensitive), and the scans are consumed in
  // the scalar loops' exact order, so the selection is unchanged.
  KernelWorkspace workspace(dataset.dim(), n);
  std::vector<size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), size_t{0});
  workspace.AssignRows(dataset, all_rows);
  std::vector<double> raw;

  // Farthest pair (exact, O(n^2) — illustration-scale datasets only).
  size_t best_i = 0;
  size_t best_j = 1 % n;
  double best_d = -1.0;
  for (size_t i = 0; i + 1 < n; ++i) {
    workspace.RawDistancesTo(dataset.Point(i), metric, raw);
    for (size_t j = i + 1; j < n; ++j) {
      const double d = metric.FinishDistance(raw[j]);
      if (d > best_d) {
        best_d = d;
        best_i = i;
        best_j = j;
      }
    }
  }
  selected = {best_i, best_j};

  // sum_dist[x] = Σ_{s ∈ selected} d(x, s), maintained incrementally.
  std::vector<double> sum_dist(n, 0.0);
  std::vector<char> in_selected(n, 0);
  in_selected[best_i] = in_selected[best_j] = 1;
  std::vector<double> raw_j;
  workspace.RawDistancesTo(dataset.Point(best_i), metric, raw);
  workspace.RawDistancesTo(dataset.Point(best_j), metric, raw_j);
  for (size_t x = 0; x < n; ++x) {
    sum_dist[x] =
        metric.FinishDistance(raw[x]) + metric.FinishDistance(raw_j[x]);
  }

  while (selected.size() < std::min(k, n)) {
    size_t best = n;
    double best_sum = -std::numeric_limits<double>::infinity();
    for (size_t x = 0; x < n; ++x) {
      if (in_selected[x]) continue;
      if (sum_dist[x] > best_sum) {
        best_sum = sum_dist[x];
        best = x;
      }
    }
    FDM_CHECK(best < n);
    selected.push_back(best);
    in_selected[best] = 1;
    workspace.RawDistancesTo(dataset.Point(best), metric, raw);
    for (size_t x = 0; x < n; ++x) {
      sum_dist[x] += metric.FinishDistance(raw[x]);
    }
  }
  return selected;
}

}  // namespace fdm
