#include "baselines/fair_swap.h"

#include <limits>
#include <string>
#include <vector>

#include "core/diversity.h"
#include "core/gmm.h"
#include "core/kernel_workspace.h"
#include "util/check.h"

namespace fdm {

Result<Solution> FairSwap(const Dataset& dataset,
                          const FairnessConstraint& constraint,
                          size_t start_index) {
  if (Status s = constraint.Validate(); !s.ok()) return s;
  if (constraint.num_groups() != 2) {
    return Status::Unsupported("FairSwap requires exactly 2 groups, got " +
                               std::to_string(constraint.num_groups()));
  }
  if (dataset.num_groups() != 2) {
    return Status::InvalidArgument("dataset does not have 2 groups");
  }
  const auto group_sizes = dataset.GroupSizes();
  if (Status s = constraint.ValidateAgainst(group_sizes); !s.ok()) return s;
  const int k = constraint.TotalK();
  if (static_cast<size_t>(k) > dataset.size()) {
    return Status::Infeasible("k exceeds dataset size");
  }
  const Metric metric = dataset.metric();

  // Group-blind GMM solution.
  std::vector<size_t> universe(dataset.size());
  for (size_t i = 0; i < universe.size(); ++i) universe[i] = i;
  std::vector<size_t> blind = GreedyGmm(
      dataset, universe, static_cast<size_t>(k), {},
      start_index % dataset.size());

  // Per-group counts; identify the under-filled group (if any).
  int counts[2] = {0, 0};
  for (const size_t row : blind) {
    ++counts[dataset.GroupOf(row)];
  }
  int under = -1;
  for (int g = 0; g < 2; ++g) {
    if (counts[g] < constraint.quotas[static_cast<size_t>(g)]) under = g;
  }

  if (under >= 0) {
    // Donor pool: GMM on the under-filled group only.
    const std::vector<size_t> group_rows =
        RowsOfGroup(dataset, static_cast<int32_t>(under));
    const std::vector<size_t> donors = GreedyGmm(
        dataset, group_rows,
        static_cast<size_t>(constraint.quotas[static_cast<size_t>(under)]),
        {}, start_index % group_rows.size());

    auto in_blind = [&blind](size_t row) {
      for (const size_t r : blind) {
        if (r == row) return true;
      }
      return false;
    };
    // The under-filled side of the solution, mirrored into the kernel
    // block layout: both swap loops scan only that side, so each scan is
    // one dispatched min-reduction over the same point set the scalar
    // filter walked (donors join on insertion; victims are never in it) —
    // the exact minimum of the same per-pair values, so every
    // argmax/argmin decision matches the scalar loops bit for bit.
    KernelWorkspace under_side(dataset.dim(), static_cast<size_t>(k) + 1);
    for (const size_t r : blind) {
      if (dataset.GroupOf(r) == under) under_side.Append(dataset.At(r));
    }
    auto distance_to_under_side = [&](size_t row) {
      return under_side.MinDistanceTo(dataset.Point(row), metric);
    };

    // Insert donors farthest from the under-filled side of the solution.
    int have = counts[under];
    while (have < constraint.quotas[static_cast<size_t>(under)]) {
      double best_distance = -1.0;
      size_t best_row = dataset.size();
      for (const size_t d : donors) {
        if (in_blind(d)) continue;
        const double dist = distance_to_under_side(d);
        if (dist > best_distance) {
          best_distance = dist;
          best_row = d;
        }
      }
      FDM_CHECK_MSG(best_row < dataset.size(),
                    "FairSwap: donor pool exhausted");
      blind.push_back(best_row);
      under_side.Append(dataset.At(best_row));
      ++have;
    }

    // Delete over-filled elements closest to the under-filled side.
    while (static_cast<int>(blind.size()) > k) {
      double best_distance = std::numeric_limits<double>::infinity();
      size_t victim_pos = blind.size();
      for (size_t pos = 0; pos < blind.size(); ++pos) {
        if (dataset.GroupOf(blind[pos]) == under) continue;
        const double dist = distance_to_under_side(blind[pos]);
        if (dist < best_distance) {
          best_distance = dist;
          victim_pos = pos;
        }
      }
      FDM_CHECK(victim_pos < blind.size());
      blind.erase(blind.begin() + static_cast<ptrdiff_t>(victim_pos));
    }
  }

  Solution solution = Solution::FromIndices(dataset, blind);
  FDM_DCHECK(SatisfiesQuotas(solution.points, constraint.quotas));
  return solution;
}

}  // namespace fdm
