#ifndef FDM_BASELINES_FAIR_FLOW_H_
#define FDM_BASELINES_FAIR_FLOW_H_

#include "core/fairness.h"
#include "core/solution.h"
#include "data/dataset.h"
#include "util/status.h"

namespace fdm {

/// Options for the FairFlow baseline.
struct FairFlowOptions {
  /// Geometric step of the diversity-guess search (denser = slower,
  /// slightly better solutions).
  double epsilon = 0.1;
  /// GMM start index (varied across experiment repetitions).
  size_t start_index = 0;
};

/// FairFlow — offline `1/(3m−1)`-approximation baseline of Moumoulidou et
/// al. [32] for fair diversity maximization with arbitrary `m`.
///
/// Reconstruction (no reference implementation is available offline; see
/// DESIGN.md §2.3): per-group GMM coresets of size `min(k, |X_i|)` are
/// merged into a candidate pool; for each guess `γ` of the optimum, taken
/// from a descending geometric ladder over the pool's distance range, the
/// pool is single-linkage clustered at threshold `γ/(m+1)` and a flow
/// network (source → group `i` with capacity `k_i` → pool elements →
/// clusters with capacity 1 → sink) is solved with Dinic's algorithm; the
/// first `γ` whose max flow reaches `k` yields the selection (one element
/// per saturated element-edge).
///
/// The defining behaviours of the original are preserved: offline (full
/// dataset, O(nk) GMM passes), flow-based selection that picks *arbitrary*
/// cluster representatives (no farthest-first refinement), and therefore
/// solution quality that degrades markedly as `m` grows — exactly the
/// contrast the paper's Table II and Figs. 6/10/11 exercise against SFDM2.
Result<Solution> FairFlow(const Dataset& dataset,
                          const FairnessConstraint& constraint,
                          const FairFlowOptions& options = {});

}  // namespace fdm

#endif  // FDM_BASELINES_FAIR_FLOW_H_
