#include "baselines/fair_flow.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/diversity.h"
#include "core/gmm.h"
#include "flow/dinic.h"
#include "util/check.h"
#include "util/union_find.h"

namespace fdm {
namespace {

/// Single-linkage cluster labels of `pool` rows at `threshold`.
std::vector<int> ClusterPool(const Dataset& dataset,
                             const std::vector<size_t>& pool,
                             double threshold) {
  const int l = static_cast<int>(pool.size());
  const Metric metric = dataset.metric();
  UnionFind uf(l);
  for (int i = 0; i < l; ++i) {
    for (int j = i + 1; j < l; ++j) {
      if (uf.Connected(i, j)) continue;
      if (metric(dataset.Point(pool[static_cast<size_t>(i)]),
                 dataset.Point(pool[static_cast<size_t>(j)])) < threshold) {
        uf.Union(i, j);
      }
    }
  }
  return uf.DenseLabels();
}

/// Solves the group→element→cluster flow; returns the selected pool
/// positions if the max flow reaches `k`, otherwise an empty vector.
std::vector<int> SolveFlow(const Dataset& dataset,
                           const std::vector<size_t>& pool,
                           const std::vector<int>& cluster_of,
                           const FairnessConstraint& constraint) {
  const int m = constraint.num_groups();
  const int l = static_cast<int>(pool.size());
  int num_clusters = 0;
  for (const int c : cluster_of) num_clusters = std::max(num_clusters, c + 1);

  // Node layout: 0 = source, 1..m = groups, m+1..m+l = elements,
  // m+l+1..m+l+c = clusters, last = sink.
  const int source = 0;
  const int first_group = 1;
  const int first_element = first_group + m;
  const int first_cluster = first_element + l;
  const int sink = first_cluster + num_clusters;
  Dinic dinic(sink + 1);

  for (int g = 0; g < m; ++g) {
    dinic.AddEdge(source, first_group + g,
                  constraint.quotas[static_cast<size_t>(g)]);
  }
  std::vector<int> element_edges(static_cast<size_t>(l));
  for (int e = 0; e < l; ++e) {
    const int g = dataset.GroupOf(pool[static_cast<size_t>(e)]);
    element_edges[static_cast<size_t>(e)] =
        dinic.AddEdge(first_group + g, first_element + e, 1);
    dinic.AddEdge(first_element + e,
                  first_cluster + cluster_of[static_cast<size_t>(e)], 1);
  }
  for (int c = 0; c < num_clusters; ++c) {
    dinic.AddEdge(first_cluster + c, sink, 1);
  }

  const int k = constraint.TotalK();
  if (dinic.MaxFlow(source, sink) < k) return {};
  std::vector<int> selected;
  for (int e = 0; e < l; ++e) {
    if (dinic.FlowOn(element_edges[static_cast<size_t>(e)]) > 0) {
      selected.push_back(e);
    }
  }
  FDM_CHECK(static_cast<int>(selected.size()) == k);
  return selected;
}

}  // namespace

Result<Solution> FairFlow(const Dataset& dataset,
                          const FairnessConstraint& constraint,
                          const FairFlowOptions& options) {
  if (Status s = constraint.Validate(); !s.ok()) return s;
  if (constraint.num_groups() != dataset.num_groups()) {
    return Status::InvalidArgument("constraint/dataset group mismatch");
  }
  const auto group_sizes = dataset.GroupSizes();
  if (Status s = constraint.ValidateAgainst(group_sizes); !s.ok()) return s;
  if (!(options.epsilon > 0.0 && options.epsilon < 1.0)) {
    return Status::InvalidArgument("epsilon must be in (0,1)");
  }
  const int m = constraint.num_groups();
  const int k = constraint.TotalK();

  // Per-group GMM coresets of size min(k, |X_i|), merged into the pool.
  std::vector<size_t> pool;
  for (int g = 0; g < m; ++g) {
    const std::vector<size_t> rows = RowsOfGroup(dataset, g);
    const std::vector<size_t> coreset =
        GreedyGmm(dataset, rows, static_cast<size_t>(k), {},
                  options.start_index % rows.size());
    pool.insert(pool.end(), coreset.begin(), coreset.end());
  }

  // Candidate guesses: pairwise pool distances give the full relevant
  // range; sweep a geometric ladder downward from the largest.
  const Metric metric = dataset.metric();
  double gamma_hi = 0.0;
  double gamma_lo = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i + 1; j < pool.size(); ++j) {
      const double d = metric(dataset.Point(pool[i]), dataset.Point(pool[j]));
      if (d > gamma_hi) gamma_hi = d;
      if (d > 0.0 && d < gamma_lo) gamma_lo = d;
    }
  }
  if (gamma_hi <= 0.0) {
    return Status::Infeasible("candidate pool is degenerate (all duplicates)");
  }
  if (!std::isfinite(gamma_lo)) gamma_lo = gamma_hi;

  for (double gamma = gamma_hi; gamma >= gamma_lo * (1.0 - options.epsilon);
       gamma *= (1.0 - options.epsilon)) {
    const std::vector<int> cluster_of =
        ClusterPool(dataset, pool, gamma / static_cast<double>(m + 1));
    const std::vector<int> chosen =
        SolveFlow(dataset, pool, cluster_of, constraint);
    if (chosen.empty()) continue;
    std::vector<size_t> rows;
    rows.reserve(chosen.size());
    for (const int pos : chosen) rows.push_back(pool[static_cast<size_t>(pos)]);
    Solution solution = Solution::FromIndices(dataset, rows);
    FDM_DCHECK(SatisfiesQuotas(solution.points, constraint.quotas));
    return solution;
  }
  return Status::Infeasible(
      "FairFlow found no feasible selection at any guess; constraint too "
      "tight for the candidate pool");
}

}  // namespace fdm
