#ifndef FDM_EXACT_BRUTE_FORCE_H_
#define FDM_EXACT_BRUTE_FORCE_H_

#include <vector>

#include "core/fairness.h"
#include "core/matroid.h"
#include "data/dataset.h"

namespace fdm {

/// Exact solvers by exhaustive enumeration — test oracles for the
/// approximation-ratio property tests. Only usable on tiny instances
/// (DM/FDM enumerate C(n,k) subsets with branch-and-bound pruning; keep
/// `n` ≤ ~20 and `k` ≤ ~8).

/// Result of an exact diversity-maximization solve.
struct ExactSolution {
  std::vector<size_t> indices;
  double diversity = 0.0;
};

/// Exact unconstrained max-min diversity maximization (`OPT`).
ExactSolution ExactDiversityMaximization(const Dataset& dataset, int k);

/// Exact fair max-min diversity maximization (`OPT_f`, Definition 1).
/// Returns an empty solution with diversity 0 if the constraint is
/// infeasible on the dataset.
ExactSolution ExactFairDiversityMaximization(const Dataset& dataset,
                                             const FairnessConstraint& c);

/// Size of a maximum-cardinality common independent set of two matroids,
/// by subset enumeration over ground sets of at most 20 elements.
int ExactMaxCommonIndependentSetSize(const Matroid& m1, const Matroid& m2);

}  // namespace fdm

#endif  // FDM_EXACT_BRUTE_FORCE_H_
