#include "exact/brute_force.h"

#include <limits>

#include "core/diversity.h"
#include "core/kernel_workspace.h"
#include "util/check.h"

namespace fdm {
namespace {

/// Branch-and-bound over k-combinations in lexicographic order.
/// `min_so_far` is div of the current partial selection; max-min diversity
/// only decreases as elements join, so partials at or below the incumbent
/// are pruned.
class Enumerator {
 public:
  Enumerator(const Dataset& dataset, const FairnessConstraint* constraint,
             int k)
      : dataset_(dataset), constraint_(constraint), k_(k),
        metric_(dataset.metric()),
        mirror_(dataset.dim(), static_cast<size_t>(k)) {
    if (constraint_ != nullptr) {
      remaining_quota_ = constraint_->quotas;
    }
  }

  ExactSolution Run() {
    current_.clear();
    mirror_.Clear();
    Recurse(0, std::numeric_limits<double>::infinity());
    return best_;
  }

 private:
  void Recurse(size_t next, double min_so_far) {
    if (static_cast<int>(current_.size()) == k_) {
      if (min_so_far > best_.diversity) {
        best_.diversity = min_so_far;
        best_.indices = current_;
      }
      return;
    }
    const size_t needed = static_cast<size_t>(k_) - current_.size();
    if (next + needed > dataset_.size()) return;
    if (min_so_far <= best_.diversity) return;  // cannot improve

    for (size_t i = next; i + needed <= dataset_.size(); ++i) {
      const int32_t g = dataset_.GroupOf(i);
      if (constraint_ != nullptr &&
          remaining_quota_[static_cast<size_t>(g)] == 0) {
        continue;
      }
      // div of current ∪ {i}: one dispatched min-reduction over the
      // mirrored partial selection — the exact minimum of the same
      // per-pair values the scalar member loop produced, so pruning
      // decisions are bit-identical.
      double with_i = min_so_far;
      const double d = mirror_.MinDistanceTo(dataset_.Point(i), metric_);
      if (d < with_i) with_i = d;
      if (with_i <= best_.diversity) continue;
      current_.push_back(i);
      mirror_.Append(dataset_.At(i));
      if (constraint_ != nullptr) --remaining_quota_[static_cast<size_t>(g)];
      Recurse(i + 1, with_i);
      if (constraint_ != nullptr) ++remaining_quota_[static_cast<size_t>(g)];
      current_.pop_back();
      mirror_.RemoveLast();
    }
  }

  const Dataset& dataset_;
  const FairnessConstraint* constraint_;
  int k_;
  Metric metric_;
  std::vector<size_t> current_;
  std::vector<int> remaining_quota_;
  /// `current_` mirrored into the kernel block layout (push/pop in step).
  KernelWorkspace mirror_;
  ExactSolution best_;
};

}  // namespace

ExactSolution ExactDiversityMaximization(const Dataset& dataset, int k) {
  FDM_CHECK(k >= 1);
  Enumerator e(dataset, nullptr, k);
  return e.Run();
}

ExactSolution ExactFairDiversityMaximization(const Dataset& dataset,
                                             const FairnessConstraint& c) {
  FDM_CHECK(c.Validate().ok());
  FDM_CHECK(c.num_groups() == dataset.num_groups());
  Enumerator e(dataset, &c, c.TotalK());
  return e.Run();
}

int ExactMaxCommonIndependentSetSize(const Matroid& m1, const Matroid& m2) {
  const int n = m1.GroundSize();
  FDM_CHECK(n == m2.GroundSize());
  FDM_CHECK_MSG(n <= 20, "exact matroid intersection limited to n <= 20");
  int best = 0;
  std::vector<int> members;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    const int size = __builtin_popcount(mask);
    if (size <= best) continue;
    members.clear();
    for (int e = 0; e < n; ++e) {
      if (mask & (1u << e)) members.push_back(e);
    }
    if (m1.IsIndependent(members) && m2.IsIndependent(members)) {
      best = size;
    }
  }
  return best;
}

}  // namespace fdm
