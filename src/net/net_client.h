#ifndef FDM_NET_NET_CLIENT_H_
#define FDM_NET_NET_CLIENT_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace fdm::net {

/// Parses `tcp://host:port` (the serving address form `--follow` and the
/// socket replication source accept). Returns false when `address` is not
/// of that form — callers fall back to treating it as a filesystem path.
bool ParseTcpAddress(const std::string& address, std::string* host,
                     int* port);

/// Blocking client for the framed TCP protocol (net/frame.h): each `Send`
/// writes one length-delimited frame, each `Recv` reads exactly one.
/// `Call` pairs them — correct whenever the sent text is one request
/// (the server replies one frame per request; a blank line would produce
/// none and desynchronize a Call, so don't send one).
///
/// Not thread-safe; one connection per thread. Any I/O error poisons the
/// connection (`connected()` turns false) — reconnect by `Connect`ing
/// again.
class NetClient {
 public:
  static Result<NetClient> Connect(const std::string& host, int port);

  NetClient() = default;
  NetClient(NetClient&& other) noexcept;
  NetClient& operator=(NetClient&& other) noexcept;
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  ~NetClient();

  Status Send(std::string_view payload);
  Result<std::string> Recv();
  Result<std::string> Call(std::string_view request);

  bool connected() const { return fd_ >= 0; }
  void Close();

 private:
  explicit NetClient(int fd) : fd_(fd) {}
  int fd_ = -1;
  // Bytes read past the frame a Recv returned. Pipelined replies can land
  // in one TCP segment, so the surplus must survive until the next Recv.
  std::string in_;
};

}  // namespace fdm::net

#endif  // FDM_NET_NET_CLIENT_H_
