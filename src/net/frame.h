#ifndef FDM_NET_FRAME_H_
#define FDM_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace fdm::net {

/// Wire framing of the TCP transport: every request and every response
/// travels as one length-delimited frame — a 4-byte big-endian payload
/// length followed by exactly that many payload bytes. The payload is the
/// same text the stdin transport speaks (a command line, plus any payload
/// lines the command announces, '\n'-separated), so a frame is just a
/// length-delimited chunk of the existing line protocol and the two
/// transports produce byte-identical replies by construction. Responses
/// may carry binary bytes (the replication fetch verbs); the length prefix
/// is what makes that safe to pipeline.
///
/// A frame must contain whole requests: a request's announced payload
/// lines (OBSERVEB) cannot spill into the next frame — the dispatcher
/// answers `ERR ... stream ended mid-batch` instead, exactly as the stdin
/// transport does when stdin ends mid-batch. One frame may carry several
/// complete requests; each produces its own response frame, in order.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Upper bound on a single frame's payload. Large enough for a bulk
/// OBSERVEB batch or a shipped snapshot, small enough that one bad client
/// cannot balloon a server buffer; oversize headers are a protocol error
/// and close the connection.
inline constexpr size_t kMaxFramePayloadBytes = 64u << 20;

/// Appends the 4-byte header + payload to `*out`.
void AppendFrame(std::string_view payload, std::string* out);

enum class FrameParse {
  kNeedMore,  // fewer bytes than one header + payload; read more
  kFrame,     // *payload and *consumed are set
  kError,     // malformed/oversize header; the connection must close
};

/// Parses the frame at the head of `buf` without copying. On `kFrame`,
/// `*payload` views into `buf` and `*consumed` is header + payload size.
/// `max_payload` guards the header before any allocation happens.
FrameParse ParseFrame(std::string_view buf, std::string_view* payload,
                      size_t* consumed,
                      size_t max_payload = kMaxFramePayloadBytes);

}  // namespace fdm::net

#endif  // FDM_NET_FRAME_H_
