#ifndef FDM_NET_ADMISSION_H_
#define FDM_NET_ADMISSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace fdm::net {

/// Overload policy of the TCP front end. The asymmetry that motivates it:
/// a cached SOLVE is answered in ~1µs, a cache-missing one recomputes the
/// full post-processing (~750× slower per BENCH_solve.json), so a single
/// hot key replaying cold SOLVEs can absorb every serving thread while
/// cheap traffic queues behind it. Admission keeps overload survivable by
/// answering `ERR shed ...` immediately instead of queueing unboundedly —
/// a shed reply is a complete, well-framed response, so pipelined clients
/// stay in sync and can retry.
struct AdmissionOptions {
  /// Sustained requests/second each session may issue across all
  /// connections (token bucket; 0 = unlimited). Only requests naming a
  /// session are counted — LIST/METRICS/QUIT are exempt.
  double session_rate = 0.0;
  /// Bucket depth (burst allowance). 0 = same as `session_rate`.
  double session_burst = 0.0;
  /// Cache-missing SOLVEs admitted concurrently (queued + executing)
  /// across the whole server; beyond it they shed. 0 = unlimited.
  size_t cold_solve_cap = 0;
};

/// Classic token bucket over a caller-supplied monotonic clock (seconds):
/// refills continuously at `rate`, holds at most `burst`, and admits a
/// request by spending one token.
class TokenBucket {
 public:
  TokenBucket(double rate, double burst, double now_sec)
      : rate_(rate), burst_(burst), tokens_(burst), last_sec_(now_sec) {}

  bool TryAcquire(double now_sec) {
    tokens_ += (now_sec - last_sec_) * rate_;
    if (tokens_ > burst_) tokens_ = burst_;
    last_sec_ = now_sec;
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_sec_;
};

/// Server-wide admission state: one token bucket per session name plus the
/// global cold-SOLVE occupancy counter. Thread-safe; every event loop and
/// solve worker shares one controller. Shed decisions are counted into the
/// metrics plane (`fdm_net_shed_*_total`).
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Spends one token from `session`'s bucket; false = shed (rate).
  /// Always true when rate limiting is off.
  bool AdmitSessionRequest(const std::string& session);

  /// Claims a cold-SOLVE slot; false = shed (capacity). A successful
  /// claim must be paired with `LeaveColdSolve` when the solve finishes.
  bool TryEnterColdSolve();
  void LeaveColdSolve();

  uint64_t rate_shed_total() const;
  uint64_t cold_shed_total() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  const AdmissionOptions options_;
  mutable std::mutex mu_;  // buckets_ + counters below
  std::map<std::string, TokenBucket> buckets_;
  size_t cold_in_flight_ = 0;
  uint64_t rate_shed_total_ = 0;
  uint64_t cold_shed_total_ = 0;
};

}  // namespace fdm::net

#endif  // FDM_NET_ADMISSION_H_
