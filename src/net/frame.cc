#include "net/frame.h"

namespace fdm::net {

void AppendFrame(std::string_view payload, std::string* out) {
  const uint32_t n = static_cast<uint32_t>(payload.size());
  out->push_back(static_cast<char>((n >> 24) & 0xff));
  out->push_back(static_cast<char>((n >> 16) & 0xff));
  out->push_back(static_cast<char>((n >> 8) & 0xff));
  out->push_back(static_cast<char>(n & 0xff));
  out->append(payload);
}

FrameParse ParseFrame(std::string_view buf, std::string_view* payload,
                      size_t* consumed, size_t max_payload) {
  if (buf.size() < kFrameHeaderBytes) return FrameParse::kNeedMore;
  const auto b = [&](size_t i) {
    return static_cast<uint32_t>(static_cast<unsigned char>(buf[i]));
  };
  const uint32_t n = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
  if (n > max_payload) return FrameParse::kError;
  if (buf.size() < kFrameHeaderBytes + n) return FrameParse::kNeedMore;
  *payload = buf.substr(kFrameHeaderBytes, n);
  *consumed = kFrameHeaderBytes + n;
  return FrameParse::kFrame;
}

}  // namespace fdm::net
