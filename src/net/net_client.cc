#include "net/net_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "net/frame.h"

namespace fdm::net {

bool ParseTcpAddress(const std::string& address, std::string* host,
                     int* port) {
  constexpr std::string_view kScheme = "tcp://";
  if (address.compare(0, kScheme.size(), kScheme) != 0) return false;
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon < kScheme.size() ||
      colon + 1 >= address.size()) {
    return false;
  }
  int parsed = 0;
  for (size_t i = colon + 1; i < address.size(); ++i) {
    const char c = address[i];
    if (c < '0' || c > '9' || parsed > 65535) return false;
    parsed = parsed * 10 + (c - '0');
  }
  if (parsed < 1 || parsed > 65535) return false;
  *host = address.substr(kScheme.size(), colon - kScheme.size());
  *port = parsed;
  return !host->empty();
}

Result<NetClient> NetClient::Connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect " + host + ":" + std::to_string(port) +
                           ": " + err);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return NetClient(fd);
}

NetClient::NetClient(NetClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), in_(std::move(other.in_)) {
  other.in_.clear();
}

NetClient& NetClient::operator=(NetClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    in_ = std::move(other.in_);
    other.in_.clear();
  }
  return *this;
}

NetClient::~NetClient() { Close(); }

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
}

Status NetClient::Send(std::string_view payload) {
  if (fd_ < 0) return Status::IoError("not connected");
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(payload, &frame);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + sent, frame.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      const std::string err =
          n < 0 ? std::strerror(errno) : "connection closed";
      Close();
      return Status::IoError("send: " + err);
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> NetClient::Recv() {
  if (fd_ < 0) return Status::IoError("not connected");
  while (true) {
    std::string_view payload;
    size_t consumed = 0;
    const FrameParse parsed = ParseFrame(in_, &payload, &consumed);
    if (parsed == FrameParse::kFrame) {
      std::string reply(payload);
      in_.erase(0, consumed);
      return reply;
    }
    if (parsed == FrameParse::kError) {
      Close();
      return Status::IoError("oversized reply frame");
    }
    char chunk[64 << 10];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      const std::string err =
          n < 0 ? std::strerror(errno) : "connection closed mid-reply";
      Close();
      return Status::IoError("recv: " + err);
    }
    in_.append(chunk, static_cast<size_t>(n));
  }
}

Result<std::string> NetClient::Call(std::string_view request) {
  if (Status s = Send(request); !s.ok()) return s;
  return Recv();
}

}  // namespace fdm::net
