#include "net/tcp_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "net/dispatch.h"
#include "net/frame.h"
#include "obs/metrics.h"

namespace fdm::net {
namespace {

struct NetCounters {
  obs::Counter& connections_total;
  obs::Gauge& connections_open;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& protocol_errors;
};

NetCounters& Counters() {
  auto& reg = obs::MetricsRegistry::Global();
  static NetCounters c{
      reg.GetCounter("fdm_net_connections_total", "TCP connections accepted"),
      reg.GetGauge("fdm_net_connections_open", "TCP connections currently open"),
      reg.GetCounter("fdm_net_bytes_in_total", "Bytes read from TCP clients"),
      reg.GetCounter("fdm_net_bytes_out_total", "Bytes written to TCP clients"),
      reg.GetCounter("fdm_net_protocol_errors_total",
                     "Connections closed on malformed frames"),
  };
  return c;
}

/// Per-connection state. Owned by exactly one event loop; only that
/// loop's thread touches it, except that a solve worker holds a
/// shared_ptr while an offloaded SOLVE is in flight (it never mutates —
/// completions are applied by the owning loop).
struct Conn {
  int fd = -1;
  size_t loop = 0;
  std::string in;          // raw bytes not yet parsed into a frame
  std::string frame_rest;  // requests of the current frame not yet run
  std::string out;         // reply bytes not yet written
  bool busy = false;       // offloaded cold SOLVE in flight
  bool want_out = false;   // EPOLLOUT currently armed
  bool closing = false;    // QUIT: flush `out`, then close
  bool closed = false;     // fd gone; late completions are dropped
};

struct SolveTask {
  std::shared_ptr<Conn> conn;
  std::string line;
};

struct EventLoop {
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;
  std::map<int, std::shared_ptr<Conn>> conns;  // loop-thread only

  std::mutex mu;  // guards the two inboxes below
  std::vector<int> incoming;
  std::vector<std::pair<std::shared_ptr<Conn>, std::string>> completions;
};

void Wake(EventLoop& loop) {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(loop.event_fd, &one, sizeof(one));
}

}  // namespace

struct TcpServer::Impl {
  RequestDispatcher* dispatcher = nullptr;
  TcpServerOptions options;
  AdmissionController admission;
  int listen_fd = -1;
  int bound_port = 0;
  std::vector<std::unique_ptr<EventLoop>> loops;
  std::atomic<size_t> next_loop{0};
  std::atomic<bool> stopping{false};
  bool stopped = false;  // Stop() already joined everything

  std::mutex solve_mu;
  std::condition_variable solve_cv;
  std::deque<SolveTask> solve_queue;
  std::vector<std::thread> solve_threads;
  bool solve_stop = false;

  explicit Impl(RequestDispatcher* d, TcpServerOptions opts)
      : dispatcher(d),
        options(std::move(opts)),
        admission(options.admission) {}

  void AcceptReady();
  void AdoptConn(size_t loop_index, int fd);
  void ReadConn(EventLoop& loop, const std::shared_ptr<Conn>& conn);
  void Drive(EventLoop& loop, const std::shared_ptr<Conn>& conn);
  void FlushConn(EventLoop& loop, const std::shared_ptr<Conn>& conn);
  void CloseConn(EventLoop& loop, const std::shared_ptr<Conn>& conn);
  void HandleInbox(size_t loop_index);
  void LoopRun(size_t index);
  void SolveWorker();
  void PostCompletion(const std::shared_ptr<Conn>& conn, std::string reply);
};

void TcpServer::Impl::AcceptReady() {
  while (true) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient accept error: wait for epoll
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const size_t target =
        next_loop.fetch_add(1, std::memory_order_relaxed) % loops.size();
    if (target == 0) {
      AdoptConn(0, fd);  // the accepting loop
    } else {
      EventLoop& loop = *loops[target];
      {
        std::lock_guard<std::mutex> lock(loop.mu);
        loop.incoming.push_back(fd);
      }
      Wake(loop);
    }
  }
}

void TcpServer::Impl::AdoptConn(size_t loop_index, int fd) {
  EventLoop& loop = *loops[loop_index];
  auto conn = std::make_shared<Conn>();
  conn->fd = fd;
  conn->loop = loop_index;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  loop.conns.emplace(fd, std::move(conn));
  Counters().connections_total.Inc();
  Counters().connections_open.Add(1.0);
}

void TcpServer::Impl::ReadConn(EventLoop& loop,
                               const std::shared_ptr<Conn>& conn) {
  char buf[64 << 10];
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      Counters().bytes_in.Add(static_cast<uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // 0 = peer closed; <0 = hard error. Either way the conversation is
    // over — replies in flight have nowhere to go.
    CloseConn(loop, conn);
    return;
  }
}

void TcpServer::Impl::Drive(EventLoop& loop,
                            const std::shared_ptr<Conn>& conn) {
  while (!conn->busy && !conn->closing && !conn->closed) {
    if (conn->frame_rest.empty()) {
      std::string_view payload;
      size_t consumed = 0;
      const FrameParse parsed = ParseFrame(conn->in, &payload, &consumed);
      if (parsed == FrameParse::kNeedMore) break;
      if (parsed == FrameParse::kError) {
        Counters().protocol_errors.Inc();
        CloseConn(loop, conn);
        return;
      }
      conn->frame_rest.assign(payload);
      conn->in.erase(0, consumed);
      continue;  // empty frame: loop back and parse the next one
    }
    // Pop the request's command line off the frame.
    const size_t nl = conn->frame_rest.find('\n');
    std::string line;
    std::string rest;
    if (nl == std::string::npos) {
      line = std::move(conn->frame_rest);
    } else {
      line = conn->frame_rest.substr(0, nl);
      rest = conn->frame_rest.substr(nl + 1);
    }
    conn->frame_rest.clear();

    const RequestInfo info = dispatcher->Classify(line);
    if (info.verb.empty()) {  // blank line: no response frame
      conn->frame_rest = std::move(rest);
      continue;
    }
    StringLineSource payload_lines(rest);
    if (!info.session.empty() &&
        !admission.AdmitSessionRequest(info.session)) {
      // Shed, but stay in framing: the request's announced payload lines
      // are part of this frame and must be consumed with it.
      std::string discard;
      for (int64_t i = 0;
           i < info.payload_lines && payload_lines.NextLine(&discard); ++i) {
      }
      AppendFrame("ERR shed session '" + info.session +
                      "' over rate limit\n",
                  &conn->out);
      conn->frame_rest.assign(payload_lines.rest());
      continue;
    }
    if (info.cold_solve) {
      if (!admission.TryEnterColdSolve()) {
        AppendFrame("ERR shed cold solve capacity\n", &conn->out);
        conn->frame_rest.assign(payload_lines.rest());
        continue;
      }
      // Admitted: run it on the solve pool. SOLVE announces no payload
      // lines, so the whole remainder of the frame is later requests —
      // they wait until the completion lands (FIFO per connection).
      conn->busy = true;
      conn->frame_rest = std::move(rest);
      {
        std::lock_guard<std::mutex> lock(solve_mu);
        solve_queue.push_back(SolveTask{conn, std::move(line)});
      }
      solve_cv.notify_one();
      break;
    }
    std::string reply;
    const RequestOutcome outcome =
        dispatcher->HandleRequest(line, payload_lines, &reply);
    if (!reply.empty()) AppendFrame(reply, &conn->out);
    conn->frame_rest.assign(payload_lines.rest());
    if (outcome == RequestOutcome::kQuit) {
      conn->closing = true;  // flush the reply, then close
      break;
    }
  }
  FlushConn(loop, conn);
}

void TcpServer::Impl::FlushConn(EventLoop& loop,
                                const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  while (!conn->out.empty()) {
    const ssize_t n = ::write(conn->fd, conn->out.data(), conn->out.size());
    if (n > 0) {
      Counters().bytes_out.Add(static_cast<uint64_t>(n));
      conn->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_out) {
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = conn->fd;
        ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
        conn->want_out = true;
      }
      return;
    }
    CloseConn(loop, conn);
    return;
  }
  if (conn->want_out) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->want_out = false;
  }
  if (conn->closing) CloseConn(loop, conn);
}

void TcpServer::Impl::CloseConn(EventLoop& loop,
                                const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conn->closed = true;
  loop.conns.erase(conn->fd);
  Counters().connections_open.Add(-1.0);
}

void TcpServer::Impl::HandleInbox(size_t loop_index) {
  EventLoop& loop = *loops[loop_index];
  std::vector<int> incoming;
  std::vector<std::pair<std::shared_ptr<Conn>, std::string>> completions;
  {
    std::lock_guard<std::mutex> lock(loop.mu);
    incoming.swap(loop.incoming);
    completions.swap(loop.completions);
  }
  for (const int fd : incoming) AdoptConn(loop_index, fd);
  for (auto& [conn, reply] : completions) {
    if (conn->closed) continue;
    conn->busy = false;
    if (!reply.empty()) AppendFrame(reply, &conn->out);
    Drive(loop, conn);  // later pipelined requests were waiting on this
  }
}

void TcpServer::Impl::LoopRun(size_t index) {
  EventLoop& loop = *loops[index];
  epoll_event events[64];
  while (true) {
    const int n = ::epoll_wait(loop.epoll_fd, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop.event_fd) {
        uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(loop.event_fd, &drained, sizeof(drained));
        HandleInbox(index);
        continue;
      }
      if (fd == listen_fd) {
        AcceptReady();
        continue;
      }
      const auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) continue;  // closed earlier this batch
      std::shared_ptr<Conn> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(loop, conn);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        ReadConn(loop, conn);
        if (!conn->closed) Drive(loop, conn);
      }
      if ((events[i].events & EPOLLOUT) && !conn->closed) {
        FlushConn(loop, conn);
      }
    }
    if (stopping.load(std::memory_order_acquire)) break;
  }
  // Shutdown: close every connection this loop owns, plus any accepted
  // sockets still waiting in the inbox.
  std::vector<int> incoming;
  {
    std::lock_guard<std::mutex> lock(loop.mu);
    incoming.swap(loop.incoming);
    loop.completions.clear();
  }
  for (const int fd : incoming) ::close(fd);
  while (!loop.conns.empty()) {
    CloseConn(loop, loop.conns.begin()->second);
  }
}

void TcpServer::Impl::SolveWorker() {
  while (true) {
    SolveTask task;
    {
      std::unique_lock<std::mutex> lock(solve_mu);
      solve_cv.wait(lock,
                    [this] { return solve_stop || !solve_queue.empty(); });
      if (solve_stop) return;  // queued work is moot: connections are gone
      task = std::move(solve_queue.front());
      solve_queue.pop_front();
    }
    std::string reply;
    StringLineSource no_payload{std::string_view()};
    dispatcher->HandleRequest(task.line, no_payload, &reply);
    admission.LeaveColdSolve();
    PostCompletion(task.conn, std::move(reply));
  }
}

void TcpServer::Impl::PostCompletion(const std::shared_ptr<Conn>& conn,
                                     std::string reply) {
  EventLoop& loop = *loops[conn->loop];
  {
    std::lock_guard<std::mutex> lock(loop.mu);
    loop.completions.emplace_back(conn, std::move(reply));
  }
  Wake(loop);
}

Result<std::unique_ptr<TcpServer>> TcpServer::Start(
    RequestDispatcher* dispatcher, TcpServerOptions options) {
  if (options.event_threads < 1) options.event_threads = 1;
  if (options.solve_workers < 1) options.solve_workers = 1;

  auto impl = std::make_unique<Impl>(dispatcher, std::move(options));
  impl->listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                             0);
  if (impl->listen_fd < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(impl->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(impl->options.port));
  if (::inet_pton(AF_INET, impl->options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(impl->listen_fd);
    return Status::InvalidArgument("bad listen address: " +
                                   impl->options.host);
  }
  if (::bind(impl->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(impl->listen_fd, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(impl->listen_fd);
    return Status::IoError("bind/listen " + impl->options.host + ":" +
                           std::to_string(impl->options.port) + ": " + err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(impl->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                &bound_len);
  impl->bound_port = ntohs(bound.sin_port);

  for (int i = 0; i < impl->options.event_threads; ++i) {
    auto loop = std::make_unique<EventLoop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->event_fd < 0) {
      if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
      if (loop->event_fd >= 0) ::close(loop->event_fd);
      ::close(impl->listen_fd);
      for (auto& l : impl->loops) {
        ::close(l->epoll_fd);
        ::close(l->event_fd);
      }
      return Status::IoError("epoll/eventfd setup failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->event_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->event_fd, &ev);
    impl->loops.push_back(std::move(loop));
  }
  // The first loop owns the listener.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = impl->listen_fd;
  ::epoll_ctl(impl->loops[0]->epoll_fd, EPOLL_CTL_ADD, impl->listen_fd, &ev);

  Impl* raw = impl.get();
  for (size_t i = 0; i < impl->loops.size(); ++i) {
    impl->loops[i]->thread = std::thread([raw, i] { raw->LoopRun(i); });
  }
  for (int i = 0; i < impl->options.solve_workers; ++i) {
    impl->solve_threads.emplace_back([raw] { raw->SolveWorker(); });
  }
  return std::unique_ptr<TcpServer>(new TcpServer(std::move(impl)));
}

TcpServer::TcpServer(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

TcpServer::~TcpServer() { Stop(); }

int TcpServer::port() const { return impl_->bound_port; }

const AdmissionController& TcpServer::admission() const {
  return impl_->admission;
}

AdmissionController& TcpServer::admission() { return impl_->admission; }

void TcpServer::Stop() {
  if (impl_->stopped) return;
  impl_->stopped = true;
  impl_->stopping.store(true, std::memory_order_release);
  for (auto& loop : impl_->loops) Wake(*loop);
  for (auto& loop : impl_->loops) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(impl_->solve_mu);
    impl_->solve_stop = true;
  }
  impl_->solve_cv.notify_all();
  for (auto& worker : impl_->solve_threads) {
    if (worker.joinable()) worker.join();
  }
  ::close(impl_->listen_fd);
  for (auto& loop : impl_->loops) {
    ::close(loop->epoll_fd);
    ::close(loop->event_fd);
  }
}

}  // namespace fdm::net
