#include "net/admission.h"

#include <chrono>

#include "obs/metrics.h"

namespace fdm::net {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Counter& RateShedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_net_shed_rate_total",
      "Requests shed by per-session token-bucket rate limits");
  return c;
}

obs::Counter& ColdShedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_net_shed_cold_total",
      "Cache-missing SOLVEs shed by the cold-solve capacity cap");
  return c;
}

obs::Gauge& ColdInFlightGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "fdm_net_cold_solves_in_flight",
      "Cache-missing SOLVEs currently queued or executing");
  return g;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

bool AdmissionController::AdmitSessionRequest(const std::string& session) {
  if (options_.session_rate <= 0.0) return true;
  const double now = NowSeconds();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(session);
  if (it == buckets_.end()) {
    const double burst = options_.session_burst > 0.0
                             ? options_.session_burst
                             : options_.session_rate;
    it = buckets_
             .emplace(session,
                      TokenBucket(options_.session_rate, burst, now))
             .first;
  }
  if (it->second.TryAcquire(now)) return true;
  ++rate_shed_total_;
  RateShedCounter().Inc();
  return false;
}

bool AdmissionController::TryEnterColdSolve() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.cold_solve_cap > 0 &&
      cold_in_flight_ >= options_.cold_solve_cap) {
    ++cold_shed_total_;
    ColdShedCounter().Inc();
    return false;
  }
  ++cold_in_flight_;
  ColdInFlightGauge().Set(static_cast<double>(cold_in_flight_));
  return true;
}

void AdmissionController::LeaveColdSolve() {
  std::lock_guard<std::mutex> lock(mu_);
  if (cold_in_flight_ > 0) --cold_in_flight_;
  ColdInFlightGauge().Set(static_cast<double>(cold_in_flight_));
}

uint64_t AdmissionController::rate_shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rate_shed_total_;
}

uint64_t AdmissionController::cold_shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cold_shed_total_;
}

}  // namespace fdm::net
