#include "net/dispatch.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "replica/replica_manager.h"
#include "replica/replication_source.h"
#include "service/durable_session.h"
#include "service/session_manager.h"
#include "util/stringutil.h"

namespace fdm::net {
namespace {

obs::Counter& RequestsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_net_requests_total", "Requests dispatched (all transports)");
  return c;
}

/// True iff nothing but whitespace remains on the command line. Every
/// no-payload verb checks this: `METRICS json garbage` or `SOLVE s extra`
/// is a framing bug on the client side, and silently accepting it on some
/// verbs while OBSERVEB strictly rejects it taught clients nothing.
bool AtLineEnd(std::istringstream& in) {
  std::string extra;
  return !(in >> extra);
}

/// Session names are path components, mirroring `SessionManager`'s rule —
/// the replication verbs resolve names under root_dir and must never walk
/// out of it.
bool ValidSessionName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  if (name[0] == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void ReplyStatus(const Status& status, std::string* out) {
  if (status.ok()) {
    out->append("OK\n");
  } else {
    out->append("ERR ").append(status.ToString()).append("\n");
  }
}

void AppendIds(const Solution& solution, std::string* out) {
  // `<<` formatting, not std::to_string: the latter pads doubles to six
  // decimals and would silently change every SOLVE reply byte.
  std::ostringstream text;
  text << "div=" << solution.diversity << " ids=";
  const auto ids = solution.Ids();
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) text << ',';
    text << ids[i];
  }
  out->append(text.str());
}

/// Parses `<id> <group> <c0> <c1> ...` from `in` into the output params.
/// Returns "" on success, else the reason ("requires <id> <group>
/// <coords...>", "requires numeric coordinates", "requires finite
/// coordinates"). Non-finite coordinates are rejected here — before
/// anything reaches the WAL — because `operator>>` happily parses `inf`
/// and `nan`, and a persisted non-finite point would poison every future
/// distance comparison AND come back at every recovery replay
/// (`ReadDatasetCsv` was hardened against exactly this class of input).
std::string ParsePointFields(std::istringstream& in, int64_t* id,
                             int32_t* group, std::vector<double>* coords) {
  if (!(in >> *id >> *group)) {
    return "requires <id> <group> <coords...>";
  }
  const size_t start = coords->size();
  double c = 0.0;
  while (in >> c) coords->push_back(c);
  // `>>` stops silently at a non-numeric token; distinguish "end of line"
  // from "garbage mid-line" — a malformed point must be rejected, never
  // half-parsed (the session also re-validates the dimension before
  // anything reaches the WAL).
  if (coords->size() == start || !in.eof()) {
    coords->resize(start);
    return "requires numeric coordinates";
  }
  for (size_t i = start; i < coords->size(); ++i) {
    if (!std::isfinite((*coords)[i])) {
      coords->resize(start);
      return "requires finite coordinates";
    }
  }
  return "";
}

}  // namespace

bool StringLineSource::NextLine(std::string* line) {
  if (rest_.empty()) return false;
  const size_t nl = rest_.find('\n');
  if (nl == std::string_view::npos) {
    line->assign(rest_);
    rest_ = {};
  } else {
    line->assign(rest_.substr(0, nl));
    rest_.remove_prefix(nl + 1);
  }
  return true;
}

bool StreamLineSource::NextLine(std::string* line) {
  return static_cast<bool>(std::getline(in_, *line));
}

RequestDispatcher::RequestDispatcher(SessionManager* sessions,
                                     std::string root_dir)
    : sessions_(sessions), root_dir_(std::move(root_dir)) {}

RequestDispatcher::RequestDispatcher(ReplicaManager* replicas,
                                     std::string primary_root)
    : replicas_(replicas), root_dir_(std::move(primary_root)) {}

RequestDispatcher::~RequestDispatcher() = default;

RequestInfo RequestDispatcher::Classify(const std::string& line) const {
  RequestInfo info;
  std::istringstream in(line);
  if (!(in >> info.verb)) return info;  // blank line
  if (info.verb == "LIST" || info.verb == "METRICS" || info.verb == "QUIT") {
    return info;
  }
  if (!(in >> info.session)) return info;
  if (info.verb == "OBSERVEB") {
    int64_t n = 0;
    if (in >> n && n > 0) info.payload_lines = n;
  } else if (info.verb == "SOLVE") {
    info.cold_solve = sessions_ != nullptr
                          ? !sessions_->SolveLikelyCached(info.session)
                          : !replicas_->SolveLikelyCached(info.session);
  }
  return info;
}

RequestOutcome RequestDispatcher::HandleRequest(const std::string& line,
                                                LineSource& payload,
                                                std::string* out) {
  std::istringstream in(line);
  std::string command;
  if (!(in >> command)) return RequestOutcome::kReply;  // blank line
  RequestsCounter().Inc();
  return sessions_ != nullptr ? HandlePrimary(command, in, payload, out)
                              : HandleFollower(command, in, payload, out);
}

bool RequestDispatcher::HandleMetricsVerb(const std::string& command,
                                          std::istringstream& in,
                                          std::string* out) {
  if (command != "METRICS") return false;
  std::string mode;
  in >> mode;
  if (mode == "json" && AtLineEnd(in)) {
    out->append("OK ")
        .append(obs::MetricsRegistry::Global().RenderJson())
        .append("\n");
  } else if (mode.empty()) {
    out->append(obs::MetricsRegistry::Global().RenderPrometheus());
    out->append("OK\n");
  } else {
    out->append("ERR METRICS takes no argument or 'json'\n");
  }
  return true;
}

void RequestDispatcher::HandleReplicationVerb(const std::string& command,
                                              const std::string& name,
                                              std::istringstream& in,
                                              std::string* out) {
  if (!ValidSessionName(name)) {
    out->append("ERR invalid session name\n");
    return;
  }
  int64_t seq = 0;
  if (command != "RMANIFEST") {
    if (!(in >> seq) || !AtLineEnd(in)) {
      out->append("ERR ").append(command).append(" requires <name> <seq>\n");
      return;
    }
  } else if (!AtLineEnd(in)) {
    out->append("ERR RMANIFEST takes only a session name\n");
    return;
  }
  std::lock_guard<std::mutex> lock(repl_mu_);
  auto it = repl_sources_.find(name);
  if (it == repl_sources_.end()) {
    const std::string dir = root_dir_ + "/" + name;
    if (!DurableSession::Exists(dir)) {
      out->append("ERR no session named '").append(name).append("'\n");
      return;
    }
    it = repl_sources_
             .emplace(name, std::make_unique<DirReplicationSource>(dir))
             .first;
  }
  ReplicationSource& source = *it->second;
  if (command == "RMANIFEST") {
    auto manifest = source.GetManifest();
    if (!manifest.ok()) {
      out->append("ERR ").append(manifest.status().ToString()).append("\n");
      return;
    }
    out->append("OK primary_seq=")
        .append(std::to_string(manifest->primary_seq));
    out->append(" version=").append(std::to_string(manifest->primary_version));
    out->append(" advert_seq=").append(std::to_string(manifest->advert_seq));
    out->append(" snapshots=");
    if (manifest->snapshots.empty()) out->push_back('-');
    for (size_t i = 0; i < manifest->snapshots.size(); ++i) {
      const ReplicaSnapshotInfo& s = manifest->snapshots[i];
      if (i > 0) out->push_back(',');
      out->append(std::to_string(s.seq))
          .append(":")
          .append(std::to_string(s.bytes))
          .append(":")
          .append(std::to_string(s.checksum));
    }
    out->append(" segments=");
    if (manifest->segments.empty()) out->push_back('-');
    for (size_t i = 0; i < manifest->segments.size(); ++i) {
      const WalSegmentInfo& s = manifest->segments[i];
      if (i > 0) out->push_back(',');
      out->append(std::to_string(s.first_seq))
          .append(":")
          .append(std::to_string(s.bytes))
          .append(":")
          .append(std::to_string(s.checksum));
    }
    // The spec goes last and runs to end of line: it contains spaces.
    out->append(" spec=").append(manifest->spec).append("\n");
    return;
  }
  auto bytes = command == "RFETCHSNAP" ? source.FetchSnapshot(seq)
                                       : source.FetchWalSegment(seq);
  if (!bytes.ok()) {
    out->append("ERR ").append(bytes.status().ToString()).append("\n");
    return;
  }
  // Binary reply: a one-line header announcing the byte count, the raw
  // bytes, then a newline to restore line discipline. Over TCP the whole
  // reply is one length-delimited frame; over stdin the client reads
  // exactly `bytes=` bytes after the header line.
  out->append("OK bytes=").append(std::to_string(bytes->size())).append("\n");
  out->append(*bytes);
  out->push_back('\n');
}

RequestOutcome RequestDispatcher::HandlePrimary(const std::string& command,
                                                std::istringstream& in,
                                                LineSource& payload,
                                                std::string* out) {
  SessionManager& sessions = *sessions_;
  if (command == "QUIT") {
    if (!AtLineEnd(in)) {
      out->append("ERR QUIT takes no arguments\n");
      return RequestOutcome::kReply;
    }
    ReplyStatus(sessions.SnapshotAll(), out);
    return RequestOutcome::kQuit;
  }
  if (HandleMetricsVerb(command, in, out)) return RequestOutcome::kReply;
  if (command == "LIST") {
    if (!AtLineEnd(in)) {
      out->append("ERR LIST takes no arguments\n");
      return RequestOutcome::kReply;
    }
    out->append("OK");
    for (const std::string& name : sessions.SessionNames()) {
      out->push_back(' ');
      out->append(name);
    }
    out->push_back('\n');
    return RequestOutcome::kReply;
  }

  std::string name;
  if (!(in >> name)) {
    out->append("ERR ").append(command).append(" requires a session name\n");
    return RequestOutcome::kReply;
  }
  if (command == "CREATE") {
    std::string spec;
    std::getline(in, spec);
    ReplyStatus(sessions.CreateSession(name, std::string(Trim(spec))), out);
  } else if (command == "OBSERVE") {
    int64_t id = -1;
    int32_t group = 0;
    std::vector<double> coords;
    const std::string error = ParsePointFields(in, &id, &group, &coords);
    if (!error.empty()) {
      out->append("ERR OBSERVE ").append(error).append("\n");
      return RequestOutcome::kReply;
    }
    const StreamPoint point{id, group, coords};
    auto outcome = sessions.Ingest(name, {&point, 1}, /*as_batch=*/false);
    if (!outcome.ok()) {
      out->append("ERR ").append(outcome.status().ToString()).append("\n");
    } else if (outcome->duplicates > 0) {
      out->append("OK dup=1\n");
    } else {
      out->append("OK\n");
    }
  } else if (command == "OBSERVEB") {
    int64_t n = -1;
    if (!(in >> n) || n < 0) {
      out->append("ERR OBSERVEB requires <name> <n>\n");
      return RequestOutcome::kReply;
    }
    in.clear();  // the int read may have latched eofbit; that's fine
    if (!AtLineEnd(in)) {
      // The count DID parse, so the client sent n point lines — drain
      // them before ERRing or they'd be misread as commands.
      std::string drained;
      for (int64_t i = 0; i < n && payload.NextLine(&drained); ++i) {
      }
      out->append("ERR OBSERVEB takes nothing after <n>\n");
      return RequestOutcome::kReply;
    }
    // Parse the n announced point lines. A malformed line fails the
    // whole batch (nothing is applied — a batch is one request), but
    // the remaining lines are still consumed so the stream stays in
    // command framing.
    std::vector<int64_t> ids;
    std::vector<int32_t> groups;
    std::vector<size_t> offsets;  // per-point start into `coords`
    std::vector<double> coords;
    std::string error;
    std::string point_line;
    for (int64_t i = 0; i < n; ++i) {
      if (!payload.NextLine(&point_line)) {
        error = "stream ended mid-batch";
        break;
      }
      if (!error.empty()) continue;  // draining after a bad line
      std::istringstream pin(point_line);
      int64_t id = -1;
      int32_t group = 0;
      const size_t start = coords.size();
      const std::string reason = ParsePointFields(pin, &id, &group, &coords);
      if (!reason.empty()) {
        error = "batch line " + std::to_string(i) + " " + reason;
        continue;
      }
      ids.push_back(id);
      groups.push_back(group);
      offsets.push_back(start);
    }
    if (!error.empty()) {
      out->append("ERR OBSERVEB ").append(error).append("\n");
      return RequestOutcome::kReply;
    }
    // Spans are built only now: `coords` no longer reallocates.
    offsets.push_back(coords.size());
    std::vector<StreamPoint> points;
    points.reserve(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      points.push_back(StreamPoint{
          ids[i], groups[i],
          std::span<const double>(coords.data() + offsets[i],
                                  offsets[i + 1] - offsets[i])});
    }
    auto outcome = sessions.Ingest(name, points, /*as_batch=*/true);
    if (!outcome.ok()) {
      out->append("ERR ").append(outcome.status().ToString()).append("\n");
    } else {
      out->append("OK kept=")
          .append(std::to_string(outcome->accepted))
          .append(" dup=")
          .append(std::to_string(outcome->duplicates))
          .append("\n");
    }
  } else if (command == "SOLVE") {
    if (!AtLineEnd(in)) {
      out->append("ERR SOLVE takes only a session name\n");
      return RequestOutcome::kReply;
    }
    auto solution = sessions.Solve(name);
    if (!solution.ok()) {
      out->append("ERR ").append(solution.status().ToString()).append("\n");
      return RequestOutcome::kReply;
    }
    out->append("OK ");
    AppendIds(*solution, out);
    out->push_back('\n');
  } else if (command == "RMANIFEST" || command == "RFETCHSNAP" ||
             command == "RFETCHWAL") {
    HandleReplicationVerb(command, name, in, out);
  } else if (command == "REPLICA" || command == "LAG") {
    out->append("ERR ").append(command).append(
        " is a follower verb (start with --follow=DIR)\n");
  } else if (command == "SNAPSHOT") {
    if (!AtLineEnd(in)) {
      out->append("ERR SNAPSHOT takes only a session name\n");
      return RequestOutcome::kReply;
    }
    ReplyStatus(sessions.Snapshot(name), out);
  } else if (command == "RESTORE") {
    if (!AtLineEnd(in)) {
      out->append("ERR RESTORE takes only a session name\n");
      return RequestOutcome::kReply;
    }
    // Crash drill: forget the in-memory sink, then recover it from the
    // newest snapshot + WAL tail (the next touch triggers the reload).
    Status dropped = sessions.DropResident(name);
    if (!dropped.ok()) {
      ReplyStatus(dropped, out);
      return RequestOutcome::kReply;
    }
    auto stats = sessions.Stats(name);
    if (!stats.ok()) {
      out->append("ERR ").append(stats.status().ToString()).append("\n");
    } else {
      out->append("OK observed=")
          .append(std::to_string(stats->observed))
          .append("\n");
    }
  } else if (command == "STATS") {
    if (!AtLineEnd(in)) {
      out->append("ERR STATS takes only a session name\n");
      return RequestOutcome::kReply;
    }
    auto stats = sessions.Stats(name);
    if (!stats.ok()) {
      out->append("ERR ").append(stats.status().ToString()).append("\n");
      return RequestOutcome::kReply;
    }
    std::ostringstream line;
    line << "OK observed=" << stats->observed << " kept=" << stats->kept
         << " stored=" << stats->stored
         << " snapshot_seq=" << stats->snapshot_seq
         << " version=" << stats->state_version
         << " solve_hits=" << stats->solve_hits
         << " solve_misses=" << stats->solve_misses
         << " solve_p50_cached_ms=" << stats->solve_p50_cached_ms
         << " solve_p99_cached_ms=" << stats->solve_p99_cached_ms
         << " solve_p50_cold_ms=" << stats->solve_p50_cold_ms
         << " solve_p99_cold_ms=" << stats->solve_p99_cold_ms
         << " snapshots=" << stats->snapshots_taken
         << " restores=" << stats->restores
         << " replayed=" << stats->replayed_records
         << " dedup=" << (stats->dedup ? "on" : "off")
         << " duplicates_rejected=" << stats->duplicates_rejected
         << " filter_bytes=" << stats->filter_bytes
         << " filter_grows=" << stats->filter_grows
         << " kernel=" << stats->kernel << " spec=\"" << stats->spec
         << "\"\n";
    out->append(line.str());
  } else {
    out->append("ERR unknown command '").append(command).append("'\n");
  }
  return RequestOutcome::kReply;
}

RequestOutcome RequestDispatcher::HandleFollower(const std::string& command,
                                                 std::istringstream& in,
                                                 LineSource& payload,
                                                 std::string* out) {
  ReplicaManager& replicas = *replicas_;
  if (command == "QUIT") {
    if (!AtLineEnd(in)) {
      out->append("ERR QUIT takes no arguments\n");
      return RequestOutcome::kReply;
    }
    out->append("OK\n");
    return RequestOutcome::kQuit;
  }
  if (HandleMetricsVerb(command, in, out)) return RequestOutcome::kReply;
  if (command == "LIST") {
    if (!AtLineEnd(in)) {
      out->append("ERR LIST takes no arguments\n");
      return RequestOutcome::kReply;
    }
    out->append("OK");
    for (const std::string& name : replicas.SessionNames()) {
      out->push_back(' ');
      out->append(name);
    }
    out->push_back('\n');
    return RequestOutcome::kReply;
  }
  if (command == "CREATE" || command == "OBSERVE" || command == "OBSERVEB" ||
      command == "SNAPSHOT" || command == "RESTORE") {
    if (command == "OBSERVEB") {
      // Keep the framing invariant even when rejecting: the client
      // announced n point lines and will send them — swallow them so
      // they are not misread as commands.
      std::string name;
      int64_t n = 0;
      if ((in >> name >> n) && n > 0) {
        std::string discard;
        for (int64_t i = 0; i < n && payload.NextLine(&discard); ++i) {
        }
      }
    }
    out->append("ERR read-only follower (this process serves --follow=")
        .append(root_dir_)
        .append(")\n");
    return RequestOutcome::kReply;
  }

  std::string name;
  if (!(in >> name)) {
    out->append("ERR ").append(command).append(" requires a session name\n");
    return RequestOutcome::kReply;
  }
  if (command == "SOLVE") {
    if (!AtLineEnd(in)) {
      out->append("ERR SOLVE takes only a session name\n");
      return RequestOutcome::kReply;
    }
    auto solve = replicas.Solve(name);
    if (!solve.ok()) {
      out->append("ERR ").append(solve.status().ToString()).append("\n");
      return RequestOutcome::kReply;
    }
    out->append("OK ");
    AppendIds(solve->solution, out);
    std::ostringstream tail;
    tail << " version=" << solve->state_version
         << " applied=" << solve->applied_seq << " lag=" << solve->lag
         << " stale=" << (solve->stale ? 1 : 0) << "\n";
    out->append(tail.str());
  } else if (command == "STATS" || command == "LAG" || command == "REPLICA") {
    if (!AtLineEnd(in)) {
      out->append("ERR ").append(command).append(
          " takes only a session name\n");
      return RequestOutcome::kReply;
    }
    int64_t just_applied = -1;
    if (command == "REPLICA") {
      auto applied = replicas.Poll(name);
      if (!applied.ok()) {
        out->append("ERR ").append(applied.status().ToString()).append("\n");
        return RequestOutcome::kReply;
      }
      just_applied = *applied;
    }
    auto stats =
        command == "LAG" ? replicas.Lag(name) : replicas.Stats(name);
    if (!stats.ok()) {
      out->append("ERR ").append(stats.status().ToString()).append("\n");
      return RequestOutcome::kReply;
    }
    std::ostringstream line;
    line << "OK";
    if (just_applied >= 0) line << " applied_records=" << just_applied;
    line << " applied=" << stats->applied_seq
         << " primary=" << stats->primary_seq << " lag=" << stats->lag
         << " stale=" << (stats->stale ? 1 : 0)
         << " version=" << stats->state_version
         << " resyncs=" << stats->resyncs
         << " segments_fetched=" << stats->segments_fetched
         << " snapshots_loaded=" << stats->snapshots_loaded
         << " dedup=" << (stats->dedup ? "on" : "off")
         << " duplicates_rejected=" << stats->duplicates_rejected
         << " filter_bytes=" << stats->filter_bytes
         << " solve_hits=" << stats->solve.hits
         << " solve_misses=" << stats->solve.misses << "\n";
    out->append(line.str());
  } else {
    out->append("ERR unknown command '").append(command).append("'\n");
  }
  return RequestOutcome::kReply;
}

int ServeLines(RequestDispatcher& dispatcher, std::istream& in,
               std::ostream& out) {
  StreamLineSource payload(in);
  std::string line;
  std::string reply;
  while (std::getline(in, line)) {
    reply.clear();
    const RequestOutcome outcome =
        dispatcher.HandleRequest(line, payload, &reply);
    out << reply;
    out.flush();
    if (outcome == RequestOutcome::kQuit) break;
  }
  return 0;
}

}  // namespace fdm::net
