#ifndef FDM_NET_TCP_SERVER_H_
#define FDM_NET_TCP_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/admission.h"
#include "util/status.h"

namespace fdm::net {

class RequestDispatcher;

struct TcpServerOptions {
  /// Bind address. Loopback by default: exposing the protocol beyond the
  /// host is an operator decision, not a default.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (the bound port is reported by `port()`).
  int port = 0;
  /// Event-loop threads. Connections are assigned round-robin at accept
  /// and never migrate, so per-connection state is single-threaded.
  int event_threads = 2;
  /// Workers executing admitted cache-missing SOLVEs off the event loops
  /// (a cold solve is ~750x a cached one — running it on the loop would
  /// stall every connection on that loop behind it).
  int solve_workers = 2;
  AdmissionOptions admission;
};

/// Epoll-based TCP front end over a `RequestDispatcher`.
///
/// Wire format: length-delimited frames (net/frame.h) whose payload is
/// the same text the stdin transport speaks. One frame may carry several
/// complete requests (pipelining); a request — its command line plus any
/// announced payload lines — may NOT span frames (the dispatcher answers
/// exactly as if stdin ended mid-request). Each request produces exactly
/// one response frame carrying the dispatcher's reply bytes, identical to
/// what the stdin transport would have written; blank lines produce no
/// response frame. A malformed frame header (oversized length) is a
/// protocol error: the connection is closed.
///
/// Overload behavior (see net/admission.h): a request naming a session
/// over its token-bucket rate, or a cache-missing SOLVE beyond the global
/// cold-solve capacity, is answered immediately with a complete
/// `ERR shed ...` response frame (announced payload lines are drained, so
/// the pipeline stays in framing) instead of queueing. Admitted cold
/// SOLVEs run on the solve-worker pool; while one is in flight its
/// connection is "busy" — later pipelined requests on that connection
/// wait (per-connection reply order is FIFO), other connections proceed.
///
/// QUIT over TCP replies (snapshotting on a primary, exactly like stdin)
/// and then closes that connection; the server keeps serving others.
class TcpServer {
 public:
  /// Binds, listens, and starts the event-loop and solve-worker threads.
  /// `dispatcher` must outlive the server.
  static Result<std::unique_ptr<TcpServer>> Start(
      RequestDispatcher* dispatcher, TcpServerOptions options);

  ~TcpServer();  // Stop()s

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (useful with `options.port == 0`).
  int port() const;

  /// Shed counters, for tests and the serving CLI's exit report. The
  /// non-const overload lets an operator (or a test) claim cold-solve
  /// slots externally — e.g. to drain the server before maintenance.
  const AdmissionController& admission() const;
  AdmissionController& admission();

  /// Closes the listener and every connection, joins all threads.
  /// Idempotent.
  void Stop();

 private:
  struct Impl;
  explicit TcpServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace fdm::net

#endif  // FDM_NET_TCP_SERVER_H_
