#ifndef FDM_NET_DISPATCH_H_
#define FDM_NET_DISPATCH_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace fdm {
class SessionManager;
class ReplicaManager;
class ReplicationSource;
}  // namespace fdm

namespace fdm::net {

/// Where a request's announced payload lines come from (OBSERVEB's n
/// point lines). The stdin transport pulls further lines from the input
/// stream; the TCP transport pulls the remaining lines of the request
/// frame. Running dry mid-batch is the transport-independent "stream
/// ended mid-batch" error.
class LineSource {
 public:
  virtual ~LineSource() = default;
  /// Next payload line without its '\n'; false at end of input.
  virtual bool NextLine(std::string* line) = 0;
};

/// LineSource over an in-memory '\n'-separated text block (TCP frame
/// remainders, tests). A trailing '\n' is optional; an empty block has no
/// lines.
class StringLineSource final : public LineSource {
 public:
  explicit StringLineSource(std::string_view text) : rest_(text) {}
  bool NextLine(std::string* line) override;

  /// Unconsumed text (the transport resumes parsing requests here).
  std::string_view rest() const { return rest_; }

 private:
  std::string_view rest_;
};

/// LineSource over a std::istream (the stdin transport).
class StreamLineSource final : public LineSource {
 public:
  explicit StreamLineSource(std::istream& in) : in_(in) {}
  bool NextLine(std::string* line) override;

 private:
  std::istream& in_;
};

/// What the transport should do after writing the reply.
enum class RequestOutcome {
  kReply,  // keep the conversation going
  kQuit,   // client said QUIT: stdin loop exits, TCP closes the connection
};

/// Transport-independent classification of one request, produced without
/// executing it — the TCP front end's admission control runs on this.
struct RequestInfo {
  std::string verb;
  /// Session the request names ("" for LIST/METRICS/QUIT/blank/garbage).
  std::string session;
  /// True for a SOLVE that would miss the solve cache (or touch a
  /// spilled/unbootstrapped session): the ~750x-slower path admission may
  /// have to shed. Advisory — state can move before execution.
  bool cold_solve = false;
  /// Payload lines the request announces (OBSERVEB's n): a transport that
  /// sheds the request must still drain them to stay in framing.
  int64_t payload_lines = 0;
};

/// The request-dispatch core shared by the stdin and TCP transports, for
/// both serving roles (primary over a `SessionManager`, read-only
/// follower over a `ReplicaManager`). One instance is shared by every
/// transport thread; all methods are thread-safe.
///
/// `HandleRequest` consumes exactly one request — the command line plus
/// any payload lines it announces, pulled from `payload` — and appends
/// the full reply text to `*out`. Every reply path consumes precisely the
/// request's own input (malformed batches drain their announced lines),
/// so pipelined clients stay in sync across any ERR; and the reply bytes
/// are transport-independent, which is what the conformance suite pins
/// down as "stdin and TCP replies are byte-identical".
///
/// Primary mode additionally serves the replication transport verbs that
/// back `SocketReplicationSource` (each maps to one request/response
/// frame over TCP):
///
///   RMANIFEST <name>        one-line manifest: primary position/version,
///                           snapshot and WAL-segment lists, sink spec
///   RFETCHSNAP <name> <seq> `OK bytes=<n>` + n raw snapshot bytes
///   RFETCHWAL <name> <first_seq>  same, for one WAL segment
///
/// They read the session's on-disk state (`DirReplicationSource` under
/// the hood, with its sealed-checksum caches kept warm across polls), so
/// a follower sees exactly what a shared-filesystem follower would: the
/// durable prefix.
class RequestDispatcher {
 public:
  /// Primary serving mode. `root_dir` is the session-manager root (the
  /// replication verbs resolve `<root_dir>/<name>/`).
  RequestDispatcher(SessionManager* sessions, std::string root_dir);

  /// Follower mode. `primary_root` only labels read-only rejections.
  RequestDispatcher(ReplicaManager* replicas, std::string primary_root);

  RequestDispatcher(const RequestDispatcher&) = delete;
  RequestDispatcher& operator=(const RequestDispatcher&) = delete;
  ~RequestDispatcher();

  RequestOutcome HandleRequest(const std::string& line, LineSource& payload,
                               std::string* out);

  RequestInfo Classify(const std::string& line) const;

  bool follower() const { return replicas_ != nullptr; }

 private:
  RequestOutcome HandlePrimary(const std::string& command,
                               std::istringstream& in, LineSource& payload,
                               std::string* out);
  RequestOutcome HandleFollower(const std::string& command,
                                std::istringstream& in, LineSource& payload,
                                std::string* out);
  /// METRICS handling shared by both roles; false when `command` differs.
  bool HandleMetricsVerb(const std::string& command, std::istringstream& in,
                         std::string* out);
  void HandleReplicationVerb(const std::string& command,
                             const std::string& name, std::istringstream& in,
                             std::string* out);

  SessionManager* const sessions_ = nullptr;   // primary mode
  ReplicaManager* const replicas_ = nullptr;   // follower mode
  const std::string root_dir_;

  /// Per-session replication sources behind the R-verbs, kept so sealed
  /// WAL-segment checksums are computed once per segment, not once per
  /// follower poll. DirReplicationSource is not thread-safe and manifest
  /// traffic is light, so one lock serializes all R-verb handling.
  mutable std::mutex repl_mu_;
  std::map<std::string, std::unique_ptr<ReplicationSource>> repl_sources_;
};

/// The stdin transport: reads '\n'-separated requests from `in`, writes
/// each reply to `out` (flushing per request so the protocol works over a
/// pipe), stops at EOF or QUIT. Blank lines produce no reply. Returns 0.
int ServeLines(RequestDispatcher& dispatcher, std::istream& in,
               std::ostream& out);

}  // namespace fdm::net

#endif  // FDM_NET_DISPATCH_H_
