#ifndef FDM_CORE_SHARDED_STREAM_H_
#define FDM_CORE_SHARDED_STREAM_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/solution.h"
#include "core/solve_pool.h"
#include "core/stream_sink.h"
#include "core/streaming_dm.h"
#include "geo/metric.h"
#include "geo/point_buffer.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fdm {

/// Options for the sharded driver.
struct ShardedStreamingOptions {
  /// Number of independent shards the stream is split over (round-robin).
  size_t num_shards = 4;
  /// Threads `ObserveBatch` spreads the shards over (`1` = sequential,
  /// `0` = all hardware threads). Per-shard processing stays sequential,
  /// so results are bit-identical regardless.
  int batch_threads = 0;
  /// Threads `Solve` spreads the per-shard solves over (same encoding).
  /// The inner shards always solve sequentially — query-path parallelism
  /// lives at the shard level, like `batch_threads` for ingest — and the
  /// merge + GMM reduce stays a sequential in-shard-order pass, so output
  /// is bit-identical at any setting.
  int solve_threads = 1;
};

/// Sharded ingestion driver for *unconstrained* max-min diversity
/// maximization — the streaming-side realization of the composable-coreset
/// approach (`ComposableCoresetDm`, Indyk et al. [27]).
///
/// The stream is split round-robin into `num_shards` substreams, each
/// ingested by its own `StreamingDm` (Algorithm 1). Shards share no state,
/// so a batch is partitioned and the shards ingest in parallel. `Solve`
/// merges the per-shard solutions — each is a composable coreset for
/// remote-edge diversity: `k` points pairwise `≥ µ*_shard` — and
/// post-processes once with GMM farthest-first selection over the union,
/// exactly the map/reduce shape of `ComposableCoresetDm` with the per-block
/// GMM replaced by the `(1−ε)/2`-approximate streaming candidates. The
/// merge-then-GMM step inherits the composable-coreset constant-factor
/// guarantee relative to the single-stream run (verified on synthetic data
/// in sharded_stream_test.cc).
///
/// Memory is `num_shards ×` the single-stream algorithm; update cost per
/// element is identical, but batches spread across shards *and* wall-clock
/// scales with the threads available.
class ShardedStreamingDm : public StreamSink {
 public:
  /// Creates `num_shards` independent `StreamingDm` instances for solution
  /// size `k` over points of dimension `dim` under `metric`.
  static Result<ShardedStreamingDm> Create(
      int k, size_t dim, MetricKind metric, const StreamingOptions& options,
      const ShardedStreamingOptions& sharding = {});

  /// Routes the element to the next shard (round-robin). Returns true iff
  /// the receiving shard kept the element.
  bool Observe(const StreamPoint& point) override;

  /// Partitions the batch round-robin (continuing the `Observe` rotation)
  /// and ingests the sub-batches in parallel — shards are fully
  /// independent, so this is bit-identical to per-element routing.
  size_t ObserveBatch(std::span<const StreamPoint> batch) override;

  /// Sum of the shards' state versions — monotone, chunking-invariant, and
  /// restored for free because every shard snapshot carries its own
  /// version.
  uint64_t StateVersion() const override;

  /// Merge + single post-process: union of the per-shard solutions, GMM
  /// farthest-first selection of `k` points over the union. Fails with
  /// `Infeasible` when no shard filled a candidate (stream too small or
  /// too concentrated for this shard count). Per-shard solves fan out
  /// over `solve_threads`; the merge keeps shard order and the reduce is
  /// sequential, so output is bit-identical at any thread count.
  Result<Solution> Solve() const override;

  /// Adjusts the driver-level `solve_threads`; see `StreamSink`. The
  /// inner shards stay sequential regardless.
  void SetSolveThreads(int solve_threads) override {
    solve_parallelism_.set_solve_threads(solve_threads);
  }

  /// Sum of the shards' distinct stored elements (substreams are disjoint,
  /// so the sum is the distinct total).
  size_t StoredElements() const override;

  int64_t ObservedElements() const override { return observed_; }

  /// Versioned state serialization: the driver header plus each shard's own
  /// self-contained snapshot. See `StreamSink::Snapshot`.
  Status Snapshot(SnapshotWriter& writer) const override;

  /// Rebuilds the driver (and every shard) from a snapshot.
  static Result<ShardedStreamingDm> Restore(SnapshotReader& reader);

  static constexpr std::string_view kSnapshotTag = "sharded_streaming_dm";

  size_t num_shards() const { return shards_.size(); }
  const StreamingDm& shard(size_t s) const { return shards_[s]; }

 private:
  ShardedStreamingDm(int k, size_t dim, MetricKind metric,
                     std::vector<StreamingDm> shards, int batch_threads,
                     int solve_threads);

  int k_;
  size_t dim_;
  Metric metric_;
  std::vector<StreamingDm> shards_;
  BatchParallelism parallelism_;
  SolveParallelism solve_parallelism_;
  int64_t observed_ = 0;
};

}  // namespace fdm

#endif  // FDM_CORE_SHARDED_STREAM_H_
