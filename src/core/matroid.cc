#include "core/matroid.h"

#include <algorithm>
#include <numeric>

namespace fdm {

PartitionMatroid::PartitionMatroid(std::vector<int> labels,
                                   std::vector<int> capacities)
    : labels_(std::move(labels)), capacities_(std::move(capacities)) {
  for (const int l : labels_) {
    FDM_CHECK(l >= 0 && l < static_cast<int>(capacities_.size()));
  }
  for (const int c : capacities_) FDM_CHECK(c >= 0);
}

int PartitionMatroid::Rank() const {
  // Rank = Σ_part min(capacity, #elements with that label).
  std::vector<int> present(capacities_.size(), 0);
  for (const int l : labels_) ++present[static_cast<size_t>(l)];
  int rank = 0;
  for (size_t p = 0; p < capacities_.size(); ++p) {
    rank += std::min(present[p], capacities_[p]);
  }
  return rank;
}

int PartitionMatroid::CountPart(std::span<const int> members, int part) const {
  int count = 0;
  for (const int e : members) {
    if (labels_[static_cast<size_t>(e)] == part) ++count;
  }
  return count;
}

bool PartitionMatroid::IsIndependent(std::span<const int> members) const {
  std::vector<int> counts(capacities_.size(), 0);
  for (const int e : members) {
    FDM_CHECK(e >= 0 && e < GroundSize());
    const int part = labels_[static_cast<size_t>(e)];
    if (++counts[static_cast<size_t>(part)] >
        capacities_[static_cast<size_t>(part)]) {
      return false;
    }
  }
  return true;
}

bool PartitionMatroid::CanAdd(std::span<const int> members, int x) const {
  FDM_DCHECK(x >= 0 && x < GroundSize());
  const int part = labels_[static_cast<size_t>(x)];
  return CountPart(members, part) < capacities_[static_cast<size_t>(part)];
}

bool PartitionMatroid::CanExchange(std::span<const int> members, int x,
                                   int y) const {
  // members + x violates only x's part (it was at capacity); removing y
  // fixes that iff y shares x's part.
  FDM_DCHECK(x >= 0 && x < GroundSize());
  FDM_DCHECK(y >= 0 && y < GroundSize());
  return labels_[static_cast<size_t>(y)] == labels_[static_cast<size_t>(x)];
}

}  // namespace fdm
