#include "core/solve_cache.h"

#include <utility>

#include "obs/metrics.h"
#include "util/timer.h"

namespace fdm {

namespace {

// Process-wide mirrors of the per-cache latency histograms, so one METRICS
// scrape sees solve behavior across every session. Cached vs cold are
// separate series — their distributions differ by ~3 orders of magnitude
// and a merged histogram would bury the cold tail.
obs::Histogram& CachedSolveHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "fdm_solve_cached_ns", "latency of cache-hit SOLVE serves",
      /*slow_threshold_ns=*/10'000'000);
  return h;
}
obs::Histogram& ColdSolveHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "fdm_solve_cold_ns", "latency of cache-miss SOLVE computes",
      /*slow_threshold_ns=*/1'000'000'000);
  return h;
}
obs::Counter& HitCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_solve_hits_total", "SOLVEs served from cache");
  return c;
}
obs::Counter& MissCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_solve_misses_total", "SOLVEs that ran the solver");
  return c;
}

}  // namespace

Result<Solution> SolveCache::GetOrCompute(
    uint64_t version, const std::function<Result<Solution>()>& solver,
    std::string_view context) {
  Timer timer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cached_.has_value() && version_ == version) {
      ++hits_;
      Result<Solution> result = *cached_;
      hit_ns_.Record(static_cast<uint64_t>(timer.ElapsedNanos()));
      HitCounter().Inc();
      CachedSolveHist().RecordWithContext(
          static_cast<uint64_t>(timer.ElapsedNanos()), context, version);
      return result;
    }
  }
  // Compute under a separate mutex so the entry mutex stays cheap: a
  // long post-processing run must not block `GetStats` (STATS on the
  // serving path) or a concurrent hit for the already-cached version.
  // Serializing computes is still required — the solver may mutate
  // incremental scratch (see Sfdm2) — and makes a second miss for the
  // same version wait and then be served the first caller's result by
  // the re-check below.
  std::lock_guard<std::mutex> compute_lock(compute_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cached_.has_value() && version_ == version) {
      ++hits_;
      Result<Solution> result = *cached_;
      // A hit behind a concurrent compute waited for compute_mu_ — its
      // latency belongs in the hit series (that wait is what a caller saw).
      hit_ns_.Record(static_cast<uint64_t>(timer.ElapsedNanos()));
      HitCounter().Inc();
      CachedSolveHist().RecordWithContext(
          static_cast<uint64_t>(timer.ElapsedNanos()), context, version);
      return result;
    }
  }
  Result<Solution> result = solver();
  const uint64_t solve_ns = static_cast<uint64_t>(timer.ElapsedNanos());
  std::lock_guard<std::mutex> lock(mu_);
  miss_ns_.Record(solve_ns);
  ++misses_;
  version_ = version;
  cached_.emplace(result);
  MissCounter().Inc();
  ColdSolveHist().RecordWithContext(solve_ns, context, version);
  return result;
}

void SolveCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  cached_.reset();
  version_ = 0;
}

SolveCache::Stats SolveCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.cached_version = cached_.has_value() ? version_ : 0;
  stats.hit_ns = hit_ns_;
  stats.miss_ns = miss_ns_;
  return stats;
}

}  // namespace fdm
