#include "core/solve_cache.h"

#include <utility>

#include "util/timer.h"

namespace fdm {

Result<Solution> SolveCache::GetOrCompute(
    uint64_t version, const std::function<Result<Solution>()>& solver) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cached_.has_value() && version_ == version) {
      ++hits_;
      return *cached_;
    }
  }
  // Compute under a separate mutex so the entry mutex stays cheap: a
  // long post-processing run must not block `GetStats` (STATS on the
  // serving path) or a concurrent hit for the already-cached version.
  // Serializing computes is still required — the solver may mutate
  // incremental scratch (see Sfdm2) — and makes a second miss for the
  // same version wait and then be served the first caller's result by
  // the re-check below.
  std::lock_guard<std::mutex> compute_lock(compute_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cached_.has_value() && version_ == version) {
      ++hits_;
      return *cached_;
    }
  }
  Timer timer;
  Result<Solution> result = solver();
  const double solve_ms = timer.ElapsedSeconds() * 1000.0;
  std::lock_guard<std::mutex> lock(mu_);
  last_solve_ms_ = solve_ms;
  ++misses_;
  version_ = version;
  cached_.emplace(result);
  return result;
}

void SolveCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  cached_.reset();
  version_ = 0;
}

SolveCache::Stats SolveCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.last_solve_ms = last_solve_ms_;
  stats.cached_version = cached_.has_value() ? version_ : 0;
  return stats;
}

}  // namespace fdm
