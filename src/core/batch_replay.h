#ifndef FDM_CORE_BATCH_REPLAY_H_
#define FDM_CORE_BATCH_REPLAY_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/streaming_candidate.h"
#include "geo/metric.h"
#include "geo/point_buffer.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"
#ifndef FDM_NO_METRICS
#include <atomic>
#include <chrono>
#endif

namespace fdm {

/// The rung-major batched replay engine shared by the fair fixed-ladder
/// algorithms (SFDM1 is the `m = 2` special case of SFDM2's layout, they
/// differ only in how candidates are addressed — hence the accessors).
///
/// Task `j` owns rung `j`'s candidates — the group-blind `S_µj` and one
/// `S_µj,i` per group — and replays the batch into each in stream order
/// through `TryAddBatch`, which front-loads the batch's distance scans
/// against the candidate's pre-batch contents into one SIMD pass over the
/// stored blocks; per-candidate state still evolves exactly as under
/// per-element `Observe` (admission decisions depend only on that
/// candidate's own contents, and the batched form is decision-identical).
/// Rungs never share state, so partitioning them over threads is exact. A
/// full candidate is skipped with one check per batch (full is permanent).
///
/// `by_group[g]` lists the batch positions holding group-`g` elements
/// (computed once by the caller, read-only here); `blind_at(j)` and
/// `specific_at(g, j)` return references into the caller's candidate
/// storage.
///
/// `rung_kept[j]` (caller-owned, length `rungs`) receives the number of
/// successful insertions rung `j` performed across its candidates. Each
/// task writes only its own slot, so the array is race-free; because the
/// per-candidate `TryAdd` sequence is identical to per-element `Observe`,
/// the counts are chunking-invariant — they feed the rung-level and
/// sink-level state versions that key the incremental query path.
///
/// The query path mirrors this determinism contract exactly
/// (`SolveParallelism`, core/solve_pool.h): a parallel `Solve()` fans its
/// per-rung (or per-shard) post-processing out with task `j` owning rung
/// `j`'s inputs and writing only slot `j` of the result array — each task
/// builds its own scratch (`KernelWorkspace` mirrors included) — while
/// the final best-rung selection stays a sequential ascending-index scan
/// with strict `>`. Ingest-side rung parallelism is thus bit-identical to
/// per-element processing, and solve-side rung parallelism bit-identical
/// to the sequential solve, for the same structural reason: rungs share
/// no state, and every cross-rung decision happens in one fixed order.
template <typename BlindAt, typename SpecificAt>
void ReplayBatchRungMajor(BatchParallelism& parallelism, size_t rungs,
                          int num_groups, std::span<const StreamPoint> batch,
                          const std::vector<size_t>* by_group,
                          const Metric& metric, BlindAt&& blind_at,
                          SpecificAt&& specific_at, size_t* rung_kept) {
#ifndef FDM_NO_METRICS
  // Per-rung admission-scan latency, sampled 1 batch in 16: always-on
  // timing would read the clock twice per rung per batch (~80 rungs × two
  // ~25ns reads ≈ 10% of a small batch's work), which the micro_obs
  // overhead gate would fail. Sampling keeps the distribution honest —
  // rung choice is not correlated with the batch counter — at amortized
  // sub-1% cost.
  static std::atomic<uint64_t> batch_seq{0};
  const bool sampled =
      (batch_seq.fetch_add(1, std::memory_order_relaxed) & 0xF) == 0;
  static obs::Histogram& rung_hist =
      obs::MetricsRegistry::Global().GetHistogram(
          "fdm_ingest_rung_scan_ns",
          "per-rung admission-scan latency per batch (1/16 sampled)");
#endif
  parallelism.Run(rungs, [&](size_t j) {
#ifndef FDM_NO_METRICS
    // Clock reads only on sampled batches — an unconditional timer would
    // reintroduce the per-rung cost the sampling exists to avoid.
    std::chrono::steady_clock::time_point rung_start;
    if (sampled) rung_start = std::chrono::steady_clock::now();
#endif
    size_t kept = 0;
    StreamingCandidate& blind = blind_at(j);
    if (!blind.Full()) {
      kept += blind.TryAddBatch(batch, metric);
    }
    for (int g = 0; g < num_groups; ++g) {
      StreamingCandidate& candidate = specific_at(g, j);
      if (candidate.Full()) continue;
      kept += candidate.TryAddBatchIndexed(batch, by_group[g], metric);
    }
    rung_kept[j] = kept;
#ifndef FDM_NO_METRICS
    if (sampled) {
      rung_hist.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - rung_start)
              .count()));
    }
#endif
  });
}

}  // namespace fdm

#endif  // FDM_CORE_BATCH_REPLAY_H_
