#ifndef FDM_CORE_SFDM1_H_
#define FDM_CORE_SFDM1_H_

#include <span>
#include <string_view>
#include <vector>

#include "core/fairness.h"
#include "core/guess_ladder.h"
#include "core/solution.h"
#include "core/solve_pool.h"
#include "core/stream_sink.h"
#include "core/streaming_candidate.h"
#include "core/streaming_dm.h"
#include "geo/metric.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fdm {

/// SFDM1 (Algorithm 2) — `(1−ε)/4`-approximate one-pass streaming algorithm
/// for fair diversity maximization with exactly two groups.
///
/// Stream processing: for each guess `µ ∈ U` it maintains one group-blind
/// candidate `S_µ` (capacity `k`) and two group-specific candidates
/// `S_µ,i` (capacity `k_i`), all via the Algorithm 1 insertion rule.
///
/// Post-processing (`Solve`): on every `µ` whose three candidates are full,
/// the group-blind candidate is balanced — elements of the under-filled
/// group are inserted greedily (farthest from the same-group selection
/// first, mirroring GMM) from its group-specific candidate, then elements
/// of the over-filled group closest to the under-filled side are deleted —
/// and the balanced candidate of maximum diversity wins (Lemma 2
/// guarantees `div ≥ µ/2` after balancing).
///
/// Costs (Theorem 3): `O(k log∆/ε)` time per element, `O(k² log∆/ε)`
/// post-processing, `O(k log∆/ε)` stored elements.
class Sfdm1 : public StreamSink {
 public:
  /// Creates the algorithm. The constraint must have exactly two groups
  /// with positive quotas (use SFDM2 for general `m`).
  static Result<Sfdm1> Create(const FairnessConstraint& constraint, size_t dim,
                              MetricKind metric,
                              const StreamingOptions& options);

  /// Processes one stream element (Algorithm 2, lines 3–8). Returns true
  /// iff any candidate kept the element.
  bool Observe(const StreamPoint& point) override;

  /// Batched ingestion: rung `j`'s three candidates (`S_µj`, `S_µj,0`,
  /// `S_µj,1`) are touched only by rung `j`'s task, which replays the
  /// batch in stream order — bit-identical to per-element `Observe`,
  /// partitioned over `batch_threads`.
  size_t ObserveBatch(std::span<const StreamPoint> batch) override;

  /// Advances by the number of successful candidate insertions
  /// (chunking-invariant; see `StreamSink::StateVersion`).
  uint64_t StateVersion() const override { return state_version_; }

  /// Post-processing and final selection (Algorithm 2, lines 9–18).
  /// Fails with `Infeasible` if no guess has all three candidates full
  /// (stream too small / degenerate for the constraint).
  ///
  /// Does not consume the stream state: more elements may be observed and
  /// `Solve` called again (anytime behaviour). Per-rung balancing fans
  /// out over `solve_threads` (each task reads only rung `j`'s candidates
  /// and writes only slot `j`); the final best-rung selection stays a
  /// sequential ascending-µ scan with strict `>`, so output is
  /// bit-identical to the sequential path at any thread count.
  Result<Solution> Solve() const override;

  /// Adjusts `solve_threads` on the live sink; see `StreamSink`.
  void SetSolveThreads(int solve_threads) override {
    solve_parallelism_.set_solve_threads(solve_threads);
  }

  /// Distinct elements stored across all candidates (space-usage measure).
  size_t StoredElements() const override;

  int64_t ObservedElements() const override { return observed_; }
  const GuessLadder& ladder() const { return ladder_; }
  const FairnessConstraint& constraint() const { return constraint_; }

  /// Versioned state serialization; see `StreamSink::Snapshot`.
  Status Snapshot(SnapshotWriter& writer) const override;

  /// Rebuilds the algorithm from a snapshot taken by `Snapshot`.
  static Result<Sfdm1> Restore(SnapshotReader& reader);

  static constexpr std::string_view kSnapshotTag = "sfdm1";

 private:
  Sfdm1(FairnessConstraint constraint, size_t dim, MetricKind metric,
        GuessLadder ladder, int batch_threads, int solve_threads);

  /// Balances a copy of the group-blind candidate for guess index `j`
  /// (which must be in `U'`) and returns it; `nullopt`-like empty buffer is
  /// never returned — the caller checked membership in `U'`.
  PointBuffer BalancedCandidate(size_t j) const;

  FairnessConstraint constraint_;
  int k_;
  size_t dim_;
  Metric metric_;
  GuessLadder ladder_;
  std::vector<StreamingCandidate> blind_;      // S_µ, capacity k
  std::vector<StreamingCandidate> specific_[2];  // S_µ,i, capacity k_i
  BatchParallelism parallelism_;
  SolveParallelism solve_parallelism_;
  PackedBatch packed_;  // batch repack scratch, reused across batches
  std::vector<size_t> by_group_[2];  // per-group positions scratch
  std::vector<size_t> rung_kept_;    // per-rung batch insert counts scratch
  int64_t observed_ = 0;
  uint64_t state_version_ = 0;
};

}  // namespace fdm

#endif  // FDM_CORE_SFDM1_H_
