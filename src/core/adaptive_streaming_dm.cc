#include "core/adaptive_streaming_dm.h"

#include <set>
#include <string>
#include <vector>

#include "core/diversity.h"
#include "core/snapshot_util.h"
#include "geo/point_buffer_io.h"
#include "util/binary_io.h"
#include "util/check.h"

namespace fdm {

Result<AdaptiveStreamingDm> AdaptiveStreamingDm::Create(int k, size_t dim,
                                                        MetricKind metric,
                                                        double epsilon,
                                                        size_t max_rungs,
                                                        int solve_threads) {
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1, got " + std::to_string(k));
  }
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    return Status::InvalidArgument("epsilon must be in (0,1)");
  }
  if (max_rungs < 1) {
    return Status::InvalidArgument("max_rungs must be >= 1");
  }
  AdaptiveStreamingDm algo(k, dim, metric, epsilon, max_rungs, solve_threads);
  algo.pending_ = PointBuffer(dim, 1);
  return algo;
}

void AdaptiveStreamingDm::GrowUp() {
  const StreamingCandidate& top = rungs_.back();
  const double new_mu = top.mu() / (1.0 - epsilon_);
  StreamingCandidate rung(new_mu, static_cast<size_t>(k_), dim_);
  // Seed by greedy filtering: keep points of the old top candidate that
  // are pairwise >= new_mu (scan in insertion order; TryAdd enforces the
  // invariant). Capacity cannot overflow: the source has <= k points.
  for (size_t i = 0; i < top.points().size(); ++i) {
    rung.TryAdd(top.points().ViewAt(i), metric_);
  }
  rungs_.push_back(std::move(rung));
}

void AdaptiveStreamingDm::GrowDown() {
  const StreamingCandidate& bottom = rungs_.front();
  const double new_mu = bottom.mu() * (1.0 - epsilon_);
  StreamingCandidate rung(new_mu, static_cast<size_t>(k_), dim_);
  // Seed with a copy: the old bottom's points are pairwise >= µ_old >
  // new_mu, so the invariant holds and every TryAdd below succeeds.
  for (size_t i = 0; i < bottom.points().size(); ++i) {
    const bool added = rung.TryAdd(bottom.points().ViewAt(i), metric_);
    FDM_DCHECK(added);
    (void)added;
  }
  rungs_.push_front(std::move(rung));
}

bool AdaptiveStreamingDm::Observe(const StreamPoint& point) {
  FDM_DCHECK(point.coords.size() == dim_);
  ++observed_;
  bool mutated = false;

  if (rungs_.empty()) {
    if (!pending_valid_) {
      pending_.Add(point);
      pending_valid_ = true;
      ++state_version_;
      return true;
    }
    const double d =
        metric_(pending_.CoordsAt(0).data(), point.coords.data(), dim_);
    // Duplicate of the first point — no information, nothing mutated.
    if (d <= 0.0) return false;
    // Seed the ladder at the first observed nonzero distance and replay
    // the held first point.
    StreamingCandidate rung(d, static_cast<size_t>(k_), dim_);
    rung.TryAdd(pending_.ViewAt(0), metric_);
    rungs_.push_back(std::move(rung));
    mutated = true;
  }

  // Extend downward while the bottom rung would reject the point for
  // being too close, yet is not full — a smaller guess may need it.
  while (rungs_.size() < max_rungs_) {
    const StreamingCandidate& bottom = rungs_.front();
    if (bottom.Full()) break;
    const double d = bottom.points().MinDistanceTo(point.coords, metric_);
    if (d <= 0.0 || d >= bottom.mu()) break;
    GrowDown();
    mutated = true;
  }

  // Extend upward while the point is far enough from the top candidate
  // that a higher guess could also hold it — OPT may exceed the ladder.
  while (rungs_.size() < max_rungs_) {
    const StreamingCandidate& top = rungs_.back();
    if (top.points().empty()) break;
    const double d = top.points().MinDistanceTo(point.coords, metric_);
    if (d < top.mu() / (1.0 - epsilon_)) break;
    GrowUp();
    mutated = true;
  }

  for (auto& rung : rungs_) {
    if (rung.TryAdd(point, metric_)) mutated = true;
  }
  if (mutated) ++state_version_;
  return mutated;
}

Result<Solution> AdaptiveStreamingDm::Solve() const {
  // Per-rung diversity over `solve_threads` (each task writes only its own
  // slot), then a sequential ascending-µ winner scan with strict `>` — the
  // same split as the fixed-ladder sinks, so output is bit-identical to
  // the sequential path at any thread count.
  std::vector<double> diversity(rungs_.size(), -1.0);
  std::vector<uint8_t> full(rungs_.size(), 0);
  solve_parallelism_.Run(rungs_.size(), [&](size_t j) {
    const StreamingCandidate& rung = rungs_[j];
    if (!rung.Full()) return;
    full[j] = 1;
    diversity[j] =
        k_ >= 2 ? MinPairwiseDistance(rung.points(), metric_) : rung.mu();
  });
  const StreamingCandidate* best = nullptr;
  double best_div = -1.0;
  for (size_t j = 0; j < rungs_.size(); ++j) {
    if (!full[j]) continue;
    if (diversity[j] > best_div) {
      best_div = diversity[j];
      best = &rungs_[j];
    }
  }
  if (best == nullptr) {
    return Status::Infeasible(
        "no candidate reached k=" + std::to_string(k_) +
        " elements; stream has fewer than k sufficiently distinct points");
  }
  Solution solution(dim_);
  for (size_t i = 0; i < best->points().size(); ++i) {
    solution.points.Add(best->points().ViewAt(i));
  }
  solution.diversity = best_div;
  solution.mu = best->mu();
  return solution;
}

Status AdaptiveStreamingDm::Snapshot(SnapshotWriter& writer) const {
  writer.WriteString(kSnapshotTag);
  writer.WriteI32(k_);
  writer.WriteU64(dim_);
  writer.WriteU8(static_cast<uint8_t>(metric_.kind()));
  writer.WriteDouble(epsilon_);
  writer.WriteU64(max_rungs_);
  writer.WriteI32(solve_parallelism_.solve_threads());
  writer.WriteI64(observed_);
  writer.WriteU64(state_version_);
  writer.WriteBool(pending_valid_);
  SerializePointBuffer(writer, pending_);
  writer.WriteU64(rungs_.size());
  for (const StreamingCandidate& rung : rungs_) {
    writer.WriteDouble(rung.mu());
    SerializePointBuffer(writer, rung.points());
  }
  return Status::Ok();
}

Result<AdaptiveStreamingDm> AdaptiveStreamingDm::Restore(
    SnapshotReader& reader) {
  if (!internal::ConsumeTag(reader, kSnapshotTag)) return reader.status();
  const int k = reader.ReadI32();
  const size_t dim = reader.ReadU64();
  const MetricKind metric = internal::ReadMetricKind(reader);
  const double epsilon = reader.ReadDouble();
  const size_t max_rungs = reader.ReadU64();
  const int solve_threads = reader.ReadI32();
  const int64_t observed = reader.ReadI64();
  const uint64_t state_version = reader.ReadU64();
  const bool pending_valid = reader.ReadBool();
  if (!reader.ok()) return reader.status();
  auto created = Create(k, dim, metric, epsilon, max_rungs, solve_threads);
  if (!created.ok()) return created.status();
  AdaptiveStreamingDm algo = std::move(created.value());
  DeserializePointBuffer(reader, algo.pending_);
  const size_t rungs = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (rungs > max_rungs) {
    reader.Fail("rung count " + std::to_string(rungs) + " exceeds max_rungs " +
                std::to_string(max_rungs));
    return reader.status();
  }
  for (size_t j = 0; j < rungs; ++j) {
    const double mu = reader.ReadDouble();
    if (!reader.ok()) return reader.status();
    StreamingCandidate rung(mu, static_cast<size_t>(k), dim);
    internal::RestoreCandidatePoints(reader, rung);
    if (!reader.ok()) return reader.status();
    algo.rungs_.push_back(std::move(rung));
  }
  algo.pending_valid_ = pending_valid;
  algo.observed_ = observed;
  algo.state_version_ = state_version;
  return algo;
}

size_t AdaptiveStreamingDm::StoredElements() const {
  std::set<int64_t> distinct;
  for (const auto& rung : rungs_) {
    for (size_t i = 0; i < rung.points().size(); ++i) {
      distinct.insert(rung.points().IdAt(i));
    }
  }
  if (pending_valid_ && rungs_.empty()) distinct.insert(pending_.IdAt(0));
  return distinct.size();
}

}  // namespace fdm
