#include "core/matroid_intersection.h"

#include <limits>
#include <queue>

#include "util/check.h"

namespace fdm {
namespace {

/// BFS over the augmentation graph of Definition 2, built lazily from the
/// matroid oracles. Node ids: `0..n-1` are ground elements, `n` is the
/// source `a`, `n+1` is the sink `b`. Returns the shortest `a → b` path
/// (inclusive) or empty if none exists. Neighbor expansion is in ascending
/// element order, so the walk is deterministic.
std::vector<int> ShortestAugmentingPath(const Matroid& m1, const Matroid& m2,
                                        std::span<const int> members,
                                        const std::vector<char>& in_set) {
  const int n = m1.GroundSize();
  const int a = n;
  const int b = n + 1;
  std::vector<int> parent(static_cast<size_t>(n) + 2, -2);  // -2 = unvisited
  std::queue<int> queue;
  parent[static_cast<size_t>(a)] = -1;
  queue.push(a);

  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop();
    if (v == b) break;

    auto visit = [&](int next) {
      if (parent[static_cast<size_t>(next)] == -2) {
        parent[static_cast<size_t>(next)] = v;
        queue.push(next);
      }
    };

    if (v == a) {
      // (a, x) for each x ∈ V1 = {x ∉ S : S + x ∈ I1}.
      for (int x = 0; x < n; ++x) {
        if (!in_set[static_cast<size_t>(x)] && m1.CanAdd(members, x)) {
          visit(x);
        }
      }
    } else if (!in_set[static_cast<size_t>(v)]) {
      // v = x ∉ S. Edge (x, b) if x ∈ V2; edges (x, y) for y ∈ S with
      // S + x ∉ I2 and S + x − y ∈ I2.
      if (m2.CanAdd(members, v)) {
        visit(b);
      } else {
        for (const int y : members) {
          if (m2.CanExchange(members, v, y)) visit(y);
        }
      }
    } else {
      // v = y ∈ S. Edges (y, x) for x ∉ S with S + x ∉ I1 and
      // S + x − y ∈ I1.
      for (int x = 0; x < n; ++x) {
        if (in_set[static_cast<size_t>(x)]) continue;
        if (!m1.CanAdd(members, x) && m1.CanExchange(members, x, v)) {
          visit(x);
        }
      }
    }
  }

  if (parent[static_cast<size_t>(b)] == -2) return {};
  std::vector<int> path;
  for (int v = b; v != -1; v = parent[static_cast<size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::vector<int> MaxCardinalityMatroidIntersection(
    const Matroid& m1, const Matroid& m2, std::span<const int> initial,
    const DistanceToSetFn& distance_fn) {
  const int n = m1.GroundSize();
  FDM_CHECK(n == m2.GroundSize());

  std::vector<int> members(initial.begin(), initial.end());
  std::vector<char> in_set(static_cast<size_t>(n), 0);
  for (const int e : members) {
    FDM_CHECK(e >= 0 && e < n);
    FDM_CHECK_MSG(!in_set[static_cast<size_t>(e)],
                  "initial set has duplicates");
    in_set[static_cast<size_t>(e)] = 1;
  }
  FDM_CHECK_MSG(m1.IsIndependent(members),
                "initial set not independent in M1");
  FDM_CHECK_MSG(m2.IsIndependent(members),
                "initial set not independent in M2");

  // Greedy phase (Algorithm 4, lines 2–7): directly insert elements of
  // V1 ∩ V2, farthest-from-solution first. Each such insertion corresponds
  // to the trivial augmenting path ⟨a, x, b⟩.
  while (true) {
    int best = -1;
    double best_distance = -std::numeric_limits<double>::infinity();
    for (int x = 0; x < n; ++x) {
      if (in_set[static_cast<size_t>(x)]) continue;
      if (!m1.CanAdd(members, x) || !m2.CanAdd(members, x)) continue;
      const double d =
          distance_fn ? distance_fn(x, members)
                      : static_cast<double>(n - x);  // first index wins
      if (d > best_distance) {
        best_distance = d;
        best = x;
      }
    }
    if (best < 0) break;
    members.push_back(best);
    in_set[static_cast<size_t>(best)] = 1;
  }

  // Augmentation phase (Algorithm 4, lines 8–14): flip shortest a→b paths.
  while (true) {
    const std::vector<int> path =
        ShortestAugmentingPath(m1, m2, members, in_set);
    if (path.empty()) break;
    // Interior nodes alternate x ∉ S (add) and y ∈ S (remove); net +1.
    for (size_t i = 1; i + 1 < path.size(); ++i) {
      const int v = path[i];
      in_set[static_cast<size_t>(v)] ^= 1;
    }
    members.clear();
    for (int e = 0; e < n; ++e) {
      if (in_set[static_cast<size_t>(e)]) members.push_back(e);
    }
    FDM_DCHECK(m1.IsIndependent(members));
    FDM_DCHECK(m2.IsIndependent(members));
  }
  return members;
}

}  // namespace fdm
