#ifndef FDM_CORE_FAIRNESS_H_
#define FDM_CORE_FAIRNESS_H_

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "util/status.h"

namespace fdm {

/// The group-fairness constraint of Definition 1: the solution must contain
/// exactly `quotas[i]` elements of group `i`. Quotas are positive
/// (the paper assumes `k_i ∈ Z+`).
///
/// This is exactly a rank-`k` partition matroid whose maximal independent
/// sets are the fair selections (Section III-A).
struct FairnessConstraint {
  std::vector<int> quotas;

  int num_groups() const { return static_cast<int>(quotas.size()); }

  /// `k = Σ k_i`.
  int TotalK() const {
    return std::accumulate(quotas.begin(), quotas.end(), 0);
  }

  /// OK iff every quota is positive and there is at least one group.
  Status Validate() const;

  /// OK iff the constraint is satisfiable on a dataset with the given
  /// per-group element counts (`group_sizes[i] >= quotas[i]`).
  Status ValidateAgainst(std::span<const size_t> group_sizes) const;
};

/// Equal representation (ER): `k_i = k/m`, distributing the remainder
/// `k mod m` one-per-group from group 0 upward (the paper: "k_i = ⌈k/m⌉ for
/// some groups or k_i = ⌊k/m⌋ for the others with Σ k_i = k").
/// Requires `k >= m` so that every quota is positive.
Result<FairnessConstraint> EqualRepresentation(int k, int m);

/// Proportional representation (PR): `k_i ≈ k · n_i / n` via the largest-
/// remainder method, then raising zero quotas to 1 (taking from the largest
/// quota) so each group stays represented — the paper restricts all
/// experiments to at least one element per group.
/// Requires `k >= m`.
Result<FairnessConstraint> ProportionalRepresentation(
    int k, std::span<const size_t> group_sizes);

}  // namespace fdm

#endif  // FDM_CORE_FAIRNESS_H_
