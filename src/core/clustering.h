#ifndef FDM_CORE_CLUSTERING_H_
#define FDM_CORE_CLUSTERING_H_

#include <vector>

#include "geo/point_buffer.h"

namespace fdm {

/// Threshold clustering used by SFDM2's post-processing (Algorithm 3,
/// lines 13–16): start from singletons and merge clusters while two
/// clusters contain points at distance `< threshold`. The fixed point is
/// the set of connected components of the graph with edges
/// `{(x,y) : d(x,y) < threshold}` — computed here by union-find over all
/// pairs, O(l²) distances for `l` points (l ≤ k(m+1) in SFDM2).
///
/// Returns dense cluster labels `0..c-1` in order of first appearance.
/// Guarantees Lemma 3(i): points in different clusters are at distance
/// `≥ threshold`.
std::vector<int> ThresholdClusters(const PointBuffer& points,
                                   const Metric& metric, double threshold);

}  // namespace fdm

#endif  // FDM_CORE_CLUSTERING_H_
