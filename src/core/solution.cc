#include "core/solution.h"

#include "core/diversity.h"

namespace fdm {

Solution Solution::FromIndices(const Dataset& dataset,
                               std::span<const size_t> indices) {
  Solution s(dataset.dim());
  for (const size_t i : indices) {
    s.points.Add(dataset.At(i));
  }
  s.diversity = MinPairwiseDistance(s.points, dataset.metric());
  return s;
}

}  // namespace fdm
