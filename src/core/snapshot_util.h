#ifndef FDM_CORE_SNAPSHOT_UTIL_H_
#define FDM_CORE_SNAPSHOT_UTIL_H_

#include <string>
#include <string_view>

#include "core/guess_ladder.h"
#include "core/streaming_dm.h"
#include "geo/metric.h"
#include "geo/point_buffer_io.h"
#include "util/binary_io.h"

namespace fdm::internal {

/// Consumes the type tag at the cursor; fails the reader (sticky) if it is
/// not `expected`. Returns `reader.ok()` so deserializers can early-out.
inline bool ConsumeTag(SnapshotReader& reader, std::string_view expected) {
  const std::string tag = reader.ReadString();
  if (reader.ok() && tag != expected) {
    reader.Fail("type tag '" + tag + "' where '" + std::string(expected) +
                "' was expected");
  }
  return reader.ok();
}

/// Reads a `MetricKind` byte, failing the reader on out-of-range values.
inline MetricKind ReadMetricKind(SnapshotReader& reader) {
  const uint8_t byte = reader.ReadU8();
  if (reader.ok() && byte > static_cast<uint8_t>(MetricKind::kAngular)) {
    reader.Fail("metric kind byte " + std::to_string(byte) + " out of range");
  }
  return static_cast<MetricKind>(byte);
}

/// The `(dim, metric, d_min, d_max, ε, batch_threads, solve_threads)`
/// block shared by the fixed-ladder algorithms' snapshots — one
/// writer/reader pair so the field order can never drift between
/// StreamingDm, Sfdm1, and Sfdm2.
inline void WriteStreamingHeader(SnapshotWriter& writer, size_t dim,
                                 const Metric& metric,
                                 const GuessLadder& ladder,
                                 int batch_threads, int solve_threads) {
  writer.WriteU64(dim);
  writer.WriteU8(static_cast<uint8_t>(metric.kind()));
  writer.WriteDouble(ladder.d_min());
  writer.WriteDouble(ladder.d_max());
  writer.WriteDouble(ladder.epsilon());
  writer.WriteI32(batch_threads);
  writer.WriteI32(solve_threads);
}

struct StreamingHeader {
  size_t dim = 0;
  MetricKind metric = MetricKind::kEuclidean;
  StreamingOptions options;  // d_min, d_max, ε, batch/solve threads
};

inline StreamingHeader ReadStreamingHeader(SnapshotReader& reader) {
  StreamingHeader header;
  header.dim = reader.ReadU64();
  header.metric = ReadMetricKind(reader);
  header.options.d_min = reader.ReadDouble();
  header.options.d_max = reader.ReadDouble();
  header.options.epsilon = reader.ReadDouble();
  header.options.batch_threads = reader.ReadI32();
  header.options.solve_threads = reader.ReadI32();
  return header;
}

/// Restores one candidate's points, enforcing its capacity bound.
template <typename Candidate>
void RestoreCandidatePoints(SnapshotReader& reader, Candidate& candidate) {
  DeserializePointBuffer(reader, candidate.MutablePointsForRestore());
  if (reader.ok() && candidate.points().size() > candidate.capacity()) {
    reader.Fail("candidate holds " + std::to_string(candidate.points().size()) +
                " points, capacity " + std::to_string(candidate.capacity()));
  }
}

}  // namespace fdm::internal

#endif  // FDM_CORE_SNAPSHOT_UTIL_H_
