#ifndef FDM_CORE_SOLVE_CACHE_H_
#define FDM_CORE_SOLVE_CACHE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string_view>

#include "core/solution.h"
#include "obs/histogram.h"
#include "util/status.h"

namespace fdm {

/// Memoizes the last `Solve()` outcome of a sink, keyed by its
/// `StreamSink::StateVersion()`.
///
/// The streaming algorithms split into a cheap one-pass ingest and an
/// expensive post-processing `Solve()` (GMM clustering + fair
/// augmentation). Most `Observe` calls reject the element and leave sink
/// state — and therefore the `Solve()` answer — untouched, so a serving
/// layer that re-runs the post-processing per query wastes almost all of
/// its query budget. `SolveCache` exploits the `StateVersion` contract:
/// equal versions guarantee bit-identical `Solve()` output, so a cached
/// result can be served verbatim (failed solves included — an `Infeasible`
/// stream stays infeasible until state changes).
///
/// Thread-safety: all methods are safe to call concurrently. `GetOrCompute`
/// serializes the *compute* path under a dedicated compute mutex, which is
/// what lets `Sfdm2::Solve()` keep mutable incremental post-processing
/// scratch without its own locking — at most one solver callback runs at a
/// time per cache. The entry mutex is held only for the cheap
/// lookup/store/stats sections, so a long-running compute never blocks
/// `GetStats` or a concurrent hit on the already-cached version. Callers
/// must still guarantee the sink is not mutated while a solver callback
/// reads it (the service layer does this with a reader–writer session
/// lock: queries hold it shared, ingest exclusive).
class SolveCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// State version of the currently cached result (0 if none yet).
    uint64_t cached_version = 0;
    /// Per-cache latency of cache-hit serves (nanoseconds, lock wait and
    /// result copy included) and of cache-miss computes. Kept as plain
    /// histograms under the entry mutex — they survive `FDM_NO_METRICS`,
    /// so STATS p50/p99 work in both configurations; the process-wide
    /// `fdm_solve_cached_ns`/`fdm_solve_cold_ns` registry histograms
    /// mirror them when metrics are enabled.
    obs::HistogramSnapshot hit_ns;
    obs::HistogramSnapshot miss_ns;
  };

  SolveCache() = default;
  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Returns the cached result if it was computed at exactly `version`;
  /// otherwise runs `solver`, caches its outcome under `version`, and
  /// returns it. The caller must derive `version` from the same sink the
  /// solver reads, with the sink unmutated in between. `context` tags the
  /// slow-op journal entry for a slow compute (a session name or similar);
  /// it is not stored past the call.
  Result<Solution> GetOrCompute(
      uint64_t version, const std::function<Result<Solution>()>& solver,
      std::string_view context = {});

  /// Drops the cached result (e.g. after swapping the underlying sink for
  /// one with an unrelated version history).
  void Invalidate();

  /// True iff a `GetOrCompute(version, ...)` right now would be a hit.
  /// Cheap (no histogram copies) — the serving front end's admission
  /// control asks this per SOLVE to tell apart the ~µs cached path from a
  /// cache-missing recompute it may have to shed. Advisory only: a
  /// concurrent ingest can move the sink's version right after.
  bool IsCachedAt(uint64_t version) const {
    std::lock_guard<std::mutex> lock(mu_);
    return cached_.has_value() && version_ == version;
  }

  Stats GetStats() const;

 private:
  mutable std::mutex mu_;  // guards all fields below; held briefly
  std::mutex compute_mu_;  // serializes solver callbacks; never nested in mu_
  std::optional<Result<Solution>> cached_;
  uint64_t version_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  obs::HistogramSnapshot hit_ns_;
  obs::HistogramSnapshot miss_ns_;
};

}  // namespace fdm

#endif  // FDM_CORE_SOLVE_CACHE_H_
