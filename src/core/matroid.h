#ifndef FDM_CORE_MATROID_H_
#define FDM_CORE_MATROID_H_

#include <span>
#include <vector>

#include "util/check.h"

namespace fdm {

/// Independence oracle for a matroid over the ground set `{0..n-1}`.
///
/// The intersection algorithm (Algorithm 4) only ever queries sets it
/// already knows to be independent, so the oracle interface exposes the
/// two incremental questions the augmentation graph needs (Definition 2):
/// can `x` join, and can `x` replace `y`.
class Matroid {
 public:
  virtual ~Matroid() = default;

  /// Ground set size.
  virtual int GroundSize() const = 0;

  /// Matroid rank (size of every maximal independent set).
  virtual int Rank() const = 0;

  /// True iff `members` is independent. `members` holds distinct element
  /// ids. Used for validation and tests; the hot path uses the two
  /// incremental forms below.
  virtual bool IsIndependent(std::span<const int> members) const = 0;

  /// True iff `members ∪ {x}` is independent, given `members` independent
  /// and `x ∉ members`.
  virtual bool CanAdd(std::span<const int> members, int x) const = 0;

  /// True iff `members ∪ {x} \ {y}` is independent, given `members`
  /// independent, `x ∉ members`, `y ∈ members`, and `members ∪ {x}` NOT
  /// independent (the exchange-edge case of Definition 2).
  virtual bool CanExchange(std::span<const int> members, int x,
                           int y) const = 0;
};

/// Partition matroid: the ground set is partitioned by `labels` and a set
/// is independent iff it holds at most `capacities[l]` elements of each
/// part `l`. Both matroids of SFDM2 are of this form — M1 partitions by
/// demographic group with capacities `k_i`; M2 partitions by cluster with
/// capacity 1 (Algorithm 3, line 17).
class PartitionMatroid final : public Matroid {
 public:
  /// `labels[e]` is the part of element `e` (in `[0, capacities.size())`).
  PartitionMatroid(std::vector<int> labels, std::vector<int> capacities);

  int GroundSize() const override {
    return static_cast<int>(labels_.size());
  }
  int Rank() const override;
  bool IsIndependent(std::span<const int> members) const override;
  bool CanAdd(std::span<const int> members, int x) const override;
  bool CanExchange(std::span<const int> members, int x, int y) const override;

  int label_of(int e) const { return labels_[static_cast<size_t>(e)]; }
  int capacity_of(int part) const {
    return capacities_[static_cast<size_t>(part)];
  }
  int num_parts() const { return static_cast<int>(capacities_.size()); }

 private:
  /// Count of members with the same label as part `part`.
  int CountPart(std::span<const int> members, int part) const;

  std::vector<int> labels_;
  std::vector<int> capacities_;
};

}  // namespace fdm

#endif  // FDM_CORE_MATROID_H_
