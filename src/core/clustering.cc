#include "core/clustering.h"

#include <vector>

#include "util/union_find.h"

namespace fdm {

std::vector<int> ThresholdClusters(const PointBuffer& points,
                                   const Metric& metric, double threshold) {
  const int l = static_cast<int>(points.size());
  UnionFind uf(l);
  // Row-at-a-time through the dispatched per-point kernel: one scan yields
  // the raw distances from point `i` to everything, and only the upper
  // triangle (`j > i`) is consulted. The scalar loop skipped already-
  // connected pairs; computing their distances anyway cannot change the
  // partition (a `d < threshold` union of connected elements is a no-op,
  // and `DenseLabels` is partition-invariant), so the output is identical.
  std::vector<double> raw;
  for (int i = 0; i + 1 < l; ++i) {
    points.RawDistancesToAll(points.CoordsAt(static_cast<size_t>(i)), metric,
                             raw);
    for (int j = i + 1; j < l; ++j) {
      if (uf.Connected(i, j)) continue;
      const double d = metric.FinishDistance(raw[static_cast<size_t>(j)]);
      if (d < threshold) uf.Union(i, j);
    }
  }
  return uf.DenseLabels();
}

}  // namespace fdm
