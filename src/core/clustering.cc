#include "core/clustering.h"

#include "util/union_find.h"

namespace fdm {

std::vector<int> ThresholdClusters(const PointBuffer& points,
                                   const Metric& metric, double threshold) {
  const int l = static_cast<int>(points.size());
  UnionFind uf(l);
  for (int i = 0; i < l; ++i) {
    for (int j = i + 1; j < l; ++j) {
      if (uf.Connected(i, j)) continue;
      const double d = metric(points.CoordsAt(static_cast<size_t>(i)),
                              points.CoordsAt(static_cast<size_t>(j)));
      if (d < threshold) uf.Union(i, j);
    }
  }
  return uf.DenseLabels();
}

}  // namespace fdm
