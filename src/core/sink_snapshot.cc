#include "core/sink_snapshot.h"

#include <string>
#include <utility>

#include "core/adaptive_streaming_dm.h"
#include "core/sfdm1.h"
#include "core/sfdm2.h"
#include "core/sharded_stream.h"
#include "core/sliding_window.h"
#include "core/streaming_dm.h"

namespace fdm {

Result<std::unique_ptr<StreamSink>> RestoreSink(SnapshotReader& reader) {
  const std::string tag = reader.PeekString();
  if (!reader.ok()) return reader.status();
  if (tag == StreamingDm::kSnapshotTag) {
    return WrapSink(StreamingDm::Restore(reader));
  }
  if (tag == Sfdm1::kSnapshotTag) return WrapSink(Sfdm1::Restore(reader));
  if (tag == Sfdm2::kSnapshotTag) return WrapSink(Sfdm2::Restore(reader));
  if (tag == AdaptiveStreamingDm::kSnapshotTag) {
    return WrapSink(AdaptiveStreamingDm::Restore(reader));
  }
  if (tag == ShardedStreamingDm::kSnapshotTag) {
    return WrapSink(ShardedStreamingDm::Restore(reader));
  }
  if (tag == SlidingWindow<StreamingDm>::kSnapshotTag) {
    // The windowed kind the registry exposes runs over StreamingDm; the
    // inner Restore verifies the nested tag and errors out cleanly on any
    // other underlying algorithm.
    return WrapSink(SlidingWindow<StreamingDm>::Restore(reader));
  }
  return Status::Unsupported("unknown sink snapshot tag '" + tag + "'");
}

}  // namespace fdm
