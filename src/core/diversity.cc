#include "core/diversity.h"

#include <limits>

#include "util/check.h"

namespace fdm {

double MinPairwiseDistance(const PointBuffer& buffer, const Metric& metric) {
  const size_t n = buffer.size();
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double d = metric(buffer.CoordsAt(i), buffer.CoordsAt(j));
      if (d < best) best = d;
    }
  }
  return best;
}

double MinPairwiseDistance(const Dataset& dataset,
                           std::span<const size_t> indices) {
  const Metric metric = dataset.metric();
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < indices.size(); ++i) {
    for (size_t j = i + 1; j < indices.size(); ++j) {
      const double d =
          metric(dataset.Point(indices[i]), dataset.Point(indices[j]));
      if (d < best) best = d;
    }
  }
  return best;
}

double SumPairwiseDistance(const Dataset& dataset,
                           std::span<const size_t> indices) {
  const Metric metric = dataset.metric();
  double sum = 0.0;
  for (size_t i = 0; i < indices.size(); ++i) {
    for (size_t j = i + 1; j < indices.size(); ++j) {
      sum += metric(dataset.Point(indices[i]), dataset.Point(indices[j]));
    }
  }
  return sum;
}

std::vector<int> GroupCounts(const PointBuffer& buffer, int num_groups) {
  FDM_CHECK(num_groups >= 1);
  std::vector<int> counts(static_cast<size_t>(num_groups), 0);
  for (size_t i = 0; i < buffer.size(); ++i) {
    const int32_t g = buffer.GroupAt(i);
    FDM_CHECK(g >= 0 && g < num_groups);
    ++counts[static_cast<size_t>(g)];
  }
  return counts;
}

bool SatisfiesQuotas(const PointBuffer& buffer, std::span<const int> quotas) {
  const std::vector<int> counts =
      GroupCounts(buffer, static_cast<int>(quotas.size()));
  for (size_t i = 0; i < quotas.size(); ++i) {
    if (counts[i] != quotas[i]) return false;
  }
  return true;
}

}  // namespace fdm
