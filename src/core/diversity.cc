#include "core/diversity.h"

#include <limits>
#include <vector>

#include "core/kernel_workspace.h"
#include "util/check.h"

namespace fdm {

// The pairwise reductions walk row `i`'s dispatched per-point scan and
// consult only the upper triangle (`j > i`), in the scalar loop's exact
// `(i, j)` order — each finished entry is bit-identical to
// `metric(point_i, point_j)`, so minima and sums match the scalar loops
// bit for bit. Self-distances (and the `j < i` half) are computed but
// never read.

double MinPairwiseDistance(const PointBuffer& buffer, const Metric& metric) {
  const size_t n = buffer.size();
  double best = std::numeric_limits<double>::infinity();
  std::vector<double> raw;
  for (size_t i = 0; i + 1 < n; ++i) {
    buffer.RawDistancesToAll(buffer.CoordsAt(i), metric, raw);
    for (size_t j = i + 1; j < n; ++j) {
      const double d = metric.FinishDistance(raw[j]);
      if (d < best) best = d;
    }
  }
  return best;
}

double MinPairwiseDistance(const Dataset& dataset,
                           std::span<const size_t> indices) {
  const Metric metric = dataset.metric();
  double best = std::numeric_limits<double>::infinity();
  if (indices.size() < 2) return best;
  KernelWorkspace workspace(dataset.dim(), indices.size());
  workspace.AssignRows(dataset, indices);
  std::vector<double> raw;
  for (size_t i = 0; i + 1 < indices.size(); ++i) {
    workspace.RawDistancesTo(dataset.Point(indices[i]), metric, raw);
    for (size_t j = i + 1; j < indices.size(); ++j) {
      const double d = metric.FinishDistance(raw[j]);
      if (d < best) best = d;
    }
  }
  return best;
}

double SumPairwiseDistance(const Dataset& dataset,
                           std::span<const size_t> indices) {
  const Metric metric = dataset.metric();
  double sum = 0.0;
  if (indices.size() < 2) return sum;
  KernelWorkspace workspace(dataset.dim(), indices.size());
  workspace.AssignRows(dataset, indices);
  std::vector<double> raw;
  for (size_t i = 0; i + 1 < indices.size(); ++i) {
    workspace.RawDistancesTo(dataset.Point(indices[i]), metric, raw);
    for (size_t j = i + 1; j < indices.size(); ++j) {
      sum += metric.FinishDistance(raw[j]);
    }
  }
  return sum;
}

std::vector<int> GroupCounts(const PointBuffer& buffer, int num_groups) {
  FDM_CHECK(num_groups >= 1);
  std::vector<int> counts(static_cast<size_t>(num_groups), 0);
  for (size_t i = 0; i < buffer.size(); ++i) {
    const int32_t g = buffer.GroupAt(i);
    FDM_CHECK(g >= 0 && g < num_groups);
    ++counts[static_cast<size_t>(g)];
  }
  return counts;
}

bool SatisfiesQuotas(const PointBuffer& buffer, std::span<const int> quotas) {
  const std::vector<int> counts =
      GroupCounts(buffer, static_cast<int>(quotas.size()));
  for (size_t i = 0; i < quotas.size(); ++i) {
    if (counts[i] != quotas[i]) return false;
  }
  return true;
}

}  // namespace fdm
