#ifndef FDM_CORE_SLIDING_WINDOW_H_
#define FDM_CORE_SLIDING_WINDOW_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>

#include "core/snapshot_util.h"
#include "core/solution.h"
#include "core/stream_sink.h"
#include "geo/point_buffer.h"
#include "util/binary_io.h"
#include "util/check.h"
#include "util/status.h"

namespace fdm {

/// Sliding-window adapter over any one-pass diversity algorithm
/// (`StreamingDm`, `Sfdm1`, `Sfdm2`) — the paper's future-work setting
/// ("diversity maximization problems with fairness constraints in more
/// general settings, e.g., the sliding-window model").
///
/// Design: checkpointed replicas. A fresh instance of the underlying
/// algorithm is started every `window / checkpoints` elements; an instance
/// whose start has slid out of the window can hold expired elements and is
/// discarded. Queries are answered by the oldest instance started inside
/// the window, which covers a suffix of at least
/// `window · (1 − 1/checkpoints)` of the most recent elements — so every
/// reported element is guaranteed in-window, and the approximation is with
/// respect to that suffix. More checkpoints narrow the uncovered prefix at
/// a linear cost in memory (instances alive ≤ checkpoints + 1).
///
/// This is the standard practical checkpointing scheme, not the
/// theoretically stronger smooth-histogram construction of Borassi et
/// al. [7]; the trade-off is documented here and in DESIGN.md §2.5.
///
/// The adapter is itself a `StreamSink`, so the harness, the service
/// layer, and WAL replay drive it through the same contract as the
/// one-pass algorithms. `Observe` cannot report a factory failure through
/// the sink interface, so a mid-stream factory error latches a sticky
/// error that the next `Solve()` returns (Create probes the factory once,
/// so this only fires for genuinely stateful factories).
///
/// `Algo` must provide `Observe(const StreamPoint&)`,
/// `Result<Solution> Solve() const`, `size_t StoredElements() const`,
/// `SetSolveThreads(int)`, and — for `Snapshot`/`Restore` — the static
/// `Restore(SnapshotReader&)` hook plus copyability.
template <typename Algo>
class SlidingWindow : public StreamSink {
 public:
  /// Creates fresh instances of the underlying algorithm.
  using Factory = std::function<Result<Algo>()>;

  static constexpr std::string_view kSnapshotTag = "sliding_window";

  /// `window` is the number of most recent elements a solution may use;
  /// `checkpoints >= 1` controls the coverage granularity.
  static Result<SlidingWindow> Create(int64_t window, int64_t checkpoints,
                                      Factory factory) {
    if (window < 1) return Status::InvalidArgument("window must be >= 1");
    if (checkpoints < 1 || checkpoints > window) {
      return Status::InvalidArgument(
          "checkpoints must be in [1, window]");
    }
    if (!factory) return Status::InvalidArgument("factory must be set");
    // Validate the factory up front so configuration errors surface at
    // Create, not at the first Observe.
    Result<Algo> probe = factory();
    if (!probe.ok()) return probe.status();
    return SlidingWindow(window, (window + checkpoints - 1) / checkpoints,
                         std::move(factory));
  }

  /// Feeds one element to every live replica and manages their lifecycle.
  /// Returns true iff the element mutated state: it spawned a replica, was
  /// kept by some replica, or rolled the window (dropped an expired
  /// replica — which changes the replica that answers `Solve`).
  bool Observe(const StreamPoint& point) override {
    if (!error_.ok()) return false;  // latched factory failure; stream dead
    bool mutated = false;
    // Start a new replica at every stride boundary.
    if (position_ % stride_ == 0) {
      Result<Algo> fresh = factory_();
      if (!fresh.ok()) {
        // Latching the error changes what Solve() returns, so it counts
        // as a state mutation and advances the version — a version-keyed
        // cache would otherwise keep serving the stale pre-error solution
        // and mask the dead stream.
        error_ = fresh.status();
        ++state_version_;
        return true;
      }
      replicas_.push_back({position_, std::move(fresh.value())});
      if (solve_threads_override_.has_value()) {
        replicas_.back().algo.SetSolveThreads(*solve_threads_override_);
      }
      mutated = true;
    }
    for (auto& replica : replicas_) {
      if (replica.algo.Observe(point)) mutated = true;
    }
    ++position_;
    // Drop replicas that started before the window: they may hold expired
    // elements and can never become valid again. Because a replica spawns
    // every `stride_ <= window_` positions, at least one replica always
    // starts inside the window, so this never empties the deque.
    const int64_t window_start = WindowStart();
    while (!replicas_.empty() && replicas_.front().start < window_start) {
      replicas_.pop_front();
      mutated = true;
    }
    FDM_DCHECK(!replicas_.empty());
    if (mutated) ++state_version_;
    return mutated;
  }

  /// Advances once per mutating `Observe` (chunking-invariant: the
  /// inherited `ObserveBatch` is the per-element loop). `Solve()` answers
  /// from the front replica, which changes only on a spawn/keep/drop — all
  /// of which advance the version.
  uint64_t StateVersion() const override { return state_version_; }

  /// Solution over (a suffix of) the current window. Every element id in
  /// the result was observed within the last `window` elements.
  Result<Solution> Solve() const override {
    if (!error_.ok()) return error_;
    const int64_t window_start = WindowStart();
    for (const auto& replica : replicas_) {
      if (replica.start >= window_start) {
        return replica.algo.Solve();
      }
    }
    return Status::Infeasible(
        "no replica covers the current window yet (stream shorter than one "
        "checkpoint stride)");
  }

  /// Routes `solve_threads` into the underlying algorithm: applied to
  /// every live replica and remembered for future spawns. A query is
  /// answered by exactly one replica (the oldest in-window one — the
  /// others exist for coverage, not for answering), so query-path
  /// parallelism lives inside that replica's own rung fan-out rather than
  /// across checkpoints; replicas that will never answer are not solved
  /// at all. Like every `solve_threads` path this is bit-identity
  /// preserving and does not advance `StateVersion`.
  void SetSolveThreads(int solve_threads) override {
    solve_threads_override_ = solve_threads;
    for (auto& replica : replicas_) {
      replica.algo.SetSolveThreads(solve_threads);
    }
  }

  /// Elements stored across all live replicas.
  size_t StoredElements() const override {
    size_t total = 0;
    for (const auto& replica : replicas_) {
      total += replica.algo.StoredElements();
    }
    return total;
  }

  int64_t ObservedElements() const override { return position_; }

  /// Serializes the window geometry, a pristine instance of the underlying
  /// algorithm (the restored factory clones it for future replicas), and
  /// every live replica. See `StreamSink::Snapshot`.
  Status Snapshot(SnapshotWriter& writer) const override {
    if (!error_.ok()) return error_;
    Result<Algo> pristine = factory_();
    if (!pristine.ok()) return pristine.status();
    writer.WriteString(kSnapshotTag);
    writer.WriteI64(window_);
    writer.WriteI64(stride_);
    writer.WriteI64(position_);
    writer.WriteU64(state_version_);
    if (Status s = pristine.value().Snapshot(writer); !s.ok()) return s;
    writer.WriteU64(replicas_.size());
    for (const auto& replica : replicas_) {
      writer.WriteI64(replica.start);
      if (Status s = replica.algo.Snapshot(writer); !s.ok()) return s;
    }
    return Status::Ok();
  }

  /// Rebuilds the adapter from a snapshot. The factory for future replicas
  /// copies the serialized pristine instance, so the restored adapter keeps
  /// spawning replicas with the original configuration.
  static Result<SlidingWindow> Restore(SnapshotReader& reader) {
    if (!internal::ConsumeTag(reader, kSnapshotTag)) return reader.status();
    const int64_t window = reader.ReadI64();
    const int64_t stride = reader.ReadI64();
    const int64_t position = reader.ReadI64();
    const uint64_t state_version = reader.ReadU64();
    if (!reader.ok()) return reader.status();
    Result<Algo> pristine = Algo::Restore(reader);
    if (!pristine.ok()) return pristine.status();
    auto prototype =
        std::make_shared<const Algo>(std::move(pristine.value()));
    if (prototype->ObservedElements() != 0) {
      reader.Fail("sliding-window prototype has observed elements");
      return reader.status();
    }
    const size_t replica_count = reader.ReadU64();
    if (!reader.ok()) return reader.status();
    if (stride < 1 || window < 1 ||
        replica_count > static_cast<size_t>(window / stride) + 2) {
      reader.Fail("implausible sliding-window geometry");
      return reader.status();
    }
    SlidingWindow restored(window, stride,
                           [prototype]() -> Result<Algo> {
                             return Algo(*prototype);
                           });
    for (size_t r = 0; r < replica_count; ++r) {
      const int64_t start = reader.ReadI64();
      Result<Algo> algo = Algo::Restore(reader);
      if (!algo.ok()) return algo.status();
      restored.replicas_.push_back({start, std::move(algo.value())});
    }
    if (!reader.ok()) return reader.status();
    restored.position_ = position;
    restored.state_version_ = state_version;
    return restored;
  }

  int64_t window() const { return window_; }
  size_t live_replicas() const { return replicas_.size(); }

  /// The latched factory error, if any (`Ok` during normal operation).
  const Status& error() const { return error_; }

 private:
  struct Replica {
    int64_t start;
    Algo algo;
  };

  SlidingWindow(int64_t window, int64_t stride, Factory factory)
      : window_(window), stride_(stride), factory_(std::move(factory)) {}

  /// First stream position inside the current window
  /// `[position_ - window_, position_ - 1]`.
  int64_t WindowStart() const {
    return position_ > window_ ? position_ - window_ : 0;
  }

  int64_t window_;
  int64_t stride_;
  Factory factory_;
  std::deque<Replica> replicas_;
  int64_t position_ = 0;
  uint64_t state_version_ = 0;
  Status error_;
  /// Set by `SetSolveThreads`; not serialized — the factory/prototype and
  /// each replica snapshot already carry their configured `solve_threads`,
  /// and the override is a runtime knob of this adapter instance.
  std::optional<int> solve_threads_override_;
};

}  // namespace fdm

#endif  // FDM_CORE_SLIDING_WINDOW_H_
