#ifndef FDM_CORE_GUESS_LADDER_H_
#define FDM_CORE_GUESS_LADDER_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace fdm {

/// The geometric sequence of guesses for the unknown optimum,
/// `U = { d_min / (1−ε)^j : j ∈ Z≥0 }` clipped to `[d_min, d_max]`
/// (Algorithm 1, line 1). One rung *above* `d_max` is also kept so that for
/// every in-range `µ` the successor `µ/(1−ε)` used by the analyses
/// (Lemma 1) exists in the ladder.
///
/// `|U| = O(log ∆ / ε)` with `∆ = d_max / d_min`, which is what gives the
/// streaming algorithms their `O(k log ∆ / ε)`-per-element cost.
class GuessLadder {
 public:
  /// Builds the ladder. Requires `0 < epsilon < 1` and
  /// `0 < d_min <= d_max`.
  static Result<GuessLadder> Create(double d_min, double d_max,
                                    double epsilon);

  /// Number of guesses `|U|`.
  size_t size() const { return values_.size(); }

  /// The `j`-th guess, ascending (`At(0) == d_min`).
  double At(size_t j) const { return values_[j]; }

  const std::vector<double>& values() const { return values_; }

  double epsilon() const { return epsilon_; }
  double d_min() const { return d_min_; }
  double d_max() const { return d_max_; }

 private:
  GuessLadder(std::vector<double> values, double d_min, double d_max,
              double epsilon)
      : values_(std::move(values)),
        d_min_(d_min),
        d_max_(d_max),
        epsilon_(epsilon) {}

  std::vector<double> values_;
  double d_min_;
  double d_max_;
  double epsilon_;
};

}  // namespace fdm

#endif  // FDM_CORE_GUESS_LADDER_H_
