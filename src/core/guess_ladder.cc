#include "core/guess_ladder.h"

#include <cmath>
#include <string>

namespace fdm {

Result<GuessLadder> GuessLadder::Create(double d_min, double d_max,
                                        double epsilon) {
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    return Status::InvalidArgument("epsilon must be in (0,1), got " +
                                   std::to_string(epsilon));
  }
  if (!(d_min > 0.0) || !std::isfinite(d_min)) {
    return Status::InvalidArgument("d_min must be positive and finite");
  }
  if (!(d_max >= d_min) || !std::isfinite(d_max)) {
    return Status::InvalidArgument("d_max must be >= d_min and finite");
  }
  std::vector<double> values;
  const double growth = 1.0 / (1.0 - epsilon);
  double mu = d_min;
  // Guard against pathological ladder sizes (e.g. absurd ∆ from bad bounds):
  // 10^7 rungs would mean the caller passed nonsense.
  constexpr size_t kMaxRungs = 10'000'000;
  while (mu < d_max) {
    values.push_back(mu);
    mu *= growth;
    if (values.size() >= kMaxRungs) {
      return Status::InvalidArgument("guess ladder too large: check d_min/"
                                     "d_max/epsilon");
    }
  }
  // The top rung at or above d_max (covers OPT <= d_max, and provides the
  // successor µ/(1−ε) for every in-range µ).
  values.push_back(mu);
  return GuessLadder(std::move(values), d_min, d_max, epsilon);
}

}  // namespace fdm
