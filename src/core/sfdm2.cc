#include "core/sfdm2.h"

#include <algorithm>
#include <limits>
#include <set>
#include <string>
#include <unordered_set>

#include "core/batch_replay.h"
#include "core/clustering.h"
#include "core/diversity.h"
#include "core/snapshot_util.h"
#include "geo/point_buffer_io.h"
#include "util/binary_io.h"
#include "core/matroid.h"
#include "core/matroid_intersection.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace fdm {

namespace {

// Per-rung post-processing latency inside a cold Solve(); shared with the
// SFDM-1 balancing path under the same metric name. Only dirty rungs are
// timed — a warm memo hit records nothing.
obs::Histogram& RungSolveHist() {
  static obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "fdm_solve_rung_ns", "per-rung post-processing latency in cold Solve()");
  return hist;
}

}  // namespace

Sfdm2::Sfdm2(FairnessConstraint constraint, size_t dim, MetricKind metric,
             GuessLadder ladder, int batch_threads, int solve_threads)
    : constraint_(std::move(constraint)),
      k_(constraint_.TotalK()),
      m_(constraint_.num_groups()),
      dim_(dim),
      metric_(metric),
      ladder_(std::move(ladder)),
      parallelism_(batch_threads),
      solve_parallelism_(solve_threads),
      rung_version_(ladder_.size(), 0),
      rung_solve_(ladder_.size()) {
  blind_.reserve(ladder_.size());
  specific_.reserve(ladder_.size() * static_cast<size_t>(m_));
  for (size_t j = 0; j < ladder_.size(); ++j) {
    blind_.emplace_back(ladder_.At(j), static_cast<size_t>(k_), dim_);
  }
  for (int i = 0; i < m_; ++i) {
    for (size_t j = 0; j < ladder_.size(); ++j) {
      // Group-specific capacity is k, not k_i (the Algorithm 3 deviation
      // from SFDM1 that Lemma 4's Case 2 relies on).
      specific_.emplace_back(ladder_.At(j), static_cast<size_t>(k_), dim_);
    }
  }
}

Result<Sfdm2> Sfdm2::Create(const FairnessConstraint& constraint, size_t dim,
                            MetricKind metric,
                            const StreamingOptions& options) {
  if (Status s = constraint.Validate(); !s.ok()) return s;
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  auto ladder =
      GuessLadder::Create(options.d_min, options.d_max, options.epsilon);
  if (!ladder.ok()) return ladder.status();
  return Sfdm2(constraint, dim, metric, std::move(ladder.value()),
               options.batch_threads, options.solve_threads);
}

bool Sfdm2::Observe(const StreamPoint& point) {
  FDM_DCHECK(point.coords.size() == dim_);
  FDM_CHECK_MSG(point.group >= 0 && point.group < m_,
                "stream element group out of range");
  ++observed_;
  const size_t rungs = ladder_.size();
  StreamingCandidate* group_row =
      specific_.data() + static_cast<size_t>(point.group) * rungs;
  size_t total_kept = 0;
  for (size_t j = 0; j < rungs; ++j) {
    size_t kept = 0;
    if (blind_[j].TryAdd(point, metric_)) ++kept;
    if (group_row[j].TryAdd(point, metric_)) ++kept;
    rung_version_[j] += kept;
    total_kept += kept;
  }
  state_version_ += total_kept;
  return total_kept > 0;
}

size_t Sfdm2::ObserveBatch(std::span<const StreamPoint> raw_batch) {
  if (raw_batch.empty()) return 0;
  for (const StreamPoint& point : raw_batch) {
    FDM_DCHECK(point.coords.size() == dim_);
    FDM_CHECK_MSG(point.group >= 0 && point.group < m_,
                  "stream element group out of range");
  }
  observed_ += static_cast<int64_t>(raw_batch.size());
  const std::span<const StreamPoint> batch = packed_.Pack(raw_batch, dim_);
  const size_t rungs = ladder_.size();
  // Per-group positions, computed once and shared read-only by all rungs
  // (member scratch, reused across batches like packed_).
  by_group_.resize(static_cast<size_t>(m_));
  for (auto& positions : by_group_) positions.clear();
  for (size_t t = 0; t < batch.size(); ++t) {
    by_group_[static_cast<size_t>(batch[t].group)].push_back(t);
  }
  rung_kept_.assign(rungs, 0);
  ReplayBatchRungMajor(
      parallelism_, rungs, m_, batch, by_group_.data(), metric_,
      [&](size_t j) -> StreamingCandidate& { return blind_[j]; },
      [&](int g, size_t j) -> StreamingCandidate& {
        return specific_[static_cast<size_t>(g) * rungs + j];
      },
      rung_kept_.data());
  size_t mutations = 0;
  for (size_t j = 0; j < rungs; ++j) {
    rung_version_[j] += rung_kept_[j];
    mutations += rung_kept_[j];
  }
  state_version_ += mutations;
  return mutations;
}

std::optional<Solution> Sfdm2::SolveRung(size_t j) const {
  const size_t rungs = ladder_.size();
  // U' membership for this guess: |S_µ| = k ∧ |S_µ,i| >= k_i ∀i (line 9).
  if (!blind_[j].Full()) return std::nullopt;
  for (int i = 0; i < m_; ++i) {
    const auto& cand = specific_[static_cast<size_t>(i) * rungs + j];
    if (static_cast<int>(cand.points().size()) <
        constraint_.quotas[static_cast<size_t>(i)]) {
      return std::nullopt;
    }
  }
  const double mu = ladder_.At(j);

  // S_all = S_µ ∪ (∪_i S_µ,i), deduplicated by element id (line 12).
  // The blind candidate's elements come first so the initial partial
  // solution can be addressed by ground-set position.
  PointBuffer ground(dim_, static_cast<size_t>(k_ * (m_ + 1)));
  std::unordered_set<int64_t> seen;
  const PointBuffer& blind = blind_[j].points();
  for (size_t i = 0; i < blind.size(); ++i) {
    if (seen.insert(blind.IdAt(i)).second) ground.Add(blind.ViewAt(i));
  }
  const size_t blind_count = ground.size();
  for (int g = 0; g < m_; ++g) {
    const PointBuffer& cand =
        specific_[static_cast<size_t>(g) * rungs + j].points();
    for (size_t i = 0; i < cand.size(); ++i) {
      if (seen.insert(cand.IdAt(i)).second) ground.Add(cand.ViewAt(i));
    }
  }
  const int l = static_cast<int>(ground.size());

  // Initial partial solution S'_µ: min(k_i, |S_µ ∩ X_i|) elements per
  // group, taken from S_µ in arrival order (line 11). The warm-start
  // ablation replaces it with ∅ (pure Cunningham, FairFlow-style).
  std::vector<int> initial;
  if (warm_start_) {
    std::vector<int> taken(static_cast<size_t>(m_), 0);
    for (size_t i = 0; i < blind_count; ++i) {
      const int g = ground.GroupAt(i);
      if (taken[static_cast<size_t>(g)] <
          constraint_.quotas[static_cast<size_t>(g)]) {
        initial.push_back(static_cast<int>(i));
        ++taken[static_cast<size_t>(g)];
      }
    }
  }

  // Threshold clustering at µ/(m+1) (lines 13–16).
  const std::vector<int> cluster_of =
      ThresholdClusters(ground, metric_, mu / static_cast<double>(m_ + 1));
  int num_clusters = 0;
  for (const int c : cluster_of) {
    if (c + 1 > num_clusters) num_clusters = c + 1;
  }

  // M1: fairness partition matroid; M2: one-per-cluster matroid
  // (line 17).
  std::vector<int> group_labels(static_cast<size_t>(l));
  for (int i = 0; i < l; ++i) {
    group_labels[static_cast<size_t>(i)] =
        ground.GroupAt(static_cast<size_t>(i));
  }
  const PartitionMatroid m1(group_labels, constraint_.quotas);
  const PartitionMatroid m2(
      cluster_of, std::vector<int>(static_cast<size_t>(num_clusters), 1));

  // Algorithm 4 with farthest-first greedy inserts (line 18). The member
  // set is mirrored into the kernel block layout so each ground-set scan
  // is one dispatched min-reduction instead of |members| scalar Metric
  // calls. The greedy phase only appends to the member set, so the mirror
  // usually extends by the new members; any other change (an augmentation
  // rebuilt the set) rebuilds the mirror. `MinDistanceTo` is the exact
  // minimum of the same per-pair values the scalar loop produced
  // (finishing the raw minimum commutes with the monotone, correctly
  // rounded sqrt), so augmentation decisions are bit-identical.
  PointBuffer member_mirror(dim_, static_cast<size_t>(k_));
  std::vector<int> mirrored;
  auto distance_to_set = [&](int x, std::span<const int> members) {
    const bool mirror_is_prefix =
        mirrored.size() <= members.size() &&
        std::equal(mirrored.begin(), mirrored.end(), members.begin());
    if (!mirror_is_prefix) {
      member_mirror.Clear();
      mirrored.clear();
    }
    for (size_t i = mirrored.size(); i < members.size(); ++i) {
      member_mirror.Add(ground.ViewAt(static_cast<size_t>(members[i])));
      mirrored.push_back(members[i]);
    }
    return member_mirror.MinDistanceTo(
        ground.CoordsAt(static_cast<size_t>(x)), metric_);
  };
  const std::vector<int> result = MaxCardinalityMatroidIntersection(
      m1, m2, initial,
      greedy_augmentation_ ? DistanceToSetFn(distance_to_set) : nullptr);
  if (static_cast<int>(result.size()) != k_) return std::nullopt;

  Solution solution(dim_);
  for (const int e : result) {
    solution.points.Add(ground.ViewAt(static_cast<size_t>(e)));
  }
  FDM_DCHECK(SatisfiesQuotas(solution.points, constraint_.quotas));
  solution.diversity = MinPairwiseDistance(solution.points, metric_);
  solution.mu = mu;
  return solution;
}

Result<Solution> Sfdm2::Solve() const {
  const size_t rungs = ladder_.size();

  // Phase 1 — memo fill, fanned out over `solve_threads`: re-run the
  // post-processing only for rungs whose candidates changed since the
  // memoized run. A rung's outcome is a pure function of its own
  // candidates (and the ablation knobs, which invalidate the memo when
  // flipped), so reusing it is exact, and task j touches only rung j's
  // candidates and its own `rung_solve_[j]` slot — `SolveRung` builds all
  // of its scratch (ground set, cluster labels, kernel mirrors) locally,
  // so concurrent tasks share nothing mutable.
  solve_parallelism_.Run(rungs, [this](size_t j) {
    RungSolve& memo = rung_solve_[j];
    if (memo.computed && memo.version == rung_version_[j]) return;
    obs::ScopedTimer timer(RungSolveHist());
    memo.solution = SolveRung(j);
    memo.version = rung_version_[j];
    memo.computed = true;
  });

  // Phase 2 — final selection (line 19), identical to the historical
  // single-pass scan: ascending µ, strictly-greater diversity wins, so
  // the winner is bit-identical to the sequential path at any thread
  // count. Only the winner is copied out of the memo, after the scan.
  const RungSolve* best = nullptr;
  for (size_t j = 0; j < rungs; ++j) {
    const RungSolve& memo = rung_solve_[j];
    if (!memo.solution.has_value()) continue;
    if (best == nullptr ||
        memo.solution->diversity > best->solution->diversity) {
      best = &memo;
    }
  }

  if (best == nullptr) {
    return Status::Infeasible(
        "no guess µ yielded a size-k fair solution; stream too small for "
        "the constraint or d_min overestimated");
  }
  return *best->solution;
}

size_t Sfdm2::StoredElements() const {
  std::set<int64_t> distinct;
  auto collect = [&distinct](const StreamingCandidate& c) {
    for (size_t i = 0; i < c.points().size(); ++i) {
      distinct.insert(c.points().IdAt(i));
    }
  };
  for (const auto& c : blind_) collect(c);
  for (const auto& c : specific_) collect(c);
  return distinct.size();
}

Status Sfdm2::Snapshot(SnapshotWriter& writer) const {
  writer.WriteString(kSnapshotTag);
  writer.WriteU64(constraint_.quotas.size());
  for (const int quota : constraint_.quotas) writer.WriteI32(quota);
  internal::WriteStreamingHeader(writer, dim_, metric_, ladder_,
                                 parallelism_.batch_threads(),
                                 solve_parallelism_.solve_threads());
  writer.WriteBool(warm_start_);
  writer.WriteBool(greedy_augmentation_);
  writer.WriteI64(observed_);
  writer.WriteU64(state_version_);
  writer.WriteU64(ladder_.size());
  // Rung-major: S_µj, then S_µj,i for every group i (ascending).
  for (size_t j = 0; j < ladder_.size(); ++j) {
    SerializePointBuffer(writer, blind_[j].points());
    for (int i = 0; i < m_; ++i) {
      SerializePointBuffer(writer,
                           specific_[static_cast<size_t>(i) * ladder_.size() +
                                     j].points());
    }
  }
  return Status::Ok();
}

Result<Sfdm2> Sfdm2::Restore(SnapshotReader& reader) {
  if (!internal::ConsumeTag(reader, kSnapshotTag)) return reader.status();
  FairnessConstraint constraint;
  const size_t num_groups = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (num_groups == 0 || num_groups > (1u << 20)) {
    reader.Fail("implausible group count " + std::to_string(num_groups));
    return reader.status();
  }
  for (size_t g = 0; g < num_groups; ++g) {
    constraint.quotas.push_back(reader.ReadI32());
  }
  const internal::StreamingHeader header =
      internal::ReadStreamingHeader(reader);
  const bool warm_start = reader.ReadBool();
  const bool greedy_augmentation = reader.ReadBool();
  const int64_t observed = reader.ReadI64();
  const uint64_t state_version = reader.ReadU64();
  const size_t rungs = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  auto created = Create(constraint, header.dim, header.metric, header.options);
  if (!created.ok()) return created.status();
  Sfdm2 algo = std::move(created.value());
  if (rungs != algo.ladder_.size()) {
    reader.Fail("rung count " + std::to_string(rungs) +
                " does not match rebuilt ladder of " +
                std::to_string(algo.ladder_.size()));
    return reader.status();
  }
  for (size_t j = 0; j < rungs; ++j) {
    internal::RestoreCandidatePoints(reader, algo.blind_[j]);
    for (int i = 0; i < algo.m_; ++i) {
      internal::RestoreCandidatePoints(
          reader, algo.specific_[static_cast<size_t>(i) * rungs + j]);
    }
  }
  if (!reader.ok()) return reader.status();
  // The knobs are assigned directly (not via the setters): the snapshot's
  // state_version already accounts for any flips the original saw.
  algo.warm_start_ = warm_start;
  algo.greedy_augmentation_ = greedy_augmentation;
  algo.observed_ = observed;
  algo.state_version_ = state_version;
  return algo;
}

}  // namespace fdm
