#ifndef FDM_CORE_MATROID_INTERSECTION_H_
#define FDM_CORE_MATROID_INTERSECTION_H_

#include <functional>
#include <span>
#include <vector>

#include "core/matroid.h"

namespace fdm {

/// Distance-to-solution callback for the greedy phase of Algorithm 4:
/// given a candidate element and the current solution members, return
/// `d(x, S)` (+infinity when S is empty). Pass nullptr to disable the
/// greedy ordering (plain Cunningham, used by tests as a cross-check).
using DistanceToSetFn =
    std::function<double(int element, std::span<const int> members)>;

/// Algorithm 4 — maximum-cardinality common independent set of two
/// matroids, adapted from Cunningham's algorithm:
///
///  1. warm start from `initial` (must be independent in both matroids —
///     SFDM2 passes the partial solution `S'_µ` extracted from `S_µ`);
///  2. greedy phase: while some element can join both matroids directly
///     (`V1 ∩ V2 ≠ ∅`), add the one farthest from the current solution —
///     this is the GMM-like selection that gives SFDM2 its practical
///     diversity edge over FairFlow;
///  3. augmentation phase: build the augmentation graph of Definition 2 and
///     flip BFS-shortest `a → b` paths until none exists.
///
/// Returns the final members (a maximum-cardinality common independent
/// set; Cunningham's correctness guarantees maximality regardless of the
/// warm start and greedy choices).
std::vector<int> MaxCardinalityMatroidIntersection(
    const Matroid& m1, const Matroid& m2, std::span<const int> initial,
    const DistanceToSetFn& distance_fn = nullptr);

}  // namespace fdm

#endif  // FDM_CORE_MATROID_INTERSECTION_H_
