#ifndef FDM_CORE_GMM_H_
#define FDM_CORE_GMM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"

namespace fdm {

/// GMM — the Gonzalez greedy algorithm [24], the classic offline
/// 1/2-approximation for max-min diversity maximization. Repeatedly adds
/// the point farthest from the current selection.
///
/// The paper uses GMM (a) as the unconstrained baseline in Table II and
/// Fig. 6, (b) inside FairSwap / FairFlow / FairGMM, and (c) to estimate
/// the upper bound `OPT_f ≤ OPT ≤ 2·div(GMM)` reported in the evaluation.
///
/// `universe` restricts the selection to a subset of dataset rows (pass all
/// rows for plain GMM; pass one group's rows for the per-group runs the
/// baselines need). `warm_start` seeds the selection with rows that are
/// treated as already chosen: they influence distances but are not
/// returned and do not count toward `k`.
///
/// The first selected point is `universe[start_index]` (deterministic;
/// callers vary it across repetitions). With a warm start the first point
/// is instead chosen farthest-first like every other point.
///
/// Returns the selected rows in selection order
/// (size `min(k, |universe| - |warm_start ∩ universe|)`). O(|universe|·k)
/// distance evaluations.
std::vector<size_t> GreedyGmm(const Dataset& dataset,
                              std::span<const size_t> universe, size_t k,
                              std::span<const size_t> warm_start = {},
                              size_t start_index = 0);

/// Convenience: GMM over all rows of `dataset`.
std::vector<size_t> GreedyGmm(const Dataset& dataset, size_t k);

/// All rows of `dataset` belonging to `group` (helper for per-group runs).
std::vector<size_t> RowsOfGroup(const Dataset& dataset, int32_t group);

}  // namespace fdm

#endif  // FDM_CORE_GMM_H_
