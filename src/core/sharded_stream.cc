#include "core/sharded_stream.h"

#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "core/diversity.h"
#include "core/gmm.h"
#include "core/snapshot_util.h"
#include "util/binary_io.h"
#include "util/check.h"

namespace fdm {

ShardedStreamingDm::ShardedStreamingDm(int k, size_t dim, MetricKind metric,
                                       std::vector<StreamingDm> shards,
                                       int batch_threads, int solve_threads)
    : k_(k),
      dim_(dim),
      metric_(metric),
      shards_(std::move(shards)),
      parallelism_(batch_threads),
      solve_parallelism_(solve_threads) {}

Result<ShardedStreamingDm> ShardedStreamingDm::Create(
    int k, size_t dim, MetricKind metric, const StreamingOptions& options,
    const ShardedStreamingOptions& sharding) {
  if (sharding.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  // Shards ingest (and solve) sequentially within a partition; parallelism
  // lives at the shard level, so nested rung-parallelism is disabled.
  StreamingOptions shard_options = options;
  shard_options.batch_threads = 1;
  shard_options.solve_threads = 1;
  std::vector<StreamingDm> shards;
  shards.reserve(sharding.num_shards);
  for (size_t s = 0; s < sharding.num_shards; ++s) {
    auto shard = StreamingDm::Create(k, dim, metric, shard_options);
    if (!shard.ok()) return shard.status();
    shards.push_back(std::move(shard.value()));
  }
  return ShardedStreamingDm(k, dim, metric, std::move(shards),
                            sharding.batch_threads, sharding.solve_threads);
}

bool ShardedStreamingDm::Observe(const StreamPoint& point) {
  const bool kept =
      shards_[static_cast<size_t>(observed_) % shards_.size()].Observe(point);
  ++observed_;
  return kept;
}

size_t ShardedStreamingDm::ObserveBatch(std::span<const StreamPoint> batch) {
  if (batch.empty()) return 0;
  const size_t num_shards = shards_.size();
  // Continue the round-robin rotation exactly where Observe left it, so
  // mixing Observe and ObserveBatch routes identically to pure Observe.
  const size_t start = static_cast<size_t>(observed_) % num_shards;
  const uint64_t version_before = StateVersion();
  observed_ += static_cast<int64_t>(batch.size());
  parallelism_.Run(num_shards, [&](size_t s) {
    StreamingDm& shard = shards_[s];
    // Shard s receives batch positions t with (start + t) % num_shards == s.
    size_t t = (s + num_shards - start) % num_shards;
    for (; t < batch.size(); t += num_shards) {
      shard.Observe(batch[t]);
    }
  });
  return static_cast<size_t>(StateVersion() - version_before);
}

uint64_t ShardedStreamingDm::StateVersion() const {
  uint64_t version = 0;
  for (const StreamingDm& shard : shards_) version += shard.StateVersion();
  return version;
}

Result<Solution> ShardedStreamingDm::Solve() const {
  // Per-shard solves fan out over `solve_threads` — shards share no
  // mutable state and each task writes only its own slot. The inner
  // shards solve sequentially (forced at Create), so no task re-enters
  // the shared solve pool.
  std::vector<std::optional<Solution>> locals(shards_.size());
  solve_parallelism_.Run(shards_.size(), [&](size_t s) {
    auto local = shards_[s].Solve();
    if (local.ok()) locals[s] = std::move(local.value());
  });
  // Merge: the union of the per-shard solutions is the composed coreset,
  // concatenated in shard order — the same order the sequential loop
  // produced, so the GMM reduce below sees an identical input. Substreams
  // are disjoint, so ids never collide across shards.
  PointBuffer merged(dim_, shards_.size() * static_cast<size_t>(k_));
  for (const std::optional<Solution>& local : locals) {
    if (!local.has_value()) continue;  // under-filled shard contributes nothing
    const PointBuffer& points = local->points;
    for (size_t i = 0; i < points.size(); ++i) merged.Add(points.ViewAt(i));
  }
  if (merged.size() < static_cast<size_t>(k_)) {
    return Status::Infeasible(
        "sharded coresets hold " + std::to_string(merged.size()) +
        " < k=" + std::to_string(k_) +
        " points; stream too small for this shard count");
  }

  // Reduce (post-process once): GMM over the merged coreset, reusing the
  // library's GreedyGmm via a throwaway Dataset view of the union (the
  // union is small — at most num_shards·k points). Selected rows map back
  // to `merged` to preserve the original stream ids and groups.
  Dataset coreset("sharded-coreset", dim_, /*num_groups=*/1, metric_.kind());
  coreset.Reserve(merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    coreset.Add(merged.CoordsAt(i), /*group=*/0);
  }
  const std::vector<size_t> selected =
      GreedyGmm(coreset, static_cast<size_t>(k_));
  FDM_CHECK(selected.size() == static_cast<size_t>(k_));

  Solution solution(dim_);
  for (const size_t i : selected) solution.points.Add(merged.ViewAt(i));
  solution.diversity = k_ >= 2
                           ? MinPairwiseDistance(solution.points, metric_)
                           : std::numeric_limits<double>::infinity();
  solution.mu = 0.0;  // post-processed selection, no single winning guess
  return solution;
}

Status ShardedStreamingDm::Snapshot(SnapshotWriter& writer) const {
  writer.WriteString(kSnapshotTag);
  writer.WriteI32(k_);
  writer.WriteU64(dim_);
  writer.WriteU8(static_cast<uint8_t>(metric_.kind()));
  writer.WriteI32(parallelism_.batch_threads());
  writer.WriteI32(solve_parallelism_.solve_threads());
  writer.WriteI64(observed_);
  writer.WriteU64(shards_.size());
  for (const StreamingDm& shard : shards_) {
    if (Status s = shard.Snapshot(writer); !s.ok()) return s;
  }
  return Status::Ok();
}

Result<ShardedStreamingDm> ShardedStreamingDm::Restore(SnapshotReader& reader) {
  if (!internal::ConsumeTag(reader, kSnapshotTag)) return reader.status();
  const int k = reader.ReadI32();
  const size_t dim = reader.ReadU64();
  const MetricKind metric = internal::ReadMetricKind(reader);
  const int batch_threads = reader.ReadI32();
  const int solve_threads = reader.ReadI32();
  const int64_t observed = reader.ReadI64();
  const size_t num_shards = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (num_shards == 0 || num_shards > (1u << 20)) {
    reader.Fail("implausible shard count " + std::to_string(num_shards));
    return reader.status();
  }
  std::vector<StreamingDm> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = StreamingDm::Restore(reader);
    if (!shard.ok()) return shard.status();
    shards.push_back(std::move(shard.value()));
  }
  ShardedStreamingDm driver(k, dim, metric, std::move(shards), batch_threads,
                            solve_threads);
  driver.observed_ = observed;
  return driver;
}

size_t ShardedStreamingDm::StoredElements() const {
  size_t total = 0;
  for (const StreamingDm& shard : shards_) total += shard.StoredElements();
  return total;
}

}  // namespace fdm
