#include "core/validate.h"

#include <cmath>
#include <string>
#include <unordered_set>

#include "core/diversity.h"

namespace fdm {

Status ValidateSolution(const Dataset& dataset, const Solution& solution,
                        const FairnessConstraint* constraint) {
  const PointBuffer& points = solution.points;
  if (points.dim() != dataset.dim()) {
    return Status::InvalidArgument(
        "solution dimension " + std::to_string(points.dim()) +
        " != dataset dimension " + std::to_string(dataset.dim()));
  }

  std::unordered_set<int64_t> seen;
  for (size_t i = 0; i < points.size(); ++i) {
    const int64_t id = points.IdAt(i);
    if (id < 0 || id >= static_cast<int64_t>(dataset.size())) {
      return Status::InvalidArgument("selected id " + std::to_string(id) +
                                     " outside dataset");
    }
    if (!seen.insert(id).second) {
      return Status::InvalidArgument("id " + std::to_string(id) +
                                     " selected twice");
    }
    const size_t row = static_cast<size_t>(id);
    if (points.GroupAt(i) != dataset.GroupOf(row)) {
      return Status::Internal("group mismatch for id " + std::to_string(id));
    }
    const auto stored = points.CoordsAt(i);
    const auto original = dataset.Point(row);
    for (size_t d = 0; d < dataset.dim(); ++d) {
      if (stored[d] != original[d]) {
        return Status::Internal("coordinate mismatch for id " +
                                std::to_string(id) + " at dimension " +
                                std::to_string(d));
      }
    }
  }

  const double recomputed = MinPairwiseDistance(points, dataset.metric());
  const bool both_infinite =
      std::isinf(recomputed) && std::isinf(solution.diversity);
  if (!both_infinite &&
      std::fabs(recomputed - solution.diversity) >
          1e-9 * std::max(1.0, std::fabs(recomputed))) {
    return Status::Internal(
        "reported diversity " + std::to_string(solution.diversity) +
        " != recomputed " + std::to_string(recomputed));
  }

  if (constraint != nullptr) {
    if (constraint->num_groups() != dataset.num_groups()) {
      return Status::InvalidArgument("constraint/dataset group mismatch");
    }
    if (!SatisfiesQuotas(points, constraint->quotas)) {
      return Status::Infeasible("selection does not meet the quotas");
    }
  }
  return Status::Ok();
}

}  // namespace fdm
