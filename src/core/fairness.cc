#include "core/fairness.h"

#include <algorithm>
#include <string>

namespace fdm {

Status FairnessConstraint::Validate() const {
  if (quotas.empty()) {
    return Status::InvalidArgument("fairness constraint has no groups");
  }
  for (size_t i = 0; i < quotas.size(); ++i) {
    if (quotas[i] <= 0) {
      return Status::InvalidArgument("quota for group " + std::to_string(i) +
                                     " must be positive, got " +
                                     std::to_string(quotas[i]));
    }
  }
  return Status::Ok();
}

Status FairnessConstraint::ValidateAgainst(
    std::span<const size_t> group_sizes) const {
  if (group_sizes.size() != quotas.size()) {
    return Status::InvalidArgument(
        "constraint has " + std::to_string(quotas.size()) +
        " groups but dataset has " + std::to_string(group_sizes.size()));
  }
  for (size_t i = 0; i < quotas.size(); ++i) {
    if (group_sizes[i] < static_cast<size_t>(quotas[i])) {
      return Status::Infeasible("group " + std::to_string(i) + " has only " +
                                std::to_string(group_sizes[i]) +
                                " elements but quota is " +
                                std::to_string(quotas[i]));
    }
  }
  return Status::Ok();
}

Result<FairnessConstraint> EqualRepresentation(int k, int m) {
  if (m <= 0) return Status::InvalidArgument("m must be positive");
  if (k < m) {
    return Status::InvalidArgument(
        "k = " + std::to_string(k) + " < m = " + std::to_string(m) +
        "; every group needs at least one slot");
  }
  FairnessConstraint c;
  c.quotas.assign(static_cast<size_t>(m), k / m);
  for (int i = 0; i < k % m; ++i) ++c.quotas[static_cast<size_t>(i)];
  return c;
}

Result<FairnessConstraint> ProportionalRepresentation(
    int k, std::span<const size_t> group_sizes) {
  const int m = static_cast<int>(group_sizes.size());
  if (m <= 0) return Status::InvalidArgument("no groups");
  if (k < m) {
    return Status::InvalidArgument(
        "k = " + std::to_string(k) + " < m = " + std::to_string(m) +
        "; every group needs at least one slot");
  }
  size_t n = 0;
  for (const size_t s : group_sizes) n += s;
  if (n == 0) return Status::InvalidArgument("empty dataset");

  FairnessConstraint c;
  c.quotas.assign(static_cast<size_t>(m), 0);
  std::vector<double> remainder(static_cast<size_t>(m));
  int assigned = 0;
  for (int i = 0; i < m; ++i) {
    const double ideal = static_cast<double>(k) *
                         static_cast<double>(group_sizes[static_cast<size_t>(i)]) /
                         static_cast<double>(n);
    c.quotas[static_cast<size_t>(i)] = static_cast<int>(ideal);
    remainder[static_cast<size_t>(i)] = ideal - static_cast<double>(
                                                    c.quotas[static_cast<size_t>(i)]);
    assigned += c.quotas[static_cast<size_t>(i)];
  }
  // Largest-remainder apportionment of the leftover slots.
  std::vector<int> order(static_cast<size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return remainder[static_cast<size_t>(a)] > remainder[static_cast<size_t>(b)];
  });
  for (int j = 0; assigned < k; ++j) {
    ++c.quotas[static_cast<size_t>(order[static_cast<size_t>(j % m)])];
    ++assigned;
  }
  // Raise empty groups to one slot, taking from the largest quota.
  for (int i = 0; i < m; ++i) {
    while (c.quotas[static_cast<size_t>(i)] == 0) {
      auto it = std::max_element(c.quotas.begin(), c.quotas.end());
      if (*it <= 1) {
        return Status::Infeasible("cannot give every group a slot with k = " +
                                  std::to_string(k));
      }
      --(*it);
      ++c.quotas[static_cast<size_t>(i)];
    }
  }
  return c;
}

}  // namespace fdm
