#ifndef FDM_CORE_COMPOSABLE_CORESET_H_
#define FDM_CORE_COMPOSABLE_CORESET_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace fdm {

/// Composable-coreset approach to *unconstrained* max-min diversity
/// maximization (Indyk et al. [27]; ratios improved by Aghamolaei et
/// al. [2]) — the distributed / MapReduce prior art the paper's related
/// work contrasts the streaming algorithms against.
///
/// The data is split into `num_blocks` blocks (round-robin over a seeded
/// permutation, mimicking an arbitrary shard assignment); GMM selects `k`
/// points per block (each block's selection is a composable coreset for
/// remote-edge diversity); the final solution is GMM over the union of the
/// coresets. Constant-factor approximation overall; communication per
/// block is O(k).
///
/// Included as a library baseline for completeness of the diversity
/// toolkit — it handles distribution but, unlike SFDM1/SFDM2, supports no
/// fairness constraint and needs a second round over the coreset union.
struct ComposableCoresetOptions {
  size_t num_blocks = 8;
  uint64_t shard_seed = 1;
};

/// Returns `min(k, n)` selected rows. Fails on `k == 0` or empty data.
Result<std::vector<size_t>> ComposableCoresetDm(
    const Dataset& dataset, size_t k,
    const ComposableCoresetOptions& options = {});

}  // namespace fdm

#endif  // FDM_CORE_COMPOSABLE_CORESET_H_
