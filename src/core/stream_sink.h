#ifndef FDM_CORE_STREAM_SINK_H_
#define FDM_CORE_STREAM_SINK_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/solution.h"
#include "geo/point_buffer.h"
#include "util/check.h"
#include "util/status.h"

namespace fdm {

class SnapshotWriter;
class SnapshotReader;

/// The uniform ingestion interface of the streaming algorithms
/// (`StreamingDm`, `Sfdm1`, `Sfdm2`, `AdaptiveStreamingDm`, and drivers
/// layered on top of them, like `ShardedStreamingDm`). The harness, the
/// benches, and applications feed any of them through this one contract:
///
///  * `Observe` consumes exactly one stream element. The element's
///    coordinate span is only valid during the call — sinks copy what they
///    retain (this keeps the paper's memory accounting honest). It returns
///    whether the element actually *mutated* retained state (kept by some
///    candidate, grew the ladder, rolled the window) so callers never have
///    to guess whether a query answer may have changed.
///  * `ObserveBatch(batch)` must be observationally equivalent to calling
///    `Observe` on each element of `batch` in order: any later `Solve()`
///    returns bit-identical output. Implementations are free to
///    parallelize across *independent internal state* (guess-ladder rungs,
///    shards) — never across the dependent per-element chain within one
///    piece of state — which is what makes batched ingestion a pure
///    speedup.
///  * `Solve` may be called at any time and does not consume the stream
///    state (anytime behaviour): more elements may be observed afterwards
///    and `Solve` called again. The query path mirrors the ingest-side
///    determinism contract: a sink may post-process *independent internal
///    state* (rungs, shards) on `solve_threads` workers, but the final
///    winner selection must stay a sequential in-order scan, so `Solve`
///    output is bit-identical at every `solve_threads` setting.
///  * `StateVersion` is a monotone counter that advances *only* when
///    `Observe`/`ObserveBatch` mutates retained state. It is the cache key
///    of the incremental query path: equal versions guarantee bit-identical
///    `Solve()` output, so `SolveCache` (core/solve_cache.h) and the
///    service layer can answer repeated queries without re-running the
///    post-processing. The counter is *chunking-invariant* — feeding a
///    stream per-element or via any `ObserveBatch` partition yields the
///    same final version — so a WAL replay (batched) reproduces the version
///    of the original (per-element) ingest and snapshots stay bit-identical
///    across recovery.
///  * `StoredElements` reports the distinct retained elements — the
///    paper's space-usage measure.
class StreamSink {
 public:
  virtual ~StreamSink() = default;

  /// Processes one stream element. Returns true iff the element mutated
  /// retained state (and hence advanced `StateVersion`).
  virtual bool Observe(const StreamPoint& point) = 0;

  /// Processes a batch of stream elements; equivalent to observing each in
  /// order. The default forwards to `Observe`; algorithms with independent
  /// per-rung or per-shard state override this with a parallel partition.
  /// Returns the number of state mutations the batch caused (an element
  /// kept by several internal candidates may count more than once); `0`
  /// means the batch left retained state — and `StateVersion` — untouched.
  virtual size_t ObserveBatch(std::span<const StreamPoint> batch) {
    size_t mutations = 0;
    for (const StreamPoint& point : batch) {
      if (Observe(point)) ++mutations;
    }
    return mutations;
  }

  /// Monotone state version; see the class comment for the contract.
  virtual uint64_t StateVersion() const = 0;

  /// The current best solution over everything observed so far.
  virtual Result<Solution> Solve() const = 0;

  /// Reconfigures the query-path parallelism knob on sinks that have one
  /// (`1` = sequential, `0` = all hardware threads, `n` = at most n); the
  /// default is a no-op for sinks without a threaded query path. Purely a
  /// latency knob: `Solve()` output is bit-identical at any setting, so
  /// changing it does NOT advance `StateVersion` — the serving layer and
  /// benches may flip it on a live (even restored) sink at will.
  virtual void SetSolveThreads(int solve_threads) { (void)solve_threads; }

  /// Distinct elements currently stored.
  virtual size_t StoredElements() const = 0;

  /// Total elements observed so far.
  virtual int64_t ObservedElements() const = 0;

  /// Serializes the sink's complete internal state (guess-ladder
  /// configuration, retained points, fairness counters) into `writer`,
  /// prefixed by the sink's type tag. The contract is a round-trip
  /// invariant: the matching static `Restore(SnapshotReader&)` on the
  /// concrete class yields a sink whose `Solve()`, `StoredElements()`, and
  /// `ObservedElements()` are bit-identical to this one, and which evolves
  /// identically under further `Observe` calls. `RestoreSink`
  /// (core/sink_snapshot.h) dispatches on the tag when the concrete type is
  /// not known statically. Sinks without durability support keep the
  /// default.
  virtual Status Snapshot(SnapshotWriter& writer) const {
    (void)writer;
    return Status::Unsupported("this sink does not support snapshots");
  }
};

/// Feeds the dataset rows listed in `order` into `sink`: chopped into
/// `batch_size`-element `ObserveBatch` calls (tail flushed) when
/// `batch_size > 1`, per-element `Observe` otherwise. The single feed
/// loop shared by the harness, the benches, and applications.
void IngestStream(StreamSink& sink, const Dataset& dataset,
                  std::span<const size_t> order, size_t batch_size);

/// Reusable scratch that repacks a batch's (possibly scattered) coordinate
/// spans into one contiguous block. A batched sink replays the batch once
/// per rung; packing first means every replay streams the coordinates
/// linearly instead of chasing the caller's memory layout (e.g. a permuted
/// view of a dataset) once per rung. The returned views stay valid until
/// the next `Pack` call.
class PackedBatch {
 public:
  std::span<const StreamPoint> Pack(std::span<const StreamPoint> batch,
                                    size_t dim) {
    coords_.clear();
    points_.clear();
    coords_.reserve(batch.size() * dim);
    points_.reserve(batch.size());
    for (const StreamPoint& point : batch) {
      FDM_DCHECK(point.coords.size() == dim);
      coords_.insert(coords_.end(), point.coords.begin(), point.coords.end());
    }
    for (size_t t = 0; t < batch.size(); ++t) {
      points_.push_back(StreamPoint{
          batch[t].id, batch[t].group,
          std::span<const double>(coords_.data() + t * dim, dim)});
    }
    return points_;
  }

 private:
  std::vector<double> coords_;
  std::vector<StreamPoint> points_;
};

}  // namespace fdm

#endif  // FDM_CORE_STREAM_SINK_H_
