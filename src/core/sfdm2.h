#ifndef FDM_CORE_SFDM2_H_
#define FDM_CORE_SFDM2_H_

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/fairness.h"
#include "core/guess_ladder.h"
#include "core/solution.h"
#include "core/solve_pool.h"
#include "core/stream_sink.h"
#include "core/streaming_candidate.h"
#include "core/streaming_dm.h"
#include "geo/metric.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fdm {

/// SFDM2 (Algorithm 3) — `(1−ε)/(3m+2)`-approximate one-pass streaming
/// algorithm for fair diversity maximization with an arbitrary number of
/// groups.
///
/// Stream processing: like SFDM1, but every group-specific candidate has
/// capacity `k` (not `k_i`) — the extra elements are the donor pool the
/// post-processing draws from.
///
/// Post-processing (`Solve`), per guess `µ` with `|S_µ| = k` and
/// `|S_µ,i| ≥ k_i` for all groups:
///   1. extract a partial solution `S'_µ` from `S_µ` (cap each group's
///      contribution at `k_i`);
///   2. cluster all retained elements at threshold `µ/(m+1)`
///      (single-linkage; Lemma 3 bounds each cluster to one element per
///      candidate and diameter `< µ·m/(m+1)`);
///   3. augment `S'_µ` to a maximum-cardinality common independent set of
///      the fairness partition matroid and the cluster partition matroid
///      via Algorithm 4 (greedy farthest-first inserts, then Cunningham
///      augmenting paths);
///   4. keep the size-`k` result of maximum diversity (`≥ µ/(m+1)` by
///      Lemma 4 whenever `OPT_f ≥ µ·(3m+2)/(m+1)`).
///
/// Costs (Theorem 5): `O(k log∆/ε)` time per element,
/// `O(k²·m·log∆/ε·(m + log²k))` post-processing, `O(km log∆/ε)` stored
/// elements.
class Sfdm2 : public StreamSink {
 public:
  /// Creates the algorithm for any `m >= 1` constraint.
  static Result<Sfdm2> Create(const FairnessConstraint& constraint, size_t dim,
                              MetricKind metric,
                              const StreamingOptions& options);

  /// Processes one stream element (Algorithm 3, lines 3–8). Touches only
  /// the group-blind candidate and the element's own group candidate per
  /// guess. Returns true iff any candidate kept the element.
  bool Observe(const StreamPoint& point) override;

  /// Batched ingestion: rung `j`'s candidates (`S_µj` and `S_µj,i` for all
  /// `i`) are touched only by rung `j`'s task, which replays the batch in
  /// stream order — bit-identical to per-element `Observe`, partitioned
  /// over `batch_threads`.
  size_t ObserveBatch(std::span<const StreamPoint> batch) override;

  /// Advances by the number of successful candidate insertions
  /// (chunking-invariant; see `StreamSink::StateVersion`).
  uint64_t StateVersion() const override { return state_version_; }

  /// Post-processing and final selection (Algorithm 3, lines 9–19).
  /// Fails with `Infeasible` if no guess yields a size-`k` fair solution.
  ///
  /// Incremental between calls: the expensive per-guess post-processing
  /// (ground-set assembly, threshold clustering, matroid-intersection
  /// augmentation) is memoized per rung, keyed by a per-rung mutation
  /// counter. A rung whose candidates did not change since the last call
  /// reuses its cached result; only dirty rungs are re-processed — and
  /// they are re-processed *from scratch*, because the ground-set ordering
  /// feeds tie-breaking in the greedy augmentation, so patching retained
  /// cluster structures in place could produce a different (equally fair)
  /// solution than a fresh replay. Memoization at rung granularity is the
  /// coarsest split that keeps the output bit-identical to an
  /// uninterrupted from-scratch `Solve()` at every stream prefix.
  ///
  /// Internally rung-parallel: dirty rungs fan out over `solve_threads`
  /// (each task fills only its own `rung_solve_[j]` memo slot and builds
  /// its own `KernelWorkspace` scratch), while the final best-rung
  /// selection stays a sequential ascending-µ scan with strict `>` — so
  /// output is bit-identical to the sequential path at any thread count.
  ///
  /// `Solve()` stays logically const (the memo is mutable scratch), but
  /// concurrent *calls* must still be externally serialized — two
  /// unsynchronized callers would race on the memo slots. `SolveCache`
  /// (core/solve_cache.h) does this in the service layer; everything else
  /// issues one `Solve()` at a time and lets the rung fan-out use the
  /// threads.
  Result<Solution> Solve() const override;

  /// Adjusts `solve_threads` on the live sink; see `StreamSink`.
  void SetSolveThreads(int solve_threads) override {
    solve_parallelism_.set_solve_threads(solve_threads);
  }

  /// Distinct elements stored across all candidates (space-usage measure).
  size_t StoredElements() const override;

  int64_t ObservedElements() const override { return observed_; }
  const GuessLadder& ladder() const { return ladder_; }
  const FairnessConstraint& constraint() const { return constraint_; }

  /// Versioned state serialization (including the ablation knobs); see
  /// `StreamSink::Snapshot`.
  Status Snapshot(SnapshotWriter& writer) const override;

  /// Rebuilds the algorithm from a snapshot taken by `Snapshot`.
  static Result<Sfdm2> Restore(SnapshotReader& reader);

  static constexpr std::string_view kSnapshotTag = "sfdm2";

  /// Ablation knobs for the two post-processing design choices the paper
  /// credits for SFDM2's practical edge over FairFlow (Section IV-B:
  /// "initializes with a partial solution instead of ∅ for higher
  /// efficiency and adds elements greedily like GMM for higher
  /// diversity"). Defaults reproduce the paper; the ablation bench flips
  /// them to quantify each choice. Flipping a knob changes what `Solve()`
  /// computes, so it advances the state version and drops the
  /// post-processing memo (the `StateVersion` contract — equal versions
  /// imply identical output — must survive reconfiguration).
  void set_warm_start(bool on) {
    if (warm_start_ == on) return;
    warm_start_ = on;
    InvalidatePostprocess();
  }
  void set_greedy_augmentation(bool on) {
    if (greedy_augmentation_ == on) return;
    greedy_augmentation_ = on;
    InvalidatePostprocess();
  }
  bool warm_start() const { return warm_start_; }
  bool greedy_augmentation() const { return greedy_augmentation_; }

 private:
  Sfdm2(FairnessConstraint constraint, size_t dim, MetricKind metric,
        GuessLadder ladder, int batch_threads, int solve_threads);

  /// One memoized per-guess post-processing outcome (see `Solve`).
  struct RungSolve {
    bool computed = false;
    /// `rung_version_[j]` at compute time; a mismatch marks the rung dirty.
    uint64_t version = 0;
    /// The rung's size-`k` fair solution, or nullopt when the rung was not
    /// eligible / could not be augmented to size `k`.
    std::optional<Solution> solution;
  };

  /// Runs the full Algorithm 3 post-processing (lines 10–18) for guess
  /// index `j`; nullopt when the rung yields no size-`k` fair solution.
  std::optional<Solution> SolveRung(size_t j) const;

  /// Drops every memoized rung result and advances the state version
  /// (used when a reconfiguration changes what `Solve` would compute).
  void InvalidatePostprocess() {
    ++state_version_;
    for (RungSolve& entry : rung_solve_) entry.computed = false;
  }

  FairnessConstraint constraint_;
  int k_;
  int m_;
  size_t dim_;
  Metric metric_;
  GuessLadder ladder_;
  std::vector<StreamingCandidate> blind_;  // S_µ, capacity k, per rung
  // specific_[i * ladder_.size() + j] = S_µj,i, capacity k.
  std::vector<StreamingCandidate> specific_;
  BatchParallelism parallelism_;
  SolveParallelism solve_parallelism_;
  PackedBatch packed_;  // batch repack scratch, reused across batches
  std::vector<std::vector<size_t>> by_group_;  // per-group positions scratch
  std::vector<size_t> rung_kept_;  // per-rung batch insert counts scratch
  int64_t observed_ = 0;
  bool warm_start_ = true;
  bool greedy_augmentation_ = true;
  uint64_t state_version_ = 0;
  /// Per-rung mutation counters (insertions into `S_µj` or any `S_µj,i`);
  /// `state_version_` is their running sum. Not serialized: the memo below
  /// is in-memory only, so a restored sink starts with fresh counters and
  /// an empty memo, which is always consistent.
  std::vector<uint64_t> rung_version_;
  mutable std::vector<RungSolve> rung_solve_;  // post-processing memo
};

}  // namespace fdm

#endif  // FDM_CORE_SFDM2_H_
