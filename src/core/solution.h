#ifndef FDM_CORE_SOLUTION_H_
#define FDM_CORE_SOLUTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "geo/point_buffer.h"

namespace fdm {

/// The output of a diversity-maximization algorithm: the selected elements
/// (owned copies — valid even after the stream is gone), the achieved
/// `div(S)`, and diagnostics.
struct Solution {
  /// Selected elements (ids, groups, coordinates).
  PointBuffer points;

  /// `div(S)` under the algorithm's metric (+infinity if |S| < 2).
  double diversity = 0.0;

  /// The winning guess `µ` for streaming algorithms; 0 for offline ones.
  double mu = 0.0;

  explicit Solution(size_t dim) : points(dim, 0) {}

  /// Dataset row ids of the selected elements, in selection order.
  std::vector<int64_t> Ids() const {
    std::vector<int64_t> ids(points.size());
    for (size_t i = 0; i < points.size(); ++i) ids[i] = points.IdAt(i);
    return ids;
  }

  /// Builds a solution from dataset rows (offline algorithms).
  static Solution FromIndices(const Dataset& dataset,
                              std::span<const size_t> indices);
};

}  // namespace fdm

#endif  // FDM_CORE_SOLUTION_H_
