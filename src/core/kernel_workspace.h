#ifndef FDM_CORE_KERNEL_WORKSPACE_H_
#define FDM_CORE_KERNEL_WORKSPACE_H_

#include <span>
#include <vector>

#include "data/dataset.h"
#include "geo/point_buffer.h"

namespace fdm {

/// The aligned AoSoA scratch mirror behind the offline Solve-path loops.
///
/// The offline algorithms (GMM's relax scans, threshold clustering, the
/// fair-augmentation ground-set scans, the offline baselines) iterate over
/// row subsets of a `Dataset` or a working set that grows and shrinks as
/// the algorithm swaps points. A `Dataset` stores rows point-major, which
/// the SIMD kernels cannot scan; this workspace mirrors the rows a Solve
/// pass will scan into `PointBuffer`'s padded 8-point block layout once,
/// so every subsequent distance loop runs through the runtime-dispatched
/// kernel table (`geo/simd/`) instead of the scalar `Metric`.
///
/// Lifetime rules:
///  * Build one workspace per Solve pass (or reuse across passes via
///    `AssignRows`, which clears first) — never across dataset mutations;
///    the mirror is a copy and does not track its source.
///  * The mirror must contain exactly the scan side of each loop: query
///    points need not be mirrored (kernels take them point-major), stored
///    points must.
///  * `RawDistancesTo` spans alias workspace-owned scratch — each call
///    invalidates the previous span, so copy rows out (or pass your own
///    vector) when two rows are needed at once.
///  * Mutations (`Append`/`RemoveLast`) keep the block padding sealed;
///    the workspace is always scannable.
///
/// Bit-exactness: per-lane kernel arithmetic is the scalar `Metric` order
/// (see kernel_types.h), so routing a loop through the workspace changes
/// which unit computes each distance, never its value — selection order is
/// preserved bit for bit, which the offline kernel-equivalence tests
/// enforce across every dispatch target.
class KernelWorkspace {
 public:
  /// `capacity` pre-reserves the mirror (rows are still appended lazily).
  explicit KernelWorkspace(size_t dim, size_t capacity = 0)
      : buffer_(dim, capacity) {}

  /// Rebuilds the mirror to hold exactly `rows` of `dataset`, in order.
  void AssignRows(const Dataset& dataset, std::span<const size_t> rows) {
    buffer_.Clear();
    for (const size_t row : rows) buffer_.Add(dataset.At(row));
  }

  /// Appends one point (e.g. a working-set insertion mid-algorithm).
  void Append(const StreamPoint& p) { buffer_.Add(p); }

  /// Removes the most recently appended point (the push/pop discipline of
  /// the branch-and-bound enumerators).
  void RemoveLast() { buffer_.RemoveSwap(buffer_.size() - 1); }

  void Clear() { buffer_.Clear(); }
  size_t size() const { return buffer_.size(); }
  bool empty() const { return buffer_.empty(); }

  /// The mirrored points (storage order == append order).
  const PointBuffer& points() const { return buffer_; }

  /// Raw distance from `x` to every mirrored point, in storage order (see
  /// `PointBuffer::RawDistancesToAll`): entry `i` is bit-identical to
  /// `metric.RawDistance(x, points().CoordsAt(i))`. The returned span is
  /// trimmed to `size()` and aliases internal scratch — valid until the
  /// next `RawDistancesTo` call on this workspace.
  std::span<const double> RawDistancesTo(std::span<const double> x,
                                         const Metric& metric) {
    buffer_.RawDistancesToAll(x, metric, scratch_);
    return {scratch_.data(), buffer_.size()};
  }

  /// As above, into a caller-owned vector (padded; read the first `size()`
  /// entries) — for loops that need two rows live at once.
  void RawDistancesTo(std::span<const double> x, const Metric& metric,
                      std::vector<double>& out) const {
    buffer_.RawDistancesToAll(x, metric, out);
  }

  /// Finished distance from `x` to the nearest mirrored point (+infinity
  /// when empty) — the min-reduction kernel, with early exit left to the
  /// caller's threshold discipline.
  double MinDistanceTo(std::span<const double> x, const Metric& metric) const {
    return buffer_.MinDistanceTo(x, metric);
  }

 private:
  PointBuffer buffer_;
  std::vector<double> scratch_;
};

}  // namespace fdm

#endif  // FDM_CORE_KERNEL_WORKSPACE_H_
