#include "core/stream_sink.h"

#include <vector>

#include "data/dataset.h"

namespace fdm {

void IngestStream(StreamSink& sink, const Dataset& dataset,
                  std::span<const size_t> order, size_t batch_size) {
  if (batch_size <= 1) {
    for (const size_t row : order) {
      sink.Observe(dataset.At(row));
    }
    return;
  }
  std::vector<StreamPoint> batch;
  batch.reserve(batch_size);
  for (const size_t row : order) {
    batch.push_back(dataset.At(row));
    if (batch.size() == batch_size) {
      sink.ObserveBatch(batch);
      batch.clear();
    }
  }
  if (!batch.empty()) sink.ObserveBatch(batch);
}

}  // namespace fdm
