#ifndef FDM_CORE_VALIDATE_H_
#define FDM_CORE_VALIDATE_H_

#include "core/fairness.h"
#include "core/solution.h"
#include "data/dataset.h"
#include "util/status.h"

namespace fdm {

/// End-to-end validation of a `Solution` against the dataset it claims to
/// come from and (optionally) a fairness constraint:
///
///  * every selected id is a valid dataset row, selected at most once;
///  * the stored group and coordinates match the dataset row bit-for-bit
///    (streaming algorithms copy elements — corruption would surface here);
///  * the reported `diversity` equals the recomputed `div(S)`;
///  * with a constraint: the selection has exactly `k_i` of each group.
///
/// Used by tests, examples, and as a guardrail for downstream users
/// consuming solutions from untrusted pipelines.
Status ValidateSolution(const Dataset& dataset, const Solution& solution,
                        const FairnessConstraint* constraint = nullptr);

}  // namespace fdm

#endif  // FDM_CORE_VALIDATE_H_
