#ifndef FDM_CORE_SOLVE_POOL_H_
#define FDM_CORE_SOLVE_POOL_H_

#include <cstddef>
#include <functional>
#include <string>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace fdm {

/// The `solve_threads` knob shared by every sink's query path: `1` =
/// sequential (the default), `0` = all hardware threads, `n > 1` = at most
/// `n` threads.
///
/// Unlike `BatchParallelism` (one lazily-created pool per sink family,
/// sized by the knob), every parallel solve in the process runs on ONE
/// shared machine-sized pool and passes its knob as a per-call
/// `max_parallelism` cap. That sharing is the oversubscription guard the
/// serving plane needs: the pool is fork-join (one `ParallelFor` at a
/// time), so concurrent cold solves on different sessions queue for the
/// pool instead of multiplying threads — total solve parallelism never
/// exceeds the machine no matter how many sessions go cold at once.
///
/// `Run` is const and callable from logically-const `Solve()` paths; the
/// shared pool is internally synchronized. Tasks must touch disjoint
/// state, and each task needing kernel scratch builds its own
/// `KernelWorkspace` (per-worker instances — the mirrors are mutable and
/// would race if shared).
class SolveParallelism {
 public:
  explicit SolveParallelism(int solve_threads = 1)
      : solve_threads_(solve_threads) {}

  /// Runs `fn(0) … fn(n-1)` — on the shared pool when the knob asks for
  /// parallelism, inline otherwise. `fn` must not throw. A nested call (a
  /// task that itself calls `Run`, e.g. a sharded driver whose shards were
  /// handed `solve_threads != 1`) degrades to sequential instead of
  /// deadlocking on the pool's fork-join mutex.
  void Run(size_t n, const std::function<void(size_t)>& fn) const {
    if (solve_threads_ == 1 || n <= 1 || InSolveTask()) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    auto& registry = obs::MetricsRegistry::Global();
    registry.SetInfo("fdm_solve_threads", std::to_string(solve_threads_));
    static obs::Counter& runs = registry.GetCounter(
        "fdm_solve_parallel_runs_total",
        "rung/shard fan-outs dispatched to the shared solve pool");
    static obs::Gauge& depth = registry.GetGauge(
        "fdm_solve_pool_queue_depth",
        "solve tasks outstanding on the shared solve pool");
    runs.Inc();
    depth.Add(static_cast<double>(n));
    SharedPool().ParallelFor(
        n,
        [&fn](size_t i) {
          InSolveTask() = true;
          fn(i);
          InSolveTask() = false;
        },
        solve_threads_ <= 0 ? 0 : static_cast<size_t>(solve_threads_));
    depth.Add(-static_cast<double>(n));
  }

  int solve_threads() const { return solve_threads_; }
  void set_solve_threads(int solve_threads) { solve_threads_ = solve_threads; }

  /// The process-wide pool every parallel solve shares, sized to the
  /// hardware on first use and leaked so solves reached from static
  /// sinks or detached serving threads stay safe at exit.
  static ThreadPool& SharedPool() {
    static ThreadPool* pool = new ThreadPool(0);
    return *pool;
  }

 private:
  static bool& InSolveTask() {
    static thread_local bool in_task = false;
    return in_task;
  }

  int solve_threads_ = 1;
};

}  // namespace fdm

#endif  // FDM_CORE_SOLVE_POOL_H_
