#ifndef FDM_CORE_STREAMING_DM_H_
#define FDM_CORE_STREAMING_DM_H_

#include <vector>

#include "core/guess_ladder.h"
#include "core/solution.h"
#include "core/streaming_candidate.h"
#include "geo/metric.h"
#include "geo/point_buffer.h"
#include "util/status.h"

namespace fdm {

/// Parameters shared by all the streaming algorithms. `d_min`/`d_max` are
/// (bounds on) the minimum/maximum pairwise distances in the stream; the
/// paper assumes them known, and `EstimateDistanceBounds` provides safe
/// estimates in practice.
struct StreamingOptions {
  double epsilon = 0.1;
  double d_min = 0.0;
  double d_max = 0.0;
};

/// Algorithm 1 — one-pass streaming algorithm for *unconstrained* max-min
/// diversity maximization (Borassi et al. [7], re-analyzed by the paper's
/// Theorem 1 to a `(1−ε)/2` approximation).
///
/// Maintains one `StreamingCandidate` per guess `µ ∈ U`; on `Solve`, the
/// full candidate with maximum actual diversity wins.
///
/// Costs (Theorem 1 discussion): `O(k·log∆/ε)` time per element and
/// `O(k·log∆/ε)` stored elements.
class StreamingDm {
 public:
  /// Creates the algorithm for solution size `k` over points of dimension
  /// `dim` under `metric`.
  static Result<StreamingDm> Create(int k, size_t dim, MetricKind metric,
                                    const StreamingOptions& options);

  /// Processes one stream element (Algorithm 1, lines 3–6).
  void Observe(const StreamPoint& point);

  /// Algorithm 1, line 7: the full candidate maximizing `div(S_µ)`.
  /// Fails with `Infeasible` if no candidate filled (fewer than `k`
  /// sufficiently distinct points seen).
  Result<Solution> Solve() const;

  /// Number of *distinct* elements currently stored across all candidates
  /// (the paper's space-usage measure).
  size_t StoredElements() const;

  /// Total elements seen so far.
  int64_t ObservedElements() const { return observed_; }

  const GuessLadder& ladder() const { return ladder_; }
  int k() const { return k_; }

 private:
  StreamingDm(int k, size_t dim, MetricKind metric, GuessLadder ladder);

  int k_;
  size_t dim_;
  Metric metric_;
  GuessLadder ladder_;
  std::vector<StreamingCandidate> candidates_;  // one per rung, ascending µ
  int64_t observed_ = 0;
};

}  // namespace fdm

#endif  // FDM_CORE_STREAMING_DM_H_
