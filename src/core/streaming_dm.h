#ifndef FDM_CORE_STREAMING_DM_H_
#define FDM_CORE_STREAMING_DM_H_

#include <span>
#include <string_view>
#include <vector>

#include "core/guess_ladder.h"
#include "core/solution.h"
#include "core/solve_pool.h"
#include "core/stream_sink.h"
#include "core/streaming_candidate.h"
#include "geo/metric.h"
#include "geo/point_buffer.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fdm {

/// Parameters shared by all the streaming algorithms. `d_min`/`d_max` are
/// (bounds on) the minimum/maximum pairwise distances in the stream; the
/// paper assumes them known, and `EstimateDistanceBounds` provides safe
/// estimates in practice.
struct StreamingOptions {
  double epsilon = 0.1;
  double d_min = 0.0;
  double d_max = 0.0;
  /// Threads `ObserveBatch` splits the guess-ladder rungs over (rungs are
  /// independent, so results stay bit-identical to per-element
  /// processing): `1` = sequential, `0` = all hardware threads, `n` = n.
  int batch_threads = 1;
  /// Threads `Solve` spreads its per-rung post-processing over. Same
  /// encoding as `batch_threads`; purely a latency knob — the final
  /// best-rung selection stays a sequential in-order scan, so `Solve`
  /// output is bit-identical at any setting (see `SolveParallelism`).
  int solve_threads = 1;
};

/// Algorithm 1 — one-pass streaming algorithm for *unconstrained* max-min
/// diversity maximization (Borassi et al. [7], re-analyzed by the paper's
/// Theorem 1 to a `(1−ε)/2` approximation).
///
/// Maintains one `StreamingCandidate` per guess `µ ∈ U`; on `Solve`, the
/// full candidate with maximum actual diversity wins.
///
/// Costs (Theorem 1 discussion): `O(k·log∆/ε)` time per element and
/// `O(k·log∆/ε)` stored elements.
class StreamingDm : public StreamSink {
 public:
  /// Creates the algorithm for solution size `k` over points of dimension
  /// `dim` under `metric`.
  static Result<StreamingDm> Create(int k, size_t dim, MetricKind metric,
                                    const StreamingOptions& options);

  /// Processes one stream element (Algorithm 1, lines 3–6). Returns true
  /// iff any candidate kept the element.
  bool Observe(const StreamPoint& point) override;

  /// Batched ingestion: the per-rung insertions are independent across
  /// rungs, so the batch is processed rung-major (each rung replays the
  /// batch in order), partitioned over `batch_threads` — bit-identical to
  /// per-element `Observe`.
  size_t ObserveBatch(std::span<const StreamPoint> batch) override;

  /// Advances by the number of successful candidate insertions, which is
  /// chunking-invariant (see `StreamSink::StateVersion`).
  uint64_t StateVersion() const override { return state_version_; }

  /// Algorithm 1, line 7: the full candidate maximizing `div(S_µ)`.
  /// Fails with `Infeasible` if no candidate filled (fewer than `k`
  /// sufficiently distinct points seen). Per-candidate diversity is
  /// computed over `solve_threads`; the winner scan stays sequential, so
  /// output is bit-identical at any setting.
  Result<Solution> Solve() const override;

  /// Adjusts `solve_threads` on the live sink; see `StreamSink`.
  void SetSolveThreads(int solve_threads) override {
    solve_parallelism_.set_solve_threads(solve_threads);
  }

  /// Number of *distinct* elements currently stored across all candidates
  /// (the paper's space-usage measure).
  size_t StoredElements() const override;

  /// Total elements seen so far.
  int64_t ObservedElements() const override { return observed_; }

  /// Versioned state serialization; see `StreamSink::Snapshot`.
  Status Snapshot(SnapshotWriter& writer) const override;

  /// Rebuilds the algorithm from a snapshot taken by `Snapshot`.
  static Result<StreamingDm> Restore(SnapshotReader& reader);

  static constexpr std::string_view kSnapshotTag = "streaming_dm";

  const GuessLadder& ladder() const { return ladder_; }
  int k() const { return k_; }

 private:
  StreamingDm(int k, size_t dim, MetricKind metric, GuessLadder ladder,
              int batch_threads, int solve_threads);

  int k_;
  size_t dim_;
  Metric metric_;
  GuessLadder ladder_;
  std::vector<StreamingCandidate> candidates_;  // one per rung, ascending µ
  BatchParallelism parallelism_;
  SolveParallelism solve_parallelism_;
  PackedBatch packed_;  // batch repack scratch, reused across batches
  std::vector<size_t> rung_kept_;  // per-rung batch insert counts scratch
  int64_t observed_ = 0;
  uint64_t state_version_ = 0;
};

}  // namespace fdm

#endif  // FDM_CORE_STREAMING_DM_H_
