#ifndef FDM_CORE_ADAPTIVE_STREAMING_DM_H_
#define FDM_CORE_ADAPTIVE_STREAMING_DM_H_

#include <deque>
#include <span>
#include <string_view>

#include "core/solution.h"
#include "core/solve_pool.h"
#include "core/stream_sink.h"
#include "core/streaming_candidate.h"
#include "geo/metric.h"
#include "geo/point_buffer.h"
#include "util/status.h"

namespace fdm {

/// Bounds-free variant of Algorithm 1: streaming max-min diversity
/// maximization *without* knowing `d_min`/`d_max` in advance.
///
/// The paper (like Borassi et al. [7]) assumes the distance range is known
/// so the guess ladder `U` can be built upfront. In deployments the range
/// often is not known, so this variant grows the ladder lazily:
///
///  * the ladder is seeded from the first nonzero pairwise distance seen;
///  * when an element is far from every point of the current top rung's
///    candidate, rungs are appended above — each new rung's candidate is
///    seeded by greedily filtering the previous top candidate (points kept
///    are pairwise `≥ µ_new`, so the candidate invariant holds);
///  * when an element is closer to the bottom rung's candidate than its µ
///    (and the candidate is not full), rungs are prepended below, seeded
///    with a copy of the old bottom candidate (valid: its points are
///    pairwise `≥ µ_old > µ_new`).
///
/// The candidate invariant (stored points pairwise `≥ µ`) holds at every
/// rung at all times, so any full candidate certifies `div ≥ µ` exactly as
/// in Algorithm 1. What is weakened is the *coverage* half of Theorem 1's
/// argument: a late-created rung has not seen early elements, so the
/// `(1−ε)/2` bound holds relative to the optimum over the suffix each rung
/// observed. Empirically (see adaptive_streaming_dm_test.cc) the solutions
/// track the oracle-bounds Algorithm 1 closely; the trade-off is the price
/// of removing the d_min/d_max assumption.
///
/// Memory: O(k·|ladder|) like Algorithm 1, with |ladder| growing
/// logarithmically in the observed distance spread; `max_rungs` caps it.
class AdaptiveStreamingDm : public StreamSink {
 public:
  /// `k >= 1`, `0 < epsilon < 1`, `max_rungs` bounds the lazily grown
  /// ladder (a spread of 10^9 at ε = 0.1 needs ~200 rungs).
  /// `solve_threads` follows the shared knob encoding (`1` = sequential,
  /// `0` = all hardware threads, `n` = at most n).
  static Result<AdaptiveStreamingDm> Create(int k, size_t dim,
                                            MetricKind metric, double epsilon,
                                            size_t max_rungs = 4096,
                                            int solve_threads = 1);

  /// Processes one element, growing the ladder as needed. Returns true iff
  /// the element mutated state: it was held as the pending seed, seeded or
  /// grew the ladder, or was kept by some rung.
  bool Observe(const StreamPoint& point) override;

  /// Advances once per mutating `Observe` (chunking-invariant because the
  /// inherited `ObserveBatch` is the per-element loop; see
  /// `StreamSink::StateVersion`).
  uint64_t StateVersion() const override { return state_version_; }

  /// Inherits the sequential `ObserveBatch` of `StreamSink`: ladder growth
  /// is data-dependent (each element may append or prepend rungs that the
  /// next element must see), so elements form a dependent chain and the
  /// rung-parallel replay of the fixed-ladder algorithms would not be
  /// equivalent here.

  /// Best full candidate, as in Algorithm 1. Fails if no candidate filled.
  /// Per-rung diversity fans out over `solve_threads`; the winner scan
  /// stays a sequential ascending-µ pass, so output is bit-identical to
  /// the sequential path at any thread count.
  Result<Solution> Solve() const override;

  /// Adjusts `solve_threads` on the live sink; see `StreamSink`.
  void SetSolveThreads(int solve_threads) override {
    solve_parallelism_.set_solve_threads(solve_threads);
  }

  /// Distinct stored elements across rungs.
  size_t StoredElements() const override;

  int64_t ObservedElements() const override { return observed_; }

  /// Versioned state serialization; unlike the fixed-ladder algorithms the
  /// lazily grown rung µs are data-dependent, so each rung's µ is stored
  /// explicitly. See `StreamSink::Snapshot`.
  Status Snapshot(SnapshotWriter& writer) const override;

  /// Rebuilds the algorithm from a snapshot taken by `Snapshot`.
  static Result<AdaptiveStreamingDm> Restore(SnapshotReader& reader);

  static constexpr std::string_view kSnapshotTag = "adaptive_streaming_dm";

  size_t NumRungs() const { return rungs_.size(); }
  double BottomMu() const { return rungs_.empty() ? 0.0 : rungs_.front().mu(); }
  double TopMu() const { return rungs_.empty() ? 0.0 : rungs_.back().mu(); }

 private:
  AdaptiveStreamingDm(int k, size_t dim, MetricKind metric, double epsilon,
                      size_t max_rungs, int solve_threads)
      : k_(k), dim_(dim), metric_(metric), epsilon_(epsilon),
        max_rungs_(max_rungs), solve_parallelism_(solve_threads) {}

  /// Appends a rung with `µ = top·growth`, seeding its candidate by
  /// greedily filtering the current top candidate.
  void GrowUp();

  /// Prepends a rung with `µ = bottom·(1−ε)`, seeding it with a copy of
  /// the current bottom candidate.
  void GrowDown();

  int k_;
  size_t dim_;
  Metric metric_;
  double epsilon_;
  size_t max_rungs_;
  SolveParallelism solve_parallelism_;
  std::deque<StreamingCandidate> rungs_;  // ascending µ
  /// First point seen before the ladder exists (needed to seed d_min from
  /// the first nonzero pairwise distance).
  PointBuffer pending_{1, 0};
  bool pending_valid_ = false;
  int64_t observed_ = 0;
  uint64_t state_version_ = 0;
};

}  // namespace fdm

#endif  // FDM_CORE_ADAPTIVE_STREAMING_DM_H_
