#ifndef FDM_CORE_STREAMING_CANDIDATE_H_
#define FDM_CORE_STREAMING_CANDIDATE_H_

#include "geo/point_buffer.h"

namespace fdm {

/// One candidate `S_µ` of Algorithm 1: a bounded set that accepts a point
/// iff it is at distance `≥ µ` from everything already kept and the
/// capacity is not reached (lines 5–6).
///
/// Invariant maintained at all times: the stored points are pairwise at
/// distance `≥ µ`, hence `div(S_µ) ≥ µ` whenever the candidate is full.
class StreamingCandidate {
 public:
  StreamingCandidate(double mu, size_t capacity, size_t dim)
      : mu_(mu), capacity_(capacity), points_(dim, capacity) {}

  /// Algorithm 1, lines 5–6: add `p` iff `|S_µ| < capacity` and
  /// `d(p, S_µ) ≥ µ`. Returns true iff the point was kept.
  bool TryAdd(const StreamPoint& p, const Metric& metric) {
    if (points_.size() >= capacity_) return false;
    if (!points_.AllAtLeast(p.coords, metric, mu_)) return false;
    points_.Add(p);
    return true;
  }

  /// Snapshot-restore path: direct mutable access to the underlying
  /// storage, bypassing the µ-distance admission check. Only the
  /// `Restore` hooks use this — the snapshot was written from a state
  /// where the pairwise-`≥ µ` invariant held, and the file is checksummed,
  /// so re-verifying every insertion would only redo the stream's work.
  PointBuffer& MutablePointsForRestore() { return points_; }

  bool Full() const { return points_.size() >= capacity_; }
  double mu() const { return mu_; }
  size_t capacity() const { return capacity_; }
  const PointBuffer& points() const { return points_; }

 private:
  double mu_;
  size_t capacity_;
  PointBuffer points_;
};

}  // namespace fdm

#endif  // FDM_CORE_STREAMING_CANDIDATE_H_
