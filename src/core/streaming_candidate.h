#ifndef FDM_CORE_STREAMING_CANDIDATE_H_
#define FDM_CORE_STREAMING_CANDIDATE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "geo/point_buffer.h"

namespace fdm {

/// One candidate `S_µ` of Algorithm 1: a bounded set that accepts a point
/// iff it is at distance `≥ µ` from everything already kept and the
/// capacity is not reached (lines 5–6).
///
/// Invariant maintained at all times: the stored points are pairwise at
/// distance `≥ µ`, hence `div(S_µ) ≥ µ` whenever the candidate is full.
class StreamingCandidate {
 public:
  StreamingCandidate(double mu, size_t capacity, size_t dim)
      : mu_(mu), capacity_(capacity), points_(dim, capacity) {}

  /// Algorithm 1, lines 5–6: add `p` iff `|S_µ| < capacity` and
  /// `d(p, S_µ) ≥ µ`. Returns true iff the point was kept.
  bool TryAdd(const StreamPoint& p, const Metric& metric) {
    if (points_.size() >= capacity_) return false;
    if (!points_.AllAtLeast(p.coords, metric, mu_)) return false;
    points_.Add(p);
    return true;
  }

  /// Batched form of a `TryAdd` loop over `batch` in stream order; returns
  /// the number of points kept. Decisions are identical to the sequential
  /// loop: the batch's distances to the *pre-batch* contents are computed
  /// in one pass over the stored blocks (`MinRawDistanceToMany`, with the
  /// prepared `µ` as the per-query early-exit threshold — rejected points
  /// stop scanning at their first close block), and each point then only
  /// re-checks the handful of points admitted earlier in the same batch.
  /// Admission depends on `min(d to old points, d to new points) >= µ` and
  /// on the capacity, both of which the split preserves exactly.
  size_t TryAddBatch(std::span<const StreamPoint> batch, const Metric& metric) {
    return TryAddRun(
        batch.size(), metric,
        [&](size_t t) -> const StreamPoint& { return batch[t]; });
  }

  /// As `TryAddBatch`, but replays only the batch positions listed in
  /// `positions` (in order) — the group-specific candidates of the fair
  /// ladders see just their group's slice of the batch.
  size_t TryAddBatchIndexed(std::span<const StreamPoint> batch,
                            std::span<const size_t> positions,
                            const Metric& metric) {
    return TryAddRun(positions.size(), metric,
                     [&](size_t t) -> const StreamPoint& {
                       return batch[positions[t]];
                     });
  }

  /// Snapshot-restore path: direct mutable access to the underlying
  /// storage, bypassing the µ-distance admission check. Only the
  /// `Restore` hooks use this — the snapshot was written from a state
  /// where the pairwise-`≥ µ` invariant held, and the file is checksummed,
  /// so re-verifying every insertion would only redo the stream's work.
  PointBuffer& MutablePointsForRestore() { return points_; }

  bool Full() const { return points_.size() >= capacity_; }
  double mu() const { return mu_; }
  size_t capacity() const { return capacity_; }
  const PointBuffer& points() const { return points_; }

 private:
  template <typename PointAt>
  size_t TryAddRun(size_t count, const Metric& metric, PointAt&& point_at) {
    if (count == 0 || Full()) return 0;
    if (count == 1) return TryAdd(point_at(0), metric) ? 1 : 0;
    // Scratch reused across calls; thread-local because the rung-major
    // replay engine runs candidates on pool threads.
    thread_local std::vector<const double*> queries;
    thread_local std::vector<double> stops;
    thread_local std::vector<double> mins;
    queries.resize(count);
    for (size_t t = 0; t < count; ++t) {
      queries[t] = point_at(t).coords.data();
    }
    const double prepared = metric.PrepareThreshold(mu_);
    stops.assign(count, prepared);
    mins.resize(count);
    points_.MinRawDistanceToMany(
        std::span<const double* const>(queries.data(), count), metric,
        std::span<const double>(stops.data(), count),
        std::span<double>(mins.data(), count));
    const size_t pre_batch = points_.size();
    size_t kept = 0;
    for (size_t t = 0; t < count; ++t) {
      if (points_.size() >= capacity_) break;  // full is permanent
      if (mins[t] < prepared) continue;        // too close to the old set
      const StreamPoint& p = point_at(t);
      bool admit = true;
      for (size_t j = pre_batch; j < points_.size(); ++j) {
        if (metric.RawDistance(p.coords.data(), points_.CoordsAt(j).data(),
                               points_.dim()) < prepared) {
          admit = false;
          break;
        }
      }
      if (!admit) continue;
      // Fused admission+insert: the kernel scan over the old set already
      // ran (above, before any mutation) and the intra-batch re-check
      // reads the point-major layout, so nothing scans the block layout
      // again until the batch completes — each accepted point writes only
      // its own block lane here, and the padding-replication invariant is
      // restored once per batch below instead of once per insertion.
      points_.AddDeferPadding(p);
      ++kept;
    }
    if (kept > 0) points_.SealPadding();
    return kept;
  }

  double mu_;
  size_t capacity_;
  PointBuffer points_;
};

}  // namespace fdm

#endif  // FDM_CORE_STREAMING_CANDIDATE_H_
