#ifndef FDM_CORE_DIVERSITY_H_
#define FDM_CORE_DIVERSITY_H_

#include <span>
#include <vector>

#include "data/dataset.h"
#include "geo/point_buffer.h"

namespace fdm {

/// `div(S) = min_{x≠y∈S} d(x,y)` over the points in `buffer`
/// (the max-min dispersion objective). Returns +infinity for |S| < 2,
/// matching the convention that diversity is monotonically non-increasing
/// under insertion.
double MinPairwiseDistance(const PointBuffer& buffer, const Metric& metric);

/// `div(S)` over dataset rows `indices`.
double MinPairwiseDistance(const Dataset& dataset,
                           std::span<const size_t> indices);

/// `Σ_{x<y∈S} d(x,y)` — the max-sum dispersion objective (used only for the
/// Fig. 1 contrast between the two notions of diversity).
double SumPairwiseDistance(const Dataset& dataset,
                           std::span<const size_t> indices);

/// Per-group selection counts over `buffer` (length `num_groups`).
std::vector<int> GroupCounts(const PointBuffer& buffer, int num_groups);

/// True iff `buffer` contains exactly `quotas[i]` elements of each group.
bool SatisfiesQuotas(const PointBuffer& buffer, std::span<const int> quotas);

}  // namespace fdm

#endif  // FDM_CORE_DIVERSITY_H_
