#ifndef FDM_CORE_SINK_SNAPSHOT_H_
#define FDM_CORE_SINK_SNAPSHOT_H_

#include <memory>
#include <utility>

#include "core/stream_sink.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace fdm {

/// Lifts a concrete-algorithm factory result to the polymorphic sink
/// pointer the registry, service layer, and snapshot dispatcher all hand
/// around.
template <typename Algo>
Result<std::unique_ptr<StreamSink>> WrapSink(Result<Algo> created) {
  if (!created.ok()) return created.status();
  return std::unique_ptr<StreamSink>(
      std::make_unique<Algo>(std::move(created.value())));
}

/// Restores a sink of any built-in kind from a snapshot, dispatching on the
/// type tag at the reader's cursor (the first field every
/// `StreamSink::Snapshot` implementation writes). This is how the service
/// layer reloads a session whose concrete algorithm type is only known from
/// its on-disk state.
///
/// Supported tags: `streaming_dm`, `sfdm1`, `sfdm2`,
/// `adaptive_streaming_dm`, `sharded_streaming_dm`, and `sliding_window`
/// (over a `streaming_dm` inner algorithm — the registered windowed kind).
Result<std::unique_ptr<StreamSink>> RestoreSink(SnapshotReader& reader);

}  // namespace fdm

#endif  // FDM_CORE_SINK_SNAPSHOT_H_
